// Package benchrun hosts one testing.B benchmark per table and figure of
// the paper's evaluation, at a reduced scale so `go test -bench=.` finishes
// in minutes. Full paper-scale artifacts come from `go run ./cmd/vinebench
// -scale 1 all`; EXPERIMENTS.md records the paper-vs-measured comparison.
package benchrun

import (
	"io"
	"testing"

	"hepvine/internal/bench"
)

// benchScale keeps each regeneration under a few hundred milliseconds while
// preserving the qualitative shapes.
const benchScale = 0.04

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bench.Options{Scale: benchScale, Seed: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.RunOne(e, opts, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Stacks regenerates Table I: the four-stack evolution of
// DV3-Large (3545s → 272s in the paper).
func BenchmarkTable1Stacks(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Workloads regenerates Table II: the application
// configuration inventory.
func BenchmarkTable2Workloads(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig7Heatmap regenerates Fig. 7: pairwise transfer volumes under
// Work Queue vs TaskVine peer transfers.
func BenchmarkFig7Heatmap(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8TaskTimes regenerates Fig. 8: the task-execution-time
// distribution for standard tasks vs function calls.
func BenchmarkFig8TaskTimes(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Hoisting demonstrates Fig. 9's import-hoisting structure on
// the live TCP engine (setup-count instrumentation).
func BenchmarkFig9Hoisting(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10HoistingSweep regenerates Fig. 10: the hoisting ×
// filesystem × task-granularity sweep.
func BenchmarkFig10Hoisting(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Reduction regenerates Fig. 11: naive single-task reduction
// vs binary-tree reduction and their worker storage footprints.
func BenchmarkFig11Reduction(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Timeline regenerates Fig. 12: the first-300-seconds
// running/waiting timeline of each stack.
func BenchmarkFig12Timeline(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Occupancy regenerates Fig. 13: worker occupancy for stacks
// 3 and 4 at two pool sizes.
func BenchmarkFig13Occupancy(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14aScaling regenerates Fig. 14a: TaskVine vs Dask.Distributed
// on DV3-Small/Medium.
func BenchmarkFig14aScaling(b *testing.B) { runExperiment(b, "fig14a") }

// BenchmarkFig14bScaling regenerates Fig. 14b: DV3-Large and RS-TriPhoton
// scaling, with the Dask.Distributed failure at 1200 cores.
func BenchmarkFig14bScaling(b *testing.B) { runExperiment(b, "fig14b") }

// BenchmarkFig15Huge regenerates Fig. 15: the 185k-task DV3-Huge run.
func BenchmarkFig15Huge(b *testing.B) { runExperiment(b, "fig15") }
