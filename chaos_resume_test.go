// Manager-kill resume soak: the chunked-MET workload runs against a
// journaled manager that is crashed mid-run through the chaos plan's
// process-level crash fault. A second manager incarnation replays the
// journal on the same address, the surviving workers reconnect with
// their cache inventories, and the identical resubmission must finish
// with bit-identical histograms while re-executing only the tasks that
// had not completed at the kill.
package benchrun

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/journal"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// resumeWorkload builds the shared dataset and graph once per test.
func resumeWorkload(t *testing.T) (*dag.Graph, dag.Key) {
	t.Helper()
	dir := t.TempDir()
	const events = 8000
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "ResumeMu", Files: 4, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: 19},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: events}
	}
	chunks, err := coffea.PartitionPerFile("ResumeMu", files, 6)
	if err != nil {
		t.Fatal(err)
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	return graph, root
}

func TestChaosManagerKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	graph, root := resumeWorkload(t)

	// Fault-free baseline on a throwaway cluster.
	baseline := func() []byte {
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Stop()
		for i := 0; i < 3; i++ {
			w, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("b%d", i)), vine.WithCores(2),
				vine.WithCacheDir(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer w.Stop()
		}
		if err := mgr.WaitForWorkers(3, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := daskvine.Run(mgr, graph, root, daskvine.Options{
			Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.H["met"].Marshal()
	}()

	// Incarnation 1: journaled manager, persistent reconnecting workers.
	// The chaos plan carries a process-level crash fault; it is started
	// deterministically after a third of the graph has completed, so a
	// known-nonzero slice of work is durable at the kill.
	runDir := t.TempDir()
	jr, err := journal.Open(filepath.Join(runDir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mgr1, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithJournal(jr),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr1.Stop()
	addr := mgr1.Addr()

	plan := chaos.NewPlan(23).Add(
		chaos.Fault{Kind: chaos.KindCrash, Target: "manager", At: 0},
	)
	defer plan.Stop()
	plan.RegisterCrash("manager", func() {
		jr.Sync()
		mgr1.Crash()
	})

	const nWorkers = 3
	for i := 0; i < nWorkers; i++ {
		w, err := vine.NewWorker(addr,
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(2),
			vine.WithCacheDir(filepath.Join(runDir, fmt.Sprintf("worker-%d", i))),
			vine.WithPersistentCache(true),
			vine.WithReconnect(40, 25*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}
	if err := mgr1.WaitForWorkers(nWorkers, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	crashAfter := graph.Len() / 3
	var dones atomic.Int64
	var once sync.Once
	_, err = daskvine.Run(mgr1, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
		OnTaskDone: func(key dag.Key, h *vine.TaskHandle) {
			if int(dones.Add(1)) >= crashAfter {
				once.Do(plan.Start)
			}
		},
	})
	if err == nil {
		t.Fatal("run survived a manager crash")
	}
	deadline := time.Now().Add(2 * time.Second)
	for plan.Fired() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if plan.Fired() < 1 {
		t.Fatal("crash fault never fired")
	}
	completedAtKill := mgr1.Stats().TasksDone
	if completedAtKill == 0 {
		t.Fatal("manager crashed before any task completed; crash trigger broken")
	}
	// Close flushes whatever the group-commit window still held.
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: same journal, same address. The workers from the
	// first incarnation are still alive and redialing; they must re-register
	// with their cache inventories before the identical resubmission.
	jr2, err := journal.Open(filepath.Join(runDir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	// The crashed incarnation's listener may take a beat to release the
	// port; retry the bind until it does.
	var mgr2 *vine.Manager
	for bindDeadline := time.Now().Add(5 * time.Second); ; {
		mgr2, err = vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
			vine.WithJournal(jr2),
			vine.WithListenAddr(addr),
		)
		if err == nil {
			break
		}
		if time.Now().After(bindDeadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer mgr2.Stop()
	if err := mgr2.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	res, err := daskvine.Run(mgr2, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if got := res.H["met"].Marshal(); !bytes.Equal(baseline, got) {
		t.Fatalf("resumed run diverged from fault-free baseline: %d vs %d bytes", len(baseline), len(got))
	}
	st := mgr2.Stats()
	if st.JournalReplayed == 0 {
		t.Fatal("second incarnation replayed nothing")
	}
	if st.TasksDone >= graph.Len() {
		t.Fatalf("resume re-executed the whole graph: %d of %d tasks", st.TasksDone, graph.Len())
	}
	// Acceptance: at least half of the work completed at the kill comes
	// back warm (the rest may have raced the group-commit window or lost
	// its replicas with in-flight transfers).
	if st.WarmHits*2 < completedAtKill {
		t.Fatalf("WarmHits = %d, want >= half of the %d tasks completed at the kill",
			st.WarmHits, completedAtKill)
	}
}
