// Hot-standby failover soak: the chunked-MET workload runs against a
// journaled primary whose leadership lease a hot standby is watching
// while it tails the journal. The primary is killed mid-run through the
// chaos plan; the standby's lease expires, it drains the journal tail,
// takes over on its pre-chosen address, and the workers — launched with
// the full manager address list — redial through to it and re-register
// with their cache inventories. The identical resubmission must finish
// bit-identical to a fault-free baseline, re-executing only the tasks
// that had not completed at the kill, with takeover latency (lease
// expiry → first dispatch) bounded under 2× the lease TTL.
//
// A second test pins down the split-brain guard: a paused-then-resumed
// primary whose lease was usurped must observe the loss and refuse to
// dispatch anything ever again.
package benchrun

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/ha"
	"hepvine/internal/journal"
	"hepvine/internal/vine"
)

// freeAddr reserves a loopback address the way a deployment would choose
// a standby's: before any failure, as part of cluster configuration.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestChaosFailoverToStandby(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	graph, root := resumeWorkload(t)

	// Fault-free baseline on a throwaway cluster.
	baseline := func() []byte {
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Stop()
		for i := 0; i < 3; i++ {
			w, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("fb%d", i)), vine.WithCores(2),
				vine.WithCacheDir(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer w.Stop()
		}
		if err := mgr.WaitForWorkers(3, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := daskvine.Run(mgr, graph, root, daskvine.Options{
			Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.H["met"].Marshal()
	}()

	// Primary: journaled, lease-holding. The standby watches the same
	// journal directory and lease file and owns a pre-chosen address.
	runDir := t.TempDir()
	journalDir := filepath.Join(runDir, "journal")
	ttl := ha.DefaultTTL
	jr, err := journal.Open(journalDir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lease1, err := ha.AcquireLease(ha.DefaultLeasePath(journalDir), "primary", ttl)
	if err != nil {
		t.Fatal(err)
	}
	mgr1, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithJournal(jr),
		vine.WithLease(lease1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr1.Stop()

	standbyAddr := freeAddr(t)
	standby, err := ha.NewStandby(ha.Config{
		JournalDir: journalDir,
		TTL:        ttl,
		Addr:       standbyAddr,
		Name:       "standby-1",
		ManagerOptions: []vine.Option{
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Stop()

	// Workers know the whole manager list up front; on silence they redial
	// through it instead of draining.
	const nWorkers = 3
	workers := make([]*vine.Worker, nWorkers)
	for i := 0; i < nWorkers; i++ {
		w, err := vine.NewWorker(mgr1.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(2),
			vine.WithCacheDir(filepath.Join(runDir, fmt.Sprintf("worker-%d", i))),
			vine.WithPersistentCache(true),
			vine.WithReconnect(400, 25*time.Millisecond),
			vine.WithManagers(standbyAddr),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
		workers[i] = w
	}
	if err := mgr1.WaitForWorkers(nWorkers, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The crash fault flushes the journal's group-commit window, stops
	// lease renewal, and kills the primary in-process — the closest
	// in-process analogue of a machine loss whose last fsyncs survived.
	plan := chaos.NewPlan(29).Add(
		chaos.Fault{Kind: chaos.KindCrash, Target: "primary", At: 0},
	)
	defer plan.Stop()
	plan.RegisterCrash("primary", func() {
		jr.Sync()
		lease1.Release()
		mgr1.Crash()
	})

	crashAfter := graph.Len() / 3
	var dones atomic.Int64
	var once sync.Once
	_, err = daskvine.Run(mgr1, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
		OnTaskDone: func(key dag.Key, h *vine.TaskHandle) {
			if int(dones.Add(1)) >= crashAfter {
				once.Do(plan.Start)
			}
		},
	})
	if err == nil {
		t.Fatal("run survived a primary crash")
	}
	deadline := time.Now().Add(2 * time.Second)
	for plan.Fired() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if plan.Fired() < 1 {
		t.Fatal("crash fault never fired")
	}
	completedAtKill := mgr1.Stats().TasksDone
	if completedAtKill == 0 {
		t.Fatal("primary crashed before any task completed; crash trigger broken")
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// No human restarts anything from here: the standby's lease watch does
	// the promotion on its own.
	select {
	case <-standby.Ready():
	case <-time.After(15 * time.Second):
		t.Fatal("standby never took over after the primary crash")
	}
	if err := standby.Err(); err != nil {
		t.Fatalf("standby takeover failed: %v", err)
	}
	mgr2 := standby.Manager()
	if got := mgr2.Addr(); got != standbyAddr {
		t.Fatalf("standby bound %s, want pre-chosen %s", got, standbyAddr)
	}
	if err := mgr2.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
		t.Fatalf("workers never redialed through to the standby: %v", err)
	}

	// The identical resubmission against the new incarnation.
	res, err := daskvine.Run(mgr2, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("post-failover run failed: %v", err)
	}
	if got := res.H["met"].Marshal(); !bytes.Equal(baseline, got) {
		t.Fatalf("post-failover run diverged from fault-free baseline: %d vs %d bytes",
			len(baseline), len(got))
	}

	st := mgr2.Stats()
	if st.JournalReplayed == 0 {
		t.Fatal("standby materialized nothing from the tailed journal")
	}
	if st.TasksDone >= graph.Len() {
		t.Fatalf("failover re-executed the whole graph: %d of %d tasks", st.TasksDone, graph.Len())
	}
	// Acceptance: at least half of the work completed at the kill comes
	// back warm (the rest may have raced the group-commit window or lost
	// its replicas with in-flight transfers).
	if st.WarmHits*2 < completedAtKill {
		t.Fatalf("WarmHits = %d, want >= half of the %d tasks completed at the kill",
			st.WarmHits, completedAtKill)
	}
	if mgr2.Failovers() < 1 {
		t.Fatalf("Failovers = %d, want >= 1", mgr2.Failovers())
	}
	lat := mgr2.TakeoverLatency()
	if lat <= 0 {
		t.Fatal("takeover latency never observed; no post-takeover dispatch")
	}
	if lat >= 2*ttl {
		t.Fatalf("takeover latency %v, want < 2x lease TTL (%v)", lat, 2*ttl)
	}
	takeovers := 0
	for _, w := range workers {
		takeovers += w.Takeovers()
	}
	if takeovers < nWorkers {
		t.Fatalf("workers saw %d takeover notices, want >= %d (one per worker)", takeovers, nWorkers)
	}
}

// TestChaosFencedPrimaryRefusesDispatch: a primary paused past its lease
// TTL (stop-the-world analogue) whose lease is usurped must fence itself
// on resume — tasks submitted to it park forever instead of racing the
// new incarnation's dispatches.
func TestChaosFencedPrimaryRefusesDispatch(t *testing.T) {
	apps.RegisterProcessors()
	_ = vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)) // may already be registered

	ttl := 200 * time.Millisecond
	leasePath := filepath.Join(t.TempDir(), "lease.json")
	lease, err := ha.AcquireLease(leasePath, "primary", ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	mgr, err := vine.NewManager(
		vine.WithLibrary(daskvine.LibraryName, false),
		vine.WithLease(lease),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	w, err := vine.NewWorker(mgr.Addr(),
		vine.WithName("fence-w"), vine.WithCores(2), vine.WithCacheDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if err := mgr.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Pause the primary's renewals, let the lease lapse, usurp it.
	lease.Suspend()
	time.Sleep(ttl + 50*time.Millisecond)
	usurper, err := ha.AcquireLease(leasePath, "usurper", ttl)
	if err != nil {
		t.Fatal(err)
	}
	defer usurper.Release()

	// On resume the next renewal sees the usurper's epoch and the manager
	// fences itself.
	lease.Resume()
	fenceDeadline := time.Now().Add(5 * time.Second)
	for !mgr.LeaseLost() && time.Now().Before(fenceDeadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !mgr.LeaseLost() {
		t.Fatal("paused-then-resumed primary never noticed its lost lease")
	}

	// A fenced manager accepts the submission (the client learns about the
	// failover from the takeover notice, not an error) but must never
	// dispatch it.
	h, err := mgr.Submit(vine.Task{
		Mode: vine.ModeFunctionCall, Library: daskvine.LibraryName,
		Func: "noop", Outputs: []string{"o"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(700 * time.Millisecond); err == nil {
		t.Fatal("fenced primary completed a task; dispatch was not fenced")
	}
	if st := h.State(); st == vine.TaskRunning || st == vine.TaskDone {
		t.Fatalf("fenced primary moved task to %v", st)
	}
	if n := w.Stats().TasksRun; n != 0 {
		t.Fatalf("worker ran %d tasks under a fenced primary", n)
	}
}
