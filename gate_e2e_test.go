// Front-door e2e: two tenants push the same analysis DAG through the
// vinegate HTTP service against one journaled manager. The first tenant
// executes it; the second gets the whole graph as warm hits — its queue
// schedules nothing — and a third, tightly-capped tenant is turned away
// with HTTP 429 until its backlog drains. Every result fetched over
// HTTP must be bit-identical to a direct library run of the same graph
// on a gate-less cluster.
package benchrun

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"hepvine/internal/gate"
	"hepvine/internal/journal"
	"hepvine/internal/vine"
)

// gateE2ELib is a small deterministic analysis: "hist" folds a chunk of
// raw bytes into a 256-bin byte-value histogram, "merge" sums any
// number of histograms. Deterministic in, deterministic out — the
// bit-identical comparisons below depend on it.
func registerGateE2ELib(t *testing.T) {
	t.Helper()
	vine.MustRegisterLibrary(&vine.Library{
		Name: "gatee2e",
		Funcs: map[string]vine.Function{
			"hist": func(c *vine.Call) error {
				chunk, err := c.Input("chunk")
				if err != nil {
					return err
				}
				var counts [256]uint64
				for _, b := range chunk {
					counts[b]++
				}
				out := make([]byte, 256*8)
				for i, n := range counts {
					binary.BigEndian.PutUint64(out[i*8:], n)
				}
				c.SetOutput("hist", out)
				return nil
			},
			"merge": func(c *vine.Call) error {
				var counts [256]uint64
				for _, name := range c.InputNames() {
					part, err := c.Input(name)
					if err != nil {
						return err
					}
					if len(part) != 256*8 {
						return fmt.Errorf("bad partial size %d", len(part))
					}
					for i := range counts {
						counts[i] += binary.BigEndian.Uint64(part[i*8:])
					}
				}
				out := make([]byte, 256*8)
				for i, n := range counts {
					binary.BigEndian.PutUint64(out[i*8:], n)
				}
				c.SetOutput("hist", out)
				return nil
			},
			"slowecho": func(c *vine.Call) error {
				time.Sleep(400 * time.Millisecond)
				c.SetOutput("out", append([]byte("slow:"), c.Args...))
				return nil
			},
		},
	})
}

// gateE2EChunks synthesizes the shared input chunks: deterministic
// pseudo-event payloads both planes declare byte-for-byte.
func gateE2EChunks() [][]byte {
	chunks := make([][]byte, 3)
	for i := range chunks {
		chunk := make([]byte, 64<<10)
		state := uint32(2654435761 * uint32(i+1))
		for j := range chunk {
			state = state*1664525 + 1013904223
			chunk[j] = byte(state >> 24)
		}
		chunks[i] = chunk
	}
	return chunks
}

// gateE2EDAG builds the wire-form DAG over the declared chunk names:
// one hist per chunk, one merge over all of them by within-DAG refs.
func gateE2EDAG(chunkNames []string) gate.SubmitRequest {
	var req gate.SubmitRequest
	merge := gate.TaskSpec{
		Label: "merge", Library: "gatee2e", Func: "merge", Outputs: []string{"hist"},
	}
	for i, cn := range chunkNames {
		label := fmt.Sprintf("hist%d", i)
		req.Tasks = append(req.Tasks, gate.TaskSpec{
			Label: label, Library: "gatee2e", Func: "hist",
			Inputs:  []gate.InputRef{{Name: "chunk", CacheName: cn}},
			Outputs: []string{"hist"},
		})
		merge.Inputs = append(merge.Inputs, gate.InputRef{
			Name: fmt.Sprintf("p%d", i), Task: label, Output: "hist",
		})
	}
	req.Tasks = append(req.Tasks, merge)
	return req
}

func TestGateTwoTenantE2E(t *testing.T) {
	registerGateE2ELib(t)
	chunks := gateE2EChunks()

	// Direct-library baseline: the same graph on a gate-less throwaway
	// cluster, submitted through the plain Go API.
	baseline := func() []byte {
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary("gatee2e", true),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Stop()
		for i := 0; i < 2; i++ {
			w, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("b%d", i)), vine.WithCores(2),
				vine.WithCacheDir(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			defer w.Stop()
		}
		if err := mgr.WaitForWorkers(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		var parts []vine.FileRef
		for i, chunk := range chunks {
			name := mgr.DeclareBuffer(chunk)
			h, err := mgr.Submit(vine.Task{
				Mode: vine.ModeTask, Library: "gatee2e", Func: "hist",
				Inputs:  []vine.FileRef{{Name: "chunk", CacheName: name}},
				Outputs: []string{"hist"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Wait(30 * time.Second); err != nil {
				t.Fatal(err)
			}
			cn, _ := h.Output("hist")
			parts = append(parts, vine.FileRef{Name: fmt.Sprintf("p%d", i), CacheName: cn})
		}
		h, err := mgr.Submit(vine.Task{
			Mode: vine.ModeTask, Library: "gatee2e", Func: "merge",
			Inputs: parts, Outputs: []string{"hist"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		cn, _ := h.Output("hist")
		data, err := mgr.FetchBytes(cn)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}()

	// The service plane: one journaled manager behind a vinegate HTTP
	// front door, carol capped to 2 in-flight tasks.
	runDir := t.TempDir()
	jr, err := journal.Open(filepath.Join(runDir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("gatee2e", true),
		vine.WithJournal(jr),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	for i := 0; i < 2; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("g%d", i)), vine.WithCores(2),
			vine.WithCacheDir(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	g := gate.New(mgr, gate.Config{Tenants: map[string]gate.TenantConfig{
		"carol": {MaxInFlight: 2},
	}})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// Tenant alice runs the graph for real.
	alice := &gate.Client{Base: srv.URL, Tenant: "alice"}
	if _, err := alice.OpenSession("analysis"); err != nil {
		t.Fatal(err)
	}
	chunkNames := make([]string, len(chunks))
	for i, chunk := range chunks {
		decl, err := alice.Declare(chunk)
		if err != nil {
			t.Fatal(err)
		}
		chunkNames[i] = decl.CacheName
	}
	ra, err := alice.Submit("analysis", gateE2EDAG(chunkNames))
	if err != nil {
		t.Fatal(err)
	}
	mergeID := ra.Tasks[len(ra.Tasks)-1].ID
	sta, err := alice.WaitTask("analysis", mergeID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sta.State != "done" {
		t.Fatalf("alice merge failed: %s", sta.Error)
	}
	aliceHist, err := alice.Fetch(sta.Outputs["hist"])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aliceHist, baseline) {
		t.Fatal("HTTP-fetched result differs from the direct library run")
	}

	// Tenant bob submits the identical DAG: every task is a warm hit and
	// his queue schedules nothing.
	bob := &gate.Client{Base: srv.URL, Tenant: "bob"}
	if _, err := bob.OpenSession("rerun"); err != nil {
		t.Fatal(err)
	}
	rb, err := bob.Submit("rerun", gateE2EDAG(chunkNames))
	if err != nil {
		t.Fatal(err)
	}
	for _, ack := range rb.Tasks {
		if !ack.Warm {
			t.Fatalf("bob task %s not a warm hit", ack.Label)
		}
	}
	bobHist, err := bob.Fetch(rb.Tasks[len(rb.Tasks)-1].Outputs["hist"])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bobHist, aliceHist) {
		t.Fatal("warm-hit result not bit-identical")
	}
	stats, err := bob.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range stats.Queues {
		if q.Name == "tenant:bob" && q.Dispatched != 0 {
			t.Fatalf("bob's queue dispatched %d tasks, want 0", q.Dispatched)
		}
	}
	var bobWarm int64
	for _, ts := range stats.Tenants {
		if ts.Tenant == "bob" {
			bobWarm = ts.WarmHits
		}
	}
	if bobWarm != int64(len(rb.Tasks)) {
		t.Fatalf("bob warm hits = %d, want %d", bobWarm, len(rb.Tasks))
	}
	// The warm hits are visible in bob's event stream too.
	evs, err := bob.Events("rerun", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmEvents := 0
	for _, ev := range evs {
		if ev.Type == "warm_hit" {
			warmEvents++
		}
	}
	if warmEvents != len(rb.Tasks) {
		t.Fatalf("warm_hit events = %d, want %d", warmEvents, len(rb.Tasks))
	}

	// Tenant carol is capped at 2 in-flight: her third submission gets a
	// real HTTP 429 (with Retry-After), then is admitted once her
	// backlog drains.
	carol := &gate.Client{Base: srv.URL, Tenant: "carol"}
	if _, err := carol.OpenSession("batch"); err != nil {
		t.Fatal(err)
	}
	slow := func(label, arg string) gate.SubmitRequest {
		return gate.SubmitRequest{Tasks: []gate.TaskSpec{{
			Label: label, Library: "gatee2e", Func: "slowecho",
			Args: []byte(arg), Outputs: []string{"out"},
		}}}
	}
	r1, err := carol.Submit("batch", slow("a", "1"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := carol.Submit("batch", slow("b", "2"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = carol.Submit("batch", slow("c", "3"))
	var se *gate.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("expected HTTP 429 over in-flight cap, got %v", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatal("429 came without a Retry-After header")
	}
	if _, err := carol.WaitTask("batch", r1.Tasks[0].ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.WaitTask("batch", r2.Tasks[0].ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = carol.Submit("batch", slow("c", "3")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("carol still rejected after her backlog drained: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The journal actually recorded the run: this is the durable plane a
	// restarted vinegate would replay.
	if mgr.Stats().JournalAppends == 0 {
		t.Fatal("journaled gate run appended nothing")
	}
}
