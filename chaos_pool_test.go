// Elastic-pool chaos soak: the quickstart MET workload on an autoscaled,
// preemptible worker pool, with two preemptions injected mid-run — one
// graceful drain with a generous grace window (the worker must evacuate
// its sole-replica output and exit clean) and one blown grace window (the
// worker dies mid-flight and the lineage/retry ladder recovers the lost
// work). The histograms must come out bit-identical to a fault-free run
// on the same pool, and the autoscaler must have grown the pool above its
// floor under the backlog.
package benchrun

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/obs"
	"hepvine/internal/pool"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// elasticWorkload builds the same dataset and graph as runSoak so the
// fault-free and preempted passes are byte-comparable.
func elasticWorkload(t *testing.T) (*dag.Graph, dag.Key) {
	t.Helper()
	dir := t.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "ElasticMu", Files: 4, EventsPerFile: 8000,
		Gen: rootio.GenOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: 8000}
	}
	chunks, err := coffea.PartitionPerFile("ElasticMu", files, 6)
	if err != nil {
		t.Fatal(err)
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	return graph, root
}

// runElastic executes one pass of the workload on an autoscaled pool of
// preemptible local workers (floor 2, ceiling 6). With preempt set, the
// completion stream drives two deterministic drains: the first processor
// output's worker gets a generous grace window (clean evacuation), and
// the next distinct worker to finish a processor task gets a 1ms window
// that is guaranteed to blow before its freshly produced sole-replica
// output can move.
func runElastic(t *testing.T, seed uint64, preempt bool) ([]byte, vine.ManagerStats, *obs.Recorder, int) {
	t.Helper()
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	graph, root := elasticWorkload(t)

	rec := obs.NewRecorder()
	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
		vine.WithHeartbeat(50*time.Millisecond, 400*time.Millisecond),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		vine.WithRetrySeed(seed),
		vine.WithRecoveryTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	prov := pool.NewLocalProvider(mgr.Addr(), func(name string) []vine.Option {
		return []vine.Option{
			vine.WithCores(2),
			vine.WithCacheDir(t.TempDir()),
			vine.WithPreemptible(true),
			vine.WithRecorder(rec),
			vine.WithHeartbeat(50*time.Millisecond, 5*time.Second),
		}
	})
	defer prov.StopAll()
	scaler := pool.NewAutoscaler(mgr, prov, pool.Config{
		Min: 2, Max: 6,
		Poll:           10 * time.Millisecond,
		Cooldown:       40 * time.Millisecond,
		TasksPerWorker: 2,
		IdlePolls:      5,
		DrainGrace:     2 * time.Second,
	})
	scaler.Start()
	defer scaler.Stop()
	if err := mgr.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	opts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second}
	if preempt {
		var mu sync.Mutex
		var drained, blown string
		opts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
			if _, ok := graph.Task(key).Spec.(*coffea.ProcessSpec); !ok {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			w := prov.Worker(h.Worker())
			if w == nil {
				return
			}
			switch {
			case drained == "":
				// Graceful: the worker holds the sole replica of the output
				// it just produced; a generous window lets it offload and
				// exit clean.
				drained = h.Worker()
				w.Drain(2 * time.Second)
			case blown == "" && h.Worker() != drained:
				// Blown: 1ms cannot cover even a loopback evacuation, so the
				// grace timer kills the worker with its fresh output (and any
				// running tasks) still aboard.
				blown = h.Worker()
				w.Drain(time.Millisecond)
			}
		}
	}
	res, err := daskvine.Run(mgr, graph, root, opts)
	if err != nil {
		t.Fatalf("workload failed (preempt=%v): %v", preempt, err)
	}
	met := res.H["met"]
	if met == nil || met.Entries == 0 {
		t.Fatalf("empty MET histogram (preempt=%v)", preempt)
	}
	return met.Marshal(), mgr.Stats(), rec, scaler.Peak()
}

// TestChaosElasticPreemptionSoak is the PR 9 acceptance soak: an
// autoscaled pool rides through one graceful drain (sole-replica output
// evacuated, zero-cost) and one blown grace window (worker lost mid-run,
// recovered through the retry/lineage ladder), finishing with histograms
// bit-identical to the fault-free pass while the pool demonstrably grew
// above its floor.
func TestChaosElasticPreemptionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	base, _, _, basePeak := runElastic(t, 7, false)
	if basePeak <= 2 {
		t.Fatalf("baseline pool peaked at %d; autoscaler never grew above its floor", basePeak)
	}
	got, st, rec, peak := runElastic(t, 7, true)
	if !bytes.Equal(base, got) {
		t.Fatalf("preempted run diverged from fault-free run: %d vs %d bytes", len(base), len(got))
	}
	if peak <= 2 {
		t.Fatalf("preempted pool peaked at %d; autoscaler never grew above its floor", peak)
	}
	if st.Preemptions < 2 {
		t.Fatalf("Preemptions = %d, want >= 2 (one graceful, one blown)", st.Preemptions)
	}
	if st.SoleReplicaOffloads < 1 {
		t.Fatalf("SoleReplicaOffloads = %d; the graceful drain must evacuate its output", st.SoleReplicaOffloads)
	}
	if st.WorkersLost < 1 {
		t.Fatalf("WorkersLost = %d; the blown grace window must surface as a loss", st.WorkersLost)
	}
	if st.Retries+st.LineageReruns < 1 {
		t.Fatalf("Retries = %d, LineageReruns = %d; the blown window must engage the recovery ladder",
			st.Retries, st.LineageReruns)
	}

	// Trace: the pool scaled up, both preemption notices landed, and at
	// least one sole-replica offload completed.
	var scaledUp, offloaded bool
	preempts := 0
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.EvPoolScale:
			scaledUp = scaledUp || strings.HasPrefix(ev.Detail, "up:")
		case obs.EvWorkerPreempt:
			preempts++
		case obs.EvWorkerDrain:
			offloaded = offloaded || strings.Contains(ev.Detail, "offloaded")
		}
	}
	if !scaledUp {
		t.Fatal("no scale-up EvPoolScale in the trace")
	}
	if preempts < 2 {
		t.Fatalf("EvWorkerPreempt count = %d, want >= 2", preempts)
	}
	if !offloaded {
		t.Fatal("no completed sole-replica offload in the trace")
	}
}
