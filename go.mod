module hepvine

go 1.22
