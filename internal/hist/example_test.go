package hist_test

import (
	"fmt"

	"hepvine/internal/hist"
)

// The Fig. 4 histogram: hist.new.Reg(100, 0, 200, name="met").
func ExampleReg() {
	h := hist.New(hist.Reg(4, 0, 200, "met"))
	h.FillN([]float64{10, 60, 60, 130, 250})
	fmt.Println(h.At(0), h.At(1), h.At(2), h.Overflow())
	// Output: 1 2 1 1
}

// Histogram addition is commutative and associative — the property that
// legalizes the paper's hierarchical reduction trees (Fig. 11).
func ExampleHist_Add() {
	a := hist.New(hist.Reg(2, 0, 2, "x"))
	a.Fill(0.5)
	b := hist.New(hist.Reg(2, 0, 2, "x"))
	b.Fill(0.5)
	b.Fill(1.5)
	if err := a.Add(b); err != nil {
		panic(err)
	}
	fmt.Println(a.At(0), a.At(1))
	// Output: 2 1
}

// Variable binning: fine bins where the physics is, coarse in the tails.
func ExampleVar() {
	h := hist.New(hist.Var([]float64{0, 10, 20, 50, 200}, "mass"))
	h.Fill(15)
	h.Fill(35)
	h.Fill(180)
	fmt.Println(h.At(1), h.At(2), h.At(3))
	// Output: 1 1 1
}
