package hist

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
)

func TestFillAndAt(t *testing.T) {
	h := New(Reg(10, 0, 10, "x"))
	h.Fill(3.5)
	h.Fill(3.9)
	h.Fill(7.0)
	if h.At(3) != 2 {
		t.Fatalf("bin 3 = %v", h.At(3))
	}
	if h.At(7) != 1 {
		t.Fatalf("bin 7 = %v", h.At(7))
	}
	if h.Entries != 3 {
		t.Fatalf("entries = %d", h.Entries)
	}
}

func TestUnderOverflow(t *testing.T) {
	h := New(Reg(4, 0, 4, "x"))
	h.Fill(-1)
	h.Fill(100)
	h.Fill(math.NaN())
	if h.Underflow() != 1 {
		t.Fatalf("underflow = %v", h.Underflow())
	}
	if h.Overflow() != 2 { // 100 and NaN
		t.Fatalf("overflow = %v", h.Overflow())
	}
	if h.InRangeSum() != 0 {
		t.Fatalf("in-range = %v", h.InRangeSum())
	}
	if h.Sum() != 3 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestEdgeValues(t *testing.T) {
	h := New(Reg(10, 0, 1, "x"))
	h.Fill(0) // first bin
	h.Fill(1) // hi edge → overflow (half-open convention)
	h.Fill(0.999999999)
	if h.At(0) != 1 {
		t.Fatalf("lo edge not in first bin")
	}
	if h.Overflow() != 1 {
		t.Fatalf("hi edge should overflow, got %v", h.Overflow())
	}
	if h.At(9) != 1 {
		t.Fatalf("value near hi should land in last bin, got %v", h.At(9))
	}
}

func TestWeightedFill(t *testing.T) {
	h := New(Reg(2, 0, 2, "x"))
	h.FillW(2.5, 0.5)
	h.FillW(0.5, 0.5)
	if h.At(0) != 3.0 {
		t.Fatalf("weighted bin = %v", h.At(0))
	}
}

func TestFillN(t *testing.T) {
	h := New(Reg(100, 0, 200, "met"))
	vals := []float64{10, 20, 30, 250, -5}
	h.FillN(vals)
	if h.Sum() != 5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Overflow() != 1 || h.Underflow() != 1 {
		t.Fatalf("under/over = %v/%v", h.Underflow(), h.Overflow())
	}
}

func TestFillNW(t *testing.T) {
	h := New(Reg(10, 0, 10, "x"))
	if err := h.FillNW([]float64{1, 2}, []float64{0.5, 1.5}); err != nil {
		t.Fatal(err)
	}
	if h.Sum() != 2 {
		t.Fatalf("weighted sum = %v", h.Sum())
	}
	if err := h.FillNW([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestAddCommutative(t *testing.T) {
	mk := func(seed uint64) *Hist {
		h := New(Reg(20, 0, 100, "x"))
		r := randx.New(seed)
		for i := 0; i < 500; i++ {
			h.FillW(r.Float64()*2, r.Range(-10, 110))
		}
		return h
	}
	a1, b1 := mk(1), mk(2)
	a2, b2 := mk(1), mk(2)
	if err := a1.Add(b1); err != nil {
		t.Fatal(err)
	}
	if err := b2.Add(a2); err != nil {
		t.Fatal(err)
	}
	for i := range a1.Counts {
		if math.Abs(a1.Counts[i]-b2.Counts[i]) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", i, a1.Counts[i], b2.Counts[i])
		}
	}
}

func TestAddAssociativeProperty(t *testing.T) {
	// (a+b)+c == a+(b+c) bin-by-bin, for random fills — the property that
	// legalizes arbitrary reduction trees (Fig. 11).
	check := func(sa, sb, sc uint16) bool {
		mk := func(seed uint16) *Hist {
			h := New(Reg(8, 0, 8, "x"))
			r := randx.New(uint64(seed) + 1)
			for i := 0; i < 50; i++ {
				h.FillW(r.Float64(), r.Range(-1, 9))
			}
			return h
		}
		left := mk(sa)
		if err := left.Add(mk(sb)); err != nil {
			return false
		}
		if err := left.Add(mk(sc)); err != nil {
			return false
		}
		bc := mk(sb)
		if err := bc.Add(mk(sc)); err != nil {
			return false
		}
		right := mk(sa)
		if err := right.Add(bc); err != nil {
			return false
		}
		for i := range left.Counts {
			if math.Abs(left.Counts[i]-right.Counts[i]) > 1e-6 {
				return false
			}
		}
		return left.Entries == right.Entries
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddIncompatible(t *testing.T) {
	a := New(Reg(10, 0, 1, "x"))
	b := New(Reg(11, 0, 1, "x"))
	if err := a.Add(b); err == nil {
		t.Fatal("incompatible add accepted")
	}
	c := New(Reg(10, 0, 1, "y"))
	if err := a.Add(c); err == nil {
		t.Fatal("different axis name accepted")
	}
}

func TestMultiDim(t *testing.T) {
	h := New(Reg(4, 0, 4, "x"), Reg(2, 0, 2, "y"))
	h.Fill(1.5, 0.5)
	h.Fill(1.5, 1.5)
	h.Fill(3.5, 0.5)
	if h.At(1, 0) != 1 || h.At(1, 1) != 1 || h.At(3, 0) != 1 {
		t.Fatalf("2-D fill wrong: %v", h.Counts)
	}
	if h.InRangeSum() != 3 {
		t.Fatalf("in-range sum = %v", h.InRangeSum())
	}
}

func TestCloneIndependent(t *testing.T) {
	h := New(Reg(5, 0, 5, "x"))
	h.Fill(1)
	c := h.Clone()
	c.Fill(1)
	if h.At(1) != 1 || c.At(1) != 2 {
		t.Fatalf("clone shares storage: %v vs %v", h.At(1), c.At(1))
	}
}

func TestResetZeroes(t *testing.T) {
	h := New(Reg(5, 0, 5, "x"))
	h.Fill(1)
	h.Reset()
	if h.Sum() != 0 || h.Entries != 0 {
		t.Fatalf("reset incomplete")
	}
}

func TestMean(t *testing.T) {
	h := New(Reg(100, 0, 10, "x"))
	for i := 0; i < 1000; i++ {
		h.Fill(5.0)
	}
	if m := h.Mean(); math.Abs(m-5.05) > 0.01 { // bin center of bin containing 5.0
		t.Fatalf("mean = %v", m)
	}
}

func TestBinEdgesAndCenters(t *testing.T) {
	a := Reg(4, 0, 8, "x")
	edges := a.BinEdges()
	want := []float64{0, 2, 4, 6, 8}
	for i, e := range edges {
		if e != want[i] {
			t.Fatalf("edges = %v", edges)
		}
	}
	if a.BinCenter(0) != 1 || a.BinCenter(3) != 7 {
		t.Fatalf("centers wrong")
	}
}

func TestRegValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Reg(0, 0, 1, "x") },
		func() { Reg(5, 2, 2, "x") },
		func() { Reg(5, 3, 1, "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestASCIIRender(t *testing.T) {
	h := New(Reg(3, 0, 3, "x"))
	h.Fill(0.5)
	h.Fill(0.5)
	h.Fill(1.5)
	s := h.ASCII(10)
	if !strings.Contains(s, "##########") {
		t.Fatalf("ASCII missing full bar:\n%s", s)
	}
	if len(strings.Split(strings.TrimRight(s, "\n"), "\n")) != 3 {
		t.Fatalf("ASCII should have 3 rows:\n%s", s)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	h := New(Reg(16, -2, 2, "eta"), Reg(8, 0, 100, "pt"))
	r := randx.New(99)
	for i := 0; i < 1000; i++ {
		h.FillW(r.Float64(), r.Range(-3, 3), r.Range(-10, 120))
	}
	data := h.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compatible(h) {
		t.Fatal("axes lost in round trip")
	}
	if got.Entries != h.Entries {
		t.Fatalf("entries %d vs %d", got.Entries, h.Entries)
	}
	for i := range h.Counts {
		if got.Counts[i] != h.Counts[i] {
			t.Fatalf("count %d differs", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a histogram")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil accepted")
	}
	h := New(Reg(4, 0, 1, "x"))
	data := h.Marshal()
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	check := func(seed uint16, bins uint8) bool {
		b := int(bins)%32 + 1
		h := New(Reg(b, 0, float64(b), "x"))
		r := randx.New(uint64(seed))
		for i := 0; i < 100; i++ {
			h.FillW(r.Float64(), r.Range(-1, float64(b)+1))
		}
		got, err := Unmarshal(h.Marshal())
		if err != nil {
			return false
		}
		for i := range h.Counts {
			if got.Counts[i] != h.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRebin(t *testing.T) {
	h := New(Reg(8, 0, 8, "x"))
	for i := 0; i < 8; i++ {
		h.FillW(float64(i+1), float64(i)+0.5)
	}
	h.Fill(-1) // underflow
	h.Fill(99) // overflow
	r, err := h.Rebin(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Axes[0].Bins != 4 {
		t.Fatalf("bins = %d", r.Axes[0].Bins)
	}
	if r.At(0) != 3 || r.At(3) != 15 { // 1+2, 7+8
		t.Fatalf("rebinned: %v %v", r.At(0), r.At(3))
	}
	if r.Underflow() != 1 || r.Overflow() != 1 {
		t.Fatal("under/overflow lost")
	}
	if r.Sum() != h.Sum() {
		t.Fatalf("weight not preserved: %v vs %v", r.Sum(), h.Sum())
	}
	if _, err := h.Rebin(3); err == nil {
		t.Fatal("indivisible rebin accepted")
	}
	h2 := New(Reg(2, 0, 1, "a"), Reg(2, 0, 1, "b"))
	if _, err := h2.Rebin(2); err == nil {
		t.Fatal("2-D rebin accepted")
	}
}

func TestVarAxisIndexing(t *testing.T) {
	// Typical mass binning: fine at low mass, coarse at high.
	h := New(Var([]float64{0, 10, 30, 100, 500}, "m"))
	h.Fill(5)    // bin 0
	h.Fill(10)   // bin 1 (left-closed)
	h.Fill(29.9) // bin 1
	h.Fill(99)   // bin 2
	h.Fill(499)  // bin 3
	h.Fill(500)  // overflow (right-open)
	h.Fill(-1)   // underflow
	if h.At(0) != 1 || h.At(1) != 2 || h.At(2) != 1 || h.At(3) != 1 {
		t.Fatalf("var bins: %v %v %v %v", h.At(0), h.At(1), h.At(2), h.At(3))
	}
	if h.Overflow() != 1 || h.Underflow() != 1 {
		t.Fatalf("under/over = %v/%v", h.Underflow(), h.Overflow())
	}
	if c := h.Axes[0].BinCenter(1); c != 20 {
		t.Fatalf("var center = %v", c)
	}
	edges := h.Axes[0].BinEdges()
	if len(edges) != 5 || edges[2] != 30 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestVarAxisValidation(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edges %v accepted", edges)
				}
			}()
			Var(edges, "x")
		}()
	}
	// Var copies its input.
	in := []float64{0, 1, 2}
	a := Var(in, "x")
	in[1] = 99
	if a.Edges[1] != 1 {
		t.Fatal("Var aliased caller slice")
	}
}

func TestVarAxisMatchesRegWhenUniform(t *testing.T) {
	// A Var axis with uniform edges must bin identically to Reg.
	reg := New(Reg(10, 0, 10, "x"))
	vr := New(Var([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "x"))
	r := randx.New(4)
	for i := 0; i < 5000; i++ {
		v := r.Range(-1, 11)
		reg.Fill(v)
		vr.Fill(v)
	}
	for i := 0; i < 10; i++ {
		if reg.At(i) != vr.At(i) {
			t.Fatalf("bin %d: reg %v var %v", i, reg.At(i), vr.At(i))
		}
	}
	if reg.Underflow() != vr.Underflow() || reg.Overflow() != vr.Overflow() {
		t.Fatal("flow bins differ")
	}
}

func TestVarAxisCodecRoundTrip(t *testing.T) {
	h := New(Var([]float64{0, 1, 5, 25, 125}, "logx"), Reg(4, 0, 4, "y"))
	r := randx.New(6)
	for i := 0; i < 500; i++ {
		h.FillW(r.Float64(), r.Range(-1, 130), r.Range(-1, 5))
	}
	got, err := Unmarshal(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Compatible(h) {
		t.Fatal("axes lost")
	}
	if !got.Axes[0].IsVariable() || got.Axes[1].IsVariable() {
		t.Fatal("variable flags lost")
	}
	for i := range h.Counts {
		if got.Counts[i] != h.Counts[i] {
			t.Fatalf("bin %d differs", i)
		}
	}
}

func TestVarVsRegIncompatible(t *testing.T) {
	a := New(Reg(4, 0, 4, "x"))
	b := New(Var([]float64{0, 1, 2, 3, 4}, "x"))
	if err := a.Add(b); err == nil {
		t.Fatal("reg+var merged")
	}
	c := New(Var([]float64{0, 1, 2, 3.5, 4}, "x"))
	if err := b.Add(c); err == nil {
		t.Fatal("different edges merged")
	}
	d := New(Var([]float64{0, 1, 2, 3, 4}, "x"))
	if err := b.Add(d); err != nil {
		t.Fatalf("identical var axes rejected: %v", err)
	}
}

func TestVarRebinRejected(t *testing.T) {
	h := New(Var([]float64{0, 1, 3, 9}, "x"))
	if _, err := h.Rebin(2); err == nil {
		t.Fatal("var rebin accepted")
	}
}

// Robustness: Unmarshal must never panic on arbitrary bytes.
func TestUnmarshalNeverPanics(t *testing.T) {
	check := func(seed uint16, n uint8) bool {
		rng := randx.New(uint64(seed) + 1)
		buf := make([]byte, int(n))
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		if rng.Bool(0.5) {
			copy(buf, histMagic[:])
		}
		defer func() {
			if recover() != nil {
				t.Errorf("Unmarshal panicked on %x", buf)
			}
		}()
		_, _ = Unmarshal(buf)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
