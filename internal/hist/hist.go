// Package hist is a small histogram library modelled on the Python `hist`
// package used by Coffea analyses.
//
// A Hist has one or more regular (uniform-binned) axes with underflow and
// overflow bins and double-precision weighted storage. The key property the
// paper's reduction trees rely on is that histogram addition is commutative
// and associative, so partial results can be accumulated in any order and in
// any tree shape (§II.A, Fig. 11). That property is enforced by tests,
// including property-based tests.
package hist

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Axis is one histogram axis: regular (uniform bins, hist.new.Reg) or
// variable-binned (explicit edges, hist.new.Var). For variable axes, Edges
// holds the Bins+1 ascending bin boundaries and Lo/Hi mirror its endpoints.
type Axis struct {
	Name  string
	Label string
	Bins  int
	Lo    float64
	Hi    float64
	Edges []float64 // nil for regular axes
}

// IsVariable reports whether the axis uses explicit edges.
func (a Axis) IsVariable() bool { return a.Edges != nil }

// Reg constructs a regular axis. It panics on a non-positive bin count or an
// empty range, mirroring the Python library's eager validation.
func Reg(bins int, lo, hi float64, name string) Axis {
	if bins <= 0 {
		panic("hist: axis needs at least one bin")
	}
	if !(hi > lo) {
		panic("hist: axis range must be non-empty")
	}
	return Axis{Name: name, Bins: bins, Lo: lo, Hi: hi}
}

// Var constructs a variable-binned axis from ascending edges. It panics on
// fewer than two edges or a non-increasing sequence.
func Var(edges []float64, name string) Axis {
	if len(edges) < 2 {
		panic("hist: variable axis needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic("hist: variable axis edges must be strictly increasing")
		}
	}
	cp := append([]float64(nil), edges...)
	return Axis{Name: name, Bins: len(cp) - 1, Lo: cp[0], Hi: cp[len(cp)-1], Edges: cp}
}

// index maps a value to a storage index on this axis: 0 is underflow,
// 1..Bins are in-range bins, Bins+1 is overflow. NaN lands in overflow.
func (a Axis) index(v float64) int {
	if math.IsNaN(v) {
		return a.Bins + 1
	}
	if v < a.Lo {
		return 0
	}
	if v >= a.Hi {
		return a.Bins + 1
	}
	if a.Edges != nil {
		// Binary search for the rightmost edge <= v.
		lo, hi := 0, len(a.Edges)-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if a.Edges[mid] <= v {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	i := int(float64(a.Bins) * (v - a.Lo) / (a.Hi - a.Lo))
	if i >= a.Bins { // guard against floating-point edge at Hi
		i = a.Bins - 1
	}
	return i + 1
}

// BinCenter reports the center of in-range bin i (0-based, excluding
// under/overflow).
func (a Axis) BinCenter(i int) float64 {
	if a.Edges != nil {
		return (a.Edges[i] + a.Edges[i+1]) / 2
	}
	w := (a.Hi - a.Lo) / float64(a.Bins)
	return a.Lo + (float64(i)+0.5)*w
}

// BinEdges reports the Bins+1 edges of the axis.
func (a Axis) BinEdges() []float64 {
	if a.Edges != nil {
		return append([]float64(nil), a.Edges...)
	}
	edges := make([]float64, a.Bins+1)
	w := (a.Hi - a.Lo) / float64(a.Bins)
	for i := range edges {
		edges[i] = a.Lo + float64(i)*w
	}
	edges[a.Bins] = a.Hi
	return edges
}

// Hist is an N-dimensional histogram with double (weighted) storage,
// including under/overflow on every axis.
type Hist struct {
	Axes    []Axis
	Counts  []float64 // flattened, row-major over (Bins+2) per axis
	Entries uint64    // number of Fill calls recorded (unweighted)
	strides []int
}

// New constructs a histogram over the given axes.
func New(axes ...Axis) *Hist {
	if len(axes) == 0 {
		panic("hist: need at least one axis")
	}
	h := &Hist{Axes: axes}
	size := 1
	h.strides = make([]int, len(axes))
	for i := len(axes) - 1; i >= 0; i-- {
		h.strides[i] = size
		size *= axes[i].Bins + 2
	}
	h.Counts = make([]float64, size)
	return h
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	nh := New(h.Axes...)
	copy(nh.Counts, h.Counts)
	nh.Entries = h.Entries
	return nh
}

// Reset zeroes all bins.
func (h *Hist) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Entries = 0
}

// Fill records one entry with weight 1 at the given coordinates.
func (h *Hist) Fill(coords ...float64) {
	h.FillW(1, coords...)
}

// FillW records one entry with the given weight.
func (h *Hist) FillW(weight float64, coords ...float64) {
	if len(coords) != len(h.Axes) {
		panic(fmt.Sprintf("hist: Fill with %d coords on %d axes", len(coords), len(h.Axes)))
	}
	idx := 0
	for d, v := range coords {
		idx += h.Axes[d].index(v) * h.strides[d]
	}
	h.Counts[idx] += weight
	h.Entries++
}

// FillN bulk-fills a 1-D histogram from a column of values, the hot path for
// columnar analysis kernels.
func (h *Hist) FillN(values []float64) {
	if len(h.Axes) != 1 {
		panic("hist: FillN requires a 1-D histogram")
	}
	a := h.Axes[0]
	for _, v := range values {
		h.Counts[a.index(v)]++
	}
	h.Entries += uint64(len(values))
}

// FillNW bulk-fills a 1-D histogram with per-value weights.
func (h *Hist) FillNW(values, weights []float64) error {
	if len(h.Axes) != 1 {
		return errors.New("hist: FillNW requires a 1-D histogram")
	}
	if len(values) != len(weights) {
		return fmt.Errorf("hist: %d values vs %d weights", len(values), len(weights))
	}
	a := h.Axes[0]
	for i, v := range values {
		h.Counts[a.index(v)] += weights[i]
	}
	h.Entries += uint64(len(values))
	return nil
}

// Compatible reports whether two histograms share identical binning and can
// therefore be added.
func (h *Hist) Compatible(o *Hist) bool {
	if len(h.Axes) != len(o.Axes) {
		return false
	}
	for i := range h.Axes {
		a, b := h.Axes[i], o.Axes[i]
		if a.Bins != b.Bins || a.Lo != b.Lo || a.Hi != b.Hi || a.Name != b.Name {
			return false
		}
		if a.IsVariable() != b.IsVariable() {
			return false
		}
		if a.IsVariable() {
			for j := range a.Edges {
				if a.Edges[j] != b.Edges[j] {
					return false
				}
			}
		}
	}
	return true
}

// Add accumulates o into h. Addition is commutative and associative, the
// property that makes hierarchical (tree) reduction legal.
func (h *Hist) Add(o *Hist) error {
	if !h.Compatible(o) {
		return errors.New("hist: incompatible axes")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Entries += o.Entries
	return nil
}

// Sum reports the total weight including under/overflow.
func (h *Hist) Sum() float64 {
	s := 0.0
	for _, c := range h.Counts {
		s += c
	}
	return s
}

// InRangeSum reports the total weight excluding under/overflow bins.
func (h *Hist) InRangeSum() float64 {
	s := 0.0
	h.eachInRange(func(idx int) { s += h.Counts[idx] })
	return s
}

func (h *Hist) eachInRange(f func(flatIdx int)) {
	coord := make([]int, len(h.Axes))
	for i := range coord {
		coord[i] = 1
	}
	for {
		idx := 0
		for d, c := range coord {
			idx += c * h.strides[d]
		}
		f(idx)
		d := len(coord) - 1
		for d >= 0 {
			coord[d]++
			if coord[d] <= h.Axes[d].Bins {
				break
			}
			coord[d] = 1
			d--
		}
		if d < 0 {
			return
		}
	}
}

// At reports the weight in the in-range bin with the given 0-based indices.
func (h *Hist) At(bin ...int) float64 {
	if len(bin) != len(h.Axes) {
		panic("hist: At with wrong dimensionality")
	}
	idx := 0
	for d, b := range bin {
		if b < 0 || b >= h.Axes[d].Bins {
			panic("hist: At out of range")
		}
		idx += (b + 1) * h.strides[d]
	}
	return h.Counts[idx]
}

// Underflow and Overflow report the out-of-range weight of a 1-D histogram.
func (h *Hist) Underflow() float64 {
	if len(h.Axes) != 1 {
		panic("hist: Underflow requires 1-D")
	}
	return h.Counts[0]
}

// Overflow reports the weight above the last bin of a 1-D histogram.
func (h *Hist) Overflow() float64 {
	if len(h.Axes) != 1 {
		panic("hist: Overflow requires 1-D")
	}
	return h.Counts[len(h.Counts)-1]
}

// Mean reports the weighted mean of a 1-D histogram's in-range bins, using
// bin centers.
func (h *Hist) Mean() float64 {
	if len(h.Axes) != 1 {
		panic("hist: Mean requires 1-D")
	}
	a := h.Axes[0]
	var wsum, vsum float64
	for i := 0; i < a.Bins; i++ {
		w := h.Counts[i+1]
		wsum += w
		vsum += w * a.BinCenter(i)
	}
	if wsum == 0 {
		return 0
	}
	return vsum / wsum
}

// Rebin merges groups of `factor` adjacent bins of a 1-D histogram into
// one, returning a new histogram (total weight preserved; Bins must be
// divisible by factor).
func (h *Hist) Rebin(factor int) (*Hist, error) {
	if len(h.Axes) != 1 {
		return nil, errors.New("hist: Rebin requires a 1-D histogram")
	}
	a := h.Axes[0]
	if a.IsVariable() {
		return nil, errors.New("hist: Rebin supports regular axes only")
	}
	if factor <= 0 || a.Bins%factor != 0 {
		return nil, fmt.Errorf("hist: cannot rebin %d bins by %d", a.Bins, factor)
	}
	nh := New(Reg(a.Bins/factor, a.Lo, a.Hi, a.Name))
	nh.Counts[0] = h.Counts[0]                              // underflow
	nh.Counts[len(nh.Counts)-1] = h.Counts[len(h.Counts)-1] // overflow
	for i := 0; i < a.Bins; i++ {
		nh.Counts[i/factor+1] += h.Counts[i+1]
	}
	nh.Entries = h.Entries
	return nh, nil
}

// String renders a compact one-line summary.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist(")
	for i, a := range h.Axes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s[%d;%g,%g]", a.Name, a.Bins, a.Lo, a.Hi)
	}
	fmt.Fprintf(&b, " entries=%d sum=%g)", h.Entries, h.Sum())
	return b.String()
}

// ASCII renders a 1-D histogram as a terminal bar chart, used by the
// examples and the bench harness to show distributions (Fig. 8).
func (h *Hist) ASCII(width int) string {
	if len(h.Axes) != 1 {
		return h.String()
	}
	if width <= 0 {
		width = 50
	}
	a := h.Axes[0]
	max := 0.0
	for i := 0; i < a.Bins; i++ {
		if c := h.Counts[i+1]; c > max {
			max = c
		}
	}
	var b strings.Builder
	for i := 0; i < a.Bins; i++ {
		c := h.Counts[i+1]
		n := 0
		if max > 0 {
			n = int(float64(width) * c / max)
		}
		fmt.Fprintf(&b, "%10.3g |%s %g\n", a.BinCenter(i), strings.Repeat("#", n), c)
	}
	return b.String()
}
