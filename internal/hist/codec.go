package hist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format for histograms, used by the live engine to ship partial
// results between workers during reductions. Layout (little-endian):
//
//	magic "HST2" | nAxes u32 | per axis: nameLen u32, name, bins u32,
//	lo f64, hi f64, varFlag u8 [, edges (bins+1) f64] | entries u64 |
//	nCounts u64 | counts f64...
var histMagic = [4]byte{'H', 'S', 'T', '2'}

// Marshal encodes the histogram.
func (h *Hist) Marshal() []byte {
	var b bytes.Buffer
	b.Write(histMagic[:])
	writeU32(&b, uint32(len(h.Axes)))
	for _, a := range h.Axes {
		writeU32(&b, uint32(len(a.Name)))
		b.WriteString(a.Name)
		writeU32(&b, uint32(a.Bins))
		writeF64(&b, a.Lo)
		writeF64(&b, a.Hi)
		if a.IsVariable() {
			b.WriteByte(1)
			for _, e := range a.Edges {
				writeF64(&b, e)
			}
		} else {
			b.WriteByte(0)
		}
	}
	writeU64(&b, h.Entries)
	writeU64(&b, uint64(len(h.Counts)))
	for _, c := range h.Counts {
		writeF64(&b, c)
	}
	return b.Bytes()
}

// Unmarshal decodes a histogram previously encoded with Marshal.
func Unmarshal(data []byte) (*Hist, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != histMagic {
		return nil, fmt.Errorf("hist: bad magic")
	}
	nAxes, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if nAxes == 0 || nAxes > 16 {
		return nil, fmt.Errorf("hist: implausible axis count %d", nAxes)
	}
	axes := make([]Axis, nAxes)
	for i := range axes {
		nameLen, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("hist: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		bins, err := readU32(r)
		if err != nil {
			return nil, err
		}
		lo, err := readF64(r)
		if err != nil {
			return nil, err
		}
		hi, err := readF64(r)
		if err != nil {
			return nil, err
		}
		if bins == 0 || !(hi > lo) {
			return nil, fmt.Errorf("hist: invalid axis %d", i)
		}
		varFlag, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("hist: truncated axis flag: %w", err)
		}
		ax := Axis{Name: string(name), Bins: int(bins), Lo: lo, Hi: hi}
		if varFlag == 1 {
			edges := make([]float64, bins+1)
			for j := range edges {
				if edges[j], err = readF64(r); err != nil {
					return nil, fmt.Errorf("hist: truncated edges: %w", err)
				}
			}
			ax.Edges = edges
		} else if varFlag != 0 {
			return nil, fmt.Errorf("hist: invalid axis flag %d", varFlag)
		}
		axes[i] = ax
	}
	entries, err := readU64(r)
	if err != nil {
		return nil, err
	}
	nCounts, err := readU64(r)
	if err != nil {
		return nil, err
	}
	h := New(axes...)
	if uint64(len(h.Counts)) != nCounts {
		return nil, fmt.Errorf("hist: count size mismatch: have %d want %d", nCounts, len(h.Counts))
	}
	for i := range h.Counts {
		c, err := readF64(r)
		if err != nil {
			return nil, err
		}
		h.Counts[i] = c
	}
	h.Entries = entries
	return h, nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func writeF64(b *bytes.Buffer, v float64) {
	writeU64(b, math.Float64bits(v))
}

func readU32(r *bytes.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("hist: truncated: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r *bytes.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("hist: truncated: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readF64(r *bytes.Reader) (float64, error) {
	v, err := readU64(r)
	return math.Float64frombits(v), err
}
