package hist

import (
	"testing"

	"hepvine/internal/randx"
)

func BenchmarkFillN(b *testing.B) {
	vals := make([]float64, 10000)
	r := randx.New(1)
	for i := range vals {
		vals[i] = r.Range(-10, 210)
	}
	h := New(Reg(100, 0, 200, "met"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FillN(vals)
	}
}

func BenchmarkAdd(b *testing.B) {
	mk := func() *Hist {
		h := New(Reg(100, 0, 200, "met"))
		r := randx.New(2)
		for i := 0; i < 1000; i++ {
			h.Fill(r.Range(0, 200))
		}
		return h
	}
	a, c := mk(), mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Add(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalUnmarshal(b *testing.B) {
	h := New(Reg(100, 0, 200, "met"))
	r := randx.New(3)
	for i := 0; i < 5000; i++ {
		h.Fill(r.Range(0, 200))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(h.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}
