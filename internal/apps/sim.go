package apps

import (
	"fmt"
	"time"

	"hepvine/internal/core"
	"hepvine/internal/dag"
	"hepvine/internal/randx"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

// Simulation workloads calibrated to Table II:
//
//	DV3-Small      25 GB input
//	DV3-Medium    200 GB input
//	DV3-Large     1.2 TB input, ≈17k tasks  (the "standard" run)
//	DV3-Huge      same 1.2 TB, ≈185k tasks, 10k initially-executable
//	RS-TriPhoton  500 GB input, ≈4k tasks, 20 datasets, huge intermediates
//
// Task durations follow the Fig. 8 shape: lognormal with most mass between
// 1s and 10s and outliers both sides. All sampling is seeded.

// DV3Size selects a Table II configuration.
type DV3Size int

// Table II DV3 sizes.
const (
	DV3Small DV3Size = iota
	DV3Medium
	DV3Large
	DV3Huge
)

func (s DV3Size) String() string {
	switch s {
	case DV3Small:
		return "DV3-Small"
	case DV3Medium:
		return "DV3-Medium"
	case DV3Large:
		return "DV3-Large"
	case DV3Huge:
		return "DV3-Huge"
	default:
		return fmt.Sprintf("DV3Size(%d)", int(s))
	}
}

// dv3Params shapes a DV3 workload.
type dv3Params struct {
	processors int
	inputBytes units.Bytes
	outputSize units.Bytes // per-processor partial-result size
	fanIn      int
	computeMu  float64 // lognormal seconds
	computeSig float64
}

func dv3ParamsFor(size DV3Size) dv3Params {
	switch size {
	case DV3Small:
		return dv3Params{processors: 310, inputBytes: units.GBf(25), outputSize: units.MBf(85), fanIn: 8, computeMu: 1.6, computeSig: 0.75}
	case DV3Medium:
		return dv3Params{processors: 2480, inputBytes: units.GBf(200), outputSize: units.MBf(85), fanIn: 8, computeMu: 1.6, computeSig: 0.75}
	case DV3Large:
		return dv3Params{processors: 15000, inputBytes: units.TBf(1.2), outputSize: units.MBf(85), fanIn: 8, computeMu: 1.6, computeSig: 0.75}
	case DV3Huge:
		// Built by DV3 below via the dedicated huge builder.
		return dv3Params{}
	default:
		panic("apps: unknown DV3 size")
	}
}

// DV3 builds the simulation workload for the given Table II size.
func DV3(size DV3Size, seed uint64) *core.Workload {
	if size == DV3Huge {
		return dv3Huge(seed)
	}
	p := dv3ParamsFor(size)
	return buildMapReduce(mapReduceSpec{
		name:       size.String(),
		datasets:   1,
		processors: p.processors,
		inputBytes: p.inputBytes,
		outputSize: p.outputSize,
		fanIn:      p.fanIn,
		computeMu:  p.computeMu,
		computeSig: p.computeSig,
		accBase:    300 * time.Millisecond,
		accPerIn:   500 * time.Millisecond,
		seed:       seed,
	})
}

// TriPhoton builds the RS-TriPhoton workload: 20 datasets, ≈4k processor
// tasks over 500 GB, and intermediate results larger than the input
// (§III: "intermediate data ... may be even larger than the initial set of
// data"). fanIn < 2 reproduces the naive single-task-per-dataset reduction
// of Fig. 11a; fanIn = 2 the binary tree of Fig. 11b.
func TriPhoton(fanIn int, seed uint64) *core.Workload {
	return buildMapReduce(mapReduceSpec{
		name:       "RS-TriPhoton",
		datasets:   20,
		processors: 4000,
		inputBytes: units.GBf(500),
		outputSize: units.GBf(1.25),
		fanIn:      fanIn,
		computeMu:  1.8,
		computeSig: 0.6,
		accBase:    2 * time.Second,
		accPerIn:   1500 * time.Millisecond,
		seed:       seed,
	})
}

// mapReduceSpec parameterizes the common map+hierarchical-reduce topology
// of Fig. 3.
type mapReduceSpec struct {
	name       string
	datasets   int
	processors int // total across datasets
	inputBytes units.Bytes
	outputSize units.Bytes
	fanIn      int
	computeMu  float64
	computeSig float64
	accBase    time.Duration
	accPerIn   time.Duration
	seed       uint64
}

func buildMapReduce(spec mapReduceSpec) *core.Workload {
	rng := randx.NewStream(spec.seed, 7)
	g := dag.NewGraph()
	files := make(map[storage.FileID]units.Bytes)
	chunk := spec.inputBytes / units.Bytes(spec.processors)

	perDS := spec.processors / spec.datasets
	var dsRoots []dag.Key
	idx := 0
	for d := 0; d < spec.datasets; d++ {
		nproc := perDS
		if d == spec.datasets-1 {
			nproc = spec.processors - perDS*(spec.datasets-1)
		}
		var procKeys []dag.Key
		for i := 0; i < nproc; i++ {
			k := dag.Key(fmt.Sprintf("proc-%d", idx))
			f := storage.FileID(fmt.Sprintf("ds:%s-%d", spec.name, idx))
			files[f] = jitterBytes(rng, chunk, 0.25)
			compute := time.Duration(rng.BoundedLogNormal(spec.computeMu, spec.computeSig, 0.3, 150) * float64(time.Second))
			g.MustAdd(&dag.Task{
				Key:      k,
				Category: "processor",
				Spec: &core.SimSpec{
					Compute:    compute,
					Inputs:     []storage.FileID{f},
					OutputSize: jitterBytes(rng, spec.outputSize, 0.15),
				},
			})
			procKeys = append(procKeys, k)
			idx++
		}
		root, err := dag.TreeReduce(g, fmt.Sprintf("acc-ds%d", d), procKeys, spec.fanIn,
			func(level, index int, inputs []dag.Key) *dag.Task {
				return &dag.Task{
					Category: "accumulate",
					Spec: &core.SimSpec{
						Compute:    spec.accBase + time.Duration(len(inputs))*spec.accPerIn,
						OutputSize: spec.outputSize,
					},
				}
			})
		if err != nil {
			panic(err)
		}
		dsRoots = append(dsRoots, root)
	}
	root := dsRoots[0]
	if len(dsRoots) > 1 {
		var err error
		// The cross-dataset merge is small; always tree it.
		fan := spec.fanIn
		if fan < 2 {
			fan = 0 // keep naive shape end-to-end for the Fig. 11a case
		}
		root, err = dag.TreeReduce(g, "acc-final", dsRoots, fan,
			func(level, index int, inputs []dag.Key) *dag.Task {
				return &dag.Task{
					Category: "accumulate",
					Spec: &core.SimSpec{
						Compute:    spec.accBase + time.Duration(len(inputs))*spec.accPerIn,
						OutputSize: spec.outputSize,
					},
				}
			})
		if err != nil {
			panic(err)
		}
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	wl := &core.Workload{Name: spec.name, Graph: g, Root: root, DatasetFiles: files}
	if err := wl.Validate(); err != nil {
		panic(err)
	}
	return wl
}

// dv3Huge builds the 185k-task configuration of Fig. 15: the same 1.2 TB
// dataset, but 10k initially-executable preprocessing tasks feeding 16
// systematic-variation passes, each with its own accumulation tree.
func dv3Huge(seed uint64) *core.Workload {
	return dv3HugeCustom(10000, seed)
}

// dv3HugeCustom builds the Huge topology over a custom preprocessing width.
func dv3HugeCustom(prepro int, seed uint64) *core.Workload {
	const (
		variations = 16
		fanIn      = 8
	)
	if prepro < 8 {
		prepro = 8
	}
	rng := randx.NewStream(seed, 7)
	g := dag.NewGraph()
	files := make(map[storage.FileID]units.Bytes)
	input := units.Bytes(float64(units.TBf(1.2)) * float64(prepro) / 10000)
	chunk := input / units.Bytes(prepro)

	var varRoots []dag.Key
	preKeys := make([]dag.Key, prepro)
	for i := 0; i < prepro; i++ {
		k := dag.Key(fmt.Sprintf("pre-%d", i))
		f := storage.FileID(fmt.Sprintf("ds:DV3-Huge-%d", i))
		files[f] = jitterBytes(rng, chunk, 0.25)
		g.MustAdd(&dag.Task{
			Key:      k,
			Category: "preprocess",
			Spec: &core.SimSpec{
				Compute:    time.Duration(rng.BoundedLogNormal(1.0, 0.6, 0.3, 60) * float64(time.Second)),
				Inputs:     []storage.FileID{f},
				OutputSize: units.MBf(60),
			},
		})
		preKeys[i] = k
	}
	for v := 0; v < variations; v++ {
		var procKeys []dag.Key
		for i := 0; i < prepro; i++ {
			k := dag.Key(fmt.Sprintf("var%d-%d", v, i))
			g.MustAdd(&dag.Task{
				Key:      k,
				Category: "processor",
				Deps:     []dag.Key{preKeys[i]},
				Spec: &core.SimSpec{
					Compute:    time.Duration(rng.BoundedLogNormal(0.3, 0.6, 0.2, 30) * float64(time.Second)),
					OutputSize: units.MBf(12),
				},
			})
			procKeys = append(procKeys, k)
		}
		root, err := dag.TreeReduce(g, fmt.Sprintf("acc-v%d", v), procKeys, fanIn,
			func(level, index int, inputs []dag.Key) *dag.Task {
				return &dag.Task{
					Category: "accumulate",
					Spec: &core.SimSpec{
						Compute:    200*time.Millisecond + time.Duration(len(inputs))*50*time.Millisecond,
						OutputSize: units.MBf(12),
					},
				}
			})
		if err != nil {
			panic(err)
		}
		varRoots = append(varRoots, root)
	}
	root, err := dag.TreeReduce(g, "acc-final", varRoots, fanIn,
		func(level, index int, inputs []dag.Key) *dag.Task {
			return &dag.Task{
				Category: "accumulate",
				Spec: &core.SimSpec{
					Compute:    500 * time.Millisecond,
					OutputSize: units.MBf(12),
				},
			}
		})
	if err != nil {
		panic(err)
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	wl := &core.Workload{Name: "DV3-Huge", Graph: g, Root: root, DatasetFiles: files}
	if err := wl.Validate(); err != nil {
		panic(err)
	}
	return wl
}

// HoistSweep builds the Fig. 10 microbenchmark: n independent function
// calls of the given per-task compute time, no meaningful data movement.
func HoistSweep(n int, compute time.Duration, seed uint64) *core.Workload {
	g := dag.NewGraph()
	files := make(map[storage.FileID]units.Bytes)
	keys := make([]dag.Key, n)
	for i := 0; i < n; i++ {
		k := dag.Key(fmt.Sprintf("fn-%d", i))
		g.MustAdd(&dag.Task{
			Key:      k,
			Category: "function",
			Spec:     &core.SimSpec{Compute: compute, OutputSize: units.KBf(64)},
		})
		keys[i] = k
	}
	root, err := dag.TreeReduce(g, "gather", keys, 64, func(level, index int, inputs []dag.Key) *dag.Task {
		return &dag.Task{
			Category: "accumulate",
			Spec:     &core.SimSpec{Compute: 50 * time.Millisecond, OutputSize: units.KBf(64)},
		}
	})
	if err != nil {
		panic(err)
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	wl := &core.Workload{Name: fmt.Sprintf("hoist-sweep-%v", compute), Graph: g, Root: root, DatasetFiles: files}
	if err := wl.Validate(); err != nil {
		panic(err)
	}
	return wl
}

// jitterBytes perturbs a size by ±frac, uniformly.
func jitterBytes(rng *randx.RNG, base units.Bytes, frac float64) units.Bytes {
	f := 1 + rng.Range(-frac, frac)
	return units.Bytes(float64(base) * f)
}
