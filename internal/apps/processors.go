// Package apps defines the two analysis applications of the paper:
//
//   - DV3 (§II.A): "searches collision events to find particle jets that
//     result from decays of the Higgs boson to two bottom quarks and to two
//     gluons" — a jet-selection + dijet-mass analysis.
//   - RS-TriPhoton (§II.A): "searches collision events [to] find rare
//     signatures of new physics which appear in a three-photon final
//     state" — a photon-selection + tri-photon-mass analysis.
//
// Each exists twice, honestly labelled: a *live* processor with real
// columnar physics kernels (runs on internal/vine via internal/daskvine),
// and a *simulation workload* (sim.go) whose task counts, data volumes and
// cost distributions are calibrated to Table II for cluster-scale
// experiments.
package apps

import (
	"math"

	"hepvine/internal/coffea"
	"hepvine/internal/hist"
)

// DV3Processor is the live DV3 analysis: select b-tagged dijet events and
// histogram the dijet invariant mass alongside control distributions.
type DV3Processor struct{}

// Name implements coffea.Processor.
func (DV3Processor) Name() string { return "dv3" }

// Columns lists the branches the analysis touches — a small subset of the
// file, which is what makes column-selective I/O pay off.
func (DV3Processor) Columns() []string {
	return []string{"MET_pt", "nJet", "Jet_pt", "Jet_eta", "Jet_phi", "Jet_mass", "Jet_btagDeepB", "genWeight"}
}

// dv3 selection thresholds.
const (
	dv3JetPtMin  = 30.0
	dv3JetEtaMax = 2.4
	dv3BTagMin   = 0.5
)

// Process implements the analysis over one chunk.
func (DV3Processor) Process(ev *coffea.NanoEvents) (*coffea.HistSet, error) {
	pt, err := ev.Jagged("Jet_pt")
	if err != nil {
		return nil, err
	}
	eta, err := ev.Jagged("Jet_eta")
	if err != nil {
		return nil, err
	}
	phi, err := ev.Jagged("Jet_phi")
	if err != nil {
		return nil, err
	}
	mass, err := ev.Jagged("Jet_mass")
	if err != nil {
		return nil, err
	}
	btag, err := ev.Jagged("Jet_btagDeepB")
	if err != nil {
		return nil, err
	}
	met, err := ev.Flat("MET_pt")
	if err != nil {
		return nil, err
	}
	weights, err := ev.Flat("genWeight")
	if err != nil {
		return nil, err
	}

	hs := coffea.NewHistSet()
	hDijet := hist.New(hist.Reg(60, 0, 300, "mjj"))
	hMET := hist.New(hist.Reg(100, 0, 200, "met"))
	hJetPt := hist.New(hist.Reg(80, 0, 800, "jet_pt"))
	hNJet := hist.New(hist.Reg(12, 0, 12, "njet_sel"))

	off := 0
	for i := 0; i < len(pt.Counts); i++ {
		n := pt.Counts[i]
		w := weights[i]
		hMET.FillW(w, met[i])

		// Select analysis jets.
		type jet struct{ pt, eta, phi, m, b float64 }
		var sel []jet
		for j := off; j < off+n; j++ {
			if pt.Values[j] > dv3JetPtMin && math.Abs(eta.Values[j]) < dv3JetEtaMax {
				sel = append(sel, jet{pt.Values[j], eta.Values[j], phi.Values[j], mass.Values[j], btag.Values[j]})
				hJetPt.FillW(w, pt.Values[j])
			}
		}
		off += n
		hNJet.FillW(w, float64(len(sel)))

		// Two leading b-tagged jets → dijet candidate (Higgs → bb̄).
		var b1, b2 *jet
		for k := range sel {
			if sel[k].b < dv3BTagMin {
				continue
			}
			switch {
			case b1 == nil || sel[k].pt > b1.pt:
				b2 = b1
				b1 = &sel[k]
			case b2 == nil || sel[k].pt > b2.pt:
				b2 = &sel[k]
			}
		}
		if b1 != nil && b2 != nil {
			hDijet.FillW(w, invariantMass2(
				b1.pt, b1.eta, b1.phi, b1.m,
				b2.pt, b2.eta, b2.phi, b2.m))
		}
	}

	hs.H["dijet_mass"] = hDijet
	hs.H["met"] = hMET
	hs.H["jet_pt"] = hJetPt
	hs.H["njet_sel"] = hNJet
	return hs, nil
}

// TriPhotonProcessor is the live RS-TriPhoton analysis: select events with
// three tight photons and histogram the tri-photon invariant mass.
type TriPhotonProcessor struct{}

// Name implements coffea.Processor.
func (TriPhotonProcessor) Name() string { return "rs-triphoton" }

// Columns lists the touched branches.
func (TriPhotonProcessor) Columns() []string {
	return []string{"nPhoton", "Photon_pt", "Photon_eta", "Photon_phi", "Photon_isTight", "genWeight"}
}

// triphoton selection thresholds.
const (
	triPhotonPtMin  = 20.0
	triPhotonEtaMax = 2.5
)

// Process implements the analysis over one chunk.
func (TriPhotonProcessor) Process(ev *coffea.NanoEvents) (*coffea.HistSet, error) {
	pt, err := ev.Jagged("Photon_pt")
	if err != nil {
		return nil, err
	}
	eta, err := ev.Jagged("Photon_eta")
	if err != nil {
		return nil, err
	}
	phi, err := ev.Jagged("Photon_phi")
	if err != nil {
		return nil, err
	}
	tight, err := ev.Jagged("Photon_isTight")
	if err != nil {
		return nil, err
	}
	weights, err := ev.Flat("genWeight")
	if err != nil {
		return nil, err
	}

	hs := coffea.NewHistSet()
	hTri := hist.New(hist.Reg(80, 0, 2000, "m3g"))
	hDi := hist.New(hist.Reg(60, 0, 600, "m2g"))
	hPt := hist.New(hist.Reg(60, 0, 600, "photon_pt"))
	hN := hist.New(hist.Reg(6, 0, 6, "nphoton_sel"))

	off := 0
	for i := 0; i < len(pt.Counts); i++ {
		n := pt.Counts[i]
		w := weights[i]
		var sel []pho
		for j := off; j < off+n; j++ {
			if tight.Values[j] > 0.5 && pt.Values[j] > triPhotonPtMin && math.Abs(eta.Values[j]) < triPhotonEtaMax {
				sel = append(sel, pho{pt.Values[j], eta.Values[j], phi.Values[j]})
				hPt.FillW(w, pt.Values[j])
			}
		}
		off += n
		hN.FillW(w, float64(len(sel)))
		if len(sel) < 3 {
			continue
		}
		// Leading three photons: the heavy resonance X → γ + a(→γγ).
		top3 := leadingThree(sel)
		m3 := invariantMass3(
			top3[0].pt, top3[0].eta, top3[0].phi,
			top3[1].pt, top3[1].eta, top3[1].phi,
			top3[2].pt, top3[2].eta, top3[2].phi)
		hTri.FillW(w, m3)
		// Light-state candidate from the two sub-leading photons.
		hDi.FillW(w, invariantMass2(
			top3[1].pt, top3[1].eta, top3[1].phi, 0,
			top3[2].pt, top3[2].eta, top3[2].phi, 0))
	}

	hs.H["triphoton_mass"] = hTri
	hs.H["diphoton_mass"] = hDi
	hs.H["photon_pt"] = hPt
	hs.H["nphoton_sel"] = hN
	return hs, nil
}

type pho = struct{ pt, eta, phi float64 }

func leadingThree(sel []pho) [3]pho {
	var out [3]pho
	for _, p := range sel {
		switch {
		case p.pt > out[0].pt:
			out[2] = out[1]
			out[1] = out[0]
			out[0] = p
		case p.pt > out[1].pt:
			out[2] = out[1]
			out[1] = p
		case p.pt > out[2].pt:
			out[2] = p
		}
	}
	return out
}

// fourVec converts (pt, eta, phi, m) to (E, px, py, pz).
func fourVec(pt, eta, phi, m float64) (e, px, py, pz float64) {
	px = pt * math.Cos(phi)
	py = pt * math.Sin(phi)
	pz = pt * math.Sinh(eta)
	e = math.Sqrt(m*m + px*px + py*py + pz*pz)
	return
}

// invariantMass2 computes the invariant mass of two objects.
func invariantMass2(pt1, eta1, phi1, m1, pt2, eta2, phi2, m2 float64) float64 {
	e1, x1, y1, z1 := fourVec(pt1, eta1, phi1, m1)
	e2, x2, y2, z2 := fourVec(pt2, eta2, phi2, m2)
	return massOf(e1+e2, x1+x2, y1+y2, z1+z2)
}

// invariantMass3 computes the invariant mass of three massless objects.
func invariantMass3(pt1, eta1, phi1, pt2, eta2, phi2, pt3, eta3, phi3 float64) float64 {
	e1, x1, y1, z1 := fourVec(pt1, eta1, phi1, 0)
	e2, x2, y2, z2 := fourVec(pt2, eta2, phi2, 0)
	e3, x3, y3, z3 := fourVec(pt3, eta3, phi3, 0)
	return massOf(e1+e2+e3, x1+x2+x3, y1+y2+y3, z1+z2+z3)
}

func massOf(e, px, py, pz float64) float64 {
	m2 := e*e - px*px - py*py - pz*pz
	if m2 <= 0 {
		return 0
	}
	return math.Sqrt(m2)
}

// METProcessor is the minimal analysis of the paper's Fig. 4 sample code: a
// histogram of missing transverse energy. It is the quickstart example's
// workload.
type METProcessor struct{}

// Name implements coffea.Processor.
func (METProcessor) Name() string { return "met" }

// Columns lists the single branch touched.
func (METProcessor) Columns() []string { return []string{"MET_pt"} }

// Process fills the Fig. 4 histogram: hist.new.Reg(100, 0, 200, name="met").
func (METProcessor) Process(ev *coffea.NanoEvents) (*coffea.HistSet, error) {
	met, err := ev.Flat("MET_pt")
	if err != nil {
		return nil, err
	}
	hs := coffea.NewHistSet()
	h := hist.New(hist.Reg(100, 0, 200, "met"))
	h.FillN(met)
	hs.H["met"] = h
	return hs, nil
}

// RegisterProcessors installs the live processors in the coffea registry.
func RegisterProcessors() {
	coffea.Register(DV3Processor{})
	coffea.Register(TriPhotonProcessor{})
	coffea.Register(METProcessor{})
}
