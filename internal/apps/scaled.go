package apps

import (
	"fmt"
	"time"

	"hepvine/internal/core"
	"hepvine/internal/units"
)

// Scaled workload builders: the bench harness regenerates every figure at
// paper scale through cmd/vinebench, but `go test -bench` needs the same
// experiments at a fraction of the size to stay fast. Scaling multiplies
// the task count and the input volume together, so per-task costs and data
// ratios (and therefore the qualitative shapes) are preserved.

// DV3Scaled builds a DV3 workload with task count and input bytes scaled by
// the given factor (clamped to at least 8 processors). DV3Huge scales its
// preprocessing width instead.
func DV3Scaled(size DV3Size, scale float64, seed uint64) *core.Workload {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	if size == DV3Huge {
		return dv3HugeScaled(scale, seed)
	}
	p := dv3ParamsFor(size)
	procs := int(float64(p.processors) * scale)
	if procs < 8 {
		procs = 8
	}
	return buildMapReduce(mapReduceSpec{
		name:       fmt.Sprintf("%s(x%.3g)", size, scale),
		datasets:   1,
		processors: procs,
		inputBytes: units.Bytes(float64(p.inputBytes) * scale),
		outputSize: p.outputSize,
		fanIn:      p.fanIn,
		computeMu:  p.computeMu,
		computeSig: p.computeSig,
		accBase:    300 * time.Millisecond,
		accPerIn:   500 * time.Millisecond,
		seed:       seed,
	})
}

// TriPhotonScaled builds an RS-TriPhoton workload scaled by the factor,
// keeping the 20-dataset structure (so the naive-reduce shape survives).
func TriPhotonScaled(fanIn int, scale float64, seed uint64) *core.Workload {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	procs := int(4000 * scale)
	if procs < 40 {
		procs = 40
	}
	return buildMapReduce(mapReduceSpec{
		name:       fmt.Sprintf("RS-TriPhoton(x%.3g)", scale),
		datasets:   20,
		processors: procs,
		inputBytes: units.Bytes(float64(units.GBf(500)) * scale),
		outputSize: units.Bytes(float64(units.GBf(1.25)) * scale * 4000 / float64(procs)),
		fanIn:      fanIn,
		computeMu:  1.8,
		computeSig: 0.6,
		accBase:    2 * time.Second,
		accPerIn:   1500 * time.Millisecond,
		seed:       seed,
	})
}

func dv3HugeScaled(scale float64, seed uint64) *core.Workload {
	if scale >= 1 {
		return dv3Huge(seed)
	}
	// A scaled Huge keeps the 16-variation structure over fewer chunks.
	return dv3HugeCustom(int(10000*scale), seed)
}
