package apps

import (
	"testing"

	"hepvine/internal/coffea"
	"hepvine/internal/rootio"
)

// BenchmarkDV3Kernel measures the physics kernel itself: the columnar
// selection + dijet-mass computation over one 5000-event chunk.
func BenchmarkDV3Kernel(b *testing.B) {
	dir := b.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "bench", Files: 1, EventsPerFile: 5000,
		Gen: rootio.GenOptions{Seed: 1, MeanJets: 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	rd, closer, err := rootio.Open(paths[0])
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { closer.Close() })
	chunk := coffea.Chunk{Dataset: "bench", Path: paths[0], Lo: 0, Hi: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coffea.ProcessChunkFrom(DV3Processor{}, rd, chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadSynthesis measures DV3-Large workload construction
// (graph of ≈17k tasks with sampled costs).
func BenchmarkWorkloadSynthesis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wl := DV3(DV3Large, uint64(i)+1)
		if wl.TaskCount() < 17000 {
			b.Fatal("workload too small")
		}
	}
}
