package apps

import (
	"math"
	"testing"
	"time"

	"hepvine/internal/coffea"
	"hepvine/internal/core"
	"hepvine/internal/dag"
	"hepvine/internal/rootio"
	"hepvine/internal/units"
)

// ---- live processors ----

func writeEvents(t *testing.T, n int, signal float64) []coffea.Chunk {
	t.Helper()
	paths, err := rootio.WriteDataset(t.TempDir(), rootio.DatasetSpec{
		Name: "t", Files: 1, EventsPerFile: n, BasketSize: 500,
		Gen: rootio.GenOptions{Seed: 99, SignalFrac: signal},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []coffea.Chunk{{Dataset: "t", Path: paths[0], Lo: 0, Hi: int64(n)}}
}

func TestDV3ProcessorProducesPhysics(t *testing.T) {
	chunks := writeEvents(t, 3000, 0)
	hs, err := coffea.RunLocal(DV3Processor{}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dijet_mass", "met", "jet_pt", "njet_sel"} {
		if hs.H[name] == nil {
			t.Fatalf("missing histogram %q", name)
		}
	}
	if hs.H["met"].Entries != 3000 {
		t.Fatalf("met entries = %d", hs.H["met"].Entries)
	}
	// Some events have two b-tagged jets; dijet masses must be physical.
	if hs.H["dijet_mass"].Sum() == 0 {
		t.Fatal("no dijet candidates found")
	}
	if hs.H["jet_pt"].Underflow() != 0 {
		t.Fatal("selected jets below pt threshold")
	}
}

func TestDV3SelectionRespectsThresholds(t *testing.T) {
	chunks := writeEvents(t, 2000, 0)
	hs, err := coffea.RunLocal(DV3Processor{}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// njet_sel counts only jets above threshold: mean must be below the
	// raw jet multiplicity (~4).
	if m := hs.H["njet_sel"].Mean(); m <= 0 || m >= 4 {
		t.Fatalf("selected-jet multiplicity mean = %v", m)
	}
}

func TestTriPhotonProcessorFindsSignal(t *testing.T) {
	bg, err := coffea.RunLocal(TriPhotonProcessor{}, writeEvents(t, 4000, 0))
	if err != nil {
		t.Fatal(err)
	}
	sig, err := coffea.RunLocal(TriPhotonProcessor{}, writeEvents(t, 4000, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	// Signal injection adds tri-photon events, so the signal run must see
	// substantially more tri-photon candidates.
	if sig.H["triphoton_mass"].Sum() <= bg.H["triphoton_mass"].Sum()*2 {
		t.Fatalf("signal %v not >> background %v",
			sig.H["triphoton_mass"].Sum(), bg.H["triphoton_mass"].Sum())
	}
}

func TestInvariantMassProperties(t *testing.T) {
	// Two back-to-back massless particles of equal pt: m = 2*pt.
	m := invariantMass2(50, 0, 0, 0, 50, 0, math.Pi, 0)
	if math.Abs(m-100) > 1e-9 {
		t.Fatalf("back-to-back mass = %v", m)
	}
	// Collinear massless particles have zero invariant mass.
	m = invariantMass2(50, 1.0, 0.5, 0, 30, 1.0, 0.5, 0)
	if m > 1e-6 {
		t.Fatalf("collinear mass = %v", m)
	}
	// Mass is symmetric under argument exchange.
	a := invariantMass2(40, 0.3, 1.0, 5, 60, -0.7, -2.0, 10)
	b := invariantMass2(60, -0.7, -2.0, 10, 40, 0.3, 1.0, 5)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", a, b)
	}
	// Three-body ≥ any pair (massless).
	m3 := invariantMass3(50, 0, 0, 50, 0, math.Pi, 50, 1.0, math.Pi/2)
	if m3 < 100 {
		t.Fatalf("three-body %v < pair 100", m3)
	}
}

func TestLeadingThree(t *testing.T) {
	sel := []pho{{10, 0, 0}, {50, 0, 0}, {30, 0, 0}, {40, 0, 0}}
	top := leadingThree(sel)
	if top[0].pt != 50 || top[1].pt != 40 || top[2].pt != 30 {
		t.Fatalf("top3 = %v", top)
	}
}

func TestRegisterProcessors(t *testing.T) {
	RegisterProcessors()
	for _, name := range []string{"dv3", "rs-triphoton"} {
		if _, err := coffea.Lookup(name); err != nil {
			t.Fatalf("%s not registered: %v", name, err)
		}
	}
}

// ---- simulation workloads ----

func TestDV3WorkloadShapes(t *testing.T) {
	cases := []struct {
		size      DV3Size
		minTasks  int
		maxTasks  int
		wantBytes units.Bytes
	}{
		{DV3Small, 300, 400, units.GBf(25)},
		{DV3Medium, 2500, 3000, units.GBf(200)},
		{DV3Large, 16000, 18000, units.TBf(1.2)},
	}
	for _, c := range cases {
		wl := DV3(c.size, 1)
		if err := wl.Validate(); err != nil {
			t.Fatalf("%v: %v", c.size, err)
		}
		if n := wl.TaskCount(); n < c.minTasks || n > c.maxTasks {
			t.Fatalf("%v: %d tasks", c.size, n)
		}
		got := wl.InputBytes()
		if got < c.wantBytes*9/10 || got > c.wantBytes*11/10 {
			t.Fatalf("%v: input %v, want ~%v", c.size, got, c.wantBytes)
		}
	}
}

func TestDV3LargeMatchesPaper(t *testing.T) {
	// "consisting of 17,000 tasks consuming 1.2TB of data" (§IV).
	wl := DV3(DV3Large, 42)
	if n := wl.TaskCount(); n < 16500 || n > 17500 {
		t.Fatalf("DV3-Large has %d tasks, want ≈17000", n)
	}
}

func TestDV3HugeMatchesPaper(t *testing.T) {
	// "185,000 tasks with 10,000 initial executable tasks" (Fig. 15).
	wl := DV3(DV3Huge, 42)
	if n := wl.TaskCount(); n < 180000 || n > 200000 {
		t.Fatalf("DV3-Huge has %d tasks", n)
	}
	roots := 0
	for _, k := range wl.Graph.Keys() {
		if len(wl.Graph.Task(k).Deps) == 0 {
			roots++
		}
	}
	if roots != 10000 {
		t.Fatalf("initially-executable tasks = %d, want 10000", roots)
	}
}

func TestTriPhotonMatchesPaper(t *testing.T) {
	// "RS-TriPhoton (4K tasks and 500GB data)" over 20 datasets.
	wl := TriPhoton(2, 42)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	procs := 0
	for _, cc := range wl.Graph.CountByCategory() {
		if cc.Category == "processor" {
			procs = cc.Count
		}
	}
	if procs != 4000 {
		t.Fatalf("processors = %d", procs)
	}
	in := wl.InputBytes()
	if in < units.GBf(450) || in > units.GBf(550) {
		t.Fatalf("input = %v", in)
	}
	// Intermediates larger than input (§III).
	var interm units.Bytes
	for _, k := range wl.Graph.Keys() {
		interm += wl.Graph.Task(k).Spec.(*core.SimSpec).OutputSize
	}
	if interm <= in {
		t.Fatalf("intermediates %v not larger than input %v", interm, in)
	}
}

func TestTriPhotonReductionShapes(t *testing.T) {
	naive := TriPhoton(0, 42)
	tree := TriPhoton(2, 42)
	maxFan := func(wl *core.Workload) int {
		m := 0
		for _, k := range wl.Graph.Keys() {
			if n := len(wl.Graph.Task(k).Deps); n > m {
				m = n
			}
		}
		return m
	}
	if f := maxFan(naive); f != 200 {
		t.Fatalf("naive max fan-in = %d, want 200 (one task per dataset)", f)
	}
	if f := maxFan(tree); f > 2 {
		t.Fatalf("tree max fan-in = %d", f)
	}
	// Same processor set; tree adds more (smaller) reduce tasks.
	if tree.TaskCount() <= naive.TaskCount() {
		t.Fatal("tree should have more tasks than naive")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := DV3(DV3Small, 7)
	b := DV3(DV3Small, 7)
	if a.TaskCount() != b.TaskCount() || a.TotalCompute() != b.TotalCompute() {
		t.Fatal("same seed produced different workloads")
	}
	c := DV3(DV3Small, 8)
	if a.TotalCompute() == c.TotalCompute() {
		t.Fatal("different seeds produced identical compute")
	}
}

func TestComputeDistributionShape(t *testing.T) {
	// Fig. 8: "a majority of tasks have execution times between 1s and
	// 10s (with some outliers on either side)".
	wl := DV3(DV3Large, 42)
	in, total := 0, 0
	var under, over bool
	for _, k := range wl.Graph.Keys() {
		task := wl.Graph.Task(k)
		if task.Category != "processor" {
			continue
		}
		c := task.Spec.(*core.SimSpec).Compute
		total++
		if c >= time.Second && c <= 10*time.Second {
			in++
		}
		if c < time.Second {
			under = true
		}
		if c > 10*time.Second {
			over = true
		}
	}
	frac := float64(in) / float64(total)
	if frac < 0.5 {
		t.Fatalf("only %.0f%% of tasks in 1-10s", frac*100)
	}
	if !under || !over {
		t.Fatal("no outliers on both sides")
	}
}

func TestHoistSweep(t *testing.T) {
	wl := HoistSweep(100, 500*time.Millisecond, 1)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	fns := 0
	for _, cc := range wl.Graph.CountByCategory() {
		if cc.Category == "function" {
			fns = cc.Count
		}
	}
	if fns != 100 {
		t.Fatalf("functions = %d", fns)
	}
	if wl.Graph.Task(wl.Root) == nil {
		t.Fatal("no root")
	}
}

func TestChunksTileDatasets(t *testing.T) {
	// Every processor reads exactly one dataset file; every dataset file
	// is read by exactly one processor.
	wl := DV3(DV3Medium, 3)
	used := map[string]int{}
	for _, k := range wl.Graph.Keys() {
		spec := wl.Graph.Task(k).Spec.(*core.SimSpec)
		for _, f := range spec.Inputs {
			used[string(f)]++
		}
	}
	if len(used) != len(wl.DatasetFiles) {
		t.Fatalf("%d files used of %d declared", len(used), len(wl.DatasetFiles))
	}
	for f, n := range used {
		if n != 1 {
			t.Fatalf("file %s read by %d tasks", f, n)
		}
	}
	_ = dag.Key("")
}
