// Package daskvine bridges the DAG-manager layer to the live TaskVine
// engine, the role the DaskVine module plays in the paper (§IV.C): it
// "converts the nodes of a Dask graph into task and file submissions to the
// TaskVine scheduler".
//
// A coffea analysis graph (ProcessSpec / AccumSpec payloads) is lowered to
// vine tasks: dataset files are declared to the manager once and flow to
// workers through the cache (and peer transfers), processor tasks read
// their chunk from the worker-local replica, and accumulation tasks merge
// HistSet blobs that never leave the cluster until the root result is
// fetched.
package daskvine

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/obs"
	"hepvine/internal/vine"
)

// LibraryName is the serverless library hosting the coffea functions.
const LibraryName = "coffea"

// procArgs is the wire form of a processor invocation.
type procArgs struct {
	Processor string `json:"processor"`
	Dataset   string `json:"dataset"`
	Lo        int64  `json:"lo"`
	Hi        int64  `json:"hi"`
}

// libState is the "imported environment" of the coffea library. Building it
// is what import hoisting amortizes.
type libState struct {
	ready bool
}

// NewLibrary builds the coffea library definition. setupDelay models the
// cost of the environment construction (Python imports in the paper);
// register the result with vine.RegisterLibrary in every process that runs
// a manager or worker.
func NewLibrary(setupDelay time.Duration) *vine.Library {
	return &vine.Library{
		Name:       LibraryName,
		SetupDelay: setupDelay,
		Setup:      func() (any, error) { return &libState{ready: true}, nil },
		Funcs: map[string]vine.Function{
			"process":    processFunc,
			"accumulate": accumulateFunc,
		},
	}
}

// processFunc runs a registered coffea processor over one chunk whose file
// content is the task input "data".
func processFunc(c *vine.Call) error {
	if st, ok := c.State().(*libState); !ok || !st.ready {
		return fmt.Errorf("daskvine: library state not initialized")
	}
	var args procArgs
	if err := json.Unmarshal(c.Args, &args); err != nil {
		return fmt.Errorf("daskvine: bad process args: %w", err)
	}
	p, err := coffea.Lookup(args.Processor)
	if err != nil {
		return err
	}
	path, err := c.InputPath("data")
	if err != nil {
		return err
	}
	hs, err := coffea.ProcessChunk(p, coffea.Chunk{
		Dataset: args.Dataset, Path: path, Lo: args.Lo, Hi: args.Hi,
	})
	if err != nil {
		return err
	}
	c.SetOutput("hist", hs.Marshal())
	return nil
}

// accumulateFunc merges every input HistSet blob.
func accumulateFunc(c *vine.Call) error {
	if st, ok := c.State().(*libState); !ok || !st.ready {
		return fmt.Errorf("daskvine: library state not initialized")
	}
	acc := coffea.NewHistSet()
	for _, name := range c.InputNames() {
		blob, err := c.Input(name)
		if err != nil {
			return err
		}
		hs, err := coffea.UnmarshalHistSet(blob)
		if err != nil {
			return fmt.Errorf("daskvine: input %s: %w", name, err)
		}
		if err := acc.Add(hs); err != nil {
			return err
		}
	}
	c.SetOutput("hist", acc.Marshal())
	return nil
}

// Options shape graph execution.
type Options struct {
	// Mode selects standard tasks or serverless function calls
	// ("task_mode" in Fig. 4). Default ModeFunctionCall.
	Mode vine.TaskMode
	// Timeout bounds the whole run; 0 means no limit.
	Timeout time.Duration
	// OnTaskDone, if set, is called after each task completes.
	OnTaskDone func(key dag.Key, h *vine.TaskHandle)
	// Recorder, if set, receives one EvTaskSubmit per graph node keyed
	// by its dag key, with Detail linking it to the vine task id — the
	// join between graph-level and engine-level traces.
	Recorder *obs.Recorder
}

// Run executes a coffea analysis graph on the live engine and returns the
// HistSet produced by the root task.
func Run(m *vine.Manager, g *dag.Graph, root dag.Key, opts Options) (*coffea.HistSet, error) {
	if opts.Mode == "" {
		opts.Mode = vine.ModeFunctionCall
	}
	if !g.Finalized() {
		return nil, fmt.Errorf("daskvine: graph not finalized")
	}
	if g.Task(root) == nil {
		return nil, fmt.Errorf("daskvine: root %q not in graph", root)
	}

	// Declare every dataset file once; identical paths share a cachename.
	fileCN := make(map[string]vine.CacheName)
	for _, k := range g.Topo() {
		if ps, ok := g.Task(k).Spec.(*coffea.ProcessSpec); ok {
			if _, done := fileCN[ps.Chunk.Path]; !done {
				cn, err := m.DeclareFile(ps.Chunk.Path)
				if err != nil {
					return nil, fmt.Errorf("daskvine: declaring %s: %w", ps.Chunk.Path, err)
				}
				fileCN[ps.Chunk.Path] = cn
			}
		}
	}

	// Submit in topological order so every input cachename is known.
	handles := make(map[dag.Key]*vine.TaskHandle, g.Len())
	done := make(chan struct{})
	defer close(done)
	for _, k := range g.Topo() {
		task := g.Task(k)
		var vt vine.Task
		switch spec := task.Spec.(type) {
		case *coffea.ProcessSpec:
			args, err := json.Marshal(procArgs{
				Processor: spec.Processor,
				Dataset:   spec.Chunk.Dataset,
				Lo:        spec.Chunk.Lo,
				Hi:        spec.Chunk.Hi,
			})
			if err != nil {
				return nil, err
			}
			vt = vine.Task{
				Mode: opts.Mode, Library: LibraryName, Func: "process",
				Args:    args,
				Inputs:  []vine.FileRef{{Name: "data", CacheName: fileCN[spec.Chunk.Path]}},
				Outputs: []string{"hist"},
			}
		case *coffea.AccumSpec:
			vt = vine.Task{
				Mode: opts.Mode, Library: LibraryName, Func: "accumulate",
				Outputs: []string{"hist"},
			}
			for i, d := range task.Deps {
				dh := handles[d]
				if dh == nil {
					return nil, fmt.Errorf("daskvine: dependency %q submitted out of order", d)
				}
				cn, ok := dh.Output("hist")
				if !ok {
					return nil, fmt.Errorf("daskvine: dependency %q has no hist output", d)
				}
				vt.Inputs = append(vt.Inputs, vine.FileRef{
					Name: fmt.Sprintf("in%d", i), CacheName: cn,
				})
			}
		default:
			return nil, fmt.Errorf("daskvine: task %q has unsupported spec %T", k, task.Spec)
		}
		h, err := m.Submit(vt)
		if err != nil {
			return nil, fmt.Errorf("daskvine: submitting %q: %w", k, err)
		}
		handles[k] = h
		opts.Recorder.Emit(obs.Event{
			Type: obs.EvTaskSubmit, Task: string(k),
			Detail: "vine:" + strconv.Itoa(h.ID),
		})
		// Resubmission is idempotent against a journal-resumed manager:
		// dataset declarations and task definition hashes are both
		// content-addressed, so a node that already completed in a prior
		// incarnation dedupes to its done handle and the run skips straight
		// to whatever merge work is genuinely missing. Surface the join
		// between the dag key and the warm decision in the graph trace.
		if h.WarmHit() {
			opts.Recorder.Emit(obs.Event{
				Type: obs.EvWarmHit, Task: string(k),
				Detail: "vine:" + strconv.Itoa(h.ID),
			})
		}
		if opts.OnTaskDone != nil {
			key, hh := k, h
			go func() {
				select {
				case <-hh.Done():
					opts.OnTaskDone(key, hh)
				case <-done:
				}
			}()
		}
	}

	rootH := handles[root]
	if err := rootH.Wait(opts.Timeout); err != nil {
		return nil, err
	}
	cn, _ := rootH.Output("hist")
	// FetchBytes recovers through worker loss: a vanished last replica
	// triggers a lineage rollback of the producing task instead of an
	// error, so a preemption at the very end of a run costs a re-run of
	// the final reduce, not the whole analysis.
	blob, err := m.FetchBytes(cn)
	if err != nil {
		return nil, fmt.Errorf("daskvine: fetching result: %w", err)
	}
	return coffea.UnmarshalHistSet(blob)
}
