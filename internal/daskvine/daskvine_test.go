package daskvine

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/hist"
	"hepvine/internal/journal"
	"hepvine/internal/obs"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// dvProc is the MET analysis used as the integration workload.
type dvProc struct{}

func (dvProc) Name() string      { return "dv-test" }
func (dvProc) Columns() []string { return []string{"MET_pt", "nJet", "Jet_pt"} }
func (dvProc) Process(ev *coffea.NanoEvents) (*coffea.HistSet, error) {
	met, err := ev.Flat("MET_pt")
	if err != nil {
		return nil, err
	}
	jets, err := ev.Jagged("Jet_pt")
	if err != nil {
		return nil, err
	}
	hs := coffea.NewHistSet()
	hm := hist.New(hist.Reg(100, 0, 200, "met"))
	hm.FillN(met)
	hs.H["met"] = hm
	hj := hist.New(hist.Reg(50, 0, 500, "jet_pt"))
	hj.FillN(jets.Values)
	hs.H["jet_pt"] = hj
	return hs, nil
}

var setupOnce sync.Once

func setup(t *testing.T) []coffea.Chunk {
	t.Helper()
	setupOnce.Do(func() {
		coffea.Register(dvProc{})
		vine.MustRegisterLibrary(NewLibrary(0))
	})
	paths, err := rootio.WriteDataset(t.TempDir(), rootio.DatasetSpec{
		Name: "dvtest", Files: 3, EventsPerFile: 400, BasketSize: 100,
		Gen: rootio.GenOptions{Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}
	infos := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		infos[i] = coffea.FileInfo{Path: p, NEvents: 400}
	}
	chunks, err := coffea.Partition("dvtest", infos, 100)
	if err != nil {
		t.Fatal(err)
	}
	return chunks
}

func cluster(t *testing.T, workers, cores int, opts ...vine.Option) *vine.Manager {
	t.Helper()
	mgrOpts := append([]vine.Option{
		vine.WithPeerTransfers(true),
		vine.WithLibrary(LibraryName, true),
	}, opts...)
	m, err := vine.NewManager(mgrOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	for i := 0; i < workers; i++ {
		w, err := vine.NewWorker(m.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(cores),
			vine.WithCacheDir(t.TempDir()),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := m.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m
}

func assertMatchesLocal(t *testing.T, got *coffea.HistSet, chunks []coffea.Chunk) {
	t.Helper()
	want, err := coffea.RunLocal(dvProc{}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != len(want.Names()) {
		t.Fatalf("names %v vs %v", got.Names(), want.Names())
	}
	for _, n := range want.Names() {
		for i := range want.H[n].Counts {
			if math.Abs(want.H[n].Counts[i]-got.H[n].Counts[i]) > 1e-9 {
				t.Fatalf("%s bin %d: want %v got %v", n, i, want.H[n].Counts[i], got.H[n].Counts[i])
			}
		}
	}
}

func TestRunFunctionCallsBinaryTree(t *testing.T) {
	chunks := setup(t)
	g, root, err := coffea.BuildGraph("dv-test", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := cluster(t, 3, 2)
	got, err := Run(m, g, root, Options{Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesLocal(t, got, chunks)
	st := m.Stats()
	if st.TasksDone != g.Len() {
		t.Fatalf("done %d of %d", st.TasksDone, g.Len())
	}
}

func TestRunStandardTasksSingleShot(t *testing.T) {
	chunks := setup(t)
	g, root, err := coffea.BuildGraph("dv-test", chunks, coffea.GraphOptions{FanIn: 0})
	if err != nil {
		t.Fatal(err)
	}
	m := cluster(t, 2, 2)
	got, err := Run(m, g, root, Options{Mode: vine.ModeTask, Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesLocal(t, got, chunks)
}

func TestRunWorkQueueStyle(t *testing.T) {
	chunks := setup(t)
	g, root, err := coffea.BuildGraph("dv-test", chunks, coffea.GraphOptions{FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := cluster(t, 2, 2, vine.WithPeerTransfers(false), vine.WithReturnOutputs(true))
	got, err := Run(m, g, root, Options{Mode: vine.ModeTask, Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesLocal(t, got, chunks)
}

func TestRunSurvivesWorkerKill(t *testing.T) {
	chunks := setup(t)
	g, root, err := coffea.BuildGraph("dv-test", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(LibraryName, true),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	var victim *vine.Worker
	for i := 0; i < 3; i++ {
		w, err := vine.NewWorker(m.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(2),
			vine.WithCacheDir(t.TempDir()),
		)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			victim = w
		} else {
			t.Cleanup(w.Stop)
		}
	}
	if err := m.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill one worker once a few tasks have completed.
	var done32 int32
	killed := make(chan struct{})
	var once sync.Once
	opts := Options{
		Mode:    vine.ModeFunctionCall,
		Timeout: 120 * time.Second,
		OnTaskDone: func(k dag.Key, h *vine.TaskHandle) {
			if atomic.AddInt32(&done32, 1) == 5 {
				once.Do(func() {
					victim.Stop()
					close(killed)
				})
			}
		},
	}
	got, err := Run(m, g, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-killed:
	default:
		t.Log("worker was never killed (run finished too fast); rerunning assertion anyway")
	}
	assertMatchesLocal(t, got, chunks)
}

func TestRunMultiDataset(t *testing.T) {
	chunksA := setup(t)
	chunksB := setup(t)
	datasets := map[string][]coffea.Chunk{"a": chunksA, "b": chunksB}
	g, root, err := coffea.BuildMultiDatasetGraph("dv-test", datasets, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := cluster(t, 2, 2)
	got, err := Run(m, g, root, Options{Timeout: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]coffea.Chunk(nil), chunksA...), chunksB...)
	assertMatchesLocal(t, got, all)
}

func TestRunValidation(t *testing.T) {
	chunks := setup(t)
	g, root, err := coffea.BuildGraph("dv-test", chunks[:2], coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := cluster(t, 1, 1)
	if _, err := Run(m, g, "missing-root", Options{}); err == nil {
		t.Fatal("bogus root accepted")
	}
	unfinalized := dag.NewGraph()
	unfinalized.MustAdd(&dag.Task{Key: "x"})
	if _, err := Run(m, unfinalized, "x", Options{}); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
	_ = root
}

// TestRunWarmResubmission proves idempotent graph resubmission end to
// end: the same graph run twice against one journal — second incarnation
// of the manager, fresh workers on the same persistent cache dirs —
// completes without executing a single task, every node surfacing as an
// EvWarmHit in the graph-level trace.
func TestRunWarmResubmission(t *testing.T) {
	chunks := setup(t)
	g, root, err := coffea.BuildGraph("dv-test", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	runDir := t.TempDir()
	runOnce := func() (*coffea.HistSet, vine.ManagerStats, *obs.Recorder) {
		jr, err := journal.Open(filepath.Join(runDir, "journal"), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer jr.Close()
		rec := obs.NewRecorder()
		m, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(LibraryName, true),
			vine.WithJournal(jr),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Stop()
		for i := 0; i < 2; i++ {
			w, err := vine.NewWorker(m.Addr(),
				vine.WithName(fmt.Sprintf("w%d", i)),
				vine.WithCores(2),
				vine.WithCacheDir(filepath.Join(runDir, fmt.Sprintf("worker-%d", i))),
				vine.WithPersistentCache(true),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Stop()
		}
		if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		res, err := Run(m, g, root, Options{
			Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second, Recorder: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Stats(), rec
	}

	cold, cst, _ := runOnce()
	if cst.TasksDone != g.Len() {
		t.Fatalf("cold run done %d of %d", cst.TasksDone, g.Len())
	}
	warm, wst, rec := runOnce()
	assertMatchesLocal(t, warm, chunks)
	for _, n := range cold.Names() {
		for i := range cold.H[n].Counts {
			if cold.H[n].Counts[i] != warm.H[n].Counts[i] {
				t.Fatalf("%s bin %d diverged across warm restart", n, i)
			}
		}
	}
	if wst.TasksDone != 0 {
		t.Fatalf("warm resubmission executed %d tasks, want 0", wst.TasksDone)
	}
	if wst.WarmHits != g.Len() {
		t.Fatalf("WarmHits = %d, want %d", wst.WarmHits, g.Len())
	}
	warmEvents := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvWarmHit {
			warmEvents++
		}
	}
	if warmEvents != g.Len() {
		t.Fatalf("EvWarmHit events = %d, want one per node (%d)", warmEvents, g.Len())
	}
}
