package daskvine

import (
	"fmt"
	"time"

	"hepvine/internal/dag"
	"hepvine/internal/vine"
)

// Generic graph execution: beyond the coffea-specific lowering, any
// dag.Graph whose task payloads are *TaskTemplate values can run on the
// live engine. This is the general DaskVine contract — "converts the nodes
// of a Dask graph into task and file submissions" — for workflows that are
// not histogram reductions.

// TaskTemplate is the payload of a generic graph node: which registered
// function to call, with what arguments, producing which named outputs.
// Dependency wiring is by convention: the task receives each dependency's
// outputs as inputs named "<depKey>.<outputName>".
type TaskTemplate struct {
	Mode    vine.TaskMode // default: the run option's mode
	Library string
	Func    string
	Args    []byte
	Outputs []string
	Cores   int
	Memory  int64
}

// GenericResult holds the per-task handles of a generic run, keyed by graph
// key, so callers can fetch any output.
type GenericResult struct {
	Handles map[dag.Key]*vine.TaskHandle
	mgr     *vine.Manager
}

// NewGenericResult builds an empty result bound to a manager, for callers
// that submit templates themselves (e.g. to wire extra non-graph inputs)
// but still want Fetch.
func NewGenericResult(m *vine.Manager) *GenericResult {
	return &GenericResult{Handles: make(map[dag.Key]*vine.TaskHandle), mgr: m}
}

// Fetch retrieves a task's named output bytes. It rides FetchBytes'
// lineage recovery: if the last replica of the output died with its
// worker, the manager rolls the producer back and re-executes it, so
// Fetch blocks through the recovery (bounded by vine.WithRecoveryTimeout)
// instead of erroring.
func (r *GenericResult) Fetch(k dag.Key, output string) ([]byte, error) {
	h, ok := r.Handles[k]
	if !ok {
		return nil, fmt.Errorf("daskvine: no task %q in result", k)
	}
	cn, ok := h.Output(output)
	if !ok {
		return nil, fmt.Errorf("daskvine: task %q has no output %q", k, output)
	}
	return r.mgr.FetchBytes(cn)
}

// RunGeneric submits a graph of TaskTemplate payloads in topological order
// and waits for every sink (leaf) task. The returned result exposes all
// task handles.
func RunGeneric(m *vine.Manager, g *dag.Graph, opts Options) (*GenericResult, error) {
	if opts.Mode == "" {
		opts.Mode = vine.ModeFunctionCall
	}
	if !g.Finalized() {
		return nil, fmt.Errorf("daskvine: graph not finalized")
	}
	res := &GenericResult{Handles: make(map[dag.Key]*vine.TaskHandle, g.Len()), mgr: m}
	for _, k := range g.Topo() {
		task := g.Task(k)
		tpl, ok := task.Spec.(*TaskTemplate)
		if !ok {
			return nil, fmt.Errorf("daskvine: task %q payload is %T, want *TaskTemplate", k, task.Spec)
		}
		vt := vine.Task{
			Mode:    tpl.Mode,
			Library: tpl.Library,
			Func:    tpl.Func,
			Args:    tpl.Args,
			Outputs: tpl.Outputs,
			Cores:   tpl.Cores,
			Memory:  tpl.Memory,
		}
		if vt.Mode == "" {
			vt.Mode = opts.Mode
		}
		for _, d := range task.Deps {
			dh := res.Handles[d]
			if dh == nil {
				return nil, fmt.Errorf("daskvine: dependency %q not yet submitted", d)
			}
			dtpl := g.Task(d).Spec.(*TaskTemplate)
			for _, out := range dtpl.Outputs {
				cn, ok := dh.Output(out)
				if !ok {
					return nil, fmt.Errorf("daskvine: dependency %q lost output %q", d, out)
				}
				vt.Inputs = append(vt.Inputs, vine.FileRef{
					Name:      fmt.Sprintf("%s.%s", d, out),
					CacheName: cn,
				})
			}
		}
		h, err := m.Submit(vt)
		if err != nil {
			return nil, fmt.Errorf("daskvine: submitting %q: %w", k, err)
		}
		res.Handles[k] = h
	}
	// Wait for every leaf; interior tasks are implied.
	deadline := opts.Timeout
	for _, k := range g.Leaves() {
		start := time.Now()
		if err := res.Handles[k].Wait(deadline); err != nil {
			return res, fmt.Errorf("daskvine: leaf %q: %w", k, err)
		}
		if deadline > 0 {
			deadline -= time.Since(start)
			if deadline <= 0 {
				deadline = time.Nanosecond
			}
		}
	}
	return res, nil
}
