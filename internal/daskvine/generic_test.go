package daskvine

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hepvine/internal/dag"
	"hepvine/internal/vine"
)

var genericLibOnce sync.Once

func registerGenericLib(t *testing.T) {
	t.Helper()
	genericLibOnce.Do(func() {
		vine.MustRegisterLibrary(&vine.Library{
			Name: "wordlib",
			Funcs: map[string]vine.Function{
				"emit": func(c *vine.Call) error {
					c.SetOutput("text", c.Args)
					return nil
				},
				"upper": func(c *vine.Call) error {
					var buf bytes.Buffer
					for _, name := range c.InputNames() {
						b, err := c.Input(name)
						if err != nil {
							return err
						}
						buf.Write(bytes.ToUpper(b))
					}
					c.SetOutput("text", buf.Bytes())
					return nil
				},
				"join": func(c *vine.Call) error {
					var parts []string
					for _, name := range c.InputNames() {
						b, err := c.Input(name)
						if err != nil {
							return err
						}
						parts = append(parts, string(b))
					}
					c.SetOutput("text", []byte(strings.Join(parts, " ")))
					return nil
				},
			},
		})
	})
}

func genericCluster(t *testing.T) *vine.Manager {
	t.Helper()
	registerGenericLib(t)
	m, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("wordlib", true),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	for i := 0; i < 2; i++ {
		w, err := vine.NewWorker(m.Addr(),
			vine.WithName(fmt.Sprintf("gw%d", i)),
			vine.WithCores(2),
			vine.WithCacheDir(t.TempDir()),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunGenericDiamond(t *testing.T) {
	g := dag.NewGraph()
	g.MustAdd(&dag.Task{Key: "hello", Spec: &TaskTemplate{
		Library: "wordlib", Func: "emit", Args: []byte("hello"), Outputs: []string{"text"},
	}})
	g.MustAdd(&dag.Task{Key: "world", Spec: &TaskTemplate{
		Library: "wordlib", Func: "emit", Args: []byte("world"), Outputs: []string{"text"},
	}})
	g.MustAdd(&dag.Task{Key: "HELLO", Deps: []dag.Key{"hello"}, Spec: &TaskTemplate{
		Library: "wordlib", Func: "upper", Outputs: []string{"text"},
	}})
	g.MustAdd(&dag.Task{Key: "joined", Deps: []dag.Key{"HELLO", "world"}, Spec: &TaskTemplate{
		Library: "wordlib", Func: "join", Outputs: []string{"text"},
	}})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := genericCluster(t)
	res, err := RunGeneric(m, g, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Fetch("joined", "text")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "HELLO world" {
		t.Fatalf("got %q", got)
	}
	// Intermediate outputs also fetchable.
	mid, err := res.Fetch("HELLO", "text")
	if err != nil || string(mid) != "HELLO" {
		t.Fatalf("mid = %q (%v)", mid, err)
	}
}

func TestRunGenericValidation(t *testing.T) {
	m := genericCluster(t)
	g := dag.NewGraph()
	g.MustAdd(&dag.Task{Key: "bad", Spec: "not a template"})
	g.Finalize()
	if _, err := RunGeneric(m, g, Options{}); err == nil {
		t.Fatal("bad payload accepted")
	}
	unf := dag.NewGraph()
	unf.MustAdd(&dag.Task{Key: "x", Spec: &TaskTemplate{Library: "wordlib", Func: "emit"}})
	if _, err := RunGeneric(m, unf, Options{}); err == nil {
		t.Fatal("unfinalized graph accepted")
	}
	res := &GenericResult{Handles: map[dag.Key]*vine.TaskHandle{}}
	if _, err := res.Fetch("missing", "text"); err == nil {
		t.Fatal("missing key fetch accepted")
	}
}
