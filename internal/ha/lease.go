// Package ha is the hot-standby availability layer over the vine engine:
// a file-based leadership lease with epoch fencing, and a Standby that
// tails a primary manager's journal and takes over — binding a listen
// address, announcing itself, and dispatching from pre-folded replay
// state — the moment the primary's lease expires. It upgrades PR 5's
// durability (a human restarts the manager, the journal warms it) into
// availability (no human in the loop), which is what keeps a shared
// analysis facility near-interactive through a scheduler crash.
package ha

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Lease timing defaults. A holder renews every TTL/3 (two missed renewals
// of slack before expiry) and a standby polls at TTL/8 so takeover begins
// within a fraction of the TTL after expiry. Mirrored as
// params.DefaultLeaseTTL / DefaultLeaseRenewEvery / DefaultStandbyPoll.
const (
	DefaultTTL = time.Second
)

// leaseFile is the on-disk lease: who holds leadership, under which
// fencing epoch, and until when. Written whole via tmp+rename so readers
// never see a torn lease.
type leaseFile struct {
	Holder  string `json:"holder"`
	Epoch   uint64 `json:"epoch"`
	Renewed int64  `json:"renewed_unix_nano"`
	TTLNano int64  `json:"ttl_nanos"`
}

// LeaseInfo is a point-in-time read of a lease file.
type LeaseInfo struct {
	Holder  string
	Epoch   uint64
	Renewed time.Time
	TTL     time.Duration
}

// Expiry is when the lease lapses unless renewed.
func (i LeaseInfo) Expiry() time.Time { return i.Renewed.Add(i.TTL) }

// Expired reports whether the lease has lapsed as of now.
func (i LeaseInfo) Expired(now time.Time) bool { return !now.Before(i.Expiry()) }

// ReadLease reads the lease file at path. os.IsNotExist(err) means no
// lease has ever been written — no primary has started.
func ReadLease(path string) (LeaseInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return LeaseInfo{}, err
	}
	var lf leaseFile
	if err := json.Unmarshal(data, &lf); err != nil {
		return LeaseInfo{}, fmt.Errorf("ha: lease %s: %w", path, err)
	}
	return LeaseInfo{
		Holder:  lf.Holder,
		Epoch:   lf.Epoch,
		Renewed: time.Unix(0, lf.Renewed),
		TTL:     time.Duration(lf.TTLNano),
	}, nil
}

// Lease is held leadership: the holder renews the file every TTL/3 and
// watches for a usurper. The epoch is the fencing token — every
// acquisition, by anyone, increments it, so a holder that reads a higher
// epoch than its own knows leadership moved on and closes Lost.
//
// Release stops renewing but deliberately leaves the file in place: a
// cleanly-stopping primary looks exactly like a crashed one, and the
// standby waits out the full TTL either way. (Deleting the file would be
// an instant-failover optimization; modeling the crash path is worth
// more here.)
//
// Suspend/Resume model a stop-the-world pause (GC, SIGSTOP, a VM
// migration): renewals halt without the holder knowing. On Resume the
// next renewal re-reads the file, finds the standby's higher epoch, and
// fires Lost — the split-brain guard vine.WithLease turns into a
// dispatch fence.
type Lease struct {
	path   string
	holder string
	ttl    time.Duration
	epoch  uint64

	mu        sync.Mutex
	suspended bool
	lost      bool
	lostC     chan struct{}
	stopC     chan struct{}
	stopped   bool
}

// AcquireLease takes leadership at path. It fails if another holder's
// lease is still unexpired; an expired lease (or the caller's own) is
// usurped with an incremented epoch. The returned Lease is already
// renewing in the background.
func AcquireLease(path, holder string, ttl time.Duration) (*Lease, error) {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	now := time.Now()
	epoch := uint64(1)
	if info, err := ReadLease(path); err == nil {
		if info.Holder != holder && !info.Expired(now) {
			return nil, fmt.Errorf("ha: lease %s held by %q (epoch %d) until %s",
				path, info.Holder, info.Epoch, info.Expiry().Format(time.RFC3339Nano))
		}
		epoch = info.Epoch + 1
	} else if !os.IsNotExist(err) {
		// Unreadable lease: refuse to guess at leadership.
		return nil, err
	}
	l := &Lease{
		path:   path,
		holder: holder,
		ttl:    ttl,
		epoch:  epoch,
		lostC:  make(chan struct{}),
		stopC:  make(chan struct{}),
	}
	if err := l.write(now); err != nil {
		return nil, err
	}
	go l.renewLoop()
	return l, nil
}

// write persists the lease whole (tmp+rename) with a fresh renewal stamp.
func (l *Lease) write(now time.Time) error {
	if err := os.MkdirAll(filepath.Dir(l.path), 0o755); err != nil {
		return fmt.Errorf("ha: %w", err)
	}
	data, err := json.Marshal(leaseFile{
		Holder: l.holder, Epoch: l.epoch,
		Renewed: now.UnixNano(), TTLNano: int64(l.ttl),
	})
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.%d.tmp", l.path, os.Getpid())
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ha: lease write: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ha: lease write: %w", err)
	}
	return nil
}

// renewLoop re-stamps the lease every TTL/3 — after first re-reading it.
// Finding a different epoch or holder means leadership was usurped while
// this holder wasn't looking; the lease is marked lost and never touched
// again (overwriting the usurper's file would be the split-brain).
func (l *Lease) renewLoop() {
	t := time.NewTicker(l.ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-l.stopC:
			return
		case <-t.C:
		}
		l.mu.Lock()
		suspended := l.suspended
		l.mu.Unlock()
		if suspended {
			continue
		}
		info, err := ReadLease(l.path)
		switch {
		case err == nil && (info.Epoch != l.epoch || info.Holder != l.holder):
			l.markLost()
			return
		case err != nil && !os.IsNotExist(err):
			// Transient read failure: skip this renewal, try again.
			continue
		}
		// Still ours (or vanished — rewrite it; nobody else claimed it).
		if err := l.write(time.Now()); err != nil {
			continue
		}
	}
}

func (l *Lease) markLost() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.lost {
		l.lost = true
		close(l.lostC)
	}
}

// Lost is closed when the lease is observed held by someone else.
// Satisfies vine.Lease.
func (l *Lease) Lost() <-chan struct{} { return l.lostC }

// Holder names the lease owner. Satisfies vine.Lease.
func (l *Lease) Holder() string { return l.holder }

// Epoch is the fencing token of this acquisition. Satisfies vine.Lease.
func (l *Lease) Epoch() uint64 { return l.epoch }

// TTL reports the lease duration.
func (l *Lease) TTL() time.Duration { return l.ttl }

// Suspend halts renewals without the holder "knowing" — the test and ops
// hook for modeling a stop-the-world pause.
func (l *Lease) Suspend() {
	l.mu.Lock()
	l.suspended = true
	l.mu.Unlock()
}

// Resume restarts renewals after Suspend. If the lease lapsed and was
// usurped during the pause, the next renewal detects it and fires Lost.
func (l *Lease) Resume() {
	l.mu.Lock()
	l.suspended = false
	l.mu.Unlock()
}

// Release stops renewing. The file is left in place — see the type
// comment — so a successor still waits out the TTL.
func (l *Lease) Release() {
	l.mu.Lock()
	if !l.stopped {
		l.stopped = true
		close(l.stopC)
	}
	l.mu.Unlock()
}
