package ha

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"hepvine/internal/journal"
	"hepvine/internal/params"
)

// TestParamsMirrorLeaseTiming keeps the simulation plane's documented
// availability constants in lock-step with the live defaults.
func TestParamsMirrorLeaseTiming(t *testing.T) {
	t.Parallel()
	if params.DefaultLeaseTTL != DefaultTTL {
		t.Fatalf("params.DefaultLeaseTTL = %v, live DefaultTTL = %v", params.DefaultLeaseTTL, DefaultTTL)
	}
	if params.DefaultLeaseRenewEvery != DefaultTTL/3 {
		t.Fatalf("params.DefaultLeaseRenewEvery = %v, live renew cadence = %v", params.DefaultLeaseRenewEvery, DefaultTTL/3)
	}
	if params.DefaultStandbyPoll != DefaultTTL/8 {
		t.Fatalf("params.DefaultStandbyPoll = %v, live standby poll = %v", params.DefaultStandbyPoll, DefaultTTL/8)
	}
}

// TestLeaseConflictAndSuccession: a fresh lease excludes other holders;
// once it lapses a successor acquires it under a higher epoch.
func TestLeaseConflictAndSuccession(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "lease.json")
	ttl := 150 * time.Millisecond

	a, err := AcquireLease(path, "primary", ttl)
	if err != nil {
		t.Fatalf("acquire primary: %v", err)
	}
	if a.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", a.Epoch())
	}
	if _, err := AcquireLease(path, "standby", ttl); err == nil {
		t.Fatal("standby acquired a live lease")
	}

	// Release stops renewals but leaves the file; the successor still has
	// to wait out the TTL.
	a.Release()
	if _, err := AcquireLease(path, "standby", ttl); err == nil {
		t.Fatal("standby acquired immediately after release; should wait out TTL")
	}
	time.Sleep(ttl + 50*time.Millisecond)

	b, err := AcquireLease(path, "standby", ttl)
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	defer b.Release()
	if b.Epoch() != 2 {
		t.Fatalf("successor epoch = %d, want 2", b.Epoch())
	}
	info, err := ReadLease(path)
	if err != nil || info.Holder != "standby" || info.Epoch != 2 {
		t.Fatalf("lease file = %+v, %v; want holder=standby epoch=2", info, err)
	}
}

// TestLeaseUsurpFiresLost: a paused holder whose lease lapses and is
// taken by someone else must observe the loss when it wakes up — the
// split-brain detection the manager's dispatch fence hangs off.
func TestLeaseUsurpFiresLost(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "lease.json")
	ttl := 120 * time.Millisecond

	a, err := AcquireLease(path, "primary", ttl)
	if err != nil {
		t.Fatalf("acquire primary: %v", err)
	}
	defer a.Release()
	a.Suspend() // stop-the-world pause
	time.Sleep(ttl + 50*time.Millisecond)

	b, err := AcquireLease(path, "usurper", ttl)
	if err != nil {
		t.Fatalf("usurp expired lease: %v", err)
	}
	defer b.Release()

	a.Resume()
	select {
	case <-a.Lost():
	case <-time.After(2 * time.Second):
		t.Fatal("paused-then-resumed holder never noticed the usurper")
	}
	select {
	case <-b.Lost():
		t.Fatal("usurper lost its own lease")
	default:
	}
}

// TestStandbyTakeover: a standby tails a journal written by a "primary",
// and when the primary's lease lapses it drains the tail, acquires the
// lease under a new epoch, and comes up as a live manager on its
// pre-chosen address with the replayed history.
func TestStandbyTakeover(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ttl := 200 * time.Millisecond

	jr, err := journal.Open(dir, journal.Options{SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	for tid := 1; tid <= 3; tid++ {
		spec := &journal.TaskSpec{Mode: "task", Library: "lib", Func: "f", Cores: 1}
		if _, err := jr.Append(&journal.Record{Kind: journal.KindTaskDef,
			TaskID: tid, DefHash: "h" + string(rune('0'+tid)), Spec: spec}); err != nil {
			t.Fatalf("append def: %v", err)
		}
		if _, err := jr.Append(&journal.Record{Kind: journal.KindTaskDone,
			TaskID: tid, DefHash: "h" + string(rune('0'+tid))}); err != nil {
			t.Fatalf("append done: %v", err)
		}
	}
	if err := jr.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	lease, err := AcquireLease(DefaultLeasePath(dir), "primary", ttl)
	if err != nil {
		t.Fatalf("acquire primary lease: %v", err)
	}

	// Pre-pick the standby's address the way a deployment would: it is
	// part of worker configuration, decided before any failure.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probe listen: %v", err)
	}
	addr := probe.Addr().String()
	probe.Close()

	sb, err := NewStandby(Config{JournalDir: dir, TTL: ttl, Addr: addr, Name: "standby-1"})
	if err != nil {
		t.Fatalf("new standby: %v", err)
	}
	defer sb.Stop()

	// While the primary renews, the standby must stay a follower.
	select {
	case <-sb.Ready():
		t.Fatalf("standby took over under a live lease (err=%v)", sb.Err())
	case <-time.After(2 * ttl):
	}

	// "Crash" the primary: stop renewing and close the journal.
	lease.Release()
	jr.Close()

	select {
	case <-sb.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("standby never took over after lease expiry")
	}
	if err := sb.Err(); err != nil {
		t.Fatalf("standby failed: %v", err)
	}
	mgr := sb.Manager()
	if mgr == nil {
		t.Fatal("ready standby has no manager")
	}
	if got := mgr.Addr(); got != addr {
		t.Fatalf("takeover manager bound %s, want %s", got, addr)
	}
	if mgr.LeaseLost() {
		t.Fatal("fresh takeover manager already fenced")
	}
	if n := sb.Applied(); n < 6 {
		t.Fatalf("standby folded %d records, want >= 6", n)
	}
	info, err := ReadLease(DefaultLeasePath(dir))
	if err != nil || info.Holder != "standby-1" || info.Epoch != 2 {
		t.Fatalf("post-takeover lease = %+v, %v; want holder=standby-1 epoch=2", info, err)
	}
	mgr.Stop()
}
