package ha

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hepvine/internal/journal"
	"hepvine/internal/obs"
	"hepvine/internal/vine"
)

// Config configures a hot standby.
type Config struct {
	// JournalDir is the primary's journal directory (shared filesystem or
	// shared volume). The standby tails segments and snapshots in here and
	// expects the leadership lease alongside them.
	JournalDir string

	// LeasePath overrides the lease file location. Default:
	// JournalDir/lease.json.
	LeasePath string

	// TTL is the lease duration the standby both watches for and acquires
	// with. Default DefaultTTL. It must match the primary's TTL for the
	// takeover-latency bound (< 2×TTL) to mean anything.
	TTL time.Duration

	// Addr is the address the standby binds on takeover. Required: workers
	// are launched with the full manager address list, so the standby's
	// address is chosen before the failure, not after.
	Addr string

	// Name identifies this standby as a lease holder. Default "standby".
	Name string

	// PollInterval is the journal-tail and lease-watch cadence.
	// Default TTL/8.
	PollInterval time.Duration

	// ManagerOptions are extra vine options applied to the takeover
	// manager (scheduling policy, heartbeat tuning, recorder...). The
	// standby appends its own journal/replay/lease/listen options last.
	ManagerOptions []vine.Option

	// Recorder receives standby lifecycle events. May be nil.
	Recorder *obs.Recorder
}

// Standby tails a primary manager's journal into a hot vine.ReplayState
// and watches the leadership lease. While the primary renews, the standby
// is pure follower: every appended record is folded within a poll
// interval, so its state is never more than ~TTL/8 behind. When the lease
// expires it acquires leadership under a new epoch, drains the remaining
// tail, reopens the journal for writing, and starts a real manager from
// the pre-folded state — Ready() closes and workers redialing through
// their address list find it listening.
type Standby struct {
	cfg    Config
	lease  *Lease
	fl     *journal.Follower
	state  *vine.ReplayState
	readyC chan struct{}
	stopC  chan struct{}

	mu      sync.Mutex
	mgr     *vine.Manager
	err     error
	stopped bool
}

// NewStandby starts tailing and lease-watching in the background.
func NewStandby(cfg Config) (*Standby, error) {
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("ha: standby needs a JournalDir")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("ha: standby needs a takeover Addr")
	}
	if cfg.LeasePath == "" {
		cfg.LeasePath = filepath.Join(cfg.JournalDir, "lease.json")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Name == "" {
		cfg.Name = "standby"
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = cfg.TTL / 8
	}
	s := &Standby{
		cfg:    cfg,
		state:  vine.NewReplayState(),
		readyC: make(chan struct{}),
		stopC:  make(chan struct{}),
	}
	s.fl = journal.NewFollower(cfg.JournalDir, journal.FollowerOptions{
		PollInterval: cfg.PollInterval,
		OnReset:      s.state.Reset,
	})
	go s.run()
	return s, nil
}

// DefaultLeasePath is where a journaled manager's lease lives by
// convention: alongside the segments it fences.
func DefaultLeasePath(journalDir string) string {
	return filepath.Join(journalDir, "lease.json")
}

// run is the standby loop: tail, watch, take over.
func (s *Standby) run() {
	tick := time.NewTicker(s.cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopC:
			s.fl.Close()
			return
		case <-tick.C:
		}
		s.fl.Poll(s.state.Apply)

		info, err := ReadLease(s.cfg.LeasePath)
		if err != nil {
			// No lease yet (primary not started) or transient read error:
			// keep tailing.
			if !os.IsNotExist(err) {
				s.emit(obs.Event{Type: obs.EvLeaseLost, Src: s.cfg.Name,
					Detail: fmt.Sprintf("lease unreadable: %v", err)})
			}
			continue
		}
		now := time.Now()
		if !info.Expired(now) {
			continue
		}
		if err := s.takeover(info); err != nil {
			s.fail(err)
			return
		}
		return
	}
}

// takeover promotes this standby to primary. expired is the lapsed lease
// it observed; its Expiry() anchors the takeover-latency measurement
// (lease expiry → first dispatch), matching the availability gap a client
// actually experiences.
func (s *Standby) takeover(expired LeaseInfo) error {
	lease, err := AcquireLease(s.cfg.LeasePath, s.cfg.Name, s.cfg.TTL)
	if err != nil {
		// Another standby beat us to it; that incarnation owns the run now.
		return fmt.Errorf("ha: standby %s lost the takeover race: %w", s.cfg.Name, err)
	}
	s.emit(obs.Event{Type: obs.EvTakeover, Src: s.cfg.Name, Attempt: int(lease.Epoch()),
		Detail: fmt.Sprintf("lease of %q expired %s ago, draining journal tail",
			expired.Holder, time.Since(expired.Expiry()).Round(time.Millisecond))})

	// Drain every record the dead primary managed to sync. Anything past a
	// torn tail was never acknowledged durable, so losing it is within the
	// journal's contract — the re-run client resubmits those tasks.
	s.fl.Drain(s.state.Apply)
	s.fl.Close()

	// Reopen for writing: Open picks a fresh generation above everything
	// on disk, so the new incarnation's records never interleave with the
	// old segments the follower just consumed.
	jr, err := journal.Open(s.cfg.JournalDir, journal.Options{})
	if err != nil {
		lease.Release()
		return fmt.Errorf("ha: standby reopening journal: %w", err)
	}

	opts := append([]vine.Option{}, s.cfg.ManagerOptions...)
	opts = append(opts,
		vine.WithJournal(jr),
		vine.WithReplayState(s.state),
		vine.WithListenAddr(s.cfg.Addr),
		vine.WithLease(lease),
		vine.WithTakeoverFrom(expired.Expiry(), lease.Epoch()),
	)
	if s.cfg.Recorder != nil {
		opts = append(opts, vine.WithRecorder(s.cfg.Recorder))
	}
	// The old primary may hold the port through its TIME_WAIT teardown
	// when Addr was previously bound in-process; retry briefly.
	var mgr *vine.Manager
	deadline := time.Now().Add(2 * s.cfg.TTL)
	for {
		mgr, err = vine.NewManager(opts...)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			lease.Release()
			jr.Close()
			return fmt.Errorf("ha: standby binding %s: %w", s.cfg.Addr, err)
		}
		time.Sleep(s.cfg.PollInterval)
	}

	s.mu.Lock()
	s.lease = lease
	s.mgr = mgr
	s.mu.Unlock()
	close(s.readyC)
	return nil
}

func (s *Standby) fail(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
	close(s.readyC)
	s.emit(obs.Event{Type: obs.EvLeaseLost, Src: s.cfg.Name, Detail: err.Error()})
}

func (s *Standby) emit(ev obs.Event) {
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Emit(ev)
	}
}

// Ready is closed when the standby has taken over (Manager() is live) or
// permanently failed (Err() is non-nil).
func (s *Standby) Ready() <-chan struct{} { return s.readyC }

// Manager returns the post-takeover manager, or nil before takeover.
func (s *Standby) Manager() *vine.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// Err reports a permanent standby failure (lost takeover race, journal
// reopen failure, bind failure), or nil.
func (s *Standby) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Applied reports how many journal records the standby has folded so far
// — the "hotness" of its replay state.
func (s *Standby) Applied() int64 { return s.state.Applied() }

// Stop halts a standby that has not taken over. After takeover the
// manager's own Stop governs; Stop then also releases the lease.
func (s *Standby) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	lease, mgr := s.lease, s.mgr
	s.mu.Unlock()
	close(s.stopC)
	if mgr != nil {
		mgr.Stop()
	}
	if lease != nil {
		lease.Release()
	}
}
