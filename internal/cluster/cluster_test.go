package cluster

import (
	"testing"
	"time"

	"hepvine/internal/units"
)

func basicConfig(workers int) Config {
	return Config{
		Workers:        workers,
		CoresPerWorker: 12,
		WorkerDisk:     units.GBf(108),
		Seed:           7,
	}
}

func TestPoolShape(t *testing.T) {
	p := New(basicConfig(10))
	if len(p.Workers) != 10 {
		t.Fatalf("workers = %d", len(p.Workers))
	}
	if p.TotalCores() != 120 {
		t.Fatalf("cores = %d", p.TotalCores())
	}
	if p.Manager == nil || p.Manager.ID != 0 {
		t.Fatal("manager wrong")
	}
	for i, w := range p.Workers {
		if w.ID != i+1 {
			t.Fatalf("worker %d has id %d", i, w.ID)
		}
		if w.Disk.Capacity != units.GBf(108) {
			t.Fatalf("disk cap = %v", w.Disk.Capacity)
		}
		if w.Alive {
			t.Fatal("worker alive before Start")
		}
	}
}

func TestStartAllArrive(t *testing.T) {
	p := New(basicConfig(20))
	arrived := 0
	p.Start(func(n *Node) { arrived++ })
	p.Eng.Run(0)
	if arrived != 20 || p.AliveWorkers() != 20 {
		t.Fatalf("arrived=%d alive=%d", arrived, p.AliveWorkers())
	}
}

func TestStartupSpread(t *testing.T) {
	cfg := basicConfig(50)
	cfg.StartupSpread = 30 * time.Second
	p := New(cfg)
	var first, last time.Duration = 1 << 62, 0
	for _, w := range p.Workers {
		if w.ArrivedAt < first {
			first = w.ArrivedAt
		}
		if w.ArrivedAt > last {
			last = w.ArrivedAt
		}
	}
	if last <= first {
		t.Fatal("no arrival spread")
	}
	if last > 30*time.Second {
		t.Fatalf("arrival beyond spread: %v", last)
	}
}

func TestBusyRelease(t *testing.T) {
	p := New(basicConfig(1))
	w := p.Workers[0]
	if err := w.Busy(12); err != nil {
		t.Fatal(err)
	}
	if w.FreeCores != 0 {
		t.Fatalf("free = %d", w.FreeCores)
	}
	if err := w.Busy(1); err == nil {
		t.Fatal("overcommit accepted")
	}
	w.Release(12)
	if w.FreeCores != 12 {
		t.Fatalf("free = %d", w.FreeCores)
	}
	// Release clamps at capacity.
	w.Release(5)
	if w.FreeCores != 12 {
		t.Fatalf("release overflowed: %d", w.FreeCores)
	}
}

func TestPreempt(t *testing.T) {
	p := New(basicConfig(2))
	p.Start(nil)
	p.Eng.Run(0)
	w := p.Workers[0]
	w.Disk.Put("f", units.GB)
	p.Preempt(w)
	if w.Alive || w.FreeCores != 0 {
		t.Fatal("preempt incomplete")
	}
	if w.Disk.Used() != 0 {
		t.Fatal("preempted cache survived")
	}
	if p.AliveWorkers() != 1 {
		t.Fatalf("alive = %d", p.AliveWorkers())
	}
	if w.PreemptedAt != p.Eng.Now() {
		t.Fatalf("preempted at %v", w.PreemptedAt)
	}
}

func TestSchedulePreemptionsFraction(t *testing.T) {
	cfg := basicConfig(1000)
	p := New(cfg)
	p.Start(nil)
	hits := 0
	n := p.SchedulePreemptions(0.01, time.Hour, func(*Node) { hits++ })
	p.Eng.Run(0)
	// ~1% of 1000 workers, allow 3x slack both ways but nonzero.
	if n < 2 || n > 35 {
		t.Fatalf("scheduled %d preemptions for 1%% of 1000", n)
	}
	if hits != n {
		t.Fatalf("hits=%d scheduled=%d", hits, n)
	}
	if p.AliveWorkers() != 1000-n {
		t.Fatalf("alive = %d", p.AliveWorkers())
	}
}

func TestPreemptionsDeterministic(t *testing.T) {
	count := func() int {
		p := New(basicConfig(500))
		p.Start(nil)
		n := p.SchedulePreemptions(0.02, time.Hour, nil)
		p.Eng.Run(0)
		return n
	}
	if count() != count() {
		t.Fatal("preemption schedule not deterministic")
	}
}

func TestZeroPreemptions(t *testing.T) {
	p := New(basicConfig(100))
	p.Start(nil)
	if n := p.SchedulePreemptions(0, time.Hour, nil); n != 0 {
		t.Fatalf("scheduled %d for frac 0", n)
	}
}

func TestSpeedSpread(t *testing.T) {
	cfg := basicConfig(100)
	cfg.SpeedSpread = 0.2
	p := New(cfg)
	var min, max float64 = 10, 0
	for _, w := range p.Workers {
		if w.Speed < min {
			min = w.Speed
		}
		if w.Speed > max {
			max = w.Speed
		}
	}
	if min < 0.8 || max > 1.2 {
		t.Fatalf("speeds out of [0.8,1.2]: %v..%v", min, max)
	}
	if max-min < 0.1 {
		t.Fatalf("no meaningful spread: %v..%v", min, max)
	}
	// Homogeneous by default.
	p2 := New(basicConfig(10))
	for _, w := range p2.Workers {
		if w.Speed != 1 {
			t.Fatalf("default speed = %v", w.Speed)
		}
	}
}
