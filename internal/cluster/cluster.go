// Package cluster models the facility layer: compute nodes on a campus
// fabric, batch-style worker arrival, and the opportunistic preemption of
// an HTCondor pool (§IV: "heterogeneous campus HTCondor cluster with
// opportunistic scheduling, resulting in the preemption of up to 1% of
// workers in each run").
package cluster

import (
	"fmt"
	"time"

	"hepvine/internal/netsim"
	"hepvine/internal/params"
	"hepvine/internal/randx"
	"hepvine/internal/sim"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

// Node is one compute node (or the manager's host).
type Node struct {
	ID    int
	Name  string
	Cores int
	RAM   units.Bytes
	// Speed is the node's relative CPU speed (1.0 = nominal). The campus
	// pool is heterogeneous (§IV); compute times divide by Speed.
	Speed float64

	EP   *netsim.Endpoint
	Disk *storage.LocalDisk

	FreeCores int
	Alive     bool
	// ArrivedAt is when the batch system started the worker.
	ArrivedAt time.Duration
	// PreemptedAt is when it was lost (0 = never).
	PreemptedAt time.Duration
}

// Busy reserves n cores.
func (n *Node) Busy(cores int) error {
	if cores > n.FreeCores {
		return fmt.Errorf("cluster: node %s has %d free cores, need %d", n.Name, n.FreeCores, cores)
	}
	n.FreeCores -= cores
	return nil
}

// Release returns n cores.
func (n *Node) Release(cores int) {
	n.FreeCores += cores
	if n.FreeCores > n.Cores {
		n.FreeCores = n.Cores
	}
}

// Config describes a pool to build.
type Config struct {
	Workers        int
	CoresPerWorker int
	WorkerDisk     units.Bytes
	WorkerRAM      units.Bytes
	WorkerNIC      units.BytesPerSec // default params.WorkerNIC
	ManagerNIC     units.BytesPerSec // default params.ManagerNIC
	// StartupSpread staggers worker arrival over this window (batch
	// submission); 0 = all present at t=0.
	StartupSpread time.Duration
	// SpeedSpread makes the pool heterogeneous: node speeds are drawn
	// uniformly from [1-s, 1+s]. 0 = homogeneous.
	SpeedSpread float64
	Seed        uint64
}

// Pool is a simulated facility: manager node, worker nodes, network, and
// any attached shared filesystems.
type Pool struct {
	Eng *sim.Engine
	Net *netsim.Network

	Manager *Node
	Workers []*Node

	rng *randx.RNG
}

// New builds a pool on a fresh simulation engine.
func New(cfg Config) *Pool {
	if cfg.WorkerNIC == 0 {
		cfg.WorkerNIC = params.WorkerNIC
	}
	if cfg.ManagerNIC == 0 {
		cfg.ManagerNIC = params.ManagerNIC
	}
	eng := sim.NewEngine()
	net := netsim.New(eng)
	p := &Pool{
		Eng: eng,
		Net: net,
		rng: randx.NewStream(cfg.Seed, 77),
	}
	p.Manager = &Node{
		ID:    0,
		Name:  "manager",
		Cores: 1,
		Speed: 1,
		EP:    net.AddEndpoint("manager", cfg.ManagerNIC, cfg.ManagerNIC, params.NetLatency),
		Disk:  storage.NewLocalDisk(0),
		Alive: true,
	}
	for i := 0; i < cfg.Workers; i++ {
		n := &Node{
			ID:        i + 1,
			Name:      fmt.Sprintf("worker%03d", i),
			Cores:     cfg.CoresPerWorker,
			FreeCores: cfg.CoresPerWorker,
			RAM:       cfg.WorkerRAM,
			Speed:     1,
			EP:        net.AddEndpoint(fmt.Sprintf("worker%03d", i), cfg.WorkerNIC, cfg.WorkerNIC, params.NetLatency),
			Disk:      storage.NewLocalDisk(cfg.WorkerDisk),
		}
		if cfg.SpeedSpread > 0 {
			n.Speed = 1 + p.rng.Range(-cfg.SpeedSpread, cfg.SpeedSpread)
		}
		if cfg.StartupSpread > 0 {
			n.ArrivedAt = time.Duration(p.rng.Float64() * float64(cfg.StartupSpread))
		}
		p.Workers = append(p.Workers, n)
	}
	return p
}

// Start schedules worker arrivals; onArrive fires as each worker comes
// online (Alive=true).
func (p *Pool) Start(onArrive func(*Node)) {
	for _, w := range p.Workers {
		w := w
		p.Eng.Schedule(w.ArrivedAt, func() {
			w.Alive = true
			if onArrive != nil {
				onArrive(w)
			}
		})
	}
}

// SchedulePreemptions kills approximately frac of the workers at uniform
// random times within the window, invoking onPreempt for each. It reports
// how many preemptions were scheduled.
func (p *Pool) SchedulePreemptions(frac float64, window time.Duration, onPreempt func(*Node)) int {
	n := 0
	for _, w := range p.Workers {
		if !p.rng.Bool(frac) {
			continue
		}
		n++
		w := w
		at := w.ArrivedAt + time.Duration(p.rng.Float64()*float64(window-w.ArrivedAt))
		if at <= w.ArrivedAt {
			at = w.ArrivedAt + time.Second
		}
		p.Eng.Schedule(at, func() {
			if !w.Alive {
				return
			}
			p.Preempt(w)
			if onPreempt != nil {
				onPreempt(w)
			}
		})
	}
	return n
}

// Preempt kills a worker immediately: its cache is lost and its cores gone.
func (p *Pool) Preempt(w *Node) {
	w.Alive = false
	w.PreemptedAt = p.Eng.Now()
	w.FreeCores = 0
	w.Disk.Clear()
}

// AliveWorkers reports currently-live workers.
func (p *Pool) AliveWorkers() int {
	n := 0
	for _, w := range p.Workers {
		if w.Alive {
			n++
		}
	}
	return n
}

// TotalCores reports the pool's core count (alive or not).
func (p *Pool) TotalCores() int {
	n := 0
	for _, w := range p.Workers {
		n += w.Cores
	}
	return n
}
