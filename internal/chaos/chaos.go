// Package chaos is the live plane's fault injector: a deterministic,
// seeded plan of scripted faults (worker kills, connection drops,
// read/write stalls, byte corruption, partitions) delivered through
// net.Conn and net.Listener wrappers. It is the live-TCP analogue of
// internal/netsim's modelled failures: where the simulator *computes* the
// effect of a lost worker, chaos *causes* one on a real loopback cluster
// and lets the recovery machinery in internal/vine and internal/xrootd
// prove itself.
//
// Every fault carries an offset from Plan.Start, so a plan built from a
// seed replays identically across runs: same kills, same stall windows,
// same order. Components opt in via their functional options
// (vine.WithFaultInjector, xrootd dial/server options); a nil or absent
// plan costs nothing.
//
// Labels name the fault domain of each wrapped endpoint, slash-separated
// ("w0/control", "w0/transfer", "manager/fetch", "xrootd/client"). A
// fault's Target matches a label exactly, by path prefix ("w0" matches
// "w0/control"), or everything ("*") — so one Kill fault aimed at "w0"
// severs a worker's control and data planes together, which is exactly
// what an HTCondor eviction does (§IV: "preemption of up to 1% of
// workers in each run").
package chaos

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/randx"
)

// Kind names one fault mechanism.
type Kind string

// The fault vocabulary.
const (
	// KindKill closes every matching live connection at At and refuses
	// all future matching connections — a worker eviction.
	KindKill Kind = "kill"
	// KindDrop closes every matching live connection at At once;
	// reconnects succeed — a transient network reset.
	KindDrop Kind = "drop"
	// KindStall black-holes matching connections for [At, At+Dur]:
	// reads and writes block until the window passes. The TCP session
	// stays established — the fault only a heartbeat can detect.
	KindStall Kind = "stall"
	// KindCorrupt flips exactly one byte of matching traffic after At —
	// a payload integrity failure. The fault is armed globally: the
	// first matching connection to read data after the firing claims it
	// and flips the byte Offset bytes into its post-claim stream, so a
	// short-lived transfer connection opened after At is corrupted just
	// as reliably as a long-lived control link, and each fault corrupts
	// exactly once. Since PR 4 the vine and xrootd payload checksums
	// detect the flip and heal it (quarantine + refetch + lineage
	// rollback) instead of letting it reach a histogram.
	KindCorrupt Kind = "corrupt"
	// KindPartition makes matching connections error on use and
	// matching dials fail for [At, At+Dur] — a routed-away network.
	KindPartition Kind = "partition"
	// KindCrash invokes the callback registered for Target (RegisterCrash)
	// at At — a process-level fault the connection wrappers can't express,
	// such as the manager dying mid-run with its journal mid-write. The
	// callback runs outside the plan lock, once per matching fault.
	KindCrash Kind = "crash"
	// KindPreempt is an eviction with notice — the HTCondor/spot-instance
	// shape: at At the callback registered for Target (RegisterPreempt)
	// receives Dur as its grace window (typically wired to Worker.Drain);
	// at At+Dur the grace is blown and every matching connection is
	// severed, with future dials refused, exactly like KindKill. A worker
	// that drained clean and exited inside the window makes the kill a
	// no-op on already-closed connections.
	KindPreempt Kind = "preempt"
)

// Fault is one scripted failure.
type Fault struct {
	Kind   Kind
	Target string        // label, label prefix, or "*"
	At     time.Duration // offset from Plan.Start
	Dur    time.Duration // window length (stall, partition)
	Offset int64         // corrupt: bytes into the claimed stream to flip (default 0 = first byte)
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s %s @%v", f.Kind, f.Target, f.At)
	if f.Dur > 0 {
		s += fmt.Sprintf("+%v", f.Dur)
	}
	if f.Offset > 0 {
		s += fmt.Sprintf(" off=%d", f.Offset)
	}
	return s
}

// corruptArm is an armed corruption waiting to be claimed: the first
// connection whose label matches target to read data takes it and flips
// one byte skip bytes into its remaining stream.
type corruptArm struct {
	target string
	skip   int64
}

// Plan schedules faults against wrapped connections. Build it, register
// faults, hand it to the components under test, then Start it. All
// methods are safe for concurrent use.
type Plan struct {
	rng *randx.RNG
	rec *obs.Recorder

	mu         sync.Mutex
	faults     []Fault
	started    bool
	t0         time.Time
	conns      map[*faultConn]struct{}
	dead       []string     // kill targets already fired: future dials refused
	armed      []corruptArm // fired corruptions awaiting a matching read
	crashFns   map[string]func()
	preemptFns map[string]func(grace time.Duration)
	timers     []*time.Timer
	fired      int
}

// NewPlan returns an empty plan whose randomized builders draw from seed.
func NewPlan(seed uint64) *Plan {
	return &Plan{
		rng:        randx.NewStream(seed, 913),
		conns:      make(map[*faultConn]struct{}),
		crashFns:   make(map[string]func()),
		preemptFns: make(map[string]func(grace time.Duration)),
	}
}

// RegisterCrash installs the callback a KindCrash fault aimed at name (or
// a prefix of it, or "*") invokes. Typically mgr.Crash for a manager-kill
// scenario. Callable before or after Start; a later registration does not
// rerun already-fired crashes.
func (p *Plan) RegisterCrash(name string, fn func()) {
	p.mu.Lock()
	p.crashFns[name] = fn
	p.mu.Unlock()
}

// RegisterPreempt installs the callback a KindPreempt fault aimed at name
// (or a prefix of it, or "*") invokes with the fault's grace window —
// typically the worker's Drain method. The blown-grace kill at At+Dur is
// the plan's own doing and needs no registration.
func (p *Plan) RegisterPreempt(name string, fn func(grace time.Duration)) {
	p.mu.Lock()
	p.preemptFns[name] = fn
	p.mu.Unlock()
}

// SetRecorder attaches an obs recorder; every fault firing emits one
// EvChaosFault. A nil recorder disables emission.
func (p *Plan) SetRecorder(rec *obs.Recorder) {
	p.mu.Lock()
	p.rec = rec
	p.mu.Unlock()
}

// Add registers a scripted fault. Must be called before Start.
func (p *Plan) Add(faults ...Fault) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		panic("chaos: Add after Start")
	}
	p.faults = append(p.faults, faults...)
	return p
}

// AddRandomKills scripts n kills at seed-deterministic times in
// [from, to), drawn over the target list round-robin-free: both the
// victim and the moment come from the plan's RNG, so the same seed
// always evicts the same workers at the same offsets.
func (p *Plan) AddRandomKills(n int, targets []string, from, to time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		panic("chaos: AddRandomKills after Start")
	}
	for i := 0; i < n && len(targets) > 0; i++ {
		at := from + time.Duration(p.rng.Float64()*float64(to-from))
		p.faults = append(p.faults, Fault{
			Kind:   KindKill,
			Target: targets[p.rng.Intn(len(targets))],
			At:     at,
		})
	}
	return p
}

// AddRandomStalls scripts n stall windows of length dur at
// seed-deterministic times in [from, to).
func (p *Plan) AddRandomStalls(n int, targets []string, from, to, dur time.Duration) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		panic("chaos: AddRandomStalls after Start")
	}
	for i := 0; i < n && len(targets) > 0; i++ {
		at := from + time.Duration(p.rng.Float64()*float64(to-from))
		p.faults = append(p.faults, Fault{
			Kind:   KindStall,
			Target: targets[p.rng.Intn(len(targets))],
			At:     at,
			Dur:    dur,
		})
	}
	return p
}

// Faults returns the scripted plan sorted by offset — the reproducible
// schedule a seed materializes into.
func (p *Plan) Faults() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := append([]Fault(nil), p.faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Fired reports how many faults have fired so far.
func (p *Plan) Fired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Start arms the plan: fault offsets become wall-clock firing times.
// Idempotent.
func (p *Plan) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	p.started = true
	p.t0 = time.Now()
	for _, f := range p.faults {
		f := f
		p.timers = append(p.timers, time.AfterFunc(f.At, func() { p.fire(f) }))
	}
}

// Stop cancels every pending fault. Already-open stall and partition
// windows keep draining by wall clock; new firings cease.
func (p *Plan) Stop() {
	p.mu.Lock()
	timers := p.timers
	p.timers = nil
	p.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// fire applies a fault's instantaneous effect. Window faults (stall,
// partition) need no action here beyond the event — the wrappers consult
// the window arithmetic on every I/O — but kill and drop must sever
// connections that may be parked inside blocking reads.
func (p *Plan) fire(f Fault) {
	p.mu.Lock()
	p.fired++
	rec := p.rec
	var victims []*faultConn
	switch f.Kind {
	case KindKill, KindDrop:
		for c := range p.conns {
			if matches(f.Target, c.label) {
				victims = append(victims, c)
			}
		}
		if f.Kind == KindKill {
			p.dead = append(p.dead, f.Target)
		}
	case KindCorrupt:
		// Armed globally, claimed by the first matching read — conns
		// opened after the firing (short-lived fetches) are covered too.
		p.armed = append(p.armed, corruptArm{target: f.Target, skip: f.Offset})
	}
	var crashes []func()
	if f.Kind == KindCrash {
		for name, fn := range p.crashFns {
			if matches(f.Target, name) {
				crashes = append(crashes, fn)
			}
		}
	}
	if f.Kind == KindPreempt {
		grace := f.Dur
		for name, fn := range p.preemptFns {
			if matches(f.Target, name) {
				fn := fn
				crashes = append(crashes, func() { fn(grace) })
			}
		}
		// Arm the blown-grace kill — unless Stop already cancelled the
		// plan (timers nil). A clean early exit makes this a no-op.
		if p.timers != nil {
			target := f.Target
			p.timers = append(p.timers, time.AfterFunc(grace, func() { p.killNow(target) }))
		}
	}
	p.mu.Unlock()
	rec.Emit(obs.Event{Type: obs.EvChaosFault, Worker: f.Target, Detail: f.String()})
	for _, c := range victims {
		c.Close()
	}
	for _, fn := range crashes {
		fn()
	}
}

// killNow severs every live connection matching target and refuses its
// future dials — the blown-grace tail of a KindPreempt fault. It does not
// count toward Fired(): the preemption already fired at its notice.
func (p *Plan) killNow(target string) {
	p.mu.Lock()
	rec := p.rec
	var victims []*faultConn
	for c := range p.conns {
		if matches(target, c.label) {
			victims = append(victims, c)
		}
	}
	p.dead = append(p.dead, target)
	p.mu.Unlock()
	rec.Emit(obs.Event{Type: obs.EvChaosFault, Worker: target, Detail: "preempt grace blown: kill " + target})
	for _, c := range victims {
		c.Close()
	}
}

// matches reports whether a fault target covers a label.
func matches(target, label string) bool {
	return target == "*" || label == target || strings.HasPrefix(label, target+"/")
}

// claimCorrupt hands the oldest armed corruption matching label to the
// caller, removing it from the plan — exactly one read stream per fault.
func (p *Plan) claimCorrupt(label string) (skip int64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, a := range p.armed {
		if matches(a.target, label) {
			p.armed = append(p.armed[:i], p.armed[i+1:]...)
			return a.skip, true
		}
	}
	return 0, false
}

// deadLocked reports whether a label belongs to a killed target.
func (p *Plan) deadLocked(label string) bool {
	for _, t := range p.dead {
		if matches(t, label) {
			return true
		}
	}
	return false
}

// stallRemaining reports how long a label must keep blocking right now.
func (p *Plan) stallRemaining(label string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return 0
	}
	now := time.Since(p.t0)
	var rem time.Duration
	for _, f := range p.faults {
		if f.Kind != KindStall || !matches(f.Target, label) {
			continue
		}
		if now >= f.At && now < f.At+f.Dur {
			if r := f.At + f.Dur - now; r > rem {
				rem = r
			}
		}
	}
	return rem
}

// partitioned reports whether a label is inside an active partition
// window (or belongs to a killed target).
func (p *Plan) partitioned(label string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.deadLocked(label) {
		return true
	}
	if !p.started {
		return false
	}
	now := time.Since(p.t0)
	for _, f := range p.faults {
		if f.Kind == KindPartition && matches(f.Target, label) && now >= f.At && now < f.At+f.Dur {
			return true
		}
	}
	return false
}

// WrapConn attaches the plan to a live connection under the given label.
// If the label is already partitioned or killed, the connection is closed
// immediately and a stub that always errors is returned — the dial-time
// refusal path.
func (p *Plan) WrapConn(c net.Conn, label string) net.Conn {
	if p == nil {
		return c
	}
	fc := &faultConn{Conn: c, p: p, label: label}
	if p.partitioned(label) {
		c.Close()
		fc.refused = true
		return fc
	}
	p.mu.Lock()
	p.conns[fc] = struct{}{}
	p.mu.Unlock()
	return fc
}

// WrapListener attaches the plan to a listener; accepted connections are
// wrapped under label + "/conn".
func (p *Plan) WrapListener(ln net.Listener, label string) net.Listener {
	if p == nil {
		return ln
	}
	return &faultListener{Listener: ln, p: p, label: label}
}

// faultConn is a net.Conn that consults the plan on every operation.
type faultConn struct {
	net.Conn
	p     *Plan
	label string

	mu      sync.Mutex
	closed  bool
	refused bool
	// Claimed corruption: one byte gets flipped flipSkip bytes into the
	// reads that follow the claim. Deterministic regardless of how the
	// stream is segmented into Read calls.
	flipArmed bool
	flipSkip  int64
}

// gate enforces kills and partitions; it returns a terminal error when
// the label is cut off.
func (c *faultConn) gate(op string) error {
	c.mu.Lock()
	closed, refused := c.closed, c.refused
	c.mu.Unlock()
	if closed || refused {
		return fmt.Errorf("chaos: %s on severed conn %s", op, c.label)
	}
	if c.p.partitioned(c.label) {
		c.Close()
		return fmt.Errorf("chaos: %s through partition at %s", op, c.label)
	}
	return nil
}

// stall blocks while the label sits inside a stall window. It re-checks
// after each sleep so overlapping or extended windows chain, and bails
// if the connection was severed mid-stall.
func (c *faultConn) stall() {
	for {
		rem := c.p.stallRemaining(c.label)
		if rem <= 0 {
			return
		}
		time.Sleep(rem)
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
	}
}

func (c *faultConn) Read(b []byte) (int, error) {
	if err := c.gate("read"); err != nil {
		return 0, err
	}
	c.stall()
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.mu.Lock()
		armed, skip := c.flipArmed, c.flipSkip
		c.mu.Unlock()
		if !armed {
			if s, ok := c.p.claimCorrupt(c.label); ok {
				armed, skip = true, s
			}
		}
		if armed {
			if skip < int64(n) {
				b[skip] ^= 0xA5
				armed = false
			} else {
				skip -= int64(n)
			}
			c.mu.Lock()
			c.flipArmed, c.flipSkip = armed, skip
			c.mu.Unlock()
		}
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	if err := c.gate("write"); err != nil {
		return 0, err
	}
	c.stall()
	return c.Conn.Write(b)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.p.mu.Lock()
	delete(c.p.conns, c)
	c.p.mu.Unlock()
	return c.Conn.Close()
}

// faultListener wraps accepted connections into the plan.
type faultListener struct {
	net.Listener
	p     *Plan
	label string
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.WrapConn(c, l.label+"/conn"), nil
}
