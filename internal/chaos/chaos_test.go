package chaos

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"hepvine/internal/obs"
)

// pipePair builds a loopback TCP pair so wrapped conns behave like the
// real planes (net.Pipe has no buffering and deadlocks echo loops).
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	if s == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestMatches(t *testing.T) {
	cases := []struct {
		target, label string
		want          bool
	}{
		{"*", "anything", true},
		{"w0", "w0", true},
		{"w0", "w0/control", true},
		{"w0", "w01/control", false},
		{"w0/control", "w0", false},
		{"w0", "manager/control", false},
	}
	for _, c := range cases {
		if got := matches(c.target, c.label); got != c.want {
			t.Errorf("matches(%q, %q) = %v, want %v", c.target, c.label, got, c.want)
		}
	}
}

func TestKillClosesAndRefuses(t *testing.T) {
	p := NewPlan(1)
	rec := obs.NewRecorder()
	p.SetRecorder(rec)
	c, s := pipePair(t)
	wc := p.WrapConn(c, "w0/control")
	p.Add(Fault{Kind: KindKill, Target: "w0", At: 20 * time.Millisecond})
	p.Start()
	defer p.Stop()

	// The victim's blocking read errors when the kill fires.
	errC := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := wc.Read(buf)
		errC <- err
	}()
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("read survived the kill")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kill did not sever the blocking read")
	}
	_ = s

	// Future conns for the killed target are refused at wrap time.
	c2, _ := pipePair(t)
	wc2 := p.WrapConn(c2, "w0/transfer")
	if _, err := wc2.Write([]byte("x")); err == nil {
		t.Fatal("write on post-kill conn succeeded")
	}
	// Unrelated labels are untouched.
	c3, s3 := pipePair(t)
	wc3 := p.WrapConn(c3, "w1/control")
	if _, err := wc3.Write([]byte("ok")); err != nil {
		t.Fatalf("unrelated conn hit: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(s3, buf); err != nil {
		t.Fatal(err)
	}

	// The firing was traced.
	found := false
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvChaosFault && strings.Contains(ev.Detail, "kill w0") {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvChaosFault in trace")
	}
}

func TestStallDelaysIO(t *testing.T) {
	p := NewPlan(1)
	c, s := pipePair(t)
	wc := p.WrapConn(c, "w0/control")
	const dur = 120 * time.Millisecond
	p.Add(Fault{Kind: KindStall, Target: "w0", At: 0, Dur: dur})
	p.Start()
	defer p.Stop()

	start := time.Now()
	if _, err := wc.Write([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < dur-20*time.Millisecond {
		t.Fatalf("write escaped the stall window after %v", elapsed)
	}
	buf := make([]byte, 7)
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "delayed" {
		t.Fatalf("got %q", buf)
	}
	// After the window, I/O is immediate again.
	start = time.Now()
	if _, err := wc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("post-window write still slow: %v", elapsed)
	}
}

func TestCorruptFlipsBits(t *testing.T) {
	p := NewPlan(1)
	c, s := pipePair(t)
	wc := p.WrapConn(c, "w0/control")
	p.Add(Fault{Kind: KindCorrupt, Target: "w0", At: 0})
	p.Start()
	defer p.Stop()
	time.Sleep(20 * time.Millisecond) // let the fault arm

	if _, err := s.Write([]byte("AB")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(wc, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] == 'A' {
		t.Fatalf("first byte not corrupted: %q", buf)
	}
	// Corruption is one-shot.
	if _, err := s.Write([]byte("CD")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(wc, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "CD" {
		t.Fatalf("second read corrupted too: %q", buf)
	}
}

func TestPartitionWindowErrorsAndHeals(t *testing.T) {
	p := NewPlan(1)
	p.Add(Fault{Kind: KindPartition, Target: "w0", At: 0, Dur: 80 * time.Millisecond})
	p.Start()
	defer p.Stop()
	time.Sleep(10 * time.Millisecond)

	c, _ := pipePair(t)
	wc := p.WrapConn(c, "w0/fetch")
	if _, err := wc.Write([]byte("x")); err == nil {
		t.Fatal("write crossed an active partition")
	}
	// After the window, fresh conns work.
	time.Sleep(90 * time.Millisecond)
	c2, s2 := pipePair(t)
	wc2 := p.WrapConn(c2, "w0/fetch")
	if _, err := wc2.Write([]byte("y")); err != nil {
		t.Fatalf("post-partition conn failed: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(s2, buf); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	build := func() []Fault {
		p := NewPlan(42)
		p.AddRandomKills(3, []string{"w0", "w1", "w2"}, 100*time.Millisecond, time.Second)
		p.AddRandomStalls(2, []string{"w0", "w1"}, 0, time.Second, 200*time.Millisecond)
		return p.Faults()
	}
	a, b := build(), build()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("plan sizes: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed materializes a different schedule.
	p2 := NewPlan(43)
	p2.AddRandomKills(3, []string{"w0", "w1", "w2"}, 100*time.Millisecond, time.Second)
	c := p2.Faults()
	same := true
	for i := range c {
		if c[i] != a[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical kill schedules")
	}
}

func TestNilPlanIsTransparent(t *testing.T) {
	var p *Plan
	c, s := pipePair(t)
	if got := p.WrapConn(c, "x"); got != c {
		t.Fatal("nil plan wrapped the conn")
	}
	_ = s
}

func TestListenerWrapsAccepted(t *testing.T) {
	p := NewPlan(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl := p.WrapListener(ln, "manager/transfer")
	defer wl.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			c.Write([]byte("hi"))
			c.Close()
		}
	}()
	c, err := wl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := c.(*faultConn)
	if !ok {
		t.Fatalf("accepted conn not wrapped: %T", c)
	}
	if fc.label != "manager/transfer/conn" {
		t.Fatalf("label = %q", fc.label)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
}

func TestCrashInvokesRegisteredCallback(t *testing.T) {
	p := NewPlan(5)
	fired := make(chan string, 4)
	p.RegisterCrash("manager", func() { fired <- "manager" })
	p.RegisterCrash("sidecar", func() { fired <- "sidecar" })
	p.Add(Fault{Kind: KindCrash, Target: "manager", At: time.Millisecond})
	p.Start()
	defer p.Stop()

	select {
	case who := <-fired:
		if who != "manager" {
			t.Fatalf("crash hit %q, want manager", who)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crash callback never invoked")
	}
	// Only the matching target fires, and only once.
	select {
	case who := <-fired:
		t.Fatalf("unexpected extra crash callback for %q", who)
	case <-time.After(50 * time.Millisecond):
	}
	if p.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", p.Fired())
	}
}

func TestCrashUnregisteredTargetStillCounts(t *testing.T) {
	// A crash fault with no registered callback is a no-op that still
	// counts as fired — plans stay usable before the process wires in
	// its crashable components.
	p := NewPlan(5)
	p.Add(Fault{Kind: KindCrash, Target: "nobody", At: time.Millisecond})
	p.Start()
	defer p.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for p.Fired() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", p.Fired())
	}
}

func TestPreemptNoticeThenKill(t *testing.T) {
	p := NewPlan(9)
	notice := make(chan time.Duration, 1)
	p.RegisterPreempt("w0", func(grace time.Duration) { notice <- grace })
	p.RegisterPreempt("w1", func(grace time.Duration) { t.Error("preempt hit w1, targeted w0") })
	p.Add(Fault{Kind: KindPreempt, Target: "w0", At: time.Millisecond, Dur: 200 * time.Millisecond})

	c, _ := pipePair(t)
	wc := p.WrapConn(c, "w0")
	p.Start()
	defer p.Stop()

	var grace time.Duration
	select {
	case grace = <-notice:
	case <-time.After(2 * time.Second):
		t.Fatal("preempt notice never delivered")
	}
	if grace != 200*time.Millisecond {
		t.Fatalf("grace = %v, want the fault's Dur (200ms)", grace)
	}
	// The notice counts once; the armed kill phase must not double-count.
	if got := p.Fired(); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	// Inside the grace window the worker's planes still work.
	if _, err := wc.Write([]byte("hb")); err != nil {
		t.Fatalf("write during grace window: %v", err)
	}
	// Once the window blows, the wrapped conn is severed and stays dead.
	severed := false
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if _, err := wc.Write([]byte("hb")); err != nil {
			severed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !severed {
		t.Fatal("conn still alive after the grace window blew")
	}
	if got := p.Fired(); got != 1 {
		t.Fatalf("Fired = %d after the kill, want 1", got)
	}
}
