package gate

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hepvine/internal/params"
	"hepvine/internal/vine"
)

// execCount counts real on-worker executions of the current test's
// library — the ground truth for "dedupe scheduled nothing".
var execCount atomic.Int32

// registerGateLib installs the test library fresh (registration replaces,
// so each test starts with a clean counter).
func registerGateLib(t *testing.T) {
	t.Helper()
	execCount.Store(0)
	vine.MustRegisterLibrary(&vine.Library{
		Name: "gatelib",
		Funcs: map[string]vine.Function{
			"echo": func(c *vine.Call) error {
				execCount.Add(1)
				c.SetOutput("out", append([]byte("echo:"), c.Args...))
				return nil
			},
			"upper": func(c *vine.Call) error {
				execCount.Add(1)
				in, err := c.Input("in")
				if err != nil {
					return err
				}
				c.SetOutput("out", bytes.ToUpper(in))
				return nil
			},
			"slow": func(c *vine.Call) error {
				execCount.Add(1)
				time.Sleep(300 * time.Millisecond)
				c.SetOutput("out", append([]byte("slow:"), c.Args...))
				return nil
			},
		},
	})
}

// newGate spins a loopback cluster and a gate in front of it.
func newGate(t *testing.T, workers, coresEach int, cfg Config) *Gate {
	t.Helper()
	registerGateLib(t)
	m, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("gatelib", true),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	for i := 0; i < workers; i++ {
		w, err := vine.NewWorker(m.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(coresEach),
			vine.WithCacheDir(t.TempDir()),
			vine.WithLibrary("gatelib", true),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := m.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return New(m, cfg)
}

func echoSpec(label, payload string) TaskSpec {
	return TaskSpec{Label: label, Library: "gatelib", Func: "echo", Args: []byte(payload), Outputs: []string{"out"}}
}

func mustOpen(t *testing.T, g *Gate, tenant, session string) {
	t.Helper()
	if _, err := g.OpenSession(tenant, session); err != nil {
		t.Fatal(err)
	}
}

func waitDone(t *testing.T, g *Gate, tenant, session, id string) TaskStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := g.TaskStatus(tenant, session, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- params pin ----

// TestParamsMirrorsGateDefaults pins the admission defaults: the gate
// fills zero TenantConfig fields from params, and these are the numbers
// the docs and the capacity plan quote.
func TestParamsMirrorsGateDefaults(t *testing.T) {
	c := TenantConfig{}.withDefaults()
	if c.MaxSessions != params.DefaultGateMaxSessions || c.MaxSessions != 8 {
		t.Fatalf("MaxSessions = %d", c.MaxSessions)
	}
	if c.MaxInFlight != params.DefaultGateMaxInFlight || c.MaxInFlight != 1024 {
		t.Fatalf("MaxInFlight = %d", c.MaxInFlight)
	}
	if c.SubmitRate != params.DefaultGateSubmitRate || c.SubmitRate != 500.0 {
		t.Fatalf("SubmitRate = %v", c.SubmitRate)
	}
	if c.SubmitBurst != params.DefaultGateSubmitBurst || c.SubmitBurst != 1000 {
		t.Fatalf("SubmitBurst = %d", c.SubmitBurst)
	}
	if c.QueueWeight != params.DefaultGateQueueWeight || c.QueueWeight != 1.0 {
		t.Fatalf("QueueWeight = %v", c.QueueWeight)
	}
	if params.DefaultGateDrainTimeout != 30*time.Second {
		t.Fatalf("DrainTimeout = %v", params.DefaultGateDrainTimeout)
	}
}

// ---- unit: token bucket ----

func TestBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBucket(10, 5, now) // 10 tokens/s, burst 5
	if ok, _ := b.take(now, 5); !ok {
		t.Fatal("burst refused")
	}
	ok, retry := b.take(now, 1)
	if ok {
		t.Fatal("empty bucket granted")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry hint %v, want ~100ms", retry)
	}
	if ok, _ := b.take(now.Add(100*time.Millisecond), 1); !ok {
		t.Fatal("refill not granted")
	}
	// Idle time must not bank beyond burst.
	b.refill(now.Add(time.Hour))
	if b.tokens > b.burst {
		t.Fatalf("banked %v tokens beyond burst %v", b.tokens, b.burst)
	}
}

// ---- sessions ----

func TestSessionLifecycle(t *testing.T) {
	g := newGate(t, 1, 2, Config{Tenants: map[string]TenantConfig{
		"alice": {MaxSessions: 2},
	}})
	st, err := g.OpenSession("alice", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Open || st.Tenant != "alice" || st.Name != "s1" {
		t.Fatalf("bad status %+v", st)
	}
	// Idempotent reopen.
	if _, err := g.OpenSession("alice", "s1"); err != nil {
		t.Fatal(err)
	}
	if g.sessActive.Value() != 1 {
		t.Fatalf("sessions_active = %d", g.sessActive.Value())
	}
	// Session cap: a second distinct session fits, a third does not.
	mustOpen(t, g, "alice", "s2")
	_, err = g.OpenSession("alice", "s3")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429 at session cap, got %v", err)
	}
	if g.rejections.Value() == 0 {
		t.Fatal("rejection not counted")
	}
	// The tenant's fair-share queue exists while sessions are open and is
	// deprovisioned when the last one closes with no backlog.
	if !hasQueue(g, "tenant:alice") {
		t.Fatal("tenant queue not provisioned")
	}
	if err := g.CloseSession("alice", "s1"); err != nil {
		t.Fatal(err)
	}
	if err := g.CloseSession("alice", "s2"); err != nil {
		t.Fatal(err)
	}
	if hasQueue(g, "tenant:alice") {
		t.Fatal("idle tenant queue not deprovisioned")
	}
	if _, err := g.SessionStatus("alice", "s1"); err == nil {
		t.Fatal("closed session still visible")
	}
}

func hasQueue(g *Gate, name string) bool {
	for _, q := range g.mgr.QueueStats() {
		if q.Name == name {
			return true
		}
	}
	return false
}

// ---- submission ----

func TestSubmitDAGWithinRequest(t *testing.T) {
	g := newGate(t, 2, 2, Config{})
	mustOpen(t, g, "alice", "s")
	resp, err := g.Submit("alice", "s", SubmitRequest{Tasks: []TaskSpec{
		echoSpec("producer", "hi"),
		{
			Label: "consumer", Library: "gatelib", Func: "upper",
			Inputs:  []InputRef{{Name: "in", Task: "producer", Output: "out"}},
			Outputs: []string{"out"},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tasks) != 2 {
		t.Fatalf("got %d acks", len(resp.Tasks))
	}
	final := waitDone(t, g, "alice", "s", resp.Tasks[1].ID)
	if final.State != "done" {
		t.Fatalf("consumer failed: %s", final.Error)
	}
	data, err := g.Fetch(final.Outputs["out"])
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ECHO:HI" {
		t.Fatalf("chained result = %q", data)
	}
	// The consumer's submit-side latency accounting must be coherent.
	if final.DispatchUnixNanos == 0 || final.DispatchUnixNanos < final.SubmitUnixNanos {
		t.Fatalf("dispatch %d vs submit %d", final.DispatchUnixNanos, final.SubmitUnixNanos)
	}
}

func TestSubmitValidation(t *testing.T) {
	g := newGate(t, 1, 2, Config{})
	mustOpen(t, g, "alice", "s")
	cases := []SubmitRequest{
		{}, // empty
		{Tasks: []TaskSpec{{Library: "gatelib", Func: "echo"}}},                            // no label
		{Tasks: []TaskSpec{echoSpec("a", "x"), echoSpec("a", "y")}},                        // dup label
		{Tasks: []TaskSpec{{Label: "a", Library: "gatelib", Func: "echo", Mode: "weird"}}}, // bad mode
		{Tasks: []TaskSpec{{ // consumer before producer
			Label: "c", Library: "gatelib", Func: "upper",
			Inputs: []InputRef{{Name: "in", Task: "p", Output: "out"}},
		}, echoSpec("p", "x")}},
		{Tasks: []TaskSpec{{ // ambiguous input
			Label: "a", Library: "gatelib", Func: "upper",
			Inputs: []InputRef{{Name: "in", CacheName: "blob:x", Task: "p", Output: "out"}},
		}}},
	}
	for i, req := range cases {
		_, err := g.Submit("alice", "s", req)
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("case %d: expected 400, got %v", i, err)
		}
	}
	// A rejected request admits nothing.
	if st, _ := g.SessionStatus("alice", "s"); st.Tasks != 0 {
		t.Fatalf("rejected requests leaked %d tasks", st.Tasks)
	}
}

// ---- cross-tenant dedupe ----

func TestCrossTenantWarmHit(t *testing.T) {
	g := newGate(t, 2, 2, Config{})
	mustOpen(t, g, "alice", "s")
	mustOpen(t, g, "bob", "s")
	r1, err := g.Submit("alice", "s", SubmitRequest{Tasks: []TaskSpec{echoSpec("h", "shared")}})
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitDone(t, g, "alice", "s", r1.Tasks[0].ID)
	if st1.State != "done" {
		t.Fatal(st1.Error)
	}
	// Bob submits the identical definition: warm hit, nothing scheduled.
	r2, err := g.Submit("bob", "s", SubmitRequest{Tasks: []TaskSpec{echoSpec("mine", "shared")}})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Tasks[0].Warm {
		t.Fatal("identical definition not served warm")
	}
	if n := execCount.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	a, _ := g.Fetch(r1.Tasks[0].Outputs["out"])
	b, _ := g.Fetch(r2.Tasks[0].Outputs["out"])
	if !bytes.Equal(a, b) || len(a) == 0 {
		t.Fatalf("results differ: %q vs %q", a, b)
	}
	// Bob's queue scheduled nothing; the tenant warm counter shows why.
	for _, q := range g.mgr.QueueStats() {
		if q.Name == "tenant:bob" && q.Dispatched != 0 {
			t.Fatalf("bob dispatched %d tasks", q.Dispatched)
		}
	}
	stats := g.Stats()
	for _, ts := range stats.Tenants {
		if ts.Tenant == "bob" && ts.WarmHits != 1 {
			t.Fatalf("bob warm hits = %d", ts.WarmHits)
		}
	}
}

// TestColdRaceSingleExecution is the racing-cold-cluster satellite: two
// tenants submit the same definition concurrently before anything has
// run. Exactly one execution happens; both get bit-identical bytes.
func TestColdRaceSingleExecution(t *testing.T) {
	g := newGate(t, 2, 2, Config{})
	mustOpen(t, g, "alice", "s")
	mustOpen(t, g, "bob", "s")
	spec := TaskSpec{Label: "race", Library: "gatelib", Func: "slow", Args: []byte("cold"), Outputs: []string{"out"}}
	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i, tenant := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			r, err := g.Submit(tenant, "s", SubmitRequest{Tasks: []TaskSpec{spec}})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = r.Tasks[0].ID
		}(i, tenant)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	sa := waitDone(t, g, "alice", "s", ids[0])
	sb := waitDone(t, g, "bob", "s", ids[1])
	if sa.State != "done" || sb.State != "done" {
		t.Fatalf("states %s/%s", sa.State, sb.State)
	}
	if n := execCount.Load(); n != 1 {
		t.Fatalf("racing submissions executed %d times, want 1", n)
	}
	a, err := g.Fetch(sa.Outputs["out"])
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Fetch(sb.Outputs["out"])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) || len(a) == 0 {
		t.Fatalf("racing results differ: %q vs %q", a, b)
	}
}

// ---- admission ----

func TestInFlightCap(t *testing.T) {
	g := newGate(t, 1, 2, Config{Tenants: map[string]TenantConfig{
		"carol": {MaxInFlight: 2},
	}})
	mustOpen(t, g, "carol", "s")
	slow := func(label, arg string) SubmitRequest {
		return SubmitRequest{Tasks: []TaskSpec{{
			Label: label, Library: "gatelib", Func: "slow", Args: []byte(arg), Outputs: []string{"out"},
		}}}
	}
	r1, err := g.Submit("carol", "s", slow("a", "1"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Submit("carol", "s", slow("b", "2"))
	if err != nil {
		t.Fatal(err)
	}
	// Over the cap: 429 with a Retry-After hint.
	_, err = g.Submit("carol", "s", slow("c", "3"))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429 over in-flight cap, got %v", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatal("429 without Retry-After hint")
	}
	// Once the backlog drains, the same submission is admitted.
	waitDone(t, g, "carol", "s", r1.Tasks[0].ID)
	waitDone(t, g, "carol", "s", r2.Tasks[0].ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err = g.Submit("carol", "s", slow("c", "3")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still rejected after drain: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRateLimit(t *testing.T) {
	g := newGate(t, 1, 2, Config{Tenants: map[string]TenantConfig{
		"dave": {SubmitRate: 1, SubmitBurst: 2},
	}})
	clock := time.Unix(5000, 0)
	g.now = func() time.Time { return clock }
	mustOpen(t, g, "dave", "s")
	for i := 0; i < 2; i++ {
		if _, err := g.Submit("dave", "s", SubmitRequest{Tasks: []TaskSpec{echoSpec(fmt.Sprintf("t%d", i), fmt.Sprint(i))}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := g.Submit("dave", "s", SubmitRequest{Tasks: []TaskSpec{echoSpec("t2", "2")}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests || se.RetryAfter <= 0 {
		t.Fatalf("expected rate 429 with retry hint, got %v", err)
	}
	// A second of simulated time refills one token.
	clock = clock.Add(time.Second)
	if _, err := g.Submit("dave", "s", SubmitRequest{Tasks: []TaskSpec{echoSpec("t2", "2")}}); err != nil {
		t.Fatalf("post-refill submission rejected: %v", err)
	}
}

// ---- drain ----

func TestDrain(t *testing.T) {
	g := newGate(t, 1, 2, Config{})
	mustOpen(t, g, "alice", "s")
	r, err := g.Submit("alice", "s", SubmitRequest{Tasks: []TaskSpec{{
		Label: "slow", Library: "gatelib", Func: "slow", Args: []byte("x"), Outputs: []string{"out"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Drain(10 * time.Second) }()
	// Draining gates new work out with 503...
	deadline := time.Now().Add(2 * time.Second)
	for !g.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = g.Submit("alice", "s", SubmitRequest{Tasks: []TaskSpec{echoSpec("late", "y")}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 while draining, got %v", err)
	}
	// ...while the in-flight task runs to completion.
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st, err := g.TaskStatus("alice", "s", r.Tasks[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("in-flight task not finished by drain: %s", st.State)
	}
	if !g.Stats().Draining {
		t.Fatal("stats hide draining")
	}
}

// ---- HTTP round trip ----

func TestHTTPRoundTrip(t *testing.T) {
	g := newGate(t, 2, 2, Config{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "alice"}

	if _, err := c.OpenSession("web"); err != nil {
		t.Fatal(err)
	}
	decl, err := c.Declare([]byte("raw event data"))
	if err != nil {
		t.Fatal(err)
	}
	if decl.Size != int64(len("raw event data")) || decl.CacheName == "" {
		t.Fatalf("bad declare ack %+v", decl)
	}
	resp, err := c.Submit("web", SubmitRequest{Tasks: []TaskSpec{{
		Label: "up", Library: "gatelib", Func: "upper",
		Inputs:  []InputRef{{Name: "in", CacheName: decl.CacheName}},
		Outputs: []string{"out"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitTask("web", resp.Tasks[0].ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("task failed over HTTP: %s", st.Error)
	}
	data, err := c.Fetch(st.Outputs["out"])
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "RAW EVENT DATA" {
		t.Fatalf("fetched %q", data)
	}
	// Events carry the lifecycle in order.
	evs, err := c.Events("web", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, ev := range evs {
		types = append(types, ev.Type)
	}
	want := map[string]bool{"session_open": false, "task_submit": false, "task_done": false}
	for _, typ := range types {
		if _, ok := want[typ]; ok {
			want[typ] = true
		}
	}
	for typ, seen := range want {
		if !seen {
			t.Fatalf("event %q missing from %v", typ, types)
		}
	}
	// Long-poll wakes on the next event instead of waiting out the timer.
	last := evs[len(evs)-1].Seq
	got := make(chan []Event, 1)
	go func() {
		evs, _ := c.Events("web", last, 5*time.Second)
		got <- evs
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Submit("web", SubmitRequest{Tasks: []TaskSpec{echoSpec("ping", "x")}}); err != nil {
		t.Fatal(err)
	}
	select {
	case evs := <-got:
		if len(evs) == 0 {
			t.Fatal("long-poll returned empty")
		}
	case <-time.After(4 * time.Second):
		t.Fatal("long-poll did not wake on event")
	}
	// Stats and session status over the wire.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "alice" || stats.Tenants[0].Submitted != 2 {
		t.Fatalf("stats %+v", stats.Tenants)
	}
	ss, err := c.SessionStatus("web")
	if err != nil {
		t.Fatal(err)
	}
	if ss.Tasks != 2 {
		t.Fatalf("session tasks = %d", ss.Tasks)
	}
	// Wrong tenant sees nothing: sessions are tenant-scoped.
	other := &Client{Base: srv.URL, Tenant: "mallory"}
	if _, err := other.SessionStatus("web"); err == nil {
		t.Fatal("cross-tenant session visible")
	}
	if err := c.CloseSession("web"); err != nil {
		t.Fatal(err)
	}
}
