package gate

import (
	"fmt"
	"time"

	"hepvine/internal/params"
)

// Admission control: the per-tenant knobs that keep one analysis group
// from starving the rest. Three mechanisms compose:
//
//   - a session cap (table protection),
//   - an in-flight cap (backlog protection: submitted-but-not-terminal
//     tasks, the thing that actually occupies the ready heap), and
//   - a token bucket on submission rate (burst protection: a whole graph
//     may land at once, a tight resubmit loop may not).
//
// Rejections are HTTP 429 with Retry-After; clients are expected to back
// off and retry, and the e2e suite proves an over-limit tenant is
// admitted once its backlog drains.

// TenantConfig is one tenant's admission envelope. Zero fields take the
// params defaults (pinned by TestParamsMirrorsGateDefaults).
type TenantConfig struct {
	// MaxSessions caps concurrently open sessions.
	MaxSessions int
	// MaxInFlight caps submitted-but-not-terminal tasks across all of the
	// tenant's sessions. Warm hits never count: they are terminal at
	// admission and occupy nothing.
	MaxInFlight int
	// SubmitRate is the token-bucket refill rate, task submissions/sec.
	SubmitRate float64
	// SubmitBurst is the bucket capacity.
	SubmitBurst int
	// QueueWeight is the tenant's weighted fair-share (see internal/sched).
	QueueWeight float64
}

// withDefaults fills zero fields from params.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = params.DefaultGateMaxSessions
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = params.DefaultGateMaxInFlight
	}
	if c.SubmitRate <= 0 {
		c.SubmitRate = params.DefaultGateSubmitRate
	}
	if c.SubmitBurst <= 0 {
		c.SubmitBurst = params.DefaultGateSubmitBurst
	}
	if c.QueueWeight <= 0 {
		c.QueueWeight = params.DefaultGateQueueWeight
	}
	return c
}

// bucket is a classic token bucket: tokens refill at rate/sec up to
// burst; take spends n if available. Callers hold the gate mutex.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int, now time.Time) bucket {
	return bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// refill advances the bucket to now.
func (b *bucket) refill(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take spends n tokens if the bucket holds them; on refusal it reports
// how long until they will have accrued (the Retry-After hint).
func (b *bucket) take(now time.Time, n float64) (bool, time.Duration) {
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	wait := time.Duration((n - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}

// StatusError is an admission or lookup failure carrying its HTTP
// mapping. http.go translates it; Go-level callers can errors.As it.
type StatusError struct {
	Code       int           // HTTP status
	Message    string        //
	RetryAfter time.Duration // >0 adds a Retry-After header (429s)
}

func (e *StatusError) Error() string { return e.Message }

func errf(code int, format string, args ...any) *StatusError {
	return &StatusError{Code: code, Message: fmt.Sprintf(format, args...)}
}
