package gate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Client is the Go-side counterpart of the HTTP surface: what
// cmd/vinegate's client modes, the root e2e suite, and the gate
// benchmark speak. It is a thin, dependency-free wrapper — every method
// maps one-to-one onto a route in http.go, and non-2xx replies come
// back as *StatusError so callers can branch on 429 vs 503 vs 404.
type Client struct {
	// Base is the gate's root URL, e.g. "http://127.0.0.1:9123".
	Base string
	// Fallbacks are further gate endpoints (e.g. the hot standby, or the
	// sibling gates of a federated deployment) tried in order when the
	// current one is unreachable or draining. The client redials through
	// the whole address list and then sticks with whichever endpoint
	// answered, so a manager failover costs one extra round trip, not a
	// reconfiguration.
	Fallbacks []string
	// Tenant rides in the X-Vine-Tenant header ("" = anon).
	Tenant string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client

	mu  sync.Mutex
	cur int // index into {Base, Fallbacks...} of the last endpoint that answered
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// eachEndpoint runs fn against the gate address list, starting at the
// endpoint that last answered. A transport error or a 503 (a draining
// gate hands its traffic to the standby) rotates to the next address;
// any other reply — success or a real application error like 429/404 —
// pins the endpoint and is returned as-is.
func (c *Client) eachEndpoint(fn func(base string) error) error {
	eps := append([]string{c.Base}, c.Fallbacks...)
	c.mu.Lock()
	start := c.cur % len(eps)
	c.mu.Unlock()
	var lastErr error
	for i := 0; i < len(eps); i++ {
		idx := (start + i) % len(eps)
		err := fn(eps[idx])
		var se *StatusError
		if err == nil || (errors.As(err, &se) && se.Code != http.StatusServiceUnavailable) {
			c.mu.Lock()
			c.cur = idx
			c.mu.Unlock()
			return err
		}
		lastErr = err
	}
	return lastErr
}

// do runs one request — redialing through the endpoint list on failover —
// and decodes a JSON reply into out (nil = discard).
func (c *Client) do(method, path string, body []byte, out any) error {
	return c.eachEndpoint(func(base string) error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return err
		}
		if c.Tenant != "" {
			req.Header.Set(TenantHeader, c.Tenant)
		}
		if body != nil && method == http.MethodPost {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return decodeError(resp)
		}
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// decodeError turns a non-2xx reply into a *StatusError, carrying the
// server's Retry-After hint when present.
func decodeError(resp *http.Response) error {
	var er ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &er) != nil || er.Error == "" {
		er.Error = fmt.Sprintf("gate: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	se := &StatusError{Code: resp.StatusCode, Message: er.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// OpenSession opens (idempotently) the named session.
func (c *Client) OpenSession(name string) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(name), nil, &st)
	return st, err
}

// CloseSession closes the named session.
func (c *Client) CloseSession(name string) error {
	return c.do(http.MethodDelete, "/v1/sessions/"+url.PathEscape(name), nil, nil)
}

// Submit ships one DAG into the session.
func (c *Client) Submit(session string, req SubmitRequest) (SubmitResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	var resp SubmitResponse
	err = c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(session)+"/tasks", body, &resp)
	return resp, err
}

// TaskStatus polls one task.
func (c *Client) TaskStatus(session, id string) (TaskStatus, error) {
	var st TaskStatus
	err := c.do(http.MethodGet,
		"/v1/sessions/"+url.PathEscape(session)+"/tasks/"+url.PathEscape(id), nil, &st)
	return st, err
}

// SessionStatus polls the session summary.
func (c *Client) SessionStatus(session string) (SessionStatus, error) {
	var st SessionStatus
	err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(session), nil, &st)
	return st, err
}

// Events long-polls the session stream for events with Seq > since,
// waiting up to wait server-side for something to arrive.
func (c *Client) Events(session string, since int64, wait time.Duration) ([]Event, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatInt(since, 10))
	}
	if wait > 0 {
		q.Set("wait_ms", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	var evs []Event
	err := c.do(http.MethodGet,
		"/v1/sessions/"+url.PathEscape(session)+"/events?"+q.Encode(), nil, &evs)
	return evs, err
}

// Declare uploads an input buffer and returns its cachename.
func (c *Client) Declare(data []byte) (DeclareResponse, error) {
	var resp DeclareResponse
	err := c.do(http.MethodPost, "/v1/files", data, &resp)
	return resp, err
}

// Fetch downloads result bytes by cachename (lineage-regenerating if
// the cluster lost them).
func (c *Client) Fetch(name string) ([]byte, error) {
	var data []byte
	err := c.eachEndpoint(func(base string) error {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/result?name="+url.QueryEscape(name), nil)
		if err != nil {
			return err
		}
		if c.Tenant != "" {
			req.Header.Set(TenantHeader, c.Tenant)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return decodeError(resp)
		}
		data, err = io.ReadAll(resp.Body)
		return err
	})
	return data, err
}

// Stats fetches the service-wide stats snapshot.
func (c *Client) Stats() (StatsResponse, error) {
	var st StatsResponse
	err := c.do(http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// WaitTask polls until the task reaches a terminal state or the timeout
// elapses, returning the final status.
func (c *Client) WaitTask(session, id string, timeout time.Duration) (TaskStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.TaskStatus(session, id)
		if err != nil {
			return st, err
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return st, fmt.Errorf("gate: task %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
