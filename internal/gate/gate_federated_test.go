package gate

import (
	"net/http/httptest"
	"testing"
	"time"

	"hepvine/internal/foreman"
	"hepvine/internal/vine"
)

// TestGateFrontsFederatedRoot pins the composition the federation was
// designed for: the root of a foreman tree IS a vine.Manager, so the
// multi-tenant HTTP gate fronts it unchanged — submissions admit at the
// gate, lease out to shards, and results fetch back through cross-shard
// replica addresses, with zero gate-side special-casing.
func TestGateFrontsFederatedRoot(t *testing.T) {
	registerGateLib(t)
	fed, err := foreman.NewLocalFederation(foreman.LocalConfig{
		Foremen:           2,
		WorkersPerForeman: 1,
		CoresPerWorker:    2,
		ReportEvery:       15 * time.Millisecond,
		LocalOptions: func(int) []vine.Option {
			return []vine.Option{
				vine.WithPeerTransfers(true),
				vine.WithLibrary("gatelib", true),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Stop()
	if err := fed.Root.WaitForWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	g := New(fed.Root, Config{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()
	c := &Client{Base: srv.URL, Tenant: "alice"}

	if _, err := c.OpenSession("fedweb"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Submit("fedweb", SubmitRequest{Tasks: []TaskSpec{
		echoSpec("a", "one"), echoSpec("b", "two"), echoSpec("c", "three"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, tk := range resp.Tasks {
		st, err := c.WaitTask("fedweb", tk.ID, 15*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "done" {
			t.Fatalf("task %d state %s (%s)", i, st.State, st.Error)
		}
	}
	st, err := c.WaitTask("fedweb", resp.Tasks[0].ID, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Fetch(st.Outputs["out"])
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "echo:one" {
		t.Fatalf("fetched %q through federated root", data)
	}
	if fst := fed.Root.FederationStats(); fst.LeaseGrants < 3 {
		t.Fatalf("gate work did not lease to shards: %+v", fst)
	}
}
