// Package gate is the analysis-facility front door: a multi-tenant
// submission service in front of one (journaled, optionally HA) vine
// manager. Tenants open named sessions, submit serialized DAGs, poll
// status, stream lifecycle events, and fetch results over HTTP/JSON —
// while the gate enforces per-tenant admission control (session,
// in-flight, and rate caps), maps each tenant onto its own weighted
// fair-share queue, and dedupes identical content-addressed definitions
// across tenants so the second group to ask for a histogram gets the
// first group's bytes without scheduling anything.
//
// The package splits cleanly: gate.go holds the tenancy model and the
// Go-level API, admission.go the caps, wire.go the JSON schema, http.go
// the HTTP surface, client.go the matching Go client.
package gate

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/params"
	"hepvine/internal/vine"
)

// Config configures a Gate.
type Config struct {
	// Tenants pre-configures named tenants. Tenants not listed here are
	// admitted with Default's envelope on first contact.
	Tenants map[string]TenantConfig
	// Default is the envelope for unlisted tenants; zero fields take the
	// params defaults.
	Default TenantConfig
	// DrainTimeout bounds Drain when the caller passes 0.
	DrainTimeout time.Duration
}

// Gate fronts one manager for many tenants.
type Gate struct {
	mgr *vine.Manager
	cfg Config
	rec *obs.Recorder
	now func() time.Time // injectable clock for admission tests

	requests   *obs.Counter // vine_gate_requests_total
	rejections *obs.Counter // vine_gate_admission_rejections_total
	sessActive *obs.Gauge   // vine_gate_sessions_active

	mu       sync.Mutex
	tenants  map[string]*tenant
	draining bool
}

// tenant is one analysis group's gate-side state.
type tenant struct {
	name     string
	cfg      TenantConfig
	queue    string
	bucket   bucket
	sessions map[string]*session // open sessions by name
	total    int                 // sessions ever opened
	inFlight int                 // submitted-but-not-terminal tasks
	sub      int64               // tasks admitted
	rej      int64               // requests rejected
	warm     *obs.Counter        // vine_gate_warm_hits_total{tenant=...}
	warmN    int64
}

// session is one tenant's named working context: its tasks, its label
// namespace for within-DAG references, and its event stream.
type session struct {
	tenant *tenant
	name   string
	nextID int
	tasks  map[string]*gateTask // by id
	labels map[string]*gateTask // by label, latest submission wins
	events []Event
	seq    int64
	wake   chan struct{} // closed+replaced on every event (broadcast)
	warm   int
}

// gateTask is one admitted task.
type gateTask struct {
	id       string
	label    string
	outputs  []string
	handle   *vine.TaskHandle
	warm     bool // terminal at admission, nothing scheduled
	submitAt time.Time
}

// New builds a gate over a started manager. The gate registers its
// metrics in the manager's registry and emits lifecycle events through
// the manager's recorder, so one trace and one /metrics page tell the
// whole story.
func New(mgr *vine.Manager, cfg Config) *Gate {
	cfg.Default = cfg.Default.withDefaults()
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = params.DefaultGateDrainTimeout
	}
	reg := mgr.Metrics()
	return &Gate{
		mgr:        mgr,
		cfg:        cfg,
		rec:        mgr.Recorder(),
		now:        time.Now,
		requests:   reg.Counter("vine_gate_requests_total"),
		rejections: reg.Counter("vine_gate_admission_rejections_total"),
		sessActive: reg.Gauge("vine_gate_sessions_active"),
		tenants:    make(map[string]*tenant),
	}
}

// Manager exposes the fronted manager (tests and the daemon use it).
func (g *Gate) Manager() *vine.Manager { return g.mgr }

// tenantLocked finds or creates a tenant, provisioning its fair-share
// queue on first contact.
func (g *Gate) tenantLocked(name string) *tenant {
	if t, ok := g.tenants[name]; ok {
		return t
	}
	cfg, ok := g.cfg.Tenants[name]
	if ok {
		cfg = cfg.withDefaults()
	} else {
		cfg = g.cfg.Default
	}
	t := &tenant{
		name:     name,
		cfg:      cfg,
		queue:    "tenant:" + name,
		bucket:   newBucket(cfg.SubmitRate, cfg.SubmitBurst, g.now()),
		sessions: make(map[string]*session),
		warm:     g.mgr.Metrics().Counter(fmt.Sprintf("vine_gate_warm_hits_total{tenant=%q}", name)),
	}
	g.mgr.ProvisionQueue(t.queue, cfg.QueueWeight)
	g.tenants[name] = t
	return t
}

// ---- sessions ----

// OpenSession opens (or re-opens: the call is idempotent) a tenant's
// named session.
func (g *Gate) OpenSession(tenantName, name string) (SessionStatus, error) {
	g.requests.Inc()
	if tenantName == "" || name == "" {
		return SessionStatus{}, errf(http.StatusBadRequest, "gate: tenant and session name required")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return SessionStatus{}, errf(http.StatusServiceUnavailable, "gate: draining")
	}
	t := g.tenantLocked(tenantName)
	if s, ok := t.sessions[name]; ok {
		return g.sessionStatusLocked(s), nil
	}
	if len(t.sessions) >= t.cfg.MaxSessions {
		t.rej++
		g.rejections.Inc()
		g.rec.Emit(obs.Event{Type: obs.EvAdmissionReject, Src: tenantName,
			Detail: fmt.Sprintf("session cap %d: open %q", t.cfg.MaxSessions, name)})
		return SessionStatus{}, &StatusError{Code: http.StatusTooManyRequests,
			Message: fmt.Sprintf("gate: tenant %q at session cap (%d)", tenantName, t.cfg.MaxSessions)}
	}
	s := &session{
		tenant: t, name: name,
		tasks:  make(map[string]*gateTask),
		labels: make(map[string]*gateTask),
		wake:   make(chan struct{}),
	}
	t.sessions[name] = s
	t.total++
	g.sessActive.Add(1)
	g.rec.Emit(obs.Event{Type: obs.EvSessionOpen, Src: tenantName, Detail: name})
	s.emitLocked("session_open", "", "")
	return g.sessionStatusLocked(s), nil
}

// CloseSession closes a session. Its tasks keep running (results are
// shared cluster state), but the session's status, events, and label
// namespace go away, and a tenant with no open sessions and no backlog
// has its fair-share queue deprovisioned.
func (g *Gate) CloseSession(tenantName, name string) error {
	g.requests.Inc()
	g.mu.Lock()
	defer g.mu.Unlock()
	s, err := g.sessionLocked(tenantName, name)
	if err != nil {
		return err
	}
	s.emitLocked("session_close", "", "")
	t := s.tenant
	delete(t.sessions, name)
	g.sessActive.Add(-1)
	g.rec.Emit(obs.Event{Type: obs.EvSessionClose, Src: tenantName, Detail: name})
	if len(t.sessions) == 0 && t.inFlight == 0 {
		g.mgr.DropQueue(t.queue)
	}
	return nil
}

func (g *Gate) sessionLocked(tenantName, name string) (*session, error) {
	t, ok := g.tenants[tenantName]
	if !ok {
		return nil, errf(http.StatusNotFound, "gate: unknown tenant %q", tenantName)
	}
	s, ok := t.sessions[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "gate: tenant %q has no open session %q", tenantName, name)
	}
	return s, nil
}

// emitLocked appends a session event and wakes long-pollers.
func (s *session) emitLocked(typ, task, detail string) {
	s.seq++
	s.events = append(s.events, Event{
		Seq: s.seq, UnixNanos: time.Now().UnixNano(),
		Type: typ, Task: task, Detail: detail,
	})
	close(s.wake)
	s.wake = make(chan struct{})
}

// ---- submission ----

// Submit admits one DAG into a session. The whole request is admitted or
// rejected atomically: caps are checked against the full task count
// before anything is handed to the manager, so a 429 never leaves a
// half-submitted graph behind.
func (g *Gate) Submit(tenantName, sessionName string, req SubmitRequest) (SubmitResponse, error) {
	g.requests.Inc()
	if len(req.Tasks) == 0 {
		return SubmitResponse{}, errf(http.StatusBadRequest, "gate: empty submission")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return SubmitResponse{}, errf(http.StatusServiceUnavailable, "gate: draining")
	}
	s, err := g.sessionLocked(tenantName, sessionName)
	if err != nil {
		return SubmitResponse{}, err
	}
	t := s.tenant
	// Admission: in-flight cap first (conservatively counting every task
	// in the request, warm or not — identity is only known post-submit),
	// then the rate bucket, so a rejected request costs no tokens.
	if t.inFlight+len(req.Tasks) > t.cfg.MaxInFlight {
		return SubmitResponse{}, g.rejectLocked(t, http.StatusTooManyRequests, 0,
			fmt.Sprintf("in-flight cap %d: %d queued + %d requested", t.cfg.MaxInFlight, t.inFlight, len(req.Tasks)))
	}
	if ok, retry := t.bucket.take(g.now(), float64(len(req.Tasks))); !ok {
		return SubmitResponse{}, g.rejectLocked(t, http.StatusTooManyRequests, retry,
			fmt.Sprintf("rate limit %.0f/s: %d tasks", t.cfg.SubmitRate, len(req.Tasks)))
	}
	// Validate and resolve the whole DAG before submitting any of it, so
	// a bad spec anywhere rejects the request without side effects.
	reqLabels := make(map[string]*TaskSpec, len(req.Tasks))
	for i := range req.Tasks {
		spec := &req.Tasks[i]
		if spec.Label == "" {
			return SubmitResponse{}, errf(http.StatusBadRequest, "gate: task %d: label required", i)
		}
		if _, dup := reqLabels[spec.Label]; dup {
			return SubmitResponse{}, errf(http.StatusBadRequest, "gate: duplicate label %q", spec.Label)
		}
		if _, err := g.resolveLocked(s, reqLabels, spec); err != nil {
			return SubmitResponse{}, err
		}
		reqLabels[spec.Label] = spec
	}
	// Hand the graph to the manager in order; producers precede consumers
	// by the request contract, and outputs get their cachenames at
	// submit, so later tasks' within-DAG refs resolve against s.labels.
	resp := SubmitResponse{Tasks: make([]TaskResult, 0, len(req.Tasks))}
	for i := range req.Tasks {
		spec := &req.Tasks[i]
		// Re-resolve within-DAG refs now that earlier tasks have handles.
		vt, err := g.resolveLocked(s, nil, spec)
		if err != nil {
			return SubmitResponse{}, err
		}
		// Stamp before handing off: the manager may dispatch synchronously
		// inside SubmitShared, and submit→dispatch latency must not go
		// negative.
		submitAt := time.Now()
		h, shared, err := g.mgr.SubmitShared(vt)
		if err != nil {
			return SubmitResponse{}, errf(http.StatusBadRequest, "gate: task %q: %v", spec.Label, err)
		}
		s.nextID++
		gt := &gateTask{
			id:       "t" + strconv.Itoa(s.nextID),
			label:    spec.Label,
			outputs:  spec.Outputs,
			handle:   h,
			submitAt: submitAt,
		}
		terminal := false
		if shared {
			st := h.State()
			if st == vine.TaskDone || st == vine.TaskFailed {
				gt.warm, terminal = true, true
				t.warm.Inc()
				t.warmN++
				s.warm++
				s.emitLocked("warm_hit", gt.id, spec.Label)
			}
		}
		s.tasks[gt.id] = gt
		s.labels[spec.Label] = gt
		t.sub++
		s.emitLocked("task_submit", gt.id, spec.Label)
		if !terminal {
			t.inFlight++
			go g.watch(t, s, gt)
		}
		out := make(map[string]string, len(spec.Outputs))
		for _, o := range spec.Outputs {
			if c, ok := h.Output(o); ok {
				out[o] = string(c)
			}
		}
		resp.Tasks = append(resp.Tasks, TaskResult{Label: spec.Label, ID: gt.id, Outputs: out, Warm: gt.warm})
	}
	return resp, nil
}

// rejectLocked books an admission rejection: tenant counter, gate
// metric, trace event, and the typed error http.go turns into a 429.
func (g *Gate) rejectLocked(t *tenant, code int, retry time.Duration, detail string) *StatusError {
	t.rej++
	g.rejections.Inc()
	g.rec.Emit(obs.Event{Type: obs.EvAdmissionReject, Src: t.name, Detail: detail})
	if retry <= 0 {
		retry = 500 * time.Millisecond
	}
	return &StatusError{Code: code, Message: "gate: " + t.name + ": " + detail, RetryAfter: retry}
}

// resolveLocked turns a TaskSpec into a vine.Task: queue pinned to the
// tenant, inputs resolved. Within-DAG references resolve against the
// session's label table; during validation (before handles exist) refs
// to labels in reqLabels are accepted and checked for output existence.
func (g *Gate) resolveLocked(s *session, reqLabels map[string]*TaskSpec, spec *TaskSpec) (vine.Task, error) {
	vt := vine.Task{
		Library:  spec.Library,
		Func:     spec.Func,
		Args:     spec.Args,
		Outputs:  spec.Outputs,
		Cores:    spec.Cores,
		Memory:   spec.Memory,
		Queue:    s.tenant.queue,
		Priority: spec.Priority,
	}
	switch spec.Mode {
	case "", "task":
		vt.Mode = vine.ModeTask
	case "function-call":
		vt.Mode = vine.ModeFunctionCall
	default:
		return vine.Task{}, errf(http.StatusBadRequest, "gate: task %q: unknown mode %q", spec.Label, spec.Mode)
	}
	for _, in := range spec.Inputs {
		switch {
		case in.CacheName != "" && in.Task == "":
			vt.Inputs = append(vt.Inputs, vine.FileRef{Name: in.Name, CacheName: vine.CacheName(in.CacheName)})
		case in.Task != "" && in.CacheName == "":
			c, err := resolveRef(s, reqLabels, spec.Label, in)
			if err != nil {
				return vine.Task{}, err
			}
			vt.Inputs = append(vt.Inputs, vine.FileRef{Name: in.Name, CacheName: c})
		default:
			return vine.Task{}, errf(http.StatusBadRequest,
				"gate: task %q: input %q must set exactly one of cachename or task+output", spec.Label, in.Name)
		}
	}
	return vt, nil
}

// resolveRef resolves one within-DAG reference: against the session's
// already-submitted labels (a real cachename), or — during the
// validation pass, when reqLabels is non-nil — against earlier tasks of
// the same request, yielding a placeholder the submit pass re-resolves
// once the producer has a handle.
func resolveRef(s *session, reqLabels map[string]*TaskSpec, label string, in InputRef) (vine.CacheName, error) {
	if prev, ok := s.labels[in.Task]; ok {
		c, ok := prev.handle.Output(in.Output)
		if !ok {
			return "", errf(http.StatusBadRequest,
				"gate: task %q: input %q: task %q has no output %q", label, in.Name, in.Task, in.Output)
		}
		return c, nil
	}
	if reqLabels != nil {
		if prev, ok := reqLabels[in.Task]; ok {
			for _, o := range prev.Outputs {
				if o == in.Output {
					return vine.CacheName("pending:" + in.Task + ":" + in.Output), nil
				}
			}
			return "", errf(http.StatusBadRequest,
				"gate: task %q: input %q: task %q has no output %q", label, in.Name, in.Task, in.Output)
		}
	}
	return "", errf(http.StatusBadRequest,
		"gate: task %q: input %q references unknown task %q (producers must precede consumers)",
		label, in.Name, in.Task)
}

// watch follows one admitted task to its terminal state, maintaining the
// tenant's in-flight count and the session event stream.
func (g *Gate) watch(t *tenant, s *session, gt *gateTask) {
	<-gt.handle.Done()
	g.mu.Lock()
	defer g.mu.Unlock()
	t.inFlight--
	typ := "task_done"
	detail := gt.label
	if err := gt.handle.Err(); err != nil {
		typ, detail = "task_fail", gt.label+": "+err.Error()
	}
	// The session may have closed while the task ran; its stream is gone
	// but the in-flight bookkeeping above still applies.
	if t.sessions[s.name] == s {
		s.emitLocked(typ, gt.id, detail)
	} else if len(t.sessions) == 0 && t.inFlight == 0 {
		g.mgr.DropQueue(t.queue)
	}
}

// ---- introspection ----

// TaskStatus reports one task's live state.
func (g *Gate) TaskStatus(tenantName, sessionName, id string) (TaskStatus, error) {
	g.requests.Inc()
	g.mu.Lock()
	s, err := g.sessionLocked(tenantName, sessionName)
	if err != nil {
		g.mu.Unlock()
		return TaskStatus{}, err
	}
	gt, ok := s.tasks[id]
	g.mu.Unlock()
	if !ok {
		return TaskStatus{}, errf(http.StatusNotFound, "gate: session %q has no task %q", sessionName, id)
	}
	return taskStatus(gt), nil
}

func taskStatus(gt *gateTask) TaskStatus {
	h := gt.handle
	st := TaskStatus{
		ID:              gt.id,
		Label:           gt.label,
		State:           h.State().String(),
		Warm:            gt.warm || h.WarmHit(),
		Worker:          h.Worker(),
		Retries:         h.Retries(),
		ExecNanos:       int64(h.ExecTime()),
		SetupNanos:      int64(h.SetupTime()),
		SubmitUnixNanos: gt.submitAt.UnixNano(),
	}
	if err := h.Err(); err != nil {
		st.Error = err.Error()
	}
	if d := h.FirstDispatch(); !d.IsZero() {
		st.DispatchUnixNanos = d.UnixNano()
	}
	st.Outputs = make(map[string]string, len(gt.outputs))
	for _, o := range gt.outputs {
		if c, ok := h.Output(o); ok {
			st.Outputs[o] = string(c)
		}
	}
	return st
}

// SessionStatus summarizes one session.
func (g *Gate) SessionStatus(tenantName, name string) (SessionStatus, error) {
	g.requests.Inc()
	g.mu.Lock()
	defer g.mu.Unlock()
	s, err := g.sessionLocked(tenantName, name)
	if err != nil {
		return SessionStatus{}, err
	}
	return g.sessionStatusLocked(s), nil
}

func (g *Gate) sessionStatusLocked(s *session) SessionStatus {
	by := make(map[string]int)
	for _, gt := range s.tasks {
		by[gt.handle.State().String()]++
	}
	return SessionStatus{
		Tenant: s.tenant.name, Name: s.name, Open: true,
		Tasks: len(s.tasks), ByState: by, WarmHits: s.warm,
	}
}

// Events returns the session's events with Seq > since, blocking up to
// wait for at least one to arrive (0 = return immediately).
func (g *Gate) Events(tenantName, sessionName string, since int64, wait time.Duration) ([]Event, error) {
	g.requests.Inc()
	deadline := time.Now().Add(wait)
	for {
		g.mu.Lock()
		s, err := g.sessionLocked(tenantName, sessionName)
		if err != nil {
			g.mu.Unlock()
			return nil, err
		}
		var out []Event
		for _, ev := range s.events {
			if ev.Seq > since {
				out = append(out, ev)
			}
		}
		wake := s.wake
		g.mu.Unlock()
		if len(out) > 0 || wait <= 0 {
			return out, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		select {
		case <-wake:
		case <-time.After(remain):
			return nil, nil
		}
	}
}

// Declare uploads an input buffer, returning its content-addressed
// cachename. Identical bytes from any tenant land on the same name —
// dedupe is free below the gate.
func (g *Gate) Declare(tenantName string, data []byte) (DeclareResponse, error) {
	g.requests.Inc()
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		return DeclareResponse{}, errf(http.StatusServiceUnavailable, "gate: draining")
	}
	name := g.mgr.DeclareBuffer(data)
	return DeclareResponse{CacheName: string(name), Size: int64(len(data))}, nil
}

// Fetch materializes a result by cachename, regenerating through lineage
// if the bytes were lost. Blocking; never holds the gate mutex.
func (g *Gate) Fetch(name string) ([]byte, error) {
	g.requests.Inc()
	data, err := g.mgr.FetchBytes(vine.CacheName(name))
	if err != nil {
		return nil, errf(http.StatusNotFound, "gate: fetch %s: %v", name, err)
	}
	return data, nil
}

// Stats snapshots the whole service: per-tenant gate counters plus the
// scheduler's per-queue view.
func (g *Gate) Stats() StatsResponse {
	g.requests.Inc()
	g.mu.Lock()
	resp := StatsResponse{Draining: g.draining}
	names := make([]string, 0, len(g.tenants))
	for n := range g.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := g.tenants[n]
		t.bucket.refill(g.now())
		resp.Tenants = append(resp.Tenants, TenantStats{
			Tenant:         t.name,
			Queue:          t.queue,
			SessionsActive: len(t.sessions),
			SessionsTotal:  t.total,
			InFlight:       t.inFlight,
			Submitted:      t.sub,
			Rejected:       t.rej,
			WarmHits:       t.warmN,
			RateTokens:     t.bucket.tokens,
		})
	}
	g.mu.Unlock()
	for _, q := range g.mgr.QueueStats() {
		resp.Queues = append(resp.Queues, QueueStat{
			Name: q.Name, Weight: q.Weight, Pending: q.Pending,
			Dispatched: int64(q.Dispatched), WaitTotalNanos: q.WaitTotal,
		})
	}
	return resp
}

// Draining reports whether Drain has begun.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Drain gracefully winds the service down: new submissions get 503,
// in-flight tasks run to completion (bounded by timeout; 0 uses the
// configured DrainTimeout), and the manager stops admitting fresh work.
// The caller still owns Manager.Stop (which syncs the journal) — tests
// and the daemon want to inspect or serve final state in between.
func (g *Gate) Drain(timeout time.Duration) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	if timeout <= 0 {
		timeout = g.cfg.DrainTimeout
	}
	return g.mgr.Drain(timeout)
}
