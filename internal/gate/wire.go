package gate

// The wire schema: what crosses the HTTP boundary between an analysis
// client and the gate. Everything is JSON; task argument blobs ride as
// base64 (encoding/json's []byte convention). The schema is deliberately
// close to vine.Task — the gate is a service boundary, not a new
// execution model — with one addition: within-DAG input references, so a
// client can ship a whole graph in one request before any output
// cachename exists on its side.

// TaskSpec is one task in a submitted DAG.
type TaskSpec struct {
	// Label is the client's name for the task, unique within the request
	// and usable by later tasks (same request or same session) as an
	// input reference. Required.
	Label string `json:"label"`
	// Mode is "task" or "function-call" (default "task").
	Mode string `json:"mode,omitempty"`
	// Library and Func name a function registered in the gate's binary.
	Library string `json:"library"`
	Func    string `json:"func"`
	// Args is the opaque argument blob passed to the function.
	Args []byte `json:"args,omitempty"`
	// Inputs bind logical input names to cluster files.
	Inputs []InputRef `json:"inputs,omitempty"`
	// Outputs are the named outputs the task produces.
	Outputs []string `json:"outputs,omitempty"`
	// Cores, Memory, and Priority pass through to the scheduler. The
	// submission queue does NOT pass through: the gate assigns the
	// tenant's queue, which is what makes fair-share per-tenant QoS.
	Cores    int   `json:"cores,omitempty"`
	Memory   int64 `json:"memory,omitempty"`
	Priority int   `json:"priority,omitempty"`
}

// InputRef names one task input: either a direct cachename (a declared
// file or a known output), or a within-DAG reference to the Output of the
// task Labeled Task earlier in this session.
type InputRef struct {
	Name      string `json:"name"`
	CacheName string `json:"cachename,omitempty"`
	Task      string `json:"task,omitempty"`
	Output    string `json:"output,omitempty"`
}

// SubmitRequest carries one DAG. Tasks must be listed producers-first:
// a within-DAG reference may only point at an earlier task.
type SubmitRequest struct {
	Tasks []TaskSpec `json:"tasks"`
}

// TaskResult is the per-task acknowledgment of a submission.
type TaskResult struct {
	Label string `json:"label"`
	// ID is the gate-scoped task id, used for status polling.
	ID string `json:"id"`
	// Outputs maps output names to their content-addressed cachenames.
	Outputs map[string]string `json:"outputs,omitempty"`
	// Warm reports that the task was served from an existing execution —
	// a journal replay or another tenant's identical submission — and
	// scheduled nothing.
	Warm bool `json:"warm"`
}

// SubmitResponse acknowledges a SubmitRequest, tasks in request order.
type SubmitResponse struct {
	Tasks []TaskResult `json:"tasks"`
}

// TaskStatus is one task's live state.
type TaskStatus struct {
	ID      string            `json:"id"`
	Label   string            `json:"label"`
	State   string            `json:"state"` // waiting/ready/staging/running/done/failed
	Warm    bool              `json:"warm"`
	Error   string            `json:"error,omitempty"`
	Worker  string            `json:"worker,omitempty"`
	Retries int               `json:"retries,omitempty"`
	Outputs map[string]string `json:"outputs,omitempty"`
	// ExecNanos/SetupNanos are the accepted run's on-worker costs.
	ExecNanos  int64 `json:"exec_nanos,omitempty"`
	SetupNanos int64 `json:"setup_nanos,omitempty"`
	// SubmitUnixNanos stamps gate-side admission; DispatchUnixNanos the
	// first hand-off to a worker (0 until dispatched, forever 0 for warm
	// hits). Their difference is the submit→first-dispatch latency the
	// gate benchmark reports.
	SubmitUnixNanos   int64 `json:"submit_unix_nanos"`
	DispatchUnixNanos int64 `json:"dispatch_unix_nanos,omitempty"`
}

// SessionStatus summarizes one session.
type SessionStatus struct {
	Tenant   string         `json:"tenant"`
	Name     string         `json:"name"`
	Open     bool           `json:"open"`
	Tasks    int            `json:"tasks"`
	ByState  map[string]int `json:"by_state,omitempty"`
	WarmHits int            `json:"warm_hits"`
}

// Event is one session lifecycle event in the stream: monotonically
// increasing Seq within the session, UnixNanos wall-clock stamped.
type Event struct {
	Seq       int64  `json:"seq"`
	UnixNanos int64  `json:"unix_nanos"`
	Type      string `json:"type"` // session_open, task_submit, task_done, task_fail, warm_hit, session_close
	Task      string `json:"task,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

// DeclareResponse acknowledges an uploaded input file.
type DeclareResponse struct {
	CacheName string `json:"cachename"`
	Size      int64  `json:"size"`
}

// TenantStats is the operator's view of one tenant.
type TenantStats struct {
	Tenant         string  `json:"tenant"`
	Queue          string  `json:"queue"`
	SessionsActive int     `json:"sessions_active"`
	SessionsTotal  int     `json:"sessions_total"`
	InFlight       int     `json:"in_flight"`
	Submitted      int64   `json:"submitted"`
	Rejected       int64   `json:"rejected"`
	WarmHits       int64   `json:"warm_hits"`
	RateTokens     float64 `json:"rate_tokens"`
}

// QueueStat mirrors sched.QueueStats over the wire.
type QueueStat struct {
	Name           string  `json:"name"`
	Weight         float64 `json:"weight"`
	Pending        int     `json:"pending"`
	Dispatched     int64   `json:"dispatched"`
	WaitTotalNanos int64   `json:"wait_total_nanos"`
}

// StatsResponse is GET /v1/stats: per-tenant gate counters plus the
// manager's per-queue scheduler state, so an operator sees backlog and
// fairness without attaching a Go client.
type StatsResponse struct {
	Draining bool          `json:"draining"`
	Tenants  []TenantStats `json:"tenants"`
	Queues   []QueueStat   `json:"queues"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
