package gate

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"
)

// The HTTP surface. Tenancy rides in the X-Vine-Tenant header (missing
// means the shared "anon" tenant); sessions and tasks are path elements.
// Cachenames contain ':' so result fetch takes the name as a query
// parameter rather than a path element.
//
//	POST   /v1/sessions/{session}             open (idempotent)
//	GET    /v1/sessions/{session}             session status
//	DELETE /v1/sessions/{session}             close
//	POST   /v1/sessions/{session}/tasks       submit a DAG (SubmitRequest)
//	GET    /v1/sessions/{session}/tasks/{id}  task status
//	GET    /v1/sessions/{session}/events      ?since=N&wait_ms=M long-poll
//	POST   /v1/files                          declare an input buffer (raw body)
//	GET    /v1/result?name=<cachename>        fetch result bytes
//	GET    /v1/stats                          gate + queue stats
//	GET    /v1/metrics                        text metrics exposition

// TenantHeader names the request header carrying the tenant identity.
const TenantHeader = "X-Vine-Tenant"

// AnonTenant is the tenant requests without a TenantHeader belong to.
const AnonTenant = "anon"

// maxBodyBytes bounds request bodies (task args and declared buffers).
const maxBodyBytes = 64 << 20

func requestTenant(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return AnonTenant
}

// Handler builds the gate's HTTP mux.
func (g *Gate) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/sessions/{session}", func(w http.ResponseWriter, r *http.Request) {
		st, err := g.OpenSession(requestTenant(r), r.PathValue("session"))
		reply(w, st, err)
	})
	mux.HandleFunc("GET /v1/sessions/{session}", func(w http.ResponseWriter, r *http.Request) {
		st, err := g.SessionStatus(requestTenant(r), r.PathValue("session"))
		reply(w, st, err)
	})
	mux.HandleFunc("DELETE /v1/sessions/{session}", func(w http.ResponseWriter, r *http.Request) {
		err := g.CloseSession(requestTenant(r), r.PathValue("session"))
		reply(w, map[string]bool{"closed": err == nil}, err)
	})
	mux.HandleFunc("POST /v1/sessions/{session}/tasks", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
			writeErr(w, errf(http.StatusBadRequest, "gate: bad request body: %v", err))
			return
		}
		resp, err := g.Submit(requestTenant(r), r.PathValue("session"), req)
		reply(w, resp, err)
	})
	mux.HandleFunc("GET /v1/sessions/{session}/tasks/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := g.TaskStatus(requestTenant(r), r.PathValue("session"), r.PathValue("id"))
		reply(w, st, err)
	})
	mux.HandleFunc("GET /v1/sessions/{session}/events", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
		waitMS, _ := strconv.Atoi(r.URL.Query().Get("wait_ms"))
		evs, err := g.Events(requestTenant(r), r.PathValue("session"), since, time.Duration(waitMS)*time.Millisecond)
		if evs == nil {
			evs = []Event{}
		}
		reply(w, evs, err)
	})
	mux.HandleFunc("POST /v1/files", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeErr(w, errf(http.StatusBadRequest, "gate: reading body: %v", err))
			return
		}
		resp, err := g.Declare(requestTenant(r), data)
		reply(w, resp, err)
	})
	mux.HandleFunc("GET /v1/result", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			writeErr(w, errf(http.StatusBadRequest, "gate: name parameter required"))
			return
		}
		data, err := g.Fetch(name)
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		reply(w, g.Stats(), nil)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		g.mgr.WriteMetrics(w)
	})
	return mux
}

func reply(w http.ResponseWriter, v any, err error) {
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se *StatusError
	if errors.As(err, &se) {
		code = se.Code
		if se.RetryAfter > 0 {
			secs := int(se.RetryAfter / time.Second)
			if se.RetryAfter%time.Second != 0 {
				secs++
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}
