package gate

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestClientFailoverRedial drives the client's manager-address-list
// redial: a draining or dead primary rotates the client to the next
// endpoint transparently, while real application errors (404) stay
// pinned to the answering gate instead of being retried elsewhere.
func TestClientFailoverRedial(t *testing.T) {
	g1 := newGate(t, 1, 2, Config{})
	g2 := newGate(t, 1, 2, Config{})
	srv1 := httptest.NewServer(g1.Handler())
	defer srv1.Close()
	srv2 := httptest.NewServer(g2.Handler())
	defer srv2.Close()

	c := &Client{Base: srv1.URL, Fallbacks: []string{srv2.URL}, Tenant: "alice"}

	// Healthy primary serves and pins.
	if _, err := c.OpenSession("fo"); err != nil {
		t.Fatal(err)
	}
	if got := c.cur; got != 0 {
		t.Fatalf("client pinned to endpoint %d, want primary", got)
	}

	// Drain the primary: its 503 should rotate the very next call onto
	// the standby without surfacing an error to the caller.
	if err := g1.Drain(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenSession("fo2"); err != nil {
		t.Fatalf("open through failover: %v", err)
	}
	if got := c.cur; got != 1 {
		t.Fatalf("client pinned to endpoint %d, want standby", got)
	}
	// The standby really owns the session, and work flows end to end.
	resp, err := c.Submit("fo2", SubmitRequest{Tasks: []TaskSpec{echoSpec("t1", "hello")}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitTask("fo2", resp.Tasks[0].ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("task on standby: state %s (%s)", st.State, st.Error)
	}
	direct := &Client{Base: srv2.URL, Tenant: "alice"}
	if _, err := direct.SessionStatus("fo2"); err != nil {
		t.Fatalf("standby does not own failover session: %v", err)
	}

	// A real application error is returned as-is and does not rotate.
	_, err = c.TaskStatus("fo2", "bogus")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("expected 404 from pinned endpoint, got %v", err)
	}
	if got := c.cur; got != 1 {
		t.Fatalf("404 rotated the client to endpoint %d", got)
	}

	// Transport-level death of the primary: a fresh client whose Base no
	// longer listens still reaches the cluster through its fallback list.
	srv1.Close()
	c2 := &Client{Base: srv1.URL, Fallbacks: []string{srv2.URL}, Tenant: "alice"}
	if _, err := c2.OpenSession("fo3"); err != nil {
		t.Fatalf("open with dead primary: %v", err)
	}
	if got := c2.cur; got != 1 {
		t.Fatalf("client pinned to endpoint %d after dead primary", got)
	}
}
