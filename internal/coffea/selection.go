package coffea

import (
	"fmt"
	"sort"

	"hepvine/internal/hist"
)

// Selection mirrors Coffea's PackedSelection: named boolean cuts over the
// events of one chunk, packed into bitmasks, with cutflow accounting. HEP
// analyses live and die by their cutflows — the per-cut survival counts
// that document a selection — so the accumulator integrates with HistSet
// and merges across chunks like any histogram.
type Selection struct {
	n     int
	names []string
	masks map[string][]uint64
}

// NewSelection creates a selection over n events.
func NewSelection(n int) *Selection {
	return &Selection{n: n, masks: make(map[string][]uint64)}
}

// Len reports the number of events covered.
func (s *Selection) Len() int { return s.n }

// Names lists cuts in insertion order.
func (s *Selection) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Add registers a named cut from a per-event predicate slice.
func (s *Selection) Add(name string, pass []bool) error {
	if len(pass) != s.n {
		return fmt.Errorf("coffea: cut %q has %d flags for %d events", name, len(pass), s.n)
	}
	if _, dup := s.masks[name]; dup {
		return fmt.Errorf("coffea: duplicate cut %q", name)
	}
	mask := make([]uint64, (s.n+63)/64)
	for i, p := range pass {
		if p {
			mask[i/64] |= 1 << (i % 64)
		}
	}
	s.masks[name] = mask
	s.names = append(s.names, name)
	return nil
}

// AddFunc registers a cut computed per event index.
func (s *Selection) AddFunc(name string, pass func(i int) bool) error {
	flags := make([]bool, s.n)
	for i := range flags {
		flags[i] = pass(i)
	}
	return s.Add(name, flags)
}

// All returns the event mask passing every named cut (all cuts if none
// given).
func (s *Selection) All(names ...string) ([]bool, error) {
	if len(names) == 0 {
		names = s.names
	}
	acc := make([]uint64, (s.n+63)/64)
	for i := range acc {
		acc[i] = ^uint64(0)
	}
	for _, name := range names {
		mask, ok := s.masks[name]
		if !ok {
			return nil, fmt.Errorf("coffea: unknown cut %q", name)
		}
		for i := range acc {
			acc[i] &= mask[i]
		}
	}
	out := make([]bool, s.n)
	for i := range out {
		out[i] = acc[i/64]&(1<<(i%64)) != 0
	}
	return out, nil
}

// Count reports how many events pass all the given cuts.
func (s *Selection) Count(names ...string) (int, error) {
	pass, err := s.All(names...)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range pass {
		if p {
			n++
		}
	}
	return n, nil
}

// Cutflow reports the sequential survival counts: events passing the first
// cut, the first two, and so on — the standard analysis bookkeeping table.
func (s *Selection) Cutflow() ([]CutflowRow, error) {
	out := make([]CutflowRow, 0, len(s.names)+1)
	out = append(out, CutflowRow{Cut: "(all events)", Pass: s.n})
	for i := range s.names {
		n, err := s.Count(s.names[:i+1]...)
		if err != nil {
			return nil, err
		}
		out = append(out, CutflowRow{Cut: s.names[i], Pass: n})
	}
	return out, nil
}

// CutflowRow is one line of a cutflow table.
type CutflowRow struct {
	Cut  string
	Pass int
}

// CutflowHist encodes a cutflow as a histogram (bin i = events surviving
// the first i cuts) so it accumulates across chunks through the ordinary
// HistSet machinery. The cut order must match across chunks.
func (s *Selection) CutflowHist() (*hist.Hist, error) {
	rows, err := s.Cutflow()
	if err != nil {
		return nil, err
	}
	h := hist.New(hist.Reg(len(rows), 0, float64(len(rows)), "cutflow"))
	for i, r := range rows {
		// One weighted entry per row carrying the survival count.
		h.FillW(float64(r.Pass), float64(i)+0.5)
	}
	return h, nil
}

// FormatCutflow renders a cutflow table with efficiencies.
func FormatCutflow(rows []CutflowRow) string {
	if len(rows) == 0 {
		return ""
	}
	out := fmt.Sprintf("%-24s %10s %8s %8s\n", "cut", "pass", "rel%", "abs%")
	base := rows[0].Pass
	for i, r := range rows {
		rel := 100.0
		if i > 0 && rows[i-1].Pass > 0 {
			rel = 100 * float64(r.Pass) / float64(rows[i-1].Pass)
		}
		abs := 0.0
		if base > 0 {
			abs = 100 * float64(r.Pass) / float64(base)
		}
		out += fmt.Sprintf("%-24s %10d %7.1f%% %7.1f%%\n", r.Cut, r.Pass, rel, abs)
	}
	return out
}

// MergeCutflowRows sums compatible cutflow tables (same cut sequence),
// for combining per-chunk results.
func MergeCutflowRows(tables ...[]CutflowRow) ([]CutflowRow, error) {
	if len(tables) == 0 {
		return nil, nil
	}
	out := append([]CutflowRow(nil), tables[0]...)
	for _, t := range tables[1:] {
		if len(t) != len(out) {
			return nil, fmt.Errorf("coffea: cutflow length mismatch: %d vs %d", len(t), len(out))
		}
		for i := range t {
			if t[i].Cut != out[i].Cut {
				return nil, fmt.Errorf("coffea: cutflow cut %d differs: %q vs %q", i, t[i].Cut, out[i].Cut)
			}
			out[i].Pass += t[i].Pass
		}
	}
	return out, nil
}

// SortedCutNames is a test helper: cut names in lexical order.
func (s *Selection) SortedCutNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
