// Package coffea is a columnar analysis framework modelled on Coffea
// (§II.A): it maps event files into column-oriented structures (NanoEvents),
// partitions datasets into chunks, applies user-defined processor functions,
// and accumulates their histogram outputs — the map/accumulate structure of
// Fig. 3 that both DV3 and RS-TriPhoton follow.
//
// A Processor is the unit of user code: it declares the columns it touches
// (so the I/O layer reads only those branches) and transforms one chunk of
// events into a HistSet. HistSets merge commutatively and associatively,
// which legalizes arbitrary accumulation trees.
package coffea

import (
	"fmt"
	"sort"
	"sync"

	"hepvine/internal/hist"
	"hepvine/internal/rootio"
)

// Chunk identifies a contiguous event range of one file — the unit of work
// a processor task consumes ("chunks_per_file" in Fig. 4).
type Chunk struct {
	Dataset string
	Path    string
	Lo, Hi  int64
	// Index is the global chunk number within the workload, for stable
	// task keys.
	Index int
}

// NEvents reports the chunk's event count.
func (c Chunk) NEvents() int64 { return c.Hi - c.Lo }

// String renders "dataset:path[lo,hi)".
func (c Chunk) String() string {
	return fmt.Sprintf("%s:%s[%d,%d)", c.Dataset, c.Path, c.Lo, c.Hi)
}

// FileInfo describes one input file of a dataset.
type FileInfo struct {
	Path    string
	NEvents int64
}

// Partition splits files into chunks of at most eventsPerChunk events,
// never crossing file boundaries. It mirrors Coffea's uproot chunking.
func Partition(dataset string, files []FileInfo, eventsPerChunk int64) ([]Chunk, error) {
	if eventsPerChunk <= 0 {
		return nil, fmt.Errorf("coffea: eventsPerChunk must be positive, got %d", eventsPerChunk)
	}
	var out []Chunk
	idx := 0
	for _, f := range files {
		if f.NEvents < 0 {
			return nil, fmt.Errorf("coffea: file %s has negative event count", f.Path)
		}
		for lo := int64(0); lo < f.NEvents; lo += eventsPerChunk {
			hi := lo + eventsPerChunk
			if hi > f.NEvents {
				hi = f.NEvents
			}
			out = append(out, Chunk{Dataset: dataset, Path: f.Path, Lo: lo, Hi: hi, Index: idx})
			idx++
		}
	}
	return out, nil
}

// PartitionPerFile splits each file into exactly chunksPerFile equal chunks
// (the "chunks_per_file" knob from the sample application in Fig. 4).
func PartitionPerFile(dataset string, files []FileInfo, chunksPerFile int) ([]Chunk, error) {
	if chunksPerFile <= 0 {
		return nil, fmt.Errorf("coffea: chunksPerFile must be positive, got %d", chunksPerFile)
	}
	var out []Chunk
	idx := 0
	for _, f := range files {
		per := f.NEvents / int64(chunksPerFile)
		if per == 0 {
			per = f.NEvents
		}
		for c := 0; c < chunksPerFile; c++ {
			lo := int64(c) * per
			hi := lo + per
			if c == chunksPerFile-1 {
				hi = f.NEvents
			}
			if lo >= f.NEvents {
				break
			}
			out = append(out, Chunk{Dataset: dataset, Path: f.Path, Lo: lo, Hi: hi, Index: idx})
			idx++
		}
	}
	return out, nil
}

// ColumnReader is the event-data access contract NanoEvents reads through:
// column-selective, range-selective reads. *rootio.Reader satisfies it for
// local files; xrootd-backed adapters satisfy it for remote federation
// access (§III.A) — processors never know the difference.
type ColumnReader interface {
	NEvents() int64
	ReadFlat(name string, lo, hi int64) ([]float64, error)
	ReadJagged(name string, lo, hi int64) (rootio.Jagged, error)
}

// NanoEvents is a columnar view over one chunk, lazily reading and caching
// the branches a processor touches.
type NanoEvents struct {
	Dataset string
	reader  ColumnReader
	lo, hi  int64

	flatCache   map[string][]float64
	jaggedCache map[string]rootio.Jagged
}

// NewNanoEvents opens a chunk view over any column reader.
func NewNanoEvents(rd ColumnReader, chunk Chunk) (*NanoEvents, error) {
	if chunk.Lo < 0 || chunk.Hi < chunk.Lo || chunk.Hi > rd.NEvents() {
		return nil, fmt.Errorf("coffea: chunk %v out of file bounds (%d events)", chunk, rd.NEvents())
	}
	return &NanoEvents{
		Dataset:     chunk.Dataset,
		reader:      rd,
		lo:          chunk.Lo,
		hi:          chunk.Hi,
		flatCache:   make(map[string][]float64),
		jaggedCache: make(map[string]rootio.Jagged),
	}, nil
}

// Len reports the number of events in the view.
func (ev *NanoEvents) Len() int64 { return ev.hi - ev.lo }

// Flat returns a flat or counts branch for all events in the chunk.
func (ev *NanoEvents) Flat(name string) ([]float64, error) {
	if v, ok := ev.flatCache[name]; ok {
		return v, nil
	}
	v, err := ev.reader.ReadFlat(name, ev.lo, ev.hi)
	if err != nil {
		return nil, err
	}
	ev.flatCache[name] = v
	return v, nil
}

// Jagged returns a jagged branch for all events in the chunk.
func (ev *NanoEvents) Jagged(name string) (rootio.Jagged, error) {
	if v, ok := ev.jaggedCache[name]; ok {
		return v, nil
	}
	v, err := ev.reader.ReadJagged(name, ev.lo, ev.hi)
	if err != nil {
		return rootio.Jagged{}, err
	}
	ev.jaggedCache[name] = v
	return v, nil
}

// HistSet is a named collection of histograms — the accumulator type every
// processor returns. Merging is commutative and associative.
type HistSet struct {
	H map[string]*hist.Hist
}

// NewHistSet returns an empty set.
func NewHistSet() *HistSet {
	return &HistSet{H: make(map[string]*hist.Hist)}
}

// Add merges other into s. Histograms present in only one side are adopted
// (cloned).
func (s *HistSet) Add(other *HistSet) error {
	for name, oh := range other.H {
		if mine, ok := s.H[name]; ok {
			if err := mine.Add(oh); err != nil {
				return fmt.Errorf("coffea: merging %q: %w", name, err)
			}
		} else {
			s.H[name] = oh.Clone()
		}
	}
	return nil
}

// Clone deep-copies the set.
func (s *HistSet) Clone() *HistSet {
	ns := NewHistSet()
	for name, h := range s.H {
		ns.H[name] = h.Clone()
	}
	return ns
}

// Names lists histogram names, sorted.
func (s *HistSet) Names() []string {
	out := make([]string, 0, len(s.H))
	for n := range s.H {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalEntries sums entries over all histograms.
func (s *HistSet) TotalEntries() uint64 {
	var n uint64
	for _, h := range s.H {
		n += h.Entries
	}
	return n
}

// Processor is the user-defined analysis function (§III.C "processor"
// functions): it declares its input columns and maps one chunk of events to
// a HistSet.
type Processor interface {
	// Name identifies the processor in registries and task specs.
	Name() string
	// Columns lists every branch the processor reads, enabling
	// column-selective I/O.
	Columns() []string
	// Process analyzes one chunk.
	Process(ev *NanoEvents) (*HistSet, error)
}

// registry maps processor names to implementations so task specs can travel
// between processes as plain strings (the live engine's workers look
// processors up by name, the analogue of serverless functions hosted in a
// library).
var (
	regMu    sync.RWMutex
	registry = make(map[string]Processor)
)

// Register installs a processor under its name. Re-registering the same
// name replaces the old entry (convenient for tests).
func Register(p Processor) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[p.Name()] = p
}

// Lookup finds a registered processor.
func Lookup(name string) (Processor, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coffea: no processor registered as %q", name)
	}
	return p, nil
}

// RegisteredProcessors lists registered names, sorted.
func RegisteredProcessors() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ProcessChunk opens the chunk's local file, builds the view, and runs the
// processor — the body of one map task.
func ProcessChunk(p Processor, chunk Chunk) (*HistSet, error) {
	rd, closer, err := rootio.Open(chunk.Path)
	if err != nil {
		return nil, fmt.Errorf("coffea: opening %s: %w", chunk.Path, err)
	}
	defer closer.Close()
	return ProcessChunkFrom(p, rd, chunk)
}

// ProcessChunkFrom runs the processor over a chunk served by any column
// reader — a local file, or a remote xrootd-backed adapter.
func ProcessChunkFrom(p Processor, rd ColumnReader, chunk Chunk) (*HistSet, error) {
	ev, err := NewNanoEvents(rd, chunk)
	if err != nil {
		return nil, err
	}
	return p.Process(ev)
}

// RunLocal processes all chunks serially and merges the results — the
// single-machine ground truth the distributed planes are validated against.
func RunLocal(p Processor, chunks []Chunk) (*HistSet, error) {
	total := NewHistSet()
	for _, c := range chunks {
		hs, err := ProcessChunk(p, c)
		if err != nil {
			return nil, fmt.Errorf("coffea: chunk %v: %w", c, err)
		}
		if err := total.Add(hs); err != nil {
			return nil, err
		}
	}
	return total, nil
}
