package coffea

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hepvine/internal/rootio"
)

// Fileset is the dataset manifest convention of Coffea analyses: named
// datasets, each listing its event files. Analyses are usually launched
// from a fileset JSON rather than raw paths (the `get_dataset("SingleMu")`
// of Fig. 4 resolves through one).
type Fileset struct {
	// Datasets maps dataset name → files.
	Datasets map[string][]FileInfo `json:"datasets"`
}

// NewFileset returns an empty manifest.
func NewFileset() *Fileset {
	return &Fileset{Datasets: make(map[string][]FileInfo)}
}

// Add appends a file to a dataset.
func (fs *Fileset) Add(dataset string, file FileInfo) {
	fs.Datasets[dataset] = append(fs.Datasets[dataset], file)
}

// Names lists dataset names, sorted.
func (fs *Fileset) Names() []string {
	out := make([]string, 0, len(fs.Datasets))
	for n := range fs.Datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalEvents sums event counts across every file.
func (fs *Fileset) TotalEvents() int64 {
	var n int64
	for _, files := range fs.Datasets {
		for _, f := range files {
			n += f.NEvents
		}
	}
	return n
}

// Validate checks the manifest's internal consistency.
func (fs *Fileset) Validate() error {
	if len(fs.Datasets) == 0 {
		return fmt.Errorf("coffea: fileset has no datasets")
	}
	for name, files := range fs.Datasets {
		if name == "" {
			return fmt.Errorf("coffea: fileset has an unnamed dataset")
		}
		if len(files) == 0 {
			return fmt.Errorf("coffea: dataset %q has no files", name)
		}
		for _, f := range files {
			if f.Path == "" {
				return fmt.Errorf("coffea: dataset %q has a file with no path", name)
			}
			if f.NEvents <= 0 {
				return fmt.Errorf("coffea: file %s has %d events", f.Path, f.NEvents)
			}
		}
	}
	return nil
}

// Chunks partitions every dataset and returns the per-dataset chunk lists,
// with chunk indices globally unique across the fileset (as the graph
// builders require).
func (fs *Fileset) Chunks(eventsPerChunk int64) (map[string][]Chunk, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string][]Chunk, len(fs.Datasets))
	idx := 0
	for _, name := range fs.Names() {
		chunks, err := Partition(name, fs.Datasets[name], eventsPerChunk)
		if err != nil {
			return nil, err
		}
		for i := range chunks {
			chunks[i].Index = idx
			idx++
		}
		out[name] = chunks
	}
	return out, nil
}

// Save writes the manifest as JSON.
func (fs *Fileset) Save(path string) error {
	if err := fs.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFileset reads a manifest from JSON.
func LoadFileset(path string) (*Fileset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fs := NewFileset()
	if err := json.Unmarshal(data, fs); err != nil {
		return nil, fmt.Errorf("coffea: parsing fileset %s: %w", path, err)
	}
	if err := fs.Validate(); err != nil {
		return nil, fmt.Errorf("coffea: fileset %s: %w", path, err)
	}
	return fs, nil
}

// ScanDirFileset builds a single-dataset manifest by opening every .vrt
// file under dir to read its event count.
func ScanDirFileset(dataset, dir string) (*Fileset, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.vrt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("coffea: no .vrt files under %s", dir)
	}
	fs := NewFileset()
	for _, p := range paths {
		rd, closer, err := rootio.Open(p)
		if err != nil {
			return nil, fmt.Errorf("coffea: opening %s: %w", p, err)
		}
		fs.Add(dataset, FileInfo{Path: p, NEvents: rd.NEvents()})
		closer.Close()
	}
	return fs, nil
}
