package coffea

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"hepvine/internal/dag"
	"hepvine/internal/hist"
	"hepvine/internal/randx"
	"hepvine/internal/rootio"
)

// metProc is a minimal processor: histogram of MET_pt, the Fig. 4 example.
type metProc struct{}

func (metProc) Name() string      { return "met-test" }
func (metProc) Columns() []string { return []string{"MET_pt"} }
func (metProc) Process(ev *NanoEvents) (*HistSet, error) {
	met, err := ev.Flat("MET_pt")
	if err != nil {
		return nil, err
	}
	hs := NewHistSet()
	h := hist.New(hist.Reg(100, 0, 200, "met"))
	h.FillN(met)
	hs.H["met"] = h
	return hs, nil
}

// photonProc exercises jagged reads.
type photonProc struct{}

func (photonProc) Name() string      { return "photon-test" }
func (photonProc) Columns() []string { return []string{"nPhoton", "Photon_pt"} }
func (photonProc) Process(ev *NanoEvents) (*HistSet, error) {
	pts, err := ev.Jagged("Photon_pt")
	if err != nil {
		return nil, err
	}
	hs := NewHistSet()
	h := hist.New(hist.Reg(50, 0, 500, "photon_pt"))
	h.FillN(pts.Values)
	hs.H["photon_pt"] = h
	return hs, nil
}

func writeTestDataset(t *testing.T, files, evPerFile int) []string {
	t.Helper()
	paths, err := rootio.WriteDataset(t.TempDir(), rootio.DatasetSpec{
		Name: "testds", Files: files, EventsPerFile: evPerFile,
		BasketSize: 64, Gen: rootio.GenOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func fileInfos(paths []string, n int64) []FileInfo {
	out := make([]FileInfo, len(paths))
	for i, p := range paths {
		out[i] = FileInfo{Path: p, NEvents: n}
	}
	return out
}

func TestPartition(t *testing.T) {
	files := []FileInfo{{Path: "a", NEvents: 100}, {Path: "b", NEvents: 45}}
	chunks, err := Partition("ds", files, 30)
	if err != nil {
		t.Fatal(err)
	}
	// a: [0,30),[30,60),[60,90),[90,100); b: [0,30),[30,45) → 6 chunks.
	if len(chunks) != 6 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	var total int64
	for i, c := range chunks {
		total += c.NEvents()
		if c.Index != i {
			t.Fatalf("chunk %d has index %d", i, c.Index)
		}
		if c.NEvents() > 30 || c.NEvents() <= 0 {
			t.Fatalf("chunk size %d", c.NEvents())
		}
	}
	if total != 145 {
		t.Fatalf("total events = %d", total)
	}
	if _, err := Partition("ds", files, 0); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestPartitionPerFile(t *testing.T) {
	files := []FileInfo{{Path: "a", NEvents: 100}}
	chunks, err := PartitionPerFile("ds", files, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 5 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	var total int64
	for _, c := range chunks {
		total += c.NEvents()
	}
	if total != 100 {
		t.Fatalf("total = %d", total)
	}
	// Uneven division: remainder goes to last chunk.
	chunks, _ = PartitionPerFile("ds", []FileInfo{{Path: "a", NEvents: 103}}, 5)
	if chunks[len(chunks)-1].Hi != 103 {
		t.Fatalf("last chunk ends at %d", chunks[len(chunks)-1].Hi)
	}
}

func TestPartitionProperty(t *testing.T) {
	// Chunks tile files exactly: disjoint, ordered, covering.
	check := func(n1, n2 uint16, size uint8) bool {
		files := []FileInfo{
			{Path: "a", NEvents: int64(n1) % 1000},
			{Path: "b", NEvents: int64(n2) % 1000},
		}
		per := int64(size)%100 + 1
		chunks, err := Partition("ds", files, per)
		if err != nil {
			return false
		}
		covered := map[string]int64{}
		for _, c := range chunks {
			if c.Lo >= c.Hi {
				return false
			}
			if c.Lo != covered[c.Path] {
				return false // gap or overlap
			}
			covered[c.Path] = c.Hi
		}
		for _, f := range files {
			if covered[f.Path] != f.NEvents {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessChunkMatchesWholeFile(t *testing.T) {
	paths := writeTestDataset(t, 1, 1000)
	files := fileInfos(paths, 1000)
	// Whole file in one chunk.
	whole, err := RunLocal(metProc{}, []Chunk{{Dataset: "ds", Path: files[0].Path, Lo: 0, Hi: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	// Same file in 7 chunks.
	chunks, _ := Partition("ds", files, 150)
	split, err := RunLocal(metProc{}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	hw, hs := whole.H["met"], split.H["met"]
	if hw.Entries != hs.Entries {
		t.Fatalf("entries %d vs %d", hw.Entries, hs.Entries)
	}
	for i := range hw.Counts {
		if hw.Counts[i] != hs.Counts[i] {
			t.Fatalf("bin %d differs: %v vs %v", i, hw.Counts[i], hs.Counts[i])
		}
	}
}

func TestJaggedProcessor(t *testing.T) {
	paths := writeTestDataset(t, 2, 500)
	chunks, _ := Partition("ds", fileInfos(paths, 500), 100)
	hs, err := RunLocal(photonProc{}, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if hs.H["photon_pt"].Sum() == 0 {
		t.Fatal("no photons histogrammed")
	}
}

func TestNanoEventsCaching(t *testing.T) {
	paths := writeTestDataset(t, 1, 200)
	rd, closer, err := rootio.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	ev, err := NewNanoEvents(rd, Chunk{Dataset: "ds", Path: paths[0], Lo: 0, Hi: 200})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ev.Flat("MET_pt")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ev.Flat("MET_pt")
	if &a[0] != &b[0] {
		t.Fatal("flat cache miss on second read")
	}
	j1, err := ev.Jagged("Jet_pt")
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := ev.Jagged("Jet_pt")
	if &j1.Values[0] != &j2.Values[0] {
		t.Fatal("jagged cache miss")
	}
	if ev.Len() != 200 {
		t.Fatalf("Len = %d", ev.Len())
	}
}

func TestNanoEventsBounds(t *testing.T) {
	paths := writeTestDataset(t, 1, 100)
	rd, closer, _ := rootio.Open(paths[0])
	defer closer.Close()
	if _, err := NewNanoEvents(rd, Chunk{Lo: 0, Hi: 200}); err == nil {
		t.Fatal("out-of-bounds chunk accepted")
	}
}

func TestHistSetAddDisjointAndOverlap(t *testing.T) {
	a := NewHistSet()
	a.H["x"] = hist.New(hist.Reg(4, 0, 4, "x"))
	a.H["x"].Fill(1)
	b := NewHistSet()
	b.H["x"] = hist.New(hist.Reg(4, 0, 4, "x"))
	b.H["x"].Fill(1)
	b.H["y"] = hist.New(hist.Reg(4, 0, 4, "y"))
	b.H["y"].Fill(2)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.H["x"].At(1) != 2 {
		t.Fatalf("x merged wrong: %v", a.H["x"].At(1))
	}
	if a.H["y"] == nil || a.H["y"].At(2) != 1 {
		t.Fatal("y not adopted")
	}
	// Adopted histogram must be independent of source.
	b.H["y"].Fill(2)
	if a.H["y"].At(2) != 1 {
		t.Fatal("adopted histogram shares storage")
	}
}

func TestHistSetAddIncompatible(t *testing.T) {
	a := NewHistSet()
	a.H["x"] = hist.New(hist.Reg(4, 0, 4, "x"))
	b := NewHistSet()
	b.H["x"] = hist.New(hist.Reg(5, 0, 4, "x"))
	if err := a.Add(b); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestHistSetMergeAssociativityProperty(t *testing.T) {
	mk := func(seed uint64) *HistSet {
		s := NewHistSet()
		r := randx.New(seed + 1)
		s.H["a"] = hist.New(hist.Reg(10, 0, 10, "a"))
		for i := 0; i < 100; i++ {
			s.H["a"].FillW(r.Float64(), r.Range(-1, 11))
		}
		if seed%2 == 0 {
			s.H["b"] = hist.New(hist.Reg(5, 0, 5, "b"))
			s.H["b"].Fill(r.Range(0, 5))
		}
		return s
	}
	check := func(x, y, z uint8) bool {
		l := mk(uint64(x)).Clone()
		if err := l.Add(mk(uint64(y))); err != nil {
			return false
		}
		if err := l.Add(mk(uint64(z))); err != nil {
			return false
		}
		r := mk(uint64(y))
		if err := r.Add(mk(uint64(z))); err != nil {
			return false
		}
		lhs := mk(uint64(x))
		if err := lhs.Add(r); err != nil {
			return false
		}
		if len(lhs.Names()) != len(l.Names()) {
			return false
		}
		for _, n := range l.Names() {
			for i := range l.H[n].Counts {
				if math.Abs(l.H[n].Counts[i]-lhs.H[n].Counts[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHistSetCodecRoundTrip(t *testing.T) {
	s := NewHistSet()
	s.H["met"] = hist.New(hist.Reg(100, 0, 200, "met"))
	s.H["njet"] = hist.New(hist.Reg(20, 0, 20, "njet"))
	r := randx.New(3)
	for i := 0; i < 500; i++ {
		s.H["met"].Fill(r.Range(0, 250))
		s.H["njet"].Fill(r.Range(0, 22))
	}
	got, err := UnmarshalHistSet(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names()) != 2 {
		t.Fatalf("names = %v", got.Names())
	}
	for _, n := range s.Names() {
		for i := range s.H[n].Counts {
			if got.H[n].Counts[i] != s.H[n].Counts[i] {
				t.Fatalf("%s bin %d differs", n, i)
			}
		}
	}
	if _, err := UnmarshalHistSet([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
	blob := s.Marshal()
	if _, err := UnmarshalHistSet(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated accepted")
	}
}

func TestRegistry(t *testing.T) {
	Register(metProc{})
	p, err := Lookup("met-test")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "met-test" {
		t.Fatalf("lookup returned %q", p.Name())
	}
	if _, err := Lookup("missing-proc"); err == nil {
		t.Fatal("missing processor found")
	}
	found := false
	for _, n := range RegisteredProcessors() {
		if n == "met-test" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered name not listed")
	}
}

func TestBuildGraphShape(t *testing.T) {
	chunks := make([]Chunk, 16)
	for i := range chunks {
		chunks[i] = Chunk{Dataset: "ds", Path: "f", Lo: int64(i * 10), Hi: int64(i*10 + 10), Index: i}
	}
	g, root, err := BuildGraph("met-test", chunks, GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Finalized() {
		t.Fatal("graph not finalized")
	}
	// 16 processors + 15 binary accumulators.
	if g.Len() != 31 {
		t.Fatalf("graph len = %d", g.Len())
	}
	if len(g.Dependents(root)) != 0 {
		t.Fatal("root has dependents")
	}
	cc := g.CountByCategory()
	if cc[0].Category != "accumulate" || cc[0].Count != 15 {
		t.Fatalf("categories = %v", cc)
	}
	// Every processor task's spec carries its chunk.
	for _, k := range g.Keys() {
		task := g.Task(k)
		if task.Category == "processor" {
			ps, ok := task.Spec.(*ProcessSpec)
			if !ok || ps.Processor != "met-test" {
				t.Fatalf("bad processor spec on %s: %#v", k, task.Spec)
			}
		}
	}
}

func TestBuildGraphSingleShotReduction(t *testing.T) {
	chunks := make([]Chunk, 10)
	for i := range chunks {
		chunks[i] = Chunk{Index: i, Hi: 1}
	}
	g, root, err := BuildGraph("met-test", chunks, GraphOptions{FanIn: 0})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 11 {
		t.Fatalf("len = %d", g.Len())
	}
	if len(g.Task(root).Deps) != 10 {
		t.Fatalf("naive reduction fan-in = %d", len(g.Task(root).Deps))
	}
}

func TestBuildGraphValidation(t *testing.T) {
	if _, _, err := BuildGraph("p", nil, GraphOptions{}); err == nil {
		t.Fatal("empty chunks accepted")
	}
}

func TestBuildMultiDatasetGraph(t *testing.T) {
	datasets := map[string][]Chunk{}
	for d := 0; d < 4; d++ {
		name := fmt.Sprintf("ds%d", d)
		for i := 0; i < 8; i++ {
			datasets[name] = append(datasets[name], Chunk{Dataset: name, Index: i, Hi: 1})
		}
	}
	g, root, err := BuildMultiDatasetGraph("met-test", datasets, GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Root depends transitively on every processor task.
	anc := g.Ancestors(root)
	procs := 0
	for k := range anc {
		if g.Task(k).Category == "processor" {
			procs++
		}
	}
	if procs != 32 {
		t.Fatalf("root covers %d processors", procs)
	}
	if _, _, err := BuildMultiDatasetGraph("p", nil, GraphOptions{}); err == nil {
		t.Fatal("empty datasets accepted")
	}
	if _, _, err := BuildMultiDatasetGraph("p", map[string][]Chunk{"x": nil}, GraphOptions{}); err == nil {
		t.Fatal("empty dataset chunk list accepted")
	}
}

// Executing a built graph locally (interpreting specs) matches RunLocal —
// the graph lowering preserves semantics.
func TestGraphExecutionMatchesLocal(t *testing.T) {
	Register(metProc{})
	paths := writeTestDataset(t, 2, 300)
	chunks, _ := Partition("ds", fileInfos(paths, 300), 64)
	want, err := RunLocal(metProc{}, chunks)
	if err != nil {
		t.Fatal(err)
	}

	g, root, err := BuildGraph("met-test", chunks, GraphOptions{FanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dag.NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	results := map[dag.Key]*HistSet{}
	for !tr.AllDone() {
		keys := tr.NextReady(100)
		if len(keys) == 0 {
			t.Fatal("deadlock")
		}
		for _, k := range keys {
			task := g.Task(k)
			switch spec := task.Spec.(type) {
			case *ProcessSpec:
				p, err := Lookup(spec.Processor)
				if err != nil {
					t.Fatal(err)
				}
				hs, err := ProcessChunk(p, spec.Chunk)
				if err != nil {
					t.Fatal(err)
				}
				results[k] = hs
			case *AccumSpec:
				acc := NewHistSet()
				for _, d := range task.Deps {
					if err := acc.Add(results[d]); err != nil {
						t.Fatal(err)
					}
					delete(results, d)
				}
				results[k] = acc
			default:
				t.Fatalf("unknown spec %T", task.Spec)
			}
			if _, err := tr.Complete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := results[root]
	if got == nil {
		t.Fatal("no result at root")
	}
	hw, hg := want.H["met"], got.H["met"]
	if hw.Entries != hg.Entries {
		t.Fatalf("entries %d vs %d", hw.Entries, hg.Entries)
	}
	for i := range hw.Counts {
		if math.Abs(hw.Counts[i]-hg.Counts[i]) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", i, hw.Counts[i], hg.Counts[i])
		}
	}
}
