package coffea

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"hepvine/internal/hist"
)

// HistSet wire format, used to ship partial results between workers:
//
//	magic "HSET" | n u32 | per entry: nameLen u32, name, blobLen u32, hist blob
var histSetMagic = [4]byte{'H', 'S', 'E', 'T'}

// Marshal encodes the set with names sorted for determinism.
func (s *HistSet) Marshal() []byte {
	var b bytes.Buffer
	b.Write(histSetMagic[:])
	names := s.Names()
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(names)))
	b.Write(n4[:])
	for _, name := range names {
		binary.LittleEndian.PutUint32(n4[:], uint32(len(name)))
		b.Write(n4[:])
		b.WriteString(name)
		blob := s.H[name].Marshal()
		binary.LittleEndian.PutUint32(n4[:], uint32(len(blob)))
		b.Write(n4[:])
		b.Write(blob)
	}
	return b.Bytes()
}

// UnmarshalHistSet decodes a set produced by Marshal.
func UnmarshalHistSet(data []byte) (*HistSet, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != histSetMagic {
		return nil, fmt.Errorf("coffea: bad histset magic")
	}
	var n4 [4]byte
	if _, err := io.ReadFull(r, n4[:]); err != nil {
		return nil, fmt.Errorf("coffea: truncated histset: %w", err)
	}
	n := binary.LittleEndian.Uint32(n4[:])
	if n > 1<<16 {
		return nil, fmt.Errorf("coffea: implausible histset size %d", n)
	}
	s := NewHistSet()
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(r, n4[:]); err != nil {
			return nil, fmt.Errorf("coffea: truncated histset name len: %w", err)
		}
		nameLen := binary.LittleEndian.Uint32(n4[:])
		if nameLen > 1<<12 {
			return nil, fmt.Errorf("coffea: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("coffea: truncated histset name: %w", err)
		}
		if _, err := io.ReadFull(r, n4[:]); err != nil {
			return nil, fmt.Errorf("coffea: truncated histset blob len: %w", err)
		}
		blobLen := binary.LittleEndian.Uint32(n4[:])
		if blobLen > 1<<28 {
			return nil, fmt.Errorf("coffea: implausible blob length %d", blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, fmt.Errorf("coffea: truncated histset blob: %w", err)
		}
		h, err := hist.Unmarshal(blob)
		if err != nil {
			return nil, fmt.Errorf("coffea: histset entry %q: %w", name, err)
		}
		if _, dup := s.H[string(name)]; dup {
			return nil, fmt.Errorf("coffea: duplicate histset entry %q", name)
		}
		s.H[string(name)] = h
	}
	return s, nil
}
