package coffea

import (
	"fmt"
	"sort"

	"hepvine/internal/dag"
)

// This file is the analogue of the DaskVine bridge (§IV.C): it lowers a
// Coffea analysis (processor × chunks → accumulated HistSet) into a dag.Graph
// whose task payloads schedulers can execute. The reduction shape is a
// parameter: FanIn=0 reproduces the naive single-node reduction that
// overflowed workers in Fig. 11a; FanIn=2 the binary tree of Fig. 11b.

// ProcessSpec is the payload of a map task: run the named processor over
// one chunk.
type ProcessSpec struct {
	Processor string
	Chunk     Chunk
}

// AccumSpec is the payload of a reduce task: merge the HistSets produced by
// the task's dependencies.
type AccumSpec struct {
	Level int
}

// GraphOptions shape the lowered graph.
type GraphOptions struct {
	// FanIn bounds reduction fan-in; <2 means a single reduction task.
	FanIn int
	// KeyPrefix namespaces generated keys (default the processor name).
	KeyPrefix string
}

// BuildGraph lowers processor × chunks into a finalized graph and returns
// it with the key of the final accumulation task.
func BuildGraph(processor string, chunks []Chunk, opts GraphOptions) (*dag.Graph, dag.Key, error) {
	if len(chunks) == 0 {
		return nil, "", fmt.Errorf("coffea: BuildGraph with no chunks")
	}
	prefix := opts.KeyPrefix
	if prefix == "" {
		prefix = processor
	}
	g := dag.NewGraph()
	procKeys := make([]dag.Key, len(chunks))
	for i, c := range chunks {
		k := dag.Key(fmt.Sprintf("%s-proc-%d", prefix, c.Index))
		procKeys[i] = k
		if err := g.Add(&dag.Task{
			Key:      k,
			Category: "processor",
			Spec:     &ProcessSpec{Processor: processor, Chunk: c},
		}); err != nil {
			return nil, "", err
		}
		_ = i
	}
	root, err := dag.TreeReduce(g, prefix+"-acc", procKeys, opts.FanIn, func(level, index int, inputs []dag.Key) *dag.Task {
		return &dag.Task{Category: "accumulate", Spec: &AccumSpec{Level: level}}
	})
	if err != nil {
		return nil, "", err
	}
	if err := g.Finalize(); err != nil {
		return nil, "", err
	}
	return g, root, nil
}

// BuildMultiDatasetGraph lowers several datasets' chunk lists into one
// graph: each dataset reduces independently (with opts.FanIn), then a final
// cross-dataset accumulation merges the roots. This is the RS-TriPhoton
// shape — "a single dataset, of 20, is reduced via a single task" in the
// naive configuration of Fig. 11.
func BuildMultiDatasetGraph(processor string, datasets map[string][]Chunk, opts GraphOptions) (*dag.Graph, dag.Key, error) {
	if len(datasets) == 0 {
		return nil, "", fmt.Errorf("coffea: BuildMultiDatasetGraph with no datasets")
	}
	prefix := opts.KeyPrefix
	if prefix == "" {
		prefix = processor
	}
	g := dag.NewGraph()
	var rootKeys []dag.Key
	// Deterministic dataset order.
	names := make([]string, 0, len(datasets))
	for name := range datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		chunks := datasets[name]
		if len(chunks) == 0 {
			return nil, "", fmt.Errorf("coffea: dataset %q has no chunks", name)
		}
		procKeys := make([]dag.Key, len(chunks))
		for i, c := range chunks {
			k := dag.Key(fmt.Sprintf("%s-%s-proc-%d", prefix, name, c.Index))
			procKeys[i] = k
			if err := g.Add(&dag.Task{
				Key:      k,
				Category: "processor",
				Spec:     &ProcessSpec{Processor: processor, Chunk: c},
			}); err != nil {
				return nil, "", err
			}
		}
		root, err := dag.TreeReduce(g, fmt.Sprintf("%s-%s-acc", prefix, name), procKeys, opts.FanIn,
			func(level, index int, inputs []dag.Key) *dag.Task {
				return &dag.Task{Category: "accumulate", Spec: &AccumSpec{Level: level}}
			})
		if err != nil {
			return nil, "", err
		}
		rootKeys = append(rootKeys, root)
	}
	final, err := dag.TreeReduce(g, prefix+"-final", rootKeys, opts.FanIn,
		func(level, index int, inputs []dag.Key) *dag.Task {
			return &dag.Task{Category: "accumulate", Spec: &AccumSpec{Level: level}}
		})
	if err != nil {
		return nil, "", err
	}
	if len(rootKeys) == 1 {
		// TreeReduce returns the lone input unchanged; ensure a final task
		// exists so callers always find an accumulate root.
		final = rootKeys[0]
	}
	if err := g.Finalize(); err != nil {
		return nil, "", err
	}
	return g, final, nil
}
