package coffea

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
	"hepvine/internal/rootio"
)

func TestSelectionBasics(t *testing.T) {
	s := NewSelection(10)
	if err := s.AddFunc("even", func(i int) bool { return i%2 == 0 }); err != nil {
		t.Fatal(err)
	}
	if err := s.AddFunc("low", func(i int) bool { return i < 6 }); err != nil {
		t.Fatal(err)
	}
	n, err := s.Count("even")
	if err != nil || n != 5 {
		t.Fatalf("even = %d (%v)", n, err)
	}
	n, _ = s.Count("even", "low")
	if n != 3 { // 0, 2, 4
		t.Fatalf("even&low = %d", n)
	}
	all, _ := s.All()
	for i, p := range all {
		want := i%2 == 0 && i < 6
		if p != want {
			t.Fatalf("event %d: %v", i, p)
		}
	}
}

func TestSelectionValidation(t *testing.T) {
	s := NewSelection(4)
	if err := s.Add("short", []bool{true}); err == nil {
		t.Fatal("wrong length accepted")
	}
	s.Add("a", make([]bool, 4))
	if err := s.Add("a", make([]bool, 4)); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := s.Count("missing"); err == nil {
		t.Fatal("unknown cut accepted")
	}
}

func TestCutflowMonotonic(t *testing.T) {
	check := func(seed uint16) bool {
		rng := randx.New(uint64(seed) + 1)
		n := rng.Intn(100) + 1
		s := NewSelection(n)
		for c := 0; c < 4; c++ {
			name := string(rune('a' + c))
			flags := make([]bool, n)
			for i := range flags {
				flags[i] = rng.Bool(0.7)
			}
			if err := s.Add(name, flags); err != nil {
				return false
			}
		}
		rows, err := s.Cutflow()
		if err != nil {
			return false
		}
		if rows[0].Pass != n {
			return false
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Pass > rows[i-1].Pass {
				return false // cutflow must be non-increasing
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCutflowHistAccumulates(t *testing.T) {
	mk := func(n, mod int) *Selection {
		s := NewSelection(n)
		s.AddFunc("cut1", func(i int) bool { return i%mod == 0 })
		s.AddFunc("cut2", func(i int) bool { return i < n/2 })
		return s
	}
	h1, err := mk(100, 2).CutflowHist()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := mk(60, 3).CutflowHist()
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Add(h2); err != nil {
		t.Fatal(err)
	}
	// Bin 0 = total events across chunks.
	if h1.At(0) != 160 {
		t.Fatalf("total = %v", h1.At(0))
	}
	// Bin 1 = pass cut1: 50 + 20.
	if h1.At(1) != 70 {
		t.Fatalf("cut1 = %v", h1.At(1))
	}
}

func TestMergeCutflowRows(t *testing.T) {
	a := []CutflowRow{{"(all events)", 100}, {"pt", 60}, {"eta", 40}}
	b := []CutflowRow{{"(all events)", 50}, {"pt", 30}, {"eta", 10}}
	merged, err := MergeCutflowRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged[0].Pass != 150 || merged[2].Pass != 50 {
		t.Fatalf("merged = %v", merged)
	}
	// Original untouched.
	if a[0].Pass != 100 {
		t.Fatal("merge mutated input")
	}
	bad := []CutflowRow{{"(all events)", 1}, {"other", 1}, {"eta", 1}}
	if _, err := MergeCutflowRows(a, bad); err == nil {
		t.Fatal("mismatched cutflows merged")
	}
	if _, err := MergeCutflowRows(a, a[:2]); err == nil {
		t.Fatal("length mismatch merged")
	}
}

func TestFormatCutflow(t *testing.T) {
	rows := []CutflowRow{{"(all events)", 200}, {"trigger", 100}, {"photons", 25}}
	out := FormatCutflow(rows)
	if !strings.Contains(out, "trigger") || !strings.Contains(out, "50.0%") {
		t.Fatalf("format missing content:\n%s", out)
	}
	if !strings.Contains(out, "12.5%") { // 25/200 absolute
		t.Fatalf("absolute efficiency missing:\n%s", out)
	}
	if FormatCutflow(nil) != "" {
		t.Fatal("empty cutflow should render empty")
	}
}

func TestSelectionOnRealEvents(t *testing.T) {
	paths := writeTestDataset(t, 1, 500)
	rd, closer, err := openFirst(paths)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	ev, err := NewNanoEvents(rd, Chunk{Dataset: "ds", Path: paths[0], Lo: 0, Hi: 500})
	if err != nil {
		t.Fatal(err)
	}
	met, err := ev.Flat("MET_pt")
	if err != nil {
		t.Fatal(err)
	}
	nJet, err := ev.Flat("nJet")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSelection(int(ev.Len()))
	s.AddFunc("met>20", func(i int) bool { return met[i] > 20 })
	s.AddFunc("njet>=2", func(i int) bool { return nJet[i] >= 2 })
	rows, err := s.Cutflow()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Pass != 500 {
		t.Fatalf("base = %d", rows[0].Pass)
	}
	if rows[2].Pass <= 0 || rows[2].Pass >= 500 {
		t.Fatalf("final cut pass = %d, expected a real selection", rows[2].Pass)
	}
}

// openFirst opens the first dataset file, a tiny helper for selection tests.
func openFirst(paths []string) (*rootio.Reader, io.Closer, error) {
	return rootio.Open(paths[0])
}
