package coffea

import (
	"path/filepath"
	"testing"

	"hepvine/internal/rootio"
)

func sampleFileset() *Fileset {
	fs := NewFileset()
	fs.Add("dsB", FileInfo{Path: "/data/b1.vrt", NEvents: 100})
	fs.Add("dsA", FileInfo{Path: "/data/a1.vrt", NEvents: 250})
	fs.Add("dsA", FileInfo{Path: "/data/a2.vrt", NEvents: 250})
	return fs
}

func TestFilesetBasics(t *testing.T) {
	fs := sampleFileset()
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
	names := fs.Names()
	if len(names) != 2 || names[0] != "dsA" || names[1] != "dsB" {
		t.Fatalf("names = %v", names)
	}
	if fs.TotalEvents() != 600 {
		t.Fatalf("total = %d", fs.TotalEvents())
	}
}

func TestFilesetValidation(t *testing.T) {
	if err := NewFileset().Validate(); err == nil {
		t.Fatal("empty fileset accepted")
	}
	fs := NewFileset()
	fs.Datasets["x"] = nil
	if err := fs.Validate(); err == nil {
		t.Fatal("empty dataset accepted")
	}
	fs = NewFileset()
	fs.Add("x", FileInfo{Path: "p", NEvents: 0})
	if err := fs.Validate(); err == nil {
		t.Fatal("zero-event file accepted")
	}
	fs = NewFileset()
	fs.Add("x", FileInfo{Path: "", NEvents: 5})
	if err := fs.Validate(); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestFilesetChunksGlobalIndices(t *testing.T) {
	fs := sampleFileset()
	chunks, err := fs.Chunks(100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	total := int64(0)
	for _, cs := range chunks {
		for _, c := range cs {
			if seen[c.Index] {
				t.Fatalf("duplicate chunk index %d", c.Index)
			}
			seen[c.Index] = true
			total += c.NEvents()
		}
	}
	if total != 600 {
		t.Fatalf("chunk events = %d", total)
	}
	// 250→3 chunks, 250→3, 100→1 ⇒ 7 indices 0..6.
	if len(seen) != 7 {
		t.Fatalf("chunks = %d", len(seen))
	}
}

func TestFilesetSaveLoadRoundTrip(t *testing.T) {
	fs := sampleFileset()
	path := filepath.Join(t.TempDir(), "fileset.json")
	if err := fs.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFileset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEvents() != fs.TotalEvents() || len(got.Names()) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := LoadFileset(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestScanDirFileset(t *testing.T) {
	dir := t.TempDir()
	if _, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "scan", Files: 3, EventsPerFile: 200, Gen: rootio.GenOptions{Seed: 2},
	}); err != nil {
		t.Fatal(err)
	}
	fs, err := ScanDirFileset("scanned", dir)
	if err != nil {
		t.Fatal(err)
	}
	if fs.TotalEvents() != 600 {
		t.Fatalf("scanned %d events", fs.TotalEvents())
	}
	if len(fs.Datasets["scanned"]) != 3 {
		t.Fatalf("scanned %d files", len(fs.Datasets["scanned"]))
	}
	if _, err := ScanDirFileset("x", t.TempDir()); err == nil {
		t.Fatal("empty dir scanned")
	}
}
