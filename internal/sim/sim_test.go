package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEngine()
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			e.Schedule(time.Second, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(0)
	if hits != 5 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != 4*time.Second {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(time.Second, func() { ran = true })
	ev.Cancel()
	e.Run(0)
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(10*time.Second, func() { ran = true })
	end := e.Run(5 * time.Second)
	if ran {
		t.Fatal("event past horizon ran")
	}
	if end != 5*time.Second {
		t.Fatalf("stopped at %v", end)
	}
	// Resuming past the horizon executes it.
	e.Run(0)
	if !ran {
		t.Fatal("event did not run after resume")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(0, func() bool { return count >= 4 })
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != time.Second {
				t.Fatalf("negative delay ran at %v", e.Now())
			}
		})
	})
	e.Run(0)
}

func TestScheduleAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {
		e.ScheduleAt(time.Second, func() {
			if e.Now() < 2*time.Second {
				t.Fatal("past-scheduled event ran before now")
			}
		})
	})
	e.Run(0)
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 {
		t.Fatalf("Pending after run = %d", e.Pending())
	}
}

func TestManyEvents(t *testing.T) {
	e := NewEngine()
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(time.Duration(n-i)*time.Millisecond, func() { count++ })
	}
	e.Run(0)
	if count != n {
		t.Fatalf("count = %d", count)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on reentrant Run")
			}
		}()
		e.Run(0)
	})
	e.Run(0)
}
