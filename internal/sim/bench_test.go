package sim

import (
	"testing"
	"time"
)

func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run(0)
}
