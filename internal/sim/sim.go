// Package sim implements the deterministic discrete-event simulation kernel
// that underpins the cluster-scale experiments.
//
// The paper evaluates on up to 600 12-core HTCondor workers (7200 cores);
// this kernel lets the same scheduling logic run against a virtual clock so
// all tables and figures can be regenerated on one machine. The engine is a
// classic event-heap design: callbacks are scheduled at absolute virtual
// times and executed in time order; ties are broken by insertion sequence so
// runs are fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Cancelling an event prevents its callback
// from firing but leaves it in the heap until popped.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the event's callback from running.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

// At reports the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use: the whole simulation runs single-threaded against the
// virtual clock, which is what makes it deterministic.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (run at the current time, after already-pending events at that
// time). The returned Event may be cancelled.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time. Times in the past
// are clamped to the present.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Stop makes Run return after the current event's callback completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of events in the heap, including cancelled
// events that have not yet been popped.
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events in time order until the heap is empty, Stop is called,
// or the clock would pass horizon (a zero horizon means no limit). It
// reports the virtual time at which it stopped.
func (e *Engine) Run(horizon time.Duration) time.Duration {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.events)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v < %v", ev.at, e.now))
		}
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// RunUntil executes events until pred() reports true (checked after every
// event), the heap drains, or the clock passes horizon.
func (e *Engine) RunUntil(horizon time.Duration, pred func() bool) time.Duration {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.events) > 0 && !e.stopped {
		if pred != nil && pred() {
			return e.now
		}
		ev := e.events[0]
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.events)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	return e.now
}
