// Package foreman implements the subordinate-manager tier of a federated
// cluster. A Foreman owns a full local vine.Manager — its own worker
// pool, replica table, scheduler, and (optionally) journal — and an
// uplink to the root manager over the ordinary vine protocol. The root
// leases task batches downward; the foreman runs them through its local
// manager exactly as a flat cluster would and reports aggregated
// completions, replica addresses, and backlog upward.
//
// Cross-shard inputs arrive as peer-transfer tickets: the root names a
// source address in another shard (or a flat worker, or its own store)
// and the foreman registers it as an external replica, so the bytes flow
// worker-to-worker without touching the root's NIC. Content-addressed
// output names make re-execution after any shard failure bit-identical,
// which is what lets the recovery ladder climb across shard boundaries.
package foreman

import (
	"fmt"
	"sync"
	"time"

	"hepvine/internal/params"
	"hepvine/internal/pool"
	"hepvine/internal/vine"
)

// Options configures one foreman.
type Options struct {
	// Name identifies the shard to the root (default "foreman").
	Name string
	// RootAddr is the root manager's address. RootFallbacks (standby
	// managers from an HA deployment) are tried in order when the primary
	// dies; the uplink redials through the full list.
	RootAddr      string
	RootFallbacks []string
	// Cores and Memory advertise the shard's aggregate capacity. The root
	// reserves against these like worker capacity, so they throttle how
	// far ahead it leases.
	Cores  int
	Memory int64
	// ReportEvery is the upward report cadence (default
	// params.DefaultForemanReportEvery).
	ReportEvery time.Duration
	// Local passes options through to the shard's local manager
	// (scheduler, journal, cache dir, libraries, ...).
	Local []vine.Option
	// Uplink passes options to the root connection (WithReconnect,
	// WithRecorder, ...).
	Uplink []vine.Option
	// Autoscale, when non-nil, runs a local worker pool inside the shard:
	// the foreman starts a pool.Autoscaler over its local manager with
	// this config, using WorkerOptions for each launched worker.
	Autoscale     *pool.Config
	WorkerOptions func(name string) []vine.Option
}

// Foreman is one shard of a federated cluster.
type Foreman struct {
	name   string
	local  *vine.Manager
	link   *vine.ForemanLink
	scaler *pool.Autoscaler

	mu      sync.Mutex
	results []vine.LeaseResult
	backlog int
	leased  int
	done    int
	stopped bool
	stopC   chan struct{}
	wg      sync.WaitGroup
}

// New starts a foreman: local manager first (so the uplink's initial
// inventory and advertised capacity are real), then the root connection,
// then the report loop.
func New(opts Options) (*Foreman, error) {
	if opts.Name == "" {
		opts.Name = "foreman"
	}
	if opts.ReportEvery <= 0 {
		opts.ReportEvery = params.DefaultForemanReportEvery
	}
	local, err := vine.NewManager(append([]vine.Option{vine.WithName(opts.Name)}, opts.Local...)...)
	if err != nil {
		return nil, fmt.Errorf("foreman %s: local manager: %w", opts.Name, err)
	}
	f := &Foreman{
		name:  opts.Name,
		local: local,
		stopC: make(chan struct{}),
	}
	if opts.Autoscale != nil {
		workerOpts := opts.WorkerOptions
		if workerOpts == nil {
			workerOpts = func(name string) []vine.Option { return []vine.Option{vine.WithName(name)} }
		}
		prov := pool.NewLocalProvider(local.Addr(), workerOpts)
		f.scaler = pool.NewAutoscaler(local, prov, *opts.Autoscale)
		f.scaler.Start()
	}
	uplink := append([]vine.Option{vine.WithManagers(opts.RootFallbacks...)}, opts.Uplink...)
	link, err := vine.DialForeman(opts.RootAddr, vine.ForemanHello{
		Name:   opts.Name,
		Cores:  opts.Cores,
		Memory: opts.Memory,
	}, vine.ForemanCallbacks{
		OnLease:   f.onLease,
		OnUnlink:  f.onUnlink,
		OnKill:    f.onKill,
		Inventory: local.ReplicaInventory,
	}, uplink...)
	if err != nil {
		if f.scaler != nil {
			f.scaler.Stop()
		}
		local.Stop()
		return nil, fmt.Errorf("foreman %s: uplink: %w", opts.Name, err)
	}
	f.link = link
	f.wg.Add(1)
	go f.reportLoop(opts.ReportEvery)
	return f, nil
}

// LocalAddr is the shard-local manager address workers dial.
func (f *Foreman) LocalAddr() string { return f.local.Addr() }

// Local exposes the shard's manager for tests and metric scrapes.
func (f *Foreman) Local() *vine.Manager { return f.local }

// Name reports the shard name the root sees.
func (f *Foreman) Name() string { return f.name }

// Counts reports leases accepted and completions reported so far.
func (f *Foreman) Counts() (leased, done int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leased, f.done
}

// onLease registers each ticket as an external replica, submits the task
// to the local manager (shared submission dedupes a straggler re-lease of
// a spec already running here), and collects the completion
// asynchronously.
func (f *Foreman) onLease(leases []vine.LeasedTask) {
	for _, lt := range leases {
		lt := lt
		for _, tk := range lt.Tickets {
			f.local.AddExternalReplica(tk.CacheName, tk.Size, tk.Addr)
		}
		h, _, err := f.local.SubmitShared(lt.Task)
		if err != nil {
			f.finish(vine.LeaseResult{TaskID: lt.TaskID, Err: err.Error()})
			continue
		}
		// The shard derives output cachenames from the same content hash the
		// root used; a mismatch means the lease decoded into a different
		// definition and its outputs would be orphans.
		bad := false
		for name, want := range lt.Outputs {
			if got, ok := h.Output(name); !ok || got != want {
				f.finish(vine.LeaseResult{TaskID: lt.TaskID,
					Err: fmt.Sprintf("foreman: output %s cachename mismatch (%s != %s)", name, got, want)})
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		f.mu.Lock()
		f.leased++
		f.backlog++
		f.mu.Unlock()
		f.wg.Add(1)
		go f.collect(lt, h)
	}
}

// collect waits out one lease and folds it into the next report.
func (f *Foreman) collect(lt vine.LeasedTask, h *vine.TaskHandle) {
	defer f.wg.Done()
	select {
	case <-h.Done():
	case <-f.stopC:
		return
	}
	res := vine.LeaseResult{
		TaskID:     lt.TaskID,
		ExecNanos:  h.ExecTime().Nanoseconds(),
		SetupNanos: h.SetupTime().Nanoseconds(),
	}
	if err := h.Err(); err != nil {
		res.Err = err.Error()
		// Name the ticketed sources that turned out dead or corrupt, so the
		// root purges its replica table and re-runs producers — the lineage
		// ladder climbing across the shard boundary.
		for _, tk := range lt.Tickets {
			quarantined := false
			for _, bad := range f.local.ExternalQuarantined(tk.CacheName) {
				if bad == tk.Addr {
					quarantined = true
					break
				}
			}
			if quarantined {
				res.Lost = append(res.Lost, vine.LostReplica{CacheName: string(tk.CacheName), Addr: tk.Addr, Corrupt: true})
			} else if !f.local.HasSource(tk.CacheName) {
				res.Lost = append(res.Lost, vine.LostReplica{CacheName: string(tk.CacheName), Addr: tk.Addr})
			}
		}
	} else {
		res.OK = true
		res.OutputSizes = make(map[string]int64, len(lt.Outputs))
		res.OutputAddrs = make(map[string]string, len(lt.Outputs))
		for name, cn := range lt.Outputs {
			_ = name
			if addr, size, ok := f.local.ReplicaInfo(cn); ok {
				res.OutputSizes[string(cn)] = size
				res.OutputAddrs[string(cn)] = addr
			}
		}
		// Ticketed inputs the shard now caches are replicas the root can
		// ticket to other shards — report their local addresses too.
		for _, tk := range lt.Tickets {
			if addr, size, ok := f.local.ReplicaInfo(tk.CacheName); ok {
				if res.InputAddrs == nil {
					res.InputAddrs = make(map[string]string)
					res.InputSizes = make(map[string]int64)
				}
				res.InputAddrs[string(tk.CacheName)] = addr
				res.InputSizes[string(tk.CacheName)] = size
			}
		}
	}
	f.finish(res)
}

func (f *Foreman) finish(res vine.LeaseResult) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stopped {
		return
	}
	f.results = append(f.results, res)
	f.done++
	if f.backlog > 0 {
		f.backlog--
	}
}

// onUnlink mirrors a cluster-wide unlink into the shard: the local
// manager unlinks the file from its own workers and forgets its external
// sources, so quarantined bytes cannot resurface from this shard.
func (f *Foreman) onUnlink(cn vine.CacheName) {
	f.local.Unlink(cn)
}

func (f *Foreman) onKill() {
	go f.Stop()
}

// reportLoop ships accumulated completions and the current backlog at
// the configured cadence. An empty report is still sent when the backlog
// changed, keeping the root's shard pressure view fresh.
func (f *Foreman) reportLoop(every time.Duration) {
	defer f.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	lastBacklog := -1
	for {
		select {
		case <-f.stopC:
			return
		case <-tick.C:
		}
		f.mu.Lock()
		batch := f.results
		f.results = nil
		backlog := f.backlog
		f.mu.Unlock()
		if len(batch) == 0 && backlog == lastBacklog {
			continue
		}
		lastBacklog = backlog
		f.link.Report(batch, backlog)
	}
}

// Stop shuts the shard down in an orderly way: uplink first (so the root
// immediately re-leases this shard's in-flight work elsewhere), then the
// pool, then the local manager.
func (f *Foreman) Stop() {
	f.shutdown(false)
}

// Crash kills the shard abruptly — uplink torn first so no completion
// races out, then the local manager crashed mid-flight. The root sees a
// dead foreman: leases requeue, shard replicas vanish, siblings take
// over. For chaos tests.
func (f *Foreman) Crash() {
	f.shutdown(true)
}

func (f *Foreman) shutdown(crash bool) {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	close(f.stopC)
	f.mu.Unlock()
	f.link.Close()
	if f.scaler != nil && !crash {
		f.scaler.Stop()
	}
	if crash {
		f.local.Crash()
	} else {
		f.local.Stop()
	}
	f.wg.Wait()
}
