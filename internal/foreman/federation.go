package foreman

import (
	"fmt"
	"time"

	"hepvine/internal/params"
	"hepvine/internal/sched"
	"hepvine/internal/vine"
)

// LocalConfig sizes an in-process federation: one root manager, Foremen
// shards, and WorkersPerForeman workers in each shard. Zero values take
// the pinned defaults.
type LocalConfig struct {
	Foremen           int
	WorkersPerForeman int
	CoresPerWorker    int
	// ReportEvery overrides the upward report cadence (tests shrink it).
	ReportEvery time.Duration
	// LeaseAhead multiplies the advertised shard capacity, letting the
	// root lease ahead of the real core count so each shard keeps a local
	// queue and the report cadence never leaves it idle. 0/1 advertises
	// the exact core count (strictest placement; cross-shard spillover
	// happens as soon as real cores fill).
	LeaseAhead int
	// RootOptions extend the root manager (a federate scheduling policy is
	// installed by default; later options win, so callers can override).
	RootOptions []vine.Option
	// LocalOptions extends every shard's local manager.
	LocalOptions func(shard int) []vine.Option
	// WorkerOptions extends every worker. Workers are always given the
	// sibling shard addresses as fallback managers plus a redial budget,
	// so they re-home when their foreman dies.
	WorkerOptions func(shard, n int) []vine.Option
}

// LocalFederation is a loopback shard tree for tests, benchmarks, and
// vinerun: every tier in one process, all traffic over real TCP.
type LocalFederation struct {
	Root    *vine.Manager
	Foremen []*Foreman
	Workers [][]*vine.Worker
}

// NewLocalFederation builds the tree bottom-tier-last: root, then every
// foreman (so each registers its uplink), then the workers — each dialing
// its own shard first with every sibling shard as a re-home fallback.
func NewLocalFederation(cfg LocalConfig) (*LocalFederation, error) {
	if cfg.Foremen <= 0 {
		cfg.Foremen = params.DefaultForemanFanout
	}
	if cfg.WorkersPerForeman <= 0 {
		cfg.WorkersPerForeman = 2
	}
	if cfg.CoresPerWorker <= 0 {
		cfg.CoresPerWorker = 2
	}
	fed := &LocalFederation{}
	root, err := vine.NewManager(append([]vine.Option{
		vine.WithName("root"),
		vine.WithScheduler(sched.Federate()),
	}, cfg.RootOptions...)...)
	if err != nil {
		return nil, fmt.Errorf("federation: root: %w", err)
	}
	fed.Root = root
	shardCores := cfg.WorkersPerForeman * cfg.CoresPerWorker
	if cfg.LeaseAhead > 1 {
		shardCores *= cfg.LeaseAhead
	}
	for i := 0; i < cfg.Foremen; i++ {
		var local []vine.Option
		if cfg.LocalOptions != nil {
			local = cfg.LocalOptions(i)
		}
		fm, err := New(Options{
			Name:        fmt.Sprintf("shard-%d", i),
			RootAddr:    root.Addr(),
			Cores:       shardCores,
			ReportEvery: cfg.ReportEvery,
			Local:       local,
		})
		if err != nil {
			fed.Stop()
			return nil, err
		}
		fed.Foremen = append(fed.Foremen, fm)
	}
	for i, fm := range fed.Foremen {
		var ws []*vine.Worker
		// Sibling shards, in rotation starting after this one, are the
		// re-home targets when this foreman dies.
		var siblings []string
		for k := 1; k < len(fed.Foremen); k++ {
			siblings = append(siblings, fed.Foremen[(i+k)%len(fed.Foremen)].LocalAddr())
		}
		for n := 0; n < cfg.WorkersPerForeman; n++ {
			opts := []vine.Option{
				vine.WithName(fmt.Sprintf("shard-%d-w%d", i, n)),
				vine.WithCores(cfg.CoresPerWorker),
				vine.WithManagers(siblings...),
				vine.WithReconnect(40, 25*time.Millisecond),
			}
			if cfg.WorkerOptions != nil {
				opts = append(opts, cfg.WorkerOptions(i, n)...)
			}
			w, err := vine.NewWorker(fm.LocalAddr(), opts...)
			if err != nil {
				fed.Stop()
				return nil, fmt.Errorf("federation: shard %d worker %d: %w", i, n, err)
			}
			ws = append(ws, w)
		}
		fed.Workers = append(fed.Workers, ws)
	}
	return fed, nil
}

// Stop tears the federation down leaves-first.
func (f *LocalFederation) Stop() {
	for _, ws := range f.Workers {
		for _, w := range ws {
			if w != nil {
				w.Stop()
			}
		}
	}
	for _, fm := range f.Foremen {
		if fm != nil {
			fm.Stop()
		}
	}
	if f.Root != nil {
		f.Root.Stop()
	}
}
