package foreman

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"hepvine/internal/vine"
)

func registerFedLib(t *testing.T) {
	t.Helper()
	vine.MustRegisterLibrary(&vine.Library{
		Name: "fedlib",
		Funcs: map[string]vine.Function{
			"echo": func(c *vine.Call) error {
				c.SetOutput("out", append([]byte("echo:"), c.Args...))
				return nil
			},
			"slowup": func(c *vine.Call) error {
				in, err := c.Input("in")
				if err != nil {
					return err
				}
				time.Sleep(20 * time.Millisecond)
				c.SetOutput("out", append(bytes.ToUpper(in), c.Args...))
				return nil
			},
		},
	})
}

func newFed(t *testing.T, foremen, workersPer int, rootOpts ...vine.Option) *LocalFederation {
	t.Helper()
	registerFedLib(t)
	fed, err := NewLocalFederation(LocalConfig{
		Foremen:           foremen,
		WorkersPerForeman: workersPer,
		CoresPerWorker:    2,
		ReportEvery:       15 * time.Millisecond,
		RootOptions: append([]vine.Option{
			vine.WithMaxRetries(10),
			vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		}, rootOpts...),
		LocalOptions: func(int) []vine.Option {
			return []vine.Option{
				vine.WithPeerTransfers(true),
				vine.WithLibrary("fedlib", true),
				vine.WithMaxRetries(10),
				vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
			}
		},
		WorkerOptions: func(int, int) []vine.Option {
			return []vine.Option{vine.WithCacheDir(t.TempDir())}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fed.Stop)
	if err := fed.Root.WaitForWorkers(foremen, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return fed
}

// TestFederationEcho drives one task down the full tree: root lease →
// foreman → local scheduler → worker → report → root completion, with
// the output fetched back through the shard's transfer address.
func TestFederationEcho(t *testing.T) {
	fed := newFed(t, 2, 1)
	h, err := fed.Root.SubmitFunc(vine.ModeTask, "fedlib", "echo", []byte("hi"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cn, _ := h.Output("out")
	data, err := fed.Root.FetchBytes(cn)
	if err != nil {
		t.Fatalf("fetching output across shard boundary: %v", err)
	}
	if string(data) != "echo:hi" {
		t.Fatalf("got %q", data)
	}
	st := fed.Root.FederationStats()
	if st.Foremen != 2 || st.LeaseGrants < 1 || st.LeaseBatches < 1 {
		t.Fatalf("federation stats: %+v", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("shards: %+v", st.Shards)
	}
	done := 0
	for _, sh := range st.Shards {
		done += sh.TasksDone
	}
	if done != 1 {
		t.Fatalf("per-shard done counts: %+v", st.Shards)
	}
}

// TestFederationCrossShardTickets pins the data-plane property: a
// consumer leased to the shard that does not hold its input gets a
// peer-transfer ticket and pulls the bytes worker-to-worker, visible as
// cross-shard transfer accounting at the root.
func TestFederationCrossShardTickets(t *testing.T) {
	fed := newFed(t, 2, 1)
	seed, err := fed.Root.SubmitFunc(vine.ModeTask, "fedlib", "echo", []byte("seed"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	seedCN, _ := seed.Output("out")

	// Six 1-core consumers of the seed against 2+2 shard cores: the first
	// scheduling pass must spill onto the shard that lacks the seed.
	var hs []*vine.TaskHandle
	for i := 0; i < 6; i++ {
		h, err := fed.Root.Submit(vine.Task{
			Mode: vine.ModeTask, Library: "fedlib", Func: "slowup",
			Args:    []byte(fmt.Sprintf("-%d", i)),
			Inputs:  []vine.FileRef{{Name: "in", CacheName: seedCN}},
			Outputs: []string{"out"},
			Cores:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for i, h := range hs {
		if err := h.Wait(15 * time.Second); err != nil {
			t.Fatalf("consumer %d: %v", i, err)
		}
		cn, _ := h.Output("out")
		data, err := fed.Root.FetchBytes(cn)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("ECHO:SEED-%d", i); string(data) != want {
			t.Fatalf("consumer %d: got %q want %q", i, data, want)
		}
	}
	st := fed.Root.FederationStats()
	if st.CrossShard < 1 {
		t.Fatalf("no cross-shard tickets brokered: %+v", st)
	}
	if st.CrossShardBytes < 1 {
		t.Fatalf("cross-shard bytes not accounted: %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.TasksDone == 0 {
			t.Fatalf("shard %s ran nothing — no spillover: %+v", sh.Name, st.Shards)
		}
	}
}

// TestFederationForemanCrashRehome kills one of two foremen mid-batch:
// its in-flight leases must replay onto the surviving shard, its workers
// must re-home there, and every task must still finish correctly.
func TestFederationForemanCrashRehome(t *testing.T) {
	fed := newFed(t, 2, 1)
	seed, err := fed.Root.SubmitFunc(vine.ModeTask, "fedlib", "echo", []byte("x"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	seedCN, _ := seed.Output("out")

	var hs []*vine.TaskHandle
	for i := 0; i < 10; i++ {
		h, err := fed.Root.Submit(vine.Task{
			Mode: vine.ModeTask, Library: "fedlib", Func: "slowup",
			Args:    []byte(fmt.Sprintf("!%d", i)),
			Inputs:  []vine.FileRef{{Name: "in", CacheName: seedCN}},
			Outputs: []string{"out"},
			Cores:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	// Wait until the doomed shard has accepted work, then kill it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if leased, _ := fed.Foremen[0].Counts(); leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard-0 never accepted a lease")
		}
		time.Sleep(time.Millisecond)
	}
	fed.Foremen[0].Crash()

	for i, h := range hs {
		if err := h.Wait(30 * time.Second); err != nil {
			t.Fatalf("task %d did not survive foreman crash: %v", i, err)
		}
		cn, _ := h.Output("out")
		data, err := fed.Root.FetchBytes(cn)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("ECHO:X!%d", i); string(data) != want {
			t.Fatalf("task %d: got %q want %q", i, data, want)
		}
	}
	st := fed.Root.FederationStats()
	if st.Foremen != 1 {
		t.Fatalf("live foremen after crash = %d: %+v", st.Foremen, st)
	}
	alive := 0
	for _, sh := range st.Shards {
		if sh.Alive {
			alive++
			if sh.TasksDone == 0 {
				t.Fatalf("survivor shard ran nothing: %+v", st.Shards)
			}
		}
	}
	if alive != 1 {
		t.Fatalf("shard snapshot: %+v", st.Shards)
	}
}
