package bench

import (
	"fmt"
	"io"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/vinesim"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Workflow timeline, first 300s of each stack (running / waiting tasks)",
		Paper: "stack 1 long accumulation tail; stack 3 oscillates on dispatch; stack 4 drains fastest",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Worker occupancy: stack 3 vs stack 4 at 20 and 200 workers",
		Paper: "stack 3 keeps 20 workers busy but starves 200; stack 4 keeps 200 busy",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "DV3-Huge: 185k tasks on 600 12-core workers (7200 cores)",
		Paper: "10k initially-executable tasks; high concurrency until the final reduction",
		Run:   runFig15,
	})
}

func runFig12(opts Options, w io.Writer) error {
	window := time.Duration(float64(300*time.Second) * opts.Scale)
	if window < 30*time.Second {
		window = 30 * time.Second
	}
	stride := window / 10

	for s := 1; s <= 4; s++ {
		wl, workers := dv3LargeAt(opts)
		cfg := vinesim.StackConfig(s, workers, 12, opts.Seed)
		res := vinesim.Run(cfg, wl)
		if !res.Completed {
			return fmt.Errorf("stack %d failed: %s", s, res.Failure)
		}
		if err := writeTimelineCSV(opts, fmt.Sprintf("fig12_stack%d", s), res); err != nil {
			return err
		}
		fmt.Fprintf(w, "   Stack %d (total runtime %s):\n", s, secs(res.Runtime))
		fmt.Fprintf(w, "   %10s %10s %10s %10s\n", "t", "running", "waiting", "done")
		next := time.Duration(0)
		for _, sm := range res.Samples {
			if sm.T > window {
				break
			}
			if sm.T >= next {
				fmt.Fprintf(w, "   %10s %10d %10d %10d\n", secs(sm.T), sm.Running, sm.Waiting, sm.Done)
				next += stride
			}
		}
	}
	return nil
}

func runFig13(opts Options, w io.Writer) error {
	scales := []int{opts.scaled(20, 2), opts.scaled(200, 4)}
	row(w, "Configuration", "Runtime", "Utilization", "Throughput")
	for _, stack := range []int{3, 4} {
		for _, workers := range scales {
			wl := apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed)
			cfg := vinesim.StackConfig(stack, workers, 12, opts.Seed)
			cfg.RecordPerWorker = true
			cfg.RecordTrace = opts.CSVDir != ""
			res := vinesim.Run(cfg, wl)
			if !res.Completed {
				return fmt.Errorf("stack %d @ %d workers failed: %s", stack, workers, res.Failure)
			}
			// Gantt-level export: one row per task execution, Fig. 13's
			// raw "colored bars".
			if f, err := opts.csvFile(fmt.Sprintf("fig13_stack%d_%dworkers", stack, workers)); err != nil {
				return err
			} else if f != nil {
				fmt.Fprintln(f, "key,worker,attempt,dispatch_s,start_s,end_s")
				for _, ev := range res.Trace {
					fmt.Fprintf(f, "%s,%d,%d,%.3f,%.3f,%.3f\n",
						ev.Key, ev.Worker, ev.Attempt,
						ev.Dispatch.Seconds(), ev.Start.Seconds(), ev.End.Seconds())
				}
				f.Close()
			}
			row(w, fmt.Sprintf("stack %d, %d workers", stack, workers),
				secs(res.Runtime),
				fmt.Sprintf("%.0f%%", res.Utilization()*100),
				fmt.Sprintf("%.0f tasks/s", res.Throughput()))
		}
	}
	fmt.Fprintln(w, "   (stack 4's gain concentrates at the larger pool: dispatch no longer starves workers)")
	return nil
}

func runFig15(opts Options, w io.Writer) error {
	wl := apps.DV3Scaled(apps.DV3Huge, opts.Scale, opts.Seed)
	workers := opts.scaled(600, 4)
	cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
	res := vinesim.Run(cfg, wl)
	if !res.Completed {
		return fmt.Errorf("DV3-Huge failed: %s", res.Failure)
	}
	if err := writeTimelineCSV(opts, "fig15_dv3huge", res); err != nil {
		return err
	}
	fmt.Fprintf(w, "   %d tasks on %d workers (%d cores): runtime %s, utilization %.0f%%\n",
		wl.TaskCount(), workers, workers*12, secs(res.Runtime), res.Utilization()*100)

	// Concurrency timeline, 12 rows.
	maxRunning := 0
	for _, sm := range res.Samples {
		if sm.Running > maxRunning {
			maxRunning = sm.Running
		}
	}
	step := len(res.Samples) / 12
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(w, "   %10s %10s  concurrency\n", "t", "running")
	for i := 0; i < len(res.Samples); i += step {
		sm := res.Samples[i]
		fmt.Fprintf(w, "   %10s %10d  %s\n", secs(sm.T), sm.Running, bar(float64(sm.Running), float64(maxRunning), 40))
	}
	fmt.Fprintf(w, "   peak concurrency %d of %d cores\n", maxRunning, workers*12)
	return nil
}

// writeTimelineCSV exports a run's running/waiting/done series.
func writeTimelineCSV(opts Options, name string, res *vinesim.Result) error {
	f, err := opts.csvFile(name)
	if err != nil || f == nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "t_seconds,running,waiting,done")
	for _, sm := range res.Samples {
		fmt.Fprintf(f, "%.0f,%d,%d,%d\n", sm.T.Seconds(), sm.Running, sm.Waiting, sm.Done)
	}
	return nil
}
