package bench

import (
	"fmt"
	"io"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/obs"
	"hepvine/internal/vinesim"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Workflow timeline, first 300s of each stack (running / waiting tasks)",
		Paper: "stack 1 long accumulation tail; stack 3 oscillates on dispatch; stack 4 drains fastest",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Worker occupancy: stack 3 vs stack 4 at 20 and 200 workers",
		Paper: "stack 3 keeps 20 workers busy but starves 200; stack 4 keeps 200 busy",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "DV3-Huge: 185k tasks on 600 12-core workers (7200 cores)",
		Paper: "10k initially-executable tasks; high concurrency until the final reduction",
		Run:   runFig15,
	})
}

func runFig12(opts Options, w io.Writer) error {
	window := time.Duration(float64(300*time.Second) * opts.Scale)
	if window < 30*time.Second {
		window = 30 * time.Second
	}
	stride := window / 10

	for s := 1; s <= 4; s++ {
		wl, workers := dv3LargeAt(opts)
		cfg := vinesim.StackConfig(s, workers, 12, opts.Seed)
		rec := obs.NewRecorder()
		cfg.Recorder = rec
		res := vinesim.Run(cfg, wl)
		if !res.Completed {
			return fmt.Errorf("stack %d failed: %s", s, res.Failure)
		}
		// Replay the event trace through the shared renderer — identical
		// machinery to a live-plane JSONL trace.
		pts := obs.Timeline(rec.Events(), stride)
		if f, err := opts.csvFile(fmt.Sprintf("fig12_stack%d", s)); err != nil {
			return err
		} else if f != nil {
			if err := obs.WriteTimelineCSV(f, pts); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		fmt.Fprintf(w, "   Stack %d (total runtime %s):\n", s, secs(res.Runtime))
		fmt.Fprintf(w, "   %10s %10s %10s %10s\n", "t", "running", "waiting", "done")
		for _, p := range pts {
			if p.T > window {
				break
			}
			fmt.Fprintf(w, "   %10s %10d %10d %10d\n", secs(p.T), p.Running, p.Waiting, p.Done)
		}
	}
	return nil
}

func runFig13(opts Options, w io.Writer) error {
	scales := []int{opts.scaled(20, 2), opts.scaled(200, 4)}
	row(w, "Configuration", "Runtime", "Utilization", "Throughput")
	for _, stack := range []int{3, 4} {
		for _, workers := range scales {
			wl := apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed)
			cfg := vinesim.StackConfig(stack, workers, 12, opts.Seed)
			cfg.RecordPerWorker = true
			rec := obs.NewRecorder()
			cfg.Recorder = rec
			res := vinesim.Run(cfg, wl)
			if !res.Completed {
				return fmt.Errorf("stack %d @ %d workers failed: %s", stack, workers, res.Failure)
			}
			// Per-worker occupancy bins — Fig. 13's "colored bars",
			// rendered from the event trace by the shared renderer.
			if f, err := opts.csvFile(fmt.Sprintf("fig13_stack%d_%dworkers", stack, workers)); err != nil {
				return err
			} else if f != nil {
				occ := obs.Occupancy(rec.Events(), 5*time.Second)
				if err := obs.WriteOccupancyCSV(f, occ); err != nil {
					f.Close()
					return err
				}
				f.Close()
			}
			row(w, fmt.Sprintf("stack %d, %d workers", stack, workers),
				secs(res.Runtime),
				fmt.Sprintf("%.0f%%", res.Utilization()*100),
				fmt.Sprintf("%.0f tasks/s", res.Throughput()))
		}
	}
	fmt.Fprintln(w, "   (stack 4's gain concentrates at the larger pool: dispatch no longer starves workers)")
	return nil
}

func runFig15(opts Options, w io.Writer) error {
	wl := apps.DV3Scaled(apps.DV3Huge, opts.Scale, opts.Seed)
	workers := opts.scaled(600, 4)
	cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
	rec := obs.NewRecorder()
	cfg.Recorder = rec
	res := vinesim.Run(cfg, wl)
	if !res.Completed {
		return fmt.Errorf("DV3-Huge failed: %s", res.Failure)
	}
	if f, err := opts.csvFile("fig15_dv3huge"); err != nil {
		return err
	} else if f != nil {
		if err := obs.WriteTimelineCSV(f, obs.Timeline(rec.Events(), cfg.SampleEvery)); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	fmt.Fprintf(w, "   %d tasks on %d workers (%d cores): runtime %s, utilization %.0f%%\n",
		wl.TaskCount(), workers, workers*12, secs(res.Runtime), res.Utilization()*100)

	// Concurrency timeline, 12 rows.
	maxRunning := 0
	for _, sm := range res.Samples {
		if sm.Running > maxRunning {
			maxRunning = sm.Running
		}
	}
	step := len(res.Samples) / 12
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(w, "   %10s %10s  concurrency\n", "t", "running")
	for i := 0; i < len(res.Samples); i += step {
		sm := res.Samples[i]
		fmt.Fprintf(w, "   %10s %10d  %s\n", secs(sm.T), sm.Running, bar(float64(sm.Running), float64(maxRunning), 40))
	}
	fmt.Fprintf(w, "   peak concurrency %d of %d cores\n", maxRunning, workers*12)
	return nil
}
