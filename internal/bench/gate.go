package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hepvine/internal/gate"
	"hepvine/internal/vine"
)

// The gate experiment measures the analysis-facility front door under
// concurrent multi-tenant load: N tenants hammer one vinegate HTTP
// service with independent single-task submissions, and we report
// aggregate submissions/sec through the full HTTP + admission + dedupe
// path plus the p50/p99 submit→first-dispatch latency — the service
// half of the paper's near-interactive story (how long after a client's
// POST does work actually start on a worker).

func init() {
	register(Experiment{
		ID:    "gate",
		Title: "Multi-tenant gate: submission throughput + dispatch latency",
		Paper: "§V near-interactive turnaround, extended to a shared HTTP front door with per-tenant fair share",
		Run:   runGate,
	})
}

func runGate(opts Options, w io.Writer) error {
	vine.MustRegisterLibrary(&vine.Library{
		Name: "gatebench",
		Funcs: map[string]vine.Function{
			"spin": func(c *vine.Call) error {
				time.Sleep(2 * time.Millisecond)
				c.SetOutput("out", append([]byte("done:"), c.Args...))
				return nil
			},
		},
	})

	nTenants := opts.scaled(8, 2)
	perTenant := opts.scaled(60, 10)
	nWorkers := opts.scaled(4, 2)

	dir, err := os.MkdirTemp("", "vinebench-gate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("gatebench", true),
	)
	if err != nil {
		return err
	}
	defer mgr.Stop()
	for i := 0; i < nWorkers; i++ {
		wk, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(4),
			vine.WithCacheDir(filepath.Join(dir, fmt.Sprintf("w%d", i))),
		)
		if err != nil {
			return err
		}
		defer wk.Stop()
	}
	if err := mgr.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
		return err
	}
	g := gate.New(mgr, gate.Config{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	type tenantRun struct {
		client *gate.Client
		ids    []string
		subDur time.Duration
		rejs   int
	}
	runs := make([]*tenantRun, nTenants)
	start := time.Now()
	var wg sync.WaitGroup
	for ti := 0; ti < nTenants; ti++ {
		runs[ti] = &tenantRun{client: &gate.Client{Base: srv.URL, Tenant: fmt.Sprintf("tenant%d", ti)}}
		wg.Add(1)
		go func(ti int, tr *tenantRun) {
			defer wg.Done()
			if _, err := tr.client.OpenSession("bench"); err != nil {
				return
			}
			t0 := time.Now()
			for n := 0; n < perTenant; n++ {
				resp, err := tr.client.Submit("bench", gate.SubmitRequest{Tasks: []gate.TaskSpec{{
					Label: fmt.Sprintf("t%d", n), Library: "gatebench", Func: "spin",
					Args:    []byte(fmt.Sprintf("%d/%d", ti, n)),
					Outputs: []string{"out"},
				}}})
				if err != nil {
					// Admission pushback: back off briefly and retry once.
					if se, ok := err.(*gate.StatusError); ok && se.Code == http.StatusTooManyRequests {
						tr.rejs++
						time.Sleep(se.RetryAfter)
						if resp, err = tr.client.Submit("bench", gate.SubmitRequest{Tasks: []gate.TaskSpec{{
							Label: fmt.Sprintf("t%d", n), Library: "gatebench", Func: "spin",
							Args:    []byte(fmt.Sprintf("%d/%d", ti, n)),
							Outputs: []string{"out"},
						}}}); err != nil {
							continue
						}
					} else {
						continue
					}
				}
				tr.ids = append(tr.ids, resp.Tasks[0].ID)
			}
			tr.subDur = time.Since(t0)
		}(ti, runs[ti])
	}
	wg.Wait()
	submitWall := time.Since(start)

	// Wait for every admitted task, then harvest dispatch latencies.
	submitted := 0
	var latencies []time.Duration
	for _, tr := range runs {
		for _, id := range tr.ids {
			st, err := tr.client.WaitTask("bench", id, 2*time.Minute)
			if err != nil {
				return err
			}
			if st.State != "done" {
				return fmt.Errorf("gate: task %s %s: %s", id, st.State, st.Error)
			}
			submitted++
			if st.DispatchUnixNanos > st.SubmitUnixNanos {
				latencies = append(latencies, time.Duration(st.DispatchUnixNanos-st.SubmitUnixNanos))
			}
		}
	}
	totalWall := time.Since(start)
	if submitted != nTenants*perTenant {
		return fmt.Errorf("gate: %d of %d submissions admitted", submitted, nTenants*perTenant)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	subsPerSec := float64(submitted) / submitWall.Seconds()
	rejections := 0
	for _, tr := range runs {
		rejections += tr.rejs
	}

	csv, err := opts.csvFile("gate")
	if err != nil {
		return err
	}
	if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "tenants,tasks,workers,submissions_per_sec,p50_dispatch_ms,p99_dispatch_ms,rejections,total_wall_s")
		fmt.Fprintf(csv, "%d,%d,%d,%.1f,%.3f,%.3f,%d,%.3f\n",
			nTenants, submitted, nWorkers, subsPerSec,
			pct(0.50).Seconds()*1e3, pct(0.99).Seconds()*1e3, rejections, totalWall.Seconds())
	}

	row(w, "Tenants", "Tasks", "Submit/s", "p50 dispatch", "p99 dispatch", "429s")
	row(w, fmt.Sprintf("%d", nTenants), fmt.Sprintf("%d", submitted),
		fmt.Sprintf("%.0f", subsPerSec),
		pct(0.50).Round(time.Microsecond).String(),
		pct(0.99).Round(time.Microsecond).String(),
		fmt.Sprintf("%d", rejections))
	fmt.Fprintf(w, "   %d tenants × %d tasks over HTTP on %d workers; whole run %.2fs\n",
		nTenants, perTenant, nWorkers, totalWall.Seconds())

	if len(latencies) == 0 {
		return fmt.Errorf("gate: no task ever reached a worker")
	}
	if pct(0.99) > 30*time.Second {
		return fmt.Errorf("gate: p99 dispatch latency %v is not near-interactive", pct(0.99))
	}
	return nil
}
