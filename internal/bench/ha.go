package bench

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/ha"
	"hepvine/internal/journal"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// The ha experiment quantifies the hot-standby failover path on the DV3
// analysis: a fault-free baseline run, then a run whose journaled,
// lease-holding primary is crashed halfway while a standby tails the
// journal. The headline numbers are takeover latency (lease expiry →
// first dispatch by the standby, bounded under 2× the lease TTL), tasks
// re-executed after failover, and the failover/baseline wall-clock ratio
// — what a scheduler crash actually costs a near-interactive analysis
// when nobody has to restart anything by hand.

func init() {
	register(Experiment{
		ID:    "ha",
		Title: "Hot-standby failover: takeover latency and re-executed work (DV3)",
		Paper: "§V targets near-interactive turnaround; a lease-based hot standby keeps a scheduler crash from costing more than the lease TTL plus the unfinished tasks",
		Run:   runHA,
	})
}

func runHA(opts Options, w io.Writer) error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(10 * time.Millisecond)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "vinebench-ha-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	nfiles := opts.scaled(8, 3)
	const events = 4000
	paths, err := rootio.WriteDataset(filepath.Join(dir, "data"), rootio.DatasetSpec{
		Name: "HABench", Files: nfiles, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: opts.Seed, SignalFrac: 0.05, MeanPhot: 1.2},
	})
	if err != nil {
		return err
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: events}
	}
	chunks, err := coffea.PartitionPerFile("HABench", files, 2)
	if err != nil {
		return err
	}
	graph, root, err := coffea.BuildGraph("dv3", chunks, coffea.GraphOptions{FanIn: 3})
	if err != nil {
		return err
	}

	const nWorkers = 3

	// Fault-free baseline on a throwaway cluster.
	var baseline []byte
	var baseDur time.Duration
	{
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
			vine.WithRetrySeed(opts.Seed),
		)
		if err != nil {
			return err
		}
		for i := 0; i < nWorkers; i++ {
			wk, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("b%d", i)), vine.WithCores(2),
				vine.WithCacheDir(filepath.Join(dir, fmt.Sprintf("base-%d", i))))
			if err != nil {
				mgr.Stop()
				return err
			}
			defer wk.Stop()
		}
		if err := mgr.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
			mgr.Stop()
			return err
		}
		start := time.Now()
		res, err := daskvine.Run(mgr, graph, root, daskvine.Options{
			Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute,
		})
		baseDur = time.Since(start)
		mgr.Stop()
		if err != nil {
			return fmt.Errorf("baseline run: %w", err)
		}
		baseline = res.H["dijet_mass"].Marshal()
	}

	// Failover run: journaled lease-holding primary, hot standby on a
	// pre-chosen address, workers knowing both.
	runDir := filepath.Join(dir, "run")
	journalDir := filepath.Join(runDir, "journal")
	ttl := ha.DefaultTTL
	jr, err := journal.Open(journalDir, journal.Options{})
	if err != nil {
		return err
	}
	lease, err := ha.AcquireLease(ha.DefaultLeasePath(journalDir), "primary", ttl)
	if err != nil {
		return err
	}
	mgr1, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithJournal(jr),
		vine.WithLease(lease),
		vine.WithRetrySeed(opts.Seed),
	)
	if err != nil {
		return err
	}
	defer mgr1.Stop()

	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	standbyAddr := probe.Addr().String()
	probe.Close()
	standby, err := ha.NewStandby(ha.Config{
		JournalDir: journalDir,
		TTL:        ttl,
		Addr:       standbyAddr,
		Name:       "standby",
		ManagerOptions: []vine.Option{
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
			vine.WithRetrySeed(opts.Seed),
		},
	})
	if err != nil {
		return err
	}
	defer standby.Stop()

	for i := 0; i < nWorkers; i++ {
		wk, err := vine.NewWorker(mgr1.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(2),
			vine.WithCacheDir(filepath.Join(runDir, fmt.Sprintf("worker-%d", i))),
			vine.WithPersistentCache(true),
			vine.WithReconnect(400, 25*time.Millisecond),
			vine.WithManagers(standbyAddr),
		)
		if err != nil {
			return err
		}
		defer wk.Stop()
	}
	if err := mgr1.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
		return err
	}

	plan := chaos.NewPlan(opts.Seed).Add(
		chaos.Fault{Kind: chaos.KindCrash, Target: "primary", At: 0},
	)
	defer plan.Stop()
	plan.RegisterCrash("primary", func() {
		jr.Sync()
		lease.Release()
		mgr1.Crash()
	})

	crashAfter := graph.Len() / 2
	var dones atomic.Int64
	var once sync.Once
	start := time.Now()
	_, err = daskvine.Run(mgr1, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute,
		OnTaskDone: func(key dag.Key, h *vine.TaskHandle) {
			if int(dones.Add(1)) >= crashAfter {
				once.Do(plan.Start)
			}
		},
	})
	if err == nil {
		return fmt.Errorf("ha: run survived the primary crash")
	}
	completedAtKill := mgr1.Stats().TasksDone
	if err := jr.Close(); err != nil {
		return err
	}

	select {
	case <-standby.Ready():
	case <-time.After(30 * time.Second):
		return fmt.Errorf("ha: standby never took over")
	}
	if err := standby.Err(); err != nil {
		return fmt.Errorf("ha: standby takeover: %w", err)
	}
	mgr2 := standby.Manager()
	if err := mgr2.WaitForWorkers(nWorkers, 15*time.Second); err != nil {
		return fmt.Errorf("ha: workers never redialed to the standby: %w", err)
	}
	res, err := daskvine.Run(mgr2, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute,
	})
	failoverDur := time.Since(start)
	if err != nil {
		return fmt.Errorf("ha: post-failover run: %w", err)
	}
	if got := res.H["dijet_mass"].Marshal(); !bytes.Equal(baseline, got) {
		return fmt.Errorf("ha: post-failover histograms differ from the baseline")
	}

	st := mgr2.Stats()
	lat := mgr2.TakeoverLatency()

	csv, err := opts.csvFile("ha")
	if err != nil {
		return err
	}
	if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "metric,value")
		fmt.Fprintf(csv, "baseline_runtime_s,%.3f\n", baseDur.Seconds())
		fmt.Fprintf(csv, "failover_runtime_s,%.3f\n", failoverDur.Seconds())
		fmt.Fprintf(csv, "takeover_latency_s,%.3f\n", lat.Seconds())
		fmt.Fprintf(csv, "lease_ttl_s,%.3f\n", ttl.Seconds())
		fmt.Fprintf(csv, "graph_tasks,%d\n", graph.Len())
		fmt.Fprintf(csv, "completed_at_kill,%d\n", completedAtKill)
		fmt.Fprintf(csv, "reexecuted_after_failover,%d\n", st.TasksDone)
		fmt.Fprintf(csv, "warm_hits,%d\n", st.WarmHits)
	}

	row(w, "Scenario", "Runtime", "Executed", "Warm hits", "Takeover")
	row(w, "baseline", fmt.Sprintf("%.2fs", baseDur.Seconds()),
		fmt.Sprintf("%d", graph.Len()), "-", "-")
	row(w, "failover", fmt.Sprintf("%.2fs", failoverDur.Seconds()),
		fmt.Sprintf("%d", st.TasksDone), fmt.Sprintf("%d", st.WarmHits),
		fmt.Sprintf("%.0fms", lat.Seconds()*1e3))
	fmt.Fprintf(w, "   primary crashed with %d/%d tasks done; standby took over in %v (lease TTL %v), re-executing %d\n",
		completedAtKill, graph.Len(), lat.Round(time.Millisecond), ttl, st.TasksDone)

	if lat <= 0 || lat >= 2*ttl {
		return fmt.Errorf("ha: takeover latency %v outside (0, 2x TTL %v)", lat, ttl)
	}
	if st.TasksDone >= graph.Len() {
		return fmt.Errorf("ha: failover re-executed the whole graph (%d tasks)", st.TasksDone)
	}
	if st.WarmHits*2 < completedAtKill {
		return fmt.Errorf("ha: only %d warm hits for %d tasks completed at the kill", st.WarmHits, completedAtKill)
	}
	return nil
}
