package bench

import (
	"fmt"
	"io"

	"hepvine/internal/apps"
	"hepvine/internal/core"
	"hepvine/internal/vinesim"
)

// dv3LargeAt builds DV3-Large and its standard pool at the given scale.
func dv3LargeAt(opts Options) (*core.Workload, int) {
	return apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed), opts.scaled(200, 2)
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Overall stack performance (DV3-Large, 200x12-core workers)",
		Paper: "3545s / 3378s / 730s / 272s → 1.00x / 1.05x / 4.86x / 13.03x",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Application configurations",
		Paper: "DV3 Small 25GB / Medium 200GB / Large 1.2TB,17k tasks / Huge 185k tasks; RS-TriPhoton 500GB, 4k tasks",
		Run:   runTable2,
	})
}

func runTable1(opts Options, w io.Writer) error {
	names := []string{"", "Original (WQ+HDFS)", "HDFS -> VAST", "WQ -> TaskVine", "Tasks -> Functions"}
	row(w, "Stack", "Change", "Runtime", "Speedup")
	var base float64
	for s := 1; s <= 4; s++ {
		wl, workers := dv3LargeAt(opts)
		cfg := vinesim.StackConfig(s, workers, 12, opts.Seed)
		res := vinesim.Run(cfg, wl)
		if !res.Completed {
			return fmt.Errorf("stack %d failed: %s", s, res.Failure)
		}
		if s == 1 {
			base = res.Runtime.Seconds()
		}
		row(w, fmt.Sprintf("Stack %d", s), names[s], secs(res.Runtime),
			fmt.Sprintf("%.2fx", base/res.Runtime.Seconds()))
	}
	return nil
}

func runTable2(opts Options, w io.Writer) error {
	row(w, "Application", "Tasks", "Input", "Compute")
	specs := []struct {
		name string
		wl   *core.Workload
	}{
		{"DV3-Small", apps.DV3Scaled(apps.DV3Small, opts.Scale, opts.Seed)},
		{"DV3-Medium", apps.DV3Scaled(apps.DV3Medium, opts.Scale, opts.Seed)},
		{"DV3-Large", apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed)},
		{"DV3-Huge", apps.DV3Scaled(apps.DV3Huge, opts.Scale, opts.Seed)},
		{"RS-TriPhoton", apps.TriPhotonScaled(2, opts.Scale, opts.Seed)},
	}
	for _, s := range specs {
		row(w, s.name,
			fmt.Sprintf("%d", s.wl.TaskCount()),
			s.wl.InputBytes().String(),
			fmt.Sprintf("%.0f core-h", s.wl.TotalCompute().Hours()))
	}
	return nil
}
