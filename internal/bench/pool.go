package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/pool"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// The pool experiment quantifies what preemption costs a near-interactive
// analysis, and how much of that cost elasticity buys back: the MET
// workload runs on a fixed 3-worker pool and on an autoscaled elastic
// pool (floor 2, ceiling 6), each swept across 0, 1, and 2 injected
// graceful drains. The headline numbers are makespan, re-executed work
// (retries + lineage re-runs), sole-replica offloads (evacuations that
// saved a re-run), and peak pool size; the elastic pool's floor repair
// replaces drained workers while the fixed pool just shrinks.

func init() {
	register(Experiment{
		ID:    "pool",
		Title: "Elastic pools under preemption: makespan and re-executed work (MET)",
		Paper: "§IV runs on opportunistic HTCondor slots where eviction is routine; graceful drains plus an autoscaled floor keep preemption from costing more than the evacuation traffic",
		Run:   runPool,
	})
}

// poolSample is one point of the pool-size-over-time series.
type poolSample struct {
	ms   int64
	size int
}

type poolRun struct {
	scenario   string
	preempts   int
	dur        time.Duration
	st         vine.ManagerStats
	peak       int
	ups, downs int
	hist       []byte
	samples    []poolSample
}

func runPool(opts Options, w io.Writer) error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(10 * time.Millisecond)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "vinebench-pool-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	nfiles := opts.scaled(8, 3)
	const events = 4000
	paths, err := rootio.WriteDataset(filepath.Join(dir, "data"), rootio.DatasetSpec{
		Name: "PoolBench", Files: nfiles, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: opts.Seed},
	})
	if err != nil {
		return err
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: events}
	}
	chunks, err := coffea.PartitionPerFile("PoolBench", files, 2)
	if err != nil {
		return err
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		return err
	}

	rates := []int{0, 1, 2}
	var runs []poolRun
	for _, elastic := range []bool{false, true} {
		for _, r := range rates {
			pr, err := runPoolOnce(opts, dir, graph, root, len(chunks), r, elastic)
			if err != nil {
				return err
			}
			runs = append(runs, pr)
		}
	}

	// Every sweep point must land on the same histogram — preemption and
	// elasticity may cost time, never correctness.
	for _, pr := range runs[1:] {
		if !bytes.Equal(runs[0].hist, pr.hist) {
			return fmt.Errorf("pool: %s/%d preemptions diverged from the baseline histogram", pr.scenario, pr.preempts)
		}
	}

	if csv, err := opts.csvFile("pool"); err != nil {
		return err
	} else if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "scenario,preemptions,runtime_s,reexecuted,offloads,workers_lost,peak_pool,scale_ups,scale_downs")
		for _, pr := range runs {
			fmt.Fprintf(csv, "%s,%d,%.3f,%d,%d,%d,%d,%d,%d\n",
				pr.scenario, pr.preempts, pr.dur.Seconds(),
				pr.st.Retries+pr.st.LineageReruns, pr.st.SoleReplicaOffloads,
				pr.st.WorkersLost, pr.peak, pr.ups, pr.downs)
		}
	}
	if csv, err := opts.csvFile("pool_timeline"); err != nil {
		return err
	} else if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "scenario,preemptions,t_ms,pool_size")
		for _, pr := range runs {
			for _, s := range pr.samples {
				fmt.Fprintf(csv, "%s,%d,%d,%d\n", pr.scenario, pr.preempts, s.ms, s.size)
			}
		}
	}

	row(w, "Scenario", "Preempts", "Runtime", "Re-exec", "Offloads", "Peak pool")
	for _, pr := range runs {
		row(w, pr.scenario, fmt.Sprintf("%d", pr.preempts),
			fmt.Sprintf("%.2fs", pr.dur.Seconds()),
			fmt.Sprintf("%d", pr.st.Retries+pr.st.LineageReruns),
			fmt.Sprintf("%d", pr.st.SoleReplicaOffloads),
			fmt.Sprintf("%d", pr.peak))
	}
	last := runs[len(runs)-1]
	fmt.Fprintf(w, "   elastic pool at %d preemptions: %d scale-ups / %d drains, %d offloads, %d tasks re-executed\n",
		last.preempts, last.ups, last.downs, last.st.SoleReplicaOffloads,
		last.st.Retries+last.st.LineageReruns)

	// Guard rails: the autoscaler must converge, not oscillate, and every
	// injected preemption must have been delivered as a notice.
	for _, pr := range runs {
		if pr.scenario == "elastic" && pr.ups > 4 {
			return fmt.Errorf("pool: autoscaler oscillated (%d scale-ups in one run)", pr.ups)
		}
		if pr.st.Preemptions < pr.preempts {
			return fmt.Errorf("pool: %s run delivered %d of %d preemption notices", pr.scenario, pr.st.Preemptions, pr.preempts)
		}
	}
	return nil
}

// runPoolOnce is one sweep point: the workload on a fixed or elastic
// pool with n graceful drains injected off the processor-completion
// stream, spread evenly through the chunk count.
func runPoolOnce(opts Options, dir string, graph *dag.Graph, root dag.Key, nchunks, preempts int, elastic bool) (poolRun, error) {
	pr := poolRun{scenario: "fixed", preempts: preempts}
	if elastic {
		pr.scenario = "elastic"
	}
	runDir, err := os.MkdirTemp(dir, pr.scenario+"-*")
	if err != nil {
		return pr, err
	}

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		vine.WithRetrySeed(opts.Seed),
		vine.WithRecoveryTimeout(30*time.Second),
	)
	if err != nil {
		return pr, err
	}
	defer mgr.Stop()

	const nFixed = 3
	var scaler *pool.Autoscaler
	victim := func(name string) *vine.Worker { return nil }
	if elastic {
		nworker := 0
		prov := pool.NewLocalProvider(mgr.Addr(), func(name string) []vine.Option {
			nworker++
			return []vine.Option{
				vine.WithCores(2),
				vine.WithCacheDir(filepath.Join(runDir, fmt.Sprintf("cache-%s-%d", name, nworker))),
				vine.WithPreemptible(true),
			}
		})
		defer prov.StopAll()
		scaler = pool.NewAutoscaler(mgr, prov, pool.Config{
			Min: 2, Max: 6,
			Poll:           10 * time.Millisecond,
			Cooldown:       50 * time.Millisecond,
			TasksPerWorker: 2,
			IdlePolls:      5,
			DrainGrace:     500 * time.Millisecond,
		})
		scaler.Start()
		defer scaler.Stop()
		victim = prov.Worker
		if err := mgr.WaitForWorkers(2, 10*time.Second); err != nil {
			return pr, err
		}
	} else {
		workers := make(map[string]*vine.Worker, nFixed)
		for i := 0; i < nFixed; i++ {
			name := fmt.Sprintf("f%d", i)
			wk, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(name),
				vine.WithCores(2),
				vine.WithCacheDir(filepath.Join(runDir, "cache-"+name)),
				vine.WithPreemptible(true),
			)
			if err != nil {
				return pr, err
			}
			defer wk.Stop()
			workers[name] = wk
		}
		victim = func(name string) *vine.Worker { return workers[name] }
		if err := mgr.WaitForWorkers(nFixed, 10*time.Second); err != nil {
			return pr, err
		}
	}

	// Sample the live pool size while the run is in flight.
	start := time.Now()
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	var smu sync.Mutex
	go func() {
		defer close(sampleDone)
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-t.C:
				smu.Lock()
				pr.samples = append(pr.samples, poolSample{
					ms: time.Since(start).Milliseconds(), size: mgr.WorkerCount(),
				})
				smu.Unlock()
			}
		}
	}()

	// Drain the worker that completes processor chunk stride, 2*stride, …
	// — each victim holds the sole replica of the output it just produced,
	// so every preemption exercises the evacuation path.
	dopts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute}
	if preempts > 0 {
		stride := nchunks / (preempts + 1)
		if stride < 1 {
			stride = 1
		}
		var mu sync.Mutex
		done, injected := 0, 0
		drained := make(map[string]bool)
		dopts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
			if _, ok := graph.Task(key).Spec.(*coffea.ProcessSpec); !ok {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			done++
			if injected >= preempts || done < (injected+1)*stride || drained[h.Worker()] {
				return
			}
			if wk := victim(h.Worker()); wk != nil {
				drained[h.Worker()] = true
				injected++
				wk.Drain(500 * time.Millisecond)
			}
		}
	}

	res, err := daskvine.Run(mgr, graph, root, dopts)
	pr.dur = time.Since(start)
	close(stopSample)
	<-sampleDone
	if err != nil {
		return pr, fmt.Errorf("pool %s/%d preemptions: %w", pr.scenario, preempts, err)
	}
	pr.hist = res.H["met"].Marshal()
	pr.st = mgr.Stats()
	pr.peak = nFixed
	if scaler != nil {
		pr.peak = scaler.Peak()
		pr.ups, pr.downs = scaler.ScaleEvents()
	}
	return pr, nil
}
