package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/journal"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// The warm experiment quantifies the durability subsystem on the DV3
// analysis: the same workflow runs cold (fresh journal, empty caches),
// warm (identical resubmission against the surviving journal + worker
// caches), and crash-resume (the manager is killed mid-run and restarted
// on the same journal with fresh worker processes pointed at the same
// persistent cache dirs). The headline numbers are tasks re-executed,
// bytes re-staged, and the warm/cold wall-clock ratio — the paper's
// near-interactive repeat-run story, extended to survive manager loss.

func init() {
	register(Experiment{
		ID:    "warm",
		Title: "Warm restart: cold vs warm vs crash-resume (DV3)",
		Paper: "§V targets near-interactive turnaround; a durable journal makes the repeat run skip all completed work",
		Run:   runWarm,
	})
}

// warmOutcome captures one incarnation of the workflow.
type warmOutcome struct {
	result   []byte
	dur      time.Duration
	executed int // tasks actually run on workers in this incarnation
	warmHits int
	replayed int
	staged   int64 // bytes moved to workers (manager + peer transfers)
}

func runWarm(opts Options, w io.Writer) error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(10 * time.Millisecond)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "vinebench-warm-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	nfiles := opts.scaled(8, 3)
	const events = 4000
	paths, err := rootio.WriteDataset(filepath.Join(dir, "data"), rootio.DatasetSpec{
		Name: "WarmBench", Files: nfiles, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: opts.Seed, SignalFrac: 0.05, MeanPhot: 1.2},
	})
	if err != nil {
		return err
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: events}
	}
	chunks, err := coffea.PartitionPerFile("WarmBench", files, 2)
	if err != nil {
		return err
	}
	graph, root, err := coffea.BuildGraph("dv3", chunks, coffea.GraphOptions{FanIn: 3})
	if err != nil {
		return err
	}

	const nWorkers = 3
	// runOnce executes the graph against runDir's journal and worker cache
	// dirs. crashAfter > 0 kills the manager after that many task
	// completions; the incarnation then reports the error from Run so the
	// caller can resume on the same runDir.
	runOnce := func(runDir string, crashAfter int) (warmOutcome, error) {
		var o warmOutcome
		jr, err := journal.Open(filepath.Join(runDir, "journal"), journal.Options{})
		if err != nil {
			return o, err
		}
		defer jr.Close()
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
			vine.WithJournal(jr),
			vine.WithRetrySeed(opts.Seed),
		)
		if err != nil {
			return o, err
		}
		defer mgr.Stop()
		for i := 0; i < nWorkers; i++ {
			wk, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("w%d", i)),
				vine.WithCores(2),
				vine.WithCacheDir(filepath.Join(runDir, fmt.Sprintf("worker-%d", i))),
				vine.WithPersistentCache(true),
			)
			if err != nil {
				return o, err
			}
			defer wk.Stop()
		}
		if err := mgr.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
			return o, err
		}

		ropts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute}
		if crashAfter > 0 {
			var dones atomic.Int64
			var once sync.Once
			ropts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
				if int(dones.Add(1)) >= crashAfter {
					once.Do(func() {
						jr.Sync() // make everything completed so far durable
						mgr.Crash()
					})
				}
			}
		}
		start := time.Now()
		res, err := daskvine.Run(mgr, graph, root, ropts)
		o.dur = time.Since(start)
		st := mgr.Stats()
		o.executed = st.TasksDone
		o.warmHits = st.WarmHits
		o.replayed = st.JournalReplayed
		o.staged = st.ManagerBytes + st.PeerBytes
		if err != nil {
			return o, err
		}
		o.result = res.H["dijet_mass"].Marshal()
		return o, nil
	}

	runDir := filepath.Join(dir, "run")
	cold, err := runOnce(runDir, 0)
	if err != nil {
		return fmt.Errorf("cold run: %w", err)
	}
	warm, err := runOnce(runDir, 0)
	if err != nil {
		return fmt.Errorf("warm run: %w", err)
	}

	crashDir := filepath.Join(dir, "crash")
	killed, _ := runOnce(crashDir, graph.Len()/2) // error expected: manager crashed mid-run
	resume, err := runOnce(crashDir, 0)
	if err != nil {
		return fmt.Errorf("crash-resume run: %w", err)
	}

	ratio := func(o warmOutcome) float64 {
		if cold.dur <= 0 {
			return 0
		}
		return o.dur.Seconds() / cold.dur.Seconds()
	}

	csv, err := opts.csvFile("warm")
	if err != nil {
		return err
	}
	if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "scenario,runtime_s,tasks_executed,warm_hits,replayed_records,bytes_staged,ratio_vs_cold")
		for _, r := range []struct {
			name string
			o    warmOutcome
		}{{"cold", cold}, {"warm", warm}, {"crash-killed", killed}, {"crash-resume", resume}} {
			fmt.Fprintf(csv, "%s,%.3f,%d,%d,%d,%d,%.3f\n", r.name,
				r.o.dur.Seconds(), r.o.executed, r.o.warmHits, r.o.replayed, r.o.staged, ratio(r.o))
		}
	}

	row(w, "Scenario", "Runtime", "Executed", "Warm hits", "Staged MB", "vs cold")
	for _, r := range []struct {
		name string
		o    warmOutcome
	}{{"cold", cold}, {"warm", warm}, {"crash-resume", resume}} {
		row(w, r.name, fmt.Sprintf("%.2fs", r.o.dur.Seconds()),
			fmt.Sprintf("%d", r.o.executed), fmt.Sprintf("%d", r.o.warmHits),
			fmt.Sprintf("%.1f", float64(r.o.staged)/1e6),
			fmt.Sprintf("%.2fx", ratio(r.o)))
	}
	fmt.Fprintf(w, "   crash incarnation completed %d/%d tasks before the kill; resume re-executed %d\n",
		killed.executed, graph.Len(), resume.executed)

	if warm.executed != 0 {
		return fmt.Errorf("warm: repeat run re-executed %d tasks, want 0", warm.executed)
	}
	if warm.warmHits == 0 {
		return fmt.Errorf("warm: repeat run reported no warm hits")
	}
	if !bytes.Equal(cold.result, warm.result) {
		return fmt.Errorf("warm: repeat run's histograms differ from the cold run")
	}
	if !bytes.Equal(cold.result, resume.result) {
		return fmt.Errorf("warm: crash-resume histograms differ from the cold run")
	}
	if resume.executed >= graph.Len() {
		return fmt.Errorf("warm: crash-resume re-executed the whole graph (%d tasks)", resume.executed)
	}
	return nil
}
