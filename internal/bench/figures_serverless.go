package bench

import (
	"fmt"
	"io"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/params"
	"hepvine/internal/vine"
	"hepvine/internal/vinesim"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Import hoisting structure (live engine demonstration)",
		Paper: "hoisted: libraries load once per LibraryTask; unhoisted: once per FunctionCall",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Import hoisting sweep: 15k function calls, complexity 0.125-64, local vs shared FS",
		Paper: "large speedup for fine-grained tasks, fading as tasks lengthen; local imports slightly beat VAST",
		Run:   runFig10,
	})
}

// runFig9 demonstrates the Fig. 9 structure on the real engine: the same
// burst of function calls against a hoisted and an unhoisted library
// instance, counting how many times the library environment was built.
func runFig9(opts Options, w io.Writer) error {
	const calls = 24
	setupDelay := 30 * time.Millisecond

	runMode := func(hoist bool) (setups int, wall time.Duration, err error) {
		lib := &vine.Library{
			Name:       fmt.Sprintf("fig9-%v", hoist),
			SetupDelay: setupDelay,
			Setup:      func() (any, error) { return "imports", nil },
			Funcs: map[string]vine.Function{
				"work": func(c *vine.Call) error {
					c.SetOutput("out", c.Args)
					return nil
				},
			},
		}
		if err := vine.RegisterLibrary(lib); err != nil {
			return 0, 0, err
		}
		m, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(lib.Name, hoist),
		)
		if err != nil {
			return 0, 0, err
		}
		defer m.Stop()
		worker, err := vine.NewWorker(m.Addr(), vine.WithCores(4))
		if err != nil {
			return 0, 0, err
		}
		defer worker.Stop()
		if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		var handles []*vine.TaskHandle
		for i := 0; i < calls; i++ {
			h, err := m.SubmitFunc(vine.ModeFunctionCall, lib.Name, "work", []byte{byte(i)}, "out")
			if err != nil {
				return 0, 0, err
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if err := h.Wait(30 * time.Second); err != nil {
				return 0, 0, err
			}
		}
		return worker.LibrarySetupCount(lib.Name), time.Since(start), nil
	}

	row(w, "Mode", "setup runs", "wall time")
	hs, hw, err := runMode(true)
	if err != nil {
		return err
	}
	row(w, "hoisted imports", fmt.Sprintf("%d", hs), hw.Round(time.Millisecond).String())
	us, uw, err := runMode(false)
	if err != nil {
		return err
	}
	row(w, "unhoisted imports", fmt.Sprintf("%d", us), uw.Round(time.Millisecond).String())
	fmt.Fprintf(w, "   %d function calls: environment built %d vs %d times (live TCP engine)\n", calls, hs, us)
	return nil
}

func runFig10(opts Options, w io.Writer) error {
	// Paper setup: 15,000 function calls on 16 32-core workers; task time
	// scales linearly with "complexity": 0.125 → ~0.1s, 64 → ~35s.
	nCalls := opts.scaled(15000, 200)
	workers := opts.scaled(16, 2)
	complexities := []float64{0.125, 0.5, 2, 8, 32, 64}
	if opts.Scale < 0.2 {
		complexities = []float64{0.125, 2, 64} // keep quick runs quick
	}

	type variant struct {
		label string
		hoist bool
		local bool
	}
	variants := []variant{
		{"hoisted/local", true, true},
		{"hoisted/VAST", true, false},
		{"unhoisted/local", false, true},
		{"unhoisted/VAST", false, false},
	}
	header := []string{"Complexity"}
	for _, v := range variants {
		header = append(header, v.label)
	}
	row(w, header...)
	for _, c := range complexities {
		compute := time.Duration(c * 0.55 * float64(time.Second))
		cols := []string{fmt.Sprintf("%g (%.2gs)", c, compute.Seconds())}
		for _, v := range variants {
			cfg := vinesim.Config{
				Label:          "fig10",
				Workers:        workers,
				CoresPerWorker: 32,
				WorkerDisk:     params.WorkerDisk,
				Flow:           vinesim.FlowPeer,
				Serverless:     true,
				Hoist:          v.hoist,
				FS:             params.VAST,
				Seed:           opts.Seed,
			}
			if v.local {
				cfg.ImportFS = params.LocalDisk
			} else {
				cfg.ImportFS = params.VAST
			}
			res := vinesim.Run(cfg, apps.HoistSweep(nCalls, compute, opts.Seed))
			if !res.Completed {
				return fmt.Errorf("fig10 %s c=%g failed: %s", v.label, c, res.Failure)
			}
			cols = append(cols, secs(res.Runtime))
		}
		row(w, cols...)
	}
	return nil
}
