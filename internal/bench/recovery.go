package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// The recovery experiment is not a paper artifact: it quantifies the cost
// of the live plane's robustness envelope. The same chunked-MET analysis
// runs twice on a real loopback cluster — once fault-free, once losing the
// worker that holds the sole replica of the first intermediate plus one
// corrupted transfer payload per worker fetch stream — and the faulted run
// must finish with bit-identical histograms. The headline number is the
// runtime overhead of riding through those faults.

func init() {
	register(Experiment{
		ID:    "recovery",
		Title: "Live-plane recovery overhead (worker loss + corrupt payload vs fault-free)",
		Paper: "§V argues preemption-heavy opportunistic nodes; integrity + lineage recovery keep them near-interactive",
		Run:   runRecovery,
	})
}

func runRecovery(opts Options, w io.Writer) error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(10 * time.Millisecond)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "vinebench-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	nfiles := opts.scaled(6, 2)
	const events = 4000
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "RecBench", Files: nfiles, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: opts.Seed},
	})
	if err != nil {
		return err
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: events}
	}
	chunks, err := coffea.PartitionPerFile("RecBench", files, 2)
	if err != nil {
		return err
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 3})
	if err != nil {
		return err
	}

	type outcome struct {
		result []byte
		dur    time.Duration
		stats  vine.ManagerStats
	}
	runOnce := func(faulted bool) (outcome, error) {
		var o outcome
		const nWorkers = 3
		var plan *chaos.Plan
		if faulted {
			// One payload corruption armed per worker fetch stream; the
			// byte flip lands past the "OK <size>\n" transfer header.
			plan = chaos.NewPlan(opts.Seed)
			for i := 0; i < nWorkers; i++ {
				plan.Add(chaos.Fault{
					Kind: chaos.KindCorrupt, Target: fmt.Sprintf("w%d/fetch", i),
					At: time.Millisecond, Offset: 16,
				})
			}
			defer plan.Stop()
		}
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
			vine.WithMaxRetries(10),
			vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
			vine.WithRetrySeed(opts.Seed),
			vine.WithRecoveryTimeout(30*time.Second),
		)
		if err != nil {
			return o, err
		}
		defer mgr.Stop()
		workers := make(map[string]*vine.Worker, nWorkers)
		for i := 0; i < nWorkers; i++ {
			name := fmt.Sprintf("w%d", i)
			wopts := []vine.Option{
				vine.WithName(name),
				vine.WithCores(2),
				vine.WithTransferTimeout(time.Second),
			}
			cache, err := os.MkdirTemp("", "vinebench-recovery-cache-*")
			if err != nil {
				return o, err
			}
			defer os.RemoveAll(cache)
			wopts = append(wopts, vine.WithCacheDir(cache))
			if plan != nil {
				wopts = append(wopts, vine.WithFaultInjector(plan))
			}
			wk, err := vine.NewWorker(mgr.Addr(), wopts...)
			if err != nil {
				return o, err
			}
			defer wk.Stop()
			workers[name] = wk
		}
		if err := mgr.WaitForWorkers(nWorkers, 10*time.Second); err != nil {
			return o, err
		}

		ropts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute}
		if faulted {
			plan.Start()
			// Kill the worker that produced the first processor output —
			// at that instant it holds the only replica of an intermediate
			// the downstream accumulation still needs.
			var once sync.Once
			ropts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
				if _, ok := graph.Task(key).Spec.(*coffea.ProcessSpec); !ok {
					return
				}
				once.Do(func() {
					if wk := workers[h.Worker()]; wk != nil {
						wk.Stop()
					}
				})
			}
		}
		start := time.Now()
		res, err := daskvine.Run(mgr, graph, root, ropts)
		if err != nil {
			return o, fmt.Errorf("run (faulted=%v): %w", faulted, err)
		}
		o.dur = time.Since(start)
		o.result = res.H["met"].Marshal()
		o.stats = mgr.Stats()
		return o, nil
	}

	clean, err := runOnce(false)
	if err != nil {
		return err
	}
	faulted, err := runOnce(true)
	if err != nil {
		return err
	}

	identical := bytes.Equal(clean.result, faulted.result)
	overhead := 0.0
	if clean.dur > 0 {
		overhead = (faulted.dur.Seconds() - clean.dur.Seconds()) / clean.dur.Seconds() * 100
	}

	csv, err := opts.csvFile("recovery")
	if err != nil {
		return err
	}
	if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "run,runtime_s,tasks_done,retries,corrupt_transfers,lineage_reruns,workers_lost")
		for _, r := range []struct {
			name string
			o    outcome
		}{{"fault-free", clean}, {"faulted", faulted}} {
			fmt.Fprintf(csv, "%s,%.3f,%d,%d,%d,%d,%d\n", r.name,
				r.o.dur.Seconds(), r.o.stats.TasksDone, r.o.stats.Retries,
				r.o.stats.CorruptTransfers, r.o.stats.LineageReruns, r.o.stats.WorkersLost)
		}
	}

	row(w, "Run", "Runtime", "Tasks done", "Corrupt", "Lineage reruns")
	row(w, "fault-free", fmt.Sprintf("%.2fs", clean.dur.Seconds()),
		fmt.Sprintf("%d", clean.stats.TasksDone), "0", "0")
	row(w, "faulted", fmt.Sprintf("%.2fs", faulted.dur.Seconds()),
		fmt.Sprintf("%d", faulted.stats.TasksDone),
		fmt.Sprintf("%d", faulted.stats.CorruptTransfers),
		fmt.Sprintf("%d", faulted.stats.LineageReruns))
	fmt.Fprintf(w, "   recovery overhead: %+.1f%% runtime; histograms bit-identical: %v\n",
		overhead, identical)
	if !identical {
		return fmt.Errorf("recovery: faulted run's histograms differ from fault-free run")
	}
	if faulted.stats.CorruptTransfers < 1 {
		return fmt.Errorf("recovery: no corrupt transfer detected (CorruptTransfers = 0)")
	}
	return nil
}
