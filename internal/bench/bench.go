// Package bench is the experiment harness: one runner per table and figure
// in the paper's evaluation (§IV–V). Each runner regenerates the artifact's
// rows or series — at paper scale via cmd/vinebench, or at a configurable
// fraction via `go test -bench` (bench_test.go at the repository root) so
// the suite stays fast.
//
// The goal is shape fidelity, not absolute numbers (the substrate is a
// simulator, not the authors' testbed): who wins, by roughly what factor,
// and where crossovers fall. EXPERIMENTS.md records paper-vs-measured for
// every artifact.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Options control an experiment run.
type Options struct {
	// Scale multiplies workload size and worker count (1.0 = paper scale).
	Scale float64
	// Seed makes every run reproducible.
	Seed uint64
	// Verbose adds per-series detail (timelines, heatmap rows).
	Verbose bool
	// CSVDir, when set, makes experiments also write their raw series
	// (timelines, distributions, matrices, scaling curves) as CSV files
	// under this directory, for external plotting.
	CSVDir string
}

func (o *Options) defaults() {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// scaled applies the scale factor to a paper-scale count, with a floor.
func (o Options) scaled(n, min int) int {
	v := int(float64(n) * o.Scale)
	if v < min {
		v = min
	}
	return v
}

// Experiment is one regenerable artifact.
type Experiment struct {
	ID    string // "table1", "fig7", ...
	Title string
	Paper string // what the paper reports, for side-by-side reading
	Run   func(opts Options, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// paperOrder is the canonical presentation order (tables first, then
// figures as they appear in the paper).
var paperOrder = []string{
	"table1", "table2", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig13", "fig14a", "fig14b", "fig15",
	"ablation-cap", "ablation-fanin", "sched", "recovery", "warm", "ha", "gate", "pool", "foreman", "verify",
}

// All lists experiments in paper order.
func All() []Experiment {
	rank := make(map[string]int, len(paperOrder))
	for i, id := range paperOrder {
		rank[id] = i
	}
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return rank[out[i].ID] < rank[out[j].ID] })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment in order.
func RunAll(opts Options, w io.Writer) error {
	for _, e := range All() {
		if err := RunOne(e, opts, w); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes one experiment with a standard header.
func RunOne(e Experiment, opts Options, w io.Writer) error {
	opts.defaults()
	fmt.Fprintf(w, "\n== %s — %s (scale %.3g, seed %d) ==\n", e.ID, e.Title, opts.Scale, opts.Seed)
	if e.Paper != "" {
		fmt.Fprintf(w, "   paper: %s\n", e.Paper)
	}
	start := time.Now()
	if err := e.Run(opts, w); err != nil {
		return fmt.Errorf("bench %s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "   [%s regenerated in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// ---- small rendering helpers ----

// row prints aligned columns.
func row(w io.Writer, cols ...string) {
	for i, c := range cols {
		if i == 0 {
			fmt.Fprintf(w, "   %-26s", c)
		} else {
			fmt.Fprintf(w, " %18s", c)
		}
	}
	fmt.Fprintln(w)
}

// bar renders a proportional ASCII bar.
func bar(v, max float64, width int) string {
	if max <= 0 || v <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// secs formats a duration as seconds with no decimals.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.0fs", d.Seconds())
}

// csvFile opens <CSVDir>/<name>.csv for an experiment's raw series, or
// returns nil when CSV export is off. Callers must Close it.
func (o Options) csvFile(name string) (*os.File, error) {
	if o.CSVDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(o.CSVDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(o.CSVDir, name+".csv"))
}
