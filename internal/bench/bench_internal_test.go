package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	if len(all) != len(paperOrder) {
		t.Fatalf("registered %d experiments, expected %d", len(all), len(paperOrder))
	}
	for i, e := range all {
		if e.ID != paperOrder[i] {
			t.Fatalf("position %d: %s, want %s", i, e.ID, paperOrder[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table1")
	if err != nil || e.ID != "table1" {
		t.Fatalf("ByID: %v %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.defaults()
	if o.Scale != 1 || o.Seed == 0 {
		t.Fatalf("defaults: %+v", o)
	}
	if got := o.scaled(100, 5); got != 100 {
		t.Fatalf("scaled full = %d", got)
	}
	o.Scale = 0.01
	if got := o.scaled(100, 5); got != 5 {
		t.Fatalf("scaled floor = %d", got)
	}
}

func TestScaledLadderMonotonic(t *testing.T) {
	l := scaledLadder([]int{5, 10, 15, 20, 25}, 0.01)
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not increasing: %v", l)
		}
	}
	full := scaledLadder([]int{10, 20}, 1)
	if full[0] != 10 || full[1] != 20 {
		t.Fatalf("full-scale ladder altered: %v", full)
	}
}

// Every experiment must run clean at a tiny scale and produce its header
// content. The heavyweight shape assertions live in the vinesim tests; this
// guards the harness plumbing end to end.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment sweep skipped in -short")
	}
	opts := Options{Scale: 0.02, Seed: 11}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunOne(e, opts, &buf); err != nil {
				t.Fatalf("%s: %v\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("%s output missing header:\n%s", e.ID, out)
			}
			if len(out) < 100 {
				t.Fatalf("%s produced suspiciously little output:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	var buf bytes.Buffer
	if err := RunAll(Options{Scale: 0.02, Seed: 5}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range paperOrder {
		if !strings.Contains(buf.String(), "== "+id) {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}

func TestBarRendering(t *testing.T) {
	if got := bar(5, 10, 10); got != "#####" {
		t.Fatalf("bar = %q", got)
	}
	if got := bar(20, 10, 10); got != "##########" {
		t.Fatalf("bar clamp = %q", got)
	}
	if got := bar(1, 0, 10); got != "" {
		t.Fatalf("bar zero max = %q", got)
	}
}
