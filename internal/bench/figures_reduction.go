package bench

import (
	"fmt"
	"io"
	"sort"

	"hepvine/internal/apps"
	"hepvine/internal/core"
	"hepvine/internal/units"
	"hepvine/internal/vinesim"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Single-task vs hierarchical reduction: worker storage consumption (RS-TriPhoton)",
		Paper: "naive: workers grow ~200GB, outliers 700GB+ → failures; tree: reduced, uniform, completes",
		Run:   runFig11,
	})
}

func runFig11(opts Options, w io.Writer) error {
	workers := opts.scaled(20, 4)
	// Worker disk scales with the per-worker intermediate volume so the
	// naive/tree contrast survives scaling: at paper scale (5 TB of
	// intermediates over 20 workers) this reproduces the 700 GB
	// allocation of §V.B exactly.
	probe := apps.TriPhotonScaled(2, opts.Scale, opts.Seed)
	var interm units.Bytes
	for _, k := range probe.Graph.Keys() {
		if probe.Graph.Task(k).Category == "processor" {
			interm += probe.Graph.Task(k).Spec.(*core.SimSpec).OutputSize
		}
	}
	disk := units.Bytes(float64(interm) / float64(workers) * 2.8)

	type outcome struct {
		label string
		res   *vinesim.Result
	}
	var outs []outcome
	for _, c := range []struct {
		label string
		fanIn int
	}{
		{"single-task reduce", 0},
		{"binary-tree reduce", 2},
	} {
		wl := apps.TriPhotonScaled(c.fanIn, opts.Scale, opts.Seed)
		cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
		cfg.WorkerDisk = disk
		cfg.RecordPerWorker = true
		res := vinesim.Run(cfg, wl)
		outs = append(outs, outcome{c.label, res})
		name := "fig11_tree"
		if c.fanIn < 2 {
			name = "fig11_naive"
		}
		if f, err := opts.csvFile(name); err != nil {
			return err
		} else if f != nil {
			fmt.Fprintln(f, "t_seconds,max_cache_bytes,median_cache_bytes")
			for i, snap := range res.CacheSeries {
				sorted := append([]units.Bytes(nil), snap...)
				sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
				var max, med units.Bytes
				if len(sorted) > 0 {
					max, med = sorted[len(sorted)-1], sorted[len(sorted)/2]
				}
				fmt.Fprintf(f, "%.0f,%d,%d\n", res.Samples[i].T.Seconds(), int64(max), int64(med))
			}
			f.Close()
		}
	}

	row(w, "Reduction", "Runtime", "Completed", "Disk fails", "Re-runs", "Peak cache", "Median peak")
	for _, o := range outs {
		peaks := append([]units.Bytes(nil), o.res.PeakCachePerWorker...)
		sort.Slice(peaks, func(i, j int) bool { return peaks[i] < peaks[j] })
		var max, med units.Bytes
		if len(peaks) > 0 {
			max = peaks[len(peaks)-1]
			med = peaks[len(peaks)/2]
		}
		row(w, o.label,
			secs(o.res.Runtime),
			fmt.Sprintf("%v", o.res.Completed),
			fmt.Sprintf("%d", o.res.Snapshot.DiskFailures),
			fmt.Sprintf("%d", o.res.Snapshot.Retries),
			max.String(), med.String())
	}

	naive, tree := outs[0].res, outs[1].res
	maxOf := func(r *vinesim.Result) units.Bytes {
		var m units.Bytes
		for _, p := range r.PeakCachePerWorker {
			if p > m {
				m = p
			}
		}
		return m
	}
	if nm, tm := maxOf(naive), maxOf(tree); tm > 0 {
		fmt.Fprintf(w, "   peak worker cache shrinks %.1fx with hierarchical reduction (disk limit %v)\n",
			float64(nm)/float64(tm), disk)
	}

	if opts.Verbose {
		fmt.Fprintln(w, "   -- per-worker cache usage over time (max across workers per sample) --")
		for _, o := range outs {
			fmt.Fprintf(w, "   %s:\n", o.label)
			writeCacheTimeline(w, o.res, 12)
		}
	}
	return nil
}

// writeCacheTimeline prints a coarse max/median cache curve.
func writeCacheTimeline(w io.Writer, res *vinesim.Result, rows int) {
	if len(res.CacheSeries) == 0 {
		fmt.Fprintln(w, "    (no per-worker series)")
		return
	}
	step := len(res.CacheSeries) / rows
	if step < 1 {
		step = 1
	}
	var globalMax units.Bytes
	for _, snap := range res.CacheSeries {
		for _, c := range snap {
			if c > globalMax {
				globalMax = c
			}
		}
	}
	for i := 0; i < len(res.CacheSeries); i += step {
		snap := res.CacheSeries[i]
		var max units.Bytes
		for _, c := range snap {
			if c > max {
				max = c
			}
		}
		fmt.Fprintf(w, "   %8s max=%-10s %s\n",
			res.Samples[i].T.Round(1e9), max, bar(float64(max), float64(globalMax), 40))
	}
}
