package bench

import (
	"fmt"
	"io"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/params"
	"hepvine/internal/units"
	"hepvine/internal/vinesim"
)

// The verify experiment asserts the paper's qualitative claims
// programmatically — the reproduction's self-check. Each check encodes a
// *shape* (ordering, factor band, crossover), not an absolute number, and
// the bands are deliberately generous: they must hold at paper scale and at
// the reduced scales used by `go test -bench`.

func init() {
	register(Experiment{
		ID:    "verify",
		Title: "Self-check: assert every reproduced shape claim",
		Paper: "all of Table I / Figs. 7-15, as PASS/FAIL checks",
		Run:   runVerify,
	})
}

type check struct {
	name    string
	ok      bool
	skipped bool
	got     string
}

func runVerify(opts Options, w io.Writer) error {
	var checks []check
	add := func(name string, ok bool, format string, args ...any) {
		checks = append(checks, check{name: name, ok: ok, got: fmt.Sprintf(format, args...)})
	}
	// Some claims are about overhead ceilings that only bind with large
	// pools and task counts (dispatch starvation, import amortization);
	// below the gating scale they are reported as skipped, not failed.
	addScaled := func(minScale float64, name string, ok bool, format string, args ...any) {
		c := check{name: name, ok: ok, got: fmt.Sprintf(format, args...)}
		if opts.Scale < minScale {
			c.skipped = true
			c.got += fmt.Sprintf(" (needs -scale ≥ %g)", minScale)
		}
		checks = append(checks, c)
	}

	// --- Table I: stack ordering and factors ---
	stacks := make([]*vinesim.Result, 5)
	for s := 1; s <= 4; s++ {
		wl, workers := dv3LargeAt(opts)
		res := vinesim.Run(vinesim.StackConfig(s, workers, 12, opts.Seed), wl)
		if !res.Completed {
			return fmt.Errorf("verify: stack %d failed: %s", s, res.Failure)
		}
		stacks[s] = res
	}
	r := func(i, j int) float64 { return stacks[i].Runtime.Seconds() / stacks[j].Runtime.Seconds() }
	add("T1: storage swap alone ≈ no gain (0.8-1.3x)", r(1, 2) > 0.8 && r(1, 2) < 1.3, "stack1/stack2 = %.2fx", r(1, 2))
	addScaled(0.08, "T1: TaskVine ≥2x over Work Queue", r(2, 3) >= 2, "stack2/stack3 = %.2fx", r(2, 3))
	addScaled(0.5, "T1: functions beat standard tasks", r(3, 4) > 1.2, "stack3/stack4 = %.2fx", r(3, 4))
	addScaled(0.5, "T1: end-to-end ≥6x", r(1, 4) >= 6, "stack1/stack4 = %.2fx", r(1, 4))

	// --- Fig. 7: the manager hot-spot disappears under peer transfers ---
	wq, tv := stacks[2], stacks[4]
	add("F7: WQ routes everything via manager", tv.ManagerMoved < wq.ManagerMoved/10,
		"manager bytes %v vs %v", wq.ManagerMoved, tv.ManagerMoved)
	add("F7: hottest pair shrinks ≥4x", float64(wq.MaxPairBytes) >= 4*float64(tv.MaxPairBytes),
		"max pair %v vs %v", wq.MaxPairBytes, tv.MaxPairBytes)
	add("F7: peers used only by TaskVine", wq.Snapshot.PeerTransfers == 0 && tv.Snapshot.PeerTransfers > 0,
		"peer transfers %d vs %d", wq.Snapshot.PeerTransfers, tv.Snapshot.PeerTransfers)

	// --- Fig. 8: task-time distribution ---
	fc := inRangeFraction(stacks[4].TaskExec, time.Second, 10*time.Second)
	med3, med4 := median(stacks[3].TaskExec), median(stacks[4].TaskExec)
	add("F8: majority of function calls in 1-10s", fc >= 0.5, "%.0f%% in 1-10s", fc*100)
	add("F8: function calls lighter per task", med4 < med3, "median %v vs %v", med4, med3)

	// --- Fig. 10: hoisting matters only for fine-grained tasks ---
	hoistRatio := func(compute float64) float64 {
		run := func(hoist bool) float64 {
			cfg := vinesim.StackConfig(4, opts.scaled(16, 2), 32, opts.Seed)
			cfg.Hoist = hoist
			cfg.ImportFS = params.VAST // the Fig. 10 shared-FS axis, where imports are dearest
			cfg.PreemptFraction = 0
			res := vinesim.Run(cfg, apps.HoistSweep(opts.scaled(15000, 200),
				time.Duration(compute*float64(time.Second)), opts.Seed))
			return res.Runtime.Seconds()
		}
		return run(false) / run(true)
	}
	fine, coarse := hoistRatio(0.07), hoistRatio(19)
	addScaled(0.5, "F10: hoisting ≥1.5x for fine tasks", fine >= 1.5, "fine-task speedup %.2fx", fine)
	add("F10: hoisting ≈1x for coarse tasks", coarse < 1.3, "coarse-task speedup %.2fx", coarse)
	add("F10: effect shrinks with granularity", fine > coarse, "%.2fx vs %.2fx", fine, coarse)

	// --- Fig. 11: naive reduce spikes storage; tree stays bounded ---
	workers := opts.scaled(20, 4)
	fig11 := func(fanIn int) *vinesim.Result {
		wl := apps.TriPhotonScaled(fanIn, opts.Scale, opts.Seed)
		cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
		cfg.WorkerDisk = triPhotonDisk(opts, workers)
		cfg.RecordPerWorker = true
		return vinesim.Run(cfg, wl)
	}
	naive, tree := fig11(0), fig11(2)
	peak := func(res *vinesim.Result) units.Bytes {
		var m units.Bytes
		for _, p := range res.PeakCachePerWorker {
			if p > m {
				m = p
			}
		}
		return m
	}
	add("F11: tree reduce completes", tree.Completed, "completed=%v", tree.Completed)
	addScaled(0.08, "F11: naive peak cache ≥2x tree", float64(peak(naive)) >= 2*float64(peak(tree)),
		"peak %v vs %v", peak(naive), peak(tree))
	add("F11: naive pays (failures or slower)", naive.DiskFailures > 0 || !naive.Completed ||
		naive.Runtime > tree.Runtime, "fails=%d runtime %v vs %v", naive.DiskFailures, naive.Runtime, tree.Runtime)

	// --- Fig. 13: function calls feed the large pool ---
	addScaled(0.5, "F13: stack4 ≥2x stack3 throughput at full pool",
		stacks[4].Throughput() >= 2*stacks[3].Throughput(),
		"%.0f vs %.0f tasks/s", stacks[4].Throughput(), stacks[3].Throughput())

	// --- Fig. 14: dask slower and dead at scale ---
	vcfg := vinesim.StackConfig(4, opts.scaled(25, 3), 12, opts.Seed)
	vcfg.PreemptFraction = 0
	vres := vinesim.Run(vcfg, apps.DV3Scaled(apps.DV3Medium, opts.Scale, opts.Seed))
	dcfg := vinesim.DaskConfig(opts.scaled(25, 3), 12, opts.Seed)
	dcfg.PreemptFraction = 0
	dres := vinesim.Run(dcfg, apps.DV3Scaled(apps.DV3Medium, opts.Scale, opts.Seed))
	add("F14a: dask slower at scale", dres.Completed && dres.Runtime > vres.Runtime,
		"dask %v vs vine %v", dres.Runtime, vres.Runtime)
	crash := vinesim.Run(vinesim.DaskConfig(100, 12, opts.Seed), apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed))
	add("F14b: dask fails at 1200 cores", !crash.Completed, "completed=%v", crash.Completed)

	// --- Fig. 15: huge graph sustains concurrency and finishes ---
	huge := vinesim.Run(vinesim.StackConfig(4, opts.scaled(600, 4), 12, opts.Seed),
		apps.DV3Scaled(apps.DV3Huge, opts.Scale, opts.Seed))
	add("F15: DV3-Huge completes", huge.Completed, "runtime %v", huge.Runtime)

	// Report.
	pass, failed, skipped := 0, 0, 0
	for _, c := range checks {
		status := "FAIL"
		switch {
		case c.skipped:
			status = "skip"
			skipped++
		case c.ok:
			status = "ok  "
			pass++
		default:
			failed++
		}
		fmt.Fprintf(w, "   [%s] %-46s %s\n", status, c.name, c.got)
	}
	fmt.Fprintf(w, "   %d passed, %d failed, %d skipped (of %d shape checks)\n",
		pass, failed, skipped, len(checks))
	if failed > 0 {
		return fmt.Errorf("verify: %d shape checks failed", failed)
	}
	return nil
}
