package bench

import (
	"fmt"
	"io"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/sched"
	"hepvine/internal/vinesim"
)

// The scheduling-policy comparison is not a paper artifact: it exercises
// the internal/sched registry shared by both planes, running DV3-Medium
// under each stock policy so the cost of abandoning data-gravity placement
// (more shared-FS re-reads, longer runtime) is a regenerable number.

func init() {
	register(Experiment{
		ID:    "sched",
		Title: "Placement policies on DV3-Medium (locality vs binpack/spread/random)",
		Paper: "§IV.B places tasks where their inputs already sit; the alternatives quantify what that buys",
		Run:   runSchedPolicies,
	})
}

func runSchedPolicies(opts Options, w io.Writer) error {
	workers := opts.scaled(25, 3)
	csv, err := opts.csvFile("sched_policies")
	if err != nil {
		return err
	}
	if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "policy,runtime_s,completed,mean_wait_ms,peer_transfers,fs_read_bytes,throughput_tps")
	}
	row(w, "Policy", "Runtime", "Mean wait", "Peer xfers", "FS reads", "Throughput")
	for _, name := range sched.Names() {
		cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
		cfg.PreemptFraction = 0
		cfg.Policy = name
		res := vinesim.Run(cfg, apps.DV3Scaled(apps.DV3Medium, opts.Scale, opts.Seed))
		if !res.Completed {
			return fmt.Errorf("policy %s did not complete: %s", name, res.Failure)
		}
		wait := res.MeanQueueWait().Round(time.Millisecond)
		row(w, name, secs(res.Runtime), wait.String(),
			fmt.Sprintf("%d", res.Snapshot.PeerTransfers),
			res.FSReadBytes.String(),
			fmt.Sprintf("%.0f tasks/s", res.Throughput()))
		if csv != nil {
			fmt.Fprintf(csv, "%s,%.1f,%v,%.1f,%d,%d,%.1f\n", name,
				res.Runtime.Seconds(), res.Completed,
				float64(res.MeanQueueWait())/float64(time.Millisecond),
				res.Snapshot.PeerTransfers, int64(res.FSReadBytes), res.Throughput())
		}
	}
	fmt.Fprintln(w, "   (locality is the default in both planes; both run this exact policy code)")
	return nil
}
