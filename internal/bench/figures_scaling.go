package bench

import (
	"fmt"
	"io"
	"math"

	"hepvine/internal/apps"
	"hepvine/internal/core"
	"hepvine/internal/params"
	"hepvine/internal/units"
	"hepvine/internal/vinesim"
)

func init() {
	register(Experiment{
		ID:    "fig14a",
		Title: "Scaling: TaskVine vs Dask.Distributed (DV3-Small / DV3-Medium, 60-300 cores)",
		Paper: "similar at small scale; TaskVine completes in ~1/2 the time approaching 300 cores",
		Run:   runFig14a,
	})
	register(Experiment{
		ID:    "fig14b",
		Title: "Scaling: DV3-Large and RS-TriPhoton, 120-2400 cores",
		Paper: "DV3-Large peaks ~1200 cores; RS-TriPhoton keeps small gains to 2400; Dask.Distributed fails at this scale",
		Run:   runFig14b,
	})
}

func runFig14a(opts Options, w io.Writer) error {
	workerCounts := scaledLadder([]int{5, 10, 15, 20, 25}, opts.Scale) // ×12 cores = 60..300
	for _, size := range []apps.DV3Size{apps.DV3Small, apps.DV3Medium} {
		fmt.Fprintf(w, "   %s:\n", size)
		row(w, "Cores", "TaskVine", "Dask.Distributed", "dask/vine")
		for _, sw := range workerCounts {
			vcfg := vinesim.StackConfig(4, sw, 12, opts.Seed)
			vcfg.PreemptFraction = 0
			vres := vinesim.Run(vcfg, apps.DV3Scaled(size, opts.Scale, opts.Seed))
			dcfg := vinesim.DaskConfig(sw, 12, opts.Seed)
			dcfg.PreemptFraction = 0
			dres := vinesim.Run(dcfg, apps.DV3Scaled(size, opts.Scale, opts.Seed))
			if !vres.Completed {
				return fmt.Errorf("taskvine %s @ %d failed: %s", size, sw*12, vres.Failure)
			}
			dcol, ratio := "FAILED", "-"
			if dres.Completed {
				dcol = secs(dres.Runtime)
				ratio = fmt.Sprintf("%.2fx", dres.Runtime.Seconds()/vres.Runtime.Seconds())
			}
			row(w, fmt.Sprintf("%d", sw*12), secs(vres.Runtime), dcol, ratio)
		}
	}
	return nil
}

func runFig14b(opts Options, w io.Writer) error {
	workerCounts := scaledLadder([]int{10, 25, 50, 100, 200}, opts.Scale) // ×12 = 120..2400
	fmt.Fprintln(w, "   DV3-Large (TaskVine):")
	row(w, "Cores", "Runtime", "Speed vs 120c")
	var base float64
	for i, sw := range workerCounts {
		cfg := vinesim.StackConfig(4, sw, 12, opts.Seed)
		res := vinesim.Run(cfg, apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed))
		if !res.Completed {
			return fmt.Errorf("DV3-Large @ %d cores failed: %s", sw*12, res.Failure)
		}
		if i == 0 {
			base = res.Runtime.Seconds()
		}
		row(w, fmt.Sprintf("%d", sw*12), secs(res.Runtime), fmt.Sprintf("%.2fx", base/res.Runtime.Seconds()))
	}

	fmt.Fprintln(w, "   RS-TriPhoton (TaskVine):")
	row(w, "Cores", "Runtime", "Speed vs 120c")
	for i, sw := range workerCounts {
		cfg := vinesim.StackConfig(4, sw, 12, opts.Seed)
		cfg.WorkerDisk = triPhotonDisk(opts, sw)
		res := vinesim.Run(cfg, apps.TriPhotonScaled(2, opts.Scale, opts.Seed))
		if !res.Completed {
			return fmt.Errorf("TriPhoton @ %d cores failed: %s", sw*12, res.Failure)
		}
		if i == 0 {
			base = res.Runtime.Seconds()
		}
		row(w, fmt.Sprintf("%d", sw*12), secs(res.Runtime), fmt.Sprintf("%.2fx", base/res.Runtime.Seconds()))
	}

	// Dask.Distributed at this scale (paper: consistently fails).
	dcfg := vinesim.DaskConfig(100, 12, opts.Seed)
	dres := vinesim.Run(dcfg, apps.DV3Scaled(apps.DV3Large, opts.Scale, opts.Seed))
	if dres.Completed {
		fmt.Fprintln(w, "   WARNING: dask.distributed unexpectedly completed at 1200 cores")
	} else {
		fmt.Fprintf(w, "   Dask.Distributed at 1200 cores: FAILED (%s)\n", dres.Failure)
	}
	return nil
}

// scaledLadder scales a worker-count ladder, keeping it strictly increasing
// so scaling curves remain curves at small scale factors.
func scaledLadder(counts []int, scale float64) []int {
	out := make([]int, len(counts))
	prev := 0
	for i, c := range counts {
		v := int(math.Ceil(float64(c) * scale))
		if v <= prev {
			v = prev + 1
		}
		out[i] = v
		prev = v
	}
	return out
}

// triPhotonDisk sizes TriPhoton worker disks to the scaled workload: 2.8x
// the per-worker intermediate volume (the paper's 700GB allocation at its
// 20-worker shape), floored at 64 task outputs of headroom and capped at
// the paper's allocation.
func triPhotonDisk(opts Options, workers int) units.Bytes {
	probe := apps.TriPhotonScaled(2, opts.Scale, opts.Seed)
	var interm, maxOut units.Bytes
	for _, k := range probe.Graph.Keys() {
		if probe.Graph.Task(k).Category == "processor" {
			out := probe.Graph.Task(k).Spec.(*core.SimSpec).OutputSize
			interm += out
			if out > maxOut {
				maxOut = out
			}
		}
	}
	base := units.Bytes(float64(interm) / float64(workers) * 2.8)
	if floor := 64 * maxOut; base < floor {
		base = floor
	}
	if base > params.TriPhotonWorkerDisk {
		base = params.TriPhotonWorkerDisk
	}
	return base
}
