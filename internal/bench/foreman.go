package bench

import (
	"fmt"
	"io"
	"time"

	"hepvine/internal/foreman"
	"hepvine/internal/vine"
)

// The foreman experiment measures what the federation tier buys at the
// dispatch bottleneck: a flood of tiny independent tasks — where control
// handling, not computation, is the limit — runs on a flat manager and
// on 2- and 4-foreman trees with the same total worker pool. The root
// leases deep batches to shards instead of dispatching tasks to workers,
// so its control frames drop by the lease-batch factor and the queue —
// the quadratic part of a busy manager's life — shards across foremen.
// A second wave of fan-out consumers on a tight-capacity tree then pulls
// one shard's output into the others, exercising (and accounting) the
// root-brokered peer-transfer ticket path.

func init() {
	register(Experiment{
		ID:    "foreman",
		Title: "Hierarchical foremen: tiny-task dispatch throughput, flat vs federated",
		Paper: "§V scales to thousands of workers where a single manager's control loop saturates on tiny tasks; a foreman tier amortizes root traffic into batched leases and shards the queue",
		Run:   runForeman,
	})
}

const foremanBenchLib = "foremanbench"

// ctrlCost is the modelled per-control-frame manager cost (see
// vine.WithControlOverhead): ~0.5ms of serialized protocol handling per
// dispatch/completion/lease/report frame, the measured order of a
// production manager's single-threaded loop. Every manager in every
// config pays it — flat per task, federation shards per task, the root
// per batched frame — so the federated speedup comes from structure
// (lease batching and queue sharding), not an unevenly applied handicap.
const ctrlCost = 500 * time.Microsecond

func registerForemanBenchLib() {
	vine.MustRegisterLibrary(&vine.Library{
		Name: foremanBenchLib,
		Funcs: map[string]vine.Function{
			"tick": func(c *vine.Call) error {
				c.SetOutput("out", append([]byte("t"), c.Args...))
				return nil
			},
			"fan": func(c *vine.Call) error {
				in, err := c.Input("in")
				if err != nil {
					return err
				}
				c.SetOutput("out", append(in, c.Args...))
				return nil
			},
		},
	})
}

type foremanRun struct {
	label      string
	foremen    int
	tasks      int
	dur        time.Duration
	rate       float64
	frames     int // root control frames carrying task placements
	crossShard int
	crossBytes int64
}

func runForeman(opts Options, w io.Writer) error {
	registerForemanBenchLib()
	tasks := opts.scaled(3000, 120)
	const totalWorkers, coresPer = 8, 2

	var runs []foremanRun
	for _, n := range []int{0, 2, 4} {
		fr, err := runForemanFlood(opts, n, totalWorkers, coresPer, tasks)
		if err != nil {
			return err
		}
		if n > 0 {
			fr.crossShard, fr.crossBytes, err = runForemanFanout(opts, n, totalWorkers, coresPer)
			if err != nil {
				return err
			}
		}
		runs = append(runs, fr)
	}

	if csv, err := opts.csvFile("foreman"); err != nil {
		return err
	} else if csv != nil {
		defer csv.Close()
		fmt.Fprintln(csv, "config,foremen,tasks,runtime_s,tasks_per_s,root_frames,cross_shard_tickets,cross_shard_bytes")
		for _, fr := range runs {
			fmt.Fprintf(csv, "%s,%d,%d,%.4f,%.0f,%d,%d,%d\n",
				fr.label, fr.foremen, fr.tasks, fr.dur.Seconds(), fr.rate,
				fr.frames, fr.crossShard, fr.crossBytes)
		}
	}

	row(w, "Config", "Tasks", "Runtime", "Tasks/s", "Root frames", "X-shard bytes")
	for _, fr := range runs {
		row(w, fr.label,
			fmt.Sprintf("%d", fr.tasks),
			fmt.Sprintf("%.2fs", fr.dur.Seconds()),
			fmt.Sprintf("%.0f", fr.rate),
			fmt.Sprintf("%d", fr.frames),
			fmt.Sprintf("%d", fr.crossBytes))
	}
	flat, four := runs[0], runs[len(runs)-1]
	fmt.Fprintf(w, "   4-foreman speedup over flat: %.2fx (%.0f vs %.0f tasks/s); root placement frames %d -> %d\n",
		four.rate/flat.rate, four.rate, flat.rate, flat.frames, four.frames)
	for _, fr := range runs[1:] {
		if fr.crossShard == 0 {
			return fmt.Errorf("foreman: %s brokered no cross-shard tickets", fr.label)
		}
		if fr.frames >= fr.tasks {
			return fmt.Errorf("foreman: %s sent %d root frames for %d tasks — lease batching is off", fr.label, fr.frames, fr.tasks)
		}
	}
	return nil
}

// runForemanFlood is the throughput phase: tiny independent 1-core tasks
// flood the root. foremen == 0 is the flat baseline (same worker pool on
// one manager). Federated trees advertise deep lease-ahead so the root
// hands its queue to the shards in batched leases and never sits on a
// long ready set itself.
func runForemanFlood(opts Options, foremen, totalWorkers, coresPer, tasks int) (foremanRun, error) {
	fr := foremanRun{label: "flat", foremen: foremen, tasks: tasks}
	if foremen > 0 {
		fr.label = fmt.Sprintf("%d-foreman", foremen)
	}

	var root *vine.Manager
	cleanup := func() {}
	if foremen == 0 {
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(foremanBenchLib, true),
			vine.WithMaxRetries(5),
			vine.WithRetrySeed(opts.Seed),
			vine.WithControlOverhead(ctrlCost),
		)
		if err != nil {
			return fr, err
		}
		var ws []*vine.Worker
		for i := 0; i < totalWorkers; i++ {
			wk, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("flat-w%d", i)),
				vine.WithCores(coresPer),
			)
			if err != nil {
				mgr.Stop()
				return fr, err
			}
			ws = append(ws, wk)
		}
		cleanup = func() {
			for _, wk := range ws {
				wk.Stop()
			}
			mgr.Stop()
		}
		if err := mgr.WaitForWorkers(totalWorkers, 10*time.Second); err != nil {
			cleanup()
			return fr, err
		}
		root = mgr
	} else {
		// Lease-ahead sized so the shards can absorb the entire flood: the
		// root's ready set stays empty and the queue lives sharded.
		leaseAhead := 1 + tasks/(totalWorkers*coresPer)
		fed, err := newBenchFederation(opts, foremen, totalWorkers, coresPer,
			2*time.Millisecond, leaseAhead)
		if err != nil {
			return fr, err
		}
		cleanup = fed.Stop
		root = fed.Root
	}
	defer cleanup()

	start := time.Now()
	handles := make([]*vine.TaskHandle, 0, tasks)
	for i := 0; i < tasks; i++ {
		h, err := root.Submit(vine.Task{
			Mode: vine.ModeTask, Library: foremanBenchLib, Func: "tick",
			Args: []byte(fmt.Sprintf("%s-%d", fr.label, i)), Outputs: []string{"out"}, Cores: 1,
		})
		if err != nil {
			return fr, err
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if err := h.Wait(3 * time.Minute); err != nil {
			return fr, fmt.Errorf("foreman %s: task %d: %w", fr.label, i, err)
		}
	}
	fr.dur = time.Since(start)
	fr.rate = float64(tasks) / fr.dur.Seconds()

	if foremen == 0 {
		// One dispatch frame per task placement (plus one per retry).
		st := root.Stats()
		fr.frames = st.TasksDone + st.Retries
	} else {
		fr.frames = root.FederationStats().LeaseBatches
	}
	return fr, nil
}

// runForemanFanout is the data-plane phase on a tight tree (lease-ahead
// 1): one seed output, then more 1-core consumers than the seed's shard
// has cores, so the spill-over consumers must ride peer-transfer tickets
// into the sibling shards. Returns the root's cross-shard accounting.
func runForemanFanout(opts Options, foremen, totalWorkers, coresPer int) (int, int64, error) {
	const fanout = 48
	fed, err := newBenchFederation(opts, foremen, totalWorkers, coresPer, 4*time.Millisecond, 1)
	if err != nil {
		return 0, 0, err
	}
	defer fed.Stop()

	seed, err := fed.Root.Submit(vine.Task{
		Mode: vine.ModeTask, Library: foremanBenchLib, Func: "tick",
		Args: []byte("seed"), Outputs: []string{"out"}, Cores: 1,
	})
	if err != nil {
		return 0, 0, err
	}
	if err := seed.Wait(time.Minute); err != nil {
		return 0, 0, err
	}
	seedCN, _ := seed.Output("out")
	handles := make([]*vine.TaskHandle, 0, fanout)
	for i := 0; i < fanout; i++ {
		h, err := fed.Root.Submit(vine.Task{
			Mode: vine.ModeTask, Library: foremanBenchLib, Func: "fan",
			Args:    []byte(fmt.Sprintf("#%d", i)),
			Inputs:  []vine.FileRef{{Name: "in", CacheName: seedCN}},
			Outputs: []string{"out"}, Cores: 1,
		})
		if err != nil {
			return 0, 0, err
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if err := h.Wait(time.Minute); err != nil {
			return 0, 0, fmt.Errorf("foreman fanout %d: %w", i, err)
		}
	}
	st := fed.Root.FederationStats()
	return st.CrossShard, st.CrossShardBytes, nil
}

func newBenchFederation(opts Options, foremen, totalWorkers, coresPer int, report time.Duration, leaseAhead int) (*foreman.LocalFederation, error) {
	fed, err := foreman.NewLocalFederation(foreman.LocalConfig{
		Foremen:           foremen,
		WorkersPerForeman: totalWorkers / foremen,
		CoresPerWorker:    coresPer,
		ReportEvery:       report,
		LeaseAhead:        leaseAhead,
		RootOptions: []vine.Option{
			vine.WithMaxRetries(5),
			vine.WithRetrySeed(opts.Seed),
			vine.WithControlOverhead(ctrlCost),
		},
		LocalOptions: func(int) []vine.Option {
			return []vine.Option{
				vine.WithPeerTransfers(true),
				vine.WithLibrary(foremanBenchLib, true),
				vine.WithMaxRetries(5),
				vine.WithControlOverhead(ctrlCost),
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if err := fed.Root.WaitForWorkers(foremen, 10*time.Second); err != nil {
		fed.Stop()
		return nil, err
	}
	return fed, nil
}
