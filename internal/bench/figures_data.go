package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/units"
	"hepvine/internal/vinesim"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Pairwise transfer heatmap: Work Queue vs TaskVine peer transfers (DV3-Large)",
		Paper: "WQ: manager sends upwards of 40GB to individual workers; TaskVine: max between any two nodes ~4GB",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Task execution time distribution: standard tasks vs function calls (DV3-Large)",
		Paper: "majority of tasks between 1s and 10s; function calls strictly faster per task",
		Run:   runFig8,
	})
}

func runFig7(opts Options, w io.Writer) error {
	type caseRes struct {
		label string
		res   *vinesim.Result
	}
	var cases []caseRes
	for _, c := range []struct {
		label string
		stack int
	}{
		{"Work Queue (stack 2)", 2},
		{"TaskVine peers (stack 4)", 4},
	} {
		wl, workers := dv3LargeAt(opts)
		cfg := vinesim.StackConfig(c.stack, workers, 12, opts.Seed)
		rec := obs.NewRecorder()
		cfg.Recorder = rec
		res := vinesim.Run(cfg, wl)
		if !res.Completed {
			return fmt.Errorf("%s failed: %s", c.label, res.Failure)
		}
		cases = append(cases, caseRes{c.label, res})
		// The exported matrix is rendered from the event trace — the same
		// obs.TransferMatrix a live-plane trace goes through.
		if f, err := opts.csvFile(fmt.Sprintf("fig7_%s_matrix", map[int]string{2: "wq", 4: "vine"}[c.stack])); err != nil {
			return err
		} else if f != nil {
			if err := obs.WriteMatrixCSV(f, obs.TransferMatrix(rec.Events())); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
	}

	row(w, "Configuration", "mgr moved", "max pair", "peer xfers", "mgr xfers")
	for _, c := range cases {
		row(w, c.label,
			c.res.ManagerMoved.String(),
			c.res.MaxPairBytes.String(),
			fmt.Sprintf("%d", c.res.Snapshot.PeerTransfers),
			fmt.Sprintf("%d", c.res.Snapshot.ManagerTransfers))
	}

	// The headline ratio: how much the manager hot-spot shrinks.
	wqMax, tvMax := cases[0].res.MaxPairBytes, cases[1].res.MaxPairBytes
	if tvMax > 0 {
		fmt.Fprintf(w, "   hottest pair shrinks %.1fx with peer transfers\n",
			float64(wqMax)/float64(tvMax))
	}

	if opts.Verbose {
		for _, c := range cases {
			fmt.Fprintf(w, "   -- %s: top transfer pairs --\n", c.label)
			writeTopPairs(w, c.res, 8)
		}
	}
	return nil
}

// writeTopPairs prints the largest pairwise volumes of a run.
func writeTopPairs(w io.Writer, res *vinesim.Result, n int) {
	type pair struct {
		src, dst string
		b        units.Bytes
	}
	var pairs []pair
	for s, rowm := range res.TransferMatrix {
		for d, b := range rowm {
			pairs = append(pairs, pair{s, d, b})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].b != pairs[j].b {
			return pairs[i].b > pairs[j].b
		}
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	if n > len(pairs) {
		n = len(pairs)
	}
	max := float64(pairs[0].b)
	for _, p := range pairs[:n] {
		fmt.Fprintf(w, "   %12s -> %-12s %10s %s\n", p.src, p.dst, p.b, bar(float64(p.b), max, 30))
	}
}

func runFig8(opts Options, w io.Writer) error {
	// Stack 3 = standard tasks, stack 4 = function calls; same workload.
	var dists [2][]time.Duration
	labels := [2]string{"Standard Tasks", "Function Calls"}
	for i, stack := range []int{3, 4} {
		wl, workers := dv3LargeAt(opts)
		cfg := vinesim.StackConfig(stack, workers, 12, opts.Seed)
		res := vinesim.Run(cfg, wl)
		if !res.Completed {
			return fmt.Errorf("%s failed: %s", labels[i], res.Failure)
		}
		dists[i] = res.TaskExec
		if f, err := opts.csvFile(fmt.Sprintf("fig8_%s", map[int]string{3: "standard", 4: "functioncalls"}[stack])); err != nil {
			return err
		} else if f != nil {
			fmt.Fprintln(f, "exec_seconds")
			for _, d := range res.TaskExec {
				fmt.Fprintf(f, "%.3f\n", d.Seconds())
			}
			f.Close()
		}
	}

	// Log-spaced buckets from 0.1s to 100s, as in the paper's figure.
	edges := []float64{0.1, 0.3, 1, 3, 10, 30, 100, math.Inf(1)}
	names := []string{"<0.3s", "0.3-1s", "1-3s", "3-10s", "10-30s", "30-100s", ">100s"}
	row(w, "Bucket", labels[0], labels[1])
	counts := [2][]int{make([]int, len(names)), make([]int, len(names))}
	for i := range dists {
		for _, d := range dists[i] {
			s := d.Seconds()
			for b := 0; b < len(names); b++ {
				if s >= edges[b] && s < edges[b+1] {
					counts[i][b]++
					break
				}
			}
		}
	}
	for b, name := range names {
		row(w, name, fmt.Sprintf("%d", counts[0][b]), fmt.Sprintf("%d", counts[1][b]))
	}
	med0, med1 := median(dists[0]), median(dists[1])
	fmt.Fprintf(w, "   median task time: standard %.2fs, function calls %.2fs (%.2fx lighter)\n",
		med0.Seconds(), med1.Seconds(), med0.Seconds()/med1.Seconds())
	frac := inRangeFraction(dists[1], time.Second, 10*time.Second)
	fmt.Fprintf(w, "   function calls within 1-10s: %.0f%%\n", frac*100)
	return nil
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func inRangeFraction(ds []time.Duration, lo, hi time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	n := 0
	for _, d := range ds {
		if d >= lo && d <= hi {
			n++
		}
	}
	return float64(n) / float64(len(ds))
}
