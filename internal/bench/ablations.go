package bench

import (
	"fmt"
	"io"

	"hepvine/internal/apps"
	"hepvine/internal/units"
	"hepvine/internal/vinesim"
)

// Ablations of the design choices DESIGN.md §5 calls out. These are not
// paper artifacts; they probe how sensitive the headline results are to two
// tunables: the peer-transfer governor's per-source cap and the reduction
// fan-in.

func init() {
	register(Experiment{
		ID:    "ablation-cap",
		Title: "Ablation: peer-transfer concurrency cap per source (RS-TriPhoton, GB-scale intermediates)",
		Paper: "§IV.B caps concurrent peer transfers so 'uncontrolled peer transfers do not create network contention'",
		Run:   runAblationCap,
	})
	register(Experiment{
		ID:    "ablation-fanin",
		Title: "Ablation: reduction fan-in vs runtime and peak worker storage (RS-TriPhoton)",
		Paper: "Fig. 11 contrasts fan-in=all vs 2; the full trade-off curve lives between them",
		Run:   runAblationFanIn,
	})
}

func runAblationCap(opts Options, w io.Writer) error {
	workers := opts.scaled(20, 4)
	row(w, "Cap", "Runtime", "Completed", "Peer transfers", "Max pair")
	for _, cap := range []int{1, 3, 10, 1 << 20} {
		wl := apps.TriPhotonScaled(2, opts.Scale, opts.Seed)
		cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
		cfg.WorkerDisk = triPhotonDisk(opts, workers)
		cfg.TransferCap = cap
		res := vinesim.Run(cfg, wl)
		label := fmt.Sprintf("%d", cap)
		if cap >= 1<<20 {
			label = "unbounded"
		}
		row(w, label, secs(res.Runtime), fmt.Sprintf("%v", res.Completed),
			fmt.Sprintf("%d", res.Snapshot.PeerTransfers), res.MaxPairBytes.String())
	}
	return nil
}

func runAblationFanIn(opts Options, w io.Writer) error {
	workers := opts.scaled(20, 4)
	row(w, "Fan-in", "Runtime", "Completed", "Disk fails", "Peak cache", "Graph size")
	for _, fanIn := range []int{2, 4, 8, 0} {
		wl := apps.TriPhotonScaled(fanIn, opts.Scale, opts.Seed)
		cfg := vinesim.StackConfig(4, workers, 12, opts.Seed)
		cfg.WorkerDisk = triPhotonDisk(opts, workers)
		cfg.RecordPerWorker = true
		res := vinesim.Run(cfg, wl)
		var peak units.Bytes
		for _, p := range res.PeakCachePerWorker {
			if p > peak {
				peak = p
			}
		}
		label := fmt.Sprintf("%d", fanIn)
		if fanIn == 0 {
			label = "all (naive)"
		}
		row(w, label, secs(res.Runtime), fmt.Sprintf("%v", res.Completed),
			fmt.Sprintf("%d", res.DiskFailures), peak.String(),
			fmt.Sprintf("%d", wl.TaskCount()))
	}
	fmt.Fprintln(w, "   (small fan-in bounds per-node storage at the cost of tree depth)")
	return nil
}
