package params

import (
	"testing"
	"time"
)

func TestStorageEnvelopeOrdering(t *testing.T) {
	// The §II.D/§IV.A premise: HDFS is high-latency, VAST low-latency,
	// local disk lowest; VAST has the highest aggregate throughput.
	if !(LocalDisk.OpLatency < VAST.OpLatency && VAST.OpLatency < HDFS.OpLatency) {
		t.Fatalf("latency ordering broken: %v %v %v",
			LocalDisk.OpLatency, VAST.OpLatency, HDFS.OpLatency)
	}
	if VAST.AggregateRead <= HDFS.AggregateRead {
		t.Fatal("VAST should out-read HDFS in aggregate")
	}
}

func TestImportCostOrdering(t *testing.T) {
	local, vast, hdfs := ImportCost(LocalDisk), ImportCost(VAST), ImportCost(HDFS)
	if !(local < vast && vast < hdfs) {
		t.Fatalf("import costs out of order: %v %v %v", local, vast, hdfs)
	}
	// Imports must be sub-second on local disk and multi-second on HDFS
	// (the Fig. 10 regime).
	if local > time.Second {
		t.Fatalf("local import cost %v implausibly high", local)
	}
	if hdfs < 5*time.Second {
		t.Fatalf("hdfs import cost %v implausibly low", hdfs)
	}
}

func TestDispatchCostOrdering(t *testing.T) {
	// The Table-I mechanism: function-call dispatch must be much cheaper
	// than standard-task dispatch, and worker-side invocation much cheaper
	// than interpreter startup.
	if DispatchCostFunctionCall*10 > DispatchCostTask {
		t.Fatalf("dispatch gap too small: %v vs %v", DispatchCostFunctionCall, DispatchCostTask)
	}
	if FCInvokeOverhead*5 > TaskStartup {
		t.Fatalf("startup gap too small: %v vs %v", FCInvokeOverhead, TaskStartup)
	}
	if FCPayloadBytes*10 > TaskPayloadBytes {
		t.Fatalf("payload gap too small: %v vs %v", FCPayloadBytes, TaskPayloadBytes)
	}
}

func TestDaskSchedulerScale(t *testing.T) {
	if DaskSchedulerScale(0) != 1 {
		t.Fatalf("scale(0) = %v", DaskSchedulerScale(0))
	}
	if DaskSchedulerScale(100) != 2 {
		t.Fatalf("scale(100) = %v", DaskSchedulerScale(100))
	}
	if DaskSchedulerScale(300) <= DaskSchedulerScale(60) {
		t.Fatal("scale must grow with workers")
	}
}

func TestClusterShapeConstants(t *testing.T) {
	// §IV: 12-core workers, 96GB RAM, 108GB disk; ≤1% preemption.
	if WorkerCores != 12 {
		t.Fatalf("cores = %d", WorkerCores)
	}
	if PreemptFraction <= 0 || PreemptFraction > 0.05 {
		t.Fatalf("preemption fraction = %v", PreemptFraction)
	}
	if WorkerSpeedSpread < 0 || WorkerSpeedSpread >= 0.5 {
		t.Fatalf("speed spread = %v", WorkerSpeedSpread)
	}
	if TriPhotonWorkerDisk <= WorkerDisk {
		t.Fatal("TriPhoton workers should have bigger disks (§V.B)")
	}
}

func TestElasticityDefaults(t *testing.T) {
	// Pin the live-engine mirrors: cmd/vineworker's -drain-grace default
	// and vine's internal drain fallback both advertise 30s; the simulator
	// preempts PreemptFraction of the pool over a 10-minute window (§IV).
	if DefaultDrainGrace != 30*time.Second {
		t.Fatalf("DefaultDrainGrace = %v", DefaultDrainGrace)
	}
	if DefaultPreemptWindow != 10*time.Minute {
		t.Fatalf("DefaultPreemptWindow = %v", DefaultPreemptWindow)
	}
	// Autoscaler shape: hysteresis must actually damp — a scale decision
	// needs a cooldown longer than the sampling period and more than one
	// idle poll before shedding capacity.
	if DefaultPoolCooldown <= DefaultPoolPoll {
		t.Fatalf("cooldown %v must exceed poll %v", DefaultPoolCooldown, DefaultPoolPoll)
	}
	if DefaultPoolIdlePolls < 2 {
		t.Fatalf("idle polls = %d; scale-down needs hysteresis", DefaultPoolIdlePolls)
	}
	if DefaultPoolTasksPerWorker < 1 {
		t.Fatalf("tasks per worker = %d", DefaultPoolTasksPerWorker)
	}
}

func TestFederationDefaults(t *testing.T) {
	// Pin the federation mirrors: vine's lease batching and the foreman's
	// report cadence are the two knobs the bench sweeps; drifting them
	// silently would invalidate cross-PR throughput comparisons.
	if DefaultForemanFanout != 2 {
		t.Fatalf("DefaultForemanFanout = %d", DefaultForemanFanout)
	}
	if DefaultLeaseBatch != 64 {
		t.Fatalf("DefaultLeaseBatch = %d", DefaultLeaseBatch)
	}
	if DefaultForemanReportEvery != 200*time.Millisecond {
		t.Fatalf("DefaultForemanReportEvery = %v", DefaultForemanReportEvery)
	}
	// A report window at or above the 2s heartbeat would make the root
	// think a busy foreman went quiet; keep an order of magnitude of
	// headroom under vine's default liveness ping.
	if DefaultForemanReportEvery >= 2*time.Second/4 {
		t.Fatalf("report window %v too close to the heartbeat", DefaultForemanReportEvery)
	}
}
