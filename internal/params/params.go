// Package params centralizes the calibrated constants of the simulation
// plane: hardware capacities, storage characteristics, and software
// overheads. Every value is either taken from the paper's setup description
// (§IV: 12-core 2.50GHz Xeons, 96GB RAM, 108GB disk workers; 10GigE campus
// fabric; HDFS on spinning disk vs VAST on NVMe) or calibrated so the
// regenerated tables and figures match the paper's *shape* — who wins, by
// roughly what factor, where crossovers fall. EXPERIMENTS.md records
// paper-vs-measured for every artifact.
package params

import (
	"time"

	"hepvine/internal/units"
)

// ---- network fabric ----

// Network capacities of the campus cluster fabric.
var (
	// WorkerNIC is each compute node's link (10 GigE campus cluster).
	WorkerNIC = units.Gbps(10)
	// ManagerNIC is the manager node's link. The same 10 GigE — which is
	// exactly why routing all data through the manager (Work Queue)
	// bottlenecks at scale (Fig. 7).
	ManagerNIC = units.Gbps(10)
	// NetLatency is the one-way per-endpoint fabric latency contribution.
	NetLatency = 250 * time.Microsecond
)

// ---- storage systems (§II.D, §IV.A) ----

// FS describes a shared filesystem's performance envelope.
type FS struct {
	Name string
	// OpLatency is the per-operation (metadata + first byte) latency.
	OpLatency time.Duration
	// AggregateRead caps total read bandwidth across all clients.
	AggregateRead units.BytesPerSec
	// AggregateWrite caps total write bandwidth.
	AggregateWrite units.BytesPerSec
}

// HDFS models the legacy 644TB spinning-disk cluster: high throughput in
// bulk, high per-operation latency (triple-replicated commodity disks).
// The aggregate read rate reflects the random-read envelope the analysis
// workload actually sees (many concurrent column-chunk reads are seek-bound
// on spinning disks), not the sequential streaming peak.
var HDFS = FS{
	Name:           "hdfs",
	OpLatency:      25 * time.Millisecond,
	AggregateRead:  units.GBps(1.0),
	AggregateWrite: units.MBps(400),
}

// VAST models the 918TB NVMe parallel filesystem: low latency POSIX access
// and higher aggregate throughput.
var VAST = FS{
	Name:           "vast",
	OpLatency:      800 * time.Microsecond,
	AggregateRead:  units.GBps(40),
	AggregateWrite: units.GBps(20),
}

// LocalDisk models worker-node local storage (where TaskVine keeps its
// cache): modest bandwidth but near-zero access latency.
var LocalDisk = FS{
	Name:           "local",
	OpLatency:      60 * time.Microsecond,
	AggregateRead:  units.MBps(900), // per node
	AggregateWrite: units.MBps(600),
}

// ---- worker nodes (§IV: "200 12-core workers, ... 96GB RAM, 108GB disk") ----

// Standard worker-node shape for DV3 runs.
var (
	WorkerCores  = 12
	WorkerRAM    = units.GBf(96)
	WorkerDisk   = units.GBf(108)
	WorkerCPUGHz = 2.50
)

// RS-TriPhoton workers get bigger allocations (§V.B: "700GB disk and 200GB
// of RAM").
var (
	TriPhotonWorkerDisk = units.GBf(700)
	TriPhotonWorkerRAM  = units.GBf(200)
)

// PreemptFraction is the opportunistic-cluster preemption rate: "the
// preemption of up to 1% of workers in each run" (§IV).
var PreemptFraction = 0.01

// WorkerStartupSpread is the window over which batch-submitted workers come
// online (HTCondor scheduling jitter).
var WorkerStartupSpread = 30 * time.Second

// WorkerSpeedSpread is the CPU heterogeneity of the opportunistic pool
// (§IV: "heterogeneous campus HTCondor cluster"): node speeds are drawn
// from [1-s, 1+s] around nominal.
var WorkerSpeedSpread = 0.15

// ---- software overheads (§III.C, §IV.B) ----

// Per-task costs by execution paradigm. "Standard" tasks serialize the
// function, ship it, start a Python interpreter, and import libraries every
// time; serverless function calls hit a persistent library process.
var (
	// DispatchCostTask is the manager CPU time to serialize, record, and
	// transmit one standard task. The manager is a serial server, so this
	// bounds dispatch throughput at ~1/DispatchCostTask tasks/s — the
	// oscillation Stack 3 shows in Fig. 12.
	DispatchCostTask = 35 * time.Millisecond
	// DispatchCostFunctionCall is the same for a function invocation:
	// only the function name and arguments travel (§IV.B).
	DispatchCostFunctionCall = 600 * time.Microsecond
	// CollectCost is the manager CPU time to retire any completed task.
	CollectCost = 400 * time.Microsecond

	// TaskStartup is the on-worker cost of one standard task before user
	// code runs: wrapper script, interpreter start, function
	// deserialization. Library imports are charged separately.
	TaskStartup = 650 * time.Millisecond
	// FCInvokeOverhead is the on-worker cost of forking an invocation
	// inside a persistent library.
	FCInvokeOverhead = 40 * time.Millisecond

	// TaskPayloadBytes is the serialized-function traffic per standard
	// task (manager → worker); function calls send only arguments.
	TaskPayloadBytes = units.Bytes(512 << 10)
	FCPayloadBytes   = units.Bytes(4 << 10)
)

// Import model (Fig. 9/10): importing the analysis libraries touches many
// small files — a metadata-heavy walk plus bulk bytecode reads. Hoisting
// runs it once per LibraryTask instead of per invocation.
var (
	// ImportMetaOps is the number of filesystem metadata operations an
	// import sweep performs (path searches, stat calls).
	ImportMetaOps = 1200
	// ImportBytes is the bulk bytecode/shared-object volume read.
	ImportBytes = units.MBf(180)
)

// ImportCost computes the wall-clock cost of one import sweep against the
// given filesystem: metadata ops pay per-op latency, bulk bytes pay
// bandwidth. This is why hoisting matters most for fine-grained tasks and
// why local disk beats the shared filesystem for imports (Fig. 10).
func ImportCost(fs FS) time.Duration {
	meta := time.Duration(ImportMetaOps) * fs.OpLatency
	bulk := fs.AggregateRead.TimeFor(ImportBytes)
	return meta + bulk
}

// ---- Dask.Distributed comparator model (§V.B) ----

var (
	// DaskSchedulerOverhead is the central scheduler's per-task base cost.
	// Dask's pure-Python scheduler spends ~ms-scale time per task, and it
	// is the shared bottleneck for every worker. The effective cost grows
	// with worker count (see DaskSchedulerScale): more workers mean more
	// heartbeats, more connections, and more GIL contention inside the
	// scheduler process.
	DaskSchedulerOverhead = 10 * time.Millisecond
	// DaskWorkerOverhead is the per-task overhead on a single-core,
	// share-nothing Dask worker process (deserialization + GIL contention
	// with the worker's own communication threads).
	DaskWorkerOverhead = 800 * time.Millisecond
	// DaskCrashCores is the scale beyond which Dask.Distributed runs
	// "consistently fail with a combination of worker and application
	// crashes and hangs" on these workloads (§V.B). Runs at or above this
	// many cores are reported as failed.
	DaskCrashCores = 1200
	// DaskInstabilityCores is where per-run crash probability starts
	// growing; between here and DaskCrashCores runs degrade.
	DaskInstabilityCores = 600
)

// DaskSchedulerScale reports the multiplier on DaskSchedulerOverhead for a
// given worker-process count: per-task cost grows roughly linearly with the
// number of connected workers.
func DaskSchedulerScale(workers int) float64 {
	return 1 + float64(workers)/100
}

// ---- misc ----

// ResultNoticeBytes is the completion-message size (metadata only) a worker
// sends the manager when retaining outputs locally.
var ResultNoticeBytes = units.Bytes(2 << 10)

// DefaultTransferCapPerSource mirrors the live engine's default governor
// cap on concurrent outbound peer transfers per worker.
var DefaultTransferCapPerSource = 3

// DefaultTransferAttempts mirrors the live engine's per-file staging
// attempt bound: how many times one file may fail over to another replica
// before the failure escalates to a task-level retry (and, with no clean
// replica left, a lineage rollback of the producer).
var DefaultTransferAttempts = 3

// ---- durability (run journal + warm restart) ----

// DefaultJournalCompactEvery mirrors the live engine's compaction cadence:
// after this many completed tasks the manager cuts the write-ahead log and
// folds the prefix into a snapshot, bounding replay time for long runs.
var DefaultJournalCompactEvery = 512

// DefaultOrphanTTL mirrors the persistent worker cache's grace window for
// entries the manager does not recognize at re-registration: survivors of a
// previous run are kept this long for a resuming manager to claim before
// the orphan GC reclaims the disk.
var DefaultOrphanTTL = 10 * time.Minute

// DefaultReconnectBackoff mirrors the worker's delay between redial
// attempts after losing its control connection — long enough not to hammer
// a restarting manager, short enough that a warm resume feels immediate.
var DefaultReconnectBackoff = 50 * time.Millisecond

// ---- availability (hot standby + lease failover) ----

// DefaultLeaseTTL mirrors internal/ha's leadership lease duration: the
// window a primary may go silent before a standby takes over. Takeover
// latency (lease expiry → first dispatch by the standby) is bounded by
// under 2× this value in the chaos HA suite.
var DefaultLeaseTTL = time.Second

// DefaultLeaseRenewEvery mirrors the holder's renewal cadence (TTL/3):
// two consecutive missed renewals still leave slack before expiry, so a
// single slow fsync of the lease file does not trigger a failover.
var DefaultLeaseRenewEvery = DefaultLeaseTTL / 3

// DefaultStandbyPoll mirrors the standby's journal-tail and lease-watch
// cadence (TTL/8): replay state stays within one poll of the primary's
// synced history, and lease expiry is noticed well inside the takeover
// latency bound.
var DefaultStandbyPoll = DefaultLeaseTTL / 8

// ---- elasticity (internal/pool — autoscaled, preemption-tolerant pools) ----

// DefaultDrainGrace mirrors the live engine's grace window for a worker
// preempted without an explicit notice period (cmd/vineworker's
// -drain-grace flag and vine's internal default): long enough to finish a
// typical fine-grained task and evacuate sole-replica cache entries,
// short enough to respect an HTCondor-style eviction deadline.
var DefaultDrainGrace = 30 * time.Second

// DefaultPreemptWindow mirrors the simulator's preemption window: the
// interval over which PreemptFraction of the pool is evicted in each run
// (§IV). The live chaos plane compresses the same shape into test time.
var DefaultPreemptWindow = 10 * time.Minute

// DefaultPoolPoll mirrors the autoscaler's control-loop cadence: how often
// it samples queue backlog and task queue-wait before deciding to scale.
var DefaultPoolPoll = time.Second

// DefaultPoolCooldown mirrors the autoscaler's minimum spacing between
// scaling actions, so one burst of backlog cannot thrash the pool.
var DefaultPoolCooldown = 5 * time.Second

// DefaultPoolTasksPerWorker mirrors the autoscaler's target backlog per
// live worker: pending tasks beyond size×this grow the pool; a sustained
// backlog below the target (with idle polls) shrinks it.
var DefaultPoolTasksPerWorker = 4

// DefaultPoolIdlePolls mirrors how many consecutive under-target polls the
// autoscaler requires before scaling down — the hysteresis that keeps a
// briefly-quiet pool from shedding workers it is about to need.
var DefaultPoolIdlePolls = 3

// ---- multi-tenant gate (internal/gate — the analysis-facility front door) ----

// DefaultGateMaxSessions mirrors the gate's per-tenant cap on concurrently
// open sessions: enough for an analyst's handful of notebooks, small
// enough that one runaway client cannot exhaust the session table.
var DefaultGateMaxSessions = 8

// DefaultGateMaxInFlight mirrors the per-tenant cap on tasks submitted but
// not yet terminal. Sized to keep one tenant's backlog from monopolizing
// the ready heap while still covering a full DV3-scale graph.
var DefaultGateMaxInFlight = 1024

// DefaultGateSubmitRate mirrors the per-tenant token-bucket refill rate,
// in task submissions per second. Interactive resubmission of a few
// thousand-task graphs per minute fits; a tight submit loop does not.
var DefaultGateSubmitRate = 500.0

// DefaultGateSubmitBurst mirrors the token bucket's capacity: one whole
// medium graph may land in a single request before the rate applies.
var DefaultGateSubmitBurst = 1000

// DefaultGateQueueWeight mirrors the fair-share weight a tenant's queue
// gets when no explicit weight is configured.
var DefaultGateQueueWeight = 1.0

// DefaultGateDrainTimeout mirrors how long a shutting-down gate waits for
// in-flight sessions to finish before abandoning the drain.
var DefaultGateDrainTimeout = 30 * time.Second

// ---- manager federation (internal/foreman — hierarchical foremen) ----

// DefaultForemanFanout mirrors the default number of foremen a federated
// run stands up when the caller asks for federation without sizing it.
// Two shards is the smallest topology that exercises every cross-shard
// path (peer tickets, re-homing, lease replay) while still fitting on a
// laptop-scale loopback cluster.
var DefaultForemanFanout = 2

// DefaultLeaseBatch mirrors how many task leases the root coalesces into
// one frame to a foreman. Batching is where the dispatch-throughput win
// over a flat manager comes from: one length+CRC+JSON envelope amortized
// over many tiny tasks. 64 keeps a batch well under a heartbeat interval
// even at paper-scale task rates while cutting per-task frame overhead
// by more than an order of magnitude.
var DefaultLeaseBatch = 64

// DefaultForemanReportEvery mirrors the foreman's aggregation window:
// completions, replica addresses, and backlog accumulate locally and
// ship upward at this cadence (or immediately once a full lease batch
// has finished). Short enough that the root's view lags a shard by well
// under a heartbeat; long enough that a 10k-task burst reports in
// hundreds of frames, not 10k.
var DefaultForemanReportEvery = 200 * time.Millisecond
