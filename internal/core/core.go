// Package core holds the TaskVine scheduling core in transport-agnostic
// form: the replica table that tracks where every file lives, the
// data-locality placement policy, and the peer-transfer governor. The live
// engine (internal/vine) implements the same policies over TCP; the
// simulation plane (internal/vinesim) composes these directly. Keeping them
// in one package makes the simulated scheduler's behaviour reviewable
// against the live one.
//
// It also defines the workload vocabulary shared by the application models
// (internal/apps) and the simulator: SimSpec task payloads and Workload
// bundles.
package core

import (
	"fmt"
	"sort"
	"time"

	"hepvine/internal/dag"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

// ---- replica table ----

// ReplicaTable tracks which nodes hold which files (§IV.B: "The manager
// maintains a mapping of the location of each file within the cluster").
type ReplicaTable struct {
	size  map[storage.FileID]units.Bytes
	holds map[storage.FileID]map[int]bool // file → node ids
}

// NewReplicaTable returns an empty table.
func NewReplicaTable() *ReplicaTable {
	return &ReplicaTable{
		size:  make(map[storage.FileID]units.Bytes),
		holds: make(map[storage.FileID]map[int]bool),
	}
}

// SetSize records a file's size (idempotent).
func (rt *ReplicaTable) SetSize(f storage.FileID, size units.Bytes) {
	rt.size[f] = size
}

// Size reports a file's size.
func (rt *ReplicaTable) Size(f storage.FileID) units.Bytes { return rt.size[f] }

// Add records that node holds f.
func (rt *ReplicaTable) Add(f storage.FileID, node int) {
	m := rt.holds[f]
	if m == nil {
		m = make(map[int]bool)
		rt.holds[f] = m
	}
	m[node] = true
}

// Remove drops one replica.
func (rt *ReplicaTable) Remove(f storage.FileID, node int) {
	if m := rt.holds[f]; m != nil {
		delete(m, node)
	}
}

// DropNode removes every replica held by a (preempted) node and returns the
// files that now have zero replicas.
func (rt *ReplicaTable) DropNode(node int) []storage.FileID {
	var orphaned []storage.FileID
	for f, m := range rt.holds {
		if m[node] {
			delete(m, node)
			if len(m) == 0 {
				orphaned = append(orphaned, f)
			}
		}
	}
	sort.Slice(orphaned, func(i, j int) bool { return orphaned[i] < orphaned[j] })
	return orphaned
}

// Holders lists nodes holding f, sorted.
func (rt *ReplicaTable) Holders(f storage.FileID) []int {
	m := rt.holds[f]
	out := make([]int, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// HasReplica reports whether any node holds f.
func (rt *ReplicaTable) HasReplica(f storage.FileID) bool { return len(rt.holds[f]) > 0 }

// Holds reports whether a specific node holds f.
func (rt *ReplicaTable) Holds(f storage.FileID, node int) bool { return rt.holds[f][node] }

// ---- placement policy ----

// Candidate describes one schedulable worker to the placement policy.
type Candidate struct {
	Node      int
	FreeCores int
}

// PickWorker chooses a worker for a task needing the given input files:
// the candidate with the most input bytes already local wins; ties prefer
// more free cores, then lower node id (determinism). Mirrors the live
// manager's pickWorkerLocked. Returns -1 if candidates is empty.
func (rt *ReplicaTable) PickWorker(candidates []Candidate, inputs []storage.FileID) int {
	best := -1
	var bestLocal units.Bytes = -1
	bestFree := -1
	for _, c := range candidates {
		var local units.Bytes
		for _, f := range inputs {
			if rt.Holds(f, c.Node) {
				local += rt.size[f]
			}
		}
		if best == -1 || local > bestLocal || (local == bestLocal && c.FreeCores > bestFree) ||
			(local == bestLocal && c.FreeCores == bestFree && c.Node < best) {
			best, bestLocal, bestFree = c.Node, local, c.FreeCores
		}
	}
	return best
}

// ---- peer-transfer governor ----

// TransferRequest asks for file f to be copied to node Dest.
type TransferRequest struct {
	File storage.FileID
	Dest int
}

// Governor caps concurrent outbound transfers per source node (§IV.B: "the
// manager manages the number of concurrent peer transfers that a worker may
// perform"). Requests that cannot start immediately are queued and retried
// whenever a source frees up.
type Governor struct {
	Cap int

	outbound map[int]int
	queue    []*govRequest
}

type govRequest struct {
	req    TransferRequest
	choose func(maxLoad int) int
	start  func(source int)
}

// NewGovernor returns a governor with the given per-source cap (<=0 means
// uncapped).
func NewGovernor(cap int) *Governor {
	return &Governor{Cap: cap, outbound: make(map[int]int)}
}

// Outbound reports a node's active outbound transfers.
func (g *Governor) Outbound(node int) int { return g.outbound[node] }

// QueueLen reports deferred transfers.
func (g *Governor) QueueLen() int { return len(g.queue) }

// Request asks to transfer req.File to req.Dest. choose must return the
// preferred source node whose load is below maxLoad, or a negative value if
// none qualifies right now (the request queues and is retried on Done).
// start is invoked — possibly later — with the granted source.
func (g *Governor) Request(req TransferRequest, choose func(maxLoad int) int, start func(source int)) {
	gr := &govRequest{req: req, choose: choose, start: start}
	if !g.tryStart(gr) {
		g.queue = append(g.queue, gr)
	}
}

func (g *Governor) tryStart(gr *govRequest) bool {
	maxLoad := g.Cap
	if maxLoad <= 0 {
		maxLoad = 1 << 30
	}
	src := gr.choose(maxLoad)
	if src < 0 {
		return false
	}
	g.outbound[src]++
	gr.start(src)
	return true
}

// Done releases one outbound slot on source and retries queued requests.
func (g *Governor) Done(source int) {
	if g.outbound[source] > 0 {
		g.outbound[source]--
	}
	var still []*govRequest
	for _, gr := range g.queue {
		if !g.tryStart(gr) {
			still = append(still, gr)
		}
	}
	g.queue = still
}

// ---- workload vocabulary ----

// SimSpec is the simulation-plane payload of a dag.Task: what the task
// costs rather than what it computes.
type SimSpec struct {
	// Compute is the pure user-code execution time on one core.
	Compute time.Duration
	// Inputs lists dataset files read from shared storage (task outputs
	// are implied by graph dependencies).
	Inputs []storage.FileID
	// OutputSize is the bytes the task's output occupies.
	OutputSize units.Bytes
}

// OutputFileID names the output file of a graph task.
func OutputFileID(k dag.Key) storage.FileID {
	return storage.FileID("out:" + string(k))
}

// Workload bundles a simulation graph with its external dataset files.
type Workload struct {
	Name  string
	Graph *dag.Graph
	Root  dag.Key
	// DatasetFiles maps external input files to their sizes; they live on
	// the shared filesystem at t=0.
	DatasetFiles map[storage.FileID]units.Bytes
}

// InputBytes totals the dataset size.
func (w *Workload) InputBytes() units.Bytes {
	var total units.Bytes
	for _, s := range w.DatasetFiles {
		total += s
	}
	return total
}

// TaskCount reports graph size.
func (w *Workload) TaskCount() int { return w.Graph.Len() }

// TotalCompute sums every task's compute time (core-seconds of real work).
func (w *Workload) TotalCompute() time.Duration {
	var total time.Duration
	for _, k := range w.Graph.Keys() {
		if spec, ok := w.Graph.Task(k).Spec.(*SimSpec); ok {
			total += spec.Compute
		}
	}
	return total
}

// Validate checks that every task carries a SimSpec and every referenced
// dataset file is declared.
func (w *Workload) Validate() error {
	if !w.Graph.Finalized() {
		return fmt.Errorf("core: workload %q graph not finalized", w.Name)
	}
	if w.Graph.Task(w.Root) == nil {
		return fmt.Errorf("core: workload %q root %q missing", w.Name, w.Root)
	}
	for _, k := range w.Graph.Keys() {
		spec, ok := w.Graph.Task(k).Spec.(*SimSpec)
		if !ok {
			return fmt.Errorf("core: task %q lacks a SimSpec", k)
		}
		for _, f := range spec.Inputs {
			if _, ok := w.DatasetFiles[f]; !ok {
				return fmt.Errorf("core: task %q reads undeclared dataset file %q", k, f)
			}
		}
		if spec.Compute < 0 || spec.OutputSize < 0 {
			return fmt.Errorf("core: task %q has negative cost", k)
		}
	}
	return nil
}
