package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"hepvine/internal/dag"
	"hepvine/internal/randx"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

func TestReplicaTableBasics(t *testing.T) {
	rt := NewReplicaTable()
	rt.SetSize("f", 100)
	if rt.Size("f") != 100 {
		t.Fatal("size lost")
	}
	rt.Add("f", 1)
	rt.Add("f", 2)
	if !rt.HasReplica("f") || !rt.Holds("f", 1) || rt.Holds("f", 3) {
		t.Fatal("membership wrong")
	}
	h := rt.Holders("f")
	if len(h) != 2 || h[0] != 1 || h[1] != 2 {
		t.Fatalf("holders = %v", h)
	}
	rt.Remove("f", 1)
	if rt.Holds("f", 1) {
		t.Fatal("remove failed")
	}
}

func TestReplicaTableDropNode(t *testing.T) {
	rt := NewReplicaTable()
	rt.Add("only", 3)
	rt.Add("shared", 3)
	rt.Add("shared", 4)
	orphans := rt.DropNode(3)
	if len(orphans) != 1 || orphans[0] != "only" {
		t.Fatalf("orphans = %v", orphans)
	}
	if rt.HasReplica("only") || !rt.HasReplica("shared") {
		t.Fatal("drop wrong")
	}
}

func TestPickWorkerLocality(t *testing.T) {
	rt := NewReplicaTable()
	rt.SetSize("big", units.GB)
	rt.SetSize("small", units.MB)
	rt.Add("big", 2)
	rt.Add("small", 1)
	cands := []Candidate{{Node: 1, FreeCores: 12}, {Node: 2, FreeCores: 1}}
	// Node 2 holds the gigabyte → wins despite fewer free cores.
	if got := rt.PickWorker(cands, []storage.FileID{"big", "small"}); got != 2 {
		t.Fatalf("picked %d", got)
	}
}

func TestPickWorkerTieBreaks(t *testing.T) {
	rt := NewReplicaTable()
	cands := []Candidate{{Node: 3, FreeCores: 2}, {Node: 1, FreeCores: 5}, {Node: 2, FreeCores: 5}}
	// No locality anywhere: most free cores wins; equal free → lowest id.
	if got := rt.PickWorker(cands, nil); got != 1 {
		t.Fatalf("picked %d", got)
	}
	if got := rt.PickWorker(nil, nil); got != -1 {
		t.Fatalf("empty candidates → %d", got)
	}
}

func TestPickWorkerProperty(t *testing.T) {
	// The chosen worker always has maximal local bytes among candidates.
	check := func(seed uint16) bool {
		rng := randx.New(uint64(seed) + 1)
		rt := NewReplicaTable()
		files := []storage.FileID{"a", "b", "c"}
		for _, f := range files {
			rt.SetSize(f, units.Bytes(rng.Intn(1000)+1))
			for n := 1; n <= 5; n++ {
				if rng.Bool(0.4) {
					rt.Add(f, n)
				}
			}
		}
		var cands []Candidate
		for n := 1; n <= 5; n++ {
			if rng.Bool(0.8) {
				cands = append(cands, Candidate{Node: n, FreeCores: rng.Intn(12) + 1})
			}
		}
		got := rt.PickWorker(cands, files)
		if len(cands) == 0 {
			return got == -1
		}
		local := func(n int) units.Bytes {
			var sum units.Bytes
			for _, f := range files {
				if rt.Holds(f, n) {
					sum += rt.Size(f)
				}
			}
			return sum
		}
		for _, c := range cands {
			if local(c.Node) > local(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGovernorCap(t *testing.T) {
	g := NewGovernor(2)
	started := []int{}
	choose := func(maxLoad int) int {
		if g.Outbound(1) < maxLoad {
			return 1
		}
		return -1
	}
	for i := 0; i < 5; i++ {
		g.Request(TransferRequest{File: storage.FileID(fmt.Sprint(i)), Dest: 9},
			choose, func(src int) { started = append(started, src) })
	}
	if len(started) != 2 {
		t.Fatalf("started %d with cap 2", len(started))
	}
	if g.QueueLen() != 3 {
		t.Fatalf("queued %d", g.QueueLen())
	}
	g.Done(1)
	if len(started) != 3 || g.Outbound(1) != 2 {
		t.Fatalf("after done: started=%d outbound=%d", len(started), g.Outbound(1))
	}
	g.Done(1)
	g.Done(1)
	g.Done(1)
	if len(started) != 5 || g.QueueLen() != 0 {
		t.Fatalf("drain incomplete: started=%d queue=%d", len(started), g.QueueLen())
	}
}

func TestGovernorUncapped(t *testing.T) {
	g := NewGovernor(0)
	started := 0
	for i := 0; i < 100; i++ {
		g.Request(TransferRequest{}, func(maxLoad int) int { return 1 }, func(int) { started++ })
	}
	if started != 100 {
		t.Fatalf("started %d", started)
	}
}

func TestGovernorDoneUnderflowSafe(t *testing.T) {
	g := NewGovernor(3)
	g.Done(5) // never incremented; must not go negative
	if g.Outbound(5) != 0 {
		t.Fatalf("outbound = %d", g.Outbound(5))
	}
}

func TestOutputFileID(t *testing.T) {
	if OutputFileID("task-1") != storage.FileID("out:task-1") {
		t.Fatal("output id wrong")
	}
}

func buildWorkload(t *testing.T) *Workload {
	t.Helper()
	g := dag.NewGraph()
	g.MustAdd(&dag.Task{Key: "p", Spec: &SimSpec{
		Compute: time.Second, Inputs: []storage.FileID{"ds:x"}, OutputSize: units.MB,
	}})
	g.MustAdd(&dag.Task{Key: "acc", Deps: []dag.Key{"p"}, Spec: &SimSpec{
		Compute: time.Second, OutputSize: units.MB,
	}})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return &Workload{
		Name: "w", Graph: g, Root: "acc",
		DatasetFiles: map[storage.FileID]units.Bytes{"ds:x": 10 * units.MB},
	}
}

func TestWorkloadValidate(t *testing.T) {
	wl := buildWorkload(t)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	if wl.InputBytes() != 10*units.MB {
		t.Fatalf("input = %v", wl.InputBytes())
	}
	if wl.TaskCount() != 2 {
		t.Fatalf("tasks = %d", wl.TaskCount())
	}
	if wl.TotalCompute() != 2*time.Second {
		t.Fatalf("compute = %v", wl.TotalCompute())
	}
}

func TestWorkloadValidateRejections(t *testing.T) {
	wl := buildWorkload(t)
	wl.Root = "ghost"
	if err := wl.Validate(); err == nil {
		t.Fatal("bad root accepted")
	}
	wl = buildWorkload(t)
	delete(wl.DatasetFiles, "ds:x")
	if err := wl.Validate(); err == nil {
		t.Fatal("undeclared dataset accepted")
	}
	// Missing SimSpec.
	g := dag.NewGraph()
	g.MustAdd(&dag.Task{Key: "x", Spec: "not a simspec"})
	g.Finalize()
	wl2 := &Workload{Name: "bad", Graph: g, Root: "x", DatasetFiles: map[storage.FileID]units.Bytes{}}
	if err := wl2.Validate(); err == nil {
		t.Fatal("non-SimSpec accepted")
	}
	// Negative cost.
	g2 := dag.NewGraph()
	g2.MustAdd(&dag.Task{Key: "x", Spec: &SimSpec{Compute: -time.Second}})
	g2.Finalize()
	wl3 := &Workload{Name: "neg", Graph: g2, Root: "x", DatasetFiles: map[storage.FileID]units.Bytes{}}
	if err := wl3.Validate(); err == nil {
		t.Fatal("negative compute accepted")
	}
}
