package dag

import (
	"fmt"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
)

func mustGraph(t *testing.T, edges map[Key][]Key) *Graph {
	t.Helper()
	g := NewGraph()
	// Insert in key order after collecting all nodes.
	nodes := map[Key]bool{}
	for k, deps := range edges {
		nodes[k] = true
		for _, d := range deps {
			nodes[d] = true
		}
	}
	// Deterministic insertion: simple repeated passes until all inserted.
	inserted := map[Key]bool{}
	for len(inserted) < len(nodes) {
		progress := false
		for k := range nodes {
			if inserted[k] {
				continue
			}
			g.MustAdd(&Task{Key: k, Deps: edges[k]})
			inserted[k] = true
			progress = true
		}
		if !progress {
			t.Fatal("could not insert all nodes")
		}
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Add(&Task{Key: ""}); err == nil {
		t.Fatal("empty key accepted")
	}
	g.MustAdd(&Task{Key: "a"})
	if err := g.Add(&Task{Key: "a"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(&Task{Key: "b"}); err == nil {
		t.Fatal("add after finalize accepted")
	}
}

func TestFinalizeMissingDep(t *testing.T) {
	g := NewGraph()
	g.MustAdd(&Task{Key: "a", Deps: []Key{"ghost"}})
	if err := g.Finalize(); err == nil {
		t.Fatal("missing dep accepted")
	}
}

func TestFinalizeCycle(t *testing.T) {
	g := NewGraph()
	g.MustAdd(&Task{Key: "a", Deps: []Key{"b"}})
	g.MustAdd(&Task{Key: "b", Deps: []Key{"a"}})
	if err := g.Finalize(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g := mustGraph(t, map[Key][]Key{
		"d": {"b", "c"},
		"b": {"a"},
		"c": {"a"},
		"a": nil,
	})
	pos := map[Key]int{}
	for i, k := range g.Topo() {
		pos[k] = i
	}
	for _, k := range g.Keys() {
		for _, d := range g.Task(k).Deps {
			if pos[d] >= pos[k] {
				t.Fatalf("topo violates %s -> %s", d, k)
			}
		}
	}
}

func TestRootsLeaves(t *testing.T) {
	g := mustGraph(t, map[Key][]Key{
		"sum": {"x", "y"},
		"x":   nil,
		"y":   nil,
	})
	if len(g.Roots()) != 2 {
		t.Fatalf("roots = %v", g.Roots())
	}
	leaves := g.Leaves()
	if len(leaves) != 1 || leaves[0] != "sum" {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := mustGraph(t, map[Key][]Key{
		"e": {"d"},
		"d": {"b", "c"},
		"b": {"a"},
		"c": nil,
		"a": nil,
	})
	anc := g.Ancestors("d")
	for _, k := range []Key{"a", "b", "c"} {
		if !anc[k] {
			t.Fatalf("ancestors missing %s: %v", k, anc)
		}
	}
	if anc["e"] || anc["d"] {
		t.Fatalf("ancestors include non-ancestor: %v", anc)
	}
	desc := g.Descendants("b")
	if !desc["d"] || !desc["e"] || desc["c"] || desc["a"] {
		t.Fatalf("descendants = %v", desc)
	}
}

func TestWidthAndCriticalPath(t *testing.T) {
	// Diamond: width 2, critical path 3.
	g := mustGraph(t, map[Key][]Key{
		"d": {"b", "c"},
		"b": {"a"},
		"c": {"a"},
		"a": nil,
	})
	if w := g.MaxWidth(); w != 2 {
		t.Fatalf("width = %d", w)
	}
	if c := g.CriticalPathLen(); c != 3 {
		t.Fatalf("critical path = %d", c)
	}
}

func TestCountByCategory(t *testing.T) {
	g := NewGraph()
	g.MustAdd(&Task{Key: "p1", Category: "processor"})
	g.MustAdd(&Task{Key: "p2", Category: "processor"})
	g.MustAdd(&Task{Key: "acc", Category: "accumulate", Deps: []Key{"p1", "p2"}})
	cc := g.CountByCategory()
	if len(cc) != 2 || cc[0].Category != "accumulate" || cc[1].Count != 2 {
		t.Fatalf("categories = %v", cc)
	}
}

// ---- Tracker ----

func newDiamondTracker(t *testing.T) *Tracker {
	g := mustGraph(t, map[Key][]Key{
		"d": {"b", "c"},
		"b": {"a"},
		"c": {"a"},
		"a": nil,
	})
	tr, err := NewTracker(g)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerBasicFlow(t *testing.T) {
	tr := newDiamondTracker(t)
	if tr.ReadyCount() != 1 {
		t.Fatalf("initial ready = %d", tr.ReadyCount())
	}
	got := tr.NextReady(10)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("dispatched %v", got)
	}
	newly, err := tr.Complete("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 2 {
		t.Fatalf("newly ready = %v", newly)
	}
	for _, k := range tr.NextReady(2) {
		if _, err := tr.Complete(k); err != nil {
			t.Fatal(err)
		}
	}
	if tr.ReadyCount() != 1 {
		t.Fatalf("d not ready")
	}
	tr.NextReady(1)
	if _, err := tr.Complete("d"); err != nil {
		t.Fatal(err)
	}
	if !tr.AllDone() {
		t.Fatal("not all done")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerStateErrors(t *testing.T) {
	tr := newDiamondTracker(t)
	if _, err := tr.Complete("a"); err == nil {
		t.Fatal("Complete on non-running accepted")
	}
	if err := tr.Fail("d"); err == nil {
		t.Fatal("Fail on waiting accepted")
	}
	if err := tr.Requeue("a"); err == nil {
		t.Fatal("Requeue on ready accepted")
	}
}

func TestTrackerRequeue(t *testing.T) {
	tr := newDiamondTracker(t)
	tr.NextReady(1)
	if err := tr.Requeue("a"); err != nil {
		t.Fatal(err)
	}
	if tr.ReadyCount() != 1 {
		t.Fatal("requeue lost task")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerFail(t *testing.T) {
	tr := newDiamondTracker(t)
	tr.NextReady(1)
	if err := tr.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if tr.Count(Failed) != 1 {
		t.Fatal("failed count wrong")
	}
	if tr.ReadyCount() != 0 {
		t.Fatal("children of failed task became ready")
	}
}

func TestTrackerInvalidateSimple(t *testing.T) {
	tr := newDiamondTracker(t)
	tr.NextReady(1)
	tr.Complete("a")
	// Lose a's output before b/c run.
	changed, err := tr.Invalidate([]Key{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) < 3 { // a + b + c rolled back
		t.Fatalf("changed = %v", changed)
	}
	if tr.State("a") != Ready {
		t.Fatalf("a state = %v", tr.State("a"))
	}
	if tr.State("b") != Waiting || tr.State("c") != Waiting {
		t.Fatalf("b/c states = %v/%v", tr.State("b"), tr.State("c"))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Re-run to completion.
	for !tr.AllDone() {
		ks := tr.NextReady(10)
		if len(ks) == 0 {
			t.Fatal("deadlock after invalidate")
		}
		for _, k := range ks {
			if _, err := tr.Complete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTrackerInvalidateKeepsDoneDescendants(t *testing.T) {
	tr := newDiamondTracker(t)
	// Run everything.
	for !tr.AllDone() {
		for _, k := range tr.NextReady(10) {
			tr.Complete(k)
		}
	}
	// Lose only b's output: d is Done and keeps its value; nothing re-runs
	// except... nothing depends on b anymore, but b itself must re-run only
	// if someone needs it. Conservative model: b returns to Ready.
	changed, err := tr.Invalidate([]Key{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.State("d") != Done {
		t.Fatal("done descendant rolled back unnecessarily")
	}
	if tr.State("b") != Ready {
		t.Fatalf("b state = %v", tr.State("b"))
	}
	_ = changed
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerInvalidateChain(t *testing.T) {
	// a -> b -> c; lose a and b after all Done: a ready, b waits for a.
	g := mustGraph(t, map[Key][]Key{"c": {"b"}, "b": {"a"}, "a": nil})
	tr, _ := NewTracker(g)
	for !tr.AllDone() {
		for _, k := range tr.NextReady(10) {
			tr.Complete(k)
		}
	}
	if _, err := tr.Invalidate([]Key{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if tr.State("a") != Ready || tr.State("b") != Waiting {
		t.Fatalf("states a=%v b=%v", tr.State("a"), tr.State("b"))
	}
	if tr.State("c") != Done {
		t.Fatal("c should keep its output")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr.NextReady(1)
	tr.Complete("a")
	if tr.State("b") != Ready {
		t.Fatalf("b not ready after a re-completes: %v", tr.State("b"))
	}
	tr.NextReady(1)
	if _, err := tr.Complete("b"); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerSnapshot(t *testing.T) {
	tr := newDiamondTracker(t)
	s := tr.Snapshot()
	if s.Ready != 1 || s.Waiting != 3 {
		t.Fatalf("snapshot = %+v", s)
	}
	tr.NextReady(1)
	s = tr.Snapshot()
	if s.Running != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// Random-workload property: dispatch/complete with random invalidations
// always drains without deadlock and invariants hold throughout.
func TestTrackerRandomizedDrain(t *testing.T) {
	check := func(seed uint16) bool {
		rng := randx.New(uint64(seed) + 1)
		// Random layered DAG.
		g := NewGraph()
		layers := 3 + rng.Intn(3)
		var prev []Key
		for l := 0; l < layers; l++ {
			n := 2 + rng.Intn(5)
			var cur []Key
			for i := 0; i < n; i++ {
				k := Key(fmt.Sprintf("L%d-%d", l, i))
				var deps []Key
				for _, p := range prev {
					if rng.Bool(0.5) {
						deps = append(deps, p)
					}
				}
				g.MustAdd(&Task{Key: k, Deps: deps})
				cur = append(cur, k)
			}
			prev = cur
		}
		if err := g.Finalize(); err != nil {
			return false
		}
		tr, err := NewTracker(g)
		if err != nil {
			return false
		}
		steps := 0
		for !tr.AllDone() {
			steps++
			if steps > 10000 {
				return false // deadlock
			}
			ks := tr.NextReady(1 + rng.Intn(3))
			if len(ks) == 0 {
				return false
			}
			for _, k := range ks {
				if _, err := tr.Complete(k); err != nil {
					return false
				}
			}
			// Occasionally lose a random done task's output.
			if rng.Bool(0.2) {
				done := tr.DoneKeys()
				if len(done) > 0 {
					victim := done[rng.Intn(len(done))]
					if _, err := tr.Invalidate([]Key{victim}); err != nil {
						return false
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// ---- Optimizers ----

func addLeaves(g *Graph, n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("in-%d", i))
		g.MustAdd(&Task{Key: keys[i], Category: "processor"})
	}
	return keys
}

func reduceMk(level, index int, inputs []Key) *Task {
	return &Task{Category: "accumulate"}
}

func TestTreeReduceBinary(t *testing.T) {
	g := NewGraph()
	keys := addLeaves(g, 20)
	root, err := TreeReduce(g, "red", keys, 2, reduceMk)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Binary tree over 20 leaves: 19 internal nodes.
	if got := g.Len() - 20; got != 19 {
		t.Fatalf("internal nodes = %d", got)
	}
	// Max fan-in 2.
	for _, k := range g.Keys() {
		if len(g.Task(k).Deps) > 2 {
			t.Fatalf("fan-in %d at %s", len(g.Task(k).Deps), k)
		}
	}
	// Root reachable from all leaves.
	anc := g.Ancestors(root)
	for _, k := range keys {
		if !anc[k] {
			t.Fatalf("leaf %s not under root", k)
		}
	}
}

func TestTreeReduceSingleShot(t *testing.T) {
	g := NewGraph()
	keys := addLeaves(g, 20)
	root, err := TreeReduce(g, "red", keys, 0, reduceMk)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 21 {
		t.Fatalf("len = %d", g.Len())
	}
	if len(g.Task(root).Deps) != 20 {
		t.Fatalf("single-shot fan-in = %d", len(g.Task(root).Deps))
	}
}

func TestTreeReduceFanIn8(t *testing.T) {
	g := NewGraph()
	keys := addLeaves(g, 100)
	root, err := TreeReduce(g, "red", keys, 8, reduceMk)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, k := range g.Keys() {
		if n := len(g.Task(k).Deps); n > 8 {
			t.Fatalf("fan-in %d", n)
		}
	}
	if len(g.Dependents(root)) != 0 {
		t.Fatal("root has dependents")
	}
}

func TestTreeReduceEdgeCases(t *testing.T) {
	g := NewGraph()
	keys := addLeaves(g, 1)
	root, err := TreeReduce(g, "red", keys, 2, reduceMk)
	if err != nil {
		t.Fatal(err)
	}
	if root != keys[0] {
		t.Fatal("single input should return itself")
	}
	if _, err := TreeReduce(g, "red", nil, 2, reduceMk); err == nil {
		t.Fatal("empty inputs accepted")
	}
}

func TestTreeReducePropertyAllLeavesCovered(t *testing.T) {
	check := func(n uint8, fan uint8) bool {
		nIn := int(n)%200 + 2
		fanIn := int(fan)%7 + 2
		g := NewGraph()
		keys := addLeaves(g, nIn)
		root, err := TreeReduce(g, "r", keys, fanIn, reduceMk)
		if err != nil {
			return false
		}
		if err := g.Finalize(); err != nil {
			return false
		}
		anc := g.Ancestors(root)
		for _, k := range keys {
			if !anc[k] {
				return false
			}
		}
		for _, k := range g.Keys() {
			if len(g.Task(k).Deps) > fanIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCull(t *testing.T) {
	g := mustGraph(t, map[Key][]Key{
		"keep":   {"mid"},
		"mid":    {"base"},
		"base":   nil,
		"orphan": {"base"},
	})
	ng, err := Cull(g, "keep")
	if err != nil {
		t.Fatal(err)
	}
	if ng.Len() != 3 {
		t.Fatalf("culled len = %d", ng.Len())
	}
	if ng.Task("orphan") != nil {
		t.Fatal("orphan survived cull")
	}
	if _, err := Cull(g, "nope"); err == nil {
		t.Fatal("missing target accepted")
	}
}

func TestFuseLinearChain(t *testing.T) {
	g := NewGraph()
	g.MustAdd(&Task{Key: "a", Category: "x"})
	g.MustAdd(&Task{Key: "b", Deps: []Key{"a"}, Category: "x"})
	g.MustAdd(&Task{Key: "c", Deps: []Key{"b"}, Category: "x"})
	g.MustAdd(&Task{Key: "out", Deps: []Key{"c"}, Category: "y"})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	ng, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	// a-b-c fuse into "c"; "out" survives.
	if ng.Len() != 2 {
		t.Fatalf("fused len = %d: %v", ng.Len(), ng.Keys())
	}
	c := ng.Task("c")
	if c == nil {
		t.Fatal("fused tail key missing")
	}
	fs, ok := c.Spec.(*FusedSpec)
	if !ok {
		t.Fatalf("spec = %T", c.Spec)
	}
	if len(fs.Stages) != 3 || fs.Stages[0].Key != "a" || fs.Stages[2].Key != "c" {
		t.Fatalf("stages wrong: %v", fs.Stages)
	}
	out := ng.Task("out")
	if len(out.Deps) != 1 || out.Deps[0] != "c" {
		t.Fatalf("out deps = %v", out.Deps)
	}
}

func TestFuseStopsAtFanout(t *testing.T) {
	g := mustGraph(t, map[Key][]Key{
		"d": {"b", "c"},
		"b": {"a"},
		"c": {"a"},
		"a": nil,
	})
	ng, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	// a has two dependents → nothing fuses.
	if ng.Len() != 4 {
		t.Fatalf("fused diamond len = %d", ng.Len())
	}
}

func TestFuseRespectsCategory(t *testing.T) {
	g := NewGraph()
	g.MustAdd(&Task{Key: "a", Category: "x"})
	g.MustAdd(&Task{Key: "b", Deps: []Key{"a"}, Category: "y"})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	ng, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Len() != 2 {
		t.Fatal("cross-category chain fused")
	}
}

func TestFuseSameResultSet(t *testing.T) {
	// Fusing then draining yields the same leaf set as the original.
	g := NewGraph()
	var leaves []Key
	for i := 0; i < 5; i++ {
		a := Key(fmt.Sprintf("a%d", i))
		b := Key(fmt.Sprintf("b%d", i))
		g.MustAdd(&Task{Key: a, Category: "p"})
		g.MustAdd(&Task{Key: b, Deps: []Key{a}, Category: "p"})
		leaves = append(leaves, b)
	}
	g.MustAdd(&Task{Key: "sum", Deps: leaves, Category: "acc"})
	if err := g.Finalize(); err != nil {
		t.Fatal(err)
	}
	ng, err := Fuse(g)
	if err != nil {
		t.Fatal(err)
	}
	if ng.Len() != 6 { // 5 fused chains + sum
		t.Fatalf("fused len = %d", ng.Len())
	}
	gl := g.Leaves()
	ngl := ng.Leaves()
	if len(gl) != len(ngl) || gl[0] != ngl[0] {
		t.Fatalf("leaf sets differ: %v vs %v", gl, ngl)
	}
}
