package dag

import (
	"container/heap"
	"fmt"
	"sort"
)

// State is the runtime state of one task.
type State uint8

// Task lifecycle states.
const (
	// Waiting tasks have unmet dependencies.
	Waiting State = iota
	// Ready tasks may be dispatched.
	Ready
	// Running tasks have been handed to a scheduler.
	Running
	// Done tasks completed and their outputs exist somewhere.
	Done
	// Failed tasks exhausted retries.
	Failed
)

func (s State) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Tracker maintains dispatch state over a finalized graph: which tasks are
// ready, which are in flight, and — crucially for opportunistic clusters —
// how to roll back completed tasks whose outputs were lost to a preempted
// worker (§IV, "worker failures ... compensates by replicating data or
// re-running tasks").
type Tracker struct {
	g       *Graph
	state   map[Key]State
	missing map[Key]int // unmet dependency count
	counts  [5]int

	// Ready queue: a priority heap ordered by prio (descending), then
	// submission sequence (FIFO within a priority level). With no
	// priorities this is plain FIFO. Entries are removed lazily: inReady
	// is the source of truth for membership.
	prio    map[Key]int
	ready   readyHeap
	inReady map[Key]bool
	seq     uint64
}

// readyEntry is one heap element.
type readyEntry struct {
	key  Key
	prio int
	seq  uint64
}

type readyHeap []readyEntry

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyEntry)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewTracker builds a tracker over a finalized graph with FIFO dispatch
// order.
func NewTracker(g *Graph) (*Tracker, error) {
	return NewTrackerPrio(g, nil)
}

// NewTrackerPrio builds a tracker whose ready queue prefers higher-priority
// tasks (FIFO within a level). Passing the graph's Depths() makes dispatch
// depth-first, so reductions consume intermediates as they appear instead
// of after every map task.
func NewTrackerPrio(g *Graph, prio map[Key]int) (*Tracker, error) {
	if !g.Finalized() {
		return nil, fmt.Errorf("dag: tracker needs a finalized graph")
	}
	t := &Tracker{
		g:       g,
		state:   make(map[Key]State, g.Len()),
		missing: make(map[Key]int, g.Len()),
		prio:    prio,
		inReady: make(map[Key]bool, g.Len()),
	}
	for _, k := range g.topo {
		n := len(g.tasks[k].Deps)
		t.missing[k] = n
		if n == 0 {
			t.state[k] = Ready
			t.pushReady(k)
			t.counts[Ready]++
		} else {
			t.state[k] = Waiting
			t.counts[Waiting]++
		}
	}
	return t, nil
}

// pushReady enqueues a key (caller maintains state/counts).
func (t *Tracker) pushReady(k Key) {
	t.seq++
	t.inReady[k] = true
	heap.Push(&t.ready, readyEntry{key: k, prio: t.prio[k], seq: t.seq})
}

// popReady removes and returns the highest-priority ready key, skipping
// lazily-deleted entries. Returns "" when empty.
func (t *Tracker) popReady() Key {
	for t.ready.Len() > 0 {
		e := heap.Pop(&t.ready).(readyEntry)
		if t.inReady[e.key] && t.state[e.key] == Ready {
			delete(t.inReady, e.key)
			return e.key
		}
	}
	return ""
}

// Graph returns the tracked graph.
func (t *Tracker) Graph() *Graph { return t.g }

// State reports a task's state.
func (t *Tracker) State(k Key) State { return t.state[k] }

// Count reports how many tasks are in the given state.
func (t *Tracker) Count(s State) int { return t.counts[s] }

// ReadyCount reports the number of dispatchable tasks.
func (t *Tracker) ReadyCount() int { return t.counts[Ready] }

// WaitingCount reports tasks still blocked on dependencies.
func (t *Tracker) WaitingCount() int { return t.counts[Waiting] }

// AllDone reports whether every task completed.
func (t *Tracker) AllDone() bool { return t.counts[Done] == t.g.Len() }

// NextReady pops up to n ready tasks in priority order and marks them
// Running.
func (t *Tracker) NextReady(n int) []Key {
	if n <= 0 {
		return nil
	}
	var out []Key
	for len(out) < n {
		k := t.popReady()
		if k == "" {
			break
		}
		t.setState(k, Running)
		out = append(out, k)
	}
	return out
}

// PeekReady returns up to n ready keys in dispatch order without
// dispatching them. The queue order is preserved exactly: a following
// NextReady(1) returns PeekReady(1)[0].
func (t *Tracker) PeekReady(n int) []Key {
	if n <= 0 || n > t.counts[Ready] {
		n = t.counts[Ready]
	}
	if n == 0 {
		return nil
	}
	// Pop raw entries (keeping membership flags untouched), collect the
	// first n distinct valid keys, then push the same entries back with
	// their original sequence numbers so ordering is unchanged. Stale and
	// duplicate entries encountered along the way are dropped — a free
	// compaction.
	var kept []readyEntry
	seen := make(map[Key]bool, n)
	out := make([]Key, 0, n)
	for len(out) < n && t.ready.Len() > 0 {
		e := heap.Pop(&t.ready).(readyEntry)
		if !t.inReady[e.key] || t.state[e.key] != Ready || seen[e.key] {
			continue
		}
		seen[e.key] = true
		out = append(out, e.key)
		kept = append(kept, e)
	}
	for _, e := range kept {
		heap.Push(&t.ready, e)
	}
	return out
}

// Complete marks a running task done and returns the tasks that became
// ready as a result.
func (t *Tracker) Complete(k Key) ([]Key, error) {
	if t.state[k] != Running {
		return nil, fmt.Errorf("dag: Complete(%q) in state %v", k, t.state[k])
	}
	t.setState(k, Done)
	var newly []Key
	for _, c := range t.g.children[k] {
		// Only Waiting children count this completion: a Done child (seen
		// when a task re-runs after Invalidate) already consumed its
		// inputs and must not have its bookkeeping disturbed.
		if t.state[c] != Waiting {
			continue
		}
		t.missing[c]--
		if t.missing[c] == 0 {
			t.setState(c, Ready)
			t.pushReady(c)
			newly = append(newly, c)
		}
	}
	return newly, nil
}

// Fail marks a running task failed (terminal).
func (t *Tracker) Fail(k Key) error {
	if t.state[k] != Running {
		return fmt.Errorf("dag: Fail(%q) in state %v", k, t.state[k])
	}
	t.setState(k, Failed)
	return nil
}

// Requeue returns a running task to the ready queue (e.g. its worker died
// before completion).
func (t *Tracker) Requeue(k Key) error {
	if t.state[k] != Running {
		return fmt.Errorf("dag: Requeue(%q) in state %v", k, t.state[k])
	}
	t.setState(k, Ready)
	t.pushReady(k)
	return nil
}

// Invalidate handles lost outputs: the given completed tasks' outputs no
// longer exist anywhere (their last replica was on a preempted worker).
// Each such task returns to Ready (its deps are still satisfied — if a
// dependency's output was also lost, pass it in the same call and the
// planner sorts it out), and any Running/Ready dependents that now lack
// inputs are rolled back to Waiting. It returns every task whose state
// changed, for schedulers to unschedule.
//
// The rollback is minimal: completed descendants whose outputs still exist
// are untouched — their values already live in the cluster.
//
// The live plane mirrors these semantics in vine.Manager (recoverFileLocked
// and reviveProducersLocked): a lost last replica re-enqueues only its Done
// producer, recursing up the chain exactly when the producer's own inputs
// are gone too.
func (t *Tracker) Invalidate(lost []Key) ([]Key, error) {
	lostSet := make(map[Key]bool, len(lost))
	for _, k := range lost {
		if t.state[k] != Done {
			return nil, fmt.Errorf("dag: Invalidate(%q) in state %v", k, t.state[k])
		}
		lostSet[k] = true
	}
	var changed []Key
	// Re-evaluate each lost task: it becomes Ready iff all deps are Done
	// and not themselves lost; otherwise Waiting.
	for _, k := range lost {
		runnable := true
		miss := 0
		for _, d := range t.g.tasks[k].Deps {
			if t.state[d] != Done || lostSet[d] {
				runnable = false
			}
			if t.state[d] != Done {
				miss++
			}
		}
		// A lost dep is Done-but-lost; it will be re-run, so count it
		// as missing for dependency bookkeeping.
		for _, d := range t.g.tasks[k].Deps {
			if lostSet[d] && t.state[d] == Done {
				miss++
			}
		}
		t.missing[k] = miss
		if runnable {
			t.setState(k, Ready)
			t.pushReady(k)
		} else {
			t.setState(k, Waiting)
		}
		changed = append(changed, k)
	}
	// Dependents of lost tasks that were Ready/Running must wait again;
	// their missing counts grew. Done dependents keep their outputs.
	for _, k := range lost {
		for _, c := range t.g.children[k] {
			if lostSet[c] {
				continue // already handled above
			}
			switch t.state[c] {
			case Ready:
				t.missing[c]++
				delete(t.inReady, c) // lazy heap removal
				t.setState(c, Waiting)
				changed = append(changed, c)
			case Running:
				t.missing[c]++
				t.setState(c, Waiting)
				changed = append(changed, c)
			case Waiting:
				t.missing[c]++
			case Done, Failed:
				// Output exists (or task is terminal); no rollback.
			}
		}
	}
	return changed, nil
}

func (t *Tracker) setState(k Key, s State) {
	t.counts[t.state[k]]--
	t.state[k] = s
	t.counts[s]++
}

// Snapshot reports the number of tasks in each state, for timelines
// (Fig. 12's running/waiting curves).
type Snapshot struct {
	Waiting, Ready, Running, Done, Failed int
}

// Snapshot captures current state counts.
func (t *Tracker) Snapshot() Snapshot {
	return Snapshot{
		Waiting: t.counts[Waiting],
		Ready:   t.counts[Ready],
		Running: t.counts[Running],
		Done:    t.counts[Done],
		Failed:  t.counts[Failed],
	}
}

// CheckInvariants validates internal bookkeeping; tests and fault-injection
// call this after every mutation batch.
func (t *Tracker) CheckInvariants() error {
	var counts [5]int
	for _, k := range t.g.order {
		s := t.state[k]
		counts[s]++
		miss := 0
		for _, d := range t.g.tasks[k].Deps {
			if t.state[d] != Done {
				miss++
			}
		}
		switch s {
		case Waiting:
			// missing may exceed the naive count when a Done dep's output
			// was invalidated; it must never be less, and a Waiting task
			// must be waiting on something.
			if t.missing[k] < miss {
				return fmt.Errorf("dag: task %q missing=%d < actual unmet deps %d", k, t.missing[k], miss)
			}
			if t.missing[k] == 0 {
				return fmt.Errorf("dag: task %q Waiting with missing=0", k)
			}
		case Ready, Running:
			if miss != 0 {
				return fmt.Errorf("dag: task %q is %v with %d unmet deps", k, s, miss)
			}
		case Done, Failed:
			// missing is frozen once a task ran; nothing to check.
		}
	}
	for s, n := range counts {
		if t.counts[s] != n {
			return fmt.Errorf("dag: state count mismatch for %v: cached %d actual %d", State(s), t.counts[s], n)
		}
	}
	nReady := 0
	for k, in := range t.inReady {
		if !in {
			continue
		}
		if t.state[k] != Ready {
			return fmt.Errorf("dag: ready queue holds %q in state %v", k, t.state[k])
		}
		nReady++
	}
	if nReady != t.counts[Ready] {
		return fmt.Errorf("dag: ready membership %d != count %d", nReady, t.counts[Ready])
	}
	return nil
}

// DoneKeys lists completed tasks, sorted, for tests.
func (t *Tracker) DoneKeys() []Key {
	var out []Key
	for k, s := range t.state {
		if s == Done {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
