package dag_test

import (
	"fmt"

	"hepvine/internal/dag"
)

// TreeReduce rewrites an N-way reduction into a bounded-fan-in tree — the
// §IV.C fix that stops a single reduction task from pulling every input
// onto one worker at once.
func ExampleTreeReduce() {
	g := dag.NewGraph()
	var inputs []dag.Key
	for i := 0; i < 8; i++ {
		k := dag.Key(fmt.Sprintf("part-%d", i))
		g.MustAdd(&dag.Task{Key: k, Category: "processor"})
		inputs = append(inputs, k)
	}
	root, err := dag.TreeReduce(g, "merge", inputs, 2, func(level, index int, in []dag.Key) *dag.Task {
		return &dag.Task{Category: "accumulate"}
	})
	if err != nil {
		panic(err)
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	fmt.Println("tasks:", g.Len(), "depth:", g.CriticalPathLen(), "root deps:", len(g.Task(root).Deps))
	// Output: tasks: 15 depth: 4 root deps: 2
}

// A Tracker drives dispatch: ready tasks flow out, completions unlock
// dependents.
func ExampleTracker() {
	g := dag.NewGraph()
	g.MustAdd(&dag.Task{Key: "read"})
	g.MustAdd(&dag.Task{Key: "analyze", Deps: []dag.Key{"read"}})
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	tr, err := dag.NewTracker(g)
	if err != nil {
		panic(err)
	}
	first := tr.NextReady(1)
	fmt.Println("first:", first[0])
	newly, _ := tr.Complete(first[0])
	fmt.Println("unlocked:", newly[0])
	// Output:
	// first: read
	// unlocked: analyze
}
