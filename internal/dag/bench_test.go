package dag

import (
	"fmt"
	"testing"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	g := NewGraph()
	keys := make([]Key, n)
	for i := 0; i < n; i++ {
		keys[i] = Key(fmt.Sprintf("p%d", i))
		g.MustAdd(&Task{Key: keys[i], Category: "p"})
	}
	if _, err := TreeReduce(g, "acc", keys, 8, func(l, i int, in []Key) *Task {
		return &Task{Category: "a"}
	}); err != nil {
		b.Fatal(err)
	}
	if err := g.Finalize(); err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkGraphBuildAndFinalize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchGraph(b, 10000)
	}
}

func BenchmarkTrackerDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchGraph(b, 10000)
		tr, err := NewTrackerPrio(g, g.Depths())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for !tr.AllDone() {
			ks := tr.NextReady(64)
			if len(ks) == 0 {
				b.Fatal("deadlock")
			}
			for _, k := range ks {
				if _, err := tr.Complete(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
