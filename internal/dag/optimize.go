package dag

import (
	"fmt"
)

// This file implements the DAG rewrites of §IV.C. The headline one is
// hierarchical (tree) reduction: RS-TriPhoton originally compiled results
// from all branches in a single reduction task, forcing every input onto one
// node at once and overflowing its local storage (Fig. 11a). Rewriting the
// reduction as a bounded-fan-in tree bounds per-node storage and completes
// (Fig. 11b).

// ReduceSpec builds the payload for a generated reduction task from the keys
// it merges. Executors decide what the payload means.
type ReduceSpec func(level, index int, inputs []Key) *Task

// TreeReduce adds a bounded-fan-in reduction of inputs to g and returns the
// key of the root task. fanIn < 2 means "all at once" (the naive single-node
// reduction). mk must return a task with its Deps unset; TreeReduce assigns
// them. Generated keys are prefix-L<level>-<index>.
func TreeReduce(g *Graph, prefix string, inputs []Key, fanIn int, mk ReduceSpec) (Key, error) {
	if len(inputs) == 0 {
		return "", fmt.Errorf("dag: TreeReduce with no inputs")
	}
	if len(inputs) == 1 {
		return inputs[0], nil
	}
	if fanIn < 2 {
		fanIn = len(inputs) // single-shot reduction
	}
	level := 0
	current := inputs
	for len(current) > 1 {
		var next []Key
		for i := 0; i < len(current); i += fanIn {
			end := i + fanIn
			if end > len(current) {
				end = len(current)
			}
			group := current[i:end]
			if len(group) == 1 && len(current) > fanIn {
				// A lone leftover can ride up to the next level unmerged.
				next = append(next, group[0])
				continue
			}
			t := mk(level, i/fanIn, group)
			if t == nil {
				return "", fmt.Errorf("dag: ReduceSpec returned nil task")
			}
			t.Key = Key(fmt.Sprintf("%s-L%d-%d", prefix, level, i/fanIn))
			t.Deps = append([]Key(nil), group...)
			if err := g.Add(t); err != nil {
				return "", err
			}
			next = append(next, t.Key)
		}
		current = next
		level++
		if level > 64 {
			return "", fmt.Errorf("dag: TreeReduce failed to converge")
		}
	}
	return current[0], nil
}

// Cull returns a new graph containing only the targets and their ancestor
// closure — the standard Dask optimization that drops work whose outputs are
// never used.
func Cull(g *Graph, targets ...Key) (*Graph, error) {
	for _, k := range targets {
		if g.Task(k) == nil {
			return nil, fmt.Errorf("dag: cull target %q not in graph", k)
		}
	}
	keep := g.Ancestors(targets...)
	for _, k := range targets {
		keep[k] = true
	}
	ng := NewGraph()
	for _, k := range g.order {
		if keep[k] {
			t := *g.tasks[k]
			t.Deps = append([]Key(nil), t.Deps...)
			if err := ng.Add(&t); err != nil {
				return nil, err
			}
		}
	}
	if err := ng.Finalize(); err != nil {
		return nil, err
	}
	return ng, nil
}

// FusedSpec describes a linear chain collapsed into one task. Executors that
// understand fusion run the stage specs in order within a single dispatch,
// eliminating intermediate round trips.
type FusedSpec struct {
	Stages []*Task // original tasks, in execution order
}

// Fuse collapses linear chains (each interior node has exactly one dependent
// and one dependency, and matching Category) into single tasks with a
// FusedSpec payload. It returns a new finalized graph. Keys of fused tasks
// are the key of the chain's tail, so downstream references stay valid.
func Fuse(g *Graph) (*Graph, error) {
	if !g.Finalized() {
		return nil, fmt.Errorf("dag: Fuse needs a finalized graph")
	}
	// A node is fusable with its single parent when the parent has exactly
	// one dependent (this node) and the node exactly one dep (the parent).
	inChain := func(parent, child Key) bool {
		return len(g.children[parent]) == 1 &&
			len(g.tasks[child].Deps) == 1 &&
			g.tasks[parent].Category == g.tasks[child].Category
	}
	// Map each node to the head of its chain.
	head := make(map[Key]Key, g.Len())
	for _, k := range g.topo {
		t := g.tasks[k]
		if len(t.Deps) == 1 && inChain(t.Deps[0], k) {
			head[k] = head[t.Deps[0]]
			if head[k] == "" {
				head[k] = t.Deps[0]
			}
		} else {
			head[k] = k
		}
	}
	// Tail of each chain = node whose dependent (if any) starts a new chain.
	isTail := func(k Key) bool {
		for _, c := range g.children[k] {
			if head[c] == head[k] {
				return false
			}
		}
		return true
	}
	// chainOf reconstructs the stages from head to k.
	chainOf := func(k Key) []*Task {
		var rev []*Task
		cur := k
		for {
			rev = append(rev, g.tasks[cur])
			if cur == head[k] {
				break
			}
			cur = g.tasks[cur].Deps[0]
		}
		// reverse
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}
	ng := NewGraph()
	for _, k := range g.topo {
		if !isTail(k) {
			continue // interior of a chain; absorbed into tail
		}
		stages := chainOf(k)
		hd := stages[0]
		nt := &Task{
			Key:      k,
			Category: g.tasks[k].Category,
		}
		// Deps of the fused task are the head's deps, remapped to the
		// tails of their own chains (which preserve their keys).
		for _, d := range hd.Deps {
			nt.Deps = append(nt.Deps, tailKey(g, head, d))
		}
		if len(stages) == 1 {
			nt.Spec = g.tasks[k].Spec
		} else {
			nt.Spec = &FusedSpec{Stages: stages}
		}
		if err := ng.Add(nt); err != nil {
			return nil, err
		}
	}
	if err := ng.Finalize(); err != nil {
		return nil, err
	}
	return ng, nil
}

// tailKey maps a node to the tail key of the chain containing it.
func tailKey(g *Graph, head map[Key]Key, k Key) Key {
	cur := k
	for {
		advanced := false
		for _, c := range g.children[cur] {
			if head[c] == head[cur] {
				cur = c
				advanced = true
				break
			}
		}
		if !advanced {
			return cur
		}
	}
}
