// Package dag implements the DAG-manager layer of the application stack
// (§II.B): directed acyclic graphs of tasks with data dependencies, the
// runtime state tracking needed to dispatch them, and the graph rewrites
// (hierarchical reduction, culling, fusion) that §IV.C applies to the
// applications.
//
// The package is scheduler-agnostic, playing the role Dask plays in the
// paper: it expresses concurrency, while a scheduler (Work Queue, TaskVine,
// Dask.Distributed — or their simulation models) decides placement and
// movement. Task payloads are opaque to the graph: the live engine attaches
// callable specs, the simulation plane attaches cost models.
package dag

import (
	"fmt"
	"sort"
)

// Key identifies a task and, implicitly, the datum it produces — the Dask
// convention where each graph node is both a computation and its output.
type Key string

// Task is one node of the graph.
type Task struct {
	Key  Key
	Deps []Key

	// Category groups tasks for instrumentation and cost models, e.g.
	// "fetch", "processor", "accumulate".
	Category string

	// Spec is the executor-specific payload: a callable description on the
	// live plane, a cost model on the simulation plane.
	Spec any
}

// Graph is an immutable-after-Finalize DAG of tasks.
type Graph struct {
	tasks     map[Key]*Task
	order     []Key // insertion order, for determinism
	finalized bool
	topo      []Key
	children  map[Key][]Key // dependents
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{tasks: make(map[Key]*Task)}
}

// Add inserts a task. It returns an error on duplicate keys or additions
// after Finalize.
func (g *Graph) Add(t *Task) error {
	if g.finalized {
		return fmt.Errorf("dag: graph already finalized")
	}
	if t.Key == "" {
		return fmt.Errorf("dag: task with empty key")
	}
	if _, dup := g.tasks[t.Key]; dup {
		return fmt.Errorf("dag: duplicate task %q", t.Key)
	}
	g.tasks[t.Key] = t
	g.order = append(g.order, t.Key)
	return nil
}

// MustAdd is Add that panics on error, for graph-building code whose keys
// are generated and cannot collide.
func (g *Graph) MustAdd(t *Task) {
	if err := g.Add(t); err != nil {
		panic(err)
	}
}

// Len reports the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Task returns the task with the given key, or nil.
func (g *Graph) Task(k Key) *Task { return g.tasks[k] }

// Keys returns all task keys in insertion order.
func (g *Graph) Keys() []Key {
	out := make([]Key, len(g.order))
	copy(out, g.order)
	return out
}

// Finalize validates the graph: every dependency must exist and the graph
// must be acyclic. After Finalize the topological order and dependent lists
// are available and the graph is immutable.
func (g *Graph) Finalize() error {
	if g.finalized {
		return nil
	}
	for _, k := range g.order {
		for _, d := range g.tasks[k].Deps {
			if _, ok := g.tasks[d]; !ok {
				return fmt.Errorf("dag: task %q depends on missing %q", k, d)
			}
		}
	}
	// Kahn's algorithm for topological order + cycle detection.
	indeg := make(map[Key]int, len(g.tasks))
	g.children = make(map[Key][]Key, len(g.tasks))
	for _, k := range g.order {
		indeg[k] = len(g.tasks[k].Deps)
		for _, d := range g.tasks[k].Deps {
			g.children[d] = append(g.children[d], k)
		}
	}
	queue := make([]Key, 0, len(g.tasks))
	for _, k := range g.order {
		if indeg[k] == 0 {
			queue = append(queue, k)
		}
	}
	topo := make([]Key, 0, len(g.tasks))
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		topo = append(topo, k)
		for _, c := range g.children[k] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(topo) != len(g.tasks) {
		return fmt.Errorf("dag: cycle detected (%d of %d tasks reachable)", len(topo), len(g.tasks))
	}
	g.topo = topo
	g.finalized = true
	return nil
}

// Finalized reports whether Finalize has succeeded.
func (g *Graph) Finalized() bool { return g.finalized }

// Topo returns the topological order. It panics if the graph is not
// finalized.
func (g *Graph) Topo() []Key {
	g.mustFinal("Topo")
	out := make([]Key, len(g.topo))
	copy(out, g.topo)
	return out
}

// Dependents returns the tasks that depend on k. Panics if not finalized.
func (g *Graph) Dependents(k Key) []Key {
	g.mustFinal("Dependents")
	out := make([]Key, len(g.children[k]))
	copy(out, g.children[k])
	return out
}

// Roots returns tasks with no dependencies, in insertion order.
func (g *Graph) Roots() []Key {
	var out []Key
	for _, k := range g.order {
		if len(g.tasks[k].Deps) == 0 {
			out = append(out, k)
		}
	}
	return out
}

// Leaves returns tasks nothing depends on. Panics if not finalized.
func (g *Graph) Leaves() []Key {
	g.mustFinal("Leaves")
	var out []Key
	for _, k := range g.order {
		if len(g.children[k]) == 0 {
			out = append(out, k)
		}
	}
	return out
}

// Ancestors returns the transitive dependency closure of the given keys
// (excluding the keys themselves unless they are ancestors of each other).
func (g *Graph) Ancestors(keys ...Key) map[Key]bool {
	seen := make(map[Key]bool)
	var walk func(k Key)
	walk = func(k Key) {
		for _, d := range g.tasks[k].Deps {
			if !seen[d] {
				seen[d] = true
				walk(d)
			}
		}
	}
	for _, k := range keys {
		if _, ok := g.tasks[k]; ok {
			walk(k)
		}
	}
	return seen
}

// Descendants returns the transitive dependent closure of the given keys.
// Panics if not finalized.
func (g *Graph) Descendants(keys ...Key) map[Key]bool {
	g.mustFinal("Descendants")
	seen := make(map[Key]bool)
	var walk func(k Key)
	walk = func(k Key) {
		for _, c := range g.children[k] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	for _, k := range keys {
		if _, ok := g.tasks[k]; ok {
			walk(k)
		}
	}
	return seen
}

// CountByCategory tallies tasks per category, sorted output for stable
// reporting.
func (g *Graph) CountByCategory() []CategoryCount {
	m := make(map[string]int)
	for _, t := range g.tasks {
		m[t.Category]++
	}
	out := make([]CategoryCount, 0, len(m))
	for c, n := range m {
		out = append(out, CategoryCount{Category: c, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// CategoryCount pairs a category with its task count.
type CategoryCount struct {
	Category string
	Count    int
}

// MaxWidth reports the largest antichain level width under a simple
// level-by-longest-path assignment — an upper-bound estimate of achievable
// concurrency used by the bench harness to sanity-check workloads.
func (g *Graph) MaxWidth() int {
	g.mustFinal("MaxWidth")
	level := make(map[Key]int, len(g.tasks))
	counts := make(map[int]int)
	maxw := 0
	for _, k := range g.topo {
		l := 0
		for _, d := range g.tasks[k].Deps {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[k] = l
		counts[l]++
		if counts[l] > maxw {
			maxw = counts[l]
		}
	}
	return maxw
}

// Depths reports each task's longest-path depth from the roots (roots are
// depth 0). Schedulers use depth as a priority: running deeper (consumer)
// tasks first releases their inputs for garbage collection, which is what
// keeps worker caches bounded on long reduction workflows.
func (g *Graph) Depths() map[Key]int {
	g.mustFinal("Depths")
	depth := make(map[Key]int, len(g.tasks))
	for _, k := range g.topo {
		d := 0
		for _, dep := range g.tasks[k].Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[k] = d
	}
	return depth
}

// CriticalPathLen reports the number of tasks on the longest dependency
// chain.
func (g *Graph) CriticalPathLen() int {
	g.mustFinal("CriticalPathLen")
	depth := make(map[Key]int, len(g.tasks))
	max := 0
	for _, k := range g.topo {
		d := 1
		for _, dep := range g.tasks[k].Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[k] = d
		if d > max {
			max = d
		}
	}
	return max
}

func (g *Graph) mustFinal(op string) {
	if !g.finalized {
		panic("dag: " + op + " before Finalize")
	}
}
