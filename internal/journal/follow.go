package journal

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Follower is a concurrent tail reader over a journal directory: the hot
// half of a standby manager. Where Replay reads a quiesced log once, a
// Follower runs *against a live writer*, streaming records as the primary
// appends them, crossing segment rotations, and surviving snapshot
// compaction — so a standby's replay state is already warm when the lease
// expires and takeover is O(records since the last poll), not O(log).
//
// Safety against a concurrent writer relies on two ordering guarantees the
// writer provides:
//
//   - A segment's bytes are fully written (and fsynced) before the next
//     segment's file is created, so once wal-(G+1).log exists, wal-G.log is
//     sealed: a partial frame at its tail is real corruption, not a write
//     in flight.
//   - Snapshots land by atomic rename, so a snapshot file, once visible,
//     is complete.
//
// A partial frame at the tail of the *active* segment is therefore "wait
// for more bytes", retried from the same offset at the next poll — the
// torn-tail-tolerant read the failover protocol needs — while the same
// bytes in a *sealed* segment are a torn tail to count and step over.
//
// Compaction can outrun a slow follower: if the segment after the one just
// finished was already folded into a snapshot and deleted, the intervening
// records are gone from disk. The follower then *resets*: it calls OnReset
// (the consumer must discard its materialized state), replays the covering
// snapshot, and continues from the first surviving segment. A follower that
// keeps up never resets, and every record is delivered exactly once.
type Follower struct {
	dir  string
	opts FollowerOptions

	f    *os.File // open segment or snapshot being read; nil before first poll
	gen  uint64   // generation of f (snapshots and segments share the counter)
	off  int64    // byte offset of the next unread frame in f
	snap bool     // f is a snapshot, not a segment
	st   FollowerStats
}

// FollowerOptions tune a Follower. Zero values mean defaults.
type FollowerOptions struct {
	// PollInterval is the sleep between polls in Run (default 2ms — the
	// journal's own group-commit window, so a follower lags the primary by
	// roughly one fsync batch).
	PollInterval time.Duration
	// OnReset is called (before any record is re-delivered) when compaction
	// deleted segments the follower had not read yet: the consumer must
	// clear its materialized state, which the follower then rebuilds from
	// the covering snapshot. Nil is allowed if the consumer's record
	// application is idempotent-and-monotone, but counting consumers want it.
	OnReset func()
}

// FollowerStats counts follower activity.
type FollowerStats struct {
	Records   int64 // records delivered
	Skipped   int64 // corrupt frames stepped over (bad CRC / undecodable)
	TornTails int64 // sealed segments that ended mid-frame
	Rotations int64 // segment boundaries crossed
	Resets    int64 // compaction outran the follower; state was rebuilt
}

// NewFollower tails the journal directory at dir. The directory (and the
// journal inside it) need not exist yet: polls before the writer's first
// segment simply deliver nothing.
func NewFollower(dir string, opts FollowerOptions) *Follower {
	if opts.PollInterval <= 0 {
		opts.PollInterval = DefaultSyncDelay
	}
	return &Follower{dir: dir, opts: opts}
}

// Stats returns a snapshot of follower counters. Not safe to race Poll —
// callers own the polling goroutine and read stats from it (or after it).
func (f *Follower) Stats() FollowerStats { return f.st }

// Close releases the open segment handle. Poll must not be called after.
func (f *Follower) Close() {
	if f.f != nil {
		f.f.Close()
		f.f = nil
	}
}

// Run polls until stop closes, forwarding every record to fn. It returns
// the number of records delivered.
func (f *Follower) Run(stop <-chan struct{}, fn func(Record)) int64 {
	t := time.NewTicker(f.opts.PollInterval)
	defer t.Stop()
	for {
		f.Poll(fn)
		select {
		case <-stop:
			return f.st.Records
		case <-t.C:
		}
	}
}

// Drain polls repeatedly until a pass delivers nothing new — the takeover
// barrier: after Drain returns, every record durable on disk has been
// forwarded. Only meaningful once the writer has stopped appending.
func (f *Follower) Drain(fn func(Record)) {
	for f.Poll(fn) > 0 {
	}
}

// Poll delivers every record currently readable and returns how many it
// forwarded. A partial frame at the tail of the active segment is left for
// the next poll; everything else advances.
func (f *Follower) Poll(fn func(Record)) int64 {
	var delivered int64
	for {
		n, more := f.pollStep(fn)
		delivered += n
		if !more {
			return delivered
		}
	}
}

// pollStep makes one unit of progress: deliver the readable frames of the
// current file, or move to the next file. more=false means "nothing further
// until the writer produces more bytes".
func (f *Follower) pollStep(fn func(Record)) (delivered int64, more bool) {
	if f.f == nil {
		return 0, f.openNext(fn)
	}
	// Seal check BEFORE reading: if the segment is sealed now, no byte can
	// be appended after the read below, so the read is guaranteed to drain
	// it completely. Checking after the read would race the writer — bytes
	// appended between the read and the check would be skipped as torn.
	sealed := f.snap // a snapshot is complete by construction
	if !sealed {
		segs, snaps, err := scanDir(f.dir)
		if err != nil {
			return 0, false
		}
		for _, g := range segs {
			if g > f.gen {
				sealed = true
				break
			}
		}
		if !sealed {
			// A snapshot at a gen >= ours also seals the segment: snapshots
			// never cover the writer's active segment, so ours cannot be it.
			for _, g := range snaps {
				if g >= f.gen {
					sealed = true
					break
				}
			}
		}
	}
	delivered = f.readFrames(fn)
	if !sealed {
		// Possibly mid-append: whatever is unread will arrive (or the
		// segment will seal) by a later poll.
		return delivered, false
	}
	// Sealed with leftover bytes = torn tail (real corruption or a crash
	// mid-batch); count it and step to the successor.
	if !f.snap {
		if fi, err := f.f.Stat(); err == nil && f.off < fi.Size() {
			f.st.TornTails++
		}
	}
	f.f.Close()
	f.f = nil
	return delivered, true
}

// openNext opens the next file to read: on first use the newest snapshot
// (or the oldest segment), afterwards the next segment generation — or,
// when compaction removed it, the covering snapshot after an OnReset.
func (f *Follower) openNext(fn func(Record)) (more bool) {
	segs, snaps, err := scanDir(f.dir)
	if err != nil || len(segs) == 0 && len(snaps) == 0 {
		return false // journal not created yet
	}
	var newestSnap uint64
	for _, g := range snaps {
		if g > newestSnap {
			newestSnap = g
		}
	}
	// The next generation to read. Snapshot gen S folds in every segment
	// <= S, so after reading snap-S the cursor continues at segments > S.
	// Segments are only ever deleted by compaction (which leaves a covering
	// snapshot behind), so the segments on disk form a contiguous run above
	// the newest snapshot — a missing gen f.gen+1 means either "not written
	// yet" or "folded into a newer snapshot", never a silent hole.
	next := uint64(0)
	for _, g := range segs {
		if g > f.gen && (next == 0 || g < next) {
			next = g
		}
	}
	switch {
	case f.gen == 0:
		// First poll: newest snapshot if one exists, else the oldest segment.
		if newestSnap > 0 {
			return f.openFile(f.snapPath(newestSnap), newestSnap, true)
		}
		return f.openFile(f.segPath(next), next, false)
	case next == f.gen+1:
		// Normal advance: the successor segment is on disk. (Even if a new
		// snapshot already covers it, reading the segment delivers the same
		// records without discarding consumer state.)
		f.st.Rotations++
		return f.openFile(f.segPath(next), next, false)
	case newestSnap > f.gen:
		// Compaction outran us: the records in (f.gen, newestSnap] now live
		// only in the snapshot. Discard consumer state and rebuild from it.
		f.st.Resets++
		if f.opts.OnReset != nil {
			f.opts.OnReset()
		}
		return f.openFile(f.snapPath(newestSnap), newestSnap, true)
	case next != 0:
		// A gap with no covering snapshot: the intervening generations were
		// never segment files (Open skips past snapshot gens). Step over it.
		f.st.Rotations++
		return f.openFile(f.segPath(next), next, false)
	default:
		return false // fully caught up; wait for the writer
	}
}

func (f *Follower) openFile(path string, gen uint64, snap bool) bool {
	file, err := os.Open(path)
	if err != nil {
		// Deleted between scan and open (compaction racing us): retry the
		// scan on the next step.
		return true
	}
	f.f, f.gen, f.off, f.snap = file, gen, 0, snap
	return true
}

func (f *Follower) segPath(gen uint64) string  { return (&Journal{dir: f.dir}).segPath(gen) }
func (f *Follower) snapPath(gen uint64) string { return (&Journal{dir: f.dir}).snapPath(gen) }

// readFrames forwards complete frames from the current offset. It stops at
// the first incomplete frame (leaving off pointing at it) so a write in
// flight is retried whole on the next poll — never delivered torn.
func (f *Follower) readFrames(fn func(Record)) int64 {
	var delivered int64
	var hdr [frameHeader]byte
	for {
		if _, err := f.f.ReadAt(hdr[:], f.off); err != nil {
			return delivered // short header: wait (or seal-check in caller)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecord {
			// Untrusted length gone bad: no way to find the next boundary.
			// Treat like an unreadable tail; the seal check decides whether
			// it's "wait" (can't happen for an append-only writer) or torn.
			return delivered
		}
		payload := make([]byte, n)
		if _, err := f.f.ReadAt(payload, f.off+frameHeader); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return delivered // partial payload: wait for the rest
			}
			return delivered
		}
		f.off += frameHeader + int64(n)
		if crc32.Checksum(payload, castagnoli) != want {
			f.st.Skipped++
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			f.st.Skipped++
			continue
		}
		fn(rec)
		f.st.Records++
		delivered++
	}
}
