package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"
)

// testOptions keeps unit tests fast and deterministic: no fsync, a tiny
// group-commit window, and a small segment size so rotation is exercised.
func testOptions() Options {
	return Options{SegmentBytes: 1 << 20, SyncDelay: time.Millisecond, NoFsync: true}
}

func mustOpen(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func doneRec(id int) *Record {
	return &Record{
		Kind:        KindTaskDone,
		TaskID:      id,
		Worker:      "w0",
		OutputSizes: map[string]int64{fmt.Sprintf("out:h%d:hist", id): int64(100 + id)},
	}
}

func defRec(id int) *Record {
	return &Record{
		Kind:    KindTaskDef,
		TaskID:  id,
		DefHash: fmt.Sprintf("h%d", id),
		Spec: &TaskSpec{
			Mode: "process", Library: "lib", Func: "fn",
			Args:    []byte(`{"i":` + strconv.Itoa(id) + `}`),
			Inputs:  []FileRef{{Name: "data", CacheName: "blob:abc"}},
			Outputs: []string{"hist"},
		},
		Outputs: map[string]string{"hist": fmt.Sprintf("out:h%d:hist", id)},
	}
}

func collect(t *testing.T, j *Journal) ([]Record, Stats) {
	t.Helper()
	var recs []Record
	st, err := j.Replay(func(r Record) { recs = append(recs, r) })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOptions())
	var want []Record
	for i := 0; i < 50; i++ {
		d := defRec(i)
		if _, err := j.Append(d); err != nil {
			t.Fatalf("append: %v", err)
		}
		want = append(want, *d)
		if i%2 == 0 {
			r := doneRec(i)
			if _, err := j.Append(r); err != nil {
				t.Fatalf("append: %v", err)
			}
			want = append(want, *r)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got, st := collect(t, j)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch: got %d records, want %d", len(got), len(want))
	}
	if st.Skipped != 0 || st.TornTails != 0 {
		t.Fatalf("clean log reported corruption: %+v", st)
	}
}

func TestReopenReplaysAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOptions())
	for i := 0; i < 10; i++ {
		j.Append(defRec(i))
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Reopen appends to a fresh segment; replay must see both generations.
	j2 := mustOpen(t, dir, testOptions())
	for i := 10; i < 15; i++ {
		j2.Append(defRec(i))
	}
	j2.Sync()
	got, _ := collect(t, j2)
	if len(got) != 15 {
		t.Fatalf("replayed %d records across reopen, want 15", len(got))
	}
	for i, r := range got {
		if r.TaskID != i {
			t.Fatalf("record %d has TaskID %d, want %d (order lost across segments)", i, r.TaskID, i)
		}
	}
}

// lastSegment returns the path of the newest wal segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, _, err := scanDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", segs[len(segs)-1]))
}

func TestTornTailStopsAtLastValidFrame(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOptions())
	for i := 0; i < 20; i++ {
		j.Append(defRec(i))
	}
	j.Sync()
	j.Close()

	// Simulate a crash mid-append: truncate the segment so the last frame
	// is partial (cut 5 bytes into its payload).
	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, testOptions())
	got, st := collect(t, j2)
	if len(got) != 19 {
		t.Fatalf("replayed %d records after torn tail, want 19", len(got))
	}
	if st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	if st.Skipped != 0 {
		t.Fatalf("torn tail misreported as skipped frame: %+v", st)
	}
	// New appends after the torn tail land in a fresh segment and survive.
	j2.Append(defRec(99))
	j2.Sync()
	got2, _ := collect(t, j2)
	if len(got2) != 20 || got2[19].TaskID != 99 {
		t.Fatalf("append after torn-tail reopen lost: %d records", len(got2))
	}
}

func TestBitFlipSkipsFrameAndCounts(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOptions())
	for i := 0; i < 10; i++ {
		j.Append(defRec(i))
	}
	j.Sync()
	j.Close()

	// Flip one bit inside the payload of the third frame.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 2; i++ { // skip two frames
		n := binary.LittleEndian.Uint32(data[off : off+4])
		off += frameHeader + int(n)
	}
	data[off+frameHeader+3] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir, testOptions())
	got, st := collect(t, j2)
	if len(got) != 9 {
		t.Fatalf("replayed %d records, want 9 (one skipped)", len(got))
	}
	if st.Skipped != 1 {
		t.Fatalf("Skipped = %d, want 1", st.Skipped)
	}
	// The frames after the flipped one must still replay: resync worked.
	var ids []int
	for _, r := range got {
		ids = append(ids, r.TaskID)
	}
	want := []int{0, 1, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("surviving TaskIDs = %v, want %v", ids, want)
	}
}

// applyState reduces a record stream to the materialized state a manager
// would reconstruct: latest def/done per task, live file declarations.
type logicalState struct {
	Defs  map[int]Record
	Dones map[int]Record
	Files map[string]Record
}

func applyState(recs []Record) logicalState {
	s := logicalState{Defs: map[int]Record{}, Dones: map[int]Record{}, Files: map[string]Record{}}
	for _, r := range recs {
		switch r.Kind {
		case KindTaskDef:
			s.Defs[r.TaskID] = r
		case KindTaskDone:
			s.Dones[r.TaskID] = r
		case KindFileDecl:
			s.Files[r.CacheName] = r
		case KindUnlink:
			delete(s.Files, r.CacheName)
		}
	}
	return s
}

// compact emulates the manager's snapshot builder: one def (+done) per
// completed task, one decl per live file — the idempotent upsert set.
func compact(recs []Record) []Record {
	s := applyState(recs)
	var out []Record
	var ids []int
	for id := range s.Defs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		out = append(out, s.Defs[id])
		if d, ok := s.Dones[id]; ok {
			out = append(out, d)
		}
	}
	var names []string
	for n := range s.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, s.Files[n])
	}
	return out
}

func TestSnapshotTailEquivalence(t *testing.T) {
	// Build the same record stream twice: journal A keeps the full log,
	// journal B compacts a prefix into a snapshot. Replay must materialize
	// identical state, and B must have dropped the covered segments.
	stream := func() []*Record {
		var rs []*Record
		rs = append(rs, &Record{Kind: KindFileDecl, CacheName: "blob:abc", Size: 3, Path: "/tmp/x"})
		for i := 0; i < 30; i++ {
			rs = append(rs, defRec(i))
			if i < 20 {
				rs = append(rs, doneRec(i))
			}
		}
		rs = append(rs, &Record{Kind: KindUnlink, CacheName: "out:h3:hist"})
		return rs
	}()
	cut := 40 // snapshot covers this prefix

	dirA, dirB := t.TempDir(), t.TempDir()
	a := mustOpen(t, dirA, testOptions())
	b := mustOpen(t, dirB, testOptions())
	for i, r := range stream {
		if _, err := a.Append(r); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append(r); err != nil {
			t.Fatal(err)
		}
		if i == cut-1 {
			g, err := b.Cut()
			if err != nil {
				t.Fatalf("cut: %v", err)
			}
			var prefix []Record
			for _, p := range stream[:cut] {
				prefix = append(prefix, *p)
			}
			if err := b.WriteSnapshot(g, compact(prefix)); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	a.Sync()
	b.Sync()

	recsA, _ := collect(t, a)
	recsB, stB := collect(t, b)
	if stB.Skipped != 0 || stB.TornTails != 0 {
		t.Fatalf("snapshot replay reported corruption: %+v", stB)
	}
	if !reflect.DeepEqual(applyState(recsA), applyState(recsB)) {
		t.Fatalf("replay(snapshot+tail) != replay(full log): %d vs %d records", len(recsB), len(recsA))
	}
	if b.Stats().Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", b.Stats().Snapshots)
	}
	// Covered segments must be gone from B's directory.
	segs, snaps, err := scanDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshot files = %v, want exactly one", snaps)
	}
	for _, g := range segs {
		if g <= snaps[0] {
			t.Fatalf("segment %d should have been compacted away (snap %d)", g, snaps[0])
		}
	}
}

func TestStaleSnapshotIsNoop(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir, testOptions())
	for i := 0; i < 5; i++ {
		j.Append(defRec(i))
	}
	g, err := j.Cut()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteSnapshot(g, nil); err != nil {
		t.Fatal(err)
	}
	// Same (now stale) generation again: must not clobber anything.
	if err := j.WriteSnapshot(g, []Record{*defRec(99)}); err != nil {
		t.Fatal(err)
	}
	if j.Stats().Snapshots != 1 {
		t.Fatalf("stale snapshot was written: %+v", j.Stats())
	}
	// Covering the active segment is refused too.
	if err := j.WriteSnapshot(j.gen, nil); err != nil {
		t.Fatal(err)
	}
	if j.Stats().Snapshots != 1 {
		t.Fatalf("active-segment snapshot was written: %+v", j.Stats())
	}
}

// TestFrameCorruptionFuzz hammers replay with randomized single-byte
// corruption. Deterministic by default; `make journal-fuzz` sets
// JOURNAL_FUZZ_SEED=0 to draw a fresh seed per run (logged for replay).
func TestFrameCorruptionFuzz(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("JOURNAL_FUZZ_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad JOURNAL_FUZZ_SEED %q: %v", s, err)
		}
		if v == 0 {
			v = time.Now().UnixNano()
		}
		seed = v
	}
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	for round := 0; round < 32; round++ {
		dir := t.TempDir()
		j := mustOpen(t, dir, testOptions())
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			j.Append(defRec(i))
		}
		j.Sync()
		j.Close()

		seg := lastSegment(t, dir)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
		}
		tore := false
		if rng.Intn(3) == 0 {
			data = data[:rng.Intn(len(data)+1)] // also tear the tail
			tore = true
		}
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}

		j2 := mustOpen(t, dir, testOptions())
		got, st := collect(t, j2)
		j2.Close()

		// Invariant 1: surviving records are a subsequence of the originals
		// (no record is invented, reordered, or half-applied).
		next := 0
		for _, r := range got {
			found := false
			for next < n {
				if r.TaskID == next {
					want := defRec(next)
					if !reflect.DeepEqual(r, *want) {
						t.Fatalf("round %d (seed %d): record %d mutated by corruption yet passed CRC", round, seed, next)
					}
					found = true
					next++
					break
				}
				next++
			}
			if !found {
				t.Fatalf("round %d (seed %d): replay invented or reordered record %d", round, seed, r.TaskID)
			}
		}
		// Invariant 2: every lost record is accounted for by the stats —
		// except when we tore the tail at an exact frame boundary, which is
		// indistinguishable from a shorter log (the WAL contract only
		// covers records before the last Sync).
		if !tore && len(got) < n && st.Skipped == 0 && st.TornTails == 0 {
			t.Fatalf("round %d (seed %d): lost %d records with no corruption counted: %+v",
				round, seed, n-len(got), st)
		}
	}
}

// FuzzReplaySegment feeds arbitrary bytes through the segment reader: it
// must terminate without panicking and never yield more data than it read.
func FuzzReplaySegment(f *testing.F) {
	j, err := Open(f.TempDir(), Options{NoFsync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j.Append(defRec(i))
	}
	j.Sync()
	segs, _, _ := scanDir(j.Dir())
	seed, _ := os.ReadFile(filepath.Join(j.Dir(), fmt.Sprintf("wal-%08d.log", segs[len(segs)-1])))
	j.Close()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	h := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(h[0:4], 4)
	binary.LittleEndian.PutUint32(h[4:8], crc32.Checksum([]byte("null"), castagnoli))
	f.Add(append(h, []byte("null")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-00000001.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		replayed, skipped, torn := replaySegment(path, func(Record) {})
		if replayed < 0 || skipped < 0 || torn < 0 {
			t.Fatalf("negative stats: %d %d %d", replayed, skipped, torn)
		}
		if replayed*frameHeader > int64(len(data)) {
			t.Fatalf("replayed %d frames from %d bytes", replayed, len(data))
		}
	})
}
