// Package journal is the durable run-state subsystem for the live plane:
// an append-only, CRC-framed write-ahead log that records task definitions,
// dispatches, completions, and file locations keyed by cachename. A manager
// opened with vine.WithJournal appends one Record per state transition and
// replays the log on restart, so a crashed manager resumes instead of
// restarting cold (§IV.B "Retaining Data" — the warm path the paper's
// near-interactive claim leans on).
//
// On-disk layout (one directory per run):
//
//	wal-00000001.log    segment: a sequence of frames
//	wal-00000002.log    (rotation at Options.SegmentBytes)
//	snap-00000002.snap  snapshot covering every segment with gen <= 2
//	wal-00000003.log    active segment
//
// Frame envelope — the same CRC-32C (Castagnoli) shape PR 4 put on every
// control frame:
//
//	[4-byte LE payload length][4-byte LE CRC-32C of payload][JSON payload]
//
// Durability model: Append buffers in memory and a group-commit timer
// (Options.SyncDelay) writes + fsyncs the batch, so a burst of completions
// costs one fsync, not one per record. Sync flushes synchronously and is the
// barrier callers use before declaring state durable. Replay tolerates
// exactly the failures a crash can produce: a torn tail (partial frame at
// the end of a segment) stops that segment's replay at the last valid frame;
// a bit flip inside a frame fails the CRC and the frame is skipped and
// counted, replay continues at the next frame boundary.
//
// Compaction: Cut rotates the active segment and returns the generation G of
// the last sealed one; the caller snapshots its *materialized* state (which
// reflects at least every record in segments <= G) and hands it to
// WriteSnapshot(G, recs), which atomically writes snap-G and deletes the
// covered segments. Replay(snapshot + tail) is equivalent to replay(full
// log) because records are idempotent upserts keyed by task id / cachename.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	frameHeader = 8
	// maxRecord bounds a single frame's payload. Anything larger is treated
	// as a corrupt length during replay (lengths are untrusted bytes).
	maxRecord = 16 << 20

	DefaultSegmentBytes = 4 << 20
	DefaultSyncDelay    = 2 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append/Sync on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Kind discriminates Record payloads.
type Kind string

const (
	KindTaskDef  Kind = "task_def"  // a task was submitted: identity + full spec
	KindDispatch Kind = "dispatch"  // a task was sent to a worker (informational)
	KindTaskDone Kind = "task_done" // a task completed: output sizes + timings
	KindTaskFail Kind = "task_fail" // a task failed terminally
	KindFileDecl Kind = "file_decl" // a file was declared at the manager
	KindUnlink   Kind = "unlink"    // a cachename was unlinked cluster-wide
	KindLease    Kind = "lease"     // a task was leased to a foreman (informational)
)

// FileRef names one task input: the in-sandbox name and the cachename that
// backs it. Mirrors vine's input binding without importing vine (the
// dependency points the other way).
type FileRef struct {
	Name      string `json:"n"`
	CacheName string `json:"c"`
}

// TaskSpec is the journal's wire form of a task definition — everything
// needed to re-enqueue the task if its outputs must be regenerated through
// the lineage ladder after a restart.
type TaskSpec struct {
	Mode     string    `json:"mode,omitempty"`
	Library  string    `json:"lib,omitempty"`
	Func     string    `json:"fn,omitempty"`
	Args     []byte    `json:"args,omitempty"`
	Inputs   []FileRef `json:"in,omitempty"`
	Outputs  []string  `json:"out,omitempty"`
	Cores    int       `json:"cores,omitempty"`
	Memory   int64     `json:"mem,omitempty"`
	Queue    string    `json:"q,omitempty"`
	Priority int       `json:"prio,omitempty"`
	// DeadlineNanos preserves the per-task attempt deadline across replay.
	DeadlineNanos int64 `json:"dl,omitempty"`
}

// Record is one journal entry. A single struct with kind-dependent fields
// keeps the wire format trivially forward-compatible (unknown fields are
// ignored on replay).
type Record struct {
	Kind Kind `json:"k"`

	// Task records.
	TaskID      int               `json:"tid,omitempty"`
	DefHash     string            `json:"def,omitempty"`
	Spec        *TaskSpec         `json:"spec,omitempty"`
	Outputs     map[string]string `json:"outs,omitempty"`  // output name → cachename
	OutputSizes map[string]int64  `json:"sizes,omitempty"` // cachename → bytes
	Worker      string            `json:"w,omitempty"`
	ExecNanos   int64             `json:"exec,omitempty"`
	SetupNanos  int64             `json:"setup,omitempty"`
	Error       string            `json:"err,omitempty"`

	// File records.
	CacheName string `json:"cn,omitempty"`
	Size      int64  `json:"size,omitempty"`
	Path      string `json:"path,omitempty"`
	Data      []byte `json:"data,omitempty"`
}

// Options tune durability/size trade-offs. Zero values mean defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	SegmentBytes int64
	// SyncDelay is the group-commit window: appends within one window share
	// a single write+fsync. Zero means DefaultSyncDelay.
	SyncDelay time.Duration
	// NoFsync skips fsync on flush — for tests that exercise logic, not
	// durability.
	NoFsync bool
}

// Stats counts journal activity since Open.
type Stats struct {
	Appends       int64 // records appended
	AppendedBytes int64 // framed bytes appended
	Syncs         int64 // write+fsync batches
	Rotations     int64 // segment rotations
	Snapshots     int64 // snapshots written
	Replayed      int64 // records replayed (last Replay)
	Skipped       int64 // corrupt frames skipped (last Replay)
	TornTails     int64 // segments ending in a partial frame (last Replay)
}

// Journal is an open run journal. Safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File
	gen      uint64 // active segment generation
	size     int64  // bytes written to active segment
	pending  []byte // framed records awaiting flush
	timerSet bool
	lastSnap uint64 // generation of the newest snapshot
	closed   bool
	err      error // first write error, sticky
	st       Stats
}

// Open creates or reopens a journal directory. Existing segments are left
// untouched (replay reads them); appends always go to a fresh segment, so a
// torn tail from a previous crash is never appended after.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncDelay <= 0 {
		opts.SyncDelay = DefaultSyncDelay
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var maxGen uint64
	for _, g := range segs {
		if g > maxGen {
			maxGen = g
		}
	}
	var lastSnap uint64
	for _, g := range snaps {
		if g > maxGen {
			maxGen = g
		}
		if g > lastSnap {
			lastSnap = g
		}
	}
	j := &Journal{dir: dir, opts: opts, gen: maxGen, lastSnap: lastSnap}
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Dir reports the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Err reports the first write error, if any. Appends after an error are
// dropped; the journal degrades to lossy rather than wedging the manager.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Stats returns a snapshot of journal counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

// segPath / snapPath name on-disk files; generations are zero-padded so
// lexical order is numeric order.
func (j *Journal) segPath(gen uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("wal-%08d.log", gen))
}
func (j *Journal) snapPath(gen uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("snap-%08d.snap", gen))
}

// scanDir lists segment and snapshot generations present in dir.
func scanDir(dir string) (segs, snaps []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range ents {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &g); n == 1 {
			segs = append(segs, g)
		} else if n, _ := fmt.Sscanf(e.Name(), "snap-%d.snap", &g); n == 1 {
			snaps = append(snaps, g)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })
	return segs, snaps, nil
}

func (j *Journal) openSegmentLocked() error {
	j.gen++
	f, err := os.OpenFile(j.segPath(j.gen), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.size = 0
	return nil
}

// encodeFrame frames one record: length + CRC-32C + JSON payload.
func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// Append queues one record for the next group commit and returns the framed
// size. It never blocks on disk unless a flush is already in progress.
func (j *Journal) Append(rec *Record) (int, error) {
	buf, err := encodeFrame(rec)
	if err != nil {
		return 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if j.err != nil {
		return 0, j.err
	}
	j.pending = append(j.pending, buf...)
	j.st.Appends++
	j.st.AppendedBytes += int64(len(buf))
	if !j.timerSet {
		j.timerSet = true
		time.AfterFunc(j.opts.SyncDelay, j.flushTimer)
	}
	return len(buf), nil
}

func (j *Journal) flushTimer() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.timerSet = false
	j.flushLocked()
}

// flushLocked writes and fsyncs pending records and rotates the segment if
// it grew past SegmentBytes. Errors are sticky.
func (j *Journal) flushLocked() {
	if len(j.pending) == 0 || j.closed && j.f == nil {
		return
	}
	buf := j.pending
	j.pending = nil
	if _, err := j.f.Write(buf); err != nil {
		j.err = fmt.Errorf("journal: write: %w", err)
		return
	}
	if !j.opts.NoFsync {
		if err := j.f.Sync(); err != nil {
			j.err = fmt.Errorf("journal: fsync: %w", err)
			return
		}
	}
	j.size += int64(len(buf))
	j.st.Syncs++
	if j.size >= j.opts.SegmentBytes {
		j.rotateLocked()
	}
}

func (j *Journal) rotateLocked() {
	j.f.Close()
	if err := j.openSegmentLocked(); err != nil {
		j.err = err
		return
	}
	j.st.Rotations++
}

// Sync flushes all pending appends to disk (write + fsync) before returning.
// This is the durability barrier: after Sync returns, every Append that
// happened-before is crash-safe.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	j.flushLocked()
	return j.err
}

// Close flushes and closes the journal. Further appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.flushLocked()
	j.closed = true
	err := j.err
	if j.f != nil {
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// Replay streams every durable record — the newest snapshot, then every
// segment after it, in generation order — through fn. Corrupt frames are
// skipped and counted; a torn tail stops that segment's replay at the last
// valid frame. Replay must not race Append: call it after Open (before
// appending) or after the writer has stopped.
func (j *Journal) Replay(fn func(Record)) (Stats, error) {
	j.mu.Lock()
	j.flushLocked()
	snapGen := j.lastSnap
	activeGen := j.gen
	j.st.Replayed, j.st.Skipped, j.st.TornTails = 0, 0, 0
	j.mu.Unlock()

	segs, snaps, err := scanDir(j.dir)
	if err != nil {
		return Stats{}, err
	}
	var replayed, skipped, torn int64
	if snapGen > 0 {
		ok := false
		for _, g := range snaps {
			if g == snapGen {
				ok = true
			}
		}
		if ok {
			r, s, t := replaySegment(j.snapPath(snapGen), fn)
			replayed, skipped, torn = replayed+r, skipped+s, torn+t
		}
	}
	for _, g := range segs {
		if g <= snapGen || g > activeGen {
			continue
		}
		r, s, t := replaySegment(j.segPath(g), fn)
		replayed, skipped, torn = replayed+r, skipped+s, torn+t
	}
	j.mu.Lock()
	j.st.Replayed, j.st.Skipped, j.st.TornTails = replayed, skipped, torn
	st := j.st
	j.mu.Unlock()
	return st, nil
}

// replaySegment reads one segment (or snapshot) file, forwarding every valid
// record to fn. CRC or decode failures skip the frame; a short header,
// implausible length, or short payload is a torn tail and ends the file.
func replaySegment(path string, fn func(Record)) (replayed, skipped, torn int64) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0
	}
	defer f.Close()
	r := io.Reader(f)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err != io.EOF {
				torn++
			}
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecord {
			// The length itself is untrusted; a bogus value means we cannot
			// find the next frame boundary, so the rest of the file is lost.
			torn++
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			torn++
			return
		}
		if crc32.Checksum(payload, castagnoli) != want {
			skipped++
			continue
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			skipped++
			continue
		}
		fn(rec)
		replayed++
	}
}

// Cut flushes, seals the active segment, and opens a fresh one. It returns
// the generation of the last sealed segment — the high-water mark a
// subsequent WriteSnapshot may cover. Callers capture their materialized
// state *after* Cut (under the same lock that orders their appends), so the
// snapshot reflects at least every record in segments <= G; replaying a
// later record whose effect is already in the snapshot is harmless because
// records are idempotent upserts.
//
// An empty active segment (a size-triggered rotation just fired, or nothing
// was appended since the last Cut) is not sealed: the previous generation is
// already the high-water mark, and sealing an empty segment would let a
// snapshot cover a generation that live followers never need to read —
// tripping their lapped-by-compaction reset even though they missed nothing.
// With no sealed data at all the returned generation is 0, which
// WriteSnapshot treats as a no-op.
func (j *Journal) Cut() (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	j.flushLocked()
	if j.err != nil {
		return 0, j.err
	}
	if j.size == 0 {
		return j.gen - 1, nil
	}
	g := j.gen
	j.rotateLocked()
	return g, j.err
}

// WriteSnapshot atomically writes a snapshot covering every segment with
// generation <= upTo, then deletes those segments (and older snapshots).
// A stale upTo (already covered by a newer snapshot) is a no-op.
func (j *Journal) WriteSnapshot(upTo uint64, recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if upTo == 0 || upTo <= j.lastSnap || upTo >= j.gen {
		// upTo >= j.gen would cover the active segment; Cut first.
		return nil
	}
	var buf []byte
	for i := range recs {
		b, err := encodeFrame(&recs[i])
		if err != nil {
			return err
		}
		buf = append(buf, b...)
	}
	tmp := j.snapPath(upTo) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil && !j.opts.NoFsync {
		werr = f.Sync()
	}
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", werr)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, j.snapPath(upTo)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	prevSnap := j.lastSnap
	j.lastSnap = upTo
	j.st.Snapshots++
	segs, snaps, err := scanDir(j.dir)
	if err != nil {
		return nil // snapshot landed; cleanup is best-effort
	}
	for _, g := range segs {
		if g <= upTo {
			os.Remove(j.segPath(g))
		}
	}
	for _, g := range snaps {
		if g < upTo || g == prevSnap && prevSnap < upTo {
			os.Remove(j.snapPath(g))
		}
	}
	return nil
}
