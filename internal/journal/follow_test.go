package journal

import (
	"sync"
	"testing"
	"time"
)

// TestFollowerLiveTail runs a Follower against a live writer that appends,
// rotates (Cut), and compacts (WriteSnapshot) concurrently. The follower
// must deliver every record exactly once, in order, and never observe a
// torn frame — the invariant hot-standby replay depends on.
func TestFollowerLiveTail(t *testing.T) {
	dir := t.TempDir()
	jr, err := Open(dir, Options{SyncDelay: time.Millisecond, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}

	const total = 3000
	var (
		mu   sync.Mutex
		seen []int
	)
	fl := NewFollower(dir, FollowerOptions{
		PollInterval: 200 * time.Microsecond,
		OnReset: func() {
			// A keeping-up follower must never be lapped by compaction;
			// the writer below snapshots only sealed, already-read history
			// slowly enough that resets would indicate a cursor bug.
			t.Error("unexpected follower reset")
			mu.Lock()
			seen = seen[:0]
			mu.Unlock()
		},
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fl.Run(stop, func(r Record) {
			mu.Lock()
			seen = append(seen, r.TaskID)
			mu.Unlock()
		})
	}()

	// Writer: append records 1..total; every 500 records force a rotation,
	// and every 1000 compact — but only history the follower has already
	// consumed (a real primary compacts old, settled state, not the
	// segment sealed a microsecond ago). Compacting unread segments is the
	// reset path, covered by TestFollowerCompactionReset.
	caughtUp := func(n int) {
		// This must be a hard barrier: returning early would let the writer
		// snapshot unread history, turning scheduler starvation into a
		// legitimate-looking reset that the test then misdiagnoses.
		deadline := time.Now().Add(60 * time.Second)
		for {
			mu.Lock()
			got := len(seen)
			mu.Unlock()
			if got >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower stalled: delivered %d records, writer waiting for %d", got, n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	type cut struct {
		gen   uint64
		count int // records covered by segments <= gen
	}
	var cuts []cut
	for i := 1; i <= total; i++ {
		if _, err := jr.Append(&Record{Kind: KindTaskDone, TaskID: i}); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			g, err := jr.Cut()
			if err != nil {
				t.Fatal(err)
			}
			cuts = append(cuts, cut{gen: g, count: i})
		}
		if i%1000 == 0 && len(cuts) >= 2 {
			// Compact up to the previous cut, once the follower has read
			// past it.
			c := cuts[len(cuts)-2]
			caughtUp(c.count)
			if err := jr.WriteSnapshot(c.gen, []Record{{Kind: KindTaskDone, TaskID: -1}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := jr.Sync(); err != nil {
		t.Fatal(err)
	}

	// Wait for the follower to drain everything durable, then stop it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n >= total || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	fl.Close()
	jr.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != total {
		t.Fatalf("follower delivered %d records, want %d", len(seen), total)
	}
	for i, id := range seen {
		if id != i+1 {
			t.Fatalf("record %d has TaskID %d, want %d (duplicated or reordered)", i, id, i+1)
		}
	}
	st := fl.Stats()
	if st.Skipped != 0 || st.TornTails != 0 {
		t.Fatalf("follower observed corruption on a healthy log: %+v", st)
	}
	if st.Rotations == 0 {
		t.Fatalf("writer rotated but follower crossed no segment boundary: %+v", st)
	}
}

// TestFollowerCompactionReset laps a stalled follower with compaction: the
// covered segments vanish before the follower reads them, so it must fire
// OnReset and rebuild from the covering snapshot rather than silently
// skipping the missing records.
func TestFollowerCompactionReset(t *testing.T) {
	dir := t.TempDir()
	jr, err := Open(dir, Options{SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Seed some history and let a follower consume the first segment only.
	for i := 1; i <= 10; i++ {
		if _, err := jr.Append(&Record{Kind: KindTaskDone, TaskID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := jr.Cut(); err != nil {
		t.Fatal(err)
	}

	var got []int
	resets := 0
	fl := NewFollower(dir, FollowerOptions{OnReset: func() {
		resets++
		got = got[:0]
	}})
	fl.Poll(func(r Record) { got = append(got, r.TaskID) })
	if len(got) != 10 {
		t.Fatalf("pre-compaction poll delivered %d records, want 10", len(got))
	}

	// Now the follower stalls while the writer races ahead: two more
	// sealed segments, then a snapshot folding all of them away.
	for i := 11; i <= 20; i++ {
		if _, err := jr.Append(&Record{Kind: KindTaskDone, TaskID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := jr.Cut(); err != nil {
		t.Fatal(err)
	}
	for i := 21; i <= 30; i++ {
		if _, err := jr.Append(&Record{Kind: KindTaskDone, TaskID: i}); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := jr.Cut()
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is the fold of records 1..30.
	if err := jr.WriteSnapshot(cut, []Record{{Kind: KindTaskDone, TaskID: 30}}); err != nil {
		t.Fatal(err)
	}
	// And the log keeps growing past the snapshot.
	for i := 31; i <= 35; i++ {
		if _, err := jr.Append(&Record{Kind: KindTaskDone, TaskID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Sync(); err != nil {
		t.Fatal(err)
	}

	fl.Drain(func(r Record) { got = append(got, r.TaskID) })
	fl.Close()
	jr.Close()

	if resets != 1 {
		t.Fatalf("follower reset %d times, want 1", resets)
	}
	want := []int{30, 31, 32, 33, 34, 35} // snapshot fold, then live tail
	if len(got) != len(want) {
		t.Fatalf("post-reset records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-reset records = %v, want %v", got, want)
		}
	}
	if fl.Stats().Resets != 1 {
		t.Fatalf("stats resets = %d, want 1", fl.Stats().Resets)
	}
}
