package vine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hepvine/internal/journal"
)

// ---- service hooks: SubmitShared / Drain ----

func TestSubmitSharedDedupesCompleted(t *testing.T) {
	m, _ := newCluster(t, 1, 2)
	h1, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("shared"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	done := m.Stats().TasksDone
	h2, shared, err := m.SubmitShared(Task{
		Mode: ModeTask, Library: "testlib", Func: "echo", Args: []byte("shared"), Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !shared {
		t.Fatal("identical definition not shared")
	}
	if h2 != h1 {
		t.Fatal("shared submission returned a different handle")
	}
	if !h2.WarmHit() {
		t.Fatal("completed dedupe not marked warm")
	}
	if m.Stats().TasksDone != done {
		t.Fatal("dedupe ran the task again")
	}
	if m.WarmHits() == 0 {
		t.Fatal("warm hit not counted")
	}
	// A different definition is not shared.
	h3, shared, err := m.SubmitShared(Task{
		Mode: ModeTask, Library: "testlib", Func: "echo", Args: []byte("different"), Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared || h3 == h1 {
		t.Fatal("distinct definition wrongly shared")
	}
}

func TestSubmitSharedDedupesInFlight(t *testing.T) {
	m, _ := newCluster(t, 1, 2)
	spec := Task{Mode: ModeTask, Library: "testlib", Func: "sleep50", Outputs: []string{"out"}}
	h1, shared, err := m.SubmitShared(spec)
	if err != nil || shared {
		t.Fatalf("first submission shared=%v err=%v", shared, err)
	}
	// Same definition while the first is still running: one execution,
	// second caller rides the same handle.
	h2, shared, err := m.SubmitShared(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !shared || h2 != h1 {
		t.Fatal("in-flight definition not deduped onto the running execution")
	}
	if err := h2.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TasksDone != 1 {
		t.Fatalf("TasksDone = %d, want 1", m.Stats().TasksDone)
	}
}

func TestDrainRefusesFreshAdmitsDedupe(t *testing.T) {
	m, _ := newCluster(t, 1, 2)
	spec := Task{Mode: ModeTask, Library: "testlib", Func: "sleep50", Outputs: []string{"out"}}
	h, _, err := m.SubmitShared(spec)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(10 * time.Second) }()
	deadline := time.Now().Add(2 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("draining flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	// Fresh work is refused...
	if _, err := m.Submit(Task{Mode: ModeTask, Library: "testlib", Func: "echo", Args: []byte("x"), Outputs: []string{"out"}}); err != ErrDraining {
		t.Fatalf("Submit during drain: %v", err)
	}
	// ...but a dedupe of the in-flight task is still served.
	h2, shared, err := m.SubmitShared(spec)
	if err != nil || !shared || h2 != h {
		t.Fatalf("dedupe during drain: shared=%v err=%v", shared, err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if m.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", m.InFlight())
	}
	if h.State() != TaskDone {
		t.Fatalf("in-flight task state %s after drain", h.State())
	}
}

// ---- regression: Stop racing in-flight Submits must not lose journal
// records behind the final sync ----

// TestStopSubmitJournalRace hammers Submit from many goroutines while
// Stop runs concurrently, with a journal whose group-commit window is
// wide enough that only Stop's final Sync makes records durable. The
// invariant: every Submit that reported success has its task_def frame
// on disk after Stop returns — no record slips in behind the sync, and
// none is flushed after it.
func TestStopSubmitJournalRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		jr, err := journal.Open(dir, journal.Options{SyncDelay: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		registerTestLib(t)
		m, err := NewManager(WithLibrary("testlib", true), WithJournal(jr))
		if err != nil {
			t.Fatal(err)
		}
		var accepted atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				for n := 0; n < 50; n++ {
					_, err := m.Submit(Task{
						Mode: ModeTask, Library: "testlib", Func: "echo",
						Args:    []byte{byte(round), byte(i), byte(n)},
						Outputs: []string{"out"},
					})
					if err == nil {
						accepted.Add(1)
					} else if !strings.Contains(err.Error(), "stopped") {
						t.Errorf("unexpected submit error: %v", err)
					}
				}
			}(i)
		}
		close(start)
		m.Stop() // races the submitters
		wg.Wait()
		if err := jr.Err(); err != nil {
			t.Fatalf("journal degraded: %v", err)
		}
		if err := jr.Close(); err != nil {
			t.Fatal(err)
		}
		// Reopen and count durable task_def frames: one per accepted
		// Submit, none extra.
		jr2, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defs := 0
		if _, err := jr2.Replay(func(r journal.Record) {
			if r.Kind == journal.KindTaskDef {
				defs++
			}
		}); err != nil {
			t.Fatal(err)
		}
		jr2.Close()
		if int64(defs) != accepted.Load() {
			t.Fatalf("round %d: %d accepted submissions but %d durable task_def records",
				round, accepted.Load(), defs)
		}
	}
}
