package vine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hepvine/internal/obs"
)

// Worker persistent cache and reconnection.
//
// With WorkerOptions.Persist on, the cache directory outlives the worker
// process. A JSONL sidecar (index.jsonl) records {name, size, crc32c} per
// entry, appended on add and tombstoned on remove. A restarting worker
// scrubs the directory against the index — re-reading every indexed file
// and verifying size and CRC-32C — drops anything corrupt, missing, or
// unindexed, and reports the survivors to the manager as its cache
// inventory in the registration hello. Until a manager acknowledges an
// entry (or a task/transfer touches it), scrubbed entries are *orphans*
// with a TTL: caches left behind by finished runs age out instead of
// leaking disk forever.
//
// Reconnection is the other half of surviving a manager bounce: on a
// connection error or heartbeat silence, the worker re-dials the manager
// address and re-sends hello with its current in-memory inventory, so the
// (possibly journal-resumed) manager re-learns the replicas instead of
// re-staging them.

// indexFileName is the sidecar's name inside the cache dir; never a valid
// cachePathSafe output, so it can't collide with an entry.
const indexFileName = "index.jsonl"

// defaultReconnectBackoff is the delay before each redial attempt unless
// WithReconnect overrides it. Mirrored as params.DefaultReconnectBackoff.
const defaultReconnectBackoff = 50 * time.Millisecond

// indexLine is one sidecar record: an upsert, or a tombstone when Del.
type indexLine struct {
	Name string `json:"n"`
	Size int64  `json:"s,omitempty"`
	CRC  uint32 `json:"c,omitempty"`
	Del  bool   `json:"d,omitempty"`
}

func (w *Worker) indexPath() string { return filepath.Join(w.dir, indexFileName) }

// openIndex opens the sidecar for appending (created by scrubCache's
// rewrite, which always runs first).
func (w *Worker) openIndex() error {
	f, err := os.OpenFile(w.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.idxMu.Lock()
	w.idxF = f
	w.idxMu.Unlock()
	return nil
}

func (w *Worker) closeIndex() {
	w.idxMu.Lock()
	defer w.idxMu.Unlock()
	if w.idxF != nil {
		w.idxF.Close()
		w.idxF = nil
	}
}

// appendIndexLine writes one JSONL record. Index write failures are
// deliberately non-fatal: the run proceeds, the entry just won't survive a
// restart (the scrub drops unindexed files).
func (w *Worker) appendIndexLine(l indexLine) {
	w.idxMu.Lock()
	defer w.idxMu.Unlock()
	if w.idxF == nil {
		return
	}
	data, err := json.Marshal(l)
	if err != nil {
		return
	}
	w.idxF.Write(append(data, '\n'))
}

// indexAdd records a cache entry in the persistent index.
func (w *Worker) indexAdd(name CacheName, size int64, crc uint32) {
	if !w.persist {
		return
	}
	w.appendIndexLine(indexLine{Name: string(name), Size: size, CRC: crc})
}

// indexRemove tombstones a cache entry in the persistent index.
func (w *Worker) indexRemove(name CacheName) {
	if !w.persist {
		return
	}
	w.appendIndexLine(indexLine{Name: string(name), Del: true})
}

// loadIndex folds the sidecar into its final state: last record per name
// wins, tombstones delete. A torn final line (crash mid-append) is skipped.
func loadIndex(path string) (map[CacheName]indexLine, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[CacheName]indexLine{}, nil
		}
		return nil, err
	}
	defer f.Close()
	out := make(map[CacheName]indexLine)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		var l indexLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			continue // torn or corrupt line: entry simply won't verify
		}
		if l.Del {
			delete(out, CacheName(l.Name))
		} else {
			out[CacheName(l.Name)] = l
		}
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return nil, err
	}
	return out, nil
}

// fileCRC streams a file, returning its size and CRC-32C.
func fileCRC(path string) (int64, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, f)
	if err != nil {
		return n, 0, err
	}
	return n, h.Sum32(), nil
}

// scrubCache verifies every indexed entry against its on-disk bytes,
// drops corrupt/missing/unindexed files, rewrites a compact index, and
// returns the surviving inventory (sorted for determinism). Runs before
// the worker dials, on fresh construction state, so only w.met needs to
// be live. All survivors start as orphans; the manager's inventory ack or
// first use rescues them.
func (w *Worker) scrubCache() ([]inventoryEntry, error) {
	idx, err := loadIndex(w.indexPath())
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{indexFileName: true}
	var inv []inventoryEntry
	deadline := time.Now().Add(w.orphanTTL)
	for name, l := range idx {
		path := w.cachePath(name)
		size, crc, err := fileCRC(path)
		if err != nil || size != l.Size || crc != l.CRC {
			os.Remove(path)
			w.met.scrubDrops.Inc()
			w.rec.Emit(obs.Event{Type: obs.EvFileCorrupt, Worker: w.Name,
				Detail: fmt.Sprintf("scrub dropped %s (size %d vs %d indexed)", name, size, l.Size)})
			continue
		}
		w.cache[name] = size
		w.cacheUsed += size
		if w.orphanTTL > 0 {
			w.orphans[name] = deadline
		}
		keep[cachePathSafe(name)] = true
		inv = append(inv, inventoryEntry{CacheName: string(name), Size: size})
	}
	// Sweep strays: unindexed leftovers and .part temps from a crashed
	// transfer are unverifiable, so they go.
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	for _, de := range ents {
		if !keep[de.Name()] {
			os.RemoveAll(filepath.Join(w.dir, de.Name()))
		}
	}
	// Rewrite the index compactly (dropping tombstones and dead entries),
	// atomically so a crash here leaves the old index, not half of one.
	tmp := w.indexPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	for name, size := range w.cache {
		crc := idx[name].CRC
		data, _ := json.Marshal(indexLine{Name: string(name), Size: size, CRC: crc})
		bw.Write(append(data, '\n'))
	}
	werr := bw.Flush()
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		os.Remove(tmp)
		return nil, werr
	}
	if err := os.Rename(tmp, w.indexPath()); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	w.met.cacheBytes.Set(w.cacheUsed)
	w.met.cacheHighWater.SetMax(w.cacheUsed)
	sort.Slice(inv, func(i, j int) bool { return inv[i].CacheName < inv[j].CacheName })
	return inv, nil
}

// inventoryLocked snapshots the current cache as hello inventory entries
// (requires w.mu).
func (w *Worker) inventoryLocked() []inventoryEntry {
	inv := make([]inventoryEntry, 0, len(w.cache))
	for name, size := range w.cache {
		inv = append(inv, inventoryEntry{CacheName: string(name), Size: size})
	}
	sort.Slice(inv, func(i, j int) bool { return inv[i].CacheName < inv[j].CacheName })
	return inv
}

// onInventoryAck rescues manager-recognized entries from the orphan set:
// they're replicas in a live run now, reclaimed by the normal unlink/evict
// lifecycle instead of the TTL.
func (w *Worker) onInventoryAck(ack *inventoryAckMsg) {
	w.mu.Lock()
	for _, name := range ack.Known {
		delete(w.orphans, CacheName(name))
	}
	w.mu.Unlock()
}

// Orphans reports how many scrubbed cache entries are still unclaimed by
// any manager (tests and diagnostics).
func (w *Worker) Orphans() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.orphans)
}

// orphanGC ages out cache entries no manager ever claimed. Pinned entries
// get their deadline pushed instead of being dropped mid-use.
func (w *Worker) orphanGC() {
	tick := w.orphanTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.doneC:
			return
		case <-t.C:
		}
		now := time.Now()
		var victims []evictedFile
		w.mu.Lock()
		for name, dl := range w.orphans {
			if !now.After(dl) {
				continue
			}
			if w.pins[name] > 0 {
				w.orphans[name] = now.Add(w.orphanTTL)
				continue
			}
			if size, ok := w.cache[name]; ok {
				delete(w.cache, name)
				delete(w.lastUse, name)
				w.cacheUsed -= size
				victims = append(victims, evictedFile{name: name, size: size})
			}
			delete(w.orphans, name)
		}
		if len(victims) > 0 {
			w.met.cacheBytes.Set(w.cacheUsed)
		}
		w.mu.Unlock()
		for range victims {
			w.met.orphanGCs.Inc()
		}
		w.finishEvictions(victims)
	}
}

// reconnect re-establishes the control channel after old died. Exactly one
// goroutine runs the redial (readLoop and monitorManager can both detect
// the loss); latecomers wait for its outcome. Reports whether the worker
// is registered on a fresh connection.
func (w *Worker) reconnect(old *conn) bool {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return false
	}
	if w.conn != old {
		// Another goroutine already swapped the connection.
		w.mu.Unlock()
		return true
	}
	if w.reconnectAttempts <= 0 {
		w.mu.Unlock()
		return false
	}
	if c := w.redialC; c != nil {
		w.mu.Unlock()
		<-c
		w.mu.Lock()
		ok := !w.stopped && w.conn != old
		w.mu.Unlock()
		return ok
	}
	done := make(chan struct{})
	w.redialC = done
	attempts, backoff := w.reconnectAttempts, w.reconnectBackoff
	addrs, start := w.addrs, w.addrIdx
	w.mu.Unlock()

	old.close()
	var nc *conn
	dialed := -1
	for i := 1; i <= attempts; i++ {
		// Back off before every attempt: even an immediately-successful
		// dial against a half-up manager shouldn't spin.
		select {
		case <-w.doneC:
		case <-time.After(backoff):
		}
		// Cycle the manager address list, starting from the last address
		// known good: attempt 1 retries the primary, later attempts rotate
		// through the standbys, so a failover lands within one lap.
		addr := addrs[(start+i-1)%len(addrs)]
		select {
		case <-w.doneC:
			// Stopped while waiting; give up without dialing.
		default:
			raw, err := w.nc.dial(addr, w.label+"/control")
			if err == nil {
				nc = newConn(raw)
				dialed = (start + i - 1) % len(addrs)
			} else {
				w.rec.Emit(obs.Event{Type: obs.EvNetRetry, Worker: w.Name, Attempt: i,
					Dur: backoff, Detail: "manager redial " + addr + ": " + err.Error()})
			}
		}
		if nc != nil {
			break
		}
		w.mu.Lock()
		stopped := w.stopped
		w.mu.Unlock()
		if stopped {
			break
		}
	}

	w.mu.Lock()
	defer func() {
		w.redialC = nil
		close(done)
		w.mu.Unlock()
	}()
	if w.stopped || nc == nil {
		if nc != nil {
			nc.close()
		}
		return false
	}
	w.conn = nc
	w.addrIdx = dialed
	w.lastMgr = time.Now()
	inv := w.inventoryLocked()
	w.met.reconnects.Inc()
	w.rec.Emit(obs.Event{Type: obs.EvWorkerJoin, Worker: w.Name,
		Detail: fmt.Sprintf("reconnected with %d cached files", len(inv))})
	nc.send(&message{Type: msgHello, Hello: &helloMsg{
		Name:         w.Name,
		Cores:        w.Cores,
		Memory:       w.memory,
		TransferAddr: w.ts.Addr(),
		DiskLimit:    w.diskLimit,
		Preemptible:  w.preemptible,
		Inventory:    inv,
	}})
	return true
}

// Reconnects reports how many times this worker re-registered with the
// manager (tests and diagnostics).
func (w *Worker) Reconnects() int { return int(w.met.reconnects.Value()) }
