package vine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/sched"
)

// submitEcho submits one echo task with scheduling attributes set.
func submitEcho(t *testing.T, m *Manager, queue string, prio int, tag string) *TaskHandle {
	t.Helper()
	h, err := m.Submit(Task{
		Library: "testlib", Func: "echo", Args: []byte(tag),
		Outputs: []string{"out"}, Queue: queue, Priority: prio,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPriorityOrdersDispatch submits a backlog before any worker exists,
// then attaches a single one-core worker and checks the scheduler drains
// it highest-priority-first, FIFO within a class.
func TestPriorityOrdersDispatch(t *testing.T) {
	registerTestLib(t)
	rec := obs.NewRecorder()
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("testlib", true), WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	handles := []*TaskHandle{
		submitEcho(t, m, "", 0, "low-first"),
		submitEcho(t, m, "", 7, "high"),
		submitEcho(t, m, "", 0, "low-second"),
		submitEcho(t, m, "", 3, "mid"),
	}
	w, err := NewWorker(m.Addr(), WithName("w0"), WithCores(1), WithCacheDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	for _, h := range handles {
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	var order []string
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvSchedDecision {
			order = append(order, ev.Task)
		}
	}
	want := []string{"1", "3", "0", "2"} // task ids: high, mid, low-first, low-second
	if len(order) != len(want) {
		t.Fatalf("saw %d decisions, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestQueuesShareAndReport drives two weighted queues through one
// single-core worker and checks the per-queue stats, the queue-wait
// histogram, and the per-queue dispatch counters all materialise.
func TestQueuesShareAndReport(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(
		WithPeerTransfers(true), WithLibrary("testlib", true),
		WithQueue("interactive", 3), WithQueue("batch", 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()

	var handles []*TaskHandle
	for i := 0; i < 6; i++ {
		handles = append(handles, submitEcho(t, m, "interactive", 0, fmt.Sprintf("i%d", i)))
		handles = append(handles, submitEcho(t, m, "batch", 0, fmt.Sprintf("b%d", i)))
	}
	w, err := NewWorker(m.Addr(), WithName("w0"), WithCores(1), WithCacheDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	for _, h := range handles {
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	stats := m.QueueStats()
	byName := map[string]sched.QueueStats{}
	for _, qs := range stats {
		byName[qs.Name] = qs
	}
	if byName["interactive"].Dispatched != 6 || byName["batch"].Dispatched != 6 {
		t.Fatalf("queue stats missing dispatches: %+v", stats)
	}
	if byName["interactive"].Weight != 3 {
		t.Fatalf("interactive weight = %v, want 3", byName["interactive"].Weight)
	}

	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"vine_task_queue_wait_seconds",
		`vine_queue_tasks_dispatched_total{queue="interactive"}`,
		`vine_queue_tasks_dispatched_total{queue="batch"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, text)
		}
	}
}

// TestDispatchEventCarriesReason asserts the satellite contract: every
// EvTaskDispatch now carries the placement reason and queue wait.
func TestDispatchEventCarriesReason(t *testing.T) {
	registerTestLib(t)
	rec := obs.NewRecorder()
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("testlib", true), WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	w, err := NewWorker(m.Addr(), WithName("w0"), WithCores(2), WithCacheDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	h := submitEcho(t, m, "", 0, "x")
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range rec.Events() {
		if ev.Type != obs.EvTaskDispatch {
			continue
		}
		found = true
		if !strings.Contains(ev.Detail, "policy=locality") || !strings.Contains(ev.Detail, "queue=default") {
			t.Fatalf("dispatch detail %q missing placement reason", ev.Detail)
		}
	}
	if !found {
		t.Fatal("no EvTaskDispatch recorded")
	}
}

// TestWithSchedulerPolicySwap runs the cluster under the spread policy
// and checks tasks land on both workers rather than packing onto one.
func TestWithSchedulerPolicySwap(t *testing.T) {
	registerTestLib(t)
	rec := obs.NewRecorder()
	m, err := NewManager(
		WithPeerTransfers(true), WithLibrary("testlib", true),
		WithScheduler(sched.Spread()), WithRecorder(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	for i := 0; i < 2; i++ {
		w, err := NewWorker(m.Addr(), WithName(fmt.Sprintf("w%d", i)), WithCores(4), WithCacheDir(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var handles []*TaskHandle
	for i := 0; i < 4; i++ {
		h, err := m.Submit(Task{Library: "testlib", Func: "sleep50", Outputs: []string{"out"}})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	used := map[string]bool{}
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvSchedDecision {
			used[ev.Worker] = true
		}
	}
	if len(used) < 2 {
		t.Fatalf("spread policy used only %v, want both workers", used)
	}
}
