package vine

import (
	"bytes"
	"testing"
	"time"
)

// TestDiskLimitEvictsAndRestages is the WithDiskLimit eviction-path
// contract: a cache too small for the working set evicts LRU entries
// (CacheEvictions increments), the manager learns via the eviction
// notice, and a task that needs an evicted input gets it re-staged —
// every task still succeeds.
func TestDiskLimitEvictsAndRestages(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	// 1000-byte cache, 400-byte files: an input plus its output fit, but
	// each new staging or output must push something old out.
	w, err := NewWorker(m.Addr(), WithName("w0"), WithCores(1),
		WithCacheDir(t.TempDir()), WithDiskLimit(1000))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	bufA := m.DeclareBuffer(bytes.Repeat([]byte("a"), 400))
	bufB := m.DeclareBuffer(bytes.Repeat([]byte("b"), 400))

	run := func(in CacheName) *TaskHandle {
		t.Helper()
		h, err := m.Submit(Task{
			Library: "testlib", Func: "upper",
			Inputs:  []FileRef{{Name: "in", CacheName: in}},
			Outputs: []string{"out"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(10 * time.Second); err != nil {
			t.Fatalf("task with input %s failed instead of evicting: %v", in, err)
		}
		return h
	}

	run(bufA)      // stages A, produces 400B output
	run(bufB)      // staging B must evict A
	h := run(bufA) // A is gone from the worker: must be re-staged, not failed

	if got := w.Stats().CacheEvictions; got < 2 {
		t.Fatalf("CacheEvictions = %d, want >= 2 (A evicted for B, something evicted for A again)", got)
	}
	out := fetchOutput(t, m, h, "out")
	if !bytes.Equal(out, bytes.Repeat([]byte("A"), 400)) {
		t.Fatalf("re-staged task produced wrong output (%d bytes)", len(out))
	}
	// The manager's replica table must agree with the worker: no file
	// claims more live replicas than exist.
	if rc := m.ReplicaCount(bufA); rc < 1 {
		t.Fatalf("input A replica count = %d after re-staging", rc)
	}
}

// TestEvictionNeverDropsPinnedInputs runs tasks whose input+output
// exactly fill the cache; the input must survive (pinned) while the
// output is written, so the task completes instead of failing mid-run.
func TestEvictionNeverDropsPinnedInputs(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	w, err := NewWorker(m.Addr(), WithName("w0"), WithCores(1),
		WithCacheDir(t.TempDir()), WithDiskLimit(800))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	in := m.DeclareBuffer(bytes.Repeat([]byte("x"), 400))
	for i := 0; i < 3; i++ {
		h, err := m.Submit(Task{
			Library: "testlib", Func: "upper",
			Inputs:  []FileRef{{Name: "in", CacheName: in}},
			Outputs: []string{"out"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(10 * time.Second); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}
