package vine

import (
	"sync"

	"hepvine/internal/journal"
)

// ReplayState is the journal fold a manager materializes from at
// construction: the definitions and completions still standing after
// terminal failures and unlinks are applied, plus every file the run knows
// about. NewManager builds one internally when replaying an attached
// journal from disk; a hot standby (internal/ha) builds one *ahead of
// time* by streaming a journal.Follower into Apply while the primary is
// still alive, then hands it to NewManager via WithReplayState — takeover
// pays only for materialization, not for re-reading the log.
//
// Apply is safe to call concurrently with Reset (a Follower's OnReset
// hook); the fold itself is single-writer in both uses.
type ReplayState struct {
	mu      sync.Mutex
	defs    map[int]journal.Record
	dones   map[int]journal.Record
	files   map[CacheName]*replayFile
	maxID   int
	applied int64
}

// replayFile is the fold's view of one file while records stream by.
type replayFile struct {
	size     int64
	path     string
	data     []byte
	producer int
}

// NewReplayState returns an empty fold ready for Apply.
func NewReplayState() *ReplayState {
	s := &ReplayState{}
	s.resetLocked()
	return s
}

func (s *ReplayState) resetLocked() {
	s.defs = make(map[int]journal.Record)
	s.dones = make(map[int]journal.Record)
	s.files = make(map[CacheName]*replayFile)
	s.maxID = -1
}

// Reset discards the fold — the journal.Follower OnReset contract, fired
// when compaction outruns the tail and state must rebuild from a snapshot.
func (s *ReplayState) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetLocked()
}

// Apply folds one journal record. Records are idempotent upserts, so
// re-applying (after a Follower reset replays a covering snapshot) is
// harmless.
func (s *ReplayState) Apply(r journal.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	switch r.Kind {
	case journal.KindTaskDef:
		if r.Spec != nil {
			s.defs[r.TaskID] = r
		}
		if r.TaskID > s.maxID {
			s.maxID = r.TaskID
		}
	case journal.KindTaskDone:
		s.dones[r.TaskID] = r
		for cn, size := range r.OutputSizes {
			s.files[CacheName(cn)] = &replayFile{size: size, producer: r.TaskID}
		}
	case journal.KindTaskFail:
		// Terminal failures are forgotten: a resubmission retries fresh.
		delete(s.dones, r.TaskID)
	case journal.KindFileDecl:
		s.files[CacheName(r.CacheName)] = &replayFile{
			size: r.Size, path: r.Path, data: r.Data, producer: -1,
		}
	case journal.KindUnlink:
		delete(s.files, CacheName(r.CacheName))
	case journal.KindDispatch:
		// Dispatches are observability records; placement is not replayed.
	case journal.KindLease:
		// Leases replay like dispatches: the root re-runs unfinished tasks
		// from their definitions, so a dead foreman's in-flight leases are
		// simply re-leased by the resumed (or standby) manager.
	}
}

// Applied reports how many records have been folded in (across resets).
func (s *ReplayState) Applied() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Completed reports how many tasks the fold currently holds as done —
// the standby's view of replay progress.
func (s *ReplayState) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dones)
}
