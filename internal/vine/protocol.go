// Package vine is a real distributed task and data scheduler modelled on
// TaskVine (§II.C, §IV.B): a central manager coordinates workers over TCP;
// workers hold a content-addressed on-disk cache, execute tasks or
// serverless function calls, and serve peer transfers to one another so
// intermediate data never has to round-trip through the manager or a shared
// filesystem.
//
// The engine is fully functional: examples and integration tests run
// managers and workers (in-process goroutines or the cmd/vineworker binary)
// over loopback TCP, move real bytes, and survive worker kills. The
// cluster-scale *performance* questions are answered by the simulation
// plane (internal/vinesim) which reuses this package's scheduling policies
// via internal/core.
package vine

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
)

// Control-channel message. Exactly one pointer field is set, discriminated
// by Type. The framing is a 4-byte little-endian length, a 4-byte
// little-endian CRC-32C of the payload, then JSON — simple, debuggable,
// stdlib-only, and a flipped bit anywhere in the payload surfaces as a
// typed ErrCorruptFrame instead of whatever json.Unmarshal makes of it.
type message struct {
	Type string `json:"type"`

	Hello        *helloMsg         `json:"hello,omitempty"`
	Dispatch     *dispatchMsg      `json:"dispatch,omitempty"`
	TaskDone     *taskDoneMsg      `json:"task_done,omitempty"`
	PutURL       *putURLMsg        `json:"put_url,omitempty"`
	TransferDone *transferDoneMsg  `json:"transfer_done,omitempty"`
	Library      *libraryMsg       `json:"library,omitempty"`
	Unlink       *unlinkMsg        `json:"unlink,omitempty"`
	Evicted      *evictedMsg       `json:"evicted,omitempty"`
	InventoryAck *inventoryAckMsg  `json:"inventory_ack,omitempty"`
	Takeover     *takeoverMsg      `json:"takeover,omitempty"`
	Draining     *drainingMsg      `json:"draining,omitempty"`
	Lease        *leaseBatchMsg    `json:"lease,omitempty"`
	Report       *foremanReportMsg `json:"report,omitempty"`
}

// Message type tags.
const (
	msgHello        = "hello"
	msgDispatch     = "dispatch"
	msgTaskDone     = "task_done"
	msgPutURL       = "put_url"
	msgTransferDone = "transfer_done"
	msgLibrary      = "library"
	msgUnlink       = "unlink"
	msgEvicted      = "evicted"
	msgInventoryAck = "inventory_ack"
	msgKill         = "kill"
	msgTakeover     = "takeover"

	// Graceful drain. A preempted worker announces `draining` with its
	// grace window; the manager stops assigning it work, requeues its
	// staged tasks, offloads its sole-replica cache entries, and answers
	// `drain_done` (type-only) once nothing of value remains — the
	// worker's cue to exit cleanly instead of being torn down mid-use.
	msgDraining  = "draining"
	msgDrainDone = "drain_done"

	// Liveness probes. Type-only messages: the manager pings links that
	// have been quiet for a heartbeat interval, the worker answers with a
	// pong, and either side declares the peer lost after a timeout of
	// total silence — catching stalls TCP alone never reports.
	msgPing = "ping"
	msgPong = "pong"

	// Federation. A foreman registers like a worker (hello with
	// Foreman=true), then the root speaks leases downward and the foreman
	// speaks aggregated reports upward — both batched, so the root's
	// control-plane frame rate scales with shard count, not task count.
	msgLease  = "lease"
	msgReport = "report"
)

// helloMsg is the worker's registration. Inventory lists the cachenames the
// worker already holds — CRC-scrubbed survivors of a persistent cache on a
// fresh start, or the intact in-memory cache on a reconnect — so the manager
// re-learns replicas instead of re-staging them.
type helloMsg struct {
	Name         string           `json:"name"`
	Cores        int              `json:"cores"`
	Memory       int64            `json:"memory"` // bytes advertised; 0 = unreported
	TransferAddr string           `json:"transfer_addr"`
	DiskLimit    int64            `json:"disk_limit"` // bytes; 0 = unlimited
	Preemptible  bool             `json:"preemptible,omitempty"`
	Foreman      bool             `json:"foreman,omitempty"` // subordinate manager, not a worker
	Inventory    []inventoryEntry `json:"inventory,omitempty"`
}

// inventoryEntry names one surviving cache entry in a hello handshake.
// Addr is set only by foremen: the shard-local transfer address serving
// the entry, without which the root could not ticket it to other shards.
type inventoryEntry struct {
	CacheName string `json:"cachename"`
	Size      int64  `json:"size"`
	Addr      string `json:"addr,omitempty"`
}

// inventoryAckMsg is the manager's answer to a hello inventory: which
// entries it recognizes (and re-registered as replicas). Entries the
// manager does not know stay orphaned on the worker and age out under the
// worker's TTL GC instead of leaking disk forever.
type inventoryAckMsg struct {
	Known []string `json:"known,omitempty"`
}

// fileRefWire names one task input within the task sandbox.
type fileRefWire struct {
	Name      string `json:"name"`
	CacheName string `json:"cachename"`
}

// dispatchMsg carries one task or function invocation to a worker.
type dispatchMsg struct {
	TaskID  int           `json:"task_id"`
	Mode    string        `json:"mode"` // "task" or "function-call"
	Library string        `json:"library"`
	Func    string        `json:"func"`
	Args    []byte        `json:"args,omitempty"`
	Inputs  []fileRefWire `json:"inputs,omitempty"`
	Outputs []fileRefWire `json:"outputs,omitempty"`
	Cores   int           `json:"cores"`
	Memory  int64         `json:"memory,omitempty"`
}

// taskDoneMsg reports execution results. Output sizes let the manager track
// cache consumption without another round trip.
type taskDoneMsg struct {
	TaskID      int              `json:"task_id"`
	OK          bool             `json:"ok"`
	Error       string           `json:"error,omitempty"`
	OutputSizes map[string]int64 `json:"output_sizes,omitempty"` // cachename → bytes
	ExecNanos   int64            `json:"exec_nanos"`
	SetupNanos  int64            `json:"setup_nanos"`
}

// putURLMsg instructs a worker to fetch a file into its cache from a peer's
// (or the manager's) transfer server.
type putURLMsg struct {
	CacheName string `json:"cachename"`
	Addr      string `json:"addr"`
	Size      int64  `json:"size"`
}

// transferDoneMsg acknowledges a putURL. Corrupt distinguishes a payload
// whose CRC-32C failed verification from an ordinary transport failure:
// the manager quarantines the serving replica before retrying, instead of
// fetching the same bad bytes again.
type transferDoneMsg struct {
	CacheName string `json:"cachename"`
	OK        bool   `json:"ok"`
	Error     string `json:"error,omitempty"`
	Size      int64  `json:"size"`
	Corrupt   bool   `json:"corrupt,omitempty"`
}

// libraryMsg instantiates a library (serverless host environment) on the
// worker. The library code itself is registered in the worker binary; the
// manager controls which libraries exist and whether their imports are
// hoisted (§IV.B "Import Hoisting").
type libraryMsg struct {
	Name  string `json:"name"`
	Hoist bool   `json:"hoist"`
}

// unlinkMsg removes a file from the worker cache.
type unlinkMsg struct {
	CacheName string `json:"cachename"`
}

// takeoverMsg announces that a standby manager has assumed a dead
// primary's role. Sent to each worker as it (re)registers with the new
// incarnation; Epoch is the fencing token from the leadership lease, so a
// worker can tell incarnations apart.
type takeoverMsg struct {
	Holder string `json:"holder"`
	Epoch  uint64 `json:"epoch"`
}

// drainingMsg is a worker's preemption notice: it has GraceNanos of wall
// clock left before it disappears. In-flight tasks keep running (they may
// finish inside the window); nothing new is assigned.
type drainingMsg struct {
	GraceNanos int64 `json:"grace_nanos"`
}

// evictedMsg tells the manager a worker dropped a cached file to stay
// under its disk limit, so the replica table and scheduler index stop
// counting the copy and future placements re-stage it instead of
// assuming locality.
type evictedMsg struct {
	CacheName string `json:"cachename"`
	Size      int64  `json:"size"`
}

// ticketWire is a peer-transfer ticket the root attaches to a lease: one
// address known to serve the named input, so the shard pulls bytes
// worker-to-worker (or from the root's staging area) and the payload
// never crosses the root's NIC. The CRC ride-along is implicit — every
// transfer stream already carries CRC-32C end to end, so a ticket that
// serves bad bytes surfaces as Corrupt in the lease report and the root
// quarantines that replica before re-issuing.
type ticketWire struct {
	CacheName string `json:"cachename"`
	Addr      string `json:"addr"`
	Size      int64  `json:"size"`
}

// leaseEntryWire is one task leased to a foreman: the dispatch payload
// plus the peer-transfer tickets for inputs the shard does not yet hold.
type leaseEntryWire struct {
	TaskID  int           `json:"task_id"`
	Mode    string        `json:"mode"`
	Library string        `json:"library"`
	Func    string        `json:"func"`
	Args    []byte        `json:"args,omitempty"`
	Inputs  []fileRefWire `json:"inputs,omitempty"`
	Outputs []fileRefWire `json:"outputs,omitempty"`
	Cores   int           `json:"cores"`
	Memory  int64         `json:"memory,omitempty"`
	Tickets []ticketWire  `json:"tickets,omitempty"`
}

// leaseBatchMsg coalesces many leases into one frame. Batching is the
// federation's dispatch-throughput lever: one envelope amortized over up
// to DefaultLeaseBatch tiny tasks.
type leaseBatchMsg struct {
	Leases []leaseEntryWire `json:"leases"`
}

// lostReplicaWire reports a replica the shard found missing or corrupt
// while staging a lease input, so the root can purge (and on corruption
// quarantine) the source it ticketed.
type lostReplicaWire struct {
	CacheName string `json:"cachename"`
	Addr      string `json:"addr"`
	Corrupt   bool   `json:"corrupt,omitempty"`
}

// leaseDoneWire is one finished lease inside a foreman report. OutputAddrs
// maps each produced cachename to the shard-local transfer address now
// serving it; InputAddrs does the same for ticketed inputs the shard
// pulled and now caches — both feed the root's cross-shard replica table
// so future tickets point into this shard.
type leaseDoneWire struct {
	TaskID      int               `json:"task_id"`
	OK          bool              `json:"ok"`
	Error       string            `json:"error,omitempty"`
	OutputSizes map[string]int64  `json:"output_sizes,omitempty"`
	OutputAddrs map[string]string `json:"output_addrs,omitempty"`
	InputAddrs  map[string]string `json:"input_addrs,omitempty"`
	InputSizes  map[string]int64  `json:"input_sizes,omitempty"`
	Lost        []lostReplicaWire `json:"lost,omitempty"`
	ExecNanos   int64             `json:"exec_nanos"`
	SetupNanos  int64             `json:"setup_nanos"`
}

// foremanReportMsg is the foreman's aggregated upward flow: every lease
// that finished since the last report, plus current backlog (tasks leased
// but not yet terminal) so the root's placement sees shard pressure.
type foremanReportMsg struct {
	Done    []leaseDoneWire `json:"done,omitempty"`
	Backlog int             `json:"backlog"`
}

const maxFrame = 64 << 20 // 64 MB control-message cap

// conn wraps a TCP connection with framed JSON I/O and a non-blocking send
// queue. Sends never block the caller: a dedicated writer goroutine drains
// the queue, so manager and worker can both be mid-send without
// deadlocking.
type conn struct {
	c       net.Conn
	r       *bufio.Reader
	mu      sync.Mutex
	queue   []*message
	cond    *sync.Cond
	closed  bool
	sendErr error
}

func newConn(c net.Conn) *conn {
	cc := &conn{c: c, r: bufio.NewReader(c)}
	cc.cond = sync.NewCond(&cc.mu)
	go cc.writeLoop()
	return cc
}

// send enqueues a message for the writer goroutine.
func (cc *conn) send(m *message) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return
	}
	cc.queue = append(cc.queue, m)
	cc.cond.Signal()
}

func (cc *conn) writeLoop() {
	for {
		cc.mu.Lock()
		for len(cc.queue) == 0 && !cc.closed {
			cc.cond.Wait()
		}
		if cc.closed && len(cc.queue) == 0 {
			cc.mu.Unlock()
			return
		}
		m := cc.queue[0]
		cc.queue = cc.queue[1:]
		cc.mu.Unlock()

		if err := writeFrame(cc.c, m); err != nil {
			cc.mu.Lock()
			cc.sendErr = err
			cc.closed = true
			cc.mu.Unlock()
			cc.c.Close()
			return
		}
	}
}

// recv blocks for the next message.
func (cc *conn) recv() (*message, error) {
	return readFrame(cc.r)
}

// close shuts the connection down; pending queued messages are dropped.
func (cc *conn) close() {
	cc.mu.Lock()
	cc.closed = true
	cc.queue = nil
	cc.cond.Signal()
	cc.mu.Unlock()
	cc.c.Close()
}

func writeFrame(w io.Writer, m *message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("vine: encoding %s: %w", m.Type, err)
	}
	if len(data) > maxFrame {
		return fmt.Errorf("vine: frame too large (%d bytes)", len(data))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(data, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func readFrame(r io.Reader) (*message, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return nil, fmt.Errorf("vine: oversized frame (%d bytes)", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint32(hdr[4:])
	if got := crc32.Checksum(data, castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc32c %08x, want %08x over %d bytes", ErrCorruptFrame, got, want, n)
	}
	var m message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("vine: decoding frame: %w", err)
	}
	return &m, nil
}
