package vine

import (
	"fmt"
	"testing"
	"time"
)

// benchCluster starts a manager + one multi-core worker for latency and
// throughput measurements of the live engine itself.
func benchCluster(b *testing.B, cores int) *Manager {
	b.Helper()
	MustRegisterLibrary(&Library{
		Name:  "benchlib",
		Setup: func() (any, error) { return nil, nil },
		Funcs: map[string]Function{
			"noop": func(c *Call) error {
				c.SetOutput("out", c.Args)
				return nil
			},
		},
	})
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("benchlib", true))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Stop)
	w, err := NewWorker(m.Addr(), WithCores(cores), WithCacheDir(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFunctionCallLatency measures one submit→execute→notify round
// trip of the live engine over loopback TCP.
func BenchmarkFunctionCallLatency(b *testing.B) {
	m := benchCluster(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := m.SubmitFunc(ModeFunctionCall, "benchlib", "noop", []byte(fmt.Sprint(i)), "out")
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Wait(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionCallThroughput measures pipelined submission: N calls in
// flight against a 8-slot worker.
func BenchmarkFunctionCallThroughput(b *testing.B) {
	m := benchCluster(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	handles := make([]*TaskHandle, b.N)
	for i := range handles {
		h, err := m.SubmitFunc(ModeFunctionCall, "benchlib", "noop", []byte(fmt.Sprint(i)), "out")
		if err != nil {
			b.Fatal(err)
		}
		handles[i] = h
	}
	for _, h := range handles {
		if err := h.Wait(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
