package vine

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// ---- unit: cachenames ----

func TestBlobNameDeterministic(t *testing.T) {
	a := blobName([]byte("hello"))
	b := blobName([]byte("hello"))
	c := blobName([]byte("world"))
	if a != b {
		t.Fatal("same content different names")
	}
	if a == c {
		t.Fatal("different content same name")
	}
	if !a.Valid() {
		t.Fatalf("invalid blob name %s", a)
	}
}

func TestTaskDefHashSensitivity(t *testing.T) {
	base := taskDefHash("task", "lib", "fn", []byte("args"), []FileRef{{Name: "a", CacheName: blobName([]byte("x"))}})
	same := taskDefHash("task", "lib", "fn", []byte("args"), []FileRef{{Name: "a", CacheName: blobName([]byte("x"))}})
	if base != same {
		t.Fatal("hash not deterministic")
	}
	variants := []string{
		taskDefHash("function-call", "lib", "fn", []byte("args"), []FileRef{{Name: "a", CacheName: blobName([]byte("x"))}}),
		taskDefHash("task", "lib2", "fn", []byte("args"), []FileRef{{Name: "a", CacheName: blobName([]byte("x"))}}),
		taskDefHash("task", "lib", "fn2", []byte("args"), []FileRef{{Name: "a", CacheName: blobName([]byte("x"))}}),
		taskDefHash("task", "lib", "fn", []byte("other"), []FileRef{{Name: "a", CacheName: blobName([]byte("x"))}}),
		taskDefHash("task", "lib", "fn", []byte("args"), []FileRef{{Name: "b", CacheName: blobName([]byte("x"))}}),
		taskDefHash("task", "lib", "fn", []byte("args"), []FileRef{{Name: "a", CacheName: blobName([]byte("y"))}}),
		taskDefHash("task", "lib", "fn", []byte("args"), nil),
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d collided with base", i)
		}
	}
}

func TestOutputNameValid(t *testing.T) {
	h := taskDefHash("task", "l", "f", nil, nil)
	on := outputName(h, "hist")
	if !on.Valid() {
		t.Fatalf("output name invalid: %s", on)
	}
	if CacheName("bogus").Valid() || CacheName("blob:short").Valid() || CacheName("out:xx:y").Valid() {
		t.Fatal("invalid names accepted")
	}
}

func TestCachePathSafe(t *testing.T) {
	p := cachePathSafe(blobName([]byte("x")))
	if strings.ContainsAny(p, ":/") {
		t.Fatalf("unsafe path %q", p)
	}
}

// ---- unit: protocol framing ----

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &message{Type: msgDispatch, Dispatch: &dispatchMsg{
		TaskID: 7, Mode: "task", Library: "l", Func: "f", Args: []byte("abc"),
		Inputs: []fileRefWire{{Name: "x", CacheName: "blob:123"}},
	}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgDispatch || out.Dispatch.TaskID != 7 || string(out.Dispatch.Args) != "abc" {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// ---- unit: libraries ----

func TestLibraryValidation(t *testing.T) {
	if err := RegisterLibrary(&Library{Name: "", Funcs: map[string]Function{"f": func(*Call) error { return nil }}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterLibrary(&Library{Name: "x"}); err == nil {
		t.Fatal("no functions accepted")
	}
	if err := RegisterLibrary(&Library{Name: "x", Funcs: map[string]Function{"": nil}}); err == nil {
		t.Fatal("nil function accepted")
	}
}

func TestLibraryInstanceHoisting(t *testing.T) {
	var setups int32
	lib := &Library{
		Name:  "hoist-test",
		Setup: func() (any, error) { atomic.AddInt32(&setups, 1); return "state", nil },
		Funcs: map[string]Function{"f": func(*Call) error { return nil }},
	}
	hoisted := newLibraryInstance(lib, true)
	for i := 0; i < 5; i++ {
		st, _, err := hoisted.stateFor()
		if err != nil || st != "state" {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt32(&setups); n != 1 {
		t.Fatalf("hoisted setup ran %d times", n)
	}
	atomic.StoreInt32(&setups, 0)
	raw := newLibraryInstance(lib, false)
	for i := 0; i < 5; i++ {
		raw.stateFor()
	}
	if n := atomic.LoadInt32(&setups); n != 5 {
		t.Fatalf("non-hoisted setup ran %d times", n)
	}
	if raw.SetupCount() != 5 {
		t.Fatalf("SetupCount = %d", raw.SetupCount())
	}
}

// ---- integration helpers ----

// testLib is a library of small functions used across integration tests.
func registerTestLib(t *testing.T) {
	t.Helper()
	MustRegisterLibrary(&Library{
		Name:  "testlib",
		Setup: func() (any, error) { return map[string]string{"env": "ok"}, nil },
		Funcs: map[string]Function{
			"echo": func(c *Call) error {
				c.SetOutput("out", append([]byte("echo:"), c.Args...))
				return nil
			},
			"upper": func(c *Call) error {
				in, err := c.Input("in")
				if err != nil {
					return err
				}
				c.SetOutput("out", bytes.ToUpper(in))
				return nil
			},
			"concat": func(c *Call) error {
				var buf bytes.Buffer
				for _, name := range c.InputNames() {
					b, err := c.Input(name)
					if err != nil {
						return err
					}
					buf.Write(b)
				}
				c.SetOutput("out", buf.Bytes())
				return nil
			},
			"fail": func(c *Call) error {
				return fmt.Errorf("deliberate failure")
			},
			"bigout": func(c *Call) error {
				c.SetOutput("out", make([]byte, 1<<20))
				return nil
			},
			"sleep50": func(c *Call) error {
				time.Sleep(50 * time.Millisecond)
				c.SetOutput("out", []byte("slept"))
				return nil
			},
			"needstate": func(c *Call) error {
				st, ok := c.State().(map[string]string)
				if !ok || st["env"] != "ok" {
					return fmt.Errorf("state missing")
				}
				c.SetOutput("out", []byte("stateful"))
				return nil
			},
		},
	})
}

// newCluster builds a loopback manager plus workers. Defaults: peer
// transfers on, testlib installed hoisted. Extra options are applied to
// both the manager and the workers (and thus can override defaults or
// attach a shared recorder).
func newCluster(t *testing.T, workers int, coresEach int, opts ...Option) (*Manager, []*Worker) {
	t.Helper()
	registerTestLib(t)
	mgrOpts := append([]Option{
		WithPeerTransfers(true),
		WithLibrary("testlib", true),
	}, opts...)
	m, err := NewManager(mgrOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	ws := make([]*Worker, workers)
	for i := range ws {
		wOpts := append([]Option{
			WithName(fmt.Sprintf("w%d", i)),
			WithCores(coresEach),
			WithCacheDir(t.TempDir()),
		}, opts...)
		w, err := NewWorker(m.Addr(), wOpts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		ws[i] = w
	}
	if err := m.WaitForWorkers(workers, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m, ws
}

func fetchOutput(t *testing.T, m *Manager, h *TaskHandle, name string) []byte {
	t.Helper()
	cn, ok := h.Output(name)
	if !ok {
		t.Fatalf("no output %q", name)
	}
	data, err := m.FetchBytes(cn)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// ---- integration tests ----

func TestSimpleTask(t *testing.T) {
	m, _ := newCluster(t, 1, 2)
	h, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("hi"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := fetchOutput(t, m, h, "out"); string(got) != "echo:hi" {
		t.Fatalf("got %q", got)
	}
	if h.State() != TaskDone {
		t.Fatalf("state = %v", h.State())
	}
	if m.Stats().TasksDone != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestFunctionCallMode(t *testing.T) {
	m, ws := newCluster(t, 1, 4)
	var handles []*TaskHandle
	for i := 0; i < 10; i++ {
		h, err := m.SubmitFunc(ModeFunctionCall, "testlib", "needstate", nil, "out")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		// Distinct args so outputs differ per task.
		_ = i
	}
	for _, h := range handles {
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Hoisted: library setup ran exactly once on the worker.
	if n := ws[0].LibrarySetupCount("testlib"); n != 1 {
		t.Fatalf("hoisted setups = %d", n)
	}
	if ws[0].Stats().FunctionCalls == 0 {
		t.Fatal("no function calls recorded")
	}
}

func TestIdenticalTasksShareOutputs(t *testing.T) {
	// Two submissions with identical definitions produce the same output
	// cachename — content addressing at the task level.
	m, _ := newCluster(t, 1, 2)
	h1, _ := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("same"), "out")
	h2, _ := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("same"), "out")
	c1, _ := h1.Output("out")
	c2, _ := h2.Output("out")
	if c1 != c2 {
		t.Fatalf("identical tasks got different outputs: %s vs %s", c1, c2)
	}
	if err := h1.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTaskChainThroughCache(t *testing.T) {
	m, _ := newCluster(t, 2, 2)
	src := m.DeclareBuffer([]byte("hello vine"))
	h1, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "upper",
		Inputs:  []FileRef{{Name: "in", CacheName: src}},
		Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out1, _ := h1.Output("out")
	h2, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "upper",
		Inputs:  []FileRef{{Name: "in", CacheName: out1}},
		Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := fetchOutput(t, m, h2, "out"); string(got) != "HELLO VINE" {
		t.Fatalf("got %q", got)
	}
}

func TestDeclareFileStaging(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	dir := t.TempDir()
	path := dir + "/input.txt"
	if err := writeFileHelper(path, []byte("file content")); err != nil {
		t.Fatal(err)
	}
	cn, err := m.DeclareFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "upper",
		Inputs:  []FileRef{{Name: "in", CacheName: cn}},
		Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := fetchOutput(t, m, h, "out"); string(got) != "FILE CONTENT" {
		t.Fatalf("got %q", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	if _, err := m.Submit(Task{Library: "", Func: "f"}); err == nil {
		t.Fatal("empty library accepted")
	}
	if _, err := m.Submit(Task{Library: "nolib", Func: "f"}); err == nil {
		t.Fatal("unregistered library accepted")
	}
	if _, err := m.Submit(Task{Mode: "bogus", Library: "testlib", Func: "echo"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if _, err := m.Submit(Task{
		Library: "testlib", Func: "echo",
		Inputs: []FileRef{{Name: "x", CacheName: CacheName("blob:" + strings.Repeat("0", 64))}},
	}); err == nil {
		t.Fatal("undeclared input accepted")
	}
	if _, err := m.Submit(Task{
		Library: "testlib", Func: "echo",
		Inputs: []FileRef{{Name: "x", CacheName: "garbage"}},
	}); err == nil {
		t.Fatal("invalid cachename accepted")
	}
}

func TestFailingTaskReportsError(t *testing.T) {
	m, _ := newCluster(t, 1, 1, WithMaxRetries(2))
	h, err := m.SubmitFunc(ModeTask, "testlib", "fail", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	err = h.Wait(10 * time.Second)
	if err == nil {
		t.Fatal("failing task reported success")
	}
	if !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("unexpected error: %v", err)
	}
	if h.State() != TaskFailed {
		t.Fatalf("state = %v", h.State())
	}
}

func TestPeerTransfer(t *testing.T) {
	m, ws := newCluster(t, 2, 1)
	// Producer lands on one worker.
	p, err := m.SubmitFunc(ModeTask, "testlib", "bigout", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := p.Output("out")
	// Two consumers, one core each worker → one consumer must run on the
	// other worker and stage the input from its peer.
	mk := func(tag string) *TaskHandle {
		h, err := m.Submit(Task{
			Mode: ModeTask, Library: "testlib", Func: "concat", Args: []byte(tag),
			Inputs:  []FileRef{{Name: "in", CacheName: out}},
			Outputs: []string{"out"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	c1, c2 := mk("a"), mk("b")
	if err := c1.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c2.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.PeerTransfers == 0 {
		t.Fatalf("no peer transfers: %+v", st)
	}
	// The 1MB intermediate moved worker-to-worker, not through the manager.
	if st.PeerBytes < 1<<20 {
		t.Fatalf("peer bytes = %d", st.PeerBytes)
	}
	served := int64(0)
	for _, w := range ws {
		_, b := w.ts.Served()
		served += b
	}
	if served < 1<<20 {
		t.Fatalf("workers served only %d bytes", served)
	}
}

// TestSharedInputStagedOnce pins the one-transfer-per-(file,destination)
// invariant: several tasks needing the same input on the same worker ride
// one staging transfer. Duplicate concurrent put_urls used to race two
// fetches onto one cache path — the second fetch's truncate could be
// published by the first's rename, and a task dispatched in that window
// read zero bytes.
func TestSharedInputStagedOnce(t *testing.T) {
	m, _ := newCluster(t, 1, 4)
	payload := []byte("shared-staging-payload")
	cn := m.DeclareBuffer(payload)
	var hs []*TaskHandle
	for i := 0; i < 4; i++ {
		h, err := m.Submit(Task{
			Mode: ModeTask, Library: "testlib", Func: "concat", Args: []byte{byte('a' + i)},
			Inputs:  []FileRef{{Name: "in", CacheName: cn}},
			Outputs: []string{"out"},
			Cores:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	for i, h := range hs {
		if err := h.Wait(10 * time.Second); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if got := fetchOutput(t, m, h, "out"); !bytes.Equal(got, payload) {
			t.Fatalf("task %d read %q, want %q", i, got, payload)
		}
	}
	if st := m.Stats(); st.ManagerTransfers != 1 {
		t.Fatalf("shared input staged %d times, want exactly 1: %+v", st.ManagerTransfers, st)
	}
}

func TestWorkQueueModeRoutesThroughManager(t *testing.T) {
	m, _ := newCluster(t, 2, 1, WithPeerTransfers(false), WithReturnOutputs(true))
	p, err := m.SubmitFunc(ModeTask, "testlib", "bigout", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := p.Output("out")
	// Wait for the manager to pull the output back (WQ data flow).
	deadline := time.Now().Add(5 * time.Second)
	for m.ReplicaCount(out) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	h, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "concat",
		Inputs:  []FileRef{{Name: "in", CacheName: out}},
		Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ManagerBytes == 0 {
		t.Fatalf("manager moved no bytes: %+v", st)
	}
}

func TestWorkerFailureRecovery(t *testing.T) {
	m, ws := newCluster(t, 2, 1)
	p, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("precious"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := p.Output("out")
	// Find and kill the worker holding the only replica.
	var victim *Worker
	for _, w := range ws {
		for _, cn := range w.CacheNames() {
			if cn == out {
				victim = w
			}
		}
	}
	if victim == nil {
		t.Fatal("no worker holds the output")
	}
	victim.Stop()
	// A consumer of the lost output forces the manager to re-run the
	// producer on the surviving worker.
	h, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "upper",
		Inputs:  []FileRef{{Name: "in", CacheName: out}},
		Outputs: []string{"out"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(15 * time.Second); err != nil {
		t.Fatalf("recovery failed: %v (stats %+v)", err, m.Stats())
	}
	if got := fetchOutput(t, m, h, "out"); string(got) != "ECHO:PRECIOUS" {
		t.Fatalf("got %q", got)
	}
	if m.Stats().WorkersLost != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestRunningTaskRequeuedOnWorkerDeath(t *testing.T) {
	m, ws := newCluster(t, 2, 1)
	// Fill both workers with sleeps, then kill one mid-flight.
	h1, _ := m.SubmitFunc(ModeTask, "testlib", "sleep50", []byte("1"), "out")
	h2, _ := m.SubmitFunc(ModeTask, "testlib", "sleep50", []byte("2"), "out")
	time.Sleep(10 * time.Millisecond) // let them dispatch
	ws[0].Stop()
	if err := h1.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDiskLimitFailsTask(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(WithPeerTransfers(true), WithMaxRetries(1),
		WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	w, err := NewWorker(m.Addr(), WithCores(1), WithCacheDir(t.TempDir()), WithDiskLimit(1024))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	h, err := m.SubmitFunc(ModeTask, "testlib", "bigout", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(10 * time.Second); err == nil {
		t.Fatal("1MB output fit in a 1KB cache")
	} else if !strings.Contains(err.Error(), "cache full") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUnlink(t *testing.T) {
	m, ws := newCluster(t, 1, 1)
	h, _ := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("x"), "out")
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := h.Output("out")
	if m.ReplicaCount(out) != 1 {
		t.Fatalf("replicas = %d", m.ReplicaCount(out))
	}
	m.Unlink(out)
	if m.ReplicaCount(out) != 0 {
		t.Fatal("unlink left replicas")
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(ws[0].CacheNames()) > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(ws[0].CacheNames()); n != 0 {
		t.Fatalf("worker still caches %d files", n)
	}
}

func TestWaitAnyDrainsAll(t *testing.T) {
	m, _ := newCluster(t, 2, 2)
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := m.SubmitFunc(ModeFunctionCall, "testlib", "echo", []byte(fmt.Sprint(i)), "out"); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		h, err := m.WaitAny(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if seen[h.ID] {
			t.Fatalf("task %d returned twice", h.ID)
		}
		seen[h.ID] = true
	}
	if _, err := m.WaitAny(50 * time.Millisecond); err == nil {
		t.Fatal("WaitAny returned a 13th task")
	}
}

func TestManyConcurrentFunctionCalls(t *testing.T) {
	m, _ := newCluster(t, 4, 4)
	const n = 100
	handles := make([]*TaskHandle, n)
	for i := range handles {
		h, err := m.SubmitFunc(ModeFunctionCall, "testlib", "echo", []byte(fmt.Sprint(i)), "out")
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		if err := h.Wait(20 * time.Second); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if got := m.Stats().TasksDone; got != n {
		t.Fatalf("done = %d", got)
	}
}

func TestTransferServerDirect(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	cn := m.DeclareBuffer([]byte("direct fetch"))
	got, err := fetchBytes(m.ts.Addr(), cn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "direct fetch" {
		t.Fatalf("got %q", got)
	}
	if _, err := fetchBytes(m.ts.Addr(), CacheName("blob:"+strings.Repeat("1", 64))); err == nil {
		t.Fatal("missing file fetch succeeded")
	}
}

func TestTransferRejectsGarbageRequest(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	c, err := net.Dial("tcp", m.ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "DELETE everything\n")
	buf := make([]byte, 64)
	n, _ := c.Read(buf)
	if !strings.HasPrefix(string(buf[:n]), "ERR") {
		t.Fatalf("got %q", buf[:n])
	}
}

func writeFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestReplicationSurvivesWorkerLoss(t *testing.T) {
	m, ws := newCluster(t, 2, 1, WithReplication(2))
	p, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("replicate me"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := p.Output("out")
	// Replication is asynchronous; wait for the second copy.
	deadline := time.Now().Add(5 * time.Second)
	for m.ReplicaCount(out) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.ReplicaCount(out) < 2 {
		t.Fatalf("replicas = %d, want 2", m.ReplicaCount(out))
	}
	// Kill one holder; the data must remain fetchable without a re-run.
	var victim *Worker
	for _, w := range ws {
		for _, cn := range w.CacheNames() {
			if cn == out && victim == nil {
				victim = w
			}
		}
	}
	victim.Stop()
	deadline = time.Now().Add(5 * time.Second)
	for m.WorkerCount() > 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	data, err := m.FetchBytes(out)
	if err != nil {
		t.Fatalf("replica lost with the worker: %v", err)
	}
	if string(data) != "echo:replicate me" {
		t.Fatalf("got %q", data)
	}
	if got := m.Stats().Retries; got != 0 {
		t.Fatalf("re-runs happened despite replica: %d", got)
	}
}

func TestReplicationCapsAtWorkerCount(t *testing.T) {
	m, _ := newCluster(t, 2, 1, WithReplication(5))
	p, _ := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("x"), "out")
	if err := p.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := p.Output("out")
	deadline := time.Now().Add(3 * time.Second)
	for m.ReplicaCount(out) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := m.ReplicaCount(out); got != 2 {
		t.Fatalf("replicas = %d, want exactly the 2 workers", got)
	}
}

func TestMemoryPacking(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	// One worker with 4 cores but only 1GB of memory.
	w, err := NewWorker(m.Addr(), WithCores(4), WithMemory(1<<30), WithCacheDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Two 600MB tasks cannot run concurrently on 1GB; both must still
	// complete (serialized by the memory budget).
	mk := func(tag string) *TaskHandle {
		h, err := m.Submit(Task{
			Mode: ModeTask, Library: "testlib", Func: "sleep50", Args: []byte(tag),
			Outputs: []string{"out"}, Memory: 600 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	start := time.Now()
	h1, h2 := mk("m1"), mk("m2")
	if err := h1.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Each sleeps 50ms; serialized execution takes >= ~100ms.
	if elapsed := time.Since(start); elapsed < 95*time.Millisecond {
		t.Fatalf("memory budget not enforced: both ran concurrently (%v)", elapsed)
	}
	// A task requesting more memory than any worker has never runs.
	big, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "echo", Args: []byte("big"),
		Outputs: []string{"out"}, Memory: 8 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Wait(300 * time.Millisecond); err == nil {
		t.Fatal("oversized task ran on a small worker")
	}
	if big.State() == TaskDone {
		t.Fatal("oversized task completed")
	}
}

func TestManagerIntrospection(t *testing.T) {
	m, ws := newCluster(t, 2, 3)
	h, _ := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("i"), "out")
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	infos := m.Workers()
	if len(infos) != 2 {
		t.Fatalf("workers = %d", len(infos))
	}
	cached := 0
	for _, wi := range infos {
		if !wi.Alive || wi.Cores != 3 {
			t.Fatalf("worker info wrong: %+v", wi)
		}
		cached += wi.CachedFiles
	}
	if cached == 0 {
		t.Fatal("no cached files visible")
	}
	counts := m.TaskCounts()
	if counts[TaskDone] != 1 {
		t.Fatalf("task counts = %v", counts)
	}
	ws[0].Stop()
	deadline := time.Now().Add(3 * time.Second)
	for m.WorkerCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	alive := 0
	for _, wi := range m.Workers() {
		if wi.Alive {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("alive workers = %d", alive)
	}
}

func TestManagerStoppedRejectsWork(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(WithPeerTransfers(true))
	if err != nil {
		t.Fatal(err)
	}
	m.Stop()
	m.Stop() // idempotent
	if _, err := m.SubmitFunc(ModeTask, "testlib", "echo", nil, "out"); err == nil {
		t.Fatal("submit accepted after stop")
	}
	if _, err := m.WaitAny(0); err == nil {
		t.Fatal("WaitAny returned after stop")
	}
}

func TestWaitAnyTimesOut(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	if _, err := m.WaitAny(30 * time.Millisecond); err == nil {
		t.Fatal("WaitAny with no tasks returned")
	}
}

func TestHandleWaitTimeout(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(WithPeerTransfers(true), WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	// No workers: the task can never run.
	h, err := m.SubmitFunc(ModeTask, "testlib", "echo", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(50 * time.Millisecond); err == nil {
		t.Fatal("wait with no workers returned")
	}
	if h.State() != TaskReady {
		t.Fatalf("state = %v", h.State())
	}
}

func TestFetchBytesErrors(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	if _, err := m.FetchBytes(CacheName("blob:" + strings.Repeat("a", 64))); err == nil {
		t.Fatal("unknown file fetched")
	}
	if m.ReplicaCount(CacheName("blob:"+strings.Repeat("b", 64))) != 0 {
		t.Fatal("unknown file has replicas")
	}
}

func TestDuplicateInputNamesRejected(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	cn := m.DeclareBuffer([]byte("x"))
	_, err := m.Submit(Task{
		Mode: ModeTask, Library: "testlib", Func: "concat",
		Inputs:  []FileRef{{Name: "in", CacheName: cn}, {Name: "in", CacheName: cn}},
		Outputs: []string{"out"},
	})
	if err == nil {
		t.Fatal("duplicate input names accepted")
	}
}

func TestDeclareBufferIdempotent(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	a := m.DeclareBuffer([]byte("same content"))
	b := m.DeclareBuffer([]byte("same content"))
	if a != b {
		t.Fatal("identical buffers got different cachenames")
	}
	got, err := m.FetchBytes(a)
	if err != nil || string(got) != "same content" {
		t.Fatalf("fetch: %q %v", got, err)
	}
}

func TestDeclareFileMissing(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	if _, err := m.DeclareFile("/nonexistent/path.bin"); err == nil {
		t.Fatal("missing file declared")
	}
}
