package vine

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Serverless execution (§IV.B): a Library bundles functions plus a Setup
// routine standing in for Python imports — the expensive environment
// construction (loading tables, warming caches, JIT-ing kernels) that the
// paper eliminates per-invocation. Execution modes differ only in when
// Setup runs:
//
//	ModeTask          Setup per task (wrapper script + imports every time)
//	ModeFunctionCall  persistent library; Setup once if hoisted, else per call
//
// Library code is registered in both manager and worker binaries (Go cannot
// ship code at runtime the way Python pickles closures); the manager
// controls instantiation and hoisting per worker.

// TaskMode selects the execution paradigm.
type TaskMode string

// Execution modes.
const (
	// ModeTask is the conventional paradigm: environment built per task.
	ModeTask TaskMode = "task"
	// ModeFunctionCall invokes a function inside a persistent LibraryTask.
	ModeFunctionCall TaskMode = "function-call"
)

// Call is the context passed to an executing function.
type Call struct {
	// Args is the opaque argument blob from the submitter.
	Args []byte

	state   any
	inputs  map[string]string // logical name → local cache path
	outputs map[string][]byte
	reader  func(path string) ([]byte, error)
}

// State returns the library state built by Setup ("hoisted imports"). In
// ModeTask and non-hoisted function calls it is freshly built for this
// execution.
func (c *Call) State() any { return c.state }

// Input reads a task input by its logical name.
func (c *Call) Input(name string) ([]byte, error) {
	p, ok := c.inputs[name]
	if !ok {
		return nil, fmt.Errorf("vine: task has no input %q", name)
	}
	return c.reader(p)
}

// InputPath reports the local path of an input for streaming access.
func (c *Call) InputPath(name string) (string, error) {
	p, ok := c.inputs[name]
	if !ok {
		return "", fmt.Errorf("vine: task has no input %q", name)
	}
	return p, nil
}

// InputNames lists the logical input names, sorted.
func (c *Call) InputNames() []string {
	out := make([]string, 0, len(c.inputs))
	for n := range c.inputs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetOutput stages a named output; the worker writes it into its cache when
// the function returns successfully.
func (c *Call) SetOutput(name string, data []byte) {
	c.outputs[name] = data
}

// Function is one callable within a library.
type Function func(c *Call) error

// Library bundles functions behind a named environment.
type Library struct {
	Name string
	// Setup builds the shared environment. May be nil. The returned state
	// is passed to every Function via Call.State.
	Setup func() (any, error)
	// SetupDelay adds a deterministic cost to Setup, letting tests and
	// examples model heavyweight imports without burning CPU.
	SetupDelay time.Duration
	Funcs      map[string]Function
}

// validate checks the library definition.
func (l *Library) validate() error {
	if l.Name == "" {
		return fmt.Errorf("vine: library with empty name")
	}
	if len(l.Funcs) == 0 {
		return fmt.Errorf("vine: library %q has no functions", l.Name)
	}
	for name, f := range l.Funcs {
		if name == "" || f == nil {
			return fmt.Errorf("vine: library %q has invalid function %q", l.Name, name)
		}
	}
	return nil
}

// buildState runs Setup (with its modelled delay).
func (l *Library) buildState() (any, error) {
	if l.SetupDelay > 0 {
		time.Sleep(l.SetupDelay)
	}
	if l.Setup == nil {
		return nil, nil
	}
	return l.Setup()
}

// Process-wide library registry shared by manager and worker (same binary).
var (
	libMu    sync.RWMutex
	libReg   = make(map[string]*Library)
	libOrder []string
)

// RegisterLibrary installs a library definition process-wide. Registering a
// name twice replaces the previous definition (tests rely on this).
func RegisterLibrary(l *Library) error {
	if err := l.validate(); err != nil {
		return err
	}
	libMu.Lock()
	defer libMu.Unlock()
	if _, exists := libReg[l.Name]; !exists {
		libOrder = append(libOrder, l.Name)
	}
	libReg[l.Name] = l
	return nil
}

// MustRegisterLibrary panics on registration error.
func MustRegisterLibrary(l *Library) {
	if err := RegisterLibrary(l); err != nil {
		panic(err)
	}
}

// lookupLibrary finds a registered library.
func lookupLibrary(name string) (*Library, error) {
	libMu.RLock()
	defer libMu.RUnlock()
	l, ok := libReg[name]
	if !ok {
		return nil, fmt.Errorf("vine: no library registered as %q", name)
	}
	return l, nil
}

// RegisteredLibraries lists library names in registration order.
func RegisteredLibraries() []string {
	libMu.RLock()
	defer libMu.RUnlock()
	out := make([]string, len(libOrder))
	copy(out, libOrder)
	return out
}

// libraryInstance is a live, possibly-hoisted environment on a worker.
type libraryInstance struct {
	lib   *Library
	hoist bool

	mu       sync.Mutex
	state    any
	stateErr error
	built    bool

	// instrumentation
	setups int
}

func newLibraryInstance(lib *Library, hoist bool) *libraryInstance {
	return &libraryInstance{lib: lib, hoist: hoist}
}

// stateFor returns the environment for one invocation, building it
// according to the hoisting policy, and reports the setup time spent for
// this call.
func (li *libraryInstance) stateFor() (any, time.Duration, error) {
	start := time.Now()
	if !li.hoist {
		li.mu.Lock()
		li.setups++
		li.mu.Unlock()
		st, err := li.lib.buildState()
		return st, time.Since(start), err
	}
	li.mu.Lock()
	defer li.mu.Unlock()
	if !li.built {
		li.state, li.stateErr = li.lib.buildState()
		li.built = true
		li.setups++
	}
	return li.state, time.Since(start), li.stateErr
}

// SetupCount reports how many times Setup ran (instrumentation for the
// hoisting tests).
func (li *libraryInstance) SetupCount() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.setups
}
