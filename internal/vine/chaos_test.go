package vine

import (
	"strings"
	"testing"
	"time"

	"hepvine/internal/chaos"
	"hepvine/internal/obs"
)

// Failure-domain regression tests: heartbeat liveness, deadline
// fast-abort, and the typed retry/backoff history, each driven by the
// deterministic chaos layer rather than by killing processes.

// TestHeartbeatDetectsStalledWorker black-holes a worker's connections
// (TCP session stays ESTABLISHED — no error ever surfaces) and asserts
// the manager's heartbeat monitor still declares the worker lost.
func TestHeartbeatDetectsStalledWorker(t *testing.T) {
	registerTestLib(t)
	rec := obs.NewRecorder()
	m, err := NewManager(
		WithLibrary("testlib", true),
		WithHeartbeat(50*time.Millisecond, 250*time.Millisecond),
		WithRecorder(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)

	// The injector wraps only the worker's side, so every byte in either
	// direction stalls but neither endpoint sees a transport error.
	plan := chaos.NewPlan(1).Add(chaos.Fault{
		Kind: chaos.KindStall, Target: "w0",
		At: 50 * time.Millisecond, Dur: 5 * time.Second,
	})
	t.Cleanup(plan.Stop)
	w, err := NewWorker(m.Addr(),
		WithName("w0"), WithCores(1), WithCacheDir(t.TempDir()),
		WithFaultInjector(plan),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	plan.Start()

	deadline := time.Now().Add(3 * time.Second)
	for m.WorkerCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled worker never declared lost (heartbeat misses: %d)",
				m.Stats().HeartbeatMisses)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := m.Stats()
	if st.HeartbeatMisses < 1 {
		t.Fatalf("HeartbeatMisses = %d, want >= 1", st.HeartbeatMisses)
	}
	if st.WorkersLost < 1 {
		t.Fatalf("WorkersLost = %d, want >= 1", st.WorkersLost)
	}
	var sawMiss, sawLost bool
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.EvHeartbeatMiss:
			sawMiss = true
			if ev.Worker != "w0" || !strings.Contains(ev.Detail, "silent") {
				t.Fatalf("malformed heartbeat-miss event: %+v", ev)
			}
		case obs.EvWorkerLost:
			sawLost = true
		}
	}
	if !sawMiss || !sawLost {
		t.Fatalf("trace missing events: heartbeat_miss=%v worker_lost=%v", sawMiss, sawLost)
	}
}

// TestTaskDeadlineFastAbort runs a 50ms task under a 25ms per-attempt
// deadline on a two-worker cluster: the first attempt is fast-aborted
// and speculatively re-dispatched, and whichever copy finishes first
// wins — the task must still succeed.
func TestTaskDeadlineFastAbort(t *testing.T) {
	rec := obs.NewRecorder()
	m, _ := newCluster(t, 2, 1,
		WithHeartbeat(50*time.Millisecond, 5*time.Second),
		WithRecorder(rec),
	)
	h, err := m.Submit(Task{
		Library: "testlib", Func: "sleep50", Outputs: []string{"out"},
		Deadline: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatalf("task under deadline pressure failed: %v", err)
	}
	if got := fetchOutput(t, m, h, "out"); string(got) != "slept" {
		t.Fatalf("output = %q", got)
	}
	if st := m.Stats(); st.TasksAborted < 1 {
		t.Fatalf("TasksAborted = %d, want >= 1", st.TasksAborted)
	}
	aborts := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvTaskAbort {
			aborts++
			if !strings.Contains(ev.Detail, "deadline") || ev.Worker == "" {
				t.Fatalf("malformed abort event: %+v", ev)
			}
		}
	}
	if aborts < 1 {
		t.Fatal("no EvTaskAbort in trace")
	}
	var recorded bool
	for _, f := range h.FailureRecords() {
		if strings.Contains(f.Cause, "deadline") && f.Worker != "" {
			recorded = true
		}
	}
	if !recorded {
		t.Fatalf("no deadline abort in failure history: %v", h.FailureHistory())
	}
}

// TestRetryBackoffSurfaced asserts the typed failure history carries the
// worker and the jittered backoff delay for every non-terminal attempt,
// and that the rendered strings keep the stable "attempt N:" prefix.
func TestRetryBackoffSurfaced(t *testing.T) {
	m, _ := newCluster(t, 1, 2,
		WithMaxRetries(2),
		WithRetryBackoff(4*time.Millisecond, 16*time.Millisecond),
	)
	h, err := m.SubmitFunc(ModeTask, "testlib", "fail", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err == nil {
		t.Fatal("always-failing task succeeded")
	}
	recs := h.FailureRecords()
	if len(recs) != 3 { // attempts 1, 2 (retried) and 3 (terminal)
		t.Fatalf("failure records = %d, want 3: %v", len(recs), recs)
	}
	for i, f := range recs {
		if f.Attempt != i+1 {
			t.Fatalf("record %d has attempt %d", i, f.Attempt)
		}
		if f.Worker != "w0" {
			t.Fatalf("record %d missing worker: %+v", i, f)
		}
		if !strings.Contains(f.Cause, "deliberate failure") {
			t.Fatalf("record %d cause = %q", i, f.Cause)
		}
		terminal := i == len(recs)-1
		if !terminal && f.Backoff <= 0 {
			t.Fatalf("retried attempt %d has no backoff: %+v", i+1, f)
		}
		if terminal && f.Backoff != 0 {
			t.Fatalf("terminal attempt carries backoff: %+v", f)
		}
	}
	// Doubling schedule with jitter in [d/2, d): attempt 2's delay window
	// sits strictly above attempt 1's minimum.
	if recs[1].Backoff < recs[0].Backoff/2 {
		t.Fatalf("backoff not growing: %v then %v", recs[0].Backoff, recs[1].Backoff)
	}
	for i, s := range h.FailureHistory() {
		if !strings.HasPrefix(s, "attempt ") {
			t.Fatalf("history line %d lost stable prefix: %q", i, s)
		}
		wantBackoff := i != len(recs)-1
		if strings.Contains(s, "backoff") != wantBackoff {
			t.Fatalf("history line %d backoff rendering wrong: %q", i, s)
		}
	}
}
