package vine_test

import (
	"fmt"
	"time"

	"hepvine/internal/vine"
)

// A complete round trip on the live engine: register a serverless library,
// start a manager and a worker over loopback TCP, invoke a function, and
// fetch its output from the worker's cache.
func Example() {
	vine.MustRegisterLibrary(&vine.Library{
		Name: "demo",
		Funcs: map[string]vine.Function{
			"greet": func(c *vine.Call) error {
				c.SetOutput("out", append([]byte("hello, "), c.Args...))
				return nil
			},
		},
	})
	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("demo", true),
	)
	if err != nil {
		panic(err)
	}
	defer mgr.Stop()
	worker, err := vine.NewWorker(mgr.Addr(), vine.WithCores(2))
	if err != nil {
		panic(err)
	}
	defer worker.Stop()
	if err := mgr.WaitForWorkers(1, 5*time.Second); err != nil {
		panic(err)
	}

	h, err := mgr.SubmitFunc(vine.ModeFunctionCall, "demo", "greet", []byte("taskvine"), "out")
	if err != nil {
		panic(err)
	}
	if err := h.Wait(10 * time.Second); err != nil {
		panic(err)
	}
	cn, _ := h.Output("out")
	data, err := mgr.FetchBytes(cn)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
	// Output: hello, taskvine
}
