package vine

import (
	"net"
	"time"

	"hepvine/internal/journal"
	"hepvine/internal/obs"
	"hepvine/internal/sched"
)

// Option configures a Manager or a Worker. One option vocabulary serves
// both constructors — options that don't apply to the component being
// built are simply ignored, so shared setup code can pass one option
// slice to both sides of a cluster.
type Option func(*config)

// NetFaultInjector wraps live connections and listeners for fault
// injection. internal/chaos.Plan implements it; production clusters
// leave it nil and pay nothing.
type NetFaultInjector interface {
	WrapConn(c net.Conn, label string) net.Conn
	WrapListener(ln net.Listener, label string) net.Listener
}

// Liveness and retry-policy defaults. The heartbeat detects workers that
// are silent-but-connected (stalled WAN link, frozen node) without
// waiting for a TCP error that an ESTABLISHED-but-dead session may never
// produce.
const (
	defaultDialTimeout       = 30 * time.Second
	defaultTransferTimeout   = 5 * time.Minute
	defaultHeartbeatInterval = 2 * time.Second
	defaultHeartbeatTimeout  = 8 * time.Second
	defaultBackoffBase       = 20 * time.Millisecond
	defaultBackoffMax        = 2 * time.Second
	defaultRecoveryTimeout   = 30 * time.Second

	// defaultOrphanTTL bounds how long a persistent-cache entry no manager
	// has reclaimed survives before the worker GCs it. Mirrored as
	// params.DefaultOrphanTTL.
	defaultOrphanTTL = 10 * time.Minute
	// defaultJournalCompactEvery is how many task completions the manager
	// journals between snapshot compactions. Mirrored as
	// params.DefaultJournalCompactEvery.
	defaultJournalCompactEvery = 512

	// defaultDrainGrace is the grace window a preempted worker assumes when
	// the preemption notice names none (SIGTERM carries no deadline):
	// enough for in-flight analysis chunks to finish and sole-replica
	// intermediates to offload. Mirrored as params.DefaultDrainGrace.
	defaultDrainGrace = 30 * time.Second
)

// config is the merged pre-construction state for both constructors.
type config struct {
	mgr            ManagerOptions
	wrk            WorkerOptions
	rec            *obs.Recorder
	failureHistory int

	// Shared network plumbing.
	dialTimeout     time.Duration
	transferTimeout time.Duration
	inject          NetFaultInjector

	// Liveness.
	hbInterval time.Duration
	hbTimeout  time.Duration

	// Modelled per-control-frame cost (see WithControlOverhead).
	controlOverhead time.Duration

	// Manager retry/deadline/recovery policy.
	backoffBase     time.Duration
	backoffMax      time.Duration
	retrySeed       uint64
	taskDeadline    time.Duration
	recoveryTimeout time.Duration

	// Scheduling policy and tenant queues.
	schedPolicy *sched.Policy
	queues      []sched.QueueConfig

	// Durability: the run journal and the manager's listen address (a
	// restarted manager must rebind the address its workers reconnect to).
	jr                  *journal.Journal
	journalCompactEvery int
	listenAddr          string

	// Availability: the leadership lease, a standby's pre-built journal
	// fold, and the takeover provenance (see ha.go and internal/ha).
	lease         Lease
	replayState   *ReplayState
	takeoverFrom  time.Time
	takeoverEpoch uint64
}

func buildConfig(opts []Option) config {
	c := config{
		failureHistory:      defaultFailureHistory,
		dialTimeout:         defaultDialTimeout,
		transferTimeout:     defaultTransferTimeout,
		hbInterval:          defaultHeartbeatInterval,
		hbTimeout:           defaultHeartbeatTimeout,
		backoffBase:         defaultBackoffBase,
		backoffMax:          defaultBackoffMax,
		retrySeed:           1,
		recoveryTimeout:     defaultRecoveryTimeout,
		journalCompactEvery: defaultJournalCompactEvery,
	}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// netConfig carries the dial/IO policy into the data plane.
func (c config) netConfig() netConfig {
	return netConfig{
		dialTimeout: c.dialTimeout,
		ioTimeout:   c.transferTimeout,
		inject:      c.inject,
	}
}

// WithPeerTransfers toggles worker-to-worker staging (manager). Off,
// every input is served from the manager — the Work Queue data path.
func WithPeerTransfers(on bool) Option {
	return func(c *config) { c.mgr.PeerTransfers = on }
}

// WithTransferCap bounds concurrent outbound transfers from one worker
// (manager; default 3).
func WithTransferCap(n int) Option {
	return func(c *config) { c.mgr.TransferCapPerSource = n }
}

// WithMaxRetries bounds per-task re-dispatches after worker failures or
// transfer errors (manager; default 5).
func WithMaxRetries(n int) Option {
	return func(c *config) { c.mgr.MaxRetries = n }
}

// WithReturnOutputs streams every task output back to the manager's own
// store — the Work Queue data flow (manager).
func WithReturnOutputs(on bool) Option {
	return func(c *config) { c.mgr.ReturnOutputs = on }
}

// WithReplication keeps up to n worker replicas of every task output
// (manager; 0 or 1 disables replication).
func WithReplication(n int) Option {
	return func(c *config) { c.mgr.ReplicateOutputs = n }
}

// WithLibrary installs a registered library on every worker, with
// import hoisting on or off (manager; repeatable).
func WithLibrary(name string, hoist bool) Option {
	return func(c *config) {
		c.mgr.InstallLibraries = append(c.mgr.InstallLibraries, LibrarySpec{Name: name, Hoist: hoist})
	}
}

// WithRecorder attaches an obs.Recorder; the component emits lifecycle
// events into it (both). A nil recorder leaves tracing disabled.
func WithRecorder(r *obs.Recorder) Option {
	return func(c *config) { c.rec = r }
}

// WithFailureHistory bounds how many per-attempt failure causes the
// manager retains per task for the terminal error and
// TaskHandle.FailureHistory (manager; default 8, minimum 1).
func WithFailureHistory(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.failureHistory = n
	}
}

// WithName sets the worker's name (worker; default autogenerated).
func WithName(name string) Option {
	return func(c *config) { c.wrk.Name = name }
}

// WithCores advertises execution slots (worker; default 1).
func WithCores(n int) Option {
	return func(c *config) { c.wrk.Cores = n }
}

// WithMemory advertises RAM in bytes (worker; 0 = unlimited).
func WithMemory(bytes int64) Option {
	return func(c *config) { c.wrk.Memory = bytes }
}

// WithCacheDir sets the worker cache directory (worker; default a fresh
// temp dir).
func WithCacheDir(dir string) Option {
	return func(c *config) { c.wrk.Dir = dir }
}

// WithDiskLimit caps worker cache bytes; exceeding it fails the
// offending transfer or task (worker; 0 = unlimited).
func WithDiskLimit(bytes int64) Option {
	return func(c *config) { c.wrk.DiskLimit = bytes }
}

// WithDialTimeout bounds every outbound TCP dial — worker→manager
// control, transfer fetches — replacing the former hardcoded 30s
// (both; default 30s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithTransferTimeout bounds one whole transfer-plane exchange (serve or
// fetch of a single cached object), replacing the former hardcoded five
// minutes (both; default 5m).
func WithTransferTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.transferTimeout = d
		}
	}
}

// WithFaultInjector threads a fault-injection layer (internal/chaos.Plan)
// under every live connection and listener the component opens (both;
// default none).
func WithFaultInjector(inj NetFaultInjector) Option {
	return func(c *config) { c.inject = inj }
}

// WithHeartbeat sets the liveness policy: the manager pings each idle
// link every interval and declares a worker lost after timeout of
// silence; the worker symmetrically detects a lost manager and drains.
// interval <= 0 disables heartbeats entirely (both; default 2s/8s).
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(c *config) {
		c.hbInterval = interval
		if timeout < interval {
			timeout = 4 * interval
		}
		c.hbTimeout = timeout
	}
}

// WithControlOverhead charges d of serialized manager time per task-path
// control frame (dispatch, completion, lease, report), modelling the
// fixed per-message cost of a production manager's single-threaded event
// loop — protocol handling, accounting, logging — that a fast loopback
// harness otherwise hides. Like Library.SetupDelay for task setup, it
// lets benches recreate the dispatch-saturation regime the paper's
// foreman tier addresses: frames charge inside the manager lock, so a
// flat manager pays per task while a federation root pays only per
// batched lease or report frame (manager; default 0 = off).
func WithControlOverhead(d time.Duration) Option {
	return func(c *config) { c.controlOverhead = d }
}

// WithTaskDeadline bounds one execution attempt of every task that does
// not set its own Task.Deadline. An attempt running past the deadline is
// fast-aborted and speculatively re-dispatched to a different worker;
// the first result wins (manager; default 0 = no deadline).
func WithTaskDeadline(d time.Duration) Option {
	return func(c *config) { c.taskDeadline = d }
}

// WithRecoveryTimeout bounds how long FetchBytes waits for a lineage
// rollback to regenerate a file whose every replica was lost before it
// gives up (manager; default 30s).
func WithRecoveryTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.recoveryTimeout = d
		}
	}
}

// WithRetryBackoff shapes the exponential-backoff-with-jitter schedule
// between task retry attempts: delay grows from base, doubling per
// attempt, clamped to max (manager; defaults 20ms/2s; base <= 0
// requeues immediately as before).
func WithRetryBackoff(base, max time.Duration) Option {
	return func(c *config) {
		c.backoffBase = base
		if max < base {
			max = base
		}
		c.backoffMax = max
	}
}

// WithRetrySeed seeds the jitter stream used by the retry backoff so a
// scheduling trace replays deterministically (manager; default 1).
func WithRetrySeed(seed uint64) Option {
	return func(c *config) { c.retrySeed = seed }
}

// WithScheduler selects the placement policy (manager; default
// sched.Locality(), the data-gravity placement the engine has always
// used). Stock alternatives: sched.BinPack(), sched.Spread(),
// sched.Random(seed), or any custom Filter→Score pipeline.
func WithScheduler(p *sched.Policy) Option {
	return func(c *config) { c.schedPolicy = p }
}

// WithQueue declares a named submission queue (tenant) with a weighted
// fair share of the cluster (manager; repeatable). Tasks name their
// queue via Task.Queue; an undeclared queue is created on first use with
// weight 1, and the "default" queue always exists.
func WithQueue(name string, weight float64) Option {
	return func(c *config) {
		c.queues = append(c.queues, sched.QueueConfig{Name: name, Weight: weight})
	}
}

// WithJournal attaches a durable run journal: the manager appends every
// task definition, dispatch, completion, and file declaration, and replays
// the journal's state at construction — completed tasks whose outputs
// survive on reconnecting workers are never re-executed (manager; default
// none). The caller owns the journal's lifecycle; Stop syncs it but does
// not close it, so a restarted manager can reuse the same handle.
func WithJournal(j *journal.Journal) Option {
	return func(c *config) { c.jr = j }
}

// WithJournalCompactEvery sets how many journaled task completions pass
// between automatic snapshot compactions (manager; default 512; <= 0
// disables automatic compaction — CompactJournal remains available).
func WithJournalCompactEvery(n int) Option {
	return func(c *config) { c.journalCompactEvery = n }
}

// WithListenAddr pins the manager's control listen address instead of an
// ephemeral loopback port, so a restarted manager comes back where its
// workers reconnect (manager; default "127.0.0.1:0").
func WithListenAddr(addr string) Option {
	return func(c *config) { c.listenAddr = addr }
}

// WithPersistentCache keeps the worker's on-disk cache across restarts:
// entries are indexed with their CRC-32C, scrubbed on startup (corrupt or
// unindexed files are dropped), and the surviving inventory is reported in
// the register handshake so the manager re-learns replicas instead of
// re-staging. Stop no longer removes the cache directory (worker; default
// off; pair with WithCacheDir for a stable location).
func WithPersistentCache(on bool) Option {
	return func(c *config) { c.wrk.Persist = on }
}

// WithOrphanTTL bounds how long a persistent-cache entry that no manager
// reclaims (acknowledges in the inventory handshake or touches afterwards)
// survives before the worker GCs it (worker; default 10m; <= 0 disables
// the GC).
func WithOrphanTTL(d time.Duration) Option {
	return func(c *config) { c.wrk.OrphanTTL = d }
}

// WithReconnect lets the worker survive a manager restart: on a connection
// error or manager silence it re-dials the manager address up to attempts
// times, backoff apart, and re-registers with its current cache inventory
// instead of draining (worker; default 0 = drain as before).
func WithReconnect(attempts int, backoff time.Duration) Option {
	return func(c *config) {
		c.wrk.ReconnectAttempts = attempts
		if backoff > 0 {
			c.wrk.ReconnectBackoff = backoff
		}
	}
}

// WithLease attaches a leadership lease: the manager watches it and fences
// itself — permanently refusing to dispatch — the moment the lease is
// observed held by another manager. This is the split-brain guard for
// hot-standby HA: a paused-then-resumed old primary discovers the usurper's
// epoch and goes quiet instead of double-dispatching (manager; default
// none). internal/ha.AcquireLease produces a suitable Lease.
func WithLease(l Lease) Option {
	return func(c *config) { c.lease = l }
}

// WithReplayState hands the manager a journal fold built ahead of time —
// a hot standby streams the primary's journal through a journal.Follower
// into a ReplayState while the primary is alive, so takeover materializes
// state instead of re-reading the log (manager; default none = fold the
// attached journal from disk).
func WithReplayState(st *ReplayState) Option {
	return func(c *config) { c.replayState = st }
}

// WithTakeoverFrom marks this manager as a failover incarnation: expiry is
// when the dead primary's lease ran out, epoch the fencing token the
// standby acquired. The manager announces the takeover to registering
// workers and reports the expiry→first-dispatch gap as
// vine_takeover_latency_seconds (manager; default none).
func WithTakeoverFrom(expiry time.Time, epoch uint64) Option {
	return func(c *config) {
		c.takeoverFrom = expiry
		c.takeoverEpoch = epoch
	}
}

// WithPreemptible marks the worker as running on an opportunistic slot
// that may be preempted on short notice. The attribute rides the
// registration hello into the scheduler: placement prefers stable workers
// for replicas of hot files, so a preemption costs re-execution as rarely
// as possible (worker; default false).
func WithPreemptible(on bool) Option {
	return func(c *config) { c.wrk.Preemptible = on }
}

// WithManagers gives the worker fallback manager addresses beyond the one
// passed to NewWorker: on a connection error or manager silence the redial
// budget cycles through the whole list (primary first), so a worker
// survives a failover to a hot standby at a different address without
// operator action (worker; default none; repeatable).
func WithManagers(addrs ...string) Option {
	return func(c *config) { c.wrk.Managers = append(c.wrk.Managers, addrs...) }
}

// WithManagerOptions applies a legacy ManagerOptions struct wholesale.
//
// Deprecated: use the individual With* options.
func WithManagerOptions(opts ManagerOptions) Option {
	return func(c *config) { c.mgr = opts }
}

// WithWorkerOptions applies a legacy WorkerOptions struct wholesale.
//
// Deprecated: use the individual With* options.
func WithWorkerOptions(opts WorkerOptions) Option {
	return func(c *config) { c.wrk = opts }
}
