package vine

import (
	"fmt"
	"time"

	"hepvine/internal/obs"
)

// The manager-side failure detector. TCP alone is a poor liveness signal:
// an ESTABLISHED session to a frozen node or across a black-holed link
// can stay silent for many minutes before the kernel gives up. The
// monitor closes that gap with two active checks:
//
//   - Heartbeats: any worker link quiet for hbInterval gets a ping; a
//     worker silent for hbTimeout is declared lost immediately, requeueing
//     its tasks without waiting for a TCP error that may never come.
//
//   - Deadlines: a running attempt past its deadline is fast-aborted —
//     the task requeues onto a different worker while the straggler keeps
//     running speculatively, and the first result wins (§V: recovering
//     stragglers by re-execution rather than waiting them out).

// monitor runs for the manager's lifetime, exiting when Stop closes
// stopC. The tick tracks the heartbeat interval so detection latency
// stays a small fraction of the configured timeout.
func (m *Manager) monitor() {
	tick := 50 * time.Millisecond
	if m.hbInterval > 0 {
		tick = m.hbInterval / 4
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.stopC:
			return
		case <-t.C:
		}
		m.sweep(time.Now())
	}
}

// sweep performs one monitor pass: ping quiet links, expire silent
// workers, fast-abort over-deadline attempts.
func (m *Manager) sweep(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}

	if m.hbInterval > 0 {
		var lost []int
		for id, w := range m.workers {
			if !w.alive {
				continue
			}
			if now.Sub(w.lastSeen) > m.hbTimeout {
				lost = append(lost, id)
				continue
			}
			if now.Sub(w.lastPing) >= m.hbInterval {
				w.lastPing = now
				w.conn.send(&message{Type: msgPing})
			}
		}
		for _, id := range lost {
			w := m.workers[id]
			m.met.heartbeatMisses.Inc()
			m.rec.Emit(obs.Event{Type: obs.EvHeartbeatMiss, Worker: w.name,
				Detail: fmt.Sprintf("worker silent for %v (timeout %v)",
					now.Sub(w.lastSeen).Round(time.Millisecond), m.hbTimeout)})
			m.workerLostLocked(id)
		}
	}

	// Graceful drain: re-attempt evacuations and release workers that have
	// drained clean, before the deadline scan can fast-abort work that a
	// drainer would have finished inside its grace window.
	m.releaseDrainersLocked()

	var expired []*taskRecord
	for _, rec := range m.tasks {
		if rec.state == TaskRunning && !rec.deadlineAt.IsZero() && now.After(rec.deadlineAt) {
			expired = append(expired, rec)
		}
	}
	for _, rec := range expired {
		m.abortLocked(rec, now)
	}
	if len(expired) > 0 {
		m.scheduleLocked()
	}
}

// deadlineFor resolves a task's per-attempt execution bound.
func (m *Manager) deadlineFor(rec *taskRecord) time.Duration {
	if rec.spec.Deadline > 0 {
		return rec.spec.Deadline
	}
	return m.taskDeadline
}

// abortLocked fast-aborts one over-deadline running attempt. The straggler
// is not killed — there is no per-task preemption in the wire protocol —
// but its worker's cores are released and the task requeues immediately
// (no backoff: a deadline expiry is the manager's own decision, not a
// fault to be damped). If the straggler still finishes first, its result
// is accepted; duplicate outputs are idempotent under content addressing.
func (m *Manager) abortLocked(rec *taskRecord, now time.Time) {
	w := m.workers[rec.worker]
	name := workerNameOf(w)
	d := m.deadlineFor(rec)
	m.met.tasksAborted.Inc()
	m.rec.Emit(obs.Event{Type: obs.EvTaskAbort, Task: rec.label(), Worker: name, Attempt: rec.retries,
		Detail: fmt.Sprintf("deadline %v exceeded; re-dispatching speculatively", d)})
	if rec.stragglers == nil {
		rec.stragglers = make(map[int]bool)
	}
	rec.stragglers[rec.worker] = true
	m.releaseWorkerLocked(rec)
	rec.deadlineAt = time.Time{}
	rec.retries++
	terminal := rec.retries > m.opts.MaxRetries
	m.recordFailureLocked(rec, TaskFailure{
		Attempt: rec.retries, Worker: name,
		Cause: fmt.Sprintf("aborted after deadline %v", d),
	})
	if terminal {
		m.failLocked(rec, fmt.Errorf("vine: task %d failed after %d retries: deadline %v exceeded (history: %s)",
			rec.id, rec.retries-1, d, joinHistory(rec.failures)))
		return
	}
	m.met.retries.Inc()
	if m.inputsAvailableLocked(rec) {
		m.enqueueReadyLocked(rec)
	} else {
		m.setTaskState(rec, TaskWaiting)
		m.reviveProducersLocked(rec)
	}
}

func joinHistory(fs []TaskFailure) string {
	s := ""
	for i, f := range fs {
		if i > 0 {
			s += "; "
		}
		s += f.String()
	}
	return s
}
