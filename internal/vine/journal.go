package vine

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"hepvine/internal/journal"
	"hepvine/internal/obs"
	"hepvine/internal/sched"
)

// Durable run state: the manager-side glue around internal/journal. With
// WithJournal attached, every state transition that matters for resuming a
// run — task definitions, dispatches, completions, terminal failures, file
// declarations, unlinks — is appended as one journal record, and NewManager
// replays the journal before listening, so a restarted manager begins life
// already knowing every completed task and every file the run produced.
//
// Reconciliation rules (what is and isn't replayed):
//
//   - Completed tasks are materialized as done taskRecords with their
//     original ids and closed handles. Their outputs get fileState entries
//     (producer wired for the lineage ladder) but no replicas — replicas
//     come back from reconnecting workers' cache inventories.
//   - Submitted-but-incomplete tasks are dropped: the client resubmits the
//     graph, and content-addressed task identity (defHash) dedupes the
//     parts that already ran — the warm path.
//   - Declared files are re-declared if their backing path still hashes to
//     the same cachename (buffers ride inline in the record); otherwise the
//     entry exists without a manager source and consumers fall back to
//     worker replicas or lineage recovery.
//   - Terminally failed tasks are forgotten, so a resubmission retries
//     them fresh.

// journalBufferLimit bounds how large a declared buffer may be to ride
// inline in a journal record. Larger buffers are journaled without data:
// after a restart they are unrecoverable unless re-declared (documented
// durability gap, same as a declared file whose path vanished).
const journalBufferLimit = 8 << 20

// journalLocked appends one record (requires m.mu). Journal write errors
// are sticky inside the journal and surface via Journal.Err; the manager
// degrades to lossy journaling rather than failing the run.
//
// A stopped manager appends nothing: Stop sets stopped inside its m.mu
// critical section — which drains any in-flight Submit or completion
// handler still holding the lock — and only then syncs the journal, so
// the final Sync is ordered after every append that will ever happen. A
// late worker message racing the shutdown can no longer slip a record in
// behind the sync (where a resume would silently lose it).
func (m *Manager) journalLocked(rec *journal.Record) {
	if m.jr == nil || m.stopped {
		return
	}
	n, err := m.jr.Append(rec)
	if err != nil {
		return
	}
	m.met.journalAppends.Inc()
	m.met.journalBytes.Add(int64(n))
	if m.rec != nil {
		ev := obs.Event{Type: obs.EvJournalAppend, Detail: string(rec.Kind)}
		if rec.TaskID > 0 || rec.Kind == journal.KindTaskDef || rec.Kind == journal.KindTaskDone {
			ev.Task = strconv.Itoa(rec.TaskID)
		}
		m.rec.Emit(ev)
	}
}

// specToJournal converts a vine task spec to the journal wire form.
func specToJournal(t Task) *journal.TaskSpec {
	s := &journal.TaskSpec{
		Mode: string(t.Mode), Library: t.Library, Func: t.Func, Args: t.Args,
		Outputs: append([]string(nil), t.Outputs...),
		Cores:   t.Cores, Memory: t.Memory, Queue: t.Queue, Priority: t.Priority,
		DeadlineNanos: t.Deadline.Nanoseconds(),
	}
	for _, in := range t.Inputs {
		s.Inputs = append(s.Inputs, journal.FileRef{Name: in.Name, CacheName: string(in.CacheName)})
	}
	return s
}

// specFromJournal is the inverse of specToJournal.
func specFromJournal(s *journal.TaskSpec) Task {
	t := Task{
		Mode: TaskMode(s.Mode), Library: s.Library, Func: s.Func, Args: s.Args,
		Outputs: append([]string(nil), s.Outputs...),
		Cores:   s.Cores, Memory: s.Memory, Queue: s.Queue, Priority: s.Priority,
		Deadline: time.Duration(s.DeadlineNanos),
	}
	for _, in := range s.Inputs {
		t.Inputs = append(t.Inputs, FileRef{Name: in.Name, CacheName: CacheName(in.CacheName)})
	}
	return t
}

// taskDefRecord builds the KindTaskDef record for a freshly submitted task.
func taskDefRecord(rec *taskRecord) *journal.Record {
	outs := make(map[string]string, len(rec.handle.outputs))
	for name, cn := range rec.handle.outputs {
		outs[name] = string(cn)
	}
	return &journal.Record{
		Kind: journal.KindTaskDef, TaskID: rec.id, DefHash: rec.defHash,
		Spec: specToJournal(rec.spec), Outputs: outs,
	}
}

// declRecord builds the KindFileDecl record for a manager-declared file.
// Buffers over journalBufferLimit are journaled without data (size-only
// tombstone of the declaration; unrecoverable after restart unless
// re-declared).
func declRecord(name CacheName, fs *fileState) *journal.Record {
	r := &journal.Record{
		Kind: journal.KindFileDecl, CacheName: string(name),
		Size: fs.size, Path: fs.mgrPath,
	}
	if fs.mgrData != nil && len(fs.mgrData) <= journalBufferLimit {
		r.Data = fs.mgrData
	}
	return r
}

// replayJournal reconstructs manager state from the attached journal. It
// runs at construction, before any goroutine or connection exists, so no
// locking is needed. Returns the number of completed tasks materialized.
//
// Two sources feed it: without WithReplayState the journal is read from
// disk here; with it (the hot-standby takeover path) the fold arrived
// pre-built from a journal.Follower and only materialization remains.
func (m *Manager) replayJournal() (int, error) {
	rs := m.preState
	if rs == nil {
		rs = NewReplayState()
		st, err := m.jr.Replay(rs.Apply)
		if err != nil {
			return 0, err
		}
		m.met.journalReplayed.Add(st.Replayed)
		m.met.journalSkipped.Add(st.Skipped)
		if st.Skipped > 0 {
			// Corrupt frames were silently dropped from the fold; make the
			// loss visible (a skipped task_def means its task re-runs, a
			// skipped file_decl means a re-declare or lineage recovery).
			m.met.replaySkipped.Add(st.Skipped)
			m.rec.Emit(obs.Event{Type: obs.EvFileCorrupt, Src: "journal",
				Detail: fmt.Sprintf("replay skipped %d corrupt frames (of %d replayed)", st.Skipped, st.Replayed)})
		}
	} else {
		m.met.journalReplayed.Add(rs.Applied())
	}
	return m.materializeReplay(rs)
}

// materializeReplay turns a folded ReplayState into live manager state:
// fileState entries (with manager sources re-verified) and done
// taskRecords with closed handles.
func (m *Manager) materializeReplay(rs *ReplayState) (int, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	defs, dones, files, maxID := rs.defs, rs.dones, rs.files, rs.maxID

	// Materialize files first, so task outputs and declared inputs exist
	// before any handle references them.
	for cn, rf := range files {
		fs := &fileState{
			size:     rf.size,
			workers:  make(map[int]bool),
			producer: rf.producer,
		}
		switch {
		case rf.data != nil && int64(len(rf.data)) == rf.size:
			fs.mgrData = append([]byte(nil), rf.data...)
			fs.onManager = true
		case rf.path != "":
			// Re-verify the path still holds the declared content: the
			// cachename is a content hash, so a changed file must not be
			// served under the old name.
			if name, size, err := fileBlobName(rf.path); err == nil && name == cn && size == rf.size {
				fs.mgrPath = rf.path
				fs.onManager = true
			}
		}
		m.files[cn] = fs
	}

	// Materialize completed tasks: done records with closed handles and
	// scheduler-side specs intact, so the lineage ladder can re-enqueue
	// them if their outputs turn out to be lost everywhere.
	warmable := 0
	for id, done := range dones {
		def, ok := defs[id]
		if !ok {
			continue // definition lost to a skipped frame; resubmission re-runs
		}
		spec := specFromJournal(def.Spec)
		h := &TaskHandle{
			ID:      id,
			mgr:     m,
			outputs: make(map[string]CacheName, len(def.Outputs)),
			doneC:   make(chan struct{}),
		}
		h.state = TaskDone
		h.notified = true
		h.worker = done.Worker
		h.execTime = time.Duration(done.ExecNanos)
		h.setup = time.Duration(done.SetupNanos)
		close(h.doneC)
		rec := &taskRecord{
			id: id, spec: spec, handle: h, state: TaskDone,
			worker: -1, defHash: def.DefHash,
		}
		for out, cnStr := range def.Outputs {
			cn := CacheName(cnStr)
			h.outputs[out] = cn
			if fs := m.files[cn]; fs != nil {
				fs.producer = id
			}
		}
		inputs := make([]string, len(spec.Inputs))
		for i, in := range spec.Inputs {
			inputs[i] = string(in.CacheName)
		}
		rec.sq = &sched.Task{
			ID: rec.label(), Queue: spec.Queue, Priority: spec.Priority,
			Cores: spec.Cores, Memory: spec.Memory, Inputs: inputs,
		}
		if rec.sq.Cores <= 0 {
			rec.sq.Cores = 1
		}
		m.tasks[id] = rec
		if def.DefHash != "" {
			m.replayed[def.DefHash] = rec
		}
		warmable++
	}
	if maxID >= m.nextTID {
		m.nextTID = maxID + 1
	}
	return warmable, nil
}

// outputsMatchLocked reports whether a resubmission's requested outputs are
// exactly the replayed task's outputs and none of them has been unlinked
// (an unlinked output is gone for good; the task must run fresh).
func (m *Manager) outputsMatchLocked(old *taskRecord, outputs []string) bool {
	if len(outputs) != len(old.handle.outputs) {
		return false
	}
	for _, out := range outputs {
		cn, ok := old.handle.outputs[out]
		if !ok {
			return false
		}
		if _, exists := m.files[cn]; !exists {
			return false
		}
	}
	return true
}

// snapshotRecordsLocked builds the compaction snapshot: the idempotent
// upsert set that reconstructs current state — a def (+done) per completed
// task and a decl per manager-declared file. Incomplete tasks are omitted
// on purpose (replay drops them anyway; the client resubmits).
func (m *Manager) snapshotRecordsLocked() []journal.Record {
	var recs []journal.Record
	for cn, fs := range m.files {
		if fs.producer >= 0 {
			continue // outputs are reconstructed from task_done records
		}
		recs = append(recs, *declRecord(cn, fs))
	}
	for _, rec := range m.tasks {
		if rec.state != TaskDone {
			continue
		}
		recs = append(recs, *taskDefRecord(rec))
		sizes := make(map[string]int64, len(rec.handle.outputs))
		for _, cn := range rec.handle.outputs {
			if fs := m.files[cn]; fs != nil {
				sizes[string(cn)] = fs.size
			}
		}
		rec.handle.mu.Lock()
		worker, exec, setup := rec.handle.worker, rec.handle.execTime, rec.handle.setup
		rec.handle.mu.Unlock()
		recs = append(recs, journal.Record{
			Kind: journal.KindTaskDone, TaskID: rec.id, Worker: worker,
			OutputSizes: sizes, ExecNanos: exec.Nanoseconds(), SetupNanos: setup.Nanoseconds(),
		})
	}
	return recs
}

// maybeCompactJournalLocked triggers an automatic snapshot compaction every
// compactEvery journaled completions. The segment cut happens under m.mu
// (so the snapshot's state capture is ordered against appends); the
// snapshot file write runs in a goroutine off the lock.
func (m *Manager) maybeCompactJournalLocked() {
	if m.jr == nil || m.compactEvery <= 0 {
		return
	}
	m.journalDones++
	if m.journalDones%m.compactEvery != 0 {
		return
	}
	g, err := m.jr.Cut()
	if err != nil {
		return
	}
	recs := m.snapshotRecordsLocked()
	go func() {
		if m.jr.WriteSnapshot(g, recs) == nil {
			m.met.journalSnapshots.Inc()
		}
	}()
}

// CompactJournal forces a snapshot compaction now: the log is cut, current
// state is written as a snapshot, and covered segments are deleted. A
// no-op without an attached journal.
func (m *Manager) CompactJournal() error {
	if m.jr == nil {
		return nil
	}
	m.mu.Lock()
	g, err := m.jr.Cut()
	if err != nil {
		m.mu.Unlock()
		return err
	}
	recs := m.snapshotRecordsLocked()
	m.mu.Unlock()
	if err := m.jr.WriteSnapshot(g, recs); err != nil {
		return err
	}
	m.met.journalSnapshots.Inc()
	return nil
}

// failPendingLocked closes every not-yet-notified task handle with err, so
// clients blocked in Wait return promptly when the manager goes away. No
// metrics, no journal records: these tasks didn't fail, the manager did,
// and a journal-resumed manager will pick them up from a resubmission.
func (m *Manager) failPendingLocked(err error) {
	for _, rec := range m.tasks {
		rec.handle.mu.Lock()
		notified := rec.handle.notified
		if !notified {
			rec.handle.err = err
			rec.handle.notified = true
		}
		rec.handle.mu.Unlock()
		if !notified {
			close(rec.handle.doneC)
		}
	}
}

// Crash stops the manager abruptly — no kill messages to workers, no final
// journal sync — simulating a manager process kill for resume testing.
// Workers see a dead connection (and reconnect if configured); the journal
// retains exactly what the group-commit window had already flushed.
func (m *Manager) Crash() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	ws := make([]*workerState, 0, len(m.workers))
	for _, w := range m.workers {
		ws = append(ws, w)
	}
	m.failPendingLocked(errors.New("vine: manager crashed"))
	m.notifyLocked()
	close(m.stopC)
	m.mu.Unlock()
	for _, w := range ws {
		w.conn.close()
	}
	m.ln.Close()
	m.ts.close()
}

// Journal reports the attached run journal (nil when durability is off).
func (m *Manager) Journal() *journal.Journal { return m.jr }

// WarmHits reports how many resubmitted tasks were satisfied from replayed
// journal state with all outputs live — tasks a warm or resumed run never
// re-executed.
func (m *Manager) WarmHits() int { return int(m.met.warmHits.Value()) }
