package vine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The data plane: every worker (and the manager) runs a transfer server
// that serves cache entries to authorized fetchers. Peer transfers (§IV.B)
// are exactly this — the manager instructs worker B to fetch a cachename
// from worker A's transfer address instead of routing bytes through itself
// or a shared filesystem.
//
// Wire protocol (line-oriented, then raw bytes, then a checksum trailer):
//
//	→ GET <cachename>\n
//	← OK <size>\n<size bytes><4-byte LE CRC-32C>   |   ERR <reason>\n
//
// The server computes the CRC-32C while streaming (single pass, no
// buffering of the body) and appends it as a trailer; the fetcher verifies
// it over the received bytes and reports a mismatch as ErrCorruptTransfer,
// which the manager treats as a poisoned replica, not a flaky network.

// netConfig is the dial/IO policy threaded through the data plane: how
// long a dial may take, how long one whole exchange may take, and an
// optional fault-injection layer under every conn.
type netConfig struct {
	dialTimeout time.Duration
	ioTimeout   time.Duration
	inject      NetFaultInjector
}

// defaultNetConfig matches the historical hardcoded policy.
func defaultNetConfig() netConfig {
	return netConfig{dialTimeout: defaultDialTimeout, ioTimeout: defaultTransferTimeout}
}

// dial opens an outbound connection under the configured timeout and
// fault-injection layer. label names the connection's role for targeted
// fault matching (e.g. "w0/fetch", "manager/control").
func (nc netConfig) dial(addr, label string) (net.Conn, error) {
	to := nc.dialTimeout
	if to <= 0 {
		to = defaultDialTimeout
	}
	c, err := net.DialTimeout("tcp", addr, to)
	if err != nil {
		return nil, err
	}
	if nc.inject != nil {
		c = nc.inject.WrapConn(c, label)
	}
	return c, nil
}

// listen wraps a listener under the fault-injection layer, if any.
func (nc netConfig) listen(ln net.Listener, label string) net.Listener {
	if nc.inject != nil {
		return nc.inject.WrapListener(ln, label)
	}
	return ln
}

func (nc netConfig) deadline() time.Time {
	to := nc.ioTimeout
	if to <= 0 {
		to = defaultTransferTimeout
	}
	return time.Now().Add(to)
}

// transferSource resolves a cachename to a content stream.
type transferSource interface {
	openCache(name CacheName) (io.ReadCloser, int64, error)
}

// transferServer serves cache content over TCP.
type transferServer struct {
	ln  net.Listener
	src transferSource
	nc  netConfig

	mu     sync.Mutex
	closed bool

	// ServedBytes counts total bytes served, for peer-transfer assertions.
	servedBytes int64
	servedFiles int64
}

func newTransferServer(src transferSource, nc netConfig, label string) (*transferServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("vine: transfer listen: %w", err)
	}
	ts := &transferServer{ln: nc.listen(ln, label), src: src, nc: nc}
	go ts.acceptLoop()
	return ts, nil
}

// Addr reports the listen address peers should fetch from.
func (ts *transferServer) Addr() string { return ts.ln.Addr().String() }

// Served reports total files and bytes served so far.
func (ts *transferServer) Served() (files, bytes int64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.servedFiles, ts.servedBytes
}

func (ts *transferServer) close() {
	ts.mu.Lock()
	ts.closed = true
	ts.mu.Unlock()
	ts.ln.Close()
}

func (ts *transferServer) acceptLoop() {
	for {
		c, err := ts.ln.Accept()
		if err != nil {
			return
		}
		go ts.handle(c)
	}
}

func (ts *transferServer) handle(c net.Conn) {
	defer c.Close()
	c.SetDeadline(ts.nc.deadline())
	r := bufio.NewReader(c)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "GET ") {
		fmt.Fprintf(c, "ERR bad request\n")
		return
	}
	name := CacheName(strings.TrimSpace(line[4:]))
	rc, size, err := ts.src.openCache(name)
	if err != nil {
		fmt.Fprintf(c, "ERR %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
		return
	}
	defer rc.Close()
	if _, err := fmt.Fprintf(c, "OK %d\n", size); err != nil {
		return
	}
	// The TeeReader keeps the copy on the ordinary read/write loop; it
	// must not be "optimized away", because a bare *os.File source would
	// take Go's sendfile/splice fast path, which on loopback stalls
	// ~40ms per transfer against delayed ACKs.
	h := crc32.New(castagnoli)
	n, err := io.Copy(c, io.TeeReader(rc, h))
	if err == nil && n == size {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
		c.Write(trailer[:])
	}
	ts.mu.Lock()
	ts.servedBytes += n
	ts.servedFiles++
	ts.mu.Unlock()
}

// fetch retrieves a cachename from a transfer server, writing it to w.
// label names the fetching endpoint for fault targeting. The verified
// CRC-32C of the payload is returned alongside the size so callers (the
// worker's persistent cache index) can record it without re-reading the
// bytes.
func (nc netConfig) fetch(addr string, name CacheName, w io.Writer, label string) (int64, uint32, error) {
	c, err := nc.dial(addr, label)
	if err != nil {
		return 0, 0, fmt.Errorf("vine: dialing %s: %w", addr, err)
	}
	defer c.Close()
	c.SetDeadline(nc.deadline())
	if _, err := fmt.Fprintf(c, "GET %s\n", name); err != nil {
		return 0, 0, err
	}
	r := bufio.NewReader(c)
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, 0, fmt.Errorf("vine: reading transfer header: %w", err)
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return 0, 0, fmt.Errorf("vine: transfer of %s from %s refused: %s", name, addr, line[4:])
	}
	if !strings.HasPrefix(line, "OK ") {
		return 0, 0, fmt.Errorf("vine: malformed transfer header %q", line)
	}
	size, err := strconv.ParseInt(strings.TrimSpace(line[3:]), 10, 64)
	if err != nil || size < 0 {
		return 0, 0, fmt.Errorf("vine: malformed transfer size in %q", line)
	}
	h := crc32.New(castagnoli)
	n, err := io.Copy(io.MultiWriter(w, h), io.LimitReader(r, size))
	if err != nil {
		return n, 0, fmt.Errorf("vine: transfer body: %w", err)
	}
	if n != size {
		return n, 0, fmt.Errorf("vine: short transfer: %d of %d bytes", n, size)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return n, 0, fmt.Errorf("vine: reading transfer checksum: %w", err)
	}
	want := binary.LittleEndian.Uint32(trailer[:])
	if got := h.Sum32(); got != want {
		return n, got, corruptTransferErr(name, addr, want, got)
	}
	return n, want, nil
}

// fetchBytes retrieves a cachename into memory under the default net
// policy (no injection) — the manager collection path and test helper.
func fetchBytes(addr string, name CacheName) ([]byte, error) {
	return defaultNetConfig().fetchBytes(addr, name, "fetch")
}

func (nc netConfig) fetchBytes(addr string, name CacheName, label string) ([]byte, error) {
	var b strings.Builder
	if _, _, err := nc.fetch(addr, name, &b, label); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// fetchToFile retrieves a cachename into a file, atomically (temp + rename)
// so a crashed transfer never leaves a corrupt cache entry. Returns size
// and verified payload CRC-32C.
func (nc netConfig) fetchToFile(addr string, name CacheName, path, label string) (int64, uint32, error) {
	// The temp name must be unique per fetch, not derived from path alone:
	// two concurrent fetches of the same cachename sharing one ".part"
	// inode would truncate each other, and the first rename could publish
	// the second fetch's half-written bytes.
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".part-")
	if err != nil {
		return 0, 0, err
	}
	tmp := f.Name()
	n, crc, err := nc.fetch(addr, name, f, label)
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return n, crc, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return n, crc, err
	}
	return n, crc, nil
}
