package vine

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// The integrity envelope: every payload that crosses a socket — control
// frames, transfer-plane bodies (staging, peer transfers, output returns) —
// carries a CRC-32C computed at the source and verified on receipt. TCP's
// own checksum is too weak to trust for scientific results (it misses
// whole classes of in-flight and in-memory corruption), and a histogram
// silently built from flipped bits is worse than a failed run. A mismatch
// is a *typed* failure so every layer above can tell "this replica served
// bad bytes" apart from "the network hiccuped" and respond with the
// recovery ladder: retry → replica failover → quarantine → lineage
// rollback (see manager.go).

// castagnoli is the CRC-32C (Castagnoli) table shared by the control and
// data planes. CRC-32C over IEEE because it is the checksum with hardware
// support on every platform Go targets (SSE4.2 crc32 / ARMv8 CRC32C), so
// the per-byte cost is negligible next to the copy itself.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptTransfer is the sentinel wrapped by every transfer-plane
// payload-checksum failure. Receivers match it with errors.Is to route the
// failure into quarantine + failover instead of a plain retry.
var ErrCorruptTransfer = errors.New("vine: transfer payload checksum mismatch")

// ErrCorruptFrame is the sentinel wrapped by every control-channel frame
// whose payload does not match its header CRC. A corrupt frame poisons the
// whole stream (framing can no longer be trusted), so the connection is
// dropped and the peer declared lost.
var ErrCorruptFrame = errors.New("vine: control frame checksum mismatch")

// corruptTransferErr builds the typed error for a body whose trailer CRC
// disagrees with the received bytes.
func corruptTransferErr(name CacheName, addr string, want, got uint32) error {
	return fmt.Errorf("%w: %s from %s (crc32c %08x, want %08x)", ErrCorruptTransfer, name, addr, got, want)
}
