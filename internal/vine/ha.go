package vine

import (
	"time"

	"hepvine/internal/obs"
)

// Manager-side high availability: lease fencing and takeover accounting.
//
// The lease protocol itself (file format, renewal, expiry arithmetic)
// lives in internal/ha; the manager only needs the narrow waist below —
// "has my lease been lost?" — so vine never imports ha (ha constructs
// vine.Managers, and the dependency must point one way).
//
// Fencing is the split-brain guard: a primary that was paused (GC,
// SIGSTOP, scheduler stall) past its lease TTL may wake up *after* a
// standby has taken over. Its renewer notices the foreign epoch on the
// lease and fires Lost; from that moment this manager must never dispatch
// again — the standby owns the workers, the address, and the journal.
// Fenced is one-way: there is no un-fence, only a new manager.

// Lease is the manager's view of an external leadership lease.
// internal/ha.Lease implements it.
type Lease interface {
	// Lost is closed when the lease is observed held by another epoch or
	// holder — leadership is gone and will not come back.
	Lost() <-chan struct{}
	// Holder names this lease's owner (diagnostics).
	Holder() string
	// Epoch is the fencing token: strictly increasing across acquisitions.
	Epoch() uint64
}

// watchLease fences the manager the moment its leadership lease is lost.
// Runs for the manager's lifetime when WithLease was given.
func (m *Manager) watchLease() {
	select {
	case <-m.stopC:
		return
	case <-m.lease.Lost():
	}
	m.mu.Lock()
	if m.fenced || m.stopped {
		m.mu.Unlock()
		return
	}
	m.fenced = true
	m.met.leaseLosses.Inc()
	m.notifyLocked()
	m.mu.Unlock()
	m.rec.Emit(obs.Event{Type: obs.EvLeaseLost, Src: m.lease.Holder(),
		Attempt: int(m.lease.Epoch()),
		Detail:  "lease held by another manager; dispatch fenced"})
}

// LeaseLost reports whether the manager has fenced itself after losing its
// leadership lease. A fenced manager accepts connections and answers
// queries but never dispatches another task.
func (m *Manager) LeaseLost() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fenced
}

// Failovers reports how many takeovers this manager performed (0 for a
// primary, 1 for a standby that assumed a dead primary's role).
func (m *Manager) Failovers() int { return int(m.met.failovers.Value()) }

// TakeoverLatency reports the time from the old primary's lease expiry to
// this manager's first task dispatch — the paper-facing availability
// number. Zero until the first post-takeover dispatch, and always zero on
// a manager that was never a standby.
func (m *Manager) TakeoverLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.takeoverLat
}

// observeTakeoverLocked records takeover latency at the first dispatch
// after a takeover (requires m.mu).
func (m *Manager) observeTakeoverLocked() {
	if m.takeoverFrom.IsZero() || m.takeoverLat != 0 {
		return
	}
	m.takeoverLat = time.Since(m.takeoverFrom)
	if m.takeoverLat <= 0 {
		m.takeoverLat = time.Nanosecond
	}
	m.met.takeoverLatency.Observe(m.takeoverLat.Seconds())
	holder := ""
	if m.lease != nil {
		holder = m.lease.Holder()
	}
	m.rec.Emit(obs.Event{Type: obs.EvTakeover, Src: holder,
		Attempt: int(m.takeoverEpoch), Dur: m.takeoverLat,
		Detail: "first dispatch after takeover"})
}
