package vine

import (
	"fmt"
	"testing"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/params"
)

// The vine-internal drain fallback and the pinned parameter must agree —
// cmd/vineworker advertises params.DefaultDrainGrace as its -drain-grace
// default and Worker.Drain(0) falls back to defaultDrainGrace.
func TestDrainGraceDefaultMirrorsParams(t *testing.T) {
	if defaultDrainGrace != params.DefaultDrainGrace {
		t.Fatalf("defaultDrainGrace = %v, params.DefaultDrainGrace = %v; mirrors diverged",
			defaultDrainGrace, params.DefaultDrainGrace)
	}
}

// A graceful drain with a generous window must evacuate the drainer's
// sole-replica output to the surviving worker and let the worker exit
// clean: zero lineage re-runs, bytes still fetchable.
func TestGracefulDrainOffloadsSoleReplica(t *testing.T) {
	rec := obs.NewRecorder()
	m, ws := newCluster(t, 2, 2, WithRecorder(rec))
	h, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("precious"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	cn, _ := h.Output("out")
	m.mu.Lock()
	var holderName string
	for wid := range m.files[cn].workers {
		holderName = m.workers[wid].name
	}
	m.mu.Unlock()
	if holderName == "" {
		t.Fatal("no worker holds the output")
	}
	var holder *Worker
	for _, w := range ws {
		if w.Name == holderName {
			holder = w
		}
	}

	holder.Drain(5 * time.Second)
	select {
	case <-holder.Done():
	case <-time.After(4 * time.Second):
		t.Fatal("drained worker did not exit inside its grace window")
	}

	st := m.Stats()
	if st.Preemptions != 1 {
		t.Fatalf("Preemptions = %d, want 1", st.Preemptions)
	}
	if st.SoleReplicaOffloads < 1 {
		t.Fatalf("SoleReplicaOffloads = %d, want >= 1", st.SoleReplicaOffloads)
	}
	if st.LineageReruns != 0 {
		t.Fatalf("LineageReruns = %d; a clean drain must not cost a re-run", st.LineageReruns)
	}
	data, err := m.FetchBytes(cn)
	if err != nil {
		t.Fatalf("FetchBytes after drain: %v", err)
	}
	if string(data) != "echo:precious" {
		t.Fatalf("offloaded bytes differ: %q", data)
	}
	if st := m.Stats(); st.LineageReruns != 0 {
		t.Fatalf("LineageReruns = %d after fetch; the offloaded replica should have served it", st.LineageReruns)
	}

	// The trace must show the drain lifecycle: notice, offload, release.
	var preempt, offload, released bool
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.EvWorkerPreempt:
			preempt = true
		case obs.EvWorkerDrain:
			if ev.Worker == holderName {
				offload = offload || containsStr(ev.Detail, "offload")
				released = released || containsStr(ev.Detail, "released")
			}
		}
	}
	if !preempt || !offload || !released {
		t.Fatalf("drain lifecycle incomplete in trace: preempt=%v offload=%v released=%v", preempt, offload, released)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// A drain whose grace window blows mid-task degrades to an ordinary
// worker loss: the in-flight task retries on a survivor and the workflow
// still completes.
func TestDrainBlownGraceRecoversViaRetry(t *testing.T) {
	m, ws := newCluster(t, 2, 1, WithMaxRetries(5))
	// Saturate both single-core workers so the drainer is guaranteed to
	// have a running task when its (tiny) grace expires.
	var hs []*TaskHandle
	for i := 0; i < 4; i++ {
		h, err := m.SubmitFunc(ModeFunctionCall, "testlib", "sleep50", []byte{byte(i)}, "out")
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	ws[0].Drain(time.Millisecond)
	select {
	case <-ws[0].Done():
	case <-time.After(3 * time.Second):
		t.Fatal("worker with blown grace did not exit")
	}
	for i, h := range hs {
		if err := h.Wait(10 * time.Second); err != nil {
			t.Fatalf("task %d after blown-grace preemption: %v", i, err)
		}
	}
	st := m.Stats()
	if st.Preemptions != 1 {
		t.Fatalf("Preemptions = %d, want 1", st.Preemptions)
	}
	if st.WorkersLost < 1 {
		t.Fatalf("WorkersLost = %d; a blown grace must surface as a loss", st.WorkersLost)
	}
}

// Draining workers must stop receiving work immediately: everything
// submitted after the notice lands on the survivor.
func TestDrainingWorkerReceivesNoNewWork(t *testing.T) {
	m, ws := newCluster(t, 2, 2)
	// Quiesce, then drain w0 with a long window so it stays connected
	// (nothing to evacuate, but the release needs a monitor sweep).
	m.mu.Lock()
	var wid0 int = -1
	for id, w := range m.workers {
		if w.name == ws[0].Name {
			wid0 = id
		}
	}
	m.mu.Unlock()
	ws[0].Drain(10 * time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		m.mu.Lock()
		draining := wid0 >= 0 && m.workers[wid0].draining
		m.mu.Unlock()
		if draining || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		h, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte(fmt.Sprintf("n%d", i)), "out")
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	ran := 0
	for _, rec := range m.tasks {
		if rec.state == TaskDone && rec.worker == wid0 {
			ran++
		}
	}
	m.mu.Unlock()
	if ran > 0 {
		t.Fatalf("%d tasks ran on the draining worker after its notice", ran)
	}
}

// Replication must never leave a hot file exclusively on preemptible
// workers while a stable one is available (the PR 9 placement rule).
func TestReplicationIncludesStableWorker(t *testing.T) {
	registerTestLib(t)
	m, err := NewManager(
		WithPeerTransfers(true),
		WithLibrary("testlib", true),
		WithReplication(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	stable := map[string]bool{"s0": true}
	for _, spec := range []struct {
		name        string
		preemptible bool
	}{{"s0", false}, {"p0", true}, {"p1", true}} {
		w, err := NewWorker(m.Addr(),
			WithName(spec.name),
			WithCores(2),
			WithCacheDir(t.TempDir()),
			WithPreemptible(spec.preemptible),
		)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := m.WaitForWorkers(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		h, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte(fmt.Sprintf("v%d", i)), "out")
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		cn, _ := h.Output("out")
		// Replication transfers are queued at completion and settle fast
		// on loopback; wait for the replica set to reach 2 copies.
		deadline := time.Now().Add(3 * time.Second)
		for m.ReplicaCount(cn) < 2 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		m.mu.Lock()
		onStable := false
		for wid := range m.files[cn].workers {
			if w := m.workers[wid]; w != nil && w.alive && stable[w.name] {
				onStable = true
			}
		}
		m.mu.Unlock()
		if !onStable {
			t.Fatalf("output %d replicated exclusively onto preemptible workers", i)
		}
	}
}

// WaitForWorkers must track the live count through a scale-down, not the
// cumulative join count: after 4 joins and 2 departures, waiting for 3
// times out and waiting for 2 returns immediately.
func TestWaitForWorkersTracksScaleDown(t *testing.T) {
	m, ws := newCluster(t, 4, 1)
	ws[0].Stop()
	ws[1].Stop()
	deadline := time.Now().Add(5 * time.Second)
	for m.WorkerCount() != 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := m.WorkerCount(); n != 2 {
		t.Fatalf("WorkerCount = %d after stopping 2 of 4", n)
	}
	if err := m.WaitForWorkers(3, 150*time.Millisecond); err == nil {
		t.Fatal("WaitForWorkers(3) returned nil with only 2 live workers — counting joins, not liveness")
	}
	if err := m.WaitForWorkers(2, time.Second); err != nil {
		t.Fatalf("WaitForWorkers(2) = %v with 2 live workers", err)
	}
}
