package vine

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
)

// Robustness: readFrame must reject arbitrary garbage with an error, never
// panic or over-allocate.
func TestReadFrameNeverPanics(t *testing.T) {
	check := func(seed uint16, n uint8) bool {
		rng := randx.New(uint64(seed) + 1)
		buf := make([]byte, int(n))
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		defer func() {
			if recover() != nil {
				t.Errorf("readFrame panicked on %x", buf)
			}
		}()
		_, _ = readFrame(bytes.NewReader(buf))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A frame with a plausible length header but corrupt JSON must error.
func TestReadFrameCorruptBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 5)
	buf.Write(hdr[:])
	buf.WriteString("{bad}")
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("corrupt JSON frame accepted")
	}
}
