package vine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
)

// Robustness: readFrame must reject arbitrary garbage with an error, never
// panic or over-allocate.
func TestReadFrameNeverPanics(t *testing.T) {
	check := func(seed uint16, n uint8) bool {
		rng := randx.New(uint64(seed) + 1)
		buf := make([]byte, int(n))
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		defer func() {
			if recover() != nil {
				t.Errorf("readFrame panicked on %x", buf)
			}
		}()
		_, _ = readFrame(bytes.NewReader(buf))
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A frame with a plausible header but corrupt JSON must error. The payload
// CRC is computed over the corrupt bytes, so this exercises the JSON layer
// behind an honest checksum.
func TestReadFrameCorruptBody(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("{bad}")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, castagnoli))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("corrupt JSON frame accepted")
	}
}

// encodeFrame round-trips a real message through writeFrame.
func encodeFrame(t *testing.T, m *message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Every truncation of a valid frame must fail with an error (io.EOF /
// io.ErrUnexpectedEOF), never a panic, never a spuriously decoded message.
func TestReadFrameTruncations(t *testing.T) {
	frame := encodeFrame(t, &message{Type: msgPutURL, PutURL: &putURLMsg{
		CacheName: "blob:deadbeef", Addr: "127.0.0.1:9", Size: 42,
	}})
	for cut := 0; cut < len(frame); cut++ {
		if _, err := readFrame(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(frame))
		}
	}
}

// Every single-byte flip of a valid frame must be rejected — a payload
// flip with the typed ErrCorruptFrame, a header flip with either
// ErrCorruptFrame or a framing error — and never decode into a message.
func TestReadFrameBitFlips(t *testing.T) {
	frame := encodeFrame(t, &message{Type: msgTransferDone, TransferDone: &transferDoneMsg{
		CacheName: "blob:cafe", OK: true, Size: 7,
	}})
	for pos := 0; pos < len(frame); pos++ {
		for _, mask := range []byte{0x01, 0x80, 0xA5} {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= mask
			m, err := readFrame(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("bit flip at %d (mask %02x) accepted: %+v", pos, mask, m)
			}
			if pos >= 8 && !errors.Is(err, ErrCorruptFrame) {
				t.Fatalf("payload flip at %d (mask %02x): got %v, want ErrCorruptFrame", pos, mask, err)
			}
		}
	}
}

// Random corruption of valid frames: quick-check that no mutation panics
// and payload-region mutations always carry the typed sentinel.
func TestReadFrameRandomCorruption(t *testing.T) {
	frame := encodeFrame(t, &message{Type: msgTaskDone, TaskDone: &taskDoneMsg{
		TaskID: 3, OK: true, OutputSizes: map[string]int64{"out:ab:hist": 128},
	}})
	check := func(seed uint16) bool {
		rng := randx.New(uint64(seed) + 7)
		mut := append([]byte(nil), frame...)
		flips := 1 + rng.Intn(4)
		payloadOnly := true
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(mut))
			if pos < 8 {
				payloadOnly = false
			}
			mut[pos] ^= byte(1 + rng.Intn(255))
		}
		m, err := readFrame(bytes.NewReader(mut))
		if err == nil {
			// All flips cancelled out (possible when the same position is
			// hit twice with the same mask) — must decode identically.
			return m != nil
		}
		if payloadOnly && !errors.Is(err, ErrCorruptFrame) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("payload corruption gave untyped error: %v", err)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
