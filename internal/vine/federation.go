package vine

// Federation: the root manager speaks the ordinary vine protocol downward
// to subordinate managers ("foremen"). A foreman registers over the same
// control channel as a worker (hello with Foreman=true) and is scheduled
// like one — the root's policy picks a shard, reserving shard capacity
// exactly as it reserves worker cores — but instead of dispatch+staging
// the root sends batched task *leases* and receives aggregated *reports*.
//
// Data never funnels through the root: when a lease's input lives in
// another shard (or on a flat worker), the root brokers a peer-transfer
// ticket — the source address plus size — and the destination shard pulls
// the bytes worker-to-worker over the existing CRC-checked transfer path.
// The receiving side of a ticket is an *external replica* in the foreman's
// local manager: an address outside its own cluster that serves the file.
//
// The recovery ladder climbs across the shard boundary in both directions:
// a shard that pulls bytes failing their checksum quarantines the external
// address locally, and when its sources are exhausted the lease fails fast
// with a Lost report; the root purges (and on corruption quarantines) the
// ticketed replica and re-runs the producer through the ordinary lineage
// rollback. A dead foreman is just a lost worker to the root: its leases
// requeue, its shard replicas vanish from the table, and the journal's
// lease records replay as re-runnable definitions after a root restart.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hepvine/internal/journal"
	"hepvine/internal/obs"
)

// ---- root side ----

// foremenActiveLocked counts live registered foremen (requires m.mu).
func (m *Manager) foremenActiveLocked() int {
	n := 0
	for _, w := range m.workers {
		if w.foreman && w.alive {
			n++
		}
	}
	return n
}

// replicaAddrLocked reports the transfer address serving name from w: a
// flat worker serves everything it caches from its own transfer server; a
// foreman serves each file from whichever shard-local address it reported.
// Empty means the replica is not addressable (and must not be ticketed).
func (m *Manager) replicaAddrLocked(w *workerState, name CacheName) string {
	if w.foreman {
		return w.shardAddr[name]
	}
	return w.transferAddr
}

// ticketAddrLocked picks the source address for a peer-transfer ticket:
// the lowest-id live replica outside the destination shard, falling back
// to the root's own store. Empty means no live source exists anywhere.
func (m *Manager) ticketAddrLocked(name CacheName, dest int) (string, int64) {
	fs := m.files[name]
	if fs == nil {
		return "", 0
	}
	ids := make([]int, 0, len(fs.workers))
	for wid := range fs.workers {
		ids = append(ids, wid)
	}
	sort.Ints(ids)
	for _, wid := range ids {
		if wid == dest {
			continue
		}
		if w := m.workers[wid]; w != nil && w.alive {
			if a := m.replicaAddrLocked(w, name); a != "" {
				return a, fs.size
			}
		}
	}
	if fs.onManager {
		return m.ts.Addr(), fs.size
	}
	return "", 0
}

// leaseLocked assigns rec to the foreman w: it builds peer-transfer
// tickets for every input the shard lacks, journals the lease (so a
// resumed root re-runs it if the foreman dies with it in flight), and
// buffers the lease for the batched flush at the end of the scheduling
// pass. If any input has no live source anywhere the assignment unwinds
// into the lineage ladder instead, exactly like a flat staging failure.
func (m *Manager) leaseLocked(rec *taskRecord, w *workerState) {
	if m.fenced {
		// Lease lost between ready and assignment: stay parked; the standby
		// that owns the leadership lease runs it from a resubmission.
		return
	}
	rootAddr := m.ts.Addr()
	var tickets []ticketWire
	for _, in := range rec.spec.Inputs {
		if w.cache[in.CacheName] {
			continue // the shard already holds it
		}
		addr, size := m.ticketAddrLocked(in.CacheName, w.id)
		if addr == "" {
			m.releaseWorkerLocked(rec)
			m.setTaskState(rec, TaskWaiting)
			m.reviveProducersLocked(rec)
			return
		}
		tickets = append(tickets, ticketWire{CacheName: string(in.CacheName), Addr: addr, Size: size})
	}
	m.observeTakeoverLocked()
	m.setTaskState(rec, TaskRunning)
	rec.handle.mu.Lock()
	if rec.handle.firstDispatch.IsZero() {
		rec.handle.firstDispatch = time.Now()
	}
	rec.handle.mu.Unlock()
	if d := m.deadlineFor(rec); d > 0 {
		rec.deadlineAt = time.Now().Add(d)
	} else {
		rec.deadlineAt = time.Time{}
	}
	m.rec.Emit(obs.Event{Type: obs.EvTaskStart, Task: rec.label(), Worker: w.name, Attempt: rec.retries})
	m.journalLocked(&journal.Record{Kind: journal.KindLease, TaskID: rec.id, Worker: w.name})
	for _, tk := range tickets {
		if tk.Addr == rootAddr {
			// Root-store staging: the one flow that still touches the
			// root's NIC (dataset files declared at the root).
			m.met.managerTransfers.Inc()
			m.met.managerBytes.Add(tk.Size)
			m.rec.Emit(obs.Event{Type: obs.EvTransferStart, Src: "manager",
				Dst: w.name, Bytes: tk.Size, Detail: tk.CacheName})
		} else {
			m.met.crossShard.Inc()
			m.met.crossShardBytes.Add(tk.Size)
			m.met.peerTransfers.Inc()
			m.met.peerBytes.Add(tk.Size)
			// Both events fire: transfer_start keeps the trace↔metrics
			// byte ledger exact on every deployment shape; the cross-shard
			// event carries the federation-specific detail.
			m.rec.Emit(obs.Event{Type: obs.EvTransferStart, Src: tk.Addr,
				Dst: w.name, Bytes: tk.Size, Detail: tk.CacheName})
			m.rec.Emit(obs.Event{Type: obs.EvCrossShardTransfer, Task: rec.label(),
				Worker: w.name, Src: tk.Addr, Bytes: tk.Size, Detail: tk.CacheName})
		}
	}
	e := leaseEntryWire{
		TaskID:  rec.id,
		Mode:    string(rec.spec.Mode),
		Library: rec.spec.Library,
		Func:    rec.spec.Func,
		Args:    rec.spec.Args,
		Cores:   rec.spec.Cores,
		Memory:  rec.spec.Memory,
		Tickets: tickets,
	}
	for _, in := range rec.spec.Inputs {
		e.Inputs = append(e.Inputs, fileRefWire{Name: in.Name, CacheName: string(in.CacheName)})
	}
	for _, out := range rec.spec.Outputs {
		e.Outputs = append(e.Outputs, fileRefWire{Name: out, CacheName: string(rec.handle.outputs[out])})
	}
	w.leaseBuf = append(w.leaseBuf, e)
}

// leaseFlushDelay is the microbatch window: a partial lease buffer waits
// this long for company before it is shipped, so a tight Submit loop —
// each call its own scheduling pass — still coalesces into full frames.
const leaseFlushDelay = time.Millisecond

// flushLeasesLocked ships every full lease frame immediately and arms a
// one-shot microbatch timer for whatever remains, so a burst of ready
// tasks costs the root frames proportional to shard count and batch
// size, not task count.
func (m *Manager) flushLeasesLocked() {
	pending := false
	for _, w := range m.workers {
		if !w.foreman || !w.alive || len(w.leaseBuf) == 0 {
			continue
		}
		for len(w.leaseBuf) >= defaultLeaseBatch {
			batch := w.leaseBuf[:defaultLeaseBatch:defaultLeaseBatch]
			w.leaseBuf = w.leaseBuf[defaultLeaseBatch:]
			m.sendLeaseBatchLocked(w, batch)
		}
		if len(w.leaseBuf) > 0 {
			pending = true
		}
	}
	if pending && !m.leaseFlushArmed {
		m.leaseFlushArmed = true
		time.AfterFunc(leaseFlushDelay, m.flushLeaseRemainder)
	}
}

// flushLeaseRemainder is the microbatch timer body: ship every partial
// lease buffer that is still waiting.
func (m *Manager) flushLeaseRemainder() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.leaseFlushArmed = false
	if m.stopped {
		return
	}
	for _, w := range m.workers {
		if !w.foreman || !w.alive || len(w.leaseBuf) == 0 {
			continue
		}
		buf := w.leaseBuf
		w.leaseBuf = nil
		for start := 0; start < len(buf); start += defaultLeaseBatch {
			end := start + defaultLeaseBatch
			if end > len(buf) {
				end = len(buf)
			}
			m.sendLeaseBatchLocked(w, buf[start:end])
		}
	}
}

func (m *Manager) sendLeaseBatchLocked(w *workerState, batch []leaseEntryWire) {
	m.controlFrameLocked()
	w.conn.send(&message{Type: msgLease, Lease: &leaseBatchMsg{Leases: batch}})
	m.met.leaseBatches.Inc()
	m.met.leaseGrants.Add(int64(len(batch)))
	m.rec.Emit(obs.Event{Type: obs.EvLeaseGrant, Worker: w.name, Attempt: len(batch)})
}

// onForemanReport folds one aggregated shard report: lost/corrupt source
// replicas are purged first (so a failed lease's retry never re-tickets
// them), each finished lease flows through the ordinary completion path,
// and the shard's replica addresses — outputs it produced, ticketed
// inputs it pulled and now caches — feed the cross-shard replica table.
func (m *Manager) onForemanReport(wid int, rep *foremanReportMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[wid]
	if w == nil || !w.foreman {
		return
	}
	m.controlFrameLocked()
	m.met.foremanReports.Inc()
	w.backlog = rep.Backlog
	for i := range rep.Done {
		d := &rep.Done[i]
		for _, lr := range d.Lost {
			m.purgeShardReplicaLocked(CacheName(lr.CacheName), lr.Addr, lr.Corrupt)
		}
		sizes := d.OutputSizes
		if d.OK {
			// Only outputs with a surviving shard address become replicas;
			// an addressless entry would satisfy hasSource while being
			// unticketable.
			sizes = make(map[string]int64, len(d.OutputSizes))
			for cn, size := range d.OutputSizes {
				if d.OutputAddrs[cn] != "" {
					sizes[cn] = size
				}
			}
		}
		m.onTaskDoneLocked(wid, &taskDoneMsg{
			TaskID: d.TaskID, OK: d.OK, Error: d.Error, OutputSizes: sizes,
			ExecNanos: d.ExecNanos, SetupNanos: d.SetupNanos,
		})
		if !w.alive {
			return // the completion handler may have torn the foreman down
		}
		for cn, addr := range d.OutputAddrs {
			m.recordShardReplicaLocked(w, CacheName(cn), d.OutputSizes[cn], addr)
		}
		for cn, addr := range d.InputAddrs {
			m.recordShardReplicaLocked(w, CacheName(cn), d.InputSizes[cn], addr)
		}
	}
	m.promoteWaitersLocked()
	m.scheduleLocked()
}

// recordShardReplicaLocked registers addr as the shard-local source for
// name under foreman w, updating the replica table, the scheduler's
// locality index, and the ticket address map (requires m.mu). Idempotent.
func (m *Manager) recordShardReplicaLocked(w *workerState, name CacheName, size int64, addr string) {
	if addr == "" || !w.alive || !w.foreman {
		return
	}
	fs := m.files[name]
	if fs == nil {
		return
	}
	if size > 0 && fs.size == 0 {
		fs.size = size
	}
	if !fs.workers[w.id] {
		fs.workers[w.id] = true
		w.cache[name] = true
		w.cacheBytes += fs.size
		m.sched.FileCached(w.id, string(name), fs.size)
	}
	w.shardAddr[name] = addr
}

// purgeShardReplicaLocked drops the replica of name served at addr after
// a shard reported it lost (source died) or corrupt (bytes failed their
// checksum). Corruption additionally quarantines: the holder is told to
// unlink so the bad bytes cannot resurface as a future ticket. The root's
// own store is left alone — it re-reads from disk or memory on the next
// fetch, so an in-flight corruption there clears itself on retry.
func (m *Manager) purgeShardReplicaLocked(name CacheName, addr string, corrupt bool) {
	if addr == "" || addr == m.ts.Addr() {
		return
	}
	fs := m.files[name]
	if fs == nil {
		return
	}
	for wid := range fs.workers {
		hw := m.workers[wid]
		if hw == nil || m.replicaAddrLocked(hw, name) != addr {
			continue
		}
		delete(fs.workers, wid)
		if hw.cache[name] {
			delete(hw.cache, name)
			hw.cacheBytes -= fs.size
			if hw.cacheBytes < 0 {
				hw.cacheBytes = 0
			}
		}
		if hw.foreman {
			delete(hw.shardAddr, name)
		}
		m.sched.FileEvicted(wid, string(name))
		if corrupt {
			m.met.corruptTransfers.Inc()
			m.rec.Emit(obs.Event{Type: obs.EvFileCorrupt, Src: hw.name,
				Detail: string(name) + ": cross-shard transfer failed checksum"})
			if hw.alive {
				hw.conn.send(&message{Type: msgUnlink, Unlink: &unlinkMsg{CacheName: string(name)}})
			}
		}
	}
}

// ShardInfo is an operational snapshot of one registered foreman.
type ShardInfo struct {
	Name        string
	Alive       bool
	Cores       int
	UsedCores   int
	Backlog     int // shard-reported leased-but-not-terminal count
	CachedFiles int // files the root can ticket out of this shard
	TasksDone   int // completions accepted from this shard
}

// FederationStats snapshots the root's view of its shard tree.
type FederationStats struct {
	Foremen         int // live foremen
	LeaseGrants     int
	LeaseBatches    int
	CrossShard      int // peer-transfer tickets brokered across shards
	CrossShardBytes int64
	Shards          []ShardInfo // every foreman ever registered, by name
}

// FederationStats reports lease/ticket counters and per-shard state.
func (m *Manager) FederationStats() FederationStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := FederationStats{
		LeaseGrants:     int(m.met.leaseGrants.Value()),
		LeaseBatches:    int(m.met.leaseBatches.Value()),
		CrossShard:      int(m.met.crossShard.Value()),
		CrossShardBytes: m.met.crossShardBytes.Value(),
	}
	for _, w := range m.workers {
		if !w.foreman {
			continue
		}
		if w.alive {
			st.Foremen++
		}
		st.Shards = append(st.Shards, ShardInfo{
			Name:        w.name,
			Alive:       w.alive,
			Cores:       w.cores,
			UsedCores:   w.usedCores,
			Backlog:     w.backlog,
			CachedFiles: len(w.cache),
			TasksDone:   w.doneCount,
		})
	}
	sort.Slice(st.Shards, func(i, j int) bool { return st.Shards[i].Name < st.Shards[j].Name })
	return st
}

// ---- shard side (a foreman's local manager) ----

// AddExternalReplica registers addr — an address outside this manager's
// own cluster, i.e. the payload of a peer-transfer ticket — as a source
// for name. The file becomes stageable exactly like a declared one: the
// transfer pump pulls it straight from the external address, rotating
// across registered addresses on retries and quarantining any that serve
// bytes failing their checksum.
func (m *Manager) AddExternalReplica(name CacheName, size int64, addr string) {
	if addr == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fs := m.files[name]
	if fs == nil {
		fs = &fileState{workers: make(map[int]bool), producer: -1}
		m.files[name] = fs
	}
	if size > 0 && fs.size == 0 {
		fs.size = size
	}
	fs.wasExt = true
	known := false
	for _, a := range fs.ext {
		if a == addr {
			known = true
			break
		}
	}
	for _, a := range fs.extBad {
		if a == addr {
			known = true // quarantined addresses stay dead
			break
		}
	}
	if !known {
		fs.ext = append(fs.ext, addr)
	}
	m.promoteWaitersLocked()
	m.scheduleLocked()
	m.notifyLocked()
}

// HasSource reports whether the manager currently knows a live source for
// name: its own store, a live worker replica, or an external address.
func (m *Manager) HasSource(name CacheName) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hasSourceLocked(name)
}

// ExternalQuarantined lists the external addresses of name quarantined
// after serving corrupt bytes — what a foreman reports upward so the root
// quarantines the same replica cluster-wide.
func (m *Manager) ExternalQuarantined(name CacheName) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs := m.files[name]
	if fs == nil || len(fs.extBad) == 0 {
		return nil
	}
	return append([]string(nil), fs.extBad...)
}

// ReplicaInfo reports an address inside this manager's own cluster
// currently serving name (lowest-id live worker replica, else the
// manager's own store) and the file's size. ok is false when the cluster
// cannot serve the file itself — external sources don't count.
func (m *Manager) ReplicaInfo(name CacheName) (addr string, size int64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs := m.files[name]
	if fs == nil {
		return "", 0, false
	}
	ids := make([]int, 0, len(fs.workers))
	for wid := range fs.workers {
		ids = append(ids, wid)
	}
	sort.Ints(ids)
	for _, wid := range ids {
		if w := m.workers[wid]; w != nil && w.alive && !w.foreman && w.transferAddr != "" {
			return w.transferAddr, fs.size, true
		}
	}
	if fs.onManager {
		return m.ts.Addr(), fs.size, true
	}
	return "", fs.size, false
}

// ReplicaInventory snapshots every file this cluster can serve itself,
// with a serving address — the inventory a reconnecting foreman re-offers
// the root so its shard's replicas are re-learned, not re-staged.
func (m *Manager) ReplicaInventory() []ForemanInventory {
	m.mu.Lock()
	names := make([]CacheName, 0, len(m.files))
	for cn := range m.files {
		names = append(names, cn)
	}
	m.mu.Unlock()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	var out []ForemanInventory
	for _, cn := range names {
		if addr, size, ok := m.ReplicaInfo(cn); ok {
			out = append(out, ForemanInventory{CacheName: cn, Size: size, Addr: addr})
		}
	}
	return out
}

// extAddrLocked rotates across a file's external addresses by attempt
// count, so a staging retry tries a different source shard.
func (m *Manager) extAddrLocked(fs *fileState, attempts int) string {
	if len(fs.ext) == 0 {
		return ""
	}
	return fs.ext[attempts%len(fs.ext)]
}

// quarantineExternalLocked moves an external address that served corrupt
// bytes to the quarantine list so it is never retried or re-registered.
func (m *Manager) quarantineExternalLocked(name CacheName, addr string) {
	fs := m.files[name]
	if fs == nil {
		return
	}
	for i, a := range fs.ext {
		if a == addr {
			fs.ext = append(fs.ext[:i], fs.ext[i+1:]...)
			fs.extBad = append(fs.extBad, addr)
			return
		}
	}
}

// ---- the uplink (foreman → root control channel) ----

// ForemanInventory names one shard replica in a foreman's registration:
// the cachename, its size, and the shard-local address serving it.
type ForemanInventory struct {
	CacheName CacheName
	Size      int64
	Addr      string
}

// LeaseTicket is the foreman-side view of a peer-transfer ticket.
type LeaseTicket struct {
	CacheName CacheName
	Addr      string
	Size      int64
}

// LeasedTask is one task leased to this foreman: the reconstructed spec
// (content addressing guarantees the shard derives the same output
// cachenames the root assigned), the root's expected output cachenames
// for verification, and the tickets for inputs the shard must pull.
type LeasedTask struct {
	TaskID  int
	Task    Task
	Outputs map[string]CacheName
	Tickets []LeaseTicket
}

// LostReplica reports a ticketed source the shard found dead or corrupt.
type LostReplica struct {
	CacheName string
	Addr      string
	Corrupt   bool
}

// LeaseResult is one finished lease, reported upward in the next batch.
type LeaseResult struct {
	TaskID      int
	OK          bool
	Err         string
	OutputSizes map[string]int64
	OutputAddrs map[string]string
	InputSizes  map[string]int64
	InputAddrs  map[string]string
	Lost        []LostReplica
	ExecNanos   int64
	SetupNanos  int64
}

// ForemanHello describes the shard to the root: aggregate capacity, not a
// single node's.
type ForemanHello struct {
	Name   string
	Cores  int
	Memory int64
}

// ForemanCallbacks are the link's upcalls. OnLease delivers each decoded
// lease batch; OnUnlink mirrors cluster-wide unlinks into the shard;
// OnKill fires when the root shuts the link down deliberately. Inventory,
// when set, is called before every (re)registration to snapshot the
// shard's current replicas.
type ForemanCallbacks struct {
	OnLease   func([]LeasedTask)
	OnUnlink  func(CacheName)
	OnKill    func()
	Inventory func() []ForemanInventory
}

// ForemanLink is a foreman's control channel to the root manager. It
// registers with Foreman=true, decodes lease batches into upcalls, ships
// aggregated reports, and redials through the root address list (primary
// plus WithManagers fallbacks) on connection loss — re-offering the
// shard's replica inventory so a root failover re-learns the shard.
type ForemanLink struct {
	name  string
	cores int
	mem   int64
	nc    netConfig
	rec   *obs.Recorder
	cb    ForemanCallbacks
	label string

	mu                sync.Mutex
	conn              *conn
	addrs             []string
	addrIdx           int
	stopped           bool
	redialC           chan struct{}
	reconnectAttempts int
	reconnectBackoff  time.Duration
	doneC             chan struct{}
}

// DialForeman connects a foreman's uplink to the root at addr and
// registers the shard. Options follow the worker's vocabulary:
// WithManagers adds fallback root addresses, WithReconnect sets the
// redial budget, WithRecorder attaches tracing.
func DialForeman(addr string, h ForemanHello, cb ForemanCallbacks, options ...Option) (*ForemanLink, error) {
	c := buildConfig(options)
	backoff := c.wrk.ReconnectBackoff
	if backoff <= 0 {
		backoff = defaultReconnectBackoff
	}
	addrs := []string{addr}
	for _, a := range c.wrk.Managers {
		dup := a == ""
		for _, have := range addrs {
			if have == a {
				dup = true
				break
			}
		}
		if !dup {
			addrs = append(addrs, a)
		}
	}
	if h.Name == "" {
		h.Name = "foreman"
	}
	l := &ForemanLink{
		name:              h.Name,
		cores:             h.Cores,
		mem:               h.Memory,
		nc:                c.netConfig(),
		rec:               c.rec,
		cb:                cb,
		label:             h.Name,
		addrs:             addrs,
		reconnectAttempts: c.wrk.ReconnectAttempts,
		reconnectBackoff:  backoff,
		doneC:             make(chan struct{}),
	}
	var cc *conn
	var dialErr error
	for i, a := range addrs {
		raw, err := l.nc.dial(a, l.label+"/uplink")
		if err == nil {
			cc = newConn(raw)
			l.addrIdx = i
			break
		}
		dialErr = err
	}
	if cc == nil {
		return nil, fmt.Errorf("vine: foreman connecting to root: %w", dialErr)
	}
	l.conn = cc
	cc.send(l.helloMsg())
	go l.readLoop(cc)
	return l, nil
}

// helloMsg builds the registration frame, refreshing the inventory.
func (l *ForemanLink) helloMsg() *message {
	var inv []inventoryEntry
	if l.cb.Inventory != nil {
		for _, e := range l.cb.Inventory() {
			inv = append(inv, inventoryEntry{CacheName: string(e.CacheName), Size: e.Size, Addr: e.Addr})
		}
	}
	return &message{Type: msgHello, Hello: &helloMsg{
		Name:      l.name,
		Cores:     l.cores,
		Memory:    l.mem,
		Foreman:   true,
		Inventory: inv,
	}}
}

// Report ships finished leases and the current backlog to the root.
// Sends on a dead connection are dropped; the redialed registration
// re-offers their output replicas through the inventory instead.
func (l *ForemanLink) Report(done []LeaseResult, backlog int) {
	rep := &foremanReportMsg{Backlog: backlog}
	for _, r := range done {
		d := leaseDoneWire{
			TaskID: r.TaskID, OK: r.OK, Error: r.Err,
			OutputSizes: r.OutputSizes, OutputAddrs: r.OutputAddrs,
			InputSizes: r.InputSizes, InputAddrs: r.InputAddrs,
			ExecNanos: r.ExecNanos, SetupNanos: r.SetupNanos,
		}
		for _, lr := range r.Lost {
			d.Lost = append(d.Lost, lostReplicaWire(lr))
		}
		rep.Done = append(rep.Done, d)
	}
	l.mu.Lock()
	cc := l.conn
	stopped := l.stopped
	l.mu.Unlock()
	if !stopped && cc != nil {
		cc.send(&message{Type: msgReport, Report: rep})
	}
}

// Close tears the uplink down without notifying the root: from the root's
// side this is a foreman death, which is the point — Crash paths reuse it.
func (l *ForemanLink) Close() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	cc := l.conn
	close(l.doneC)
	l.mu.Unlock()
	if cc != nil {
		cc.close()
	}
}

func (l *ForemanLink) readLoop(cc *conn) {
	for {
		msg, err := cc.recv()
		if err != nil {
			if l.reconnect(cc) {
				l.mu.Lock()
				cc = l.conn
				l.mu.Unlock()
				continue
			}
			return
		}
		switch msg.Type {
		case msgLease:
			if msg.Lease != nil && l.cb.OnLease != nil {
				l.cb.OnLease(decodeLeases(msg.Lease.Leases))
			}
		case msgUnlink:
			if msg.Unlink != nil && l.cb.OnUnlink != nil {
				l.cb.OnUnlink(CacheName(msg.Unlink.CacheName))
			}
		case msgPing:
			cc.send(&message{Type: msgPong})
		case msgKill:
			if l.cb.OnKill != nil {
				l.cb.OnKill()
			}
			l.Close()
			return
		}
	}
}

// reconnect redials the root address list after old died, single-flight,
// mirroring the worker's redial discipline: cycle from the last address
// known good, back off between attempts, re-register with a fresh
// inventory on success.
func (l *ForemanLink) reconnect(old *conn) bool {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return false
	}
	if l.conn != old {
		l.mu.Unlock()
		return true
	}
	if l.reconnectAttempts <= 0 {
		l.mu.Unlock()
		return false
	}
	if c := l.redialC; c != nil {
		l.mu.Unlock()
		<-c
		l.mu.Lock()
		ok := !l.stopped && l.conn != old
		l.mu.Unlock()
		return ok
	}
	done := make(chan struct{})
	l.redialC = done
	attempts, backoff := l.reconnectAttempts, l.reconnectBackoff
	addrs, start := l.addrs, l.addrIdx
	l.mu.Unlock()

	old.close()
	var nc *conn
	dialed := -1
	for i := 1; i <= attempts && nc == nil; i++ {
		select {
		case <-l.doneC:
		case <-time.After(backoff):
		}
		select {
		case <-l.doneC:
			// Closed while waiting; give up without dialing.
		default:
			addr := addrs[(start+i-1)%len(addrs)]
			raw, err := l.nc.dial(addr, l.label+"/uplink")
			if err == nil {
				nc = newConn(raw)
				dialed = (start + i - 1) % len(addrs)
			} else {
				l.rec.Emit(obs.Event{Type: obs.EvNetRetry, Worker: l.name, Attempt: i,
					Dur: backoff, Detail: "root redial " + addr + ": " + err.Error()})
			}
		}
	}

	l.mu.Lock()
	defer func() {
		l.redialC = nil
		close(done)
		l.mu.Unlock()
	}()
	if l.stopped || nc == nil {
		if nc != nil {
			nc.close()
		}
		return false
	}
	l.conn = nc
	l.addrIdx = dialed
	l.rec.Emit(obs.Event{Type: obs.EvWorkerJoin, Worker: l.name, Detail: "foreman uplink reconnected"})
	nc.send(l.helloMsg())
	return true
}

// decodeLeases reconstructs task specs from the wire. The rebuilt spec
// hashes to the same definition as the root's, so the shard's local
// manager derives identical content-addressed output cachenames — the
// invariant that makes cross-shard lineage recovery bit-identical.
func decodeLeases(wire []leaseEntryWire) []LeasedTask {
	out := make([]LeasedTask, 0, len(wire))
	for _, e := range wire {
		t := Task{
			Mode:    TaskMode(e.Mode),
			Library: e.Library,
			Func:    e.Func,
			Args:    e.Args,
			Cores:   e.Cores,
			Memory:  e.Memory,
		}
		for _, in := range e.Inputs {
			t.Inputs = append(t.Inputs, FileRef{Name: in.Name, CacheName: CacheName(in.CacheName)})
		}
		lt := LeasedTask{TaskID: e.TaskID, Task: t, Outputs: make(map[string]CacheName, len(e.Outputs))}
		for _, o := range e.Outputs {
			t.Outputs = append(t.Outputs, o.Name)
			lt.Outputs[o.Name] = CacheName(o.CacheName)
		}
		lt.Task = t
		for _, tk := range e.Tickets {
			lt.Tickets = append(lt.Tickets, LeaseTicket{CacheName: CacheName(tk.CacheName), Addr: tk.Addr, Size: tk.Size})
		}
		out = append(out, lt)
	}
	return out
}
