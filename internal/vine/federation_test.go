package vine

import (
	"bytes"
	"testing"
)

// ---- wire ----

func TestLeaseFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &message{Type: msgLease, Lease: &leaseBatchMsg{Leases: []leaseEntryWire{{
		TaskID: 42, Mode: "function-call", Library: "lib", Func: "f", Args: []byte("a"),
		Inputs:  []fileRefWire{{Name: "in", CacheName: "blob:abc"}},
		Outputs: []fileRefWire{{Name: "out", CacheName: "out:def:out"}},
		Cores:   2, Memory: 1 << 20,
		Tickets: []ticketWire{{CacheName: "blob:abc", Addr: "127.0.0.1:9999", Size: 77}},
	}}}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgLease || out.Lease == nil || len(out.Lease.Leases) != 1 {
		t.Fatalf("lease frame lost: %+v", out)
	}
	e := out.Lease.Leases[0]
	if e.TaskID != 42 || len(e.Tickets) != 1 || e.Tickets[0].Addr != "127.0.0.1:9999" || e.Tickets[0].Size != 77 {
		t.Fatalf("lease entry lost data: %+v", e)
	}
}

func TestReportFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &message{Type: msgReport, Report: &foremanReportMsg{
		Backlog: 3,
		Done: []leaseDoneWire{{
			TaskID: 7, OK: true,
			OutputSizes: map[string]int64{"out:x:o": 10},
			OutputAddrs: map[string]string{"out:x:o": "127.0.0.1:1234"},
			Lost:        []lostReplicaWire{{CacheName: "blob:dead", Addr: "127.0.0.1:6666", Corrupt: true}},
			ExecNanos:   5,
		}},
	}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgReport || out.Report == nil || out.Report.Backlog != 3 {
		t.Fatalf("report frame lost: %+v", out)
	}
	d := out.Report.Done[0]
	if !d.OK || d.OutputAddrs["out:x:o"] != "127.0.0.1:1234" || !d.Lost[0].Corrupt {
		t.Fatalf("report entry lost data: %+v", d)
	}
}

// TestDecodeLeaseCacheNameInvariant pins the federation's core identity:
// a lease decoded on the shard side rebuilds a task spec whose definition
// hash — and therefore whose content-addressed output cachenames — match
// what the root computed. Without this, shard re-execution would publish
// results under names the root never looks up.
func TestDecodeLeaseCacheNameInvariant(t *testing.T) {
	inputs := []FileRef{{Name: "in", CacheName: blobName([]byte("payload"))}}
	h := taskDefHash("function-call", "lib", "fn", []byte("args"), inputs)
	wire := leaseEntryWire{
		TaskID: 9, Mode: "function-call", Library: "lib", Func: "fn", Args: []byte("args"),
		Inputs:  []fileRefWire{{Name: "in", CacheName: string(inputs[0].CacheName)}},
		Outputs: []fileRefWire{{Name: "out", CacheName: string(outputName(h, "out"))}},
	}
	lts := decodeLeases([]leaseEntryWire{wire})
	if len(lts) != 1 {
		t.Fatalf("decoded %d leases", len(lts))
	}
	lt := lts[0]
	got := taskDefHash(string(lt.Task.Mode), lt.Task.Library, lt.Task.Func, lt.Task.Args, lt.Task.Inputs)
	if got != h {
		t.Fatalf("decoded spec hashes to %s, root computed %s", got, h)
	}
	if outputName(got, "out") != lt.Outputs["out"] {
		t.Fatalf("output cachename mismatch: %s vs %s", outputName(got, "out"), lt.Outputs["out"])
	}
}

// ---- external replicas (the shard side of a peer-transfer ticket) ----

func TestExternalReplicaLifecycle(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	cn := blobName([]byte("ticketed"))
	if m.HasSource(cn) {
		t.Fatal("unknown file has a source")
	}
	m.AddExternalReplica(cn, 99, "127.0.0.1:7001")
	m.AddExternalReplica(cn, 99, "127.0.0.1:7002")
	m.AddExternalReplica(cn, 99, "127.0.0.1:7001") // duplicate: ignored
	if !m.HasSource(cn) {
		t.Fatal("external replica does not count as a source")
	}
	m.mu.Lock()
	fs := m.files[cn]
	if len(fs.ext) != 2 || fs.size != 99 || !fs.wasExt {
		m.mu.Unlock()
		t.Fatalf("ext state: %+v", fs)
	}
	// Rotation: staging retries walk the address list.
	if a, b := m.extAddrLocked(fs, 0), m.extAddrLocked(fs, 1); a == b {
		m.mu.Unlock()
		t.Fatalf("no rotation: %s / %s", a, b)
	}
	m.quarantineExternalLocked(cn, "127.0.0.1:7001")
	m.mu.Unlock()

	bad := m.ExternalQuarantined(cn)
	if len(bad) != 1 || bad[0] != "127.0.0.1:7001" {
		t.Fatalf("quarantine list: %v", bad)
	}
	if !m.HasSource(cn) {
		t.Fatal("surviving external address should still be a source")
	}
	// A quarantined address must not resurrect through re-registration.
	m.AddExternalReplica(cn, 99, "127.0.0.1:7001")
	m.mu.Lock()
	n := len(m.files[cn].ext)
	m.mu.Unlock()
	if n != 1 {
		t.Fatalf("quarantined address resurrected: %d ext addrs", n)
	}
	m.mu.Lock()
	m.quarantineExternalLocked(cn, "127.0.0.1:7002")
	m.mu.Unlock()
	if m.HasSource(cn) {
		t.Fatal("all sources quarantined but HasSource still true")
	}
}

// TestReplicaInventoryServesManagerStore pins that files in the root
// store are offered in the reconnect inventory with the manager's own
// transfer address.
func TestReplicaInventoryServesManagerStore(t *testing.T) {
	m, err := NewManager()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	cn := m.DeclareBuffer([]byte("0123456789"))
	inv := m.ReplicaInventory()
	found := false
	for _, e := range inv {
		if e.CacheName == cn {
			found = true
			if e.Addr == "" || e.Size != 10 {
				t.Fatalf("inventory entry: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("declared file missing from inventory: %v", inv)
	}
	addr, size, ok := m.ReplicaInfo(cn)
	if !ok || addr == "" || size != 10 {
		t.Fatalf("ReplicaInfo = %s,%d,%v", addr, size, ok)
	}
}
