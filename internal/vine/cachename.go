package vine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
)

// Cachenames (§IV.B "Retaining Data"): every file in the system is named by
// content or by the definition of the task that produces it, never by an
// application-visible path. Consistent naming is what lets the manager
// treat replicas on different workers as interchangeable, schedule tasks
// where their inputs already live, and regenerate lost outputs by
// re-running the producing task — the re-executed task's outputs get the
// same cachename, so waiting consumers need no rewiring.
//
// Forms:
//
//	blob:<sha256>          content-addressed data (declared buffers/files)
//	out:<sha256>:<name>    the named output of the task whose definition
//	                       hashes to <sha256>

// CacheName identifies a file in the cluster.
type CacheName string

// Valid reports whether the cachename has a recognized form.
func (c CacheName) Valid() bool {
	s := string(c)
	switch {
	case strings.HasPrefix(s, "blob:"):
		return len(s) == 5+64
	case strings.HasPrefix(s, "out:"):
		rest := s[4:]
		i := strings.IndexByte(rest, ':')
		return i == 64 && len(rest) > 65
	default:
		return false
	}
}

// blobName content-addresses a byte slice.
func blobName(data []byte) CacheName {
	h := sha256.Sum256(data)
	return CacheName("blob:" + hex.EncodeToString(h[:]))
}

// fileBlobName content-addresses a file on disk by streaming its content.
func fileBlobName(path string) (CacheName, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return CacheName("blob:" + hex.EncodeToString(h.Sum(nil))), n, nil
}

// taskDefHash hashes the semantic definition of a task: mode, library,
// function, args, and input cachenames. Two tasks with the same definition
// produce identically named outputs.
func taskDefHash(mode, library, fn string, args []byte, inputs []FileRef) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", mode, library, fn)
	h.Write(args)
	h.Write([]byte{0})
	for _, in := range inputs {
		fmt.Fprintf(h, "%s=%s\x00", in.Name, in.CacheName)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// outputName derives the cachename of a task output.
func outputName(defHash, output string) CacheName {
	return CacheName("out:" + defHash + ":" + output)
}

// cachePathSafe converts a cachename to a filesystem-safe relative path.
func cachePathSafe(c CacheName) string {
	return strings.ReplaceAll(string(c), ":", "_")
}
