package vine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hepvine/internal/chaos"
	"hepvine/internal/journal"
	"hepvine/internal/obs"
)

// openJournal opens (or reopens) the run journal under dir.
func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	jr, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return jr
}

// durableCluster builds a manager journaled to runDir plus one persistent
// worker whose cache lives at runDir/w0 — the restartable unit the warm
// tests stop, mutate, and bring back.
func durableCluster(t *testing.T, runDir string, jr *journal.Journal, extra ...Option) (*Manager, *Worker) {
	t.Helper()
	registerTestLib(t)
	mgrOpts := append([]Option{
		WithPeerTransfers(true),
		WithLibrary("testlib", true),
		WithJournal(jr),
	}, extra...)
	m, err := NewManager(mgrOpts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	w, err := NewWorker(m.Addr(),
		WithName("w0"),
		WithCores(2),
		WithCacheDir(filepath.Join(runDir, "w0")),
		WithPersistentCache(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return m, w
}

func TestWarmRestartSkipsCompletedTask(t *testing.T) {
	runDir := t.TempDir()
	jr := openJournal(t, runDir)
	m1, w1 := durableCluster(t, runDir, jr)
	h, err := m1.SubmitFunc(ModeTask, "testlib", "echo", []byte("warm"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	m1.Stop()
	w1.Stop()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation: same journal, same worker cache dir. The
	// identical resubmission must dedupe against the replayed record
	// without running anything.
	jr2 := openJournal(t, runDir)
	defer jr2.Close()
	m2, _ := durableCluster(t, runDir, jr2)
	h2, err := m2.SubmitFunc(ModeTask, "testlib", "echo", []byte("warm"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if !h2.WarmHit() {
		t.Fatal("resubmission of a journaled task was not a warm hit")
	}
	if h2.State() != TaskDone {
		t.Fatalf("warm handle state = %v, want TaskDone", h2.State())
	}
	if got := fetchOutput(t, m2, h2, "out"); string(got) != "echo:warm" {
		t.Fatalf("warm output = %q", got)
	}
	st := m2.Stats()
	if st.TasksDone != 0 {
		t.Fatalf("warm restart re-executed %d tasks", st.TasksDone)
	}
	if st.WarmHits != 1 {
		t.Fatalf("WarmHits = %d, want 1", st.WarmHits)
	}
	if st.JournalReplayed == 0 {
		t.Fatal("no journal records replayed on restart")
	}
}

func TestWarmRestartLostOutputRegenerates(t *testing.T) {
	runDir := t.TempDir()
	jr := openJournal(t, runDir)
	m1, w1 := durableCluster(t, runDir, jr)
	h, err := m1.SubmitFunc(ModeTask, "testlib", "echo", []byte("lost"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	m1.Stop()
	w1.Stop()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// Wipe the worker cache: the journal says the task completed, but no
	// replica of its output survives anywhere.
	if err := os.RemoveAll(filepath.Join(runDir, "w0")); err != nil {
		t.Fatal(err)
	}

	jr2 := openJournal(t, runDir)
	defer jr2.Close()
	m2, _ := durableCluster(t, runDir, jr2)
	h2, err := m2.SubmitFunc(ModeTask, "testlib", "echo", []byte("lost"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if h2.WarmHit() {
		t.Fatal("warm hit claimed for an output with no surviving replica")
	}
	// Fetching rides the lineage ladder: the replayed producer re-runs.
	if got := fetchOutput(t, m2, h2, "out"); string(got) != "echo:lost" {
		t.Fatalf("regenerated output = %q", got)
	}
	// The replayed producer was already counted done in its first life, so
	// the regeneration surfaces as a lineage rerun rather than a fresh
	// completion.
	if st := m2.Stats(); st.LineageReruns < 1 {
		t.Fatalf("lost output did not re-execute its producer: %+v", st)
	}
}

func TestWarmRestartCompactedJournal(t *testing.T) {
	runDir := t.TempDir()
	jr := openJournal(t, runDir)
	m1, w1 := durableCluster(t, runDir, jr, WithJournalCompactEvery(2))
	args := []string{"a", "b", "c", "d", "e"}
	for _, a := range args {
		h, err := m1.SubmitFunc(ModeTask, "testlib", "echo", []byte(a), "out")
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	m1.Stop()
	w1.Stop()
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot+tail replay must be equivalent to the full log: every
	// resubmission warm-hits.
	jr2 := openJournal(t, runDir)
	defer jr2.Close()
	m2, _ := durableCluster(t, runDir, jr2)
	for _, a := range args {
		h, err := m2.SubmitFunc(ModeTask, "testlib", "echo", []byte(a), "out")
		if err != nil {
			t.Fatal(err)
		}
		if !h.WarmHit() {
			t.Fatalf("task %q not warm after compaction", a)
		}
	}
	if st := m2.Stats(); st.TasksDone != 0 || st.WarmHits != len(args) {
		t.Fatalf("after compaction: TasksDone = %d, WarmHits = %d, want 0 and %d",
			st.TasksDone, st.WarmHits, len(args))
	}
}

func TestPersistentCacheScrubDropsCorruptEntry(t *testing.T) {
	runDir := t.TempDir()
	registerTestLib(t)
	m1, err := NewManager(WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Stop()
	w1, err := NewWorker(m1.Addr(),
		WithName("w0"), WithCores(1),
		WithCacheDir(filepath.Join(runDir, "w0")),
		WithPersistentCache(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Stop()
	if err := m1.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	h, err := m1.SubmitFunc(ModeTask, "testlib", "echo", []byte("scrubme"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	names := w1.CacheNames()
	if len(names) == 0 {
		t.Fatal("no cached entries after a completed task")
	}
	m1.Stop()
	w1.Stop()

	// Flip one byte of one cached entry on disk; the rest stay intact.
	victim := names[0]
	path := filepath.Join(runDir, "w0", strings.ReplaceAll(string(victim), ":", "_"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	m2, err := NewManager(WithLibrary("testlib", true))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop()
	w2, err := NewWorker(m2.Addr(),
		WithName("w0"), WithCores(1),
		WithCacheDir(filepath.Join(runDir, "w0")),
		WithPersistentCache(true),
		WithRecorder(rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Stop()
	survivors := w2.CacheNames()
	for _, n := range survivors {
		if n == victim {
			t.Fatalf("corrupt entry %s survived the startup scrub", victim)
		}
	}
	if len(survivors) != len(names)-1 {
		t.Fatalf("scrub kept %d of %d entries, want %d", len(survivors), len(names), len(names)-1)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still on disk (err = %v)", err)
	}
	corrupt := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvFileCorrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("scrub dropped an entry without an EvFileCorrupt event")
	}
}

// TestWorkerReconnectRestoresReplicas is the regression test for the
// reconnect-with-empty-replica-view bug: when a worker's control
// connection dies and it redials under the same name, the manager must
// dedupe the stale registration and re-learn the worker's replicas from
// its inventory, so files cached only there stay fetchable without a
// lineage rerun.
func TestWorkerReconnectRestoresReplicas(t *testing.T) {
	registerTestLib(t)
	// Black-hole the worker's control connection for 200ms — long enough
	// for the manager's 150ms heartbeat timeout to declare it lost — then
	// let the redial through.
	plan := chaos.NewPlan(3).Add(
		chaos.Fault{Kind: chaos.KindPartition, Target: "w0/control", At: time.Millisecond, Dur: 200 * time.Millisecond},
	)
	defer plan.Stop()
	m, err := NewManager(
		WithLibrary("testlib", true),
		WithHeartbeat(20*time.Millisecond, 150*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	w, err := NewWorker(m.Addr(),
		WithName("w0"), WithCores(1),
		WithCacheDir(t.TempDir()),
		WithFaultInjector(plan),
		WithHeartbeat(20*time.Millisecond, 400*time.Millisecond),
		WithReconnect(40, 25*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	h, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("survivor"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Sever the control connection; the worker must redial and re-register
	// with its cache inventory.
	plan.Start()
	deadline := time.Now().Add(5 * time.Second)
	for w.Reconnects() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Reconnects() == 0 {
		t.Fatal("worker never reconnected after its control connection died")
	}
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The output produced before the cut lives only in w0's cache. If the
	// manager re-learned the replica from the reconnect inventory, this
	// fetch is a plain transfer; if it came back with an empty replica
	// view, the fetch would force a lineage rerun (or fail outright).
	if got := fetchOutput(t, m, h, "out"); string(got) != "echo:survivor" {
		t.Fatalf("post-reconnect fetch = %q", got)
	}
	st := m.Stats()
	if st.LineageReruns != 0 {
		t.Fatalf("fetch after reconnect forced %d lineage reruns, want 0", st.LineageReruns)
	}
	// A fresh task must also land on the reconnected worker.
	h2, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("after"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}
