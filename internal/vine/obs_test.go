package vine

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"hepvine/internal/obs"
)

// ---- retry failure history ----

func TestFailureHistoryRecorded(t *testing.T) {
	m, _ := newCluster(t, 1, 1, WithMaxRetries(3))
	h, err := m.SubmitFunc(ModeTask, "testlib", "fail", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	err = h.Wait(15 * time.Second)
	if err == nil {
		t.Fatal("failing task reported success")
	}
	// The terminal error carries the whole attempt history, not just the
	// last cause.
	if !strings.Contains(err.Error(), "history:") {
		t.Fatalf("terminal error lacks history: %v", err)
	}
	if !strings.Contains(err.Error(), "attempt 1:") {
		t.Fatalf("terminal error lacks first attempt: %v", err)
	}
	hist := h.FailureHistory()
	if len(hist) < 2 {
		t.Fatalf("failure history too short: %v", hist)
	}
	for i, entry := range hist {
		if !strings.Contains(entry, "deliberate failure") {
			t.Fatalf("history entry %d lacks cause: %q", i, entry)
		}
	}
	if !strings.HasPrefix(hist[0], "attempt 1:") {
		t.Fatalf("history does not start at attempt 1: %q", hist[0])
	}
}

func TestFailureHistoryBounded(t *testing.T) {
	m, _ := newCluster(t, 1, 1, WithMaxRetries(5), WithFailureHistory(2))
	h, err := m.SubmitFunc(ModeTask, "testlib", "fail", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(20 * time.Second); err == nil {
		t.Fatal("failing task reported success")
	}
	if hist := h.FailureHistory(); len(hist) != 2 {
		t.Fatalf("history not bounded to 2: %v", hist)
	}
}

// ---- trace invariants against a live run ----

// TestTraceInvariants drives a real loopback cluster — peer transfers, a
// worker kill, recovery — with one shared recorder across the manager and
// both workers, then checks the structural invariants every trace must
// satisfy regardless of scheduling nondeterminism.
func TestTraceInvariants(t *testing.T) {
	rec := obs.NewRecorder()
	m, ws := newCluster(t, 2, 1, WithRecorder(rec))

	// Producer → two consumers forces at least one peer transfer.
	p, err := m.SubmitFunc(ModeTask, "testlib", "bigout", nil, "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	out, _ := p.Output("out")
	var consumers []*TaskHandle
	for _, tag := range []string{"a", "b"} {
		h, err := m.Submit(Task{
			Mode: ModeTask, Library: "testlib", Func: "concat", Args: []byte(tag),
			Inputs:  []FileRef{{Name: "in", CacheName: out}},
			Outputs: []string{"out"},
		})
		if err != nil {
			t.Fatal(err)
		}
		consumers = append(consumers, h)
	}
	for _, h := range consumers {
		if err := h.Wait(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Kill a worker under running sleeps so the trace includes worker loss
	// and retries.
	h1, _ := m.SubmitFunc(ModeTask, "testlib", "sleep50", []byte("1"), "out")
	h2, _ := m.SubmitFunc(ModeTask, "testlib", "sleep50", []byte("2"), "out")
	time.Sleep(10 * time.Millisecond)
	ws[0].Stop()
	if err := h1.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h2.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	st := m.Stats()
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}

	// Invariant 1: every execution start is closed by a done, retry, or
	// terminal failure of the same task; nothing is left running.
	type counts struct{ start, done, retry, fail int }
	perTask := map[string]*counts{}
	get := func(task string) *counts {
		c := perTask[task]
		if c == nil {
			c = &counts{}
			perTask[task] = c
		}
		return c
	}
	var joins, losses int
	var transferBytes int64
	for _, ev := range events {
		switch ev.Type {
		case obs.EvTaskStart:
			get(ev.Task).start++
		case obs.EvTaskDone:
			get(ev.Task).done++
		case obs.EvTaskRetry:
			get(ev.Task).retry++
		case obs.EvTaskFail:
			get(ev.Task).fail++
		case obs.EvWorkerJoin:
			joins++
		case obs.EvWorkerLost:
			losses++
		case obs.EvTransferStart:
			transferBytes += ev.Bytes
		}
	}
	for task, c := range perTask {
		if c.start > c.done+c.retry+c.fail {
			t.Errorf("task %s: %d starts but only %d done + %d retry + %d fail",
				task, c.start, c.done, c.retry, c.fail)
		}
	}

	// Invariant 2: trace transfer bytes account exactly for the counter
	// totals (peer and manager paths are instrumented at the same points
	// the stats are).
	if want := st.PeerBytes + st.ManagerBytes; transferBytes != want {
		t.Errorf("transfer starts sum to %d bytes, stats say %d (peer %d + manager %d)",
			transferBytes, want, st.PeerBytes, st.ManagerBytes)
	}
	if st.PeerTransfers == 0 {
		t.Errorf("no peer transfers in stats: %+v", st)
	}

	// Invariant 3: membership events match the counters.
	if joins != 2 || losses != st.WorkersLost || losses != 1 {
		t.Errorf("joins=%d losses=%d, stats WorkersLost=%d", joins, losses, st.WorkersLost)
	}

	// Invariant 4: the trace replays into a drained timeline and survives
	// a JSONL round trip bit-for-bit.
	pts := obs.Timeline(events, 10*time.Millisecond)
	if len(pts) == 0 {
		t.Fatal("empty timeline")
	}
	final := pts[len(pts)-1]
	if final.Running != 0 || final.Waiting != 0 {
		t.Errorf("timeline did not drain: %+v", final)
	}
	if final.Done == 0 {
		t.Errorf("timeline saw no completions: %+v", final)
	}

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("JSONL round trip: %d events in, %d out", len(events), len(back))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d changed in round trip: %+v vs %+v", i, events[i], back[i])
		}
	}

	// The transfer matrix renders and includes a worker→worker edge.
	matrix := obs.TransferMatrix(events)
	peer := false
	for src, row := range matrix {
		for dst := range row {
			if src != "manager" && dst != "manager" {
				peer = true
			}
		}
	}
	if !peer {
		t.Errorf("no peer edge in transfer matrix: %v", matrix)
	}
}

// TestMetricsDump checks the manager's plain-text metrics exposition.
func TestMetricsDump(t *testing.T) {
	m, _ := newCluster(t, 1, 1)
	h, err := m.SubmitFunc(ModeTask, "testlib", "echo", []byte("hi"), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"vine_tasks_done_total 1",
		"vine_workers_joined_total 1",
		"vine_task_exec_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, text)
		}
	}
}
