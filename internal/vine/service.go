package vine

import (
	"errors"
	"fmt"
	"time"

	"hepvine/internal/obs"
)

// Service hooks: the exported surface the multi-tenant gate
// (internal/gate) builds on. Three capabilities live here:
//
//   - SubmitShared — submit-by-spec with cross-client result sharing: a
//     definition another client already submitted (this incarnation or a
//     replayed journal) is served from the existing execution instead of
//     scheduling a second one. Content-addressed task identity makes this
//     safe: identical definitions produce identically named outputs.
//   - Drain — stop admitting fresh work while in-flight tasks finish, the
//     first half of a graceful service shutdown (Stop syncs and exits).
//   - Introspection — Draining, InFlight, and TaskHandle.FirstDispatch
//     (manager.go), the facts a front door needs for admission decisions
//     and latency accounting.

// ErrDraining is returned by Submit/SubmitShared once Drain has been
// called: the manager finishes what it has but admits nothing new.
// Dedupe hits are still served — they schedule nothing.
var ErrDraining = errors.New("vine: manager draining")

// SubmitShared submits a task with cross-client result dedupe. If an
// identical definition (same mode, library, function, args, and input
// cachenames) requesting the same outputs was already submitted — by any
// client of this manager, or in a journaled previous incarnation — the
// existing handle is returned and shared reports true: nothing new is
// scheduled. A completed original with every output still live is a warm
// hit in the usual sense; a still-running original simply gains another
// waiter; a completed original whose outputs were lost regenerates
// through lineage on first fetch. Only a terminally failed original (or
// an output-set mismatch) falls through to a fresh submission.
//
// Callers that share handles must treat them as read-mostly: Wait, Done,
// Output, and the introspection getters are safe from any number of
// goroutines.
func (m *Manager) SubmitShared(t Task) (*TaskHandle, bool, error) {
	t, defHash, err := prepareTask(t)
	if err != nil {
		return nil, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, false, fmt.Errorf("vine: manager stopped")
	}
	if old, ok := m.live[defHash]; ok && old.state != TaskFailed && m.outputsMatchLocked(old, t.Outputs) {
		if old.state == TaskDone {
			warm := true
			for _, out := range t.Outputs {
				if !m.hasSourceLocked(old.handle.outputs[out]) {
					warm = false
					break
				}
			}
			detail := "cross-submit dedupe: all outputs live"
			if warm {
				old.handle.mu.Lock()
				old.handle.warm = true
				old.handle.mu.Unlock()
				m.met.warmHits.Inc()
			} else {
				detail = "cross-submit dedupe: outputs need lineage regeneration"
			}
			m.rec.Emit(obs.Event{Type: obs.EvWarmHit, Task: old.label(), Detail: defHash + ": " + detail})
			return old.handle, true, nil
		}
		// In flight: the second submitter becomes another waiter on the
		// one execution — the racing-cold-cluster case.
		m.rec.Emit(obs.Event{Type: obs.EvWarmHit, Task: old.label(), Detail: defHash + ": deduped onto in-flight execution"})
		return old.handle, true, nil
	}
	if h := m.warmFromReplayLocked(defHash, t.Outputs); h != nil {
		return h, true, nil
	}
	if m.draining {
		return nil, false, ErrDraining
	}
	h, err := m.submitFreshLocked(t, defHash)
	return h, false, err
}

// Drain stops admission — Submit and SubmitShared return ErrDraining for
// anything that would schedule fresh work, though dedupe hits are still
// served — and blocks until every submitted task has reached a terminal
// state or the timeout elapses (0 = wait forever). Draining is one-way;
// the usual sequel is Stop, which syncs the journal and exits.
func (m *Manager) Drain(timeout time.Duration) error {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	for {
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			return nil
		}
		pending := 0
		for _, rec := range m.tasks {
			if rec.state != TaskDone && rec.state != TaskFailed {
				pending++
			}
		}
		ch := m.change
		m.mu.Unlock()
		if pending == 0 {
			return nil
		}
		select {
		case <-ch:
		case <-deadline:
			return fmt.Errorf("vine: drain timed out with %d tasks in flight", pending)
		}
	}
}

// Draining reports whether Drain has been called.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// InFlight counts tasks not yet in a terminal state — the backlog an
// operator watches while a drain runs.
func (m *Manager) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, rec := range m.tasks {
		if rec.state != TaskDone && rec.state != TaskFailed {
			n++
		}
	}
	return n
}
