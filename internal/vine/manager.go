package vine

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hepvine/internal/journal"
	"hepvine/internal/obs"
	"hepvine/internal/randx"
	"hepvine/internal/sched"
)

// jitterStream is the randx stream id for retry-backoff jitter, distinct
// from other seeded streams so the same seed never correlates decisions.
const jitterStream = 417

// TaskState tracks a task through the manager.
type TaskState uint8

// Task lifecycle states on the manager.
const (
	// TaskWaiting tasks lack at least one input source (its producer is
	// being re-run after a loss).
	TaskWaiting TaskState = iota
	// TaskReady tasks can be scheduled.
	TaskReady
	// TaskStaging tasks are assigned; inputs are being transferred.
	TaskStaging
	// TaskRunning tasks are executing on a worker.
	TaskRunning
	// TaskDone tasks completed successfully.
	TaskDone
	// TaskFailed tasks exhausted their retries.
	TaskFailed
)

func (s TaskState) String() string {
	switch s {
	case TaskWaiting:
		return "waiting"
	case TaskReady:
		return "ready"
	case TaskStaging:
		return "staging"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	default:
		return fmt.Sprintf("TaskState(%d)", uint8(s))
	}
}

// FileRef binds a logical input name to a cachename.
type FileRef struct {
	Name      string
	CacheName CacheName
}

// Task describes one unit of work for Submit.
type Task struct {
	Mode    TaskMode
	Library string
	Func    string
	Args    []byte
	Inputs  []FileRef
	Outputs []string
	Cores   int
	// Memory is the task's RAM request in bytes (0 = none); the manager
	// packs tasks onto workers within both core and memory budgets.
	Memory int64
	// Queue names the submission queue (tenant) the task belongs to;
	// empty means the default queue. Queues share the cluster by the
	// weighted fair-share configured with WithQueue.
	Queue string
	// Priority orders tasks within their queue: higher runs first, equal
	// priorities run in submission order.
	Priority int
	// Deadline bounds one execution attempt; an attempt running longer is
	// fast-aborted and speculatively re-dispatched to a different worker,
	// first result winning. 0 falls back to the manager's WithTaskDeadline
	// default (itself 0 = unbounded).
	Deadline time.Duration
}

// TaskFailure is one failed attempt in a task's retained history: which
// attempt, on which worker, why, and how long the manager backed off
// before requeueing it.
type TaskFailure struct {
	Attempt int
	Worker  string
	Cause   string
	Backoff time.Duration
}

// String renders the attempt in the stable "attempt N: cause" form used
// by FailureHistory and terminal errors.
func (f TaskFailure) String() string {
	s := fmt.Sprintf("attempt %d: %s", f.Attempt, f.Cause)
	var extra []string
	if f.Worker != "" {
		extra = append(extra, "worker "+f.Worker)
	}
	if f.Backoff > 0 {
		extra = append(extra, "backoff "+f.Backoff.Round(time.Millisecond).String())
	}
	if len(extra) > 0 {
		s += " (" + strings.Join(extra, ", ") + ")"
	}
	return s
}

func formatFailures(fs []TaskFailure) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

// TaskHandle tracks a submitted task.
type TaskHandle struct {
	ID int

	mgr     *Manager
	outputs map[string]CacheName
	doneC   chan struct{}

	mu            sync.Mutex
	state         TaskState
	err           error
	execTime      time.Duration
	setup         time.Duration
	worker        string
	retries       int
	failures      []TaskFailure
	notified      bool
	warm          bool
	firstDispatch time.Time
}

// WarmHit reports whether this handle was satisfied from replayed journal
// state (a resubmission of an already-completed definition) rather than a
// fresh execution.
func (h *TaskHandle) WarmHit() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.warm
}

// FirstDispatch reports the wall-clock instant the task was first handed
// to a worker (zero while still queued, and forever zero for warm hits
// that never scheduled). The submit→first-dispatch gap is the service
// latency the gate's admission benchmark tracks.
func (h *TaskHandle) FirstDispatch() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.firstDispatch
}

// Output reports the cachename assigned to a named output.
func (h *TaskHandle) Output(name string) (CacheName, bool) {
	c, ok := h.outputs[name]
	return c, ok
}

// Done is closed when the task first completes or fails terminally.
func (h *TaskHandle) Done() <-chan struct{} { return h.doneC }

// Wait blocks until completion or the timeout elapses (0 = forever).
func (h *TaskHandle) Wait(timeout time.Duration) error {
	if timeout <= 0 {
		<-h.doneC
	} else {
		select {
		case <-h.doneC:
		case <-time.After(timeout):
			return fmt.Errorf("vine: task %d timed out after %v", h.ID, timeout)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// Err reports the terminal error, if any (nil while in flight).
func (h *TaskHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// State reports the current manager-side state.
func (h *TaskHandle) State() TaskState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// ExecTime reports the on-worker execution time of the successful run.
func (h *TaskHandle) ExecTime() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.execTime
}

// SetupTime reports the environment-construction time of the successful run
// (the "imports" cost; near zero for hoisted function calls after the first).
func (h *TaskHandle) SetupTime() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.setup
}

// Worker reports the name of the worker whose result was accepted, or ""
// while the task is still pending. After a lineage re-run the name keeps
// pointing at the original executor — the handle describes the first
// accepted completion, not the replica locations.
func (h *TaskHandle) Worker() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.worker
}

// Retries reports how many times the task was re-dispatched.
func (h *TaskHandle) Retries() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.retries
}

// FailureHistory reports the cause of each failed attempt so far, in
// order, bounded by the manager's WithFailureHistory limit. A task that
// exhausts its retries surfaces this history in its terminal error too.
func (h *TaskHandle) FailureHistory() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return formatFailures(h.failures)
}

// FailureRecords reports the typed per-attempt failure history: attempt
// number, the worker it failed on, the cause, and the backoff delay the
// manager applied before requeueing. Bounded by WithFailureHistory.
func (h *TaskHandle) FailureRecords() []TaskFailure {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]TaskFailure(nil), h.failures...)
}

// ManagerOptions configure a manager.
type ManagerOptions struct {
	// PeerTransfers enables worker-to-worker staging; disabled, every
	// input is served from the manager (the Work Queue data path).
	PeerTransfers bool
	// TransferCapPerSource bounds concurrent outbound transfers from one
	// worker (§IV.B: "the manager manages the number of concurrent peer
	// transfers"). Default 3. The manager itself is uncapped.
	TransferCapPerSource int
	// MaxRetries bounds per-task re-dispatches after worker failures or
	// transfer errors. Default 5.
	MaxRetries int
	// ReturnOutputs streams every task output back to the manager's own
	// store — the Work Queue data flow (§III.B): the manager becomes the
	// source for all staging, concentrating transfer load on its NIC.
	// TaskVine leaves outputs on workers and moves them peer-to-peer.
	ReturnOutputs bool
	// ReplicateOutputs keeps up to this many worker replicas of every task
	// output (§IV: the manager "compensates by replicating data or
	// re-running tasks" — with replicas, a preemption costs a transfer
	// instead of a re-execution). 0 or 1 disables replication.
	ReplicateOutputs int
	// InstallLibraries lists libraries (by registered name) to instantiate
	// on every worker, with hoisting on or off.
	InstallLibraries []LibrarySpec
}

// LibrarySpec names a library to install on workers.
type LibrarySpec struct {
	Name  string
	Hoist bool
}

// ManagerStats is the manager's view of the shared stats vocabulary.
//
// Deprecated: this is a thin alias for obs.Snapshot; new code should use
// obs.Snapshot directly.
type ManagerStats = obs.Snapshot

// WorkerStats is the worker's view of the shared stats vocabulary.
//
// Deprecated: this is a thin alias for obs.Snapshot; new code should use
// obs.Snapshot directly.
type WorkerStats = obs.Snapshot

// managerMetrics holds the manager's registry-backed instruments,
// prefetched so hot paths pay one atomic op per update.
type managerMetrics struct {
	tasksDone        *obs.Counter
	tasksFailed      *obs.Counter
	retries          *obs.Counter
	peerTransfers    *obs.Counter
	managerTransfers *obs.Counter
	peerBytes        *obs.Counter
	managerBytes     *obs.Counter
	workersJoined    *obs.Counter
	workersLost      *obs.Counter
	tasksAborted     *obs.Counter
	heartbeatMisses  *obs.Counter
	corruptTransfers *obs.Counter
	lineageReruns    *obs.Counter
	warmHits         *obs.Counter
	journalAppends   *obs.Counter
	journalBytes     *obs.Counter
	journalSnapshots *obs.Counter
	journalReplayed  *obs.Counter
	journalSkipped   *obs.Counter
	replaySkipped    *obs.Counter
	leaseLosses      *obs.Counter
	failovers        *obs.Counter
	preemptions      *obs.Counter
	soleOffloads     *obs.Counter
	leaseGrants      *obs.Counter
	leaseBatches     *obs.Counter
	foremanReports   *obs.Counter
	crossShard       *obs.Counter
	crossShardBytes  *obs.Counter
	poolSize         *obs.Gauge
	foremenActive    *obs.Gauge
	execSeconds      *obs.Histogram
	queueWait        *obs.Histogram
	takeoverLatency  *obs.Histogram
}

func newManagerMetrics(reg *obs.Registry) managerMetrics {
	return managerMetrics{
		tasksDone:        reg.Counter("vine_tasks_done_total"),
		tasksFailed:      reg.Counter("vine_tasks_failed_total"),
		retries:          reg.Counter("vine_task_retries_total"),
		peerTransfers:    reg.Counter("vine_peer_transfers_total"),
		managerTransfers: reg.Counter("vine_manager_transfers_total"),
		peerBytes:        reg.Counter("vine_peer_bytes_total"),
		managerBytes:     reg.Counter("vine_manager_bytes_total"),
		workersJoined:    reg.Counter("vine_workers_joined_total"),
		workersLost:      reg.Counter("vine_workers_lost_total"),
		tasksAborted:     reg.Counter("vine_task_aborts_total"),
		heartbeatMisses:  reg.Counter("vine_heartbeat_misses_total"),
		corruptTransfers: reg.Counter("vine_corrupt_transfers_total"),
		lineageReruns:    reg.Counter("vine_lineage_reruns_total"),
		warmHits:         reg.Counter("vine_warm_hits_total"),
		journalAppends:   reg.Counter("vine_journal_appends_total"),
		journalBytes:     reg.Counter("vine_journal_bytes_total"),
		journalSnapshots: reg.Counter("vine_journal_snapshots_total"),
		journalReplayed:  reg.Counter("vine_journal_replayed_records_total"),
		journalSkipped:   reg.Counter("vine_journal_skipped_frames_total"),
		replaySkipped:    reg.Counter("vine_journal_replay_skipped_total"),
		leaseLosses:      reg.Counter("vine_lease_losses_total"),
		failovers:        reg.Counter("vine_failovers_total"),
		preemptions:      reg.Counter("vine_preemptions_total"),
		soleOffloads:     reg.Counter("vine_sole_replica_offloads_total"),
		leaseGrants:      reg.Counter("vine_lease_grants_total"),
		leaseBatches:     reg.Counter("vine_lease_batches_total"),
		foremanReports:   reg.Counter("vine_foreman_reports_total"),
		crossShard:       reg.Counter("vine_cross_shard_transfers_total"),
		crossShardBytes:  reg.Counter("vine_cross_shard_bytes_total"),
		poolSize:         reg.Gauge("vine_pool_size"),
		foremenActive:    reg.Gauge("vine_foremen_active"),
		execSeconds:      reg.Histogram("vine_task_exec_seconds"),
		queueWait:        reg.Histogram("vine_task_queue_wait_seconds"),
		takeoverLatency:  reg.Histogram("vine_takeover_latency_seconds"),
	}
}

// workerState is the manager's view of one connected worker.
type workerState struct {
	id           int
	name         string
	conn         *conn
	transferAddr string
	cores        int
	usedCores    int
	memory       int64 // advertised bytes; 0 = unlimited
	usedMemory   int64
	cache        map[CacheName]bool
	cacheBytes   int64
	outbound     int // active transfers served by this worker
	alive        bool
	// Elasticity: preemptible is the hello-advertised attribute; a
	// draining worker announced a preemption notice and accepts no new
	// work. drainDeadline is when its grace window blows; drainReleased
	// flips once the manager has sent drain_done (so sweep sends it once).
	preemptible   bool
	draining      bool
	drainDeadline time.Time
	drainReleased bool
	// Liveness: lastSeen is bumped on every control-channel receive;
	// lastPing is when the manager last probed an otherwise-quiet link.
	lastSeen time.Time
	lastPing time.Time
	// pendingSources records in-flight inbound transfers and which worker
	// serves each, so source capacity frees on completion or loss.
	pendingSources []srcRecord
	// Federation: foreman marks a subordinate manager registered over the
	// same protocol. Its cache map tracks which files its whole shard
	// holds; shardAddr maps each of those to the shard-local transfer
	// address serving it (the payload of a peer-transfer ticket). leaseBuf
	// coalesces leases within one scheduling pass; backlog is the shard's
	// last-reported leased-but-not-terminal count.
	foreman   bool
	shardAddr map[CacheName]string
	leaseBuf  []leaseEntryWire
	backlog   int
	doneCount int // completions accepted from this worker or shard
}

// fileState tracks replicas of one cachename.
type fileState struct {
	size       int64
	workers    map[int]bool // worker ids holding it
	onManager  bool
	producer   int // task id that produces it; -1 for declared files
	mgrPath    string
	mgrData    []byte
	refWaiters []*taskRecord // staging tasks waiting for this file
	// External replicas (a foreman's view of a peer-transfer ticket):
	// addresses outside this manager's own cluster known to serve the
	// file. ext rotates on staging retries; extBad holds addresses
	// quarantined after serving bytes that failed their checksum. wasExt
	// marks a file that ever had external sources, so exhausting them
	// fast-fails the consumer (reporting the loss upward) instead of
	// waiting on a producer this manager never had.
	ext    []string
	extBad []string
	wasExt bool
}

// taskRecord is the manager-side task bookkeeping.
type taskRecord struct {
	id       int
	spec     Task
	handle   *TaskHandle
	state    TaskState
	worker   int // assigned worker id (staging/running)
	pending  map[CacheName]bool
	retries  int
	failures []TaskFailure // bounded per-attempt causes (see WithFailureHistory)
	defHash  string

	// Fast-abort bookkeeping: stragglers holds worker ids of aborted
	// attempts still running speculatively (first to finish wins);
	// deadlineAt is when the current running attempt expires (zero =
	// unbounded).
	stragglers map[int]bool
	deadlineAt time.Time

	// sq is the task's persistent scheduler-side record, created at
	// Submit and re-enqueued on every requeue.
	sq *sched.Task
}

func (rec *taskRecord) isStraggler(wid int) bool { return rec.stragglers[wid] }

// label is the task's identity in trace events.
func (rec *taskRecord) label() string { return strconv.Itoa(rec.id) }

// pendingTransfer is a queued staging operation. attempts counts how many
// times this file has already failed to reach this destination, so the
// failover ladder (retry from another replica) stays bounded. offload
// marks a drain evacuation — a sole-replica copy leaving a preempted
// worker — so completion is counted and traced as an offload rather
// than ordinary staging.
type pendingTransfer struct {
	name     CacheName
	dest     int // worker id
	source   int // worker id, or -1 for manager
	attempts int
	offload  bool
}

// maxTransferAttempts bounds per-file staging attempts across sources
// before the failure escalates to a task-level retry (and, if no clean
// replica remains, a lineage rollback). Mirrored as
// params.DefaultTransferAttempts.
const maxTransferAttempts = 3

// defaultLeaseBatch bounds how many leases ride in one frame to a
// foreman. Mirrored as params.DefaultLeaseBatch.
const defaultLeaseBatch = 64

// Manager is the TaskVine manager: it accepts workers, schedules tasks
// where their data lives, orchestrates peer transfers, and re-runs work
// lost to preempted workers.
type Manager struct {
	opts      ManagerOptions
	failLimit int // max retained failure causes per task

	rec *obs.Recorder
	reg *obs.Registry
	met managerMetrics

	ln net.Listener
	ts *transferServer
	nc netConfig

	// Liveness, retry, and recovery policy (immutable after construction).
	hbInterval      time.Duration
	hbTimeout       time.Duration
	taskDeadline    time.Duration
	backoffBase     time.Duration
	backoffMax      time.Duration
	recoveryTimeout time.Duration
	ctrlOverhead    time.Duration // modelled cost per task-path control frame

	stopC chan struct{} // closed by Stop; exits the monitor goroutine

	start time.Time // epoch for queue-wait accounting

	// Durability (see journal.go). jr is the attached run journal (nil =
	// durability off); replayed indexes journal-materialized completed
	// tasks by definition hash for the warm Submit path; journalDones
	// counts journaled completions toward the next auto-compaction.
	jr           *journal.Journal
	compactEvery int
	replayed     map[string]*taskRecord
	journalDones int

	// Service hooks (see service.go). live indexes every task submitted in
	// this incarnation by definition hash, so SubmitShared can dedupe a
	// second client's identical submission onto the first's execution;
	// draining (one-way) refuses fresh work while in-flight tasks finish.
	live     map[string]*taskRecord
	draining bool

	// Availability (see ha.go). lease is the leadership lease this manager
	// holds (nil = HA off); preState is a follower-built journal fold a
	// standby hands over so takeover skips re-reading the log;
	// takeoverFrom/takeoverEpoch mark when and under which fencing epoch
	// this manager assumed a dead primary's role.
	lease         Lease
	preState      *ReplayState
	takeoverFrom  time.Time
	takeoverEpoch uint64

	mu        sync.Mutex
	change    chan struct{} // closed+replaced on any state change (broadcast)
	rng       *randx.RNG    // retry jitter; guarded by mu
	workers   map[int]*workerState
	files     map[CacheName]*fileState
	tasks     map[int]*taskRecord
	waiting   map[int]*taskRecord // tasks in TaskWaiting, indexed so completions don't scan the whole table
	sched     *sched.Scheduler    // ready set + worker index; guarded by mu
	queueMet  map[string]*obs.Counter
	completed []int // task ids completed but not yet returned by WaitAny
	queuedTx  []pendingTransfer
	nextWID   int
	nextTID   int
	stopped   bool
	// leaseFlushArmed is true while the one-shot lease microbatch timer
	// is pending (see flushLeasesLocked).
	leaseFlushArmed bool
	// fenced is set (one-way) when the leadership lease is lost: the
	// manager stays up for queries but never dispatches again, so a
	// paused-then-resumed old primary cannot split-brain the cluster.
	fenced      bool
	takeoverLat time.Duration // lease expiry → first dispatch; 0 until observed
}

// notifyLocked wakes every goroutine blocked in WaitAny/WaitForWorkers by
// closing the current change channel and installing a fresh one — the
// channel-broadcast idiom, replacing the former sync.Cond (whose lack of
// a timed wait forced busy-polling).
func (m *Manager) notifyLocked() {
	close(m.change)
	m.change = make(chan struct{})
}

// defaultFailureHistory bounds the per-task failure causes retained for
// diagnostics unless WithFailureHistory overrides it.
const defaultFailureHistory = 8

// NewManager starts a manager listening on a loopback port, configured
// by functional options (WithPeerTransfers, WithMaxRetries,
// WithRecorder, ...). Worker-only options are ignored.
func NewManager(options ...Option) (*Manager, error) {
	c := buildConfig(options)
	opts := c.mgr
	if opts.TransferCapPerSource <= 0 {
		opts.TransferCapPerSource = 3
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 5
	}
	reg := obs.NewRegistry()
	m := &Manager{
		opts:            opts,
		failLimit:       c.failureHistory,
		rec:             c.rec,
		reg:             reg,
		met:             newManagerMetrics(reg),
		nc:              c.netConfig(),
		hbInterval:      c.hbInterval,
		ctrlOverhead:    c.controlOverhead,
		hbTimeout:       c.hbTimeout,
		taskDeadline:    c.taskDeadline,
		backoffBase:     c.backoffBase,
		backoffMax:      c.backoffMax,
		recoveryTimeout: c.recoveryTimeout,
		stopC:           make(chan struct{}),
		change:          make(chan struct{}),
		rng:             randx.NewStream(c.retrySeed, jitterStream),
		workers:         make(map[int]*workerState),
		files:           make(map[CacheName]*fileState),
		tasks:           make(map[int]*taskRecord),
		waiting:         make(map[int]*taskRecord),
		sched:           sched.New(c.schedPolicy, c.queues...),
		queueMet:        make(map[string]*obs.Counter),
		start:           time.Now(),
		jr:              c.jr,
		compactEvery:    c.journalCompactEvery,
		replayed:        make(map[string]*taskRecord),
		live:            make(map[string]*taskRecord),
		lease:           c.lease,
		preState:        c.replayState,
		takeoverFrom:    c.takeoverFrom,
		takeoverEpoch:   c.takeoverEpoch,
	}
	// Replay the journal before anything can connect or submit: the replay
	// runs single-threaded over fresh state, so no locking is needed, and a
	// resumed manager starts life already knowing every completed task.
	if m.jr != nil || m.preState != nil {
		warmable, err := m.replayJournal()
		if err != nil {
			return nil, fmt.Errorf("vine: journal replay: %w", err)
		}
		if m.preState != nil {
			m.rec.Emit(obs.Event{Type: obs.EvManagerResume, Detail: fmt.Sprintf(
				"%d records folded by standby tail, %d tasks warmable",
				m.preState.Applied(), warmable)})
		} else {
			st := m.jr.Stats()
			m.rec.Emit(obs.Event{Type: obs.EvManagerResume, Detail: fmt.Sprintf(
				"%d records replayed, %d frames skipped, %d torn tails, %d tasks warmable",
				st.Replayed, st.Skipped, st.TornTails, warmable)})
		}
	}
	ts, err := newTransferServer(m, m.nc, "manager/transfer")
	if err != nil {
		return nil, err
	}
	m.ts = ts
	addr := c.listenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		ts.close()
		return nil, err
	}
	m.ln = m.nc.listen(ln, "manager/control")
	if m.takeoverEpoch > 0 {
		m.met.failovers.Inc()
		m.rec.Emit(obs.Event{Type: obs.EvManagerResume, Detail: fmt.Sprintf(
			"takeover epoch %d listening on %s", m.takeoverEpoch, m.ln.Addr())})
	}
	if m.lease != nil {
		go m.watchLease()
	}
	go m.acceptLoop()
	go m.monitor()
	return m, nil
}

// Addr reports the manager's control address for workers to dial.
func (m *Manager) Addr() string { return m.ln.Addr().String() }

// Stop shuts the manager down and disconnects workers. Tasks still in
// flight have their handles failed so blocked Wait calls return; with a
// journal attached the log is synced first, so a later resume sees
// everything this run completed. Acquiring m.mu drains any in-flight
// Submit or completion handler before stopped is set, and journalLocked
// refuses appends afterwards — so the sync below is ordered after the
// last append that will ever happen (see journalLocked).
func (m *Manager) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	ws := make([]*workerState, 0, len(m.workers))
	for _, w := range m.workers {
		ws = append(ws, w)
	}
	m.failPendingLocked(errors.New("vine: manager stopped"))
	m.notifyLocked()
	close(m.stopC)
	m.mu.Unlock()
	if m.jr != nil {
		m.jr.Sync()
	}
	for _, w := range ws {
		w.conn.send(&message{Type: msgKill})
		w.conn.close()
	}
	m.ln.Close()
	m.ts.close()
}

// Stats snapshots manager counters into the shared obs.Snapshot
// vocabulary.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		TasksDone:           int(m.met.tasksDone.Value()),
		TasksFailed:         int(m.met.tasksFailed.Value()),
		Retries:             int(m.met.retries.Value()),
		PeerTransfers:       int(m.met.peerTransfers.Value()),
		ManagerTransfers:    int(m.met.managerTransfers.Value()),
		PeerBytes:           m.met.peerBytes.Value(),
		ManagerBytes:        m.met.managerBytes.Value(),
		WorkersLost:         int(m.met.workersLost.Value()),
		TasksAborted:        int(m.met.tasksAborted.Value()),
		HeartbeatMisses:     int(m.met.heartbeatMisses.Value()),
		CorruptTransfers:    int(m.met.corruptTransfers.Value()),
		LineageReruns:       int(m.met.lineageReruns.Value()),
		Preemptions:         int(m.met.preemptions.Value()),
		SoleReplicaOffloads: int(m.met.soleOffloads.Value()),
		JournalAppends:      int(m.met.journalAppends.Value()),
		JournalReplayed:     int(m.met.journalReplayed.Value()),
		WarmHits:            int(m.met.warmHits.Value()),
	}
}

// Metrics exposes the manager's metrics registry.
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// Recorder reports the attached trace recorder (nil when tracing is
// disabled).
func (m *Manager) Recorder() *obs.Recorder { return m.rec }

// WriteMetrics dumps all manager metrics as plain text, one metric per
// line in the /metrics exposition style.
func (m *Manager) WriteMetrics(w io.Writer) error { return m.reg.WriteText(w) }

// WorkerCount reports live workers.
func (m *Manager) WorkerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveWorkersLocked()
}

// liveWorkersLocked counts currently-alive workers (requires m.mu) — the
// value behind WaitForWorkers and the vine_pool_size gauge. Dead entries
// linger in m.workers for history, so this is a filter, not a len().
func (m *Manager) liveWorkersLocked() int {
	n := 0
	for _, w := range m.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// WaitForWorkers blocks until n workers are connected or the timeout
// elapses. It parks on the manager's change broadcast rather than
// polling, so joins are observed immediately.
func (m *Manager) WaitForWorkers(n int, timeout time.Duration) error {
	t := time.NewTimer(timeout)
	defer t.Stop()
	for {
		m.mu.Lock()
		count := 0
		for _, w := range m.workers {
			if w.alive {
				count++
			}
		}
		ch := m.change
		m.mu.Unlock()
		if count >= n {
			return nil
		}
		select {
		case <-ch:
		case <-t.C:
			return fmt.Errorf("vine: only %d of %d workers after %v", m.WorkerCount(), n, timeout)
		}
	}
}

// openCache implements transferSource over the manager's declared files.
func (m *Manager) openCache(name CacheName) (io.ReadCloser, int64, error) {
	m.mu.Lock()
	fs, ok := m.files[name]
	if !ok || !fs.onManager {
		m.mu.Unlock()
		return nil, 0, fmt.Errorf("not on manager: %s", name)
	}
	path, data, size := fs.mgrPath, fs.mgrData, fs.size
	m.mu.Unlock()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		return f, size, nil
	}
	return io.NopCloser(bytes.NewReader(data)), size, nil
}

// DeclareBuffer registers in-memory data as a cluster file served by the
// manager. Content-addressed: declaring identical data twice yields the
// same cachename.
func (m *Manager) DeclareBuffer(data []byte) CacheName {
	name := blobName(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if fs, ok := m.files[name]; ok {
		hadSource := fs.onManager
		fs.onManager = true
		if fs.mgrData == nil && fs.mgrPath == "" {
			fs.mgrData = append([]byte(nil), data...)
			fs.size = int64(len(data))
		}
		if !hadSource {
			m.journalLocked(declRecord(name, fs))
		}
		return name
	}
	fs := &fileState{
		size:      int64(len(data)),
		workers:   make(map[int]bool),
		onManager: true,
		producer:  -1,
		mgrData:   append([]byte(nil), data...),
	}
	m.files[name] = fs
	m.journalLocked(declRecord(name, fs))
	return name
}

// DeclareFile registers an on-disk file as a cluster file served by the
// manager (the staging path for dataset files on shared storage).
func (m *Manager) DeclareFile(path string) (CacheName, error) {
	name, size, err := fileBlobName(path)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if fs, ok := m.files[name]; ok {
		hadSource := fs.onManager
		fs.onManager = true
		if fs.mgrPath == "" && fs.mgrData == nil {
			fs.mgrPath = path
			fs.size = size
		}
		if !hadSource {
			m.journalLocked(declRecord(name, fs))
		}
		return name, nil
	}
	fs := &fileState{
		size:      size,
		workers:   make(map[int]bool),
		onManager: true,
		producer:  -1,
		mgrPath:   path,
	}
	m.files[name] = fs
	m.journalLocked(declRecord(name, fs))
	return name, nil
}

// prepareTask validates and normalizes a task spec and computes its
// definition hash. Shared by Submit and SubmitShared.
func prepareTask(t Task) (Task, string, error) {
	if t.Mode == "" {
		t.Mode = ModeTask
	}
	if t.Mode != ModeTask && t.Mode != ModeFunctionCall {
		return t, "", fmt.Errorf("vine: unknown mode %q", t.Mode)
	}
	if t.Library == "" || t.Func == "" {
		return t, "", fmt.Errorf("vine: task needs library and function names")
	}
	if _, err := lookupLibrary(t.Library); err != nil {
		return t, "", err
	}
	if t.Cores <= 0 {
		t.Cores = 1
	}
	seen := map[string]bool{}
	for _, in := range t.Inputs {
		if in.Name == "" || !in.CacheName.Valid() {
			return t, "", fmt.Errorf("vine: invalid input ref %+v", in)
		}
		if seen[in.Name] {
			return t, "", fmt.Errorf("vine: duplicate input name %q", in.Name)
		}
		seen[in.Name] = true
	}
	return t, taskDefHash(string(t.Mode), t.Library, t.Func, t.Args, t.Inputs), nil
}

// Submit enqueues a task and returns its handle. Output cachenames are
// assigned immediately from the task definition hash, so dependent tasks
// can be submitted before this one runs.
func (m *Manager) Submit(t Task) (*TaskHandle, error) {
	t, defHash, err := prepareTask(t)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return nil, fmt.Errorf("vine: manager stopped")
	}
	if h := m.warmFromReplayLocked(defHash, t.Outputs); h != nil {
		return h, nil
	}
	if m.draining {
		return nil, ErrDraining
	}
	return m.submitFreshLocked(t, defHash)
}

// warmFromReplayLocked is the journal warm path: a journal-resumed manager
// already holds this definition completed. If the requested outputs are
// exactly the replayed ones and none has been unlinked, hand back the done
// handle — the task never re-executes. It's a warm *hit* only when every
// output still has a live source; otherwise the bytes regenerate through
// lineage on first consumer access, which still beats re-running the whole
// graph. Returns nil when the definition has no replayed completion.
func (m *Manager) warmFromReplayLocked(defHash string, outputs []string) *TaskHandle {
	old, ok := m.replayed[defHash]
	if !ok || old.state != TaskDone || !m.outputsMatchLocked(old, outputs) {
		return nil
	}
	warm := true
	for _, out := range outputs {
		if !m.hasSourceLocked(old.handle.outputs[out]) {
			warm = false
			break
		}
	}
	detail := "all outputs live"
	if warm {
		old.handle.mu.Lock()
		old.handle.warm = true
		old.handle.mu.Unlock()
		m.met.warmHits.Inc()
	} else {
		detail = "outputs need lineage regeneration"
	}
	m.rec.Emit(obs.Event{Type: obs.EvWarmHit, Task: old.label(), Detail: defHash + ": " + detail})
	return old.handle
}

// submitFreshLocked creates and enqueues a new task record for a prepared
// spec, registering it in the live definition index for cross-client
// dedupe (requires m.mu).
func (m *Manager) submitFreshLocked(t Task, defHash string) (*TaskHandle, error) {
	h := &TaskHandle{
		mgr:     m,
		outputs: make(map[string]CacheName, len(t.Outputs)),
		doneC:   make(chan struct{}),
	}
	id := m.nextTID
	m.nextTID++
	h.ID = id
	rec := &taskRecord{id: id, spec: t, handle: h, worker: -1, defHash: defHash}
	for _, out := range t.Outputs {
		cn := outputName(defHash, out)
		h.outputs[out] = cn
		if _, exists := m.files[cn]; !exists {
			m.files[cn] = &fileState{workers: make(map[int]bool), producer: id}
		} else {
			m.files[cn].producer = id
		}
	}
	// Inputs must be declared files or outputs of submitted tasks.
	for _, in := range t.Inputs {
		if _, ok := m.files[in.CacheName]; !ok {
			return nil, fmt.Errorf("vine: input %s (%s) is neither declared nor produced by a submitted task", in.Name, in.CacheName)
		}
	}
	m.tasks[id] = rec
	m.live[defHash] = rec
	inputs := make([]string, len(t.Inputs))
	for i, in := range t.Inputs {
		inputs[i] = string(in.CacheName)
	}
	rec.sq = &sched.Task{
		ID: rec.label(), Queue: t.Queue, Priority: t.Priority,
		Cores: t.Cores, Memory: t.Memory, Inputs: inputs,
	}
	m.rec.Emit(obs.Event{Type: obs.EvTaskSubmit, Task: rec.label(), Detail: t.Library + "/" + t.Func})
	m.journalLocked(taskDefRecord(rec))
	if m.inputsAvailableLocked(rec) {
		m.enqueueReadyLocked(rec)
	} else {
		// An input may already have been lost with its worker (all its
		// replicas died before this submission): re-run producers now,
		// or the task waits forever.
		m.setTaskState(rec, TaskWaiting)
		m.reviveProducersLocked(rec)
	}
	m.scheduleLocked()
	return h, nil
}

// SubmitFunc is a convenience Submit for a no-input function call.
func (m *Manager) SubmitFunc(mode TaskMode, library, fn string, args []byte, outputs ...string) (*TaskHandle, error) {
	return m.Submit(Task{Mode: mode, Library: library, Func: fn, Args: args, Outputs: outputs})
}

// FetchBytes retrieves a file from the cluster: from the manager's own
// store if present, else from any worker replica. When every replica is
// gone — the classic "the preempted worker held the only copy" — it
// triggers a lineage rollback of the producer and waits (bounded by
// WithRecoveryTimeout) for the regenerated bytes, so callers like the
// daskvine bridge ride through worker loss instead of erroring. A fetch
// whose payload fails its checksum quarantines that replica and retries
// from another, falling back to rollback when no clean copy remains.
func (m *Manager) FetchBytes(name CacheName) ([]byte, error) {
	deadline := time.Now().Add(m.recoveryTimeout)
	badFetches := 0
	for {
		m.mu.Lock()
		if m.stopped {
			m.mu.Unlock()
			return nil, fmt.Errorf("vine: manager stopped")
		}
		fs, ok := m.files[name]
		if !ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("vine: unknown file %s", name)
		}
		if fs.onManager {
			path, data := fs.mgrPath, fs.mgrData
			m.mu.Unlock()
			if path != "" {
				return os.ReadFile(path)
			}
			return append([]byte(nil), data...), nil
		}
		addr, src, srcName := "", -1, ""
		ids := make([]int, 0, len(fs.workers))
		for wid := range fs.workers {
			ids = append(ids, wid)
		}
		sort.Ints(ids)
		for _, wid := range ids {
			if w := m.workers[wid]; w != nil && w.alive {
				if a := m.replicaAddrLocked(w, name); a != "" {
					addr, src, srcName = a, wid, w.name
					break
				}
			}
		}
		if addr == "" {
			// No live replica anywhere: lineage rollback. Re-enqueue the
			// producer and park on the change broadcast until the file
			// regenerates (its content-addressed cachename is stable, so
			// the re-run's output lands under the same key).
			if !m.recoverFileLocked(name) {
				m.mu.Unlock()
				return nil, fmt.Errorf("vine: no live replica of %s and no recoverable producer", name)
			}
			m.scheduleLocked()
			ch := m.change
			m.mu.Unlock()
			select {
			case <-ch:
			case <-time.After(time.Until(deadline)):
				return nil, fmt.Errorf("vine: recovery of %s timed out after %v", name, m.recoveryTimeout)
			}
			continue
		}
		m.mu.Unlock()
		data, err := m.nc.fetchBytes(addr, name, "manager/fetch")
		if err == nil {
			return data, nil
		}
		badFetches++
		if errors.Is(err, ErrCorruptTransfer) {
			m.mu.Lock()
			m.met.corruptTransfers.Inc()
			m.rec.Emit(obs.Event{Type: obs.EvFileCorrupt, Src: srcName, Dst: "manager", Detail: string(name) + ": " + err.Error()})
			m.quarantineReplicaLocked(name, src)
			m.mu.Unlock()
		}
		if badFetches >= 4*maxTransferAttempts || time.Now().After(deadline) {
			return nil, fmt.Errorf("vine: fetching %s: %w", name, err)
		}
		// Brief park before retrying: a worker-loss event (which purges
		// the dead replica from the table) wakes the retry early, so a
		// fetch racing the loss detection doesn't hammer a dead address.
		m.mu.Lock()
		ch := m.change
		m.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Unlink removes a file from all worker caches and the manager's tables.
// Task outputs that are unlinked cannot be recovered.
func (m *Manager) Unlink(name CacheName) {
	m.mu.Lock()
	fs, ok := m.files[name]
	if !ok {
		m.mu.Unlock()
		return
	}
	var conns []*conn
	for wid := range fs.workers {
		if w := m.workers[wid]; w != nil && w.alive {
			conns = append(conns, w.conn)
			w.cacheBytes -= fs.size
			delete(w.cache, name)
		}
	}
	delete(m.files, name)
	m.sched.FileForgotten(string(name))
	m.journalLocked(&journal.Record{Kind: journal.KindUnlink, CacheName: string(name)})
	m.mu.Unlock()
	for _, c := range conns {
		c.send(&message{Type: msgUnlink, Unlink: &unlinkMsg{CacheName: string(name)}})
	}
}

// ReplicaCount reports live replicas of a file (manager store counts as
// one).
func (m *Manager) ReplicaCount(name CacheName) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	fs, ok := m.files[name]
	if !ok {
		return 0
	}
	n := 0
	if fs.onManager {
		n++
	}
	for wid := range fs.workers {
		if w := m.workers[wid]; w != nil && w.alive {
			n++
		}
	}
	return n
}

// ---- connection handling ----

func (m *Manager) acceptLoop() {
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return
		}
		go m.handleWorker(newConn(c))
	}
}

func (m *Manager) handleWorker(cc *conn) {
	// First frame must be hello.
	msg0, err := cc.recv()
	if err != nil || msg0.Type != msgHello || msg0.Hello == nil {
		cc.close()
		return
	}
	hello := msg0.Hello

	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		cc.close()
		return
	}
	// A reconnecting worker may beat the heartbeat monitor to the punch:
	// retire any live registration under the same name first, so capacity
	// and replicas aren't double-counted across two ids — and so the
	// inventory below re-registers the replicas the stale entry just lost.
	for oldID, old := range m.workers {
		if old.alive && old.name == hello.Name {
			m.workerLostLocked(oldID)
		}
	}
	id := m.nextWID
	m.nextWID++
	w := &workerState{
		id:           id,
		name:         hello.Name,
		conn:         cc,
		transferAddr: hello.TransferAddr,
		cores:        hello.Cores,
		memory:       hello.Memory,
		preemptible:  hello.Preemptible,
		foreman:      hello.Foreman,
		cache:        make(map[CacheName]bool),
		alive:        true,
		lastSeen:     time.Now(),
	}
	if w.foreman {
		w.shardAddr = make(map[CacheName]string)
	}
	m.workers[id] = w
	m.sched.WorkerJoin(id, hello.Cores, hello.Memory)
	if hello.Preemptible {
		m.sched.SetWorkerAttrs(id, true, false)
	}
	m.met.poolSize.Set(int64(m.liveWorkersLocked()))
	if w.foreman {
		m.met.foremenActive.Set(int64(m.foremenActiveLocked()))
	}
	// Ingest the cache inventory: every surviving entry the manager knows
	// about becomes a replica again, so completed work is never re-staged
	// just because a connection (or the manager itself) bounced. Unknown
	// or size-mismatched entries are left unacknowledged; the worker's
	// orphan TTL reclaims them.
	var known []string
	for _, e := range hello.Inventory {
		cn := CacheName(e.CacheName)
		fs := m.files[cn]
		if fs == nil || (fs.size != 0 && fs.size != e.Size) {
			continue
		}
		if w.foreman && e.Addr == "" {
			// A shard replica the root cannot ticket is useless — worse,
			// counting it would satisfy hasSource while leaseLocked can
			// never build a ticket for it. Leave it unacknowledged.
			continue
		}
		if fs.size == 0 {
			fs.size = e.Size
		}
		fs.workers[id] = true
		w.cache[cn] = true
		w.cacheBytes += e.Size
		if w.foreman {
			w.shardAddr[cn] = e.Addr
		}
		m.sched.FileCached(id, e.CacheName, e.Size)
		known = append(known, e.CacheName)
	}
	if len(known) > 0 {
		m.promoteWaitersLocked()
	}
	libs := append([]LibrarySpec(nil), m.opts.InstallLibraries...)
	if w.foreman {
		// Foremen install libraries on their own shard workers; the root
		// only leases tasks to them.
		libs = nil
	}
	m.notifyLocked()
	m.mu.Unlock()
	m.met.workersJoined.Inc()
	joinDetail := strconv.Itoa(w.cores) + " cores"
	if len(hello.Inventory) > 0 {
		joinDetail += fmt.Sprintf(", %d/%d cached files recognized", len(known), len(hello.Inventory))
	}
	if w.foreman {
		m.rec.Emit(obs.Event{Type: obs.EvForemanJoin, Worker: w.name, Detail: joinDetail})
	}
	m.rec.Emit(obs.Event{Type: obs.EvWorkerJoin, Worker: w.name, Detail: joinDetail})
	if len(hello.Inventory) > 0 {
		cc.send(&message{Type: msgInventoryAck, InventoryAck: &inventoryAckMsg{Known: known}})
	}
	if m.takeoverEpoch > 0 {
		// Announce the takeover so workers (and their operators) know which
		// incarnation they re-registered with; the epoch lets a worker
		// discard notices from a fenced older manager.
		holder := ""
		if m.lease != nil {
			holder = m.lease.Holder()
		}
		cc.send(&message{Type: msgTakeover, Takeover: &takeoverMsg{Holder: holder, Epoch: m.takeoverEpoch}})
	}

	for _, l := range libs {
		cc.send(&message{Type: msgLibrary, Library: &libraryMsg{Name: l.Name, Hoist: l.Hoist}})
	}

	m.mu.Lock()
	m.scheduleLocked()
	m.mu.Unlock()

	for {
		msg, err := cc.recv()
		if err != nil {
			m.workerLost(id)
			return
		}
		m.mu.Lock()
		w.lastSeen = time.Now()
		m.mu.Unlock()
		switch msg.Type {
		case msgTaskDone:
			if msg.TaskDone != nil {
				m.onTaskDone(id, msg.TaskDone)
			}
		case msgReport:
			if msg.Report != nil {
				m.onForemanReport(id, msg.Report)
			}
		case msgTransferDone:
			if msg.TransferDone != nil {
				m.onTransferDone(id, msg.TransferDone)
			}
		case msgEvicted:
			if msg.Evicted != nil {
				m.onEvicted(id, msg.Evicted)
			}
		case msgDraining:
			if msg.Draining != nil {
				m.onDraining(id, msg.Draining)
			}
		case msgPong:
			// lastSeen bump above is the whole point.
		}
	}
}

// ---- scheduling core (all *Locked functions require m.mu) ----

// inputsAvailableLocked reports whether every input of rec has at least one
// live source.
func (m *Manager) inputsAvailableLocked(rec *taskRecord) bool {
	for _, in := range rec.spec.Inputs {
		if !m.hasSourceLocked(in.CacheName) {
			return false
		}
	}
	return true
}

func (m *Manager) hasSourceLocked(name CacheName) bool {
	fs, ok := m.files[name]
	if !ok {
		return false
	}
	if fs.onManager || len(fs.ext) > 0 {
		return true
	}
	for wid := range fs.workers {
		if w := m.workers[wid]; w != nil && w.alive {
			return true
		}
	}
	return false
}

func (m *Manager) setTaskState(rec *taskRecord, s TaskState) {
	if s == TaskWaiting {
		m.waiting[rec.id] = rec
	} else if rec.state == TaskWaiting {
		delete(m.waiting, rec.id)
	}
	rec.state = s
	rec.handle.mu.Lock()
	rec.handle.state = s
	rec.handle.mu.Unlock()
}

// nowOff is the manager's scheduling clock: nanoseconds since start,
// the timebase for queue-wait accounting.
func (m *Manager) nowOff() int64 { return time.Since(m.start).Nanoseconds() }

// enqueueReadyLocked hands a task to the scheduler's ready set,
// refreshing the exclusion set so speculative re-dispatches avoid
// straggler workers. Re-enqueueing a queued task is a no-op.
func (m *Manager) enqueueReadyLocked(rec *taskRecord) {
	m.setTaskState(rec, TaskReady)
	rec.sq.Exclude = rec.stragglers
	m.sched.Enqueue(rec.sq, m.nowOff())
}

// scheduleLocked drains the scheduler onto workers and starts staging.
// Placement is delegated to the sched subsystem: the policy pipeline
// picks a worker per task, weighted fair-share picks which queue goes
// next, and the scheduler's own indexes (sorted worker ids, per-worker
// file sets) keep the hot path free of per-task rebuild/sort work.
func (m *Manager) scheduleLocked() {
	if m.stopped || m.fenced {
		return
	}
	m.sched.Assign(m.nowOff(), func(a sched.Assignment) {
		id, err := strconv.Atoi(a.Task.ID)
		if err != nil {
			return
		}
		if rec := m.tasks[id]; rec != nil {
			m.assignLocked(rec, a)
		}
	})
	m.pumpTransfersLocked()
	m.flushLeasesLocked()
}

// QueueStats snapshots the per-queue scheduler state: pending depth,
// dispatch count, and cumulative queue wait per tenant.
func (m *Manager) QueueStats() []sched.QueueStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.Queues()
}

// ProvisionQueue registers (or re-weights) a named submission queue at
// runtime — the gate's tenancy→QoS hook: each tenant gets its own queue,
// provisioned on first contact rather than at manager construction.
func (m *Manager) ProvisionQueue(name string, weight float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sched.AddQueue(sched.QueueConfig{Name: name, Weight: weight})
}

// DropQueue removes a provisioned queue once it holds no ready work (the
// default queue is permanent). Reports whether the queue was removed.
func (m *Manager) DropQueue(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.RemoveQueue(name)
}

// queueCounterLocked interns the per-queue dispatch counter.
func (m *Manager) queueCounterLocked(queue string) *obs.Counter {
	c, ok := m.queueMet[queue]
	if !ok {
		c = m.reg.Counter(fmt.Sprintf("vine_queue_tasks_dispatched_total{queue=%q}", queue))
		m.queueMet[queue] = c
	}
	return c
}

// assignLocked reserves the worker and begins staging missing inputs.
func (m *Manager) assignLocked(rec *taskRecord, a sched.Assignment) {
	wid := a.Worker
	w := m.workers[wid]
	w.usedCores += rec.spec.Cores
	w.usedMemory += rec.spec.Memory
	rec.worker = wid
	wait := time.Duration(a.Wait)
	m.met.queueWait.Observe(wait.Seconds())
	m.queueCounterLocked(a.Queue).Inc()
	if m.rec != nil {
		reason := fmt.Sprintf("policy=%s queue=%s score=%g", m.sched.Policy().Name, a.Queue, a.Score)
		m.rec.Emit(obs.Event{Type: obs.EvSchedDecision, Task: rec.label(), Worker: w.name, Dur: wait, Detail: reason})
		m.rec.Emit(obs.Event{Type: obs.EvTaskDispatch, Task: rec.label(), Worker: w.name, Attempt: rec.retries, Dur: wait, Detail: reason})
	}
	if w.foreman {
		// Two-level placement: the root picked the shard; the foreman's own
		// scheduler picks the worker. No staging here — missing inputs ride
		// the lease as peer-transfer tickets the shard resolves itself.
		m.leaseLocked(rec, w)
		return
	}
	rec.pending = make(map[CacheName]bool)
	for _, in := range rec.spec.Inputs {
		if !w.cache[in.CacheName] {
			rec.pending[in.CacheName] = true
		}
	}
	if len(rec.pending) == 0 {
		m.dispatchLocked(rec)
		return
	}
	m.setTaskState(rec, TaskStaging)
	for name := range rec.pending {
		fs := m.files[name]
		fs.refWaiters = append(fs.refWaiters, rec)
		m.queueTransferLocked(name, wid)
	}
}

// queueTransferLocked picks a source for name→dest and either issues the
// put_url or defers it until the source has transfer capacity. At most one
// transfer per (file, destination) is ever outstanding: a second task
// staging the same input to the same worker rides the first transfer —
// onTransferDone unblocks every refWaiter on the pair. Issuing a duplicate
// put_url would race two concurrent fetches of one cachename on the
// worker, and a task dispatched against the first completion could read
// the file mid-rewrite by the second.
func (m *Manager) queueTransferLocked(name CacheName, dest int) {
	for _, tx := range m.queuedTx {
		if tx.name == name && tx.dest == dest {
			return
		}
	}
	if w := m.workers[dest]; w != nil {
		for _, sr := range w.pendingSources {
			if sr.name == name {
				return
			}
		}
	}
	src := m.pickSourceLocked(name, dest)
	m.queuedTx = append(m.queuedTx, pendingTransfer{name: name, dest: dest, source: src})
	m.pumpTransfersLocked()
}

// pickSourceLocked selects a replica to serve name to dest: with peer
// transfers on, the live worker replica with the least outbound load;
// otherwise (or if no worker has it) the manager (-1).
func (m *Manager) pickSourceLocked(name CacheName, dest int) int {
	fs := m.files[name]
	if fs == nil {
		return -1
	}
	if m.opts.PeerTransfers {
		best, bestLoad := -2, 1<<30
		ids := make([]int, 0, len(fs.workers))
		for wid := range fs.workers {
			ids = append(ids, wid)
		}
		sort.Ints(ids)
		for _, wid := range ids {
			if wid == dest {
				continue
			}
			if w := m.workers[wid]; w != nil && w.alive && w.outbound < bestLoad && m.replicaAddrLocked(w, name) != "" {
				best, bestLoad = wid, w.outbound
			}
		}
		if best >= 0 {
			return best
		}
	}
	if fs.onManager {
		return -1
	}
	// No manager copy: any live worker replica even without peer mode
	// (this is how results migrate when strictly necessary).
	ids := make([]int, 0, len(fs.workers))
	for wid := range fs.workers {
		ids = append(ids, wid)
	}
	sort.Ints(ids)
	for _, wid := range ids {
		if w := m.workers[wid]; w != nil && w.alive && wid != dest && m.replicaAddrLocked(w, name) != "" {
			return wid
		}
	}
	return -1
}

// pumpTransfersLocked issues queued transfers whose source has capacity.
func (m *Manager) pumpTransfersLocked() {
	var still []pendingTransfer
	for _, tx := range m.queuedTx {
		dw := m.workers[tx.dest]
		if dw == nil || !dw.alive {
			continue // destination died; staging failure handled by workerLost
		}
		fs := m.files[tx.name]
		if fs == nil {
			continue
		}
		// Re-validate the source each pump; it may have died.
		src := tx.source
		if src >= 0 {
			sw := m.workers[src]
			if sw == nil || !sw.alive || !sw.cache[tx.name] {
				src = m.pickSourceLocked(tx.name, tx.dest)
			}
		}
		var addr, extAddr string
		if src >= 0 {
			sw := m.workers[src]
			if sw.outbound >= m.opts.TransferCapPerSource {
				// Source busy: try another replica, else defer.
				alt := m.pickSourceLocked(tx.name, tx.dest)
				if alt != src && alt >= 0 && m.workers[alt].outbound < m.opts.TransferCapPerSource {
					src = alt
					addr = m.replicaAddrLocked(m.workers[alt], tx.name)
				} else if alt == -1 && fs.onManager {
					src = -1
				} else {
					tx.source = src
					still = append(still, tx)
					continue
				}
			}
			if addr == "" && src >= 0 {
				addr = m.replicaAddrLocked(m.workers[src], tx.name)
			}
		}
		if src < 0 {
			if fs.onManager {
				addr = m.ts.Addr()
			} else if extAddr = m.extAddrLocked(fs, tx.attempts); extAddr != "" {
				// A foreman staging a ticketed input: the bytes come from
				// outside this manager's own cluster, straight off the
				// source shard's worker.
				addr = extAddr
			} else {
				// Every replica vanished while the transfer sat queued.
				// The staging tasks waiting on it must not be left
				// parked: route them through the task-retry path, which
				// revives the producer (lineage rollback) and restages
				// once the file regenerates.
				for _, rec := range fs.refWaiters {
					if rec.worker == tx.dest && rec.state == TaskStaging && rec.pending[tx.name] {
						m.retryLocked(rec, fmt.Errorf("staging %s: no live replica", tx.name))
					}
				}
				continue
			}
		} else {
			m.workers[src].outbound++
		}
		srcName := "manager"
		if src >= 0 {
			srcName = m.workers[src].name
			m.met.peerTransfers.Inc()
			m.met.peerBytes.Add(fs.size)
		} else if extAddr != "" {
			srcName = extAddr
			m.met.peerTransfers.Inc()
			m.met.peerBytes.Add(fs.size)
		} else {
			m.met.managerTransfers.Inc()
			m.met.managerBytes.Add(fs.size)
		}
		m.rec.Emit(obs.Event{Type: obs.EvTransferStart, Src: srcName, Dst: dw.name, Bytes: fs.size, Detail: string(tx.name)})
		dw.conn.send(&message{Type: msgPutURL, PutURL: &putURLMsg{
			CacheName: string(tx.name), Addr: addr, Size: fs.size,
		}})
		// Remember who served it so capacity frees on completion.
		dw.pendingSources = append(dw.pendingSources, srcRecord{name: tx.name, source: src, extAddr: extAddr, attempts: tx.attempts, offload: tx.offload})
	}
	m.queuedTx = still
}

// srcRecord pairs an in-flight inbound transfer with the worker serving it
// and the attempt count carried over from the queued transfer. extAddr is
// set when the source is an external (cross-shard) address rather than a
// worker of this manager.
type srcRecord struct {
	name     CacheName
	source   int
	extAddr  string
	attempts int
	offload  bool
}

// dispatchLocked sends a fully-staged task to its worker.
func (m *Manager) dispatchLocked(rec *taskRecord) {
	if m.fenced {
		// Lease lost between staging and dispatch: the task stays parked;
		// the standby that owns the lease will run it from a resubmission.
		return
	}
	w := m.workers[rec.worker]
	m.observeTakeoverLocked()
	m.setTaskState(rec, TaskRunning)
	rec.handle.mu.Lock()
	if rec.handle.firstDispatch.IsZero() {
		rec.handle.firstDispatch = time.Now()
	}
	rec.handle.mu.Unlock()
	if d := m.deadlineFor(rec); d > 0 {
		rec.deadlineAt = time.Now().Add(d)
	} else {
		rec.deadlineAt = time.Time{}
	}
	m.rec.Emit(obs.Event{Type: obs.EvTaskStart, Task: rec.label(), Worker: w.name, Attempt: rec.retries})
	m.journalLocked(&journal.Record{Kind: journal.KindDispatch, TaskID: rec.id, Worker: w.name})
	d := &dispatchMsg{
		TaskID:  rec.id,
		Mode:    string(rec.spec.Mode),
		Library: rec.spec.Library,
		Func:    rec.spec.Func,
		Args:    rec.spec.Args,
		Cores:   rec.spec.Cores,
		Memory:  rec.spec.Memory,
	}
	for _, in := range rec.spec.Inputs {
		d.Inputs = append(d.Inputs, fileRefWire{Name: in.Name, CacheName: string(in.CacheName)})
	}
	for _, out := range rec.spec.Outputs {
		d.Outputs = append(d.Outputs, fileRefWire{Name: out, CacheName: string(rec.handle.outputs[out])})
	}
	m.controlFrameLocked()
	w.conn.send(&message{Type: msgDispatch, Dispatch: d})
}

// releaseWorkerLocked returns a task's cores, in both the manager's
// worker table and the scheduler's capacity index (a no-op there if the
// worker is already lost).
func (m *Manager) releaseWorkerLocked(rec *taskRecord) {
	if rec.worker >= 0 {
		if w := m.workers[rec.worker]; w != nil {
			w.usedCores -= rec.spec.Cores
			if w.usedCores < 0 {
				w.usedCores = 0
			}
			w.usedMemory -= rec.spec.Memory
			if w.usedMemory < 0 {
				w.usedMemory = 0
			}
		}
		m.sched.Release(rec.worker, rec.spec.Cores, rec.spec.Memory)
	}
	rec.worker = -1
	rec.pending = nil
}

// retryLocked requeues a task after a failure, up to MaxRetries. Every
// attempt's cause is retained (bounded by failLimit) so the terminal
// error reports the whole history, not just the last straw. Requeues
// are delayed by exponential backoff with jitter so a flapping worker
// or transient network fault isn't hammered at full rate.
func (m *Manager) retryLocked(rec *taskRecord, cause error) {
	worker := ""
	if rec.worker >= 0 {
		if w := m.workers[rec.worker]; w != nil {
			worker = w.name
		}
	}
	m.releaseWorkerLocked(rec)
	rec.retries++
	terminal := rec.retries > m.opts.MaxRetries
	var delay time.Duration
	if !terminal {
		delay = m.nextBackoffLocked(rec.retries)
	}
	m.recordFailureLocked(rec, TaskFailure{
		Attempt: rec.retries, Worker: worker, Cause: cause.Error(), Backoff: delay,
	})
	m.rec.Emit(obs.Event{Type: obs.EvTaskRetry, Task: rec.label(), Worker: worker, Attempt: rec.retries, Dur: delay, Detail: cause.Error()})
	if terminal {
		m.failLocked(rec, fmt.Errorf("vine: task %d failed after %d retries: %w (history: %s)",
			rec.id, rec.retries-1, cause, strings.Join(formatFailures(rec.failures), "; ")))
		return
	}
	m.met.retries.Inc()
	if m.inputsAvailableLocked(rec) {
		m.requeueLocked(rec, delay)
	} else {
		m.setTaskState(rec, TaskWaiting)
		m.reviveProducersLocked(rec)
	}
}

// recordFailureLocked retains one attempt's failure (first failLimit kept)
// and mirrors the history into the handle.
func (m *Manager) recordFailureLocked(rec *taskRecord, f TaskFailure) {
	if len(rec.failures) < m.failLimit {
		rec.failures = append(rec.failures, f)
	}
	rec.handle.mu.Lock()
	rec.handle.retries = rec.retries
	rec.handle.failures = rec.failures
	rec.handle.mu.Unlock()
}

// nextBackoffLocked computes the jittered delay before retry attempt n:
// base·2^(n-1) clamped to max, then jittered into [d/2, d) from the
// manager's seeded stream. Base <= 0 disables backoff.
func (m *Manager) nextBackoffLocked(attempt int) time.Duration {
	if m.backoffBase <= 0 {
		return 0
	}
	d := m.backoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= m.backoffMax {
			d = m.backoffMax
			break
		}
	}
	if d > m.backoffMax {
		d = m.backoffMax
	}
	half := d / 2
	return half + time.Duration(m.rng.Float64()*float64(half))
}

// requeueLocked returns a task to the ready queue, immediately or after
// the backoff delay. A delayed task sits in TaskReady but off the queue
// until its timer fires; intervening events (worker loss invalidating
// inputs, straggler success) cancel the requeue via the state check.
func (m *Manager) requeueLocked(rec *taskRecord, delay time.Duration) {
	if delay <= 0 {
		m.enqueueReadyLocked(rec)
		return
	}
	m.setTaskState(rec, TaskReady)
	id := rec.id
	time.AfterFunc(delay, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.stopped {
			return
		}
		rec := m.tasks[id]
		if rec == nil || rec.state != TaskReady {
			return
		}
		// Enqueue dedups on the task record, so a task that was already
		// requeued by an intervening event is left alone.
		m.enqueueReadyLocked(rec)
		m.scheduleLocked()
	})
}

func (m *Manager) failLocked(rec *taskRecord, err error) {
	m.setTaskState(rec, TaskFailed)
	m.met.tasksFailed.Inc()
	m.rec.Emit(obs.Event{Type: obs.EvTaskFail, Task: rec.label(), Detail: err.Error()})
	m.journalLocked(&journal.Record{Kind: journal.KindTaskFail, TaskID: rec.id, Error: err.Error()})
	rec.handle.mu.Lock()
	rec.handle.err = err
	notified := rec.handle.notified
	rec.handle.notified = true
	rec.handle.mu.Unlock()
	if !notified {
		close(rec.handle.doneC)
	}
	m.completed = append(m.completed, rec.id)
	m.notifyLocked()
}

// recoverFileLocked is the lineage rollback: when every replica of name
// is gone, re-enqueue its producer — the live-plane mirror of
// dag.Tracker.Invalidate — so the file regenerates under the same
// content-addressed cachename. Reports whether regeneration is underway
// (or the file turned out to have a live source after all); false means
// the file is unrecoverable — a declared file with no producer, or a
// producer that failed terminally.
func (m *Manager) recoverFileLocked(name CacheName) bool {
	if m.hasSourceLocked(name) {
		return true
	}
	fs := m.files[name]
	if fs == nil || fs.producer < 0 {
		return false
	}
	prod := m.tasks[fs.producer]
	if prod == nil {
		return false
	}
	switch prod.state {
	case TaskDone:
		// Roll the completed producer back to the queue. Its handle stays
		// done — downstream consumers only need the bytes back.
		m.met.lineageReruns.Inc()
		m.rec.Emit(obs.Event{Type: obs.EvLineageRollback, Task: prod.label(), Detail: string(name)})
		if m.inputsAvailableLocked(prod) {
			m.enqueueReadyLocked(prod)
		} else {
			// The producer's own inputs are gone too: recurse up the chain.
			m.setTaskState(prod, TaskWaiting)
			m.reviveProducersLocked(prod)
		}
		return true
	case TaskWaiting, TaskReady, TaskStaging, TaskRunning:
		return true // already on its way
	}
	return false // TaskFailed
}

// reviveProducersLocked re-enqueues done tasks whose outputs a waiting task
// needs but which no longer exist anywhere (lost to preemption). Recurses
// up the producer chain as needed.
func (m *Manager) reviveProducersLocked(rec *taskRecord) {
	for _, in := range rec.spec.Inputs {
		if m.hasSourceLocked(in.CacheName) {
			continue
		}
		fs := m.files[in.CacheName]
		if fs == nil || fs.producer < 0 {
			if fs != nil && fs.wasExt {
				// A foreman's ticketed input whose external sources are all
				// exhausted or quarantined: this manager never had the
				// producer, so waiting is hopeless. Fail fast — the lease
				// failure (with its Lost report) sends the root up its own
				// lineage ladder, which re-runs the producer shard-side.
				m.failLocked(rec, fmt.Errorf("vine: external input %s lost (sources exhausted)", in.CacheName))
				return
			}
			continue // declared file with no source: unrecoverable here
		}
		if m.tasks[fs.producer] == nil {
			continue
		}
		if !m.recoverFileLocked(in.CacheName) {
			m.failLocked(rec, fmt.Errorf("vine: input %s lost and its producer failed", in.CacheName))
		}
	}
}

// promoteWaitersLocked moves Waiting tasks whose inputs are now all
// available to Ready. It walks only the waiting index — completions are
// the hot path, and scanning every record (mostly Done late in a run)
// per completion made busy managers quadratic in workload size.
func (m *Manager) promoteWaitersLocked() {
	for _, rec := range m.waiting {
		if m.inputsAvailableLocked(rec) {
			m.enqueueReadyLocked(rec)
		}
	}
}

// ---- event handlers ----

func (m *Manager) onTaskDone(wid int, msg *taskDoneMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.controlFrameLocked()
	m.onTaskDoneLocked(wid, msg)
}

// controlFrameLocked charges the modelled per-control-frame cost inside
// the manager lock, serializing frame handling the way a production
// manager's single-threaded event loop does. A no-op unless the manager
// was built WithControlOverhead.
func (m *Manager) controlFrameLocked() {
	if m.ctrlOverhead > 0 {
		time.Sleep(m.ctrlOverhead)
	}
}

// onTaskDoneLocked folds one completion into the task and replica tables —
// the worker recv loop calls it through onTaskDone, a foreman report calls
// it once per aggregated lease result (requires m.mu).
func (m *Manager) onTaskDoneLocked(wid int, msg *taskDoneMsg) {
	rec := m.tasks[msg.TaskID]
	if rec == nil {
		return
	}
	// A result is acceptable from the primary attempt, or — first result
	// wins — from a fast-aborted straggler still running speculatively
	// while the task is queued, staging, or re-running elsewhere.
	primary := rec.state == TaskRunning && rec.worker == wid
	straggler := rec.isStraggler(wid) &&
		(rec.state == TaskReady || rec.state == TaskWaiting ||
			rec.state == TaskStaging || rec.state == TaskRunning)
	if !primary && !straggler {
		return // stale completion from a worker we already gave up on
	}
	w := m.workers[wid]
	if !msg.OK {
		if !primary {
			// The speculative copy failed; the requeued attempt carries on.
			delete(rec.stragglers, wid)
			return
		}
		m.retryLocked(rec, fmt.Errorf("%s", msg.Error))
		m.scheduleLocked()
		return
	}
	if !primary {
		// The straggler beat its replacement: drop the requeued attempt.
		m.sched.Dequeue(rec.label())
	}
	rec.stragglers = nil
	m.releaseWorkerLocked(rec)
	wasDone := rec.handle.notified
	m.setTaskState(rec, TaskDone)
	// Record output replicas on the executing worker.
	for cnStr, size := range msg.OutputSizes {
		cn := CacheName(cnStr)
		fs := m.files[cn]
		if fs == nil {
			fs = &fileState{workers: make(map[int]bool), producer: rec.id}
			m.files[cn] = fs
		}
		fs.size = size
		fs.workers[wid] = true
		if w != nil {
			w.cache[cn] = true
			w.cacheBytes += size
		}
		m.sched.FileCached(wid, cnStr, size)
	}
	if !wasDone {
		m.met.tasksDone.Inc()
		if w != nil {
			w.doneCount++
		}
		m.met.execSeconds.Observe(time.Duration(msg.ExecNanos).Seconds())
		rec.handle.mu.Lock()
		rec.handle.execTime = time.Duration(msg.ExecNanos)
		rec.handle.setup = time.Duration(msg.SetupNanos)
		rec.handle.worker = workerNameOf(w)
		rec.handle.notified = true
		rec.handle.mu.Unlock()
		close(rec.handle.doneC)
		m.completed = append(m.completed, rec.id)
		m.journalLocked(&journal.Record{
			Kind: journal.KindTaskDone, TaskID: rec.id, Worker: workerNameOf(w),
			OutputSizes: msg.OutputSizes, ExecNanos: msg.ExecNanos, SetupNanos: msg.SetupNanos,
		})
		m.maybeCompactJournalLocked()
	}
	// Wake waiters even on a lineage re-run (wasDone): the fresh replica
	// is what a parked FetchBytes recovery loop is waiting for.
	m.notifyLocked()
	m.rec.Emit(obs.Event{
		Type: obs.EvTaskDone, Task: rec.label(), Worker: workerNameOf(w),
		Attempt: rec.retries, Dur: time.Duration(msg.ExecNanos),
	})
	if m.opts.ReturnOutputs && w != nil && !w.foreman {
		// Foreman outputs are pulled through their reported shard addresses
		// (FetchBytes path), not the foreman's control link.
		addr, wname := w.transferAddr, w.name
		for cnStr := range msg.OutputSizes {
			cn := CacheName(cnStr)
			go m.pullToManager(addr, wname, cn)
		}
	}
	if m.opts.ReplicateOutputs > 1 {
		for cnStr := range msg.OutputSizes {
			m.replicateLocked(CacheName(cnStr))
		}
	}
	m.promoteWaitersLocked()
	m.scheduleLocked()
}

// replicateLocked tops a file up to the configured replica count by queuing
// peer transfers to live workers that lack it.
func (m *Manager) replicateLocked(cn CacheName) {
	fs := m.files[cn]
	if fs == nil {
		return
	}
	have := 0
	for wid := range fs.workers {
		if w := m.workers[wid]; w != nil && w.alive {
			have++
		}
	}
	need := m.opts.ReplicateOutputs - have
	if need <= 0 {
		return
	}
	// Preemption-aware target order: stable workers first, preemptible
	// ones only when no stable worker can take a copy, draining workers
	// never — so with at least one stable worker in the pool, a hot file's
	// replica set is never exclusively on workers that may vanish. Within
	// each pass the scheduler's sorted live-worker id slice keeps the
	// choice deterministic with no per-call rebuild+sort.
	for pass := 0; pass < 2 && need > 0; pass++ {
		for _, id := range m.sched.WorkerIDs() {
			if need == 0 {
				break
			}
			w := m.workers[id]
			if w == nil || !w.alive || w.draining || w.foreman || w.cache[cn] {
				continue
			}
			if (pass == 0) == w.preemptible {
				continue // pass 0: stable only; pass 1: preemptible only
			}
			m.queueTransferLocked(cn, id)
			need--
		}
	}
}

// pullToManager copies a task output into the manager's own store (the Work
// Queue data path). Runs outside the lock; failures are benign — the worker
// replica remains the source.
func (m *Manager) pullToManager(addr, worker string, cn CacheName) {
	data, err := m.nc.fetchBytes(addr, cn, "manager/fetch")
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fs := m.files[cn]
	if fs == nil || fs.onManager {
		return
	}
	fs.onManager = true
	fs.mgrData = data
	fs.size = int64(len(data))
	m.met.managerBytes.Add(fs.size)
	m.rec.Emit(obs.Event{Type: obs.EvTransferStart, Src: worker, Dst: "manager", Bytes: fs.size, Detail: string(cn)})
	m.promoteWaitersLocked()
	m.scheduleLocked()
}

func workerNameOf(w *workerState) string {
	if w == nil {
		return ""
	}
	return w.name
}

func (m *Manager) onTransferDone(wid int, msg *transferDoneMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[wid]
	if w == nil {
		return
	}
	name := CacheName(msg.CacheName)
	// Free the source's outbound slot, remembering who served the transfer
	// and how many attempts this file has burned reaching this worker.
	srcName, srcID, extAddr, attempts, offload := "manager", -1, "", 0, false
	for i, sr := range w.pendingSources {
		if sr.name == name {
			srcID, extAddr, attempts, offload = sr.source, sr.extAddr, sr.attempts, sr.offload
			if sr.source >= 0 {
				if sw := m.workers[sr.source]; sw != nil {
					srcName = sw.name
					if sw.outbound > 0 {
						sw.outbound--
					}
				}
			} else if sr.extAddr != "" {
				srcName = sr.extAddr
			}
			w.pendingSources = append(w.pendingSources[:i], w.pendingSources[i+1:]...)
			break
		}
	}
	fs := m.files[name]
	if msg.OK {
		m.rec.Emit(obs.Event{Type: obs.EvTransferDone, Src: srcName, Dst: w.name, Bytes: msg.Size, Detail: string(name)})
		if offload {
			// A sole-replica copy escaped a draining worker intact: the
			// file now survives the preemption without a lineage re-run.
			m.met.soleOffloads.Inc()
			m.rec.Emit(obs.Event{Type: obs.EvWorkerDrain, Worker: srcName, Detail: "offloaded " + string(name) + " to " + w.name})
		}
		if fs != nil {
			if msg.Size > 0 {
				fs.size = msg.Size
			}
			fs.workers[wid] = true
		}
		w.cache[name] = true
		if fs != nil {
			w.cacheBytes += fs.size
			m.sched.FileCached(wid, string(name), fs.size)
		}
		// Unblock staging tasks on this worker waiting for the file.
		if fs != nil {
			var stillWaiting []*taskRecord
			for _, rec := range fs.refWaiters {
				if rec.worker == wid && rec.state == TaskStaging && rec.pending[name] {
					delete(rec.pending, name)
					if len(rec.pending) == 0 {
						m.dispatchLocked(rec)
					}
				} else if rec.state == TaskStaging && rec.pending[name] {
					stillWaiting = append(stillWaiting, rec)
				}
			}
			fs.refWaiters = stillWaiting
		}
	} else {
		// Transfer failed. The recovery ladder: a corrupt payload first
		// quarantines the serving replica; then, while attempts remain and
		// a clean source still exists, the transfer fails over to another
		// replica without burning a task retry; only when the ladder is
		// exhausted do the waiting tasks take a retry — which itself falls
		// through to lineage rollback if no source remains.
		if msg.Corrupt {
			m.met.corruptTransfers.Inc()
			m.rec.Emit(obs.Event{Type: obs.EvFileCorrupt, Src: srcName, Dst: w.name, Detail: string(name) + ": " + msg.Error})
			if extAddr != "" {
				m.quarantineExternalLocked(name, extAddr)
			} else {
				m.quarantineReplicaLocked(name, srcID)
			}
		}
		var victims []*taskRecord
		if fs != nil {
			for _, rec := range fs.refWaiters {
				if rec.worker == wid && rec.state == TaskStaging && rec.pending[name] {
					victims = append(victims, rec)
				}
			}
		}
		if len(victims) > 0 && attempts+1 < maxTransferAttempts && m.hasSourceLocked(name) {
			m.queuedTx = append(m.queuedTx, pendingTransfer{
				name: name, dest: wid, source: m.pickSourceLocked(name, wid), attempts: attempts + 1,
			})
		} else {
			for _, rec := range victims {
				m.retryLocked(rec, fmt.Errorf("staging %s: %s", name, msg.Error))
			}
		}
	}
	m.pumpTransfersLocked()
	m.scheduleLocked()
}

// quarantineReplicaLocked removes a replica that served bytes failing
// their checksum: the manager stops counting the copy, the scheduler's
// file index forgets it, and the holder is told to unlink it so the bad
// bytes can't resurface as a future source. A manager-store source (-1)
// is left alone — its copy is re-read from disk or memory on the next
// fetch, so an in-flight corruption clears itself on retry.
func (m *Manager) quarantineReplicaLocked(name CacheName, src int) {
	if src < 0 {
		return
	}
	fs := m.files[name]
	if fs != nil {
		delete(fs.workers, src)
	}
	sw := m.workers[src]
	if sw == nil {
		return
	}
	if sw.cache[name] {
		delete(sw.cache, name)
		if fs != nil {
			sw.cacheBytes -= fs.size
			if sw.cacheBytes < 0 {
				sw.cacheBytes = 0
			}
		}
	}
	m.sched.FileEvicted(src, string(name))
	if sw.alive {
		sw.conn.send(&message{Type: msgUnlink, Unlink: &unlinkMsg{CacheName: string(name)}})
	}
}

// onEvicted records that a worker dropped a cached file under disk
// pressure: the replica table and scheduler index stop counting the
// copy, staging tasks that believed the file was already local get it
// re-staged, and ready tasks whose last source vanished fall back to
// producer revival — the file degrades to a transfer, not a failure.
func (m *Manager) onEvicted(wid int, msg *evictedMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[wid]
	if w == nil {
		return
	}
	name := CacheName(msg.CacheName)
	if w.cache[name] {
		delete(w.cache, name)
		w.cacheBytes -= msg.Size
	}
	m.sched.FileEvicted(wid, string(name))
	fs := m.files[name]
	if fs == nil {
		return
	}
	delete(fs.workers, wid)
	// Staging tasks on this worker that already counted the file as
	// local must fetch it again before dispatch.
	for _, rec := range m.tasks {
		if rec.worker != wid || rec.state != TaskStaging || rec.pending[name] {
			continue
		}
		for _, in := range rec.spec.Inputs {
			if in.CacheName == name {
				rec.pending[name] = true
				fs.refWaiters = append(fs.refWaiters, rec)
				m.queueTransferLocked(name, wid)
				break
			}
		}
	}
	// If the eviction removed the last live source, queued consumers
	// wait for a producer re-run instead of staging from nowhere.
	if !m.hasSourceLocked(name) {
		for _, rec := range m.tasks {
			if rec.state == TaskReady && !m.inputsAvailableLocked(rec) {
				m.sched.Dequeue(rec.label())
				m.setTaskState(rec, TaskWaiting)
				m.reviveProducersLocked(rec)
			}
		}
	}
}

// onDraining handles a worker's preemption notice: the scheduler stops
// assigning it work (DrainFilter), its staged-but-not-running tasks move
// back to the queue without burning a retry, and its sole-replica cache
// entries are evacuated to stable peers. Running tasks are left alone —
// they may finish inside the grace window; if they don't, the worker's
// own grace timer turns the drain into an ordinary worker loss and the
// recovery ladder takes over.
func (m *Manager) onDraining(wid int, msg *drainingMsg) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[wid]
	if w == nil || !w.alive || w.draining {
		return
	}
	grace := time.Duration(msg.GraceNanos)
	w.draining = true
	w.drainDeadline = time.Now().Add(grace)
	m.sched.SetWorkerAttrs(wid, w.preemptible, true)
	m.met.preemptions.Inc()
	m.rec.Emit(obs.Event{Type: obs.EvWorkerPreempt, Worker: w.name, Dur: grace, Detail: "drain notice; evacuating"})

	// Drop queued transfers headed to the drainer; the staging tasks they
	// served are requeued below. (An offload from another drainer that
	// picked this worker as its destination is re-queued by the next
	// monitor sweep against a still-stable peer.)
	var still []pendingTransfer
	for _, tx := range m.queuedTx {
		if tx.dest != wid {
			still = append(still, tx)
		}
	}
	m.queuedTx = still

	// Requeue staged-but-not-running tasks assigned to the drainer. They
	// haven't started, so moving them costs only the staging already done —
	// this is placement churn, not a task fault, so no retry is burned.
	for _, rec := range m.tasks {
		if rec.worker != wid || rec.state != TaskStaging {
			continue
		}
		m.releaseWorkerLocked(rec)
		if m.inputsAvailableLocked(rec) {
			m.enqueueReadyLocked(rec)
		} else {
			m.setTaskState(rec, TaskWaiting)
			m.reviveProducersLocked(rec)
		}
	}

	m.offloadSoleReplicasLocked(w)
	m.pumpTransfersLocked()
	m.scheduleLocked()
	m.notifyLocked()
}

// soleReplicasLocked lists the drainer's cache entries whose only live
// copy is on the drainer itself (no other live holder, no manager copy,
// and no transfer already moving it somewhere else) — the files that
// would cost a lineage rollback if the worker vanished now.
func (m *Manager) soleReplicasLocked(w *workerState) []CacheName {
	var sole []CacheName
	for cn := range w.cache {
		fs := m.files[cn]
		if fs == nil || fs.onManager {
			continue
		}
		safe := false
		for wid := range fs.workers {
			if wid == w.id {
				continue
			}
			if ow := m.workers[wid]; ow != nil && ow.alive {
				safe = true
				break
			}
		}
		if safe {
			continue
		}
		// A copy already in flight to another worker counts as covered.
		for _, tx := range m.queuedTx {
			if tx.name == cn && tx.dest != w.id {
				safe = true
				break
			}
		}
		if !safe {
			for wid, ow := range m.workers {
				if wid == w.id || !ow.alive {
					continue
				}
				for _, sr := range ow.pendingSources {
					if sr.name == cn {
						safe = true
						break
					}
				}
				if safe {
					break
				}
			}
		}
		if !safe {
			sole = append(sole, cn)
		}
	}
	sort.Slice(sole, func(i, j int) bool { return sole[i] < sole[j] })
	return sole
}

// offloadSoleReplicasLocked queues an evacuation transfer for every
// sole-replica file on a draining worker, preferring stable peers over
// preemptible ones (never another drainer). With no eligible peer at all
// the copy is pulled to the manager's own store instead, so a one-worker
// pool still drains clean when the bytes fit. Idempotent: files already
// covered by an in-flight or queued copy are skipped, so the monitor
// sweep can re-invoke it until the worker is clean.
func (m *Manager) offloadSoleReplicasLocked(w *workerState) {
	for _, cn := range m.soleReplicasLocked(w) {
		dest := -1
		for pass := 0; pass < 2 && dest < 0; pass++ {
			for _, id := range m.sched.WorkerIDs() {
				ow := m.workers[id]
				if id == w.id || ow == nil || !ow.alive || ow.draining || ow.foreman || ow.cache[cn] {
					continue
				}
				if (pass == 0) == ow.preemptible {
					continue // pass 0: stable only; pass 1: preemptible only
				}
				dest = id
				break
			}
		}
		if dest < 0 {
			if w.transferAddr != "" {
				go m.pullToManager(w.transferAddr, w.name, cn)
			}
			continue
		}
		m.rec.Emit(obs.Event{Type: obs.EvWorkerDrain, Worker: w.name, Detail: "offload " + string(cn) + " to " + m.workers[dest].name})
		m.queuedTx = append(m.queuedTx, pendingTransfer{name: cn, dest: dest, source: w.id, offload: true})
	}
}

// releaseDrainersLocked runs on every monitor sweep: it re-attempts
// pending evacuations and, once a draining worker holds nothing of value
// — no staged or running tasks, no sole-replica files, no transfers in
// or out — answers its notice with drain_done so the worker can exit
// cleanly inside its grace window. The connection is NOT closed manager-
// side: conn.close drops queued messages, and the worker's own exit is
// what tears the link down after drain_done arrives.
func (m *Manager) releaseDrainersLocked() {
	pump := false
	for wid, w := range m.workers {
		if !w.alive || !w.draining || w.drainReleased {
			continue
		}
		m.offloadSoleReplicasLocked(w)
		pump = true
		if w.outbound > 0 || len(w.pendingSources) > 0 {
			continue
		}
		busy := false
		for _, rec := range m.tasks {
			if rec.worker == wid && (rec.state == TaskStaging || rec.state == TaskRunning) {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		if len(m.soleReplicasLocked(w)) > 0 {
			continue
		}
		queued := false
		for _, tx := range m.queuedTx {
			if tx.dest == wid || tx.source == wid {
				queued = true
				break
			}
		}
		if queued {
			continue
		}
		w.drainReleased = true
		m.rec.Emit(obs.Event{Type: obs.EvWorkerDrain, Worker: w.name, Detail: "released: drained clean"})
		w.conn.send(&message{Type: msgDrainDone})
	}
	if pump {
		m.pumpTransfersLocked()
		m.scheduleLocked()
	}
}

// workerLost handles a disconnect: replicas vanish, its tasks requeue, and
// lost outputs trigger producer re-runs.
func (m *Manager) workerLost(wid int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workerLostLocked(wid)
}

// workerLostLocked is workerLost with m.mu held — shared by the recv loop
// (TCP error) and the heartbeat monitor (silence without a TCP error).
func (m *Manager) workerLostLocked(wid int) {
	w := m.workers[wid]
	if w == nil || !w.alive {
		return
	}
	w.alive = false
	w.conn.close()
	m.sched.WorkerLost(wid)
	m.met.workersLost.Inc()
	m.met.poolSize.Set(int64(m.liveWorkersLocked()))
	if w.foreman {
		m.met.foremenActive.Set(int64(m.foremenActiveLocked()))
		w.shardAddr = nil
		w.leaseBuf = nil
		w.backlog = 0
	}
	m.rec.Emit(obs.Event{Type: obs.EvWorkerLost, Worker: w.name})

	// Free outbound slots of sources serving this worker.
	for _, sr := range w.pendingSources {
		if sr.source >= 0 {
			if sw := m.workers[sr.source]; sw != nil && sw.outbound > 0 {
				sw.outbound--
			}
		}
	}
	w.pendingSources = nil

	// Drop its replicas — sweeping the whole replica table, not just the
	// worker's own cache view, so no fileState can keep listing the dead
	// worker and pickSourceLocked can never hand it out between the
	// heartbeat miss and cleanup.
	for _, fs := range m.files {
		delete(fs.workers, wid)
	}
	w.cache = make(map[CacheName]bool)
	w.cacheBytes = 0

	// Requeue its staging/running tasks; forget any speculative copy it
	// was still running.
	for _, rec := range m.tasks {
		delete(rec.stragglers, wid)
		if (rec.state == TaskStaging || rec.state == TaskRunning) && rec.worker == wid {
			m.retryLocked(rec, fmt.Errorf("worker %s lost", w.name))
		}
	}

	// Tasks anywhere that now reference sourceless inputs must wait and
	// revive producers.
	for _, rec := range m.tasks {
		if rec.state == TaskReady && !m.inputsAvailableLocked(rec) {
			m.sched.Dequeue(rec.label())
			m.setTaskState(rec, TaskWaiting)
			m.reviveProducersLocked(rec)
		}
		if rec.state == TaskWaiting {
			m.reviveProducersLocked(rec)
		}
	}
	m.pumpTransfersLocked()
	m.scheduleLocked()
	m.notifyLocked()
}

// WaitAny blocks until some task completes (or fails terminally) that has
// not been returned before, or the timeout elapses (0 = forever). It
// returns the task's handle. Completions wake it through the manager's
// change broadcast — no polling, timed or not.
func (m *Manager) WaitAny(timeout time.Duration) (*TaskHandle, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		m.mu.Lock()
		if len(m.completed) > 0 {
			id := m.completed[0]
			m.completed = m.completed[1:]
			h := m.tasks[id].handle
			m.mu.Unlock()
			return h, nil
		}
		if m.stopped {
			m.mu.Unlock()
			return nil, fmt.Errorf("vine: manager stopped")
		}
		ch := m.change
		m.mu.Unlock()
		select {
		case <-ch:
		case <-deadline:
			return nil, fmt.Errorf("vine: WaitAny timed out after %v", timeout)
		}
	}
}

// WorkerInfo is an operational snapshot of one connected worker.
type WorkerInfo struct {
	Name         string
	TransferAddr string
	Cores        int
	UsedCores    int
	Memory       int64
	UsedMemory   int64
	CachedFiles  int
	CacheBytes   int64
	Outbound     int
	Alive        bool
	Preemptible  bool
	Draining     bool
}

// Workers snapshots all known workers (including lost ones), sorted by
// name, for status displays and tests.
func (m *Manager) Workers() []WorkerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerInfo, 0, len(m.workers))
	for _, w := range m.workers {
		out = append(out, WorkerInfo{
			Name:         w.name,
			TransferAddr: w.transferAddr,
			Cores:        w.cores,
			UsedCores:    w.usedCores,
			Memory:       w.memory,
			UsedMemory:   w.usedMemory,
			CachedFiles:  len(w.cache),
			CacheBytes:   w.cacheBytes,
			Outbound:     w.outbound,
			Alive:        w.alive,
			Preemptible:  w.preemptible,
			Draining:     w.draining,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TaskCounts reports how many tasks sit in each state.
func (m *Manager) TaskCounts() map[TaskState]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[TaskState]int)
	for _, rec := range m.tasks {
		out[rec.state]++
	}
	return out
}
