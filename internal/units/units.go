// Package units provides byte-size and bandwidth quantities used across the
// simulation and live execution planes.
//
// Sizes are represented as int64 byte counts and bandwidths as bytes per
// second (float64), matching how the paper reports storage (GB, TB) and
// network capacities (Gbps NICs).
package units

import (
	"fmt"
	"time"
)

// Bytes is a size in bytes.
type Bytes int64

// Common size units.
const (
	B  Bytes = 1
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// KBf, MBf, GBf, TBf build a Bytes value from a fractional count of the unit,
// e.g. GBf(1.2) == 1.2 GB.
func KBf(v float64) Bytes { return Bytes(v * float64(KB)) }

// MBf returns v mebibytes as Bytes.
func MBf(v float64) Bytes { return Bytes(v * float64(MB)) }

// GBf returns v gibibytes as Bytes.
func GBf(v float64) Bytes { return Bytes(v * float64(GB)) }

// TBf returns v tebibytes as Bytes.
func TBf(v float64) Bytes { return Bytes(v * float64(TB)) }

// Gigabytes reports the size as a float count of GB.
func (b Bytes) Gigabytes() float64 { return float64(b) / float64(GB) }

// Megabytes reports the size as a float count of MB.
func (b Bytes) Megabytes() float64 { return float64(b) / float64(MB) }

// String renders the size with a binary-prefix unit, e.g. "1.20GB".
func (b Bytes) String() string {
	switch {
	case b >= TB || b <= -TB:
		return fmt.Sprintf("%.2fTB", float64(b)/float64(TB))
	case b >= GB || b <= -GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB || b <= -MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB || b <= -KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// BytesPerSec is a transfer or I/O rate.
type BytesPerSec float64

// Common rate constructors.
const (
	// GbpsFactor converts gigabits/s to bytes/s.
	gbpsFactor = 1e9 / 8
)

// Gbps returns a rate of v gigabits per second.
func Gbps(v float64) BytesPerSec { return BytesPerSec(v * gbpsFactor) }

// MBps returns a rate of v mebibytes per second.
func MBps(v float64) BytesPerSec { return BytesPerSec(v * float64(MB)) }

// GBps returns a rate of v gibibytes per second.
func GBps(v float64) BytesPerSec { return BytesPerSec(v * float64(GB)) }

// TimeFor reports how long moving size bytes takes at rate r.
// A non-positive rate yields a very large duration rather than dividing by
// zero, so stalled links surface as timeouts instead of panics.
func (r BytesPerSec) TimeFor(size Bytes) time.Duration {
	if r <= 0 {
		return time.Duration(1<<62 - 1)
	}
	sec := float64(size) / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// String renders the rate in MB/s or GB/s.
func (r BytesPerSec) String() string {
	switch {
	case r >= BytesPerSec(GB):
		return fmt.Sprintf("%.2fGB/s", float64(r)/float64(GB))
	default:
		return fmt.Sprintf("%.2fMB/s", float64(r)/float64(MB))
	}
}
