package units

import (
	"testing"
	"time"
)

func TestSizeConstructors(t *testing.T) {
	if GBf(1.5) != Bytes(1.5*float64(GB)) {
		t.Fatalf("GBf(1.5) = %d", GBf(1.5))
	}
	if TBf(1.2) <= GBf(1228) || TBf(1.2) >= GBf(1229) {
		t.Fatalf("TBf(1.2) out of expected range: %v", TBf(1.2))
	}
	if MBf(2) != 2*MB {
		t.Fatalf("MBf(2) = %v", MBf(2))
	}
	if KBf(1) != KB {
		t.Fatalf("KBf(1) = %v", KBf(1))
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2.00KB"},
		{3 * MB, "3.00MB"},
		{GBf(1.2), "1.20GB"},
		{TBf(2.5), "2.50TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestGigabytes(t *testing.T) {
	if g := (3 * GB).Gigabytes(); g != 3 {
		t.Fatalf("Gigabytes = %v", g)
	}
	if m := (5 * MB).Megabytes(); m != 5 {
		t.Fatalf("Megabytes = %v", m)
	}
}

func TestRateTimeFor(t *testing.T) {
	r := MBps(100)
	d := r.TimeFor(200 * MB)
	if d != 2*time.Second {
		t.Fatalf("TimeFor = %v, want 2s", d)
	}
	// 10 Gbps NIC moves 1.25e9 bytes/s.
	nic := Gbps(10)
	d = nic.TimeFor(Bytes(1.25e9))
	if d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("10Gbps over 1.25GB = %v, want ~1s", d)
	}
}

func TestZeroRateDoesNotPanic(t *testing.T) {
	var r BytesPerSec
	d := r.TimeFor(GB)
	if d <= 0 {
		t.Fatalf("zero rate should yield huge duration, got %v", d)
	}
}

func TestRateString(t *testing.T) {
	if s := MBps(100).String(); s != "100.00MB/s" {
		t.Fatalf("got %q", s)
	}
	if s := GBps(2).String(); s != "2.00GB/s" {
		t.Fatalf("got %q", s)
	}
}
