package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which must be non-negative for the counter to remain
// monotone; this is not enforced).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reads the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger (high-water tracking).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, like the
// standard exposition-format histogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	counts  []int64   // len(bounds)+1
	sum     float64
	samples int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a namespace of metrics. Lookups are get-or-create, so
// instrumentation sites can fetch their metric once and hold the
// pointer; updates after that are a single atomic op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultDurationBuckets suit task/transfer latencies from sub-millisecond
// to minutes, in seconds.
var DefaultDurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300,
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (DefaultDurationBuckets when none are
// given). Bounds are ignored on later lookups of the same name.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultDurationBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// WriteText dumps every metric in sorted order, one per line, in the
// plain-text exposition style ("name value"; histograms expand into
// _bucket/_sum/_count lines).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+4*len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", name, trimFloat(bound), cum))
		}
		cum += h.counts[len(h.bounds)]
		lines = append(lines, fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", name, cum))
		lines = append(lines, fmt.Sprintf("%s_sum %g", name, h.sum))
		lines = append(lines, fmt.Sprintf("%s_count %d", name, h.samples))
		h.mu.Unlock()
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
