package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TransferMatrix folds a trace into the Fig. 7 pairwise heatmap: bytes
// moved from each source to each destination, summed over every
// EvTransferStart event. Sources named "manager" (or a filesystem
// endpoint) versus worker names expose the Work Queue vs TaskVine data
// paths at a glance.
func TransferMatrix(events []Event) map[string]map[string]int64 {
	m := make(map[string]map[string]int64)
	for _, ev := range events {
		if ev.Type != EvTransferStart {
			continue
		}
		row := m[ev.Src]
		if row == nil {
			row = make(map[string]int64)
			m[ev.Src] = row
		}
		row[ev.Dst] += ev.Bytes
	}
	return m
}

// MatrixEndpoints lists every endpoint appearing in a transfer matrix,
// sorted, for stable rendering.
func MatrixEndpoints(m map[string]map[string]int64) []string {
	seen := make(map[string]bool)
	for src, row := range m {
		seen[src] = true
		for dst := range row {
			seen[dst] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ep := range seen {
		out = append(out, ep)
	}
	sort.Strings(out)
	return out
}

// WriteMatrixCSV emits a transfer matrix as src,dst,bytes rows with a
// header, sorted for reproducible output.
func WriteMatrixCSV(w io.Writer, m map[string]map[string]int64) error {
	if _, err := fmt.Fprintln(w, "src,dst,bytes"); err != nil {
		return err
	}
	srcs := make([]string, 0, len(m))
	for s := range m {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	for _, s := range srcs {
		dsts := make([]string, 0, len(m[s]))
		for d := range m[s] {
			dsts = append(dsts, d)
		}
		sort.Strings(dsts)
		for _, d := range dsts {
			if _, err := fmt.Fprintf(w, "%s,%s,%d\n", s, d, m[s][d]); err != nil {
				return err
			}
		}
	}
	return nil
}

// TimelinePoint is one sample of the Fig. 12 state timeline.
type TimelinePoint struct {
	T       time.Duration
	Waiting int
	Running int
	Done    int
	Failed  int
}

// Timeline replays a trace into running/waiting/done counts sampled
// every step — the Fig. 12 first-N-seconds view. The replay keeps
// per-task state, so it tolerates either plane's emission pattern
// (e.g. a retry fired during staging, before any start event).
func Timeline(events []Event, step time.Duration) []TimelinePoint {
	if step <= 0 {
		step = time.Second
	}
	evs := sortedByTime(events)
	if len(evs) == 0 {
		return nil
	}

	const (
		stIdle = iota
		stWaiting
		stRunning
	)
	state := make(map[string]int)
	var cur TimelinePoint
	var out []TimelinePoint
	next := time.Duration(0)

	flushUntil := func(t time.Duration) {
		for next <= t {
			p := cur
			p.T = next
			out = append(out, p)
			next += step
		}
	}

	for _, ev := range evs {
		if ev.T >= next {
			flushUntil(ev.T)
		}
		switch ev.Type {
		case EvTaskSubmit:
			if state[ev.Task] == stIdle {
				state[ev.Task] = stWaiting
				cur.Waiting++
			}
		case EvTaskDispatch, EvTaskStart:
			if state[ev.Task] == stWaiting {
				cur.Waiting--
			}
			if state[ev.Task] != stRunning {
				state[ev.Task] = stRunning
				cur.Running++
			}
		case EvTaskRetry, EvTaskAbort:
			if state[ev.Task] == stRunning {
				cur.Running--
				cur.Waiting++
				state[ev.Task] = stWaiting
			}
		case EvTaskDone, EvTaskFail:
			switch state[ev.Task] {
			case stRunning:
				cur.Running--
			case stWaiting:
				cur.Waiting--
			}
			delete(state, ev.Task)
			if ev.Type == EvTaskDone {
				cur.Done++
			} else {
				cur.Failed++
			}
		}
	}
	// One final sample at the last event time.
	p := cur
	p.T = next
	out = append(out, p)
	return out
}

// WriteTimelineCSV emits timeline samples as seconds,waiting,running,
// done,failed rows with a header.
func WriteTimelineCSV(w io.Writer, pts []TimelinePoint) error {
	if _, err := fmt.Fprintln(w, "seconds,waiting,running,done,failed"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%d\n",
			p.T.Seconds(), p.Waiting, p.Running, p.Done, p.Failed); err != nil {
			return err
		}
	}
	return nil
}

// OccupancySeries is the Fig. 13 view: per-worker busy-task counts over
// time. Busy[i][j] is how many tasks were executing on Workers[i]
// during the j-th step-wide bin.
type OccupancySeries struct {
	Step    time.Duration
	Workers []string
	Busy    [][]int
}

// Occupancy folds EvTaskStart→{EvTaskDone,EvTaskRetry,EvTaskFail}
// intervals into per-worker occupancy bins. Intervals still open when
// the trace ends are closed at the last event time.
func Occupancy(events []Event, step time.Duration) OccupancySeries {
	if step <= 0 {
		step = time.Second
	}
	evs := sortedByTime(events)
	if len(evs) == 0 {
		return OccupancySeries{Step: step}
	}
	end := evs[len(evs)-1].T

	type span struct {
		worker     string
		start, end time.Duration
	}
	open := make(map[string]span) // task → open interval
	var spans []span
	workers := make(map[string]bool)

	for _, ev := range evs {
		switch ev.Type {
		case EvWorkerJoin:
			workers[ev.Worker] = true
		case EvTaskStart:
			w := ev.Worker
			workers[w] = true
			open[ev.Task] = span{worker: w, start: ev.T}
		case EvTaskDone, EvTaskRetry, EvTaskAbort, EvTaskFail:
			if sp, ok := open[ev.Task]; ok {
				sp.end = ev.T
				spans = append(spans, sp)
				delete(open, ev.Task)
			}
		}
	}
	for _, sp := range open {
		sp.end = end
		spans = append(spans, sp)
	}

	names := make([]string, 0, len(workers))
	for w := range workers {
		names = append(names, w)
	}
	sort.Strings(names)
	idx := make(map[string]int, len(names))
	for i, w := range names {
		idx[w] = i
	}

	bins := int(end/step) + 1
	busy := make([][]int, len(names))
	for i := range busy {
		busy[i] = make([]int, bins)
	}
	for _, sp := range spans {
		wi := idx[sp.worker]
		lo := int(sp.start / step)
		hi := int(sp.end / step)
		if hi >= bins {
			hi = bins - 1
		}
		for b := lo; b <= hi; b++ {
			busy[wi][b]++
		}
	}
	return OccupancySeries{Step: step, Workers: names, Busy: busy}
}

// WriteOccupancyCSV emits an occupancy series as seconds,worker,busy
// rows with a header.
func WriteOccupancyCSV(w io.Writer, s OccupancySeries) error {
	if _, err := fmt.Fprintln(w, "seconds,worker,busy"); err != nil {
		return err
	}
	for i, name := range s.Workers {
		for b, n := range s.Busy[i] {
			t := time.Duration(b) * s.Step
			if _, err := fmt.Fprintf(w, "%.3f,%s,%d\n", t.Seconds(), name, n); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedByTime(events []Event) []Event {
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	return evs
}
