package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderRoundTripJSONL(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{T: 1 * time.Millisecond, Type: EvTaskSubmit, Task: "a"})
	r.Record(Event{T: 2 * time.Millisecond, Type: EvTransferStart, Src: "manager", Dst: "w0", Bytes: 4096, Detail: "blob-x"})
	r.Record(Event{T: 3 * time.Millisecond, Type: EvTaskDone, Task: "a", Worker: "w0", Dur: time.Millisecond})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 3 {
		t.Fatalf("JSONL lines = %d, want 3", n)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(back) != len(want) {
		t.Fatalf("round trip length %d, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Fatalf("event %d round trip mismatch: %+v != %+v", i, back[i], want[i])
		}
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"t\":1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: EvTaskSubmit, Task: "x"})
	r.Record(Event{Type: EvTaskDone})
	r.Reset()
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL wrote %q err %v", buf.String(), err)
	}
}

func TestRecorderEmitStampsTime(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Type: EvWorkerJoin, Worker: "w0"})
	evs := r.Events()
	if len(evs) != 1 || evs[0].T <= 0 {
		t.Fatalf("Emit did not stamp time: %+v", evs)
	}
}

func TestRecorderConcurrentAndChunked(t *testing.T) {
	r := NewRecorder()
	const goroutines, per = 8, 2000 // crosses several chunk boundaries
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(Event{T: time.Duration(i), Type: EvTaskStart})
			}
		}()
	}
	wg.Wait()
	if got := r.Len(); got != goroutines*per {
		t.Fatalf("Len = %d, want %d", got, goroutines*per)
	}
	if got := len(r.Events()); got != goroutines*per {
		t.Fatalf("Events len = %d, want %d", got, goroutines*per)
	}
}

func TestRegistryCountersGaugesText(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("tasks_done")
	c.Inc()
	c.Add(2)
	if reg.Counter("tasks_done") != c {
		t.Fatal("Counter not get-or-create")
	}
	g := reg.Gauge("cache_bytes")
	g.Set(10)
	g.Add(-3)
	g.SetMax(5) // below current: no-op
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(99)
	h := reg.Histogram("exec_seconds", 0.1, 1, 10)
	h.Observe(0.05)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d", h.Count())
	}

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tasks_done 3",
		"cache_bytes 99",
		`exec_seconds_bucket{le="0.1"} 1`,
		`exec_seconds_bucket{le="10"} 2`,
		`exec_seconds_bucket{le="+Inf"} 3`,
		"exec_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := Snapshot{TasksDone: 2, PeerBytes: 100, CacheHighWater: 50}
	b := Snapshot{TasksDone: 3, PeerBytes: 11, CacheHighWater: 80, Retries: 1}
	m := a.Merge(b)
	if m.TasksDone != 5 || m.PeerBytes != 111 || m.Retries != 1 {
		t.Fatalf("bad merge: %+v", m)
	}
	if m.CacheHighWater != 80 {
		t.Fatalf("high water should max: %+v", m)
	}
}

// traceFixture is a two-worker run: t0 submits/starts/finishes cleanly,
// t1 retries once (losing w1) before finishing on w0.
func traceFixture() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{T: ms(0), Type: EvWorkerJoin, Worker: "w0"},
		{T: ms(0), Type: EvWorkerJoin, Worker: "w1"},
		{T: ms(1), Type: EvTaskSubmit, Task: "t0"},
		{T: ms(1), Type: EvTaskSubmit, Task: "t1"},
		{T: ms(2), Type: EvTransferStart, Src: "manager", Dst: "w0", Bytes: 1000, Detail: "in"},
		{T: ms(3), Type: EvTransferDone, Src: "manager", Dst: "w0", Bytes: 1000, Detail: "in"},
		{T: ms(3), Type: EvTaskStart, Task: "t0", Worker: "w0"},
		{T: ms(4), Type: EvTaskStart, Task: "t1", Worker: "w1"},
		{T: ms(5), Type: EvTransferStart, Src: "w0", Dst: "w1", Bytes: 500, Detail: "mid"},
		{T: ms(6), Type: EvWorkerLost, Worker: "w1"},
		{T: ms(6), Type: EvTaskRetry, Task: "t1", Worker: "w1", Attempt: 1},
		{T: ms(8), Type: EvTaskDone, Task: "t0", Worker: "w0", Dur: ms(5)},
		{T: ms(9), Type: EvTaskStart, Task: "t1", Worker: "w0", Attempt: 1},
		{T: ms(12), Type: EvTaskDone, Task: "t1", Worker: "w0", Dur: ms(3)},
	}
}

func TestTransferMatrix(t *testing.T) {
	m := TransferMatrix(traceFixture())
	if m["manager"]["w0"] != 1000 || m["w0"]["w1"] != 500 {
		t.Fatalf("bad matrix: %v", m)
	}
	eps := MatrixEndpoints(m)
	if len(eps) != 3 || eps[0] != "manager" || eps[1] != "w0" || eps[2] != "w1" {
		t.Fatalf("bad endpoints: %v", eps)
	}
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	want := "src,dst,bytes\nmanager,w0,1000\nw0,w1,500\n"
	if buf.String() != want {
		t.Fatalf("matrix CSV = %q, want %q", buf.String(), want)
	}
}

func TestTimeline(t *testing.T) {
	pts := Timeline(traceFixture(), time.Millisecond)
	if len(pts) == 0 {
		t.Fatal("empty timeline")
	}
	// At t=5ms both tasks are running, none waiting.
	var at5 TimelinePoint
	for _, p := range pts {
		if p.T == 5*time.Millisecond {
			at5 = p
		}
	}
	if at5.Running != 2 || at5.Waiting != 0 {
		t.Fatalf("at 5ms: %+v, want 2 running", at5)
	}
	// At t=7ms t1 has retried back to waiting.
	for _, p := range pts {
		if p.T == 7*time.Millisecond && (p.Running != 1 || p.Waiting != 1) {
			t.Fatalf("at 7ms: %+v, want 1 running 1 waiting", p)
		}
	}
	last := pts[len(pts)-1]
	if last.Done != 2 || last.Running != 0 || last.Waiting != 0 || last.Failed != 0 {
		t.Fatalf("final point: %+v, want 2 done", last)
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "seconds,waiting,running,done,failed\n") {
		t.Fatalf("bad CSV header: %q", buf.String())
	}
}

func TestTimelineHandlesRetryBeforeStart(t *testing.T) {
	// A staging-phase retry arrives with no prior start; counts must not
	// go negative.
	evs := []Event{
		{T: 1, Type: EvTaskSubmit, Task: "t"},
		{T: 2, Type: EvTaskRetry, Task: "t"},
		{T: 3, Type: EvTaskStart, Task: "t", Worker: "w0"},
		{T: 4, Type: EvTaskDone, Task: "t", Worker: "w0"},
	}
	pts := Timeline(evs, time.Nanosecond)
	for _, p := range pts {
		if p.Running < 0 || p.Waiting < 0 {
			t.Fatalf("negative counts: %+v", p)
		}
	}
	if last := pts[len(pts)-1]; last.Done != 1 {
		t.Fatalf("final: %+v", last)
	}
}

func TestOccupancy(t *testing.T) {
	s := Occupancy(traceFixture(), time.Millisecond)
	if len(s.Workers) != 2 {
		t.Fatalf("workers = %v", s.Workers)
	}
	wi := map[string]int{}
	for i, w := range s.Workers {
		wi[w] = i
	}
	// w0 runs t0 during [3ms,8ms] and t1 during [9ms,12ms].
	if got := s.Busy[wi["w0"]][4]; got != 1 {
		t.Fatalf("w0 busy at 4ms = %d, want 1", got)
	}
	if got := s.Busy[wi["w1"]][5]; got != 1 {
		t.Fatalf("w1 busy at 5ms = %d, want 1", got)
	}
	if got := s.Busy[wi["w1"]][10]; got != 0 {
		t.Fatalf("w1 busy at 10ms = %d, want 0", got)
	}
	var buf bytes.Buffer
	if err := WriteOccupancyCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "seconds,worker,busy\n") {
		t.Fatalf("bad CSV header: %q", buf.String())
	}
}

func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder()
	ev := Event{Type: EvTaskDone, Task: "t", Worker: "w0", Dur: time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = time.Duration(i)
		r.Record(ev)
	}
}

// BenchmarkRecorderDisabled proves the disabled path is a zero-allocation
// no-op (the acceptance bar for always-on instrumentation call sites).
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	ev := Event{Type: EvTaskDone, Task: "t", Worker: "w0", Dur: time.Millisecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(ev)
	}
}
