// Package obs is the unified observability layer shared by both execution
// planes: the live TCP engine (internal/vine) and the discrete-event
// simulator (internal/vinesim). It provides three things:
//
//  1. Recorder — an append-only, lock-cheap buffer of typed lifecycle
//     events (task submit/dispatch/start/done/retry, transfers with
//     src→dst+bytes, worker join/loss, cache evictions, library setups)
//     with JSONL export and import. A nil *Recorder is a valid no-op
//     sink: every method short-circuits without allocating, so tracing
//     can be compiled in everywhere and disabled to zero cost.
//
//  2. Registry — a snapshot metrics registry (counters, gauges,
//     histograms) that replaces the ad-hoc per-component counter
//     structs, plus a plain-text dump in the familiar one-metric-per-
//     line exposition style.
//
//  3. Renderers (render.go) — pure functions that turn an event trace
//     from either plane into the paper's figures: the Fig. 7 pairwise
//     transfer matrix, the Fig. 12 running/waiting timeline, and the
//     Fig. 13 per-worker occupancy series.
//
// Event timestamps are durations since the trace epoch, so live traces
// (stamped from the wall clock) and simulated traces (stamped from the
// virtual clock) render identically.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType names one lifecycle event. The values are stable — they are
// the on-disk JSONL vocabulary.
type EventType string

// The event vocabulary shared by both planes.
const (
	EvTaskSubmit    EventType = "task_submit"    // Task
	EvTaskDispatch  EventType = "task_dispatch"  // Task, Worker, Attempt
	EvTaskStart     EventType = "task_start"     // Task, Worker, Attempt
	EvTaskDone      EventType = "task_done"      // Task, Worker, Attempt, Dur
	EvTaskRetry     EventType = "task_retry"     // Task, Worker, Attempt, Detail=cause
	EvTaskFail      EventType = "task_fail"      // Task, Detail=terminal error
	EvTransferStart EventType = "transfer_start" // Src, Dst, Bytes, Detail=cachename
	EvTransferDone  EventType = "transfer_done"  // Src, Dst, Bytes, Detail=cachename
	EvWorkerJoin    EventType = "worker_join"    // Worker, Detail=cores
	EvWorkerLost    EventType = "worker_lost"    // Worker
	EvCacheEvict    EventType = "cache_evict"    // Worker, Bytes, Detail=cachename
	EvLibrarySetup  EventType = "library_setup"  // Worker, Dur, Detail=library

	// Scheduling vocabulary: one decision per placement. Worker is the
	// chosen worker, Dur the task's queue wait, Detail the policy's
	// reason string (policy, queue, winning score).
	EvSchedDecision EventType = "sched_decision" // Task, Worker, Dur=queue wait, Detail=reason

	// Failure-domain vocabulary (liveness, fast-abort, fault injection).
	EvHeartbeatMiss EventType = "heartbeat_miss" // Worker, Detail=silence duration / side
	EvTaskAbort     EventType = "task_abort"     // Task, Worker, Attempt, Detail=deadline cause
	EvChaosFault    EventType = "chaos_fault"    // Worker=target, Detail=kind+schedule
	EvNetRetry      EventType = "net_retry"      // Src=endpoint, Attempt, Dur=backoff, Detail=cause

	// Integrity and lineage vocabulary: a payload whose checksum failed
	// verification on receipt, and a completed producer task rolled back
	// to regenerate an output whose last replica was lost.
	EvFileCorrupt     EventType = "file_corrupt"     // Src, Dst, Detail=cachename+cause
	EvLineageRollback EventType = "lineage_rollback" // Task=producer, Detail=cachename

	// Durability vocabulary: the run journal and the warm-restart path.
	// A journal append persists one state transition; a warm hit is a
	// resubmitted task served from replayed journal state without
	// re-execution; a manager resume is one restart reconciled against
	// the journal and surviving worker inventories.
	EvJournalAppend EventType = "journal_append" // Task (when task-scoped), Detail=record kind
	EvWarmHit       EventType = "warm_hit"       // Task, Detail=def hash / replica state
	EvManagerResume EventType = "manager_resume" // Detail=replayed/skipped/warm counts

	// Availability vocabulary: hot-standby failover. A takeover is a
	// standby manager assuming a dead primary's role (Dur = lease expiry →
	// first dispatch when observed manager-side); a lease loss is a primary
	// discovering another holder owns its lease and fencing itself so two
	// managers never dispatch concurrently.
	EvTakeover  EventType = "takeover"   // Src=new holder, Attempt=epoch, Dur=takeover latency
	EvLeaseLost EventType = "lease_lost" // Src=holder that lost it, Detail=cause

	// Service vocabulary: the multi-tenant gate (internal/gate). A session
	// is one named client context within a tenant; an admission reject is a
	// submission (or session open) the gate refused under the tenant's
	// limits — rate, in-flight, or session cap.
	EvSessionOpen     EventType = "session_open"     // Src=tenant, Detail=session name
	EvSessionClose    EventType = "session_close"    // Src=tenant, Detail=session name
	EvAdmissionReject EventType = "admission_reject" // Src=tenant, Detail=limit + request

	// Elasticity vocabulary: a preemption notice is a worker entering its
	// grace window (provider eviction or SIGTERM); a drain step is one
	// unit of the worker's wind-down the manager performed on its behalf
	// (a sole-replica offload, or the final release); a pool scale is one
	// autoscaler decision changing the target worker count.
	EvWorkerPreempt EventType = "worker_preempt" // Worker, Dur=grace window, Detail=origin
	EvWorkerDrain   EventType = "worker_drain"   // Worker, Detail=step (offload cachename / released)
	EvPoolScale     EventType = "pool_scale"     // Attempt=new size, Detail=direction + signal

	// Federation vocabulary: a foreman is a subordinate manager owning its
	// own worker pool; a lease grant is one batched frame of tasks handed
	// to a foreman; a cross-shard transfer is a peer-transfer ticket the
	// root brokered so a shard pulls bytes straight from another shard's
	// worker (or the root's staging area) without the payload crossing
	// the root's NIC.
	EvForemanJoin        EventType = "foreman_join"         // Worker=foreman name, Detail=shard summary
	EvLeaseGrant         EventType = "lease_grant"          // Worker=foreman, Attempt=tasks in batch
	EvCrossShardTransfer EventType = "cross_shard_transfer" // Task, Worker=dest foreman, Src=source addr, Bytes
)

// Event is one trace record. T is the offset from the trace epoch
// (wall-clock start for the live plane, virtual time zero for the
// simulator), serialized as integer nanoseconds.
type Event struct {
	T       time.Duration `json:"t"`
	Type    EventType     `json:"type"`
	Task    string        `json:"task,omitempty"`
	Worker  string        `json:"worker,omitempty"`
	Src     string        `json:"src,omitempty"`
	Dst     string        `json:"dst,omitempty"`
	Bytes   int64         `json:"bytes,omitempty"`
	Attempt int           `json:"attempt,omitempty"`
	Dur     time.Duration `json:"dur,omitempty"`
	Detail  string        `json:"detail,omitempty"`
}

// Internal buffer segments grow from firstChunk to maxChunk; full
// segments are never re-copied, so ingestion cost stays flat as the
// trace grows, and short traces don't pay for a large up-front buffer.
const (
	firstChunk = 64
	maxChunk   = 4096
)

// Recorder accumulates events append-only. All methods are safe for
// concurrent use, and all methods on a nil receiver are no-ops — pass a
// nil *Recorder to disable tracing at zero cost.
type Recorder struct {
	epoch time.Time

	mu   sync.Mutex
	full [][]Event
	cur  []Event
	n    int
}

// NewRecorder returns a Recorder whose epoch is now. Live-plane callers
// use Emit (wall-clock stamping); simulators use Record with explicit
// virtual timestamps.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Emit appends ev, stamping ev.T with the wall-clock offset from the
// recorder's epoch when ev.T is zero. No-op on a nil receiver.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	if ev.T == 0 {
		ev.T = time.Since(r.epoch)
	}
	r.record(ev)
}

// Record appends ev exactly as given — the simulator path, where T is
// virtual time. No-op on a nil receiver.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.record(ev)
}

func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	if cap(r.cur) == 0 {
		next := maxChunk
		if s := len(r.full); firstChunk<<s < maxChunk && s < 32 {
			next = firstChunk << s
		}
		r.cur = make([]Event, 0, next)
	}
	r.cur = append(r.cur, ev)
	r.n++
	if len(r.cur) == cap(r.cur) {
		r.full = append(r.full, r.cur)
		r.cur = nil
	}
	r.mu.Unlock()
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Events returns a copy of the trace in ingestion order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	for _, c := range r.full {
		out = append(out, c...)
	}
	out = append(out, r.cur...)
	return out
}

// Reset discards all recorded events, keeping the epoch.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.full, r.cur, r.n = nil, nil, 0
	r.mu.Unlock()
}

// WriteJSONL writes the trace as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	return WriteJSONL(w, r.Events())
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace written by WriteJSONL. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
