package obs

// Snapshot is the shared stats vocabulary for both execution planes. It
// replaces the former vine.ManagerStats / vine.WorkerStats structs and
// the simulator's ad-hoc counters: a manager snapshot fills the
// scheduling and transfer fields, a worker snapshot fills the execution
// and cache fields, and the simulator fills both sides at once. Count
// fields are int and byte totals are int64, matching the field types of
// the structs this replaces.
type Snapshot struct {
	// Manager-side scheduling.
	TasksDone   int
	TasksFailed int
	Retries     int
	WorkersLost int

	// Failure-domain detection: deadline fast-aborts of stragglers and
	// workers declared lost by heartbeat silence rather than TCP error.
	TasksAborted    int
	HeartbeatMisses int

	// Integrity and lineage recovery: transfers whose CRC-32C failed
	// verification on receipt, and completed producer tasks re-enqueued
	// because the last replica of an output they produced was lost.
	CorruptTransfers int
	LineageReruns    int

	// Durability: journal records appended this run, records replayed at
	// the last resume, and resubmitted tasks satisfied from replayed
	// journal state without re-execution (the warm path).
	JournalAppends  int
	JournalReplayed int
	WarmHits        int

	// Elasticity: workers that received a preemption notice (graceful
	// drain or SIGTERM), and sole-replica cache entries the manager
	// offloaded to a peer inside a drain's grace window (each one a
	// lineage rollback that did not happen).
	Preemptions         int
	SoleReplicaOffloads int

	// Transfers, split by source as in §III.B: peer (worker→worker) vs
	// manager-served (the Work Queue data path).
	PeerTransfers    int
	ManagerTransfers int
	PeerBytes        int64
	ManagerBytes     int64

	// Worker-side execution.
	TasksRun      int
	FunctionCalls int
	LibrarySetups int

	// Worker-side data movement and cache.
	TransfersIn    int
	BytesIn        int64
	CacheEvictions int
	CacheHighWater int64

	// Simulator-only environment effects.
	DiskFailures int
	FSReadBytes  int64
}

// Merge combines two snapshots: counts and byte totals add, high-water
// marks take the maximum. Useful for folding per-worker snapshots into a
// cluster-wide view.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	s.TasksDone += o.TasksDone
	s.TasksFailed += o.TasksFailed
	s.Retries += o.Retries
	s.WorkersLost += o.WorkersLost
	s.TasksAborted += o.TasksAborted
	s.HeartbeatMisses += o.HeartbeatMisses
	s.CorruptTransfers += o.CorruptTransfers
	s.LineageReruns += o.LineageReruns
	s.Preemptions += o.Preemptions
	s.SoleReplicaOffloads += o.SoleReplicaOffloads
	s.JournalAppends += o.JournalAppends
	s.JournalReplayed += o.JournalReplayed
	s.WarmHits += o.WarmHits
	s.PeerTransfers += o.PeerTransfers
	s.ManagerTransfers += o.ManagerTransfers
	s.PeerBytes += o.PeerBytes
	s.ManagerBytes += o.ManagerBytes
	s.TasksRun += o.TasksRun
	s.FunctionCalls += o.FunctionCalls
	s.LibrarySetups += o.LibrarySetups
	s.TransfersIn += o.TransfersIn
	s.BytesIn += o.BytesIn
	s.CacheEvictions += o.CacheEvictions
	if o.CacheHighWater > s.CacheHighWater {
		s.CacheHighWater = o.CacheHighWater
	}
	s.DiskFailures += o.DiskFailures
	s.FSReadBytes += o.FSReadBytes
	return s
}
