package sched

import "sort"

// DefaultQueue is where tasks land when they name no queue.
const DefaultQueue = "default"

// Assignment is one placement decision handed to the caller's place
// callback. The caller owns the actual dispatch; the Scheduler has
// already reserved the cores/memory in its own index.
type Assignment struct {
	Task   *Task
	Worker int
	Queue  string
	Score  float64 // the winning candidate's primary (first-scorer) score
	Wait   int64   // ns the task spent queued before this decision
}

// node is the scheduler's capacity + cache index for one worker. files
// mirrors the worker's cache so locality scoring is a map lookup per
// input instead of a scan of manager-global state.
type node struct {
	id          int
	cores       int
	freeCores   int
	memory      int64
	freeMemory  int64
	files       map[string]int64 // cache name -> size
	preemptible bool             // opportunistic slot: may vanish on short notice
	draining    bool             // inside a preemption grace window
}

// Scheduler owns the ready set and the worker index for one plane. It is
// not goroutine-safe: the live manager calls it under its own mutex, the
// simulator is single-threaded.
type Scheduler struct {
	policy *Policy
	queues map[string]*queue
	order  []string // queue creation order, for stable stats/iteration
	nodes  map[int]*node
	ids    []int // sorted worker ids, maintained at join/lost (no per-task sort)
	queued map[string]*Task
	nseq   uint64

	cands   []Candidate // scratch, reused across Assign calls
	blocked []*Task     // scratch: popped but unplaceable this round
}

// New builds a scheduler around a policy (nil means Locality) with the
// given tenant queues. The default queue always exists with weight 1
// unless overridden.
func New(policy *Policy, queues ...QueueConfig) *Scheduler {
	if policy == nil {
		policy = Locality()
	}
	s := &Scheduler{
		policy: policy,
		queues: make(map[string]*queue),
		nodes:  make(map[int]*node),
		queued: make(map[string]*Task),
	}
	s.AddQueue(QueueConfig{Name: DefaultQueue, Weight: 1})
	for _, qc := range queues {
		s.AddQueue(qc)
	}
	return s
}

// Policy reports the active policy.
func (s *Scheduler) Policy() *Policy { return s.policy }

// AddQueue registers or reconfigures a tenant queue.
func (s *Scheduler) AddQueue(qc QueueConfig) {
	name := qc.Name
	if name == "" {
		name = DefaultQueue
	}
	if q, ok := s.queues[name]; ok {
		if qc.Weight > 0 {
			q.weight = qc.Weight
		}
		return
	}
	s.queues[name] = newQueue(name, qc.Weight)
	s.order = append(s.order, name)
}

// RemoveQueue drops a tenant queue, provided it holds no live ready work
// (a queue with pending tasks, and the default queue, are never removed).
// Deprovisioning a departed tenant keeps the fair-share round and the
// stats snapshot from scanning dead queues forever. Reports whether the
// queue was removed. Historical dispatch counts disappear with it; tasks
// later enqueued under the same name recreate it fresh at weight 1.
func (s *Scheduler) RemoveQueue(name string) bool {
	if name == "" || name == DefaultQueue {
		return false
	}
	q, ok := s.queues[name]
	if !ok {
		return false
	}
	if s.hasLive(q) {
		return false
	}
	delete(s.queues, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return true
}

// ---- worker index ----

// WorkerJoin indexes a new worker. Joining twice resets its capacity view.
func (s *Scheduler) WorkerJoin(id, cores int, memory int64) {
	if _, ok := s.nodes[id]; !ok {
		// Insert into the sorted id slice in place — this is the
		// join-time cost that removes the per-task rebuild+sort.
		i := sort.SearchInts(s.ids, id)
		s.ids = append(s.ids, 0)
		copy(s.ids[i+1:], s.ids[i:])
		s.ids[i] = id
	}
	s.nodes[id] = &node{
		id: id, cores: cores, freeCores: cores,
		memory: memory, freeMemory: memory,
		files: make(map[string]int64),
	}
}

// SetWorkerAttrs updates a worker's elasticity attributes. Join resets
// both to false, so the caller re-applies them on re-registration.
// Unknown workers are a no-op.
func (s *Scheduler) SetWorkerAttrs(id int, preemptible, draining bool) {
	if n, ok := s.nodes[id]; ok {
		n.preemptible = preemptible
		n.draining = draining
	}
}

// WorkerAttrs reports a worker's elasticity attributes.
func (s *Scheduler) WorkerAttrs(id int) (preemptible, draining bool) {
	if n, ok := s.nodes[id]; ok {
		return n.preemptible, n.draining
	}
	return false, false
}

// WorkerLost drops a worker from the index.
func (s *Scheduler) WorkerLost(id int) {
	if _, ok := s.nodes[id]; !ok {
		return
	}
	delete(s.nodes, id)
	i := sort.SearchInts(s.ids, id)
	if i < len(s.ids) && s.ids[i] == id {
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

// WorkerIDs returns the maintained ascending-sorted id slice. Callers
// must treat it as read-only and not retain it across scheduler calls.
func (s *Scheduler) WorkerIDs() []int { return s.ids }

// Reserve charges cores/memory for a placement made outside Assign
// (the live engine's replica pushes do not go through here, but tests do).
func (s *Scheduler) Reserve(worker, cores int, memory int64) {
	if n, ok := s.nodes[worker]; ok {
		n.freeCores -= cores
		n.freeMemory -= memory
	}
}

// Release returns a finished task's cores/memory to the index. Unknown
// workers (already lost) are a no-op.
func (s *Scheduler) Release(worker, cores int, memory int64) {
	if n, ok := s.nodes[worker]; ok {
		n.freeCores += cores
		if n.freeCores > n.cores {
			n.freeCores = n.cores
		}
		n.freeMemory += memory
		if n.freeMemory > n.memory {
			n.freeMemory = n.memory
		}
	}
}

// ---- file index (locality) ----

// FileCached records that a worker now holds a cached file.
func (s *Scheduler) FileCached(worker int, name string, size int64) {
	if n, ok := s.nodes[worker]; ok {
		n.files[name] = size
	}
}

// FileEvicted records that a worker dropped one cached file.
func (s *Scheduler) FileEvicted(worker int, name string) {
	if n, ok := s.nodes[worker]; ok {
		delete(n.files, name)
	}
}

// FileForgotten removes a file from every worker's index (manager-side
// unlink of a whole logical file).
func (s *Scheduler) FileForgotten(name string) {
	for _, n := range s.nodes {
		delete(n.files, name)
	}
}

// ---- ready set ----

// Enqueue makes a task ready. Re-enqueueing a task that is already
// queued is a no-op, which makes delayed-requeue timers idempotent. A
// task entering an empty queue has that queue's virtual clock clamped
// forward so an idle tenant cannot bank credit and then monopolise.
func (s *Scheduler) Enqueue(t *Task, now int64) {
	if s.queued[t.ID] == t {
		return
	}
	name := t.Queue
	if name == "" {
		name = DefaultQueue
	}
	q, ok := s.queues[name]
	if !ok {
		s.AddQueue(QueueConfig{Name: name})
		q = s.queues[name]
	}
	if len(q.heap) == 0 {
		if min, any := s.minActiveServed(); any && q.served < min {
			q.served = min
		}
	}
	s.nseq++
	t.seq = s.nseq
	t.EnqueuedAt = now
	s.queued[t.ID] = t
	q.push(t)
}

// minActiveServed is the smallest virtual clock among queues with work.
func (s *Scheduler) minActiveServed() (float64, bool) {
	min, any := 0.0, false
	for _, q := range s.queues {
		if len(q.heap) == 0 {
			continue
		}
		if !any || q.served < min {
			min, any = q.served, true
		}
	}
	return min, any
}

// Dequeue removes a task from the ready set (it was cancelled, failed
// permanently, or won by a straggler while queued). The heap entry
// becomes a tombstone skipped at pop time.
func (s *Scheduler) Dequeue(id string) bool {
	if _, ok := s.queued[id]; !ok {
		return false
	}
	delete(s.queued, id)
	return true
}

// Pending is the number of live (non-tombstoned) ready tasks.
func (s *Scheduler) Pending() int { return len(s.queued) }

// Queues snapshots per-queue stats in creation order.
func (s *Scheduler) Queues() []QueueStats {
	out := make([]QueueStats, 0, len(s.order))
	for _, name := range s.order {
		q := s.queues[name]
		pending := 0
		for _, t := range q.heap {
			if s.queued[t.ID] == t {
				pending++
			}
		}
		out = append(out, QueueStats{
			Name: q.name, Weight: q.weight, Pending: pending,
			Dispatched: q.dispatched, WaitTotal: q.waitTotal, Served: q.served,
		})
	}
	return out
}

// ---- placement ----

// nextQueue picks the tenant owed the next dispatch: smallest virtual
// clock among queues with live work, creation order breaking ties.
func (s *Scheduler) nextQueue() *queue {
	var best *queue
	for _, name := range s.order {
		q := s.queues[name]
		if !s.hasLive(q) {
			continue
		}
		if best == nil || q.served < best.served {
			best = q
		}
	}
	return best
}

// hasLive reports whether a queue holds at least one non-tombstone task,
// discarding dead heap heads as it looks.
func (s *Scheduler) hasLive(q *queue) bool {
	for len(q.heap) > 0 {
		if s.queued[q.heap[0].ID] == q.heap[0] {
			return true
		}
		q.pop() // tombstone: dropped at the heap, already gone from queued
	}
	return false
}

// Assign drains the ready set onto workers until no queued task fits
// anywhere, invoking place once per decision, and returns the number of
// placements. Cores and memory are reserved in the index as decisions
// are made, so one Assign round packs consistently without dispatches
// having landed yet. The hot path allocates nothing in steady state: the
// candidate buffer and blocked stash are reused, the worker id slice is
// maintained incrementally, and score vectors live on the stack.
func (s *Scheduler) Assign(now int64, place func(Assignment)) int {
	placed := 0
	maxFree := s.maxFreeCores()
	s.blocked = s.blocked[:0]
	for {
		if maxFree <= 0 {
			// Cluster saturated: every task needs at least one core, so
			// nothing can place. Ending the round here leaves the heap
			// intact — draining thousands of queued tasks through the
			// blocked stash just to push them back made each Assign call
			// on a busy manager linear in backlog size.
			break
		}
		q := s.nextQueue()
		if q == nil {
			break
		}
		t := q.pop()
		if s.queued[t.ID] != t {
			continue // tombstone that arrived behind a live head
		}
		if t.Cores > maxFree {
			// No worker can take it this round; park it off-heap so the
			// round terminates, re-queue it when the round ends.
			s.blocked = append(s.blocked, t)
			continue
		}
		idx, score := s.policy.Pick(t, s.candidates(t))
		if idx < 0 {
			s.blocked = append(s.blocked, t)
			continue
		}
		win := s.cands[idx].ID
		n := s.nodes[win]
		n.freeCores -= t.Cores
		n.freeMemory -= t.Memory
		if n.freeCores+t.Cores >= maxFree {
			maxFree = s.maxFreeCores()
		}
		delete(s.queued, t.ID)
		wait := now - t.EnqueuedAt
		if wait < 0 {
			wait = 0
		}
		q.charge(t.Cores)
		q.dispatched++
		q.waitTotal += wait
		place(Assignment{Task: t, Worker: win, Queue: q.name, Score: score, Wait: wait})
		placed++
	}
	// Blocked tasks go back with their original seq and EnqueuedAt, so
	// FIFO order and measured wait both survive the failed attempt.
	for _, t := range s.blocked {
		name := t.Queue
		if name == "" {
			name = DefaultQueue
		}
		s.queues[name].push(t)
	}
	s.blocked = s.blocked[:0]
	return placed
}

func (s *Scheduler) maxFreeCores() int {
	max := 0
	for _, id := range s.ids {
		if f := s.nodes[id].freeCores; f > max {
			max = f
		}
	}
	return max
}

// candidates fills the scratch buffer with every indexed worker in
// ascending id order, computing LocalBytes from the file index. Filtering
// is the policy's job; the scheduler only precomputes the facts.
func (s *Scheduler) candidates(t *Task) []Candidate {
	s.cands = s.cands[:0]
	for _, id := range s.ids {
		n := s.nodes[id]
		var local int64
		for _, in := range t.Inputs {
			local += n.files[in]
		}
		s.cands = append(s.cands, Candidate{
			ID: id, Cores: n.cores, FreeCores: n.freeCores,
			Memory: n.memory, FreeMemory: n.freeMemory,
			LocalBytes:  local,
			Preemptible: n.preemptible,
			Draining:    n.draining,
		})
	}
	return s.cands
}
