// Package sched is the scheduling subsystem shared by both execution
// planes: the live TaskVine manager (internal/vine) and the discrete-event
// simulator (internal/vinesim). It separates *policy* — which worker should
// run a ready task — from *mechanism* — queueing, fair-share across
// tenants, and the indexed bookkeeping that keeps placement off the
// O(ready × workers × inputs) rescan path.
//
// Policies follow the k8s scheduler shape: a pipeline of Filters prunes
// infeasible workers, then a vector of Scorers ranks the survivors. Scores
// compare lexicographically (first scorer dominates, later scorers break
// ties) with a final deterministic tie-break on the lowest worker id. The
// default Locality policy reproduces the live manager's historical greedy
// placement bit-for-bit: most local input bytes, then most free cores,
// then lowest id.
package sched

import (
	"fmt"
	"hash/fnv"
)

// Task is the scheduler's view of one ready task. IDs are strings so both
// planes can use their native key types (the live engine formats its int
// ids, the simulator passes dag keys through unchanged).
type Task struct {
	ID       string
	Queue    string // submission queue (tenant); "" means the default queue
	Priority int    // higher runs first within its queue
	Cores    int
	Memory   int64    // bytes; 0 = no requirement
	Inputs   []string // cache names of required inputs, for locality scoring
	Exclude  map[int]bool

	// EnqueuedAt is the plane-relative time the task became ready, used
	// to report queue wait. The live engine passes an offset from manager
	// start; the simulator passes virtual time.
	EnqueuedAt int64 // nanoseconds

	seq uint64 // FIFO tie-break within equal priority, set by Enqueue
}

// Candidate is the scheduler's view of one worker at placement time.
// LocalBytes is precomputed by the caller (the Scheduler's file index or
// the simulator's replica table) so scorers stay O(1) field reads.
type Candidate struct {
	ID         int
	Cores      int
	FreeCores  int
	Memory     int64 // bytes; 0 = unreported
	FreeMemory int64
	LocalBytes int64 // bytes of this task's inputs already cached here

	// Preemptible marks a worker that may vanish on short notice (an
	// opportunistic slot); Draining marks one inside its grace window,
	// winding down. Both default false, so planes that never set worker
	// attributes score and filter exactly as before.
	Preemptible bool
	Draining    bool
}

// Filter prunes candidates that cannot run the task at all.
type Filter interface {
	Name() string
	Keep(t *Task, c *Candidate) bool
}

// Scorer ranks the candidates that survive filtering; higher is better.
type Scorer interface {
	Name() string
	Score(t *Task, c *Candidate) float64
}

// maxScorers bounds the score vector so Pick can compare candidates on a
// stack array with zero per-call allocation.
const maxScorers = 4

// Policy is a named Filter→Score pipeline. Scores compare
// lexicographically in scorer order; the final tie-break is the lowest
// candidate id (candidates are scanned in slice order and only a strictly
// better vector replaces the incumbent, so callers that present
// candidates in ascending id order get deterministic placement).
type Policy struct {
	Name    string
	Filters []Filter
	Scorers []Scorer
}

// Pick returns the index into cands of the chosen worker and the primary
// (first-scorer) score, or -1 if no candidate passes every filter. It
// allocates nothing.
func (p *Policy) Pick(t *Task, cands []Candidate) (int, float64) {
	if len(p.Scorers) > maxScorers {
		panic(fmt.Sprintf("sched: policy %q has %d scorers, max %d", p.Name, len(p.Scorers), maxScorers))
	}
	best := -1
	var bestVec [maxScorers]float64
	var vec [maxScorers]float64
next:
	for i := range cands {
		c := &cands[i]
		for _, f := range p.Filters {
			if !f.Keep(t, c) {
				continue next
			}
		}
		for j, s := range p.Scorers {
			vec[j] = s.Score(t, c)
		}
		if best < 0 || lexLess(bestVec[:len(p.Scorers)], vec[:len(p.Scorers)]) {
			best = i
			bestVec = vec
		}
	}
	if best < 0 {
		return -1, 0
	}
	var primary float64
	if len(p.Scorers) > 0 {
		primary = bestVec[0]
	}
	return best, primary
}

// lexLess reports whether a < b lexicographically (so b should replace a).
func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// ---- built-in filters ----

// FitFilter keeps workers with enough free cores, and enough free memory
// when both sides report memory (matching the live manager's historical
// check: memory is only enforced when the worker reports a limit and the
// task declares a requirement).
type FitFilter struct{}

func (FitFilter) Name() string { return "fit" }

func (FitFilter) Keep(t *Task, c *Candidate) bool {
	if c.FreeCores < t.Cores {
		return false
	}
	if c.Memory > 0 && t.Memory > 0 && c.FreeMemory < t.Memory {
		return false
	}
	return true
}

// ExcludeFilter drops workers the task has been told to avoid — the live
// engine uses it to keep speculative re-dispatches off straggler workers.
type ExcludeFilter struct{}

func (ExcludeFilter) Name() string { return "exclude" }

func (ExcludeFilter) Keep(t *Task, c *Candidate) bool {
	return !t.Exclude[c.ID]
}

// DrainFilter drops workers inside a preemption grace window: a draining
// worker finishes what it has but accepts nothing new.
type DrainFilter struct{}

func (DrainFilter) Name() string { return "drain" }

func (DrainFilter) Keep(t *Task, c *Candidate) bool {
	return !c.Draining
}

// ---- built-in scorers ----

// LocalBytesScorer prefers workers already caching the task's inputs —
// the paper's data-gravity placement.
type LocalBytesScorer struct{}

func (LocalBytesScorer) Name() string { return "local-bytes" }

func (LocalBytesScorer) Score(t *Task, c *Candidate) float64 {
	return float64(c.LocalBytes)
}

// FreeCoresScorer prefers the emptiest worker (spread).
type FreeCoresScorer struct{}

func (FreeCoresScorer) Name() string { return "free-cores" }

func (FreeCoresScorer) Score(t *Task, c *Candidate) float64 {
	return float64(c.FreeCores)
}

// StabilityScorer prefers workers that will not be preempted: 1 for a
// stable worker, 0 for a preemptible one. Constant (and therefore inert)
// on planes that never mark workers preemptible, which is what keeps the
// Locality policy bit-for-bit with the historical greedy placement in
// fixed-pool runs.
type StabilityScorer struct{}

func (StabilityScorer) Name() string { return "stability" }

func (StabilityScorer) Score(t *Task, c *Candidate) float64 {
	if c.Preemptible {
		return 0
	}
	return 1
}

// PackScorer prefers the fullest worker that still fits (bin-pack):
// fewest cores left over after placement.
type PackScorer struct{}

func (PackScorer) Name() string { return "pack" }

func (PackScorer) Score(t *Task, c *Candidate) float64 {
	return -float64(c.FreeCores - t.Cores)
}

// RandomScorer hashes (seed, task, worker) so placement is uniform but
// reproducible for a given seed — the paper-style random baseline.
type RandomScorer struct{ Seed uint64 }

func (RandomScorer) Name() string { return "random" }

func (r RandomScorer) Score(t *Task, c *Candidate) float64 {
	h := fnv.New64a()
	var b [8]byte
	putU64(&b, r.Seed)
	h.Write(b[:])
	h.Write([]byte(t.ID))
	putU64(&b, uint64(c.ID))
	h.Write(b[:])
	return float64(h.Sum64() >> 11) // 53 significant bits fit a float64 exactly
}

func putU64(b *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ---- stock policies ----

// Locality is the default policy: the data-gravity greedy placement
// extracted from the live manager. Most local input bytes, tie-break
// stable over preemptible, tie-break most free cores, tie-break lowest
// worker id. On a pool with no preemptible workers the stability term is
// constant, so placement stays bit-for-bit the historical greedy.
func Locality() *Policy {
	return &Policy{
		Name:    "locality",
		Filters: []Filter{FitFilter{}, ExcludeFilter{}, DrainFilter{}},
		Scorers: []Scorer{LocalBytesScorer{}, StabilityScorer{}, FreeCoresScorer{}},
	}
}

// BinPack fills workers before opening new ones, preferring local data
// among equally full workers. Useful when idle workers can be reclaimed.
func BinPack() *Policy {
	return &Policy{
		Name:    "binpack",
		Filters: []Filter{FitFilter{}, ExcludeFilter{}, DrainFilter{}},
		Scorers: []Scorer{PackScorer{}, LocalBytesScorer{}},
	}
}

// Spread levels load across workers, preferring local data among equally
// loaded workers.
func Spread() *Policy {
	return &Policy{
		Name:    "spread",
		Filters: []Filter{FitFilter{}, ExcludeFilter{}, DrainFilter{}},
		Scorers: []Scorer{FreeCoresScorer{}, LocalBytesScorer{}},
	}
}

// Random is the uniform baseline the paper compares against: any feasible
// worker, chosen by seeded hash.
func Random(seed uint64) *Policy {
	return &Policy{
		Name:    "random",
		Filters: []Filter{FitFilter{}, ExcludeFilter{}, DrainFilter{}},
		Scorers: []Scorer{RandomScorer{Seed: seed}},
	}
}

// Federate is the root-side policy of a two-level federation: the
// "workers" it places onto are foremen, each summarizing a whole shard.
// Locality still leads — a shard already caching the inputs avoids a
// cross-shard peer transfer — but the tie-break is free capacity, which
// at shard granularity is a backlog signal: leases flow to the least
// loaded shard. No stability term: foremen are not preemptible.
func Federate() *Policy {
	return &Policy{
		Name:    "federate",
		Filters: []Filter{FitFilter{}, ExcludeFilter{}, DrainFilter{}},
		Scorers: []Scorer{LocalBytesScorer{}, FreeCoresScorer{}},
	}
}

// ByName resolves a policy by its registry name. The seed only affects
// the random policy.
func ByName(name string, seed uint64) (*Policy, error) {
	switch name {
	case "", "locality":
		return Locality(), nil
	case "binpack":
		return BinPack(), nil
	case "spread":
		return Spread(), nil
	case "random":
		return Random(seed), nil
	case "federate":
		return Federate(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (have %v)", name, Names())
}

// Names lists the stock policies in presentation order: the default
// first, then the alternatives.
func Names() []string {
	return []string{"locality", "binpack", "spread", "random", "federate"}
}
