package sched

import "container/heap"

// Multi-tenant queueing. Each named queue holds its ready tasks in a
// priority heap (higher Priority first, FIFO within equal priority) and
// queues share the cluster by weighted fair share: the scheduler serves
// the queue with the smallest served/weight ratio, charging it the cores
// it dispatches. A queue with weight 2 therefore receives twice the cores
// of a weight-1 queue while both have work, and an idle queue neither
// accumulates credit nor starves others — on reactivation its virtual
// start clamps forward to the minimum of the active queues, the classic
// start-time fairness rule.

// QueueConfig names a submission queue and its fair-share weight.
type QueueConfig struct {
	Name   string
	Weight float64 // defaults to 1 when <= 0
}

// QueueStats is a point-in-time snapshot of one queue, for metrics and
// the multitenant example.
type QueueStats struct {
	Name       string
	Weight     float64
	Pending    int     // tasks waiting in the queue now
	Dispatched int64   // tasks ever dispatched from this queue
	WaitTotal  int64   // summed queue wait of dispatched tasks, ns
	Served     float64 // cores·dispatches charged, weighted (internal fairness clock)
}

// taskHeap orders by Priority descending, then Enqueue sequence ascending
// — the same semantics as the dag tracker's ready heap, so priority-0
// submissions drain in exact submission order.
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// queue is one tenant's ready set plus its fair-share accounting.
type queue struct {
	name       string
	weight     float64
	heap       taskHeap
	served     float64 // Σ cores/weight over dispatches; the virtual clock
	dispatched int64
	waitTotal  int64 // ns
}

func newQueue(name string, weight float64) *queue {
	if weight <= 0 {
		weight = 1
	}
	return &queue{name: name, weight: weight}
}

func (q *queue) push(t *Task) { heap.Push(&q.heap, t) }

func (q *queue) pop() *Task {
	if len(q.heap) == 0 {
		return nil
	}
	return heap.Pop(&q.heap).(*Task)
}

// charge advances the queue's virtual clock by one dispatch of c cores.
func (q *queue) charge(c int) {
	q.served += float64(c) / q.weight
}
