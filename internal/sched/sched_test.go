package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func task(id string, cores int, inputs ...string) *Task {
	return &Task{ID: id, Cores: cores, Inputs: inputs}
}

// ---- policy pipeline ----

func TestFitFilter(t *testing.T) {
	f := FitFilter{}
	tk := &Task{Cores: 2, Memory: 100}
	if f.Keep(tk, &Candidate{FreeCores: 1, Memory: 1000, FreeMemory: 500}) {
		t.Error("kept worker with too few cores")
	}
	if f.Keep(tk, &Candidate{FreeCores: 4, Memory: 1000, FreeMemory: 50}) {
		t.Error("kept worker with too little memory")
	}
	if !f.Keep(tk, &Candidate{FreeCores: 4, Memory: 0, FreeMemory: 0}) {
		t.Error("memory must not be enforced when the worker reports none")
	}
	if !f.Keep(&Task{Cores: 2}, &Candidate{FreeCores: 2, Memory: 1000, FreeMemory: 0}) {
		t.Error("memory must not be enforced when the task declares none")
	}
}

func TestExcludeFilter(t *testing.T) {
	tk := &Task{Exclude: map[int]bool{3: true}}
	f := ExcludeFilter{}
	if f.Keep(tk, &Candidate{ID: 3}) {
		t.Error("kept excluded worker")
	}
	if !f.Keep(tk, &Candidate{ID: 4}) {
		t.Error("dropped non-excluded worker")
	}
}

func TestPickLexicographic(t *testing.T) {
	p := Locality()
	tk := task("t", 1, "a")
	cands := []Candidate{
		{ID: 1, FreeCores: 8, LocalBytes: 10},
		{ID: 2, FreeCores: 2, LocalBytes: 50}, // most local bytes wins despite fewer cores
		{ID: 3, FreeCores: 9, LocalBytes: 50}, // ...unless tied on bytes, then free cores
	}
	idx, score := p.Pick(tk, cands)
	if cands[idx].ID != 3 {
		t.Fatalf("picked worker %d, want 3", cands[idx].ID)
	}
	if score != 50 {
		t.Fatalf("primary score = %v, want 50", score)
	}
}

func TestPickTieBreakLowestID(t *testing.T) {
	p := Locality()
	cands := []Candidate{
		{ID: 7, FreeCores: 4},
		{ID: 2, FreeCores: 4},
		{ID: 9, FreeCores: 4},
	}
	// Candidates are presented in slice order; with fully tied scores the
	// first (and, when callers present ascending ids, the lowest id) wins.
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })
	idx, _ := p.Pick(task("t", 1), cands)
	if cands[idx].ID != 2 {
		t.Fatalf("picked worker %d, want lowest id 2", cands[idx].ID)
	}
}

func TestPickNoFeasible(t *testing.T) {
	idx, _ := Locality().Pick(task("t", 4), []Candidate{{ID: 1, FreeCores: 2}})
	if idx != -1 {
		t.Fatalf("idx = %d, want -1 for no feasible worker", idx)
	}
}

func TestBinPackPrefersFullest(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Cores: 8, FreeCores: 8},
		{ID: 2, Cores: 8, FreeCores: 2},
	}
	idx, _ := BinPack().Pick(task("t", 1), cands)
	if cands[idx].ID != 2 {
		t.Fatalf("binpack picked %d, want fullest feasible worker 2", cands[idx].ID)
	}
}

func TestSpreadPrefersEmptiest(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Cores: 8, FreeCores: 2},
		{ID: 2, Cores: 8, FreeCores: 8},
	}
	idx, _ := Spread().Pick(task("t", 1), cands)
	if cands[idx].ID != 2 {
		t.Fatalf("spread picked %d, want emptiest worker 2", cands[idx].ID)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cands := []Candidate{{ID: 1, FreeCores: 4}, {ID: 2, FreeCores: 4}, {ID: 3, FreeCores: 4}}
	a, _ := Random(42).Pick(task("x", 1), cands)
	b, _ := Random(42).Pick(task("x", 1), cands)
	if a != b {
		t.Fatal("same seed must give the same placement")
	}
	spread := map[int]bool{}
	for i := 0; i < 64; i++ {
		idx, _ := Random(7).Pick(task(fmt.Sprintf("t%d", i), 1), cands)
		spread[cands[idx].ID] = true
	}
	if len(spread) < 2 {
		t.Fatal("random policy never varied placement across tasks")
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if p, err := ByName("", 1); err != nil || p.Name != "locality" {
		t.Fatalf("empty name must default to locality, got %v, %v", p, err)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown policy must error")
	}
}

// legacyPick is the greedy loop previously buried in the live manager's
// pickWorkerLocked, kept here verbatim as a differential oracle: most
// local input bytes, tie-break most free cores, scanning ascending ids so
// the lowest id wins full ties.
func legacyPick(t *Task, cands []Candidate) int {
	best, bestLocal, bestFree := -1, int64(-1), -1
	for i := range cands {
		c := &cands[i]
		if t.Exclude[c.ID] {
			continue
		}
		if c.FreeCores < t.Cores {
			continue
		}
		if c.Memory > 0 && t.Memory > 0 && c.FreeMemory < t.Memory {
			continue
		}
		if c.LocalBytes > bestLocal || (c.LocalBytes == bestLocal && c.FreeCores > bestFree) {
			best, bestLocal, bestFree = i, c.LocalBytes, c.FreeCores
		}
	}
	return best
}

func TestLocalityMatchesLegacyGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pol := Locality()
	for trial := 0; trial < 2000; trial++ {
		nw := 1 + rng.Intn(12)
		cands := make([]Candidate, nw)
		for i := range cands {
			cores := 1 + rng.Intn(16)
			mem := int64(rng.Intn(3)) * 1 << 20 // sometimes unreported
			cands[i] = Candidate{
				ID: i, Cores: cores, FreeCores: rng.Intn(cores + 1),
				Memory: mem, FreeMemory: mem / int64(1+rng.Intn(3)),
				LocalBytes: int64(rng.Intn(4)) * 1000,
			}
		}
		tk := &Task{
			ID: fmt.Sprintf("t%d", trial), Cores: 1 + rng.Intn(4),
			Memory: int64(rng.Intn(2)) * 512 << 10,
		}
		if rng.Intn(4) == 0 {
			tk.Exclude = map[int]bool{rng.Intn(nw): true}
		}
		got, _ := pol.Pick(tk, cands)
		want := legacyPick(tk, cands)
		if got != want {
			t.Fatalf("trial %d: Locality picked %d, legacy greedy picked %d\ntask=%+v\ncands=%+v",
				trial, got, want, tk, cands)
		}
	}
}

// ---- heap ordering ----

func TestHeapOrdering(t *testing.T) {
	s := New(nil)
	s.WorkerJoin(1, 1, 0)
	s.Enqueue(&Task{ID: "low1", Cores: 1, Priority: 0}, 0)
	s.Enqueue(&Task{ID: "hi", Cores: 1, Priority: 5}, 0)
	s.Enqueue(&Task{ID: "low2", Cores: 1, Priority: 0}, 0)
	s.Enqueue(&Task{ID: "mid", Cores: 1, Priority: 3}, 0)

	var got []string
	for len(got) < 4 {
		n := s.Assign(0, func(a Assignment) {
			got = append(got, a.Task.ID)
			s.Release(a.Worker, a.Task.Cores, a.Task.Memory)
		})
		if n == 0 {
			t.Fatal("assign stalled")
		}
	}
	want := []string{"hi", "mid", "low1", "low2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (priority desc, FIFO within class)", got, want)
		}
	}
}

// ---- fair share ----

// drain runs rounds of one-core dispatches on a single one-core worker,
// releasing after each, and counts dispatches per queue.
func drain(t *testing.T, s *Scheduler, rounds int) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for i := 0; i < rounds; i++ {
		n := s.Assign(int64(i), func(a Assignment) {
			counts[a.Queue]++
			s.Release(a.Worker, a.Task.Cores, a.Task.Memory)
		})
		if n == 0 {
			break
		}
	}
	return counts
}

func TestFairShareWeights(t *testing.T) {
	s := New(nil, QueueConfig{Name: "gold", Weight: 3}, QueueConfig{Name: "bronze", Weight: 1})
	s.WorkerJoin(1, 1, 0)
	for i := 0; i < 40; i++ {
		s.Enqueue(&Task{ID: fmt.Sprintf("g%d", i), Queue: "gold", Cores: 1}, 0)
		s.Enqueue(&Task{ID: fmt.Sprintf("b%d", i), Queue: "bronze", Cores: 1}, 0)
	}
	// 40 single-slot rounds: weight 3:1 should translate to ~30:10.
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		s.Assign(int64(i), func(a Assignment) {
			counts[a.Queue]++
			s.Release(a.Worker, a.Task.Cores, a.Task.Memory)
		})
	}
	if counts["gold"] < 28 || counts["gold"] > 32 {
		t.Fatalf("gold got %d of 40 dispatches, want ~30 for weight 3:1 (bronze %d)",
			counts["gold"], counts["bronze"])
	}
}

func TestFairShareIdleQueueBanksNoCredit(t *testing.T) {
	s := New(nil, QueueConfig{Name: "a", Weight: 1}, QueueConfig{Name: "b", Weight: 1})
	s.WorkerJoin(1, 1, 0)
	// Queue a runs alone for a while, racking up served time.
	for i := 0; i < 20; i++ {
		s.Enqueue(&Task{ID: fmt.Sprintf("a%d", i), Queue: "a", Cores: 1}, 0)
	}
	drain(t, s, 20)
	// Now b wakes up with a backlog alongside fresh a work. Without the
	// virtual-start clamp b would monopolise the worker for 20 dispatches.
	for i := 0; i < 20; i++ {
		s.Enqueue(&Task{ID: fmt.Sprintf("a2%d", i), Queue: "a", Cores: 1}, 0)
		s.Enqueue(&Task{ID: fmt.Sprintf("b%d", i), Queue: "b", Cores: 1}, 0)
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		s.Assign(int64(i), func(a Assignment) {
			counts[a.Queue]++
			s.Release(a.Worker, a.Task.Cores, a.Task.Memory)
		})
	}
	if counts["b"] > 12 {
		t.Fatalf("reactivated queue b took %d of 20 slots — idle time banked as credit", counts["b"])
	}
	if counts["a"] == 0 {
		t.Fatal("queue a starved by reactivated queue")
	}
}

// ---- scheduler mechanics ----

func TestWorkerIndexStaysSorted(t *testing.T) {
	s := New(nil)
	for _, id := range []int{5, 1, 9, 3, 7} {
		s.WorkerJoin(id, 4, 0)
	}
	s.WorkerLost(9)
	s.WorkerLost(1)
	ids := s.WorkerIDs()
	want := []int{3, 5, 7}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestEnqueueDedupAndDequeue(t *testing.T) {
	s := New(nil)
	s.WorkerJoin(1, 4, 0)
	tk := task("t1", 1)
	s.Enqueue(tk, 0)
	s.Enqueue(tk, 5) // duplicate: no-op, keeps original EnqueuedAt
	if s.Pending() != 1 {
		t.Fatalf("pending = %d after duplicate enqueue, want 1", s.Pending())
	}
	if tk.EnqueuedAt != 0 {
		t.Fatalf("duplicate enqueue reset EnqueuedAt to %d", tk.EnqueuedAt)
	}
	if !s.Dequeue("t1") {
		t.Fatal("dequeue of queued task returned false")
	}
	if s.Dequeue("t1") {
		t.Fatal("second dequeue returned true")
	}
	n := s.Assign(0, func(Assignment) {})
	if n != 0 {
		t.Fatalf("assigned %d tasks after dequeue, want 0", n)
	}
	// Re-enqueue after dequeue must work (requeue path).
	s.Enqueue(tk, 10)
	placed := ""
	s.Assign(12, func(a Assignment) { placed = a.Task.ID })
	if placed != "t1" {
		t.Fatalf("re-enqueued task not placed (got %q)", placed)
	}
}

func TestQueueWaitReported(t *testing.T) {
	s := New(nil)
	s.WorkerJoin(1, 1, 0)
	s.Enqueue(task("t1", 1), 100)
	var wait int64 = -1
	s.Assign(700, func(a Assignment) { wait = a.Wait })
	if wait != 600 {
		t.Fatalf("wait = %d, want 600", wait)
	}
	qs := s.Queues()
	if len(qs) == 0 || qs[0].Dispatched != 1 || qs[0].WaitTotal != 600 {
		t.Fatalf("queue stats = %+v, want dispatched 1 / wait 600", qs)
	}
}

func TestBlockedTaskDoesNotStallRound(t *testing.T) {
	s := New(nil)
	s.WorkerJoin(1, 2, 0)
	s.Enqueue(&Task{ID: "big", Cores: 8, Priority: 9}, 0) // can never fit
	s.Enqueue(task("small", 1), 0)
	placed := []string{}
	s.Assign(0, func(a Assignment) { placed = append(placed, a.Task.ID) })
	if len(placed) != 1 || placed[0] != "small" {
		t.Fatalf("placed %v, want [small] with big parked", placed)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want blocked big still queued", s.Pending())
	}
}

func TestLocalityUsesFileIndex(t *testing.T) {
	s := New(nil)
	s.WorkerJoin(1, 4, 0)
	s.WorkerJoin(2, 4, 0)
	s.FileCached(2, "input.root", 1<<20)
	var worker int
	s.Enqueue(task("t", 1, "input.root"), 0)
	s.Assign(0, func(a Assignment) { worker = a.Worker })
	if worker != 2 {
		t.Fatalf("placed on %d, want data-local worker 2", worker)
	}
	// After eviction the tie falls back to lowest id.
	s.FileEvicted(2, "input.root")
	s.Release(2, 1, 0)
	s.Enqueue(task("t2", 1, "input.root"), 0)
	s.Assign(0, func(a Assignment) { worker = a.Worker })
	if worker != 1 {
		t.Fatalf("placed on %d after eviction, want 1", worker)
	}
}

// The hot path must not allocate per placement: the candidate buffer is
// reused, the id slice is maintained, and score vectors are stack arrays.
func TestAssignSteadyStateAllocs(t *testing.T) {
	s := New(nil)
	for i := 0; i < 8; i++ {
		s.WorkerJoin(i, 4, 0)
	}
	tasks := make([]*Task, 64)
	for i := range tasks {
		tasks[i] = task(fmt.Sprintf("t%d", i), 1)
	}
	i := 0
	// Warm up once so lazily-grown scratch buffers reach steady state.
	run := func() {
		for _, tk := range tasks {
			s.Enqueue(tk, int64(i))
		}
		s.Assign(int64(i), func(a Assignment) {
			s.Release(a.Worker, a.Task.Cores, a.Task.Memory)
		})
		i++
	}
	run()
	avg := testing.AllocsPerRun(10, run)
	// Enqueue itself heap-pushes into a pre-grown slice; allow a tiny
	// budget for map internals but nothing proportional to workers×tasks.
	if avg > 5 {
		t.Fatalf("steady-state Assign allocates %.1f per round, want ~0", avg)
	}
}

func BenchmarkAssign(b *testing.B) {
	s := New(nil)
	for i := 0; i < 32; i++ {
		s.WorkerJoin(i, 8, 0)
	}
	tasks := make([]*Task, 256)
	for i := range tasks {
		tasks[i] = task(fmt.Sprintf("t%d", i), 1, "f1", "f2")
	}
	for i := 0; i < 32; i++ {
		s.FileCached(i, "f1", 1000)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, tk := range tasks {
			s.Enqueue(tk, int64(n))
		}
		s.Assign(int64(n), func(a Assignment) {
			s.Release(a.Worker, a.Task.Cores, a.Task.Memory)
		})
	}
}

// ---- queue deprovisioning ----

func TestRemoveQueue(t *testing.T) {
	s := New(nil, QueueConfig{Name: "tenant:a", Weight: 2})
	// Protected names.
	if s.RemoveQueue("") || s.RemoveQueue(DefaultQueue) {
		t.Fatal("removed a protected queue")
	}
	if s.RemoveQueue("nope") {
		t.Fatal("removed a queue that does not exist")
	}
	// A queue with live work is kept.
	tk := task("t1", 1)
	tk.Queue = "tenant:a"
	s.WorkerJoin(0, 4, 0)
	s.Enqueue(tk, 0)
	if s.RemoveQueue("tenant:a") {
		t.Fatal("removed a queue with pending work")
	}
	// Drained, it goes away — and disappears from the stats snapshot.
	s.Assign(0, func(a Assignment) {})
	if !s.RemoveQueue("tenant:a") {
		t.Fatal("could not remove a drained queue")
	}
	for _, q := range s.Queues() {
		if q.Name == "tenant:a" {
			t.Fatal("removed queue still in stats")
		}
	}
	// Re-enqueueing under the same name recreates it fresh at weight 1.
	tk2 := task("t2", 1)
	tk2.Queue = "tenant:a"
	s.Enqueue(tk2, 0)
	for _, q := range s.Queues() {
		if q.Name == "tenant:a" && q.Weight != 1 {
			t.Fatalf("recreated queue weight = %v", q.Weight)
		}
	}
	// A tombstoned (dequeued) task does not pin the queue.
	s.Dequeue("t2")
	if !s.RemoveQueue("tenant:a") {
		t.Fatal("tombstone pinned the queue")
	}
}

// ---- elasticity: preemption-aware placement (PR 9) ----

func TestDrainFilterExcludesDrainingWorkers(t *testing.T) {
	f := DrainFilter{}
	if f.Keep(task("t", 1), &Candidate{ID: 1, Draining: true}) {
		t.Error("kept a draining worker")
	}
	if !f.Keep(task("t", 1), &Candidate{ID: 2, Preemptible: true}) {
		t.Error("dropped a merely-preemptible worker; only draining ones are excluded")
	}
}

func TestStabilityBreaksLocalityTies(t *testing.T) {
	// Equal local bytes: the stable worker must win over the preemptible
	// one even when the preemptible worker has more free cores — stability
	// ranks above FreeCores in the Locality score vector.
	p := Locality()
	cands := []Candidate{
		{ID: 1, FreeCores: 8, LocalBytes: 50, Preemptible: true},
		{ID: 2, FreeCores: 2, LocalBytes: 50},
	}
	idx, _ := p.Pick(task("t", 1, "a"), cands)
	if cands[idx].ID != 2 {
		t.Fatalf("picked worker %d, want stable worker 2", cands[idx].ID)
	}
	// ...but locality still dominates stability: a preemptible worker
	// holding more of the inputs beats a stable one holding less.
	cands = []Candidate{
		{ID: 1, FreeCores: 2, LocalBytes: 90, Preemptible: true},
		{ID: 2, FreeCores: 8, LocalBytes: 10},
	}
	idx, _ = p.Pick(task("t", 1, "a"), cands)
	if cands[idx].ID != 1 {
		t.Fatalf("picked worker %d, want data-local worker 1", cands[idx].ID)
	}
}

func TestStockPoliciesFilterDraining(t *testing.T) {
	for _, p := range []*Policy{Locality(), BinPack(), Spread(), Random(7)} {
		cands := []Candidate{
			{ID: 1, FreeCores: 8, Draining: true},
			{ID: 2, FreeCores: 8},
		}
		idx, _ := p.Pick(task("t", 1), cands)
		if idx == -1 || cands[idx].ID != 2 {
			t.Fatalf("%s: picked draining worker (idx=%d)", p.Name, idx)
		}
		// A pool that is all-draining is infeasible for new work.
		idx, _ = p.Pick(task("t", 1), []Candidate{{ID: 1, FreeCores: 8, Draining: true}})
		if idx != -1 {
			t.Fatalf("%s: placed work on a draining-only pool", p.Name)
		}
	}
}

func TestSchedulerWorkerAttrsRoundTrip(t *testing.T) {
	s := New(Locality())
	s.WorkerJoin(1, 4, 0)
	pre, dr := s.WorkerAttrs(1)
	if pre || dr {
		t.Fatalf("fresh worker attrs = (%v, %v), want stable and not draining", pre, dr)
	}
	s.SetWorkerAttrs(1, true, false)
	if pre, dr = s.WorkerAttrs(1); !pre || dr {
		t.Fatalf("attrs after SetWorkerAttrs(true,false) = (%v, %v)", pre, dr)
	}
	s.SetWorkerAttrs(1, true, true)
	// A draining worker must stop receiving assignments entirely.
	s.Enqueue(task("t1", 1), 0)
	var placed []Assignment
	if n := s.Assign(0, func(a Assignment) { placed = append(placed, a) }); n != 0 {
		t.Fatalf("assigned %d tasks to a draining-only pool", n)
	}
	s.WorkerJoin(2, 4, 0)
	if n := s.Assign(0, func(a Assignment) { placed = append(placed, a) }); n != 1 {
		t.Fatalf("assigned %d tasks, want 1 once a stable worker joins", n)
	}
	if len(placed) != 1 || placed[0].Worker != 2 {
		t.Fatalf("assignments = %+v, want t1 on the fresh stable worker 2", placed)
	}
}
