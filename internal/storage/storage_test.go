package storage

import (
	"errors"
	"testing"
	"time"

	"hepvine/internal/netsim"
	"hepvine/internal/params"
	"hepvine/internal/sim"
	"hepvine/internal/units"
)

func TestLocalDiskPutHasDel(t *testing.T) {
	d := NewLocalDisk(100 * units.MB)
	if err := d.Put("a", 60*units.MB); err != nil {
		t.Fatal(err)
	}
	if !d.Has("a") || d.Used() != 60*units.MB {
		t.Fatalf("state wrong: used=%v", d.Used())
	}
	if d.Size("a") != 60*units.MB {
		t.Fatalf("size = %v", d.Size("a"))
	}
	d.Del("a")
	if d.Has("a") || d.Used() != 0 {
		t.Fatal("del failed")
	}
	d.Del("a") // idempotent
}

func TestLocalDiskOverflow(t *testing.T) {
	d := NewLocalDisk(100 * units.MB)
	if err := d.Put("a", 60*units.MB); err != nil {
		t.Fatal(err)
	}
	err := d.Put("b", 60*units.MB)
	if err == nil {
		t.Fatal("overflow accepted")
	}
	var full *ErrDiskFull
	if !errors.As(err, &full) {
		t.Fatalf("error type %T", err)
	}
	if full.Need != 60*units.MB || full.Capacity != 100*units.MB {
		t.Fatalf("error fields: %+v", full)
	}
	// Failed put stores nothing.
	if d.Has("b") || d.Used() != 60*units.MB {
		t.Fatal("failed put left residue")
	}
}

func TestLocalDiskIdempotentPut(t *testing.T) {
	d := NewLocalDisk(100 * units.MB)
	d.Put("a", 60*units.MB)
	if err := d.Put("a", 60*units.MB); err != nil {
		t.Fatal(err)
	}
	if d.Used() != 60*units.MB {
		t.Fatalf("duplicate put double-counted: %v", d.Used())
	}
}

func TestLocalDiskUnlimited(t *testing.T) {
	d := NewLocalDisk(0)
	if err := d.Put("a", 10*units.TB); err != nil {
		t.Fatal(err)
	}
}

func TestLocalDiskHighWater(t *testing.T) {
	d := NewLocalDisk(0)
	d.Put("a", 10*units.MB)
	d.Put("b", 20*units.MB)
	d.Del("a")
	if d.HighWater != 30*units.MB {
		t.Fatalf("high water = %v", d.HighWater)
	}
}

func TestLocalDiskClearAndFiles(t *testing.T) {
	d := NewLocalDisk(0)
	d.Put("b", 1)
	d.Put("a", 1)
	files := d.Files()
	if len(files) != 2 || files[0] != "a" {
		t.Fatalf("files = %v", files)
	}
	d.Clear()
	if d.Used() != 0 || len(d.Files()) != 0 {
		t.Fatal("clear failed")
	}
}

func TestSharedFSReadTiming(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng)
	fs := NewSharedFS(eng, net, params.FS{
		Name: "test", OpLatency: 10 * time.Millisecond,
		AggregateRead: units.MBps(100), AggregateWrite: units.MBps(100),
	})
	node := net.AddEndpoint("n", units.GBps(10), units.GBps(10), 0)
	var doneAt time.Duration
	fs.Read(node, 100*units.MB, func() { doneAt = eng.Now() })
	eng.Run(0)
	// 1s transfer + 10ms op latency.
	want := 1010 * time.Millisecond
	if doneAt < want-20*time.Millisecond || doneAt > want+20*time.Millisecond {
		t.Fatalf("read finished at %v, want ~%v", doneAt, want)
	}
	if fs.BytesRead != 100*units.MB || fs.ReadOps != 1 {
		t.Fatalf("counters: %v/%d", fs.BytesRead, fs.ReadOps)
	}
}

func TestSharedFSAggregateContention(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng)
	fs := NewSharedFS(eng, net, params.FS{
		Name: "test", AggregateRead: units.MBps(100), AggregateWrite: units.MBps(100),
	})
	n1 := net.AddEndpoint("n1", units.GBps(10), units.GBps(10), 0)
	n2 := net.AddEndpoint("n2", units.GBps(10), units.GBps(10), 0)
	var t1, t2 time.Duration
	fs.Read(n1, 100*units.MB, func() { t1 = eng.Now() })
	fs.Read(n2, 100*units.MB, func() { t2 = eng.Now() })
	eng.Run(0)
	// Two readers share 100MB/s aggregate → ~2s each.
	for _, d := range []time.Duration{t1, t2} {
		if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
			t.Fatalf("contended reads at %v/%v, want ~2s", t1, t2)
		}
	}
}

func TestSharedFSWrite(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng)
	fs := NewSharedFS(eng, net, params.VAST)
	node := net.AddEndpoint("n", units.GBps(10), units.GBps(10), 0)
	done := false
	fs.Write(node, 10*units.MB, func() { done = true })
	eng.Run(0)
	if !done || fs.BytesWritten != 10*units.MB || fs.WriteOps != 1 {
		t.Fatal("write accounting wrong")
	}
}

func TestMetaDelay(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng)
	fs := NewSharedFS(eng, net, params.FS{Name: "x", OpLatency: 2 * time.Millisecond, AggregateRead: units.MBps(1)})
	if d := fs.MetaDelay(100); d != 200*time.Millisecond {
		t.Fatalf("meta delay = %v", d)
	}
}

func TestHDFSvsVASTImportCost(t *testing.T) {
	// The Fig. 10 premise: imports are metadata-heavy, so local disk beats
	// the shared FS, and VAST beats HDFS by orders of magnitude.
	hdfs := params.ImportCost(params.HDFS)
	vast := params.ImportCost(params.VAST)
	local := params.ImportCost(params.LocalDisk)
	if !(local < vast && vast < hdfs) {
		t.Fatalf("import costs out of order: local=%v vast=%v hdfs=%v", local, vast, hdfs)
	}
}
