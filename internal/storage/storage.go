// Package storage models the storage layer of the stack (§II.D): shared
// parallel filesystems (the HDFS the applications started on, the VAST
// NVMe system they moved to) and worker-local disks (where TaskVine keeps
// its cache).
//
// A shared filesystem is a network endpoint with aggregate bandwidth caps
// and a per-operation latency; reads and writes are netsim flows, so
// clients contend for the filesystem's aggregate bandwidth exactly like
// they contend for NICs. A local disk is a capacity-tracked byte ledger:
// the simulation plane uses it to reproduce the cache-overflow failures of
// Fig. 11.
package storage

import (
	"fmt"
	"sort"
	"time"

	"hepvine/internal/netsim"
	"hepvine/internal/params"
	"hepvine/internal/sim"
	"hepvine/internal/units"
)

// FileID names a file in the simulation plane: dataset chunks ("ds:...")
// and task outputs ("out:<task key>").
type FileID string

// SharedFS is a shared filesystem attached to the cluster fabric.
type SharedFS struct {
	Spec params.FS
	EP   *netsim.Endpoint

	eng *sim.Engine
	net *netsim.Network

	// counters
	BytesRead    units.Bytes
	BytesWritten units.Bytes
	ReadOps      int
	WriteOps     int
}

// NewSharedFS attaches a filesystem model to the network.
func NewSharedFS(eng *sim.Engine, net *netsim.Network, spec params.FS) *SharedFS {
	ep := net.AddEndpoint("fs:"+spec.Name, spec.AggregateWrite, spec.AggregateRead, spec.OpLatency)
	return &SharedFS{Spec: spec, EP: ep, eng: eng, net: net}
}

// Read streams size bytes from the filesystem to dst and calls done when
// the last byte lands. The flow pays the filesystem's per-op latency and
// shares its aggregate read bandwidth with concurrent readers.
func (s *SharedFS) Read(dst *netsim.Endpoint, size units.Bytes, done func()) {
	s.ReadOps++
	s.BytesRead += size
	s.net.Transfer(s.EP, dst, size, done)
}

// Write streams size bytes from src into the filesystem.
func (s *SharedFS) Write(src *netsim.Endpoint, size units.Bytes, done func()) {
	s.WriteOps++
	s.BytesWritten += size
	s.net.Transfer(src, s.EP, size, done)
}

// MetaDelay reports the wall-clock cost of n metadata operations (library
// import sweeps, directory walks). Callers schedule it as task-local time.
func (s *SharedFS) MetaDelay(n int) time.Duration {
	return time.Duration(n) * s.Spec.OpLatency
}

// LocalDisk is a worker-local cache with finite capacity.
type LocalDisk struct {
	Capacity units.Bytes

	used      units.Bytes
	files     map[FileID]units.Bytes
	HighWater units.Bytes
}

// NewLocalDisk returns an empty disk; capacity 0 means unlimited.
func NewLocalDisk(capacity units.Bytes) *LocalDisk {
	return &LocalDisk{Capacity: capacity, files: make(map[FileID]units.Bytes)}
}

// ErrDiskFull reports a cache overflow.
type ErrDiskFull struct {
	Need, Used, Capacity units.Bytes
}

func (e *ErrDiskFull) Error() string {
	return fmt.Sprintf("storage: disk full: need %v with %v/%v used", e.Need, e.Used, e.Capacity)
}

// Put stores a file; storing an already-present file is a no-op. Overflow
// returns *ErrDiskFull and stores nothing.
func (d *LocalDisk) Put(id FileID, size units.Bytes) error {
	if _, ok := d.files[id]; ok {
		return nil
	}
	if d.Capacity > 0 && d.used+size > d.Capacity {
		return &ErrDiskFull{Need: size, Used: d.used, Capacity: d.Capacity}
	}
	d.files[id] = size
	d.used += size
	if d.used > d.HighWater {
		d.HighWater = d.used
	}
	return nil
}

// Has reports whether the file is cached.
func (d *LocalDisk) Has(id FileID) bool {
	_, ok := d.files[id]
	return ok
}

// Size reports a cached file's size (0 if absent).
func (d *LocalDisk) Size(id FileID) units.Bytes { return d.files[id] }

// Del removes a file if present.
func (d *LocalDisk) Del(id FileID) {
	if size, ok := d.files[id]; ok {
		delete(d.files, id)
		d.used -= size
	}
}

// Used reports current consumption.
func (d *LocalDisk) Used() units.Bytes { return d.used }

// Files lists cached ids, sorted, for tests.
func (d *LocalDisk) Files() []FileID {
	out := make([]FileID, 0, len(d.files))
	for id := range d.files {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clear drops everything (worker preemption).
func (d *LocalDisk) Clear() {
	d.files = make(map[FileID]units.Bytes)
	d.used = 0
}
