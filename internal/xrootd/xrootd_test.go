package xrootd

import (
	"strings"
	"testing"
	"time"

	"hepvine/internal/rootio"
)

func newServer(t *testing.T, delay time.Duration) (*Server, string, int) {
	t.Helper()
	dir := t.TempDir()
	const events = 600
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "remote", Files: 2, EventsPerFile: events, BasketSize: 128,
		Gen: rootio.GenOptions{Seed: 31},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(dir, delay)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	name := strings.TrimPrefix(paths[0], dir+"/")
	return s, name, events
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestOpen(t *testing.T) {
	s, name, events := newServer(t, 0)
	c := dial(t, s)
	n, basket, err := c.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(events) || basket != 128 {
		t.Fatalf("open: %d events, basket %d", n, basket)
	}
	if s.Stats().Opens != 1 {
		t.Fatalf("opens = %d", s.Stats().Opens)
	}
}

func TestRemoteMatchesLocalFlat(t *testing.T) {
	s, name, events := newServer(t, 0)
	c := dial(t, s)
	remote, err := c.ReadFlat(name, "MET_pt", 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	rd, closer, err := rootio.Open(s.dir + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	local, err := rd.ReadFlat("MET_pt", 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("lengths %d vs %d", len(remote), len(local))
	}
	for i := range local {
		if remote[i] != local[i] {
			t.Fatalf("value %d differs", i)
		}
	}
	_ = events
}

func TestRemoteMatchesLocalJagged(t *testing.T) {
	s, name, _ := newServer(t, 0)
	c := dial(t, s)
	remote, err := c.ReadJagged(name, "Jet_pt", 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	rd, closer, _ := rootio.Open(s.dir + "/" + name)
	defer closer.Close()
	local, err := rd.ReadJagged("Jet_pt", 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Counts) != len(local.Counts) || len(remote.Values) != len(local.Values) {
		t.Fatal("shape differs")
	}
	for i := range local.Values {
		if remote.Values[i] != local.Values[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestSequentialRequestsOneConnection(t *testing.T) {
	s, name, events := newServer(t, 0)
	c := dial(t, s)
	total := 0
	for lo := int64(0); lo < int64(events); lo += 100 {
		hi := lo + 100
		vals, err := c.ReadFlat(name, "MET_pt", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		total += len(vals)
	}
	if total != events {
		t.Fatalf("read %d of %d", total, events)
	}
	if s.Stats().Reads != events/100 {
		t.Fatalf("server reads = %d", s.Stats().Reads)
	}
}

func TestErrors(t *testing.T) {
	s, name, _ := newServer(t, 0)
	c := dial(t, s)
	if _, _, err := c.Open("nonexistent.vrt"); err == nil {
		t.Fatal("missing file opened")
	}
	if _, _, err := c.Open("../escape.vrt"); err == nil {
		t.Fatal("path traversal accepted")
	}
	if _, err := c.ReadFlat(name, "NoSuchBranch", 0, 10); err == nil {
		t.Fatal("missing branch read")
	}
	if _, err := c.ReadFlat(name, "MET_pt", 0, 1<<40); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	// Jagged branch via flat verb must fail.
	if _, err := c.ReadFlat(name, "Jet_pt", 0, 10); err == nil {
		t.Fatal("jagged-as-flat accepted")
	}
	// Connection survives errors.
	if _, err := c.ReadFlat(name, "MET_pt", 0, 10); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestWANDelayVisible(t *testing.T) {
	fast, nameF, _ := newServer(t, 0)
	slow, nameS, _ := newServer(t, 20*time.Millisecond)
	cf, cs := dial(t, fast), dial(t, slow)

	const reqs = 10
	timeIt := func(c *Client, name string) time.Duration {
		start := time.Now()
		for i := 0; i < reqs; i++ {
			if _, err := c.ReadFlat(name, "MET_pt", 0, 50); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	tFast := timeIt(cf, nameF)
	tSlow := timeIt(cs, nameS)
	// 10 requests x 20ms ≥ 200ms of injected latency.
	if tSlow-tFast < 150*time.Millisecond {
		t.Fatalf("WAN delay invisible: fast %v slow %v", tFast, tSlow)
	}
}

func TestServerCloseStopsService(t *testing.T) {
	s, name, _ := newServer(t, 0)
	c := dial(t, s)
	if _, _, err := c.Open(name); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Dial(s.Addr()); err == nil {
		// Dial may race the close; a subsequent request must fail.
		c2, _ := Dial(s.Addr())
		if c2 != nil {
			if _, _, err := c2.Open(name); err == nil {
				t.Fatal("server alive after Close")
			}
			c2.Close()
		}
	}
}
