package xrootd

import (
	"math"
	"path/filepath"
	"testing"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/rootio"
)

// The federation path end to end: a real analysis processor runs over a
// remote file through the column-reader adapter and produces bin-identical
// physics to a local run — §III.A's "accessing specific columns in remote
// ROOT files", wired into the analysis layer.
func TestRemoteAnalysisMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "fed", Files: 1, EventsPerFile: 2000, BasketSize: 256,
		Gen: rootio.GenOptions{Seed: 55, MeanJets: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	remote, err := c.OpenRemote(filepath.Base(paths[0]))
	if err != nil {
		t.Fatal(err)
	}
	var _ coffea.ColumnReader = remote // compile-time contract check

	chunk := coffea.Chunk{Dataset: "fed", Path: paths[0], Lo: 100, Hi: 1500}
	proc := apps.DV3Processor{}
	got, err := coffea.ProcessChunkFrom(proc, remote, chunk)
	if err != nil {
		t.Fatal(err)
	}
	want, err := coffea.ProcessChunk(proc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range want.Names() {
		for i := range want.H[name].Counts {
			if math.Abs(want.H[name].Counts[i]-got.H[name].Counts[i]) > 1e-9 {
				t.Fatalf("%s bin %d differs remotely", name, i)
			}
		}
	}
	if srv.Stats().Reads == 0 {
		t.Fatal("no remote reads recorded")
	}
}
