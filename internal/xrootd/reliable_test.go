package xrootd

import (
	"strings"
	"testing"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/rootio"
)

// twoServers exports the same dataset from two independent endpoints —
// the replicated-federation topology failover assumes.
func twoServers(t *testing.T) (a, b *Server, name string) {
	t.Helper()
	dir := t.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "fed", Files: 1, EventsPerFile: 400, BasketSize: 128,
		Gen: rootio.GenOptions{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err = NewServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err = NewServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return a, b, strings.TrimPrefix(paths[0], dir+"/")
}

func fastRetry() ReliableOptions {
	return ReliableOptions{
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		DialTimeout: 2 * time.Second,
	}
}

func TestReliableFailsOverToReplica(t *testing.T) {
	a, b, name := twoServers(t)
	rec := obs.NewRecorder()
	opts := fastRetry()
	opts.Recorder = rec
	rc, err := DialReliable([]string{a.Addr(), b.Addr()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	want, err := rc.ReadFlat(name, "MET_pt", 0, 100)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the endpoint currently in use; the next read must fail over.
	a.Close()
	got, err := rc.ReadFlat(name, "MET_pt", 0, 100)
	if err != nil {
		t.Fatalf("read after endpoint loss: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("failover read: %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("value %d differs after failover: %v vs %v", i, got[i], want[i])
		}
	}
	if rc.Addr() != b.Addr() {
		t.Fatalf("client still pinned to dead server %s", rc.Addr())
	}

	// The failover left a retry trail in the trace.
	retries := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvNetRetry {
			retries++
			if ev.Src == "" || ev.Detail == "" {
				t.Fatalf("EvNetRetry missing endpoint or cause: %+v", ev)
			}
		}
	}
	if retries == 0 {
		t.Fatal("no EvNetRetry events recorded across a failover")
	}
	_ = b
}

func TestReliableReconnectsSameServer(t *testing.T) {
	s, _, name := twoServers(t)
	opts := fastRetry()
	rc, err := DialReliable([]string{s.Addr()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, _, err := rc.Open(name); err != nil {
		t.Fatal(err)
	}
	// Sever just the connection (server stays up): next op reconnects.
	rc.mu.Lock()
	rc.c.conn.Close()
	rc.mu.Unlock()
	if _, err := rc.ReadFlat(name, "MET_pt", 0, 10); err != nil {
		t.Fatalf("read after connection drop: %v", err)
	}
}

func TestReliableServerErrNotRetried(t *testing.T) {
	s, _, _ := twoServers(t)
	opts := fastRetry()
	opts.MaxAttempts = 4
	rec := obs.NewRecorder()
	opts.Recorder = rec
	rc, err := DialReliable([]string{s.Addr()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, _, err := rc.Open("no-such-file.vrt"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvNetRetry {
			t.Fatalf("application-level ERR was retried: %+v", ev)
		}
	}
}

func TestReliableExhaustsAttempts(t *testing.T) {
	opts := fastRetry()
	opts.MaxAttempts = 3
	opts.DialTimeout = 200 * time.Millisecond
	_, err := DialReliable([]string{"127.0.0.1:1"}, opts)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("terminal error doesn't report attempts: %v", err)
	}
}

func TestReliableFileContract(t *testing.T) {
	a, b, name := twoServers(t)
	rc, err := DialReliable([]string{a.Addr(), b.Addr()}, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rf, err := rc.OpenRemote(name)
	if err != nil {
		t.Fatal(err)
	}
	if rf.NEvents() != 400 {
		t.Fatalf("NEvents = %d", rf.NEvents())
	}
	j, err := rf.ReadJagged("Jet_pt", 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Counts) != 50 {
		t.Fatalf("jagged counts = %d", len(j.Counts))
	}
}
