package xrootd

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/randx"
	"hepvine/internal/rootio"
)

// The federation view of resilience (§III.A): a dataset is usually
// replicated across several XRootD endpoints, so a client should survive
// one endpoint dying mid-analysis by reconnecting — with backoff — and
// failing over to the next replica server. ReliableClient wraps the plain
// Client with exactly that policy; every retry is surfaced as an
// obs.EvNetRetry event so failovers appear in the trace alongside task
// retries and heartbeat misses.

// reliableJitterStream separates retry jitter from every other seeded
// stream derived from the same seed.
const reliableJitterStream = 523

// ReliableOptions shape the reconnect/failover policy. Zero values take
// the stated defaults.
type ReliableOptions struct {
	// BackoffBase is the first retry delay; it doubles per attempt up to
	// BackoffMax, jittered into [d/2, d). Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts bounds total tries per operation across all servers
	// (default 6).
	MaxAttempts int
	// DialTimeout bounds each reconnect dial (default 30s).
	DialTimeout time.Duration
	// Seed drives the jitter stream for reproducible schedules (default 1).
	Seed uint64
	// Wrapper injects a fault layer under each new connection (nil = none).
	Wrapper ConnWrapper
	// Label names this client for fault targeting (default "xrootd-client").
	Label string
	// Recorder receives EvNetRetry events (nil disables emission).
	Recorder *obs.Recorder
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffBase {
		o.BackoffMax = 2 * time.Second
		if o.BackoffMax < o.BackoffBase {
			o.BackoffMax = o.BackoffBase
		}
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 6
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 30 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Label == "" {
		o.Label = "xrootd-client"
	}
	return o
}

// ReliableClient is a Client with reconnect and multi-server failover.
// Operations are serialized (the underlying protocol is sequential); one
// ReliableClient per goroutine, like Client.
type ReliableClient struct {
	addrs []string
	opts  ReliableOptions

	mu  sync.Mutex
	rng *randx.RNG
	cur int // index into addrs of the current server
	c   *Client
}

// DialReliable connects to the first reachable server in addrs, rotating
// with backoff through the list. Later operations transparently reconnect
// and fail over the same way.
func DialReliable(addrs []string, opts ReliableOptions) (*ReliableClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("xrootd: no server addresses")
	}
	opts = opts.withDefaults()
	rc := &ReliableClient{
		addrs: append([]string(nil), addrs...),
		opts:  opts,
		rng:   randx.NewStream(opts.Seed, reliableJitterStream),
	}
	if err := rc.do(func(*Client) error { return nil }); err != nil {
		return nil, err
	}
	return rc, nil
}

// Close drops the current connection, if any.
func (rc *ReliableClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.c != nil {
		err := rc.c.Close()
		rc.c = nil
		return err
	}
	return nil
}

// Addr reports the currently-selected server address.
func (rc *ReliableClient) Addr() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.addrs[rc.cur]
}

// isServerErr distinguishes an application-level refusal ("ERR ..." from
// a healthy server) from a transport failure worth a reconnect. A
// checksum mismatch (ErrCorruptPayload) deliberately falls on the
// transport side: the bytes are untrustworthy, so the exchange retries
// against another replica rather than returning corrupt data.
func isServerErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "xrootd: server:")
}

// do runs op against a live connection, reconnecting with jittered
// exponential backoff and rotating servers between attempts. Server-side
// protocol errors return immediately — a healthy server answered; only
// transport failures (including corrupt payloads) trigger failover.
func (rc *ReliableClient) do(op func(*Client) error) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var lastErr error
	for attempt := 1; ; attempt++ {
		addr := rc.addrs[rc.cur]
		c, err := rc.ensureLocked(addr)
		if err == nil {
			err = op(c)
			if err == nil {
				return nil
			}
			if isServerErr(err) {
				return err
			}
			// Transport failure mid-exchange: this conn is suspect.
			c.Close()
			rc.c = nil
		}
		lastErr = err
		if attempt >= rc.opts.MaxAttempts {
			break
		}
		delay := rc.backoffLocked(attempt)
		rc.opts.Recorder.Emit(obs.Event{
			Type: obs.EvNetRetry, Src: addr, Attempt: attempt, Dur: delay,
			Detail: oneLine(err),
		})
		rc.cur = (rc.cur + 1) % len(rc.addrs)
		time.Sleep(delay)
	}
	return fmt.Errorf("xrootd: %d attempts across %d servers failed: %w",
		rc.opts.MaxAttempts, len(rc.addrs), lastErr)
}

func (rc *ReliableClient) ensureLocked(addr string) (*Client, error) {
	if rc.c != nil {
		return rc.c, nil
	}
	nc, err := net.DialTimeout("tcp", addr, rc.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("xrootd: dial %s: %w", addr, err)
	}
	if rc.opts.Wrapper != nil {
		nc = rc.opts.Wrapper.WrapConn(nc, rc.opts.Label)
	}
	rc.c = &Client{conn: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	return rc.c, nil
}

func (rc *ReliableClient) backoffLocked(attempt int) time.Duration {
	d := rc.opts.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= rc.opts.BackoffMax {
			d = rc.opts.BackoffMax
			break
		}
	}
	half := d / 2
	return half + time.Duration(rc.rng.Float64()*float64(half))
}

// Open reports a remote file's event count and basket size, with failover.
func (rc *ReliableClient) Open(name string) (nEvents, basket int64, err error) {
	err = rc.do(func(c *Client) error {
		var e error
		nEvents, basket, e = c.Open(name)
		return e
	})
	return nEvents, basket, err
}

// ReadFlat reads a flat/counts branch range, with failover.
func (rc *ReliableClient) ReadFlat(name, branch string, lo, hi int64) (vals []float64, err error) {
	err = rc.do(func(c *Client) error {
		var e error
		vals, e = c.ReadFlat(name, branch, lo, hi)
		return e
	})
	return vals, err
}

// ReadJagged reads a jagged branch range, with failover.
func (rc *ReliableClient) ReadJagged(name, branch string, lo, hi int64) (j rootio.Jagged, err error) {
	err = rc.do(func(c *Client) error {
		var e error
		j, e = c.ReadJagged(name, branch, lo, hi)
		return e
	})
	return j, err
}

// OpenRemote opens a remote file view backed by the reliable client; the
// returned file satisfies the same column-reader contract as RemoteFile
// (coffea.ColumnReader) but survives endpoint loss mid-analysis.
func (rc *ReliableClient) OpenRemote(name string) (*ReliableFile, error) {
	n, _, err := rc.Open(name)
	if err != nil {
		return nil, err
	}
	return &ReliableFile{client: rc, name: name, nEvents: n}, nil
}

// ReliableFile is RemoteFile over a failover-capable client.
type ReliableFile struct {
	client  *ReliableClient
	name    string
	nEvents int64
}

// NEvents reports the remote file's event count.
func (rf *ReliableFile) NEvents() int64 { return rf.nEvents }

// ReadFlat reads a flat/counts branch range.
func (rf *ReliableFile) ReadFlat(name string, lo, hi int64) ([]float64, error) {
	return rf.client.ReadFlat(rf.name, name, lo, hi)
}

// ReadJagged reads a jagged branch range.
func (rf *ReliableFile) ReadJagged(name string, lo, hi int64) (rootio.Jagged, error) {
	return rf.client.ReadJagged(rf.name, name, lo, hi)
}
