// Package xrootd implements a remote column-access protocol for rootio
// files, standing in for XRootD (§III.A): "a protocol specialized for
// accessing specific columns in remote ROOT files".
//
// A Server exports a directory of .vrt files; a Client opens files by name
// and reads specific branches over specific event ranges without fetching
// whole files — the access pattern that makes wide-area federation usable
// at all, and whose per-request latency is why the paper stages hot
// datasets onto facility storage instead of reading the federation
// repeatedly (§IV.A).
//
// Wire protocol (line-oriented request, framed binary response):
//
//	→ OPEN <name>\n                      ← OK <nevents> <basket>\n | ERR <msg>\n
//	→ READF <name> <branch> <lo> <hi>\n  ← OK <n> <crc>\n then n float64 (LE)
//	→ READJ <name> <branch> <lo> <hi>\n  ← OK <nc> <nv> <crc>\n then counts + values
//
// <crc> is the CRC-32C of the binary payload (counts bytes then value
// bytes for READJ), computed server-side and verified by the client; a
// mismatch surfaces as ErrCorruptPayload, which ReliableClient treats as
// a transport-grade failure and retries against another replica.
//
// An optional artificial round-trip delay models WAN latency, so tests and
// examples can contrast "remote federation" with "local staging"
// quantitatively.
package xrootd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/rootio"
)

// castagnoli is the CRC-32C table for payload checksums — the same
// polynomial the vine transfer plane uses, hardware-accelerated on every
// Go target.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptPayload is the sentinel wrapped by every column read whose
// payload bytes do not match the server's checksum. It is deliberately
// NOT a server-reported error ("xrootd: server: ..."), so ReliableClient
// classifies it as transport trouble and fails over to another replica
// instead of giving up.
var ErrCorruptPayload = errors.New("xrootd: payload checksum mismatch")

// ConnWrapper decorates connections for fault injection; internal/chaos
// Plan implements it (along with the larger vine.NetFaultInjector).
type ConnWrapper interface {
	WrapConn(c net.Conn, label string) net.Conn
}

// Server exports rootio files from a directory.
type Server struct {
	dir   string
	delay time.Duration // artificial per-request WAN latency
	wrap  ConnWrapper
	label string

	ln net.Listener

	mu      sync.Mutex
	readers map[string]*rootio.Reader
	closers map[string]io.Closer
	conns   map[net.Conn]struct{}
	stats   ServerStats
	rec     *obs.Recorder
	closed  bool
}

// ServerOption configures a Server beyond the required dir and delay.
type ServerOption func(*Server)

// WithConnWrapper injects a fault layer under every accepted connection.
func WithConnWrapper(w ConnWrapper) ServerOption {
	return func(s *Server) { s.wrap = w }
}

// WithLabel names the server for fault targeting (default "xrootd").
func WithLabel(label string) ServerOption {
	return func(s *Server) { s.label = label }
}

// ServerStats counts server activity.
type ServerStats struct {
	Opens     int
	Reads     int
	BytesSent int64
}

// NewServer starts serving dir on a loopback port. delay is added to every
// request to model WAN round trips (0 for LAN).
func NewServer(dir string, delay time.Duration, opts ...ServerOption) (*Server, error) {
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("xrootd: %s is not a directory", dir)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &Server{
		dir: dir, delay: delay, ln: ln, label: "xrootd",
		readers: make(map[string]*rootio.Reader),
		closers: make(map[string]io.Closer),
		conns:   make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr reports the server address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SetRecorder attaches an event recorder: every column read emits one
// EvTransferDone with Src "xrootd" and the served byte count, so
// federation reads appear in the same transfer matrix as cluster
// traffic. A nil recorder disables emission.
func (s *Server) SetRecorder(rec *obs.Recorder) {
	s.mu.Lock()
	s.rec = rec
	s.mu.Unlock()
}

// recorder returns the attached recorder (possibly nil — the nil
// *Recorder is a valid no-op sink).
func (s *Server) recorder() *obs.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// Close stops the server: the listener and every live client connection
// are severed (as when an endpoint truly dies) and cached files closed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	closers := s.closers
	s.closers = map[string]io.Closer{}
	s.readers = map[string]*rootio.Reader{}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = map[net.Conn]struct{}{}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for _, c := range closers {
		c.Close()
	}
}

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.wrap != nil {
			c = s.wrap.WrapConn(c, s.label+"/conn")
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.handle(c)
	}
}

// reader returns (opening if needed) the reader for a safe relative name.
func (s *Server) reader(name string) (*rootio.Reader, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return nil, fmt.Errorf("invalid file name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server closed")
	}
	if rd, ok := s.readers[name]; ok {
		return rd, nil
	}
	rd, closer, err := rootio.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	s.readers[name] = rd
	s.closers[name] = closer
	return rd, nil
}

func (s *Server) handle(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	for {
		c.SetDeadline(time.Now().Add(2 * time.Minute))
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "OPEN":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR OPEN wants 1 arg\n")
			} else if rd, err := s.reader(fields[1]); err != nil {
				fmt.Fprintf(w, "ERR %s\n", oneLine(err))
			} else {
				s.count(func(st *ServerStats) { st.Opens++ })
				fmt.Fprintf(w, "OK %d %d\n", rd.NEvents(), rd.BasketSize())
			}
		case "READF":
			s.handleReadF(w, fields)
		case "READJ":
			s.handleReadJ(w, fields)
		default:
			fmt.Fprintf(w, "ERR unknown verb %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handleReadF(w *bufio.Writer, fields []string) {
	name, branch, lo, hi, err := parseRead(fields)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", oneLine(err))
		return
	}
	rd, err := s.reader(name)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", oneLine(err))
		return
	}
	vals, err := rd.ReadFlat(branch, lo, hi)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", oneLine(err))
		return
	}
	buf := f64sBytes(vals)
	fmt.Fprintf(w, "OK %d %d\n", len(vals), crc32.Checksum(buf, castagnoli))
	w.Write(buf)
	s.count(func(st *ServerStats) { st.Reads++; st.BytesSent += int64(8 * len(vals)) })
	s.recorder().Emit(obs.Event{
		Type: obs.EvTransferDone, Src: "xrootd", Dst: "client",
		Bytes: int64(8 * len(vals)), Detail: name + "/" + branch,
	})
}

func (s *Server) handleReadJ(w *bufio.Writer, fields []string) {
	name, branch, lo, hi, err := parseRead(fields)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", oneLine(err))
		return
	}
	rd, err := s.reader(name)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", oneLine(err))
		return
	}
	j, err := rd.ReadJagged(branch, lo, hi)
	if err != nil {
		fmt.Fprintf(w, "ERR %s\n", oneLine(err))
		return
	}
	counts := make([]float64, len(j.Counts))
	for i, n := range j.Counts {
		counts[i] = float64(n)
	}
	cbuf, vbuf := f64sBytes(counts), f64sBytes(j.Values)
	crc := crc32.Update(crc32.Checksum(cbuf, castagnoli), castagnoli, vbuf)
	fmt.Fprintf(w, "OK %d %d %d\n", len(j.Counts), len(j.Values), crc)
	w.Write(cbuf)
	w.Write(vbuf)
	s.count(func(st *ServerStats) {
		st.Reads++
		st.BytesSent += int64(8 * (len(j.Counts) + len(j.Values)))
	})
	s.recorder().Emit(obs.Event{
		Type: obs.EvTransferDone, Src: "xrootd", Dst: "client",
		Bytes: int64(8 * (len(j.Counts) + len(j.Values))), Detail: name + "/" + branch,
	})
}

func (s *Server) count(f func(*ServerStats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func parseRead(fields []string) (name, branch string, lo, hi int64, err error) {
	if len(fields) != 5 {
		return "", "", 0, 0, fmt.Errorf("%s wants 4 args", fields[0])
	}
	if _, err := fmt.Sscanf(fields[3]+" "+fields[4], "%d %d", &lo, &hi); err != nil {
		return "", "", 0, 0, fmt.Errorf("bad range")
	}
	return fields[1], fields[2], lo, hi, nil
}

func oneLine(err error) string {
	return strings.ReplaceAll(err.Error(), "\n", " ")
}

// f64sBytes encodes vals as little-endian float64 bytes — one buffer per
// response so the checksum and the write see identical bytes.
func f64sBytes(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

// Client accesses a remote server. It is safe for sequential use; open one
// client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 30*time.Second)
	if err != nil {
		return nil, fmt.Errorf("xrootd: dial %s: %w", addr, err)
	}
	return &Client{conn: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Open reports a remote file's event count and basket size.
func (c *Client) Open(name string) (nEvents, basket int64, err error) {
	if err := c.send("OPEN %s\n", name); err != nil {
		return 0, 0, err
	}
	line, err := c.status()
	if err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(line, "%d %d", &nEvents, &basket); err != nil {
		return 0, 0, fmt.Errorf("xrootd: malformed OPEN reply %q", line)
	}
	return nEvents, basket, nil
}

// ReadFlat reads a flat/counts branch range from a remote file, verifying
// the payload against the server's CRC-32C.
func (c *Client) ReadFlat(name, branch string, lo, hi int64) ([]float64, error) {
	if err := c.send("READF %s %s %d %d\n", name, branch, lo, hi); err != nil {
		return nil, err
	}
	line, err := c.status()
	if err != nil {
		return nil, err
	}
	var n int
	var want uint32
	if _, err := fmt.Sscanf(line, "%d %d", &n, &want); err != nil || n < 0 {
		return nil, fmt.Errorf("xrootd: malformed READF reply %q", line)
	}
	var got uint32
	vals, err := c.readF64s(n, &got)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("%w: READF %s/%s (crc32c %08x, want %08x)", ErrCorruptPayload, name, branch, got, want)
	}
	return vals, nil
}

// ReadJagged reads a jagged branch range from a remote file, verifying
// both payload sections against the server's CRC-32C.
func (c *Client) ReadJagged(name, branch string, lo, hi int64) (rootio.Jagged, error) {
	if err := c.send("READJ %s %s %d %d\n", name, branch, lo, hi); err != nil {
		return rootio.Jagged{}, err
	}
	line, err := c.status()
	if err != nil {
		return rootio.Jagged{}, err
	}
	var nc, nv int
	var want uint32
	if _, err := fmt.Sscanf(line, "%d %d %d", &nc, &nv, &want); err != nil || nc < 0 || nv < 0 {
		return rootio.Jagged{}, fmt.Errorf("xrootd: malformed READJ reply %q", line)
	}
	var got uint32
	countsF, err := c.readF64s(nc, &got)
	if err != nil {
		return rootio.Jagged{}, err
	}
	values, err := c.readF64s(nv, &got)
	if err != nil {
		return rootio.Jagged{}, err
	}
	if got != want {
		return rootio.Jagged{}, fmt.Errorf("%w: READJ %s/%s (crc32c %08x, want %08x)", ErrCorruptPayload, name, branch, got, want)
	}
	counts := make([]int, nc)
	for i, v := range countsF {
		counts[i] = int(v)
	}
	return rootio.Jagged{Counts: counts, Values: values}, nil
}

func (c *Client) send(format string, args ...any) error {
	c.conn.SetDeadline(time.Now().Add(2 * time.Minute))
	if _, err := fmt.Fprintf(c.w, format, args...); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *Client) status() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("xrootd: reading reply: %w", err)
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("xrootd: server: %s", line[4:])
	}
	if !strings.HasPrefix(line, "OK") {
		return "", fmt.Errorf("xrootd: malformed reply %q", line)
	}
	return strings.TrimSpace(strings.TrimPrefix(line, "OK")), nil
}

// readF64s reads n little-endian float64s, folding the raw bytes into the
// caller's running CRC-32C so multi-section payloads (READJ) accumulate
// one checksum.
func (c *Client) readF64s(n int, crc *uint32) ([]float64, error) {
	if n > 1<<26 {
		return nil, fmt.Errorf("xrootd: implausible payload of %d values", n)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, fmt.Errorf("xrootd: reading payload: %w", err)
	}
	*crc = crc32.Update(*crc, castagnoli, buf)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// RemoteFile adapts one remote file to the column-reader contract used by
// the analysis layer (coffea.ColumnReader): an analysis processor can run
// over federation data without knowing it is remote.
type RemoteFile struct {
	client  *Client
	name    string
	nEvents int64
}

// OpenRemote opens a remote file view on an existing client connection.
func (c *Client) OpenRemote(name string) (*RemoteFile, error) {
	n, _, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	return &RemoteFile{client: c, name: name, nEvents: n}, nil
}

// NEvents reports the remote file's event count.
func (rf *RemoteFile) NEvents() int64 { return rf.nEvents }

// ReadFlat reads a flat/counts branch range.
func (rf *RemoteFile) ReadFlat(name string, lo, hi int64) ([]float64, error) {
	return rf.client.ReadFlat(rf.name, name, lo, hi)
}

// ReadJagged reads a jagged branch range.
func (rf *RemoteFile) ReadJagged(name string, lo, hi int64) (rootio.Jagged, error) {
	return rf.client.ReadJagged(rf.name, name, lo, hi)
}
