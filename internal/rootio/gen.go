package rootio

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"hepvine/internal/randx"
)

// The synthetic event schema stands in for CMS NanoAOD: flat event-level
// branches plus jagged photon and jet collections. The paper's applications
// touch only a handful of these branches per task, so a realistic mix of
// used and unused columns matters for the column-selective I/O model.
// Encodings mirror NanoAOD practice: counters and identifiers as varints,
// kinematics as float32.
var nanoSchema = []BranchDef{
	{Name: "run", Kind: KindFlat, Enc: EncVarint},
	{Name: "luminosityBlock", Kind: KindFlat, Enc: EncVarint},
	{Name: "event", Kind: KindFlat, Enc: EncVarint},
	{Name: "genWeight", Kind: KindFlat, Enc: EncF32},
	{Name: "MET_pt", Kind: KindFlat, Enc: EncF32},
	{Name: "MET_phi", Kind: KindFlat, Enc: EncF32},
	{Name: "nPhoton", Kind: KindCounts, Enc: EncVarint},
	{Name: "Photon_pt", Kind: KindJagged, Counts: "nPhoton", Enc: EncF32},
	{Name: "Photon_eta", Kind: KindJagged, Counts: "nPhoton", Enc: EncF32},
	{Name: "Photon_phi", Kind: KindJagged, Counts: "nPhoton", Enc: EncF32},
	{Name: "Photon_isTight", Kind: KindJagged, Counts: "nPhoton", Enc: EncVarint},
	{Name: "nJet", Kind: KindCounts, Enc: EncVarint},
	{Name: "Jet_pt", Kind: KindJagged, Counts: "nJet", Enc: EncF32},
	{Name: "Jet_eta", Kind: KindJagged, Counts: "nJet", Enc: EncF32},
	{Name: "Jet_phi", Kind: KindJagged, Counts: "nJet", Enc: EncF32},
	{Name: "Jet_mass", Kind: KindJagged, Counts: "nJet", Enc: EncF32},
	{Name: "Jet_btagDeepB", Kind: KindJagged, Counts: "nJet", Enc: EncF32},
}

// NanoSchema returns a copy of the synthetic NanoAOD-like branch set.
func NanoSchema() []BranchDef {
	out := make([]BranchDef, len(nanoSchema))
	copy(out, nanoSchema)
	return out
}

// GenOptions controls event synthesis.
type GenOptions struct {
	Seed       uint64
	MeanJets   float64 // Poisson-ish mean jet multiplicity (default 4)
	MeanPhot   float64 // mean photon multiplicity (default 0.8)
	SignalFrac float64 // fraction of events with an injected tri-photon signal
}

func (o *GenOptions) defaults() {
	if o.MeanJets == 0 {
		o.MeanJets = 4
	}
	if o.MeanPhot == 0 {
		o.MeanPhot = 0.8
	}
}

// GenColumns synthesizes nEvents of collision data as columns keyed by
// branch name, deterministic in opts.Seed.
func GenColumns(nEvents int, opts GenOptions) map[string][]float64 {
	opts.defaults()
	rng := randx.New(opts.Seed)
	cols := make(map[string][]float64, len(nanoSchema))
	for _, d := range nanoSchema {
		cols[d.Name] = make([]float64, 0, nEvents)
	}
	for ev := 0; ev < nEvents; ev++ {
		cols["run"] = append(cols["run"], float64(356000+rng.Intn(100)))
		cols["luminosityBlock"] = append(cols["luminosityBlock"], float64(1+rng.Intn(2000)))
		cols["event"] = append(cols["event"], float64(ev))
		cols["genWeight"] = append(cols["genWeight"], rng.BoundedLogNormal(0, 0.2, 0.2, 5))
		// MET: falling spectrum, soft peak ~20 GeV with a long tail.
		cols["MET_pt"] = append(cols["MET_pt"], rng.BoundedLogNormal(3.0, 0.8, 0.1, 800))
		cols["MET_phi"] = append(cols["MET_phi"], rng.Range(-math.Pi, math.Pi))

		nPh := poisson(rng, opts.MeanPhot)
		if opts.SignalFrac > 0 && rng.Bool(opts.SignalFrac) && nPh < 3 {
			nPh = 3 // injected tri-photon final state
		}
		cols["nPhoton"] = append(cols["nPhoton"], float64(nPh))
		for p := 0; p < nPh; p++ {
			pt := rng.BoundedLogNormal(3.4, 0.7, 10, 1500)
			cols["Photon_pt"] = append(cols["Photon_pt"], pt)
			cols["Photon_eta"] = append(cols["Photon_eta"], rng.Normal(0, 1.4))
			cols["Photon_phi"] = append(cols["Photon_phi"], rng.Range(-math.Pi, math.Pi))
			tight := 0.0
			if rng.Bool(0.7) {
				tight = 1.0
			}
			cols["Photon_isTight"] = append(cols["Photon_isTight"], tight)
		}

		nJ := poisson(rng, opts.MeanJets)
		cols["nJet"] = append(cols["nJet"], float64(nJ))
		for j := 0; j < nJ; j++ {
			pt := rng.BoundedLogNormal(3.6, 0.8, 15, 2000)
			cols["Jet_pt"] = append(cols["Jet_pt"], pt)
			cols["Jet_eta"] = append(cols["Jet_eta"], rng.Normal(0, 1.8))
			cols["Jet_phi"] = append(cols["Jet_phi"], rng.Range(-math.Pi, math.Pi))
			cols["Jet_mass"] = append(cols["Jet_mass"], rng.BoundedLogNormal(2.3, 0.5, 1, 300))
			// b-tag discriminant bimodal: light jets near 0, b jets near 1.
			var btag float64
			if rng.Bool(0.15) {
				btag = clamp(rng.Normal(0.85, 0.12), 0, 1)
			} else {
				btag = clamp(rng.Normal(0.08, 0.08), 0, 1)
			}
			cols["Jet_btagDeepB"] = append(cols["Jet_btagDeepB"], btag)
		}
	}
	return cols
}

func poisson(rng *randx.RNG, mean float64) int {
	// Knuth's algorithm; fine for small means.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 64 {
			return 64
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DatasetSpec describes a synthetic dataset to materialize on disk.
type DatasetSpec struct {
	Name          string
	Files         int
	EventsPerFile int
	BasketSize    int // events per basket; default 2500
	Gen           GenOptions
}

// FileName reports the path of file i of the dataset under dir.
func (s DatasetSpec) FileName(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%04d.vrt", s.Name, i))
}

// WriteDataset materializes a dataset under dir and returns the file paths.
// Each file gets an independent seed derived from Gen.Seed so files differ
// but the whole dataset is reproducible.
func WriteDataset(dir string, spec DatasetSpec) ([]string, error) {
	if spec.Files <= 0 || spec.EventsPerFile <= 0 {
		return nil, fmt.Errorf("rootio: dataset %q needs positive files and events", spec.Name)
	}
	bs := spec.BasketSize
	if bs <= 0 {
		bs = 2500
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, spec.Files)
	for i := 0; i < spec.Files; i++ {
		opts := spec.Gen
		opts.Seed = spec.Gen.Seed*1_000_003 + uint64(i) + 1
		cols := GenColumns(spec.EventsPerFile, opts)
		path := spec.FileName(dir, i)
		if err := WriteFile(path, NanoSchema(), bs, spec.EventsPerFile, cols); err != nil {
			return nil, fmt.Errorf("rootio: writing %s: %w", path, err)
		}
		paths[i] = path
	}
	return paths, nil
}
