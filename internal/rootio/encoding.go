package rootio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Column encodings. Real NanoAOD stores most kinematics as float32 and
// counters as small integers; matching that matters because the simulation
// plane charges I/O by on-disk bytes, and column-selective reads are only
// realistic if bytes-per-branch are. The encoding is a property of the
// branch, recorded in the footer; readers decode transparently and always
// hand float64 to the analysis layer.
type Encoding uint8

// Supported encodings.
const (
	// EncF64 stores raw IEEE-754 doubles (8 bytes/value).
	EncF64 Encoding = iota
	// EncF32 stores single precision (4 bytes/value) — the NanoAOD norm
	// for kinematics. Values round-trip through float32.
	EncF32
	// EncVarint stores integer-valued columns (counts, run numbers, flags)
	// as zigzag varints — typically 1-2 bytes/value.
	EncVarint
)

func (e Encoding) String() string {
	switch e {
	case EncF64:
		return "f64"
	case EncF32:
		return "f32"
	case EncVarint:
		return "varint"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// valid reports whether the encoding is known.
func (e Encoding) valid() bool { return e <= EncVarint }

// quantize maps a value through the encoding's round trip, so writers can
// validate losslessness expectations up front.
func (e Encoding) quantize(v float64) float64 {
	switch e {
	case EncF32:
		return float64(float32(v))
	case EncVarint:
		return float64(int64(v))
	default:
		return v
	}
}

// encodeColumn serializes values under the encoding.
func encodeColumn(e Encoding, vals []float64) ([]byte, error) {
	switch e {
	case EncF64:
		return float64sToBytes(vals), nil
	case EncF32:
		out := make([]byte, 4*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v)))
		}
		return out, nil
	case EncVarint:
		out := make([]byte, 0, len(vals))
		var buf [binary.MaxVarintLen64]byte
		for _, v := range vals {
			iv := int64(v)
			if float64(iv) != v {
				return nil, fmt.Errorf("rootio: varint branch holds non-integer value %v", v)
			}
			n := binary.PutVarint(buf[:], iv)
			out = append(out, buf[:n]...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rootio: unknown encoding %v", e)
	}
}

// decodeColumn deserializes nValues values under the encoding.
func decodeColumn(e Encoding, data []byte, nValues int64) ([]float64, error) {
	switch e {
	case EncF64:
		vals, err := bytesToFloat64s(data)
		if err != nil {
			return nil, err
		}
		if int64(len(vals)) != nValues {
			return nil, fmt.Errorf("rootio: f64 basket holds %d values, want %d", len(vals), nValues)
		}
		return vals, nil
	case EncF32:
		if int64(len(data)) != 4*nValues {
			return nil, fmt.Errorf("rootio: f32 basket is %d bytes for %d values", len(data), nValues)
		}
		out := make([]float64, nValues)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:])))
		}
		return out, nil
	case EncVarint:
		out := make([]float64, 0, nValues)
		for len(data) > 0 && int64(len(out)) < nValues {
			iv, n := binary.Varint(data)
			if n <= 0 {
				return nil, fmt.Errorf("rootio: corrupt varint basket")
			}
			out = append(out, float64(iv))
			data = data[n:]
		}
		if int64(len(out)) != nValues {
			return nil, fmt.Errorf("rootio: varint basket holds %d values, want %d", len(out), nValues)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rootio: unknown encoding %v", e)
	}
}
