package rootio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
)

// memFile adapts a byte slice to io.ReaderAt.
type memFile struct{ data []byte }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.data)) {
		return 0, os.ErrInvalid
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, os.ErrInvalid
	}
	return n, nil
}

func writeMem(t *testing.T, defs []BranchDef, basketSize, nEvents int, cols map[string][]float64) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, defs, basketSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteColumns(nEvents, cols); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&memFile{buf.Bytes()}, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

func flatDefs() []BranchDef {
	return []BranchDef{{Name: "a", Kind: KindFlat}, {Name: "b", Kind: KindFlat}}
}

func TestFlatRoundTrip(t *testing.T) {
	n := 100
	cols := map[string][]float64{"a": make([]float64, n), "b": make([]float64, n)}
	for i := 0; i < n; i++ {
		cols["a"][i] = float64(i)
		cols["b"][i] = float64(i) * 0.5
	}
	rd := writeMem(t, flatDefs(), 16, n, cols)
	if rd.NEvents() != int64(n) {
		t.Fatalf("NEvents = %d", rd.NEvents())
	}
	got, err := rd.ReadFlat("a", 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("a[%d] = %v", i, v)
		}
	}
}

func TestFlatRangeReads(t *testing.T) {
	n := 100
	cols := map[string][]float64{"a": make([]float64, n), "b": make([]float64, n)}
	for i := 0; i < n; i++ {
		cols["a"][i] = float64(i)
	}
	rd := writeMem(t, flatDefs(), 7, n, cols) // deliberately odd basket size
	for _, rng := range [][2]int64{{0, 7}, {3, 10}, {7, 14}, {13, 99}, {95, 100}, {50, 50}} {
		got, err := rd.ReadFlat("a", rng[0], rng[1])
		if err != nil {
			t.Fatalf("range %v: %v", rng, err)
		}
		if int64(len(got)) != rng[1]-rng[0] {
			t.Fatalf("range %v: got %d values", rng, len(got))
		}
		for i, v := range got {
			if v != float64(rng[0]+int64(i)) {
				t.Fatalf("range %v: [%d] = %v", rng, i, v)
			}
		}
	}
}

func TestRangeValidation(t *testing.T) {
	cols := map[string][]float64{"a": {1, 2, 3}, "b": {1, 2, 3}}
	rd := writeMem(t, flatDefs(), 10, 3, cols)
	for _, rng := range [][2]int64{{-1, 2}, {0, 4}, {2, 1}} {
		if _, err := rd.ReadFlat("a", rng[0], rng[1]); err == nil {
			t.Fatalf("range %v accepted", rng)
		}
	}
	if _, err := rd.ReadFlat("nope", 0, 1); err == nil {
		t.Fatal("missing branch accepted")
	}
}

func jaggedDefs() []BranchDef {
	return []BranchDef{
		{Name: "n", Kind: KindCounts},
		{Name: "v", Kind: KindJagged, Counts: "n"},
		{Name: "w", Kind: KindJagged, Counts: "n"},
	}
}

func TestJaggedRoundTrip(t *testing.T) {
	// Events with 0,1,2,3,... elements cycling.
	nEv := 50
	counts := make([]float64, nEv)
	var v, w []float64
	val := 0.0
	for i := range counts {
		c := i % 5
		counts[i] = float64(c)
		for j := 0; j < c; j++ {
			v = append(v, val)
			w = append(w, -val)
			val++
		}
	}
	cols := map[string][]float64{"n": counts, "v": v, "w": w}
	rd := writeMem(t, jaggedDefs(), 8, nEv, cols)

	full, err := rd.ReadJagged("v", 0, int64(nEv))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Counts) != nEv {
		t.Fatalf("counts len = %d", len(full.Counts))
	}
	if len(full.Values) != len(v) {
		t.Fatalf("values len = %d, want %d", len(full.Values), len(v))
	}
	for i := range v {
		if full.Values[i] != v[i] {
			t.Fatalf("v[%d] = %v want %v", i, full.Values[i], v[i])
		}
	}
}

func TestJaggedRangeReads(t *testing.T) {
	nEv := 40
	counts := make([]float64, nEv)
	var v []float64
	expected := make([][]float64, nEv)
	val := 0.0
	for i := range counts {
		c := (i*7)%4 + 1
		counts[i] = float64(c)
		for j := 0; j < c; j++ {
			v = append(v, val)
			expected[i] = append(expected[i], val)
			val++
		}
	}
	cols := map[string][]float64{"n": counts, "v": v, "w": v}
	rd := writeMem(t, jaggedDefs(), 6, nEv, cols)

	for _, rng := range [][2]int64{{0, 6}, {5, 13}, {6, 12}, {17, 40}, {39, 40}, {10, 10}} {
		got, err := rd.ReadJagged("v", rng[0], rng[1])
		if err != nil {
			t.Fatalf("range %v: %v", rng, err)
		}
		if int64(len(got.Counts)) != rng[1]-rng[0] {
			t.Fatalf("range %v: %d counts", rng, len(got.Counts))
		}
		vi := 0
		for e := rng[0]; e < rng[1]; e++ {
			want := expected[e]
			if got.Counts[e-rng[0]] != len(want) {
				t.Fatalf("range %v ev %d: count %d want %d", rng, e, got.Counts[e-rng[0]], len(want))
			}
			for _, wv := range want {
				if got.Values[vi] != wv {
					t.Fatalf("range %v ev %d: value %v want %v", rng, e, got.Values[vi], wv)
				}
				vi++
			}
		}
	}
}

func TestJaggedEventAccessor(t *testing.T) {
	j := Jagged{Counts: []int{2, 0, 3}, Values: []float64{1, 2, 10, 11, 12}}
	if got := j.Event(0); len(got) != 2 || got[0] != 1 {
		t.Fatalf("event 0 = %v", got)
	}
	if got := j.Event(1); len(got) != 0 {
		t.Fatalf("event 1 = %v", got)
	}
	if got := j.Event(2); len(got) != 3 || got[2] != 12 {
		t.Fatalf("event 2 = %v", got)
	}
	if j.NEventsJ() != 3 {
		t.Fatalf("NEventsJ = %d", j.NEventsJ())
	}
}

func TestWriteEventAPI(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, jaggedDefs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		vals := make([]float64, i%3)
		for j := range vals {
			vals[j] = float64(i*10 + j)
		}
		ev := Event{Jagged: map[string][]float64{"v": vals, "w": vals}}
		if err := w.WriteEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&memFile{buf.Bytes()}, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	j, err := rd.ReadJagged("v", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if j.Counts[i] != i%3 {
			t.Fatalf("event %d count = %d", i, j.Counts[i])
		}
	}
}

func TestWriteEventValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, jaggedDefs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Jagged branches sharing a counts branch must agree on length.
	ev := Event{Jagged: map[string][]float64{"v": {1, 2}, "w": {1}}}
	if err := w.WriteEvent(ev); err == nil {
		t.Fatal("inconsistent jagged lengths accepted")
	}
	// Missing branch.
	if err := w.WriteEvent(Event{Jagged: map[string][]float64{"v": {1}}}); err == nil {
		t.Fatal("missing jagged branch accepted")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, nil, 10); err == nil {
		t.Fatal("empty branches accepted")
	}
	if _, err := NewWriter(&buf, flatDefs(), 0); err == nil {
		t.Fatal("zero basket accepted")
	}
	dup := []BranchDef{{Name: "a", Kind: KindFlat}, {Name: "a", Kind: KindFlat}}
	if _, err := NewWriter(&buf, dup, 10); err == nil {
		t.Fatal("duplicate branch accepted")
	}
	bad := []BranchDef{{Name: "v", Kind: KindJagged, Counts: "missing"}}
	if _, err := NewWriter(&buf, bad, 10); err == nil {
		t.Fatal("dangling counts reference accepted")
	}
	notCounts := []BranchDef{
		{Name: "c", Kind: KindFlat},
		{Name: "v", Kind: KindJagged, Counts: "c"},
	}
	if _, err := NewWriter(&buf, notCounts, 10); err == nil {
		t.Fatal("non-counts reference accepted")
	}
}

func TestReaderRejectsCorrupt(t *testing.T) {
	if _, err := NewReader(&memFile{[]byte("tiny")}, 4); err == nil {
		t.Fatal("tiny file accepted")
	}
	junk := make([]byte, 100)
	if _, err := NewReader(&memFile{junk}, 100); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestColumnBytesSelective(t *testing.T) {
	n := 1000
	cols := map[string][]float64{"a": make([]float64, n), "b": make([]float64, n)}
	for i := 0; i < n; i++ {
		cols["a"][i] = float64(i) // compresses poorly-ish
		cols["b"][i] = 1.0        // compresses well
	}
	rd := writeMem(t, flatDefs(), 100, n, cols)
	ba, err := rd.ColumnBytes([]string{"a"}, 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := rd.ColumnBytes([]string{"b"}, 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	if ba <= bb {
		t.Fatalf("constant column should compress better: a=%d b=%d", ba, bb)
	}
	both, err := rd.ColumnBytes([]string{"a", "b"}, 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	if both != ba+bb {
		t.Fatalf("column bytes not additive: %d vs %d", both, ba+bb)
	}
	half, err := rd.ColumnBytes([]string{"a"}, 0, int64(n/2))
	if err != nil {
		t.Fatal(err)
	}
	if half >= ba {
		t.Fatalf("partial range should touch fewer bytes: %d vs %d", half, ba)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(seed int64, basket uint8, n uint8) bool {
		nEv := int(n)%64 + 1
		bs := int(basket)%16 + 1
		cols := map[string][]float64{"a": make([]float64, nEv), "b": make([]float64, nEv)}
		for i := 0; i < nEv; i++ {
			cols["a"][i] = math.Sin(float64(seed) + float64(i))
			cols["b"][i] = float64(i)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, flatDefs(), bs)
		if err != nil {
			return false
		}
		if err := w.WriteColumns(nEv, cols); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := NewReader(&memFile{buf.Bytes()}, int64(buf.Len()))
		if err != nil {
			return false
		}
		got, err := rd.ReadFlat("a", 0, int64(nEv))
		if err != nil {
			return false
		}
		for i := range got {
			if got[i] != cols["a"][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenColumnsDeterministic(t *testing.T) {
	a := GenColumns(200, GenOptions{Seed: 7})
	b := GenColumns(200, GenOptions{Seed: 7})
	for name, va := range a {
		vb := b[name]
		if len(va) != len(vb) {
			t.Fatalf("branch %s lengths differ", name)
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("branch %s differs at %d", name, i)
			}
		}
	}
	c := GenColumns(200, GenOptions{Seed: 8})
	if len(c["Jet_pt"]) == len(a["Jet_pt"]) {
		// Not impossible, but combined with identical MET it would be suspicious.
		same := true
		for i := range c["MET_pt"] {
			if c["MET_pt"][i] != a["MET_pt"][i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestGenColumnsShape(t *testing.T) {
	n := 2000
	cols := GenColumns(n, GenOptions{Seed: 1})
	if len(cols["MET_pt"]) != n {
		t.Fatalf("MET_pt has %d values", len(cols["MET_pt"]))
	}
	var totJets int
	for _, c := range cols["nJet"] {
		totJets += int(c)
	}
	if len(cols["Jet_pt"]) != totJets {
		t.Fatalf("Jet_pt %d values, counts say %d", len(cols["Jet_pt"]), totJets)
	}
	for _, pt := range cols["Photon_pt"] {
		if pt < 10 || pt > 1500 {
			t.Fatalf("photon pt out of range: %v", pt)
		}
	}
	for _, b := range cols["Jet_btagDeepB"] {
		if b < 0 || b > 1 {
			t.Fatalf("btag out of [0,1]: %v", b)
		}
	}
}

func TestSignalInjection(t *testing.T) {
	n := 3000
	bg := GenColumns(n, GenOptions{Seed: 5, SignalFrac: 0})
	sig := GenColumns(n, GenOptions{Seed: 5, SignalFrac: 0.5})
	count3 := func(cols map[string][]float64) int {
		c := 0
		for _, v := range cols["nPhoton"] {
			if v >= 3 {
				c++
			}
		}
		return c
	}
	if count3(sig) <= count3(bg)*2 {
		t.Fatalf("signal injection ineffective: bg=%d sig=%d", count3(bg), count3(sig))
	}
}

func TestWriteDatasetOnDisk(t *testing.T) {
	dir := t.TempDir()
	spec := DatasetSpec{Name: "test", Files: 3, EventsPerFile: 500, BasketSize: 100, Gen: GenOptions{Seed: 3}}
	paths, err := WriteDataset(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("%d paths", len(paths))
	}
	for _, p := range paths {
		rd, closer, err := Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		if rd.NEvents() != 500 {
			t.Fatalf("%s has %d events", p, rd.NEvents())
		}
		met, err := rd.ReadFlat("MET_pt", 100, 200)
		if err != nil {
			t.Fatal(err)
		}
		if len(met) != 100 {
			t.Fatalf("read %d MET values", len(met))
		}
		jets, err := rd.ReadJagged("Jet_pt", 0, 50)
		if err != nil {
			t.Fatal(err)
		}
		if len(jets.Counts) != 50 {
			t.Fatalf("jagged read: %d counts", len(jets.Counts))
		}
		closer.Close()
	}
	// Files differ from each other.
	d0, _ := os.ReadFile(paths[0])
	d1, _ := os.ReadFile(paths[1])
	if bytes.Equal(d0, d1) {
		t.Fatal("dataset files identical")
	}
	if filepath.Dir(paths[0]) != dir {
		t.Fatalf("file written outside dir: %s", paths[0])
	}
}

func TestWriteDatasetValidation(t *testing.T) {
	if _, err := WriteDataset(t.TempDir(), DatasetSpec{Name: "x"}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestSortedBranchNames(t *testing.T) {
	names := SortedBranchNames([]BranchDef{{Name: "b"}, {Name: "a"}})
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestBranchIntrospection(t *testing.T) {
	cols := map[string][]float64{"a": {1}, "b": {2}}
	rd := writeMem(t, flatDefs(), 10, 1, cols)
	if !rd.HasBranch("a") || rd.HasBranch("zz") {
		t.Fatal("HasBranch wrong")
	}
	def, err := rd.BranchDef("a")
	if err != nil || def.Kind != KindFlat {
		t.Fatalf("BranchDef: %v %v", def, err)
	}
	if len(rd.Branches()) != 2 {
		t.Fatalf("Branches = %v", rd.Branches())
	}
	if rd.BasketSize() != 10 {
		t.Fatalf("BasketSize = %d", rd.BasketSize())
	}
}

func TestKindString(t *testing.T) {
	if KindFlat.String() != "flat" || KindCounts.String() != "counts" || KindJagged.String() != "jagged" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

// Robustness: NewReader must reject arbitrary garbage with an error, never
// panic, whatever the bytes claim about footer lengths.
func TestNewReaderNeverPanics(t *testing.T) {
	check := func(seed uint16, n uint8) bool {
		rng := randx.New(uint64(seed) + 1)
		size := int(n) + 16
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		// Sometimes make the magic valid so parsing goes deeper.
		if rng.Bool(0.5) {
			copy(buf, headerMagic[:])
			copy(buf[size-4:], trailerMagic[:])
		}
		defer func() {
			if recover() != nil {
				t.Errorf("NewReader panicked on %d bytes", size)
			}
		}()
		rd, err := NewReader(&memFile{buf}, int64(size))
		if err == nil && rd != nil {
			// Accidentally valid is astronomically unlikely but not wrong.
			_ = rd.NEvents()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
