package rootio

import (
	"bytes"
	"testing"
)

func benchFile(b *testing.B, nEvents int) *Reader {
	b.Helper()
	cols := GenColumns(nEvents, GenOptions{Seed: 9})
	var buf bytes.Buffer
	w, err := NewWriter(&buf, NanoSchema(), 2500)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.WriteColumns(nEvents, cols); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	rd, err := NewReader(&memFile{buf.Bytes()}, int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	return rd
}

func BenchmarkGenColumns(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GenColumns(1000, GenOptions{Seed: uint64(i)})
	}
}

func BenchmarkWriteFile(b *testing.B) {
	cols := GenColumns(5000, GenOptions{Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, NanoSchema(), 2500)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.WriteColumns(5000, cols); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkReadFlatColumn(b *testing.B) {
	rd := benchFile(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err := rd.ReadFlat("MET_pt", 0, 10000)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(8 * len(vals)))
	}
}

func BenchmarkReadJaggedColumn(b *testing.B) {
	rd := benchFile(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := rd.ReadJagged("Jet_pt", 0, 10000)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(8 * len(j.Values)))
	}
}
