// Package rootio implements a columnar event-data file format standing in
// for the ROOT files consumed by the paper's applications, plus a synthetic
// CMS-like collision-event generator.
//
// The format ("VRT1") keeps the properties the paper's data path depends on:
//
//   - column-oriented storage: each branch (column) is stored in separately
//     compressed baskets, so an analysis that touches three branches out of
//     forty reads only those bytes (the access pattern XRootD exploits);
//   - basket (row-group) granularity: chunked reads let Coffea-style
//     partitioning map N events → M tasks without touching whole files;
//   - jagged collections: per-event variable-length collections (photons,
//     jets) are stored NanoAOD-style as a counts branch plus flattened
//     value branches.
//
// Layout:
//
//	header : magic "VRT1" | version u32
//	body   : compressed basket blocks, in arbitrary order
//	footer : branch table + basket index (binary), footer length u32,
//	         trailing magic "1TRV"
//
// All integers are little-endian. Values are float64. Compression is
// DEFLATE via compress/flate (stdlib only).
package rootio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic numbers framing a file.
var (
	headerMagic  = [4]byte{'V', 'R', 'T', '1'}
	trailerMagic = [4]byte{'1', 'T', 'R', 'V'}
)

// FormatVersion is the on-disk format version this package writes.
// Version 2 added per-branch encodings.
const FormatVersion = 2

// Kind describes how a branch relates to events.
type Kind uint8

// Branch kinds.
const (
	// KindFlat branches have exactly one value per event (e.g. MET_pt).
	KindFlat Kind = iota
	// KindCounts branches carry the per-event length of a jagged
	// collection (e.g. nPhoton).
	KindCounts
	// KindJagged branches carry flattened values of a jagged collection;
	// their Counts field names the corresponding KindCounts branch.
	KindJagged
)

func (k Kind) String() string {
	switch k {
	case KindFlat:
		return "flat"
	case KindCounts:
		return "counts"
	case KindJagged:
		return "jagged"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// BranchDef declares a column at write time.
type BranchDef struct {
	Name   string
	Kind   Kind
	Counts string // for KindJagged: name of the counts branch
	// Enc selects the storage encoding (default EncF64). Varint branches
	// must hold integer values.
	Enc Encoding
}

// basketLoc locates one compressed basket within the file body.
type basketLoc struct {
	Offset     int64
	Compressed int64
	Raw        int64 // uncompressed byte length (8 * nValues)
	NValues    int64
}

// branchMeta is the footer record for one branch.
type branchMeta struct {
	Def     BranchDef
	Baskets []basketLoc
}

// footer is the decoded file index.
type footer struct {
	Version    uint32
	NEvents    int64
	BasketSize int64 // events per basket (last basket may be short)
	Branches   []branchMeta
}

func (f *footer) encode() []byte {
	var b bytes.Buffer
	putU32(&b, f.Version)
	putI64(&b, f.NEvents)
	putI64(&b, f.BasketSize)
	putU32(&b, uint32(len(f.Branches)))
	for _, br := range f.Branches {
		putString(&b, br.Def.Name)
		b.WriteByte(byte(br.Def.Kind))
		b.WriteByte(byte(br.Def.Enc))
		putString(&b, br.Def.Counts)
		putU32(&b, uint32(len(br.Baskets)))
		for _, bk := range br.Baskets {
			putI64(&b, bk.Offset)
			putI64(&b, bk.Compressed)
			putI64(&b, bk.Raw)
			putI64(&b, bk.NValues)
		}
	}
	return b.Bytes()
}

func decodeFooter(data []byte) (*footer, error) {
	r := bytes.NewReader(data)
	f := &footer{}
	var err error
	if f.Version, err = getU32(r); err != nil {
		return nil, err
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("rootio: unsupported version %d", f.Version)
	}
	if f.NEvents, err = getI64(r); err != nil {
		return nil, err
	}
	if f.BasketSize, err = getI64(r); err != nil {
		return nil, err
	}
	if f.BasketSize <= 0 {
		return nil, fmt.Errorf("rootio: invalid basket size %d", f.BasketSize)
	}
	nb, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if nb > 1<<16 {
		return nil, fmt.Errorf("rootio: implausible branch count %d", nb)
	}
	f.Branches = make([]branchMeta, nb)
	for i := range f.Branches {
		br := &f.Branches[i]
		if br.Def.Name, err = getString(r); err != nil {
			return nil, err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		br.Def.Kind = Kind(kb)
		eb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		br.Def.Enc = Encoding(eb)
		if !br.Def.Enc.valid() {
			return nil, fmt.Errorf("rootio: branch %q has unknown encoding %d", br.Def.Name, eb)
		}
		if br.Def.Counts, err = getString(r); err != nil {
			return nil, err
		}
		nk, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if nk > 1<<24 {
			return nil, fmt.Errorf("rootio: implausible basket count %d", nk)
		}
		br.Baskets = make([]basketLoc, nk)
		for j := range br.Baskets {
			bk := &br.Baskets[j]
			if bk.Offset, err = getI64(r); err != nil {
				return nil, err
			}
			if bk.Compressed, err = getI64(r); err != nil {
				return nil, err
			}
			if bk.Raw, err = getI64(r); err != nil {
				return nil, err
			}
			if bk.NValues, err = getI64(r); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

func putU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func putI64(b *bytes.Buffer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.Write(buf[:])
}

func putString(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

func getU32(r *bytes.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("rootio: truncated footer: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func getI64(r *bytes.Reader) (int64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("rootio: truncated footer: %w", err)
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

func getString(r *bytes.Reader) (string, error) {
	n, err := getU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("rootio: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("rootio: truncated footer string: %w", err)
	}
	return string(buf), nil
}

func float64sToBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func bytesToFloat64s(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("rootio: basket payload not a multiple of 8 (%d bytes)", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return out, nil
}
