package rootio

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"os"
	"sort"
)

// Writer streams events into a VRT1 file. Events are buffered in memory and
// flushed to per-branch compressed baskets every BasketSize events.
type Writer struct {
	w          io.Writer
	offset     int64
	basketSize int64
	defs       []BranchDef
	byName     map[string]int
	meta       []branchMeta

	nEvents int64
	// buffered values since the last flush; jagged branches buffer their
	// flattened values, counts branches one value per event.
	buf       [][]float64
	bufEvents int64
	closed    bool
}

// NewWriter starts a file with the given branches and events-per-basket.
func NewWriter(w io.Writer, defs []BranchDef, basketSize int) (*Writer, error) {
	if basketSize <= 0 {
		return nil, fmt.Errorf("rootio: basket size must be positive, got %d", basketSize)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("rootio: need at least one branch")
	}
	byName := make(map[string]int, len(defs))
	for i, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("rootio: branch %d has empty name", i)
		}
		if !d.Enc.valid() {
			return nil, fmt.Errorf("rootio: branch %q has unknown encoding %d", d.Name, d.Enc)
		}
		if _, dup := byName[d.Name]; dup {
			return nil, fmt.Errorf("rootio: duplicate branch %q", d.Name)
		}
		byName[d.Name] = i
	}
	for _, d := range defs {
		if d.Kind == KindJagged {
			ci, ok := byName[d.Counts]
			if !ok {
				return nil, fmt.Errorf("rootio: jagged branch %q references missing counts branch %q", d.Name, d.Counts)
			}
			if defs[ci].Kind != KindCounts {
				return nil, fmt.Errorf("rootio: branch %q referenced as counts by %q has kind %v", d.Counts, d.Name, defs[ci].Kind)
			}
		}
	}
	wr := &Writer{
		w:          w,
		basketSize: int64(basketSize),
		defs:       defs,
		byName:     byName,
		meta:       make([]branchMeta, len(defs)),
		buf:        make([][]float64, len(defs)),
	}
	for i, d := range defs {
		wr.meta[i].Def = d
	}
	n, err := w.Write(headerMagic[:])
	if err != nil {
		return nil, err
	}
	wr.offset = int64(n)
	var verBuf bytes.Buffer
	putU32(&verBuf, FormatVersion)
	n, err = w.Write(verBuf.Bytes())
	if err != nil {
		return nil, err
	}
	wr.offset += int64(n)
	return wr, nil
}

// Event supplies one event's values: flat branches map to a single value,
// counts branches are implied by the jagged slices, and jagged branches map
// to their per-event slice.
type Event struct {
	Flat   map[string]float64
	Jagged map[string][]float64
}

// WriteEvent appends one event. Every flat branch must be present in Flat;
// every jagged branch in Jagged (possibly empty); counts branches are
// derived automatically from their jagged members and must not be supplied.
func (wr *Writer) WriteEvent(ev Event) error {
	if wr.closed {
		return fmt.Errorf("rootio: write after Close")
	}
	// Derive counts per counts-branch, validating consistency across the
	// jagged branches that share one.
	counts := make(map[string]int)
	for i, d := range wr.defs {
		switch d.Kind {
		case KindFlat:
			v, ok := ev.Flat[d.Name]
			if !ok {
				return fmt.Errorf("rootio: event missing flat branch %q", d.Name)
			}
			wr.buf[i] = append(wr.buf[i], v)
		case KindJagged:
			vals, ok := ev.Jagged[d.Name]
			if !ok {
				return fmt.Errorf("rootio: event missing jagged branch %q", d.Name)
			}
			if prev, seen := counts[d.Counts]; seen && prev != len(vals) {
				return fmt.Errorf("rootio: jagged branches of %q disagree on length: %d vs %d", d.Counts, prev, len(vals))
			}
			counts[d.Counts] = len(vals)
			wr.buf[i] = append(wr.buf[i], vals...)
		}
	}
	for i, d := range wr.defs {
		if d.Kind == KindCounts {
			n, ok := counts[d.Name]
			if !ok {
				return fmt.Errorf("rootio: counts branch %q has no jagged members in event", d.Name)
			}
			wr.buf[i] = append(wr.buf[i], float64(n))
		}
	}
	wr.nEvents++
	wr.bufEvents++
	if wr.bufEvents >= wr.basketSize {
		return wr.flush()
	}
	return nil
}

// WriteColumns appends a block of events given directly as columns, the
// bulk path used by the dataset generator. cols must contain every flat and
// counts branch with nEvents values each, and every jagged branch with
// sum(counts) values.
func (wr *Writer) WriteColumns(nEvents int, cols map[string][]float64) error {
	if wr.closed {
		return fmt.Errorf("rootio: write after Close")
	}
	for i, d := range wr.defs {
		vals, ok := cols[d.Name]
		if !ok {
			return fmt.Errorf("rootio: columns missing branch %q", d.Name)
		}
		switch d.Kind {
		case KindFlat, KindCounts:
			if len(vals) != nEvents {
				return fmt.Errorf("rootio: branch %q has %d values, want %d", d.Name, len(vals), nEvents)
			}
		case KindJagged:
			want := 0
			cvals := cols[d.Counts]
			if len(cvals) != nEvents {
				return fmt.Errorf("rootio: counts branch %q has %d values, want %d", d.Counts, len(cvals), nEvents)
			}
			for _, c := range cvals {
				want += int(c)
			}
			if len(vals) != want {
				return fmt.Errorf("rootio: jagged branch %q has %d values, counts say %d", d.Name, len(vals), want)
			}
		}
		wr.buf[i] = append(wr.buf[i], vals...)
	}
	wr.nEvents += int64(nEvents)
	wr.bufEvents += int64(nEvents)
	for wr.bufEvents >= wr.basketSize {
		if err := wr.flushPartial(wr.basketSize); err != nil {
			return err
		}
	}
	return nil
}

// flush writes all buffered events as one basket per branch.
func (wr *Writer) flush() error {
	return wr.flushPartial(wr.bufEvents)
}

// flushPartial writes the first nEv buffered events as a basket per branch.
func (wr *Writer) flushPartial(nEv int64) error {
	if nEv == 0 {
		return nil
	}
	if nEv > wr.bufEvents {
		nEv = wr.bufEvents
	}
	// Compute every branch's take before trimming any buffer: a jagged
	// branch derives its take from the counts branch buffer, which may
	// appear earlier in wr.defs.
	takes := make([]int64, len(wr.defs))
	for i, d := range wr.defs {
		switch d.Kind {
		case KindFlat, KindCounts:
			takes[i] = nEv
		case KindJagged:
			ci := wr.byName[d.Counts]
			var sum int64
			for _, c := range wr.buf[ci][:nEv] {
				sum += int64(c)
			}
			takes[i] = sum
		}
	}
	for i := range wr.defs {
		take := takes[i]
		vals := wr.buf[i][:take]
		if err := wr.writeBasket(i, vals, nEv); err != nil {
			return err
		}
		wr.buf[i] = append(wr.buf[i][:0:0], wr.buf[i][take:]...)
	}
	wr.bufEvents -= nEv
	return nil
}

func (wr *Writer) writeBasket(branch int, vals []float64, nEvents int64) error {
	raw, err := encodeColumn(wr.defs[branch].Enc, vals)
	if err != nil {
		return fmt.Errorf("rootio: branch %q: %w", wr.defs[branch].Name, err)
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return err
	}

	if _, err := fw.Write(raw); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	loc := basketLoc{
		Offset:     wr.offset,
		Compressed: int64(comp.Len()),
		Raw:        int64(len(raw)),
		NValues:    int64(len(vals)),
	}
	n, err := wr.w.Write(comp.Bytes())
	if err != nil {
		return err
	}
	wr.offset += int64(n)
	wr.meta[branch].Baskets = append(wr.meta[branch].Baskets, loc)
	_ = nEvents
	return nil
}

// Close flushes remaining events and writes the footer. The Writer must not
// be used afterwards.
func (wr *Writer) Close() error {
	if wr.closed {
		return nil
	}
	if err := wr.flush(); err != nil {
		return err
	}
	wr.closed = true
	ft := footer{
		Version:    FormatVersion,
		NEvents:    wr.nEvents,
		BasketSize: wr.basketSize,
		Branches:   wr.meta,
	}
	enc := ft.encode()
	if _, err := wr.w.Write(enc); err != nil {
		return err
	}
	var tail bytes.Buffer
	putU32(&tail, uint32(len(enc)))
	tail.Write(trailerMagic[:])
	_, err := wr.w.Write(tail.Bytes())
	return err
}

// NEvents reports the number of events written so far.
func (wr *Writer) NEvents() int64 { return wr.nEvents }

// WriteFile writes a complete file at path from columns, convenience for the
// generator and tests.
func WriteFile(path string, defs []BranchDef, basketSize, nEvents int, cols map[string][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := NewWriter(f, defs, basketSize)
	if err != nil {
		f.Close()
		return err
	}
	if err := w.WriteColumns(nEvents, cols); err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SortedBranchNames lists branch names of a definition set, sorted, for
// stable error messages and tests.
func SortedBranchNames(defs []BranchDef) []string {
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	sort.Strings(names)
	return names
}
