package rootio

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"os"
)

// Reader provides column-selective, range-selective access to a VRT1 file,
// the access pattern the paper's analyses use against ROOT via uproot and
// XRootD: read only the branches a processor touches, only for the event
// range of one chunk.
type Reader struct {
	r      io.ReaderAt
	footer *footer
	byName map[string]int
}

// NewReader opens a file image of the given total size.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < int64(len(headerMagic))+8 {
		return nil, fmt.Errorf("rootio: file too small (%d bytes)", size)
	}
	var head [4]byte
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if head != headerMagic {
		return nil, fmt.Errorf("rootio: bad header magic %q", head)
	}
	var tail [8]byte
	if _, err := r.ReadAt(tail[:], size-8); err != nil {
		return nil, err
	}
	if [4]byte(tail[4:8]) != trailerMagic {
		return nil, fmt.Errorf("rootio: bad trailer magic")
	}
	ftLen := int64(uint32(tail[0]) | uint32(tail[1])<<8 | uint32(tail[2])<<16 | uint32(tail[3])<<24)
	if ftLen <= 0 || ftLen > size-8 {
		return nil, fmt.Errorf("rootio: implausible footer length %d", ftLen)
	}
	ftBuf := make([]byte, ftLen)
	if _, err := r.ReadAt(ftBuf, size-8-ftLen); err != nil {
		return nil, err
	}
	ft, err := decodeFooter(ftBuf)
	if err != nil {
		return nil, err
	}
	rd := &Reader{r: r, footer: ft, byName: make(map[string]int, len(ft.Branches))}
	for i, br := range ft.Branches {
		rd.byName[br.Def.Name] = i
	}
	return rd, nil
}

// Open opens a file on disk. Close the returned closer when done.
func Open(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	rd, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return rd, f, nil
}

// NEvents reports the number of events in the file.
func (rd *Reader) NEvents() int64 { return rd.footer.NEvents }

// BasketSize reports events per basket.
func (rd *Reader) BasketSize() int64 { return rd.footer.BasketSize }

// Branches lists branch definitions in file order.
func (rd *Reader) Branches() []BranchDef {
	defs := make([]BranchDef, len(rd.footer.Branches))
	for i, br := range rd.footer.Branches {
		defs[i] = br.Def
	}
	return defs
}

// HasBranch reports whether the file contains the named branch.
func (rd *Reader) HasBranch(name string) bool {
	_, ok := rd.byName[name]
	return ok
}

// BranchDef returns the definition of the named branch.
func (rd *Reader) BranchDef(name string) (BranchDef, error) {
	i, ok := rd.byName[name]
	if !ok {
		return BranchDef{}, fmt.Errorf("rootio: no branch %q", name)
	}
	return rd.footer.Branches[i].Def, nil
}

// readBasket decompresses and decodes basket bi of branch index bri.
func (rd *Reader) readBasket(bri, bi int) ([]float64, error) {
	br := rd.footer.Branches[bri]
	bk := br.Baskets[bi]
	comp := make([]byte, bk.Compressed)
	if _, err := rd.r.ReadAt(comp, bk.Offset); err != nil {
		return nil, fmt.Errorf("rootio: reading basket: %w", err)
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	raw := make([]byte, bk.Raw)
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("rootio: decompressing basket: %w", err)
	}
	fr.Close()
	return decodeColumn(br.Def.Enc, raw, bk.NValues)
}

// basketRange reports which baskets cover events [lo, hi).
func (rd *Reader) basketRange(lo, hi int64) (first, last int) {
	bs := rd.footer.BasketSize
	return int(lo / bs), int((hi - 1) / bs)
}

// ReadFlat reads values of a flat or counts branch for events [lo, hi).
func (rd *Reader) ReadFlat(name string, lo, hi int64) ([]float64, error) {
	bri, ok := rd.byName[name]
	if !ok {
		return nil, fmt.Errorf("rootio: no branch %q", name)
	}
	def := rd.footer.Branches[bri].Def
	if def.Kind == KindJagged {
		return nil, fmt.Errorf("rootio: branch %q is jagged; use ReadJagged", name)
	}
	if err := rd.checkRange(lo, hi); err != nil {
		return nil, err
	}
	if lo == hi {
		return nil, nil
	}
	bs := rd.footer.BasketSize
	first, last := rd.basketRange(lo, hi)
	out := make([]float64, 0, hi-lo)
	for bi := first; bi <= last; bi++ {
		vals, err := rd.readBasket(bri, bi)
		if err != nil {
			return nil, err
		}
		bLo := int64(bi) * bs
		s, e := int64(0), int64(len(vals))
		if lo > bLo {
			s = lo - bLo
		}
		if hi-bLo < e {
			e = hi - bLo
		}
		out = append(out, vals[s:e]...)
	}
	return out, nil
}

// Jagged holds a jagged column slice: Counts[i] elements of event i live in
// Values, flattened in event order.
type Jagged struct {
	Counts []int
	Values []float64
}

// NEventsJ reports the number of events covered.
func (j Jagged) NEventsJ() int { return len(j.Counts) }

// Event returns the values of event i (0-based within the slice).
func (j Jagged) Event(i int) []float64 {
	off := 0
	for k := 0; k < i; k++ {
		off += j.Counts[k]
	}
	return j.Values[off : off+j.Counts[i]]
}

// ReadJagged reads a jagged branch (with its counts) for events [lo, hi).
func (rd *Reader) ReadJagged(name string, lo, hi int64) (Jagged, error) {
	bri, ok := rd.byName[name]
	if !ok {
		return Jagged{}, fmt.Errorf("rootio: no branch %q", name)
	}
	def := rd.footer.Branches[bri].Def
	if def.Kind != KindJagged {
		return Jagged{}, fmt.Errorf("rootio: branch %q is not jagged", name)
	}
	if err := rd.checkRange(lo, hi); err != nil {
		return Jagged{}, err
	}
	countsF, err := rd.ReadFlat(def.Counts, lo, hi)
	if err != nil {
		return Jagged{}, err
	}
	counts := make([]int, len(countsF))
	total := 0
	for i, c := range countsF {
		counts[i] = int(c)
		total += counts[i]
	}
	out := Jagged{Counts: counts, Values: make([]float64, 0, total)}
	if lo == hi {
		return out, nil
	}

	bs := rd.footer.BasketSize
	first, last := rd.basketRange(lo, hi)
	cbri := rd.byName[def.Counts]
	for bi := first; bi <= last; bi++ {
		vals, err := rd.readBasket(bri, bi)
		if err != nil {
			return Jagged{}, err
		}
		// Event range within this basket.
		bLo := int64(bi) * bs
		evS, evE := int64(0), min64(bs, rd.footer.NEvents-bLo)
		if lo > bLo {
			evS = lo - bLo
		}
		if hi-bLo < evE {
			evE = hi - bLo
		}
		// Value offsets within the basket come from the basket's counts.
		bCounts, err := rd.readBasket(cbri, bi)
		if err != nil {
			return Jagged{}, err
		}
		var vOff int64
		for e := int64(0); e < evS; e++ {
			vOff += int64(bCounts[e])
		}
		var vLen int64
		for e := evS; e < evE; e++ {
			vLen += int64(bCounts[e])
		}
		if vOff+vLen > int64(len(vals)) {
			return Jagged{}, fmt.Errorf("rootio: jagged basket %d of %q shorter than counts imply", bi, name)
		}
		out.Values = append(out.Values, vals[vOff:vOff+vLen]...)
	}
	return out, nil
}

func (rd *Reader) checkRange(lo, hi int64) error {
	if lo < 0 || hi < lo || hi > rd.footer.NEvents {
		return fmt.Errorf("rootio: event range [%d,%d) out of bounds (file has %d events)", lo, hi, rd.footer.NEvents)
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ColumnBytes estimates the compressed bytes that reading the named branches
// over events [lo, hi) touches; the simulation plane uses this to charge
// realistic I/O volumes for column-selective reads.
func (rd *Reader) ColumnBytes(names []string, lo, hi int64) (int64, error) {
	if err := rd.checkRange(lo, hi); err != nil {
		return 0, err
	}
	if lo == hi {
		return 0, nil
	}
	first, last := rd.basketRange(lo, hi)
	var total int64
	for _, name := range names {
		bri, ok := rd.byName[name]
		if !ok {
			return 0, fmt.Errorf("rootio: no branch %q", name)
		}
		for bi := first; bi <= last && bi < len(rd.footer.Branches[bri].Baskets); bi++ {
			total += rd.footer.Branches[bri].Baskets[bi].Compressed
		}
	}
	return total, nil
}
