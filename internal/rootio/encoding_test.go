package rootio

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"hepvine/internal/randx"
)

func TestEncodingRoundTrips(t *testing.T) {
	vals := []float64{0, 1, -1, 3.5, 1e6, -42, 356123, 0.25}
	for _, enc := range []Encoding{EncF64, EncF32} {
		raw, err := encodeColumn(enc, vals)
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		got, err := decodeColumn(enc, raw, int64(len(vals)))
		if err != nil {
			t.Fatalf("%v: %v", enc, err)
		}
		for i, v := range vals {
			if got[i] != enc.quantize(v) {
				t.Fatalf("%v[%d]: %v != %v", enc, i, got[i], enc.quantize(v))
			}
		}
	}
	ints := []float64{0, 1, -1, 127, -128, 1 << 40, 356000}
	raw, err := encodeColumn(EncVarint, ints)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeColumn(EncVarint, raw, int64(len(ints)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if got[i] != ints[i] {
			t.Fatalf("varint[%d]: %v != %v", i, got[i], ints[i])
		}
	}
}

func TestVarintRejectsNonInteger(t *testing.T) {
	if _, err := encodeColumn(EncVarint, []float64{1.5}); err == nil {
		t.Fatal("non-integer varint accepted")
	}
}

func TestEncodingSizes(t *testing.T) {
	rng := randx.New(1)
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(rng.Intn(64)) // small integers
	}
	f64, _ := encodeColumn(EncF64, vals)
	f32, _ := encodeColumn(EncF32, vals)
	vi, _ := encodeColumn(EncVarint, vals)
	if len(f32) != len(f64)/2 {
		t.Fatalf("f32 %d vs f64 %d", len(f32), len(f64))
	}
	if len(vi) >= len(f32)/2 {
		t.Fatalf("varint %d not compact vs f32 %d", len(vi), len(f32))
	}
}

func TestEncodedFileSmaller(t *testing.T) {
	// The NanoAOD-style schema (f32 kinematics + varint counters) must
	// produce meaningfully smaller files than an all-f64 schema.
	n := 4000
	cols := GenColumns(n, GenOptions{Seed: 3})
	sizeWith := func(defs []BranchDef) int {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, defs, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteColumns(n, cols); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	all64 := NanoSchema()
	for i := range all64 {
		all64[i].Enc = EncF64
	}
	s64 := sizeWith(all64)
	sEnc := sizeWith(NanoSchema())
	if float64(sEnc) > 0.7*float64(s64) {
		t.Fatalf("encoded file %d not much smaller than f64 file %d", sEnc, s64)
	}
}

func TestEncodedRoundTripThroughFile(t *testing.T) {
	n := 500
	cols := GenColumns(n, GenOptions{Seed: 5})
	var buf bytes.Buffer
	w, err := NewWriter(&buf, NanoSchema(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteColumns(n, cols); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&memFile{buf.Bytes()}, int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	// Varint branch: exact round trip.
	runs, err := rd.ReadFlat("run", 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range runs {
		if v != cols["run"][i] {
			t.Fatalf("run[%d]: %v != %v", i, v, cols["run"][i])
		}
	}
	// F32 branch: round trip within float32 precision.
	met, err := rd.ReadFlat("MET_pt", 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range met {
		if v != float64(float32(cols["MET_pt"][i])) {
			t.Fatalf("MET_pt[%d]: %v != f32(%v)", i, v, cols["MET_pt"][i])
		}
	}
	// Jagged f32 branch via the full path.
	jets, err := rd.ReadJagged("Jet_pt", 0, int64(n))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range jets.Values {
		if v != float64(float32(cols["Jet_pt"][i])) {
			t.Fatalf("Jet_pt[%d] mismatch", i)
		}
	}
	// Introspection carries the encoding.
	def, err := rd.BranchDef("nJet")
	if err != nil || def.Enc != EncVarint {
		t.Fatalf("nJet def = %+v (%v)", def, err)
	}
}

func TestEncodingRoundTripProperty(t *testing.T) {
	check := func(seed uint16, encSel uint8) bool {
		enc := Encoding(encSel % 3)
		rng := randx.New(uint64(seed) + 1)
		n := rng.Intn(200) + 1
		vals := make([]float64, n)
		for i := range vals {
			if enc == EncVarint {
				vals[i] = float64(rng.Intn(1<<20) - 1<<19)
			} else {
				vals[i] = rng.Range(-1e6, 1e6)
			}
		}
		raw, err := encodeColumn(enc, vals)
		if err != nil {
			return false
		}
		got, err := decodeColumn(enc, raw, int64(n))
		if err != nil {
			return false
		}
		for i := range vals {
			want := enc.quantize(vals[i])
			if got[i] != want && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeColumnRejectsCorrupt(t *testing.T) {
	if _, err := decodeColumn(EncF32, []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("short f32 accepted")
	}
	if _, err := decodeColumn(EncVarint, []byte{0x80}, 1); err == nil {
		t.Fatal("truncated varint accepted")
	}
	if _, err := decodeColumn(Encoding(9), nil, 0); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}

func TestEncodingString(t *testing.T) {
	if EncF64.String() != "f64" || EncF32.String() != "f32" || EncVarint.String() != "varint" {
		t.Fatal("encoding strings wrong")
	}
	if Encoding(9).String() == "" {
		t.Fatal("unknown encoding should render")
	}
}
